(** The round-stretcher attack (experiment E6): with [f'] colluders (the
    faulty General plus helpers), delay every correct node's termination to
    [(2 f' + 5) Phi], capped by block U at [(2f + 1) Phi] — the adversary
    matching the paper's O(f') termination claim. Two stages (full quorum
    derivation in the implementation header):

    - IA-stretch: selective invitations plus maximally-late colluder
      support/approve top-ups push every I-accept more than 4d past its
      anchor, disabling the block-R fast path;
    - broadcaster drip: one new broadcaster per phase is made detectable
      (block Y1) without any broadcast ever being *accepted*, starving both
      block S and block T's abort condition round by round.

    The choreography runs on absolute simulator time: use (near-)perfect
    clocks and a fixed small network delay [eps]. *)

open Ssba_core.Types

type t

(** [make ~engine ~net ~params ~colluders ~v ~t0 ~eps ()] prepares the
    attack; [colluders] (head acts as the General) must be non-empty and
    within the fault budget [f]. Correct nodes for the remaining ids must be
    created by the caller. With [complete_round] the last colluder also
    performs one honest round-1 broadcast, so every correct node *decides*
    the Byzantine value through block S at round 1 (still unanimously)
    instead of aborting. *)
val make :
  ?complete_round:bool ->
  engine:Ssba_sim.Engine.t ->
  net:message Ssba_net.Network.t ->
  params:Ssba_core.Params.t ->
  colluders:node_id list ->
  v:value ->
  t0:float ->
  eps:float ->
  unit ->
  t

(** Schedule the whole choreography on the engine. *)
val launch : t -> unit

(** The phase index [(min (2 f' + 5) (2f + 1))] at which every correct node
    is expected to abort — for assertions and experiment tables. *)
val expected_abort_phase : t -> int

(** In the [complete_round] variant, the S(1) deadline phase (3). *)
val expected_decide_phase : t -> int
