examples/pulse_demo.ml: Float Fmt List Option Ssba_core Ssba_net Ssba_pulse Ssba_sim
