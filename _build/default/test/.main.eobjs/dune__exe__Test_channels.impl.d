test/test_channels.ml: Alcotest Array Cluster Helpers List Node Params Ssba_core Ssba_net Ssba_sim Types
