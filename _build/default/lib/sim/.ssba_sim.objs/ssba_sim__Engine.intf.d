lib/sim/engine.mli: Metrics Trace
