(** Property oracles for the paper's stated guarantees. Each oracle reports a
    verdict plus the measured quantity, so experiment tables can print
    paper-bound vs measured side by side. *)

open Ssba_core.Types

type verdict = { ok : bool; measured : float; bound : float; label : string }

val pp_verdict : Format.formatter -> verdict -> unit

(** Episode-level Agreement classification. *)
type agreement_result =
  | All_silent  (** nobody returned anything: a legal non-event *)
  | All_aborted
  | Unanimous of value
  | Violated of string

(** Theorem 3's Agreement over one episode: if any correct node decides,
    every correct node must decide the same value. *)
val agreement : correct:node_id list -> Metrics.episode -> agreement_result

val agreement_holds : correct:node_id list -> Metrics.episode -> bool

(** Validity: every correct node decided exactly [v]. *)
val validity : correct:node_id list -> v:value -> Metrics.episode -> bool

(** Timeliness 1a: decision skew <= 3d. *)
val timeliness_1a : Runner.result -> Metrics.episode -> verdict

(** Timeliness 1b: anchor skew <= 6d. *)
val timeliness_1b : Runner.result -> Metrics.episode -> verdict

(** Timeliness 1d: rt(tau_g) <= rt(tau) and running time <= Delta_agr. *)
val timeliness_1d : Runner.result -> Metrics.episode -> verdict

(** Timeliness 2: decisions within [t0 - d, t0 + 4d] of a correct General's
    proposal, anchors no earlier than t0 - d. *)
val timeliness_2 : Runner.result -> proposed_at:float -> Metrics.episode -> verdict

(** Timeliness 3: termination within Delta_agr + 7d. *)
val timeliness_3 : Runner.result -> Metrics.episode -> verdict

(** Unforgeability shape: no decided value anywhere in the run. *)
val no_decision : Runner.result -> bool

(** Message conservation over a run:
    [sent = delivered + dropped + in_flight], an exact integer identity
    (the verdict carries [accounted] as measured and [sent] as bound). *)
val network_conservation : Runner.result -> verdict

(** Pairwise agreement oracle, sound under Byzantine Generals that initiate
    continuously (episode clustering is ambiguous there). Checks IA-4a
    (decided values with anchors within 4d must match) and the relay
    consequence (a decision must be echoed, with an anchor within 6d, by
    every correct node). [settle] skips decisions within that margin of
    [until] (default: the horizon; default margin [Delta_agr + 10d]);
    [after] skips decisions before that real time — pass the stabilization
    time for scrambled-start runs, since the paper's properties only hold
    once the system is stable. [correct] overrides the result's correct set
    (pass a coherence interval's cast for windows before a [Reform]).
    Returns violation descriptions; empty means agreement holds. *)
val pairwise_agreement :
  ?settle:float ->
  ?after:float ->
  ?until:float ->
  ?correct:node_id list ->
  Runner.result ->
  string list

(** The real time from which the paper's guarantees hold again, derived from
    the event schedule: [Delta_stb] after the last {!Scenario.disruptive}
    event, or [0] when nothing disrupts. Use this instead of hand-computing
    "scramble time + Delta_stb" at call sites. *)
val stabilized_after : Scenario.t -> float

(** Per-coherence-interval recovery verdict: {!pairwise_agreement} scoped to
    the interval (checked from [t_start + Delta_stb] when the interval
    follows a disruption), plus the measured stabilization time — completion
    of the first unanimous agreement episode whose first return lands within
    [Delta_stb] of coherence resumption ([None] when the schedule placed no
    probe there: unmeasured, not a failure). *)
type episode_report = {
  interval : Coherence.interval;
  checked_from : float;
  violations : string list;
  recovery_time : float option;
}

val pp_episode_report : Format.formatter -> episode_report -> unit

(** One report per {!Coherence.intervals} entry, in time order. Every
    measured recovery time is also recorded as a [recovery.time.<i>] gauge
    in the result's metrics registry (never part of {!result_digest}).
    [stb] overrides [Delta_stb] for the per-interval check offset — the
    knob the oracle-sensitivity tests use to force premature checking. *)
val recovery_report :
  ?settle:float -> ?stb:float -> Runner.result -> episode_report list

(** A stable hex fingerprint of a run's observable outcome (returns, proposal
    outcomes, message accounting, engine stats). Identical scenarios produce
    identical digests; replay tooling and fuzz corpora compare these. *)
val result_digest : Runner.result -> string
