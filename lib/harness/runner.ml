(* Scenario interpreter: builds the engine, network (optionally behind the
   reliable transport), correct nodes and Byzantine behaviours, applies the
   event schedule, runs to the horizon and packages everything the
   metrics/checks layers need.

   Fault composition: the transient drop probability (Drop_prob, lifted by
   Heal/Heal_drop) and the persistent link loss (Loss, changed only by
   another Loss event) are tracked separately and composed multiplicatively
   into the network's single drop knob, so transient incoherence can overlap
   a persistently lossy link without either clobbering the other. *)

open Ssba_core.Types
module Rng = Ssba_sim.Rng
module Engine = Ssba_sim.Engine
module Clock = Ssba_sim.Clock
module Trace = Ssba_sim.Trace
module Metrics = Ssba_sim.Metrics
module Network = Ssba_net.Network
module Transport = Ssba_transport.Transport
module Node = Ssba_core.Node
module Params = Ssba_core.Params

type observation = {
  obs_node : node_id;
  obs_g : general;
  obs : Ssba_core.Ss_byz_agree.observation;
  obs_rt : float;  (* engine real time at which the event fired *)
}

(* What became of a scheduled proposal, evaluated at its [at] time. A General
   that is Byzantine (or simply has no correct node) is [No_general] — not a
   protocol-level refusal, since no correct code ever ran. *)
type proposal_outcome =
  | Accepted
  | Refused of Node.propose_error
  | No_general

type result = {
  scenario : Scenario.t;
  returns : return_info list;  (* correct-node returns, in rt order *)
  observations : observation list;  (* chronological; empty unless enabled *)
  correct : node_id list;
  clocks : Clock.t array;  (* indexed by node id; Byzantine entries too *)
  nodes : (node_id * Node.t) list;  (* the correct protocol nodes *)
  proposal_results : (Scenario.proposal * proposal_outcome) list;
  engine_stats : Engine.stats;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  messages_duplicated : int;  (* fault-injected second copies *)
  messages_in_flight : int;  (* scheduled but undelivered at the horizon *)
  messages_by_kind : (string * int) list;
  transport_retransmits : int;  (* 0 when the scenario runs without transport *)
  transport_dup_suppressed : int;
  transport_expired : int;
  transport_retries_exhausted : int;
      (* frames abandoned at the retry cap — previously silent *)
  metrics : Metrics.t;  (* the engine's registry: net.*, engine.*, node<i>.* *)
  trace : Trace.t;
}

(* Hook handed to a scenario driver (the service loop): enough of the
   interpreter's innards to generate proposals at runtime and observe every
   return — including returns of nodes reformed mid-run — without
   re-implementing the setup. Driver-made proposals land in
   [proposal_results] like scheduled ones, with [at] = the engine time of
   the call. *)
type driver = {
  drv_engine : Engine.t;
  drv_params : Params.t;
  drv_propose : g:int -> v:value -> proposal_outcome;
  drv_live : unit -> (node_id * Node.t) list;
  drv_on_return : (return_info -> unit) -> unit;
}

let build_clock rng = function
  | Scenario.Perfect -> Clock.perfect
  | Scenario.Drifting { rho; max_offset } -> Clock.random rng ~rho ~max_offset

(* Random protocol message for incoherent-period garbage. *)
let garbage_message ~rng ~params ~values =
  let n = params.Params.n in
  let g = Rng.int rng n in
  let v = Rng.pick_list rng values in
  match Rng.int rng 8 with
  | 0 -> Initiator { g; v }
  | 1 -> Ia { kind = Support; g; v }
  | 2 -> Ia { kind = Approve; g; v }
  | 3 -> Ia { kind = Ready; g; v }
  | c ->
      let kind = match c with 4 -> Init | 5 -> Echo | 6 -> Init2 | _ -> Echo2 in
      Mb
        {
          kind;
          p = Rng.int rng n;
          g;
          v;
          k = 1 + Rng.int rng (max 1 (params.Params.f + 1));
        }

(* Message counts at the end of a run, uniform across plain/transport nets. *)
type net_counts = {
  nc_sent : int;
  nc_delivered : int;
  nc_dropped : int;
  nc_duplicated : int;
  nc_in_flight : int;
  nc_by_kind : (string * int) list;
  nc_retransmits : int;
  nc_dup_suppressed : int;
  nc_expired : int;
  nc_retries_exhausted : int;
}

(* The scenario interpreter is agnostic to whether protocol traffic rides the
   raw network or the reliable transport: it sees the payload-typed link plus
   closures over the underlying network's fault knobs. *)
type net_iface = {
  link : message Ssba_net.Link.t;
  set_muted : int -> bool -> unit;
  set_delay : Ssba_net.Delay.t -> unit;
  set_drop_prob : float -> unit;
  set_dup_prob : float -> unit;
  set_reorder : Network.reorder option -> unit;
  set_partition : (src:int -> dst:int -> bool) option -> unit;
  inject_garbage : rng:Rng.t -> values:value list -> count:int -> unit;
  scramble_transport : rng:Rng.t -> unit;
  scramble_pool : values:value list -> unit;
      (* trash the delivery arena's free envelope slots (its own RNG stream;
         armed descriptors and results untouched) *)
  counts : unit -> net_counts;
}

(* Forged in-flight garbage for the incoherent period: random protocol
   messages claiming random senders, delivered over the next ~Delta_rmv. *)
let plain_iface ~engine ~params ~delay ~rng n =
  let net =
    Network.create ~engine ~n ~delay ~rng ~kind_of:kind_of_message ()
  in
  {
    link = Network.link net;
    set_muted = (fun node m -> Network.set_muted net node m);
    set_delay = (fun d -> Network.set_delay net d);
    set_drop_prob = (fun p -> Network.set_drop_prob net p);
    set_dup_prob = (fun p -> Network.set_dup_prob net p);
    set_reorder = (fun r -> Network.set_reorder net r);
    set_partition = (fun pred -> Network.set_partition net pred);
    inject_garbage =
      (fun ~rng ~values ~count ->
        for _ = 1 to count do
          let claimed_src = Rng.int rng n in
          let dst = Rng.int rng n in
          let payload = garbage_message ~rng ~params ~values in
          let delay = Rng.float rng params.Params.delta_rmv in
          Network.inject_forged net ~claimed_src ~dst ~delay payload
        done);
    scramble_transport = (fun ~rng:_ -> ());
    scramble_pool =
      (fun ~values ->
        Network.scramble_pool net ~payload:(fun rng ->
            garbage_message ~rng ~params ~values));
    counts =
      (fun () ->
        {
          nc_sent = Network.messages_sent net;
          nc_delivered = Network.messages_delivered net;
          nc_dropped = Network.messages_dropped net;
          nc_duplicated = Network.messages_duplicated net;
          nc_in_flight = Network.messages_in_flight net;
          nc_by_kind = Network.sent_by_kind net;
          nc_retransmits = 0;
          nc_dup_suppressed = 0;
          nc_expired = 0;
          nc_retries_exhausted = 0;
        });
  }

(* Transport-backed variant: protocol payloads ride Data frames; garbage is
   forged at the frame level (Data with random seqs, plus bare Acks), so the
   transport's own state machine is also exposed to incoherent input. *)
let transport_iface ~engine ~params ~delay ~rng ~config n =
  let net =
    Network.create ~engine ~n ~delay ~rng
      ~kind_of:(Transport.kind_of kind_of_message) ()
  in
  let tr = Transport.create ~kind_of:kind_of_message ~engine ~net ~config () in
  {
    link = Transport.link tr;
    set_muted = (fun node m -> Network.set_muted net node m);
    set_delay = (fun d -> Network.set_delay net d);
    set_drop_prob = (fun p -> Network.set_drop_prob net p);
    set_dup_prob = (fun p -> Network.set_dup_prob net p);
    set_reorder = (fun r -> Network.set_reorder net r);
    set_partition = (fun pred -> Network.set_partition net pred);
    inject_garbage =
      (fun ~rng ~values ~count ->
        for _ = 1 to count do
          let claimed_src = Rng.int rng n in
          let dst = Rng.int rng n in
          let frame =
            if Rng.int rng 4 = 0 then
              Transport.Ack { seq = Rng.int rng 1_000_000 }
            else
              Transport.Data
                {
                  seq = Rng.int rng 1_000_000;
                  payload = garbage_message ~rng ~params ~values;
                }
          in
          let delay = Rng.float rng params.Params.delta_rmv in
          Network.inject_forged net ~claimed_src ~dst ~delay frame
        done);
    scramble_transport = (fun ~rng -> Transport.scramble tr ~rng);
    scramble_pool =
      (fun ~values ->
        Network.scramble_pool net ~payload:(fun rng ->
            Transport.Data
              {
                seq = Rng.int rng 1_000_000;
                payload = garbage_message ~rng ~params ~values;
              }));
    counts =
      (fun () ->
        {
          nc_sent = Network.messages_sent net;
          nc_delivered = Network.messages_delivered net;
          nc_dropped = Network.messages_dropped net;
          nc_duplicated = Network.messages_duplicated net;
          nc_in_flight = Network.messages_in_flight net;
          nc_by_kind = Network.sent_by_kind net;
          nc_retransmits = Transport.retransmits tr;
          nc_dup_suppressed = Transport.dup_suppressed tr;
          nc_expired = Transport.expired tr;
          nc_retries_exhausted = Transport.retries_exhausted tr;
        });
  }

let run_with ?on_driver ~execute (sc : Scenario.t) =
  let params = sc.Scenario.params in
  let n = params.Params.n in
  let root = Rng.create sc.Scenario.seed in
  let net_rng = Rng.split root in
  let clock_rng = Rng.split root in
  let adv_rng = Rng.split root in
  let scramble_rng = Rng.split root in
  let trace = Trace.create ~enabled:sc.Scenario.record_trace () in
  let engine = Engine.create ~trace () in
  let iface =
    match sc.Scenario.transport with
    | None -> plain_iface ~engine ~params ~delay:sc.Scenario.delay ~rng:net_rng n
    | Some config ->
        transport_iface ~engine ~params ~delay:sc.Scenario.delay ~rng:net_rng
          ~config n
  in
  let clocks = Array.init n (fun _ -> build_clock clock_rng sc.Scenario.clocks) in
  (* Correct nodes first, then Byzantine behaviours (which overwrite the
     link handler for their id). *)
  let nodes = ref [] in
  let returns = ref [] in
  let observations = ref [] in
  (* Driver callbacks see every return, from initial and reformed nodes
     alike, so all node subscriptions funnel through one push function. *)
  let return_hooks = ref [] in
  let push_return r =
    returns := r :: !returns;
    List.iter (fun f -> f r) !return_hooks
  in
  for id = 0 to n - 1 do
    match Scenario.role_of sc id with
    | Scenario.Correct ->
        let node =
          Node.create_on ~channels:sc.Scenario.channels
            ?session_capacity:sc.Scenario.session_capacity
            ~blackout:sc.Scenario.blackout ~admission:sc.Scenario.admission
            ~id ~params ~clock:clocks.(id) ~engine ~link:iface.link ()
        in
        Node.subscribe node push_return;
        if sc.Scenario.record_observations then
          Node.subscribe_observations node (fun g obs ->
              observations :=
                { obs_node = id; obs_g = g; obs; obs_rt = Engine.now engine }
                :: !observations);
        nodes := (id, node) :: !nodes
    | Scenario.Byzantine _ -> ()
  done;
  let nodes = List.rev !nodes in
  (* Reformed Byzantine nodes join this list mid-run (Reform events); the
     behaviours they abandon keep their scheduled callbacks, so every
     behaviour sends through a guard that silences reformed ids. *)
  let live_nodes = ref nodes in
  let reformed = Array.make n false in
  let behavior_link =
    {
      iface.link with
      Ssba_net.Link.send =
        (fun ~src ~dst m ->
          if not reformed.(src) then iface.link.Ssba_net.Link.send ~src ~dst m);
      broadcast =
        (fun ~src m ->
          if not reformed.(src) then iface.link.Ssba_net.Link.broadcast ~src m);
    }
  in
  for id = 0 to n - 1 do
    match Scenario.role_of sc id with
    | Scenario.Correct -> ()
    | Scenario.Byzantine b ->
        Ssba_adversary.Behavior.install b
          {
            Ssba_adversary.Behavior.self = id;
            params;
            engine;
            rng = Rng.split adv_rng;
            link = behavior_link;
            clock = clocks.(id);
          }
  done;
  (* Arbitrary-state vocabulary for reformed nodes: the run's proposal values
     plus one value nobody proposes, so reform-time garbage can collide with
     real agreements and still be told apart. *)
  let reform_values =
    List.sort_uniq compare
      (List.map (fun (p : Scenario.proposal) -> p.Scenario.v) sc.Scenario.proposals)
    @ [ "~reform-garbage" ]
  in
  (* Event schedule. Transient drop and persistent loss compose into the
     network's one drop knob: the message survives both hazards. *)
  let transient_drop = ref 0.0 in
  let persistent_loss = ref 0.0 in
  let apply_loss () =
    iface.set_drop_prob
      (1.0 -. ((1.0 -. !transient_drop) *. (1.0 -. !persistent_loss)))
  in
  List.iter
    (fun ev ->
      match ev with
      | Scenario.Crash { node; at } ->
          Engine.schedule engine ~at (fun () -> iface.set_muted node true)
      | Scenario.Recover { node; at } ->
          Engine.schedule engine ~at (fun () -> iface.set_muted node false)
      | Scenario.Scramble { at; values; net_garbage } ->
          Engine.schedule engine ~at (fun () ->
              List.iter
                (fun (_, node) -> Node.scramble scramble_rng ~values node)
                !live_nodes;
              iface.scramble_transport ~rng:scramble_rng;
              iface.scramble_pool ~values;
              iface.inject_garbage ~rng:scramble_rng ~values ~count:net_garbage;
              Engine.record engine ~node:(-1)
                (Trace.Scramble { garbage = net_garbage }))
      | Scenario.Drop_prob { at; p } ->
          Engine.schedule engine ~at (fun () ->
              transient_drop := p;
              apply_loss ())
      | Scenario.Loss { at; p } ->
          Engine.schedule engine ~at (fun () ->
              persistent_loss := p;
              apply_loss ())
      | Scenario.Duplicate { at; p } ->
          Engine.schedule engine ~at (fun () -> iface.set_dup_prob p)
      | Scenario.Reorder { at; prob; extra } ->
          Engine.schedule engine ~at (fun () ->
              iface.set_reorder
                (if prob <= 0.0 || extra <= 0.0 then None
                 else Some { Network.prob; extra }))
      | Scenario.Partition { at; blocked = ga, gb } ->
          Engine.schedule engine ~at (fun () ->
              iface.set_partition
                (Some
                   (fun ~src ~dst ->
                     (List.mem src ga && List.mem dst gb)
                     || (List.mem src gb && List.mem dst ga))))
      | Scenario.Heal { at } ->
          Engine.schedule engine ~at (fun () ->
              iface.set_partition None;
              transient_drop := 0.0;
              apply_loss ())
      | Scenario.Heal_partition { at } ->
          Engine.schedule engine ~at (fun () -> iface.set_partition None)
      | Scenario.Heal_drop { at } ->
          Engine.schedule engine ~at (fun () ->
              transient_drop := 0.0;
              apply_loss ())
      | Scenario.Delay_surge { at; factor } ->
          Engine.schedule engine ~at (fun () ->
              iface.set_delay (Ssba_net.Delay.scaled factor sc.Scenario.delay);
              Engine.record engine ~node:(-1) (Trace.Delay_surge { factor }))
      | Scenario.Delay_restore { at } ->
          Engine.schedule engine ~at (fun () ->
              iface.set_delay sc.Scenario.delay;
              Engine.record engine ~node:(-1) (Trace.Delay_surge { factor = 0.0 }))
      | Scenario.Reform { node; at } ->
          Engine.schedule engine ~at (fun () ->
              let byzantine =
                match Scenario.role_of sc node with
                | Scenario.Byzantine _ -> true
                | Scenario.Correct -> false
              in
              if byzantine && not reformed.(node) then begin
                (* Silence the abandoned behaviour first, then let the correct
                   protocol take over the link handler from arbitrary state. *)
                reformed.(node) <- true;
                let nd =
                  Node.reform ~channels:sc.Scenario.channels
                    ?session_capacity:sc.Scenario.session_capacity
                    ~admission:sc.Scenario.admission ~rng:scramble_rng
                    ~values:reform_values ~id:node ~params
                    ~clock:clocks.(node) ~engine ~link:iface.link ()
                in
                Node.subscribe nd push_return;
                if sc.Scenario.record_observations then
                  Node.subscribe_observations nd (fun g obs ->
                      observations :=
                        { obs_node = node; obs_g = g; obs; obs_rt = Engine.now engine }
                        :: !observations);
                live_nodes := !live_nodes @ [ (node, nd) ];
                Engine.record engine ~node (Trace.Reform { node })
              end))
    sc.Scenario.events;
  (* Proposals by correct Generals. Every proposal — including one whose
     General is Byzantine or absent — is evaluated at its scheduled [at], so
     [proposal_results] comes out in chronological order (engine ties break
     by scheduling order). [p.g] is a logical General id: node [g mod n]
     initiates on channel [g / n] (the identity decoding when channels = 1). *)
  let proposal_results = ref [] in
  List.iter
    (fun (p : Scenario.proposal) ->
      Engine.schedule engine ~at:p.Scenario.at (fun () ->
          let outcome =
            match List.assoc_opt (p.Scenario.g mod n) !live_nodes with
            | None -> No_general
            | Some node -> (
                match
                  Node.propose ~channel:(p.Scenario.g / n) node p.Scenario.v
                with
                | Ok () -> Accepted
                | Error e -> Refused e)
          in
          proposal_results := (p, outcome) :: !proposal_results))
    sc.Scenario.proposals;
  (* Hand the driver (if any) its hook before the engine runs: it schedules
     its own arrivals/retries against the same engine, and its proposals are
     recorded exactly like scheduled ones. *)
  (match on_driver with
  | None -> ()
  | Some f ->
      f
        {
          drv_engine = engine;
          drv_params = params;
          drv_propose =
            (fun ~g ~v ->
              let outcome =
                match List.assoc_opt (g mod n) !live_nodes with
                | None -> No_general
                | Some node -> (
                    match Node.propose ~channel:(g / n) node v with
                    | Ok () -> Accepted
                    | Error e -> Refused e)
              in
              let p = { Scenario.g; v; at = Engine.now engine } in
              proposal_results := (p, outcome) :: !proposal_results;
              outcome);
          drv_live = (fun () -> !live_nodes);
          drv_on_return = (fun cb -> return_hooks := !return_hooks @ [ cb ]);
        });
  let engine_stats = execute ~until:sc.Scenario.horizon engine in
  let c = iface.counts () in
  {
    scenario = sc;
    returns =
      List.sort (fun a b -> compare a.rt_ret b.rt_ret) !returns;
    observations = List.rev !observations;
    correct =
      List.sort compare
        (Scenario.correct_ids sc
        @ List.filter (fun id -> reformed.(id)) (Scenario.byzantine_ids sc));
    clocks;
    nodes = !live_nodes;
    proposal_results = List.rev !proposal_results;
    engine_stats;
    messages_sent = c.nc_sent;
    messages_delivered = c.nc_delivered;
    messages_dropped = c.nc_dropped;
    messages_duplicated = c.nc_duplicated;
    messages_in_flight = c.nc_in_flight;
    messages_by_kind = c.nc_by_kind;
    transport_retransmits = c.nc_retransmits;
    transport_dup_suppressed = c.nc_dup_suppressed;
    transport_expired = c.nc_expired;
    transport_retries_exhausted = c.nc_retries_exhausted;
    metrics = Engine.metrics engine;
    trace;
  }

let run ?on_driver sc =
  run_with ?on_driver
    ~execute:(fun ~until engine -> Engine.run ~until engine)
    sc

(* Same run, paced against the wall clock (live-demo mode). *)
let run_paced ?(speed = 1.0) sc =
  run_with
    ~execute:(fun ~until engine -> Engine.run_realtime ~speed ~until engine)
    sc
