lib/sim/metrics.ml: Buffer Fmt Hashtbl Json List Printf
