(* Tests for the primitive-level invariant monitor (IA-*/TPS-* properties
   checked from recorded observations). *)

open Helpers
open Ssba_core
module H = Ssba_harness

let run ?(n = 7) ?(seed = 41) ?(roles = []) ?(proposals = []) ?(horizon = 1.0) () =
  let params = Params.default n in
  let sc =
    H.Scenario.default ~name:"inv" ~seed ~roles ~proposals ~horizon
      ~record_observations:true params
  in
  H.Runner.run sc

let test_observations_recorded () =
  let res = run ~proposals:[ { H.Scenario.g = 0; v = "m"; at = 0.05 } ] () in
  let iaccepts =
    List.filter
      (fun (o : H.Runner.observation) ->
        match o.H.Runner.obs with
        | Ss_byz_agree.Obs_iaccept _ -> true
        | _ -> false)
      res.H.Runner.observations
  in
  check_int "one I-accept per node" 7 (List.length iaccepts);
  let broadcasts =
    List.filter
      (fun (o : H.Runner.observation) ->
        match o.H.Runner.obs with
        | Ss_byz_agree.Obs_broadcast _ -> true
        | _ -> false)
      res.H.Runner.observations
  in
  check_int "one decision broadcast per node" 7 (List.length broadcasts)

let test_observations_off_by_default () =
  let params = Params.default 7 in
  let sc =
    H.Scenario.default ~name:"inv" ~seed:41
      ~proposals:[ { H.Scenario.g = 0; v = "m"; at = 0.05 } ]
      ~horizon:1.0 params
  in
  let res = H.Runner.run sc in
  check_int "no observations unless requested" 0
    (List.length res.H.Runner.observations)

let test_ia1_correct_general () =
  let res = run ~proposals:[ { H.Scenario.g = 0; v = "m"; at = 0.05 } ] () in
  match H.Invariants.check_ia_1 res ~g:0 ~t0:0.05 with
  | [] -> ()
  | vs -> Alcotest.failf "IA-1 violations: %s" (String.concat "; " vs)

let test_ia_tps_clean_run () =
  let res = run ~proposals:[ { H.Scenario.g = 0; v = "m"; at = 0.05 } ] () in
  match H.Invariants.check res with
  | [] -> ()
  | vs -> Alcotest.failf "violations: %s" (String.concat "; " vs)

let test_invariants_under_attacks () =
  let params = Params.default 7 in
  let d = params.Params.d in
  let module S = Ssba_adversary.Strategies in
  List.iter
    (fun (name, roles, proposals) ->
      let res = run ~seed:42 ~roles ~proposals ~horizon:2.0 () in
      match H.Invariants.check res with
      | [] -> ()
      | vs -> Alcotest.failf "%s: %s" name (String.concat "; " vs))
    [
      ( "two-faced",
        [ (0, H.Scenario.Byzantine (S.two_faced_general ~v1:"a" ~v2:"b" ~at:0.05)) ],
        [] );
      ( "partial",
        [
          ( 0,
            H.Scenario.Byzantine
              (S.partial_general ~v:"a" ~at:0.05 ~targets:[ 1; 2; 3; 4; 5 ]) );
        ],
        [] );
      ( "equivocators",
        [
          (5, H.Scenario.Byzantine (S.equivocator ~v1:"a" ~v2:"b"));
          (6, H.Scenario.Byzantine (S.mimic ~delay:(2.0 *. d)));
        ],
        [ { H.Scenario.g = 0; v = "m"; at = 0.05 } ] );
    ]

let test_invariants_recurrent () =
  let params = Params.default 7 in
  let res =
    run
      ~proposals:
        [
          { H.Scenario.g = 0; v = "a"; at = 0.05 };
          { H.Scenario.g = 0; v = "b"; at = 0.05 +. (2.0 *. params.Params.delta_0) };
          { H.Scenario.g = 1; v = "c"; at = 0.06 };
        ]
      ~horizon:2.0 ()
  in
  match H.Invariants.check res with
  | [] -> ()
  | vs -> Alcotest.failf "violations: %s" (String.concat "; " vs)

let test_monitor_detects_forged_divergence () =
  (* splice a fake I-accept with a conflicting value into the observations
     and confirm IA-4 trips — guards against the monitor silently passing
     everything *)
  let res = run ~proposals:[ { H.Scenario.g = 0; v = "m"; at = 0.05 } ] () in
  let sample =
    List.find
      (fun (o : H.Runner.observation) ->
        match o.H.Runner.obs with Ss_byz_agree.Obs_iaccept _ -> true | _ -> false)
      res.H.Runner.observations
  in
  let forged =
    match sample.H.Runner.obs with
    | Ss_byz_agree.Obs_iaccept { tau_g; tau; _ } ->
        {
          sample with
          H.Runner.obs_node = (sample.H.Runner.obs_node + 1) mod 7;
          obs = Ss_byz_agree.Obs_iaccept { v = "other"; tau_g; tau };
        }
    | _ -> assert false
  in
  let res' =
    { res with H.Runner.observations = forged :: res.H.Runner.observations }
  in
  check_bool "forged divergent I-accept detected" true
    (H.Invariants.check_ia_3_4 res' <> [])

let test_monitor_detects_unforgeability_break () =
  (* a fabricated mb-accept claiming a correct node that never broadcast *)
  let res = run ~proposals:[ { H.Scenario.g = 0; v = "m"; at = 0.05 } ] () in
  let fake =
    {
      H.Runner.obs_node = 2;
      obs_g = 0;
      obs = Ss_byz_agree.Obs_mb_accept { p = 3; v = "never-sent"; k = 1; tau = 0.1; tau_g = 0.09 };
      obs_rt = 0.06;
    }
  in
  let res' = { res with H.Runner.observations = fake :: res.H.Runner.observations } in
  check_bool "TPS-2 forgery detected" true
    (List.exists
       (fun s -> String.length s >= 5 && String.sub s 0 5 = "TPS-2")
       (H.Invariants.check res'))

let trips prefix vs =
  List.exists
    (fun s ->
      String.length s >= String.length prefix
      && String.sub s 0 (String.length prefix) = prefix)
    vs

(* Perfect clocks so forged local anchors are also the real-time anchors the
   monitors cluster on. *)
let run_perfect () =
  let params = Params.default 7 in
  let sc =
    H.Scenario.default ~name:"inv" ~seed:41 ~clocks:H.Scenario.Perfect
      ~proposals:[ { H.Scenario.g = 0; v = "m"; at = 0.05 } ]
      ~horizon:1.0 ~record_observations:true params
  in
  (params, H.Runner.run sc)

let test_monitor_session_keying_sensitivity () =
  (* The session-keyed IA monitor must judge each (G, tau_g) session
     independently: conflated sessions must trip, and a weakened monitor
     that chains nearby anchors transitively or excuses one session with
     another's accepts would pass exactly these shapes. *)
  let params, res = run_perfect () in
  let d = params.Params.d in
  let session ~anchor ~v =
    List.map
      (fun node ->
        {
          H.Runner.obs_node = node;
          obs_g = 5;
          obs = Ss_byz_agree.Obs_iaccept { v; tau_g = anchor; tau = anchor +. d };
          obs_rt = anchor +. d;
        })
      (List.init 7 Fun.id)
  in
  let with_obs obs =
    { res with H.Runner.observations = res.H.Runner.observations @ obs }
  in
  (* cross-session conflation: anchors 3d apart are ONE session; two values
     inside it are a uniqueness violation, not two excusable executions *)
  let conflated =
    with_obs (session ~anchor:0.3 ~v:"a" @ session ~anchor:(0.3 +. (3.0 *. d)) ~v:"b")
  in
  check_bool "same-session divergence trips IA-4" true
    (trips "IA-4" (H.Invariants.check_ia_3_4 conflated));
  (* forbidden zone: same value re-anchored 10d apart is two sessions, and
     exactly what IA-4b outlaws *)
  let forbidden =
    with_obs (session ~anchor:0.3 ~v:"a" @ session ~anchor:(0.3 +. (10.0 *. d)) ~v:"a")
  in
  check_bool "forbidden-zone re-accept trips IA-4b" true
    (trips "IA-4b" (H.Invariants.check_ia_3_4 forbidden));
  (* legal distinct sessions: past the separation window nothing may trip —
     a monitor that conflates them would see a spurious violation here *)
  let legal_gap = (2.0 *. params.Params.delta_rmv /. d) +. 10.0 in
  let legal =
    with_obs
      (session ~anchor:0.3 ~v:"a" @ session ~anchor:(0.3 +. (legal_gap *. d)) ~v:"a")
  in
  (match H.Invariants.check_ia_3_4 legal with
  | [] -> ()
  | vs -> Alcotest.failf "legal distinct sessions flagged: %s" (String.concat "; " vs))

let test_checks_relay_judged_per_session () =
  (* Same sensitivity at the returns level: a node's decision in a *later*
     session of the same General must not excuse its absence from an earlier
     one (the General-keyed monitor's blind spot that hid the IA-4 gap). *)
  let params, res = run_perfect () in
  let d = params.Params.d in
  let ret ~node ~anchor ~v =
    {
      Types.node;
      g = 5;
      outcome = Types.Decided v;
      tau_g = anchor;
      tau_ret = anchor +. (20.0 *. d);
      rt_ret = anchor +. (20.0 *. d);
    }
  in
  let session ~anchor ~v ~nodes = List.map (fun n -> ret ~node:n ~anchor ~v) nodes in
  let all = List.init 7 Fun.id in
  let with_returns rs =
    { res with H.Runner.returns = res.H.Runner.returns @ rs }
  in
  (* complete sessions: nothing to flag *)
  let clean =
    with_returns
      (session ~anchor:0.3 ~v:"a" ~nodes:all
      @ session ~anchor:(0.3 +. (100.0 *. d)) ~v:"b" ~nodes:all)
  in
  (match H.Checks.pairwise_agreement clean with
  | [] -> ()
  | vs -> Alcotest.failf "complete sessions flagged: %s" (String.concat "; " vs));
  (* node 6 absent from session 1, present in session 2: must trip *)
  let split =
    with_returns
      (session ~anchor:0.3 ~v:"a" ~nodes:[ 0; 1; 2; 3; 4; 5 ]
      @ session ~anchor:(0.3 +. (100.0 *. d)) ~v:"b" ~nodes:all)
  in
  check_bool "cross-session excusal rejected" true
    (H.Checks.pairwise_agreement split <> [])

(* qcheck: invariants hold across random clean and adversarial scenarios. *)
let prop_invariants_random =
  QCheck.Test.make ~name:"IA/TPS invariants across random scenarios" ~count:25
    QCheck.(pair (int_range 0 1000) (int_range 0 3))
    (fun (seed, cast) ->
      let params = Params.default 7 in
      let d = params.Params.d in
      let module S = Ssba_adversary.Strategies in
      let roles =
        match cast with
        | 0 -> []
        | 1 -> [ (6, H.Scenario.Byzantine (S.spam ~period:(5.0 *. d) ~values:[ "a" ])) ]
        | 2 -> [ (6, H.Scenario.Byzantine (S.equivocator ~v1:"a" ~v2:"b")) ]
        | _ ->
            [ (0, H.Scenario.Byzantine (S.two_faced_general ~v1:"a" ~v2:"b" ~at:0.05)) ]
      in
      let proposals =
        if cast = 3 then [] else [ { H.Scenario.g = 0; v = "m"; at = 0.05 } ]
      in
      let res = run ~seed ~roles ~proposals ~horizon:1.5 () in
      H.Invariants.check res = [])

let suite =
  [
    case "observations recorded" test_observations_recorded;
    case "observations off by default" test_observations_off_by_default;
    case "IA-1 under a correct General" test_ia1_correct_general;
    case "IA/TPS on a clean run" test_ia_tps_clean_run;
    case "IA/TPS under attacks" test_invariants_under_attacks;
    case "IA/TPS under recurrent agreements" test_invariants_recurrent;
    case "monitor detects divergence" test_monitor_detects_forged_divergence;
    case "monitor detects TPS-2 forgery" test_monitor_detects_unforgeability_break;
    case "session keying sensitivity" test_monitor_session_keying_sensitivity;
    case "relay judged per session" test_checks_relay_judged_per_session;
    Helpers.qcheck prop_invariants_random;
  ]
