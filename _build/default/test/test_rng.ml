(* Tests for the splittable PRNG. *)

open Helpers
module Rng = Ssba_sim.Rng

let test_determinism () =
  let a = Rng.create 17 and b = Rng.create 17 in
  for _ = 1 to 100 do
    check_int "same seed, same stream" (Rng.bits a) (Rng.bits b)
  done

let test_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.bits a = Rng.bits b then incr same
  done;
  check_bool "different seeds diverge" true (!same < 5)

let test_split_independent () =
  let root = Rng.create 3 in
  let a = Rng.split root in
  let b = Rng.split root in
  let same = ref 0 in
  for _ = 1 to 50 do
    if Rng.bits a = Rng.bits b then incr same
  done;
  check_bool "split streams diverge" true (!same < 5)

let test_split_deterministic () =
  let mk () =
    let root = Rng.create 9 in
    let a = Rng.split root in
    let _b = Rng.split root in
    let c = Rng.split root in
    (Rng.bits a, Rng.bits c)
  in
  check_bool "splitting is reproducible" true (mk () = mk ())

let test_copy () =
  let a = Rng.create 5 in
  let _ = Rng.bits a in
  let b = Rng.copy a in
  check_int "copy preserves state" (Rng.bits a) (Rng.bits b)

let test_int_bounds () =
  let r = Rng.create 11 in
  for _ = 1 to 1000 do
    let x = Rng.int r 7 in
    check_bool "int in [0,7)" true (x >= 0 && x < 7)
  done;
  Alcotest.check_raises "bound 0 rejected" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_int_in_range () =
  let r = Rng.create 12 in
  for _ = 1 to 200 do
    let x = Rng.int_in_range r ~lo:(-3) ~hi:3 in
    check_bool "in [-3,3]" true (x >= -3 && x <= 3)
  done

let test_int_covers_range () =
  let r = Rng.create 13 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int r 5) <- true
  done;
  Array.iteri (fun i b -> check_bool (Printf.sprintf "value %d reached" i) true b) seen

let test_float_bounds () =
  let r = Rng.create 14 in
  for _ = 1 to 1000 do
    let x = Rng.float r 2.5 in
    check_bool "float in [0,2.5)" true (x >= 0.0 && x < 2.5)
  done

let test_float_in_range () =
  let r = Rng.create 15 in
  for _ = 1 to 200 do
    let x = Rng.float_in_range r ~lo:(-1.0) ~hi:1.0 in
    check_bool "in [-1,1)" true (x >= -1.0 && x < 1.0)
  done

let test_bool_balanced () =
  let r = Rng.create 16 in
  let t = ref 0 in
  for _ = 1 to 1000 do
    if Rng.bool r then incr t
  done;
  check_bool "bool roughly balanced" true (!t > 400 && !t < 600)

let test_pick () =
  let r = Rng.create 17 in
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    check_bool "picked element is a member" true
      (Array.mem (Rng.pick r arr) arr)
  done;
  Alcotest.check_raises "empty array rejected"
    (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick r [||]))

let test_pick_list () =
  let r = Rng.create 18 in
  for _ = 1 to 50 do
    check_bool "picked element is a member" true
      (List.mem (Rng.pick_list r [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done

let test_shuffle_permutation () =
  let r = Rng.create 19 in
  let arr = Array.init 20 (fun i -> i) in
  let sh = Rng.shuffle r arr in
  check_bool "shuffle is a permutation" true
    (List.sort compare (Array.to_list sh) = Array.to_list arr);
  check_bool "original untouched" true (arr = Array.init 20 (fun i -> i))

let test_subset () =
  let r = Rng.create 20 in
  let arr = Array.init 10 (fun i -> i) in
  let s = Rng.subset r ~k:4 arr in
  check_int "subset size" 4 (Array.length s);
  check_int "subset distinct" 4
    (List.length (List.sort_uniq compare (Array.to_list s)));
  Array.iter (fun x -> check_bool "member" true (Array.mem x arr)) s

(* qcheck: int stays in bounds for arbitrary positive bounds and seeds. *)
let prop_int_bounds =
  QCheck.Test.make ~name:"rng int bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.int r bound in
      x >= 0 && x < bound)

let prop_float_bounds =
  QCheck.Test.make ~name:"rng float bounds" ~count:500
    QCheck.(pair small_int (float_range 0.001 1000.0))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let x = Rng.float r bound in
      x >= 0.0 && x < bound)

let suite =
  [
    case "determinism" test_determinism;
    case "different seeds diverge" test_different_seeds;
    case "split independence" test_split_independent;
    case "split determinism" test_split_deterministic;
    case "copy" test_copy;
    case "int bounds" test_int_bounds;
    case "int_in_range" test_int_in_range;
    case "int covers range" test_int_covers_range;
    case "float bounds" test_float_bounds;
    case "float_in_range" test_float_in_range;
    case "bool balanced" test_bool_balanced;
    case "pick" test_pick;
    case "pick_list" test_pick_list;
    case "shuffle permutation" test_shuffle_permutation;
    case "subset" test_subset;
    Helpers.qcheck prop_int_bounds;
    Helpers.qcheck prop_float_bounds;
  ]
