test/test_heap.ml: Helpers List QCheck Ssba_sim
