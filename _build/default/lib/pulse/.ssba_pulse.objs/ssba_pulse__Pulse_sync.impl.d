lib/pulse/pulse_sync.ml: List Printf Ssba_core Ssba_sim String
