lib/net/delay.ml: Ssba_sim
