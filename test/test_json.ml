(* Tests for the minimal dependency-free JSON codec behind the JSONL
   exports. *)

open Helpers
module J = Ssba_sim.Json

let round_trip v = J.of_string (J.to_string v)

let test_scalars () =
  check_str "null" "null" (J.to_string J.Null);
  check_str "true" "true" (J.to_string (J.Bool true));
  check_str "int-valued num" "3" (J.to_string (J.Num 3.0));
  check_str "string" "\"hi\"" (J.to_string (J.Str "hi"));
  check_bool "null rt" true (round_trip J.Null = J.Null);
  check_bool "bool rt" true (round_trip (J.Bool false) = J.Bool false)

let test_string_escaping () =
  let s = "quote\" backslash\\ newline\n tab\t control\x01 utf8 déjà" in
  match round_trip (J.Str s) with
  | J.Str s' -> check_str "escaped round trip" s s'
  | _ -> Alcotest.fail "expected a string"

let test_float_round_trip () =
  List.iter
    (fun x ->
      match round_trip (J.Num x) with
      | J.Num y ->
          if not (Float.equal x y) then
            Alcotest.failf "float %h round-tripped to %h" x y
      | _ -> Alcotest.fail "expected a number")
    [ 0.0; -0.0; 1.5; 1e-300; 1e300; 0.1; 1.0 /. 3.0; 123456789.123456789 ]

let test_nonfinite_encode_as_null () =
  check_str "nan" "null" (J.to_string (J.Num Float.nan));
  check_str "inf" "null" (J.to_string (J.Num Float.infinity))

let test_nested () =
  let v =
    J.Obj
      [
        ("a", J.Arr [ J.Num 1.0; J.Str "two"; J.Null ]);
        ("b", J.Obj [ ("nested", J.Bool true) ]);
      ]
  in
  check_bool "nested round trip" true (round_trip v = v)

let test_parse_whitespace_and_accessors () =
  let j = J.of_string "  { \"x\" : [ 1 , 2.5 ] , \"s\" : \"v\" }  " in
  check_bool "member x" true
    (J.member "x" j = Some (J.Arr [ J.Num 1.0; J.Num 2.5 ]));
  check_bool "string accessor" true
    (Option.bind (J.member "s" j) J.to_string_opt = Some "v");
  check_bool "int accessor integral only" true
    (J.to_int_opt (J.Num 2.0) = Some 2 && J.to_int_opt (J.Num 2.5) = None);
  check_bool "float accessor" true (J.to_float_opt (J.Num 2.5) = Some 2.5);
  check_bool "member on non-object" true (J.member "x" (J.Num 1.0) = None)

let test_parse_errors () =
  List.iter
    (fun s ->
      match J.of_string s with
      | exception J.Parse_error _ -> ()
      | v -> Alcotest.failf "%S should not parse, got %s" s (J.to_string v))
    [ ""; "{"; "[1,"; "tru"; "\"unterminated"; "{\"a\":1} trailing"; "01x"; "{'a':1}" ]

let suite =
  [
    case "scalars" test_scalars;
    case "string escaping" test_string_escaping;
    case "float round trip" test_float_round_trip;
    case "nan/inf encode as null" test_nonfinite_encode_as_null;
    case "nested values" test_nested;
    case "whitespace + accessors" test_parse_whitespace_and_accessors;
    case "parse errors" test_parse_errors;
  ]
