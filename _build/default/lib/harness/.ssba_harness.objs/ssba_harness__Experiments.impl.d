lib/harness/experiments.ml: Checks Float Hashtbl Invariants List Metrics Option Printf Runner Scenario Ssba_adversary Ssba_baseline Ssba_core Ssba_net Ssba_pulse Ssba_sim String Table
