lib/sim/clock.ml: Rng
