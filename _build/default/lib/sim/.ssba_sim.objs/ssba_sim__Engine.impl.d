lib/sim/engine.ml: Heap Trace Unix
