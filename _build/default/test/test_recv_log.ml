(* Tests for the timestamped receive log. *)

open Helpers
module L = Ssba_core.Recv_log

let test_note_and_count () =
  let l = L.create () in
  check_int "empty" 0 (L.count l);
  L.note l ~sender:1 ~at:1.0;
  L.note l ~sender:2 ~at:2.0;
  L.note l ~sender:1 ~at:3.0;
  check_int "distinct senders" 2 (L.count l);
  check_bool "senders sorted" true (L.senders l = [ 1; 2 ])

let test_note_keeps_max () =
  let l = L.create () in
  L.note l ~sender:1 ~at:5.0;
  L.note l ~sender:1 ~at:3.0;
  (* replay of an older message must not rewind *)
  check_bool "latest kept" true (L.latest l = Some 5.0)

let test_window_count () =
  let l = L.create () in
  L.note l ~sender:1 ~at:1.0;
  L.note l ~sender:2 ~at:2.0;
  L.note l ~sender:3 ~at:3.0;
  check_int "full window" 3 (L.count_in_window l ~now:3.0 ~width:2.0);
  check_int "narrow window" 2 (L.count_in_window l ~now:3.0 ~width:1.0);
  check_int "point window" 1 (L.count_in_window l ~now:3.0 ~width:0.0);
  check_int "window in the past excludes later arrivals" 1
    (L.count_in_window l ~now:1.5 ~width:1.0)

let test_window_excludes_future () =
  let l = L.create () in
  L.corrupt l ~sender:1 ~at:10.0;
  (* future garbage *)
  L.note l ~sender:2 ~at:1.0;
  check_int "future arrivals not counted" 1
    (L.count_in_window l ~now:2.0 ~width:5.0)

let test_shortest_window () =
  let l = L.create () in
  L.note l ~sender:1 ~at:1.0;
  L.note l ~sender:2 ~at:2.0;
  L.note l ~sender:3 ~at:4.0;
  (match L.shortest_window l ~now:5.0 ~count:2 with
  | Some alpha -> check_float "2 most recent span" 3.0 alpha
  | None -> Alcotest.fail "expected a window");
  (match L.shortest_window l ~now:5.0 ~count:3 with
  | Some alpha -> check_float "3 most recent span" 4.0 alpha
  | None -> Alcotest.fail "expected a window");
  check_bool "too few senders" true (L.shortest_window l ~now:5.0 ~count:4 = None);
  check_bool "count 0 is trivially 0" true
    (L.shortest_window l ~now:5.0 ~count:0 = Some 0.0)

let test_shortest_window_refresh () =
  (* A re-send refreshes the sender's position in the window. *)
  let l = L.create () in
  L.note l ~sender:1 ~at:1.0;
  L.note l ~sender:2 ~at:1.5;
  L.note l ~sender:1 ~at:9.0;
  match L.shortest_window l ~now:9.0 ~count:2 with
  | Some alpha -> check_float "old arrival governs" 7.5 alpha
  | None -> Alcotest.fail "expected a window"

let test_decay () =
  let l = L.create () in
  L.note l ~sender:1 ~at:1.0;
  L.note l ~sender:2 ~at:5.0;
  L.decay l ~horizon:2.0;
  check_int "old removed" 1 (L.count l);
  check_bool "survivor" true (L.senders l = [ 2 ])

let test_sanitize () =
  let l = L.create () in
  L.note l ~sender:1 ~at:1.0;
  L.corrupt l ~sender:2 ~at:99.0;
  L.sanitize l ~now:5.0;
  check_int "future dropped" 1 (L.count l);
  check_bool "real one kept" true (L.senders l = [ 1 ])

let test_clear () =
  let l = L.create () in
  L.note l ~sender:1 ~at:1.0;
  L.clear l;
  check_bool "empty" true (L.is_empty l)

(* qcheck: count_in_window is monotone in width, and shortest_window is
   consistent with count_in_window. *)
let arrivals_gen =
  QCheck.(list_of_size Gen.(int_range 0 20) (pair (int_range 0 9) (float_range 0.0 100.0)))

let prop_window_monotone =
  QCheck.Test.make ~name:"window count monotone in width" ~count:300
    QCheck.(pair arrivals_gen (pair (float_range 0.0 100.0) (float_range 0.0 50.0)))
    (fun (arrivals, (now, w)) ->
      let l = L.create () in
      List.iter (fun (s, at) -> L.note l ~sender:s ~at) arrivals;
      L.count_in_window l ~now ~width:w
      <= L.count_in_window l ~now ~width:(w +. 10.0))

let prop_shortest_window_consistent =
  QCheck.Test.make ~name:"shortest window contains exactly >= count senders"
    ~count:300
    QCheck.(pair arrivals_gen (int_range 1 5))
    (fun (arrivals, count) ->
      let l = L.create () in
      List.iter (fun (s, at) -> L.note l ~sender:s ~at) arrivals;
      let now = 100.0 in
      match L.shortest_window l ~now ~count with
      | None -> L.count_in_window l ~now ~width:now < count
      | Some alpha ->
          (* pad by an ulp-scale epsilon: [now - (now - at)] need not round
             back to exactly [at] *)
          L.count_in_window l ~now ~width:(alpha +. 1e-9) >= count)

let suite =
  [
    case "note and count" test_note_and_count;
    case "note keeps max" test_note_keeps_max;
    case "window count" test_window_count;
    case "window excludes future" test_window_excludes_future;
    case "shortest window" test_shortest_window;
    case "shortest window refresh" test_shortest_window_refresh;
    case "decay" test_decay;
    case "sanitize" test_sanitize;
    case "clear" test_clear;
    Helpers.qcheck prop_window_monotone;
    Helpers.qcheck prop_shortest_window_consistent;
  ]
