(* Fuzzer tests: generator validity properties (over the QCheck arbitraries
   in Helpers.Q), JSON replay round-trips, result-digest reproduction, the
   bounded smoke campaign that wires fuzzing into tier-1, and the
   end-to-end check that a deliberately weakened deadline oracle is caught
   and shrunk to a minimal scenario. *)

open Helpers
module F = Ssba_fuzz
module S = Ssba_harness.Scenario
module C = Ssba_adversary.Catalog

(* --- generator validity properties --- *)

let prop_specs_validate =
  QCheck.Test.make ~name:"generated specs validate" ~count:60
    (Q.arb_spec ())
    (fun spec ->
      match F.Spec.validate spec with
      | Ok () -> true
      | Error e -> QCheck.Test.fail_reportf "invalid spec: %s" e)

let prop_cast_respects_resilience =
  QCheck.Test.make ~name:"casts respect f < n/3" ~count:60
    (Q.arb_spec ())
    (fun spec ->
      3 * spec.F.Spec.f < spec.F.Spec.n
      && List.length spec.F.Spec.cast <= spec.F.Spec.f)

let prop_events_sorted_in_horizon =
  QCheck.Test.make ~name:"events sorted and in-horizon" ~count:60
    (Q.arb_spec ())
    (fun spec ->
      let ts = List.map F.Spec.event_time spec.F.Spec.events in
      List.sort compare ts = ts
      && List.for_all (fun t -> t >= 0.0 && t <= spec.F.Spec.horizon) ts)

let prop_json_roundtrip =
  QCheck.Test.make ~name:"spec JSON round-trip is identity" ~count:60
    (Q.arb_spec ())
    (fun spec ->
      let j = Ssba_sim.Json.to_string (F.Spec.to_json spec) in
      match F.Spec.of_json (Ssba_sim.Json.of_string j) with
      | Ok spec' -> spec' = spec
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let prop_event_roundtrip =
  QCheck.Test.make ~name:"event JSON round-trip is identity" ~count:100
    (Q.arb_event ~n:7 ~horizon:2.0)
    (fun e ->
      let spec =
        {
          F.Spec.name = "event";
          seed = 0;
          n = 7;
          f = 2;
          delay = F.Spec.Fixed 0.001;
          clocks = S.Perfect;
          cast = [];
          proposals = [];
          events = [ e ];
          transport = None;
          horizon = 2.0;
          session_capacity = None;
          blackout = true;
          r_slack = Ssba_core.Params.default_r_slack;
          service = None;
        }
      in
      match F.Spec.of_json (F.Spec.to_json spec) with
      | Ok spec' -> spec'.F.Spec.events = [ e ]
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e)

let prop_strategy_simplifies_to_silent =
  QCheck.Test.make ~name:"strategy shrinking terminates at silent" ~count:100
    (Q.arb_strategy ~n:7)
    (fun c ->
      let rec descend c steps =
        if steps > 10 then false
        else
          match C.simplify c with [] -> c = C.Silent | c' :: _ -> descend c' (steps + 1)
      in
      descend c 0)

(* --- catalog/behaviour consistency --- *)

let test_catalog_names () =
  let rng = Ssba_sim.Rng.create 7 in
  for _ = 1 to 50 do
    let c =
      C.generate rng ~values:[ "a"; "b" ] ~at_lo:0.0 ~at_hi:1.0 ~n:7
    in
    check_str "catalog name matches instantiated behaviour" (C.name c)
      (Ssba_adversary.Behavior.name (C.to_behavior ~d:0.0011 c))
  done

(* --- replay: files and digests --- *)

let test_replay_file_roundtrip () =
  let spec =
    F.Campaign.spec_of_iteration ~seed:42 ~gen:F.Gen.default_config 3
  in
  let path = Filename.temp_file "ssba-fuzz" ".json" in
  F.Spec.save path spec;
  (match F.Spec.load path with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok spec' ->
      check_bool "spec -> file -> spec is identity" true (spec' = spec);
      let _, r1 = F.Oracle.run spec in
      let _, r2 = F.Oracle.run spec' in
      check_str "replayed run reproduces the result digest" r1.F.Oracle.digest
        r2.F.Oracle.digest);
  Sys.remove path

let test_run_digest_deterministic () =
  let spec =
    F.Campaign.spec_of_iteration ~seed:11 ~gen:F.Gen.default_config 0
  in
  let r1 = Ssba_harness.Runner.run (F.Spec.to_scenario spec) in
  let r2 = Ssba_harness.Runner.run (F.Spec.to_scenario spec) in
  check_str "two runs of one spec share a digest"
    (Ssba_harness.Checks.result_digest r1)
    (Ssba_harness.Checks.result_digest r2)

(* --- the bounded smoke campaign (tier-1's fuzzing exposure) --- *)

let smoke_config =
  {
    F.Campaign.default_config with
    F.Campaign.seed = 42;
    runs = 50;
    shrink = false;
  }

let test_smoke_campaign () =
  let s = F.Campaign.run smoke_config in
  check_int "all 50 scenarios executed" 50 s.F.Campaign.executed;
  List.iter
    (fun (fc : F.Campaign.failure_case) ->
      List.iter
        (fun f ->
          Fmt.epr "iteration %d: %a@." fc.F.Campaign.index F.Oracle.pp_failure f)
        fc.F.Campaign.report.F.Oracle.failures)
    s.F.Campaign.failed;
  check_int "no oracle failures over the smoke corpus" 0
    (List.length s.F.Campaign.failed);
  (* Determinism regression pin: the corpus digest fingerprints every run's
     observable results bit for bit. An engine or protocol change that
     alters event order, RNG draws or outcomes moves it; a pure performance
     change must not. Re-pinned for the widen default gate and the
     edge-sampling delay model; the pre-fix corpus is still pinned below in
     [test_legacy_corpora_unchanged]. *)
  check_str "corpus digest pinned" "82e9bf5f0d962392d14ee51bb606a029"
    s.F.Campaign.corpus_digest

(* The churn tier: 50 continuous-churn scenarios. Beyond "no failures", the
   per-interval oracle must actually have *measured* stabilization on these —
   a corpus whose recovery windows all went unprobed would pass vacuously. *)
let test_churn_campaign () =
  let s =
    F.Campaign.run { smoke_config with F.Campaign.gen = F.Gen.chaos_config }
  in
  check_int "all 50 churn scenarios executed" 50 s.F.Campaign.executed;
  List.iter
    (fun (fc : F.Campaign.failure_case) ->
      List.iter
        (fun f ->
          Fmt.epr "iteration %d: %a@." fc.F.Campaign.index F.Oracle.pp_failure f)
        fc.F.Campaign.report.F.Oracle.failures)
    s.F.Campaign.failed;
  check_int "no oracle failures over the churn corpus" 0
    (List.length s.F.Campaign.failed);
  check_str "churn corpus digest pinned" "d35f52319e01b619745bb3534b627482"
    s.F.Campaign.corpus_digest;
  (* re-judge a sample and check each disruption's recovery was measured and
     within the paper's bound *)
  List.iter
    (fun i ->
      let spec =
        F.Campaign.spec_of_iteration ~seed:42 ~gen:F.Gen.chaos_config i
      in
      let stb = (F.Spec.params spec).Ssba_core.Params.delta_stb in
      let res, report = F.Oracle.run spec in
      check_bool "sampled churn spec passes" true (not (F.Oracle.failed report));
      let measured =
        List.filter_map
          (fun (r : Ssba_harness.Checks.episode_report) ->
            r.Ssba_harness.Checks.recovery_time)
          (Ssba_harness.Checks.recovery_report res)
      in
      check_bool "at least one recovery measured" true (measured <> []);
      List.iter
        (fun rt ->
          check_bool "measured recovery within Delta_stb" true (rt <= stb))
        measured)
    [ 0; 1; 2; 3; 4 ]

(* A genuine find from the churn tier, now pinned in its *fixed* state:
   iteration 133 of the seed-2027 churn batch has a flip-flop General whose
   forged initiations land < 1d apart with different values. Before the
   session-keyed core, old-session msgd-broadcast stragglers survived the
   reset, the next session's anchor replayed them, and one correct node
   I-accepted "gamma" while the rest I-accepted "beta" — an [IA-4]
   Uniqueness violation. The anchor-scoped purge in [Msgd_broadcast] plus
   the re-initiation blackout in [Separation] close the gap; the chaos
   events stay stripped so the run is one coherent interval and nothing is
   excused by incoherence. If this test regresses, the IA-4 fix broke. *)
let test_known_ia4_gap_fixed () =
  let spec =
    F.Campaign.spec_of_iteration ~seed:2027 ~gen:F.Gen.chaos_config 133
  in
  let spec = { spec with F.Spec.events = [] } in
  let _, report = F.Oracle.run spec in
  List.iter (fun f -> Fmt.epr "%a@." F.Oracle.pp_failure f) report.F.Oracle.failures;
  check_bool "the 2027/133 repro passes every oracle" false
    (F.Oracle.failed report)

(* The block-R knife-edge, now pinned in its *fixed* state: iteration 173 of
   the seed-7404 batch (chaos generator capped at 2 Byzantine casts,
   edge-delay sampling off so the pre-fix generator stream reproduces the
   exact scenario, events stripped so the run is one coherent interval). The
   flip-flop General's interference leaves G=0's late proposal exactly on
   the fast-path acceptance boundary: under the legacy 4d gate node 0
   decided in round 0 while nodes 2 and 3 missed the window by a fraction of
   d and aborted — a genuine mixed decide/abort episode. The widen default
   accepts up to 5d, covered by [IA-1D]'s slack, so the same timings now
   land every correct node on the fast path. Both faces are pinned: the
   default gate passes every oracle (including Timeliness-1a — the old skew
   metric once read abort return times as decision timestamps here), and the
   same spec re-run under `--r-slack legacy` still reproduces the stranded
   abort, so the sentinel survives as the regression witness for the fix. *)
let test_knife_edge_fixed () =
  let spec =
    F.Campaign.spec_of_iteration ~seed:7404
      ~gen:
        { F.Gen.chaos_config with F.Gen.max_cast = 2; F.Gen.edge_delays = false }
      173
  in
  let spec = { spec with F.Spec.events = [] } in
  check_bool "the rebuilt spec carries the default gate" true
    (spec.F.Spec.r_slack = Ssba_core.Params.default_r_slack);
  let res, report = F.Oracle.run spec in
  List.iter
    (fun f -> Fmt.epr "%a@." F.Oracle.pp_failure f)
    report.F.Oracle.failures;
  check_bool "the 7404/173 repro passes every oracle under the default gate"
    false
    (F.Oracle.failed report);
  let knife =
    List.filter
      (fun (r : Ssba_core.Types.return_info) ->
        r.Ssba_core.Types.g = 0 && r.Ssba_core.Types.tau_g > 1.0)
      res.Ssba_harness.Runner.returns
  in
  let outcome_of id =
    List.find_map
      (fun (r : Ssba_core.Types.return_info) ->
        if r.Ssba_core.Types.node = id then Some r.Ssba_core.Types.outcome
        else None)
      knife
  in
  List.iter
    (fun id ->
      check_bool
        (Printf.sprintf "node %d decided the fast-path value" id)
        true
        (outcome_of id = Some (Ssba_core.Types.Decided "p1-crash-wave-b")))
    [ 0; 2; 3 ];
  (* the legacy sentinel: the same timings under the 4d gate still strand
     nodes 2 and 3 — if this half shifts, the knife scenario itself moved *)
  let legacy = { spec with F.Spec.r_slack = Ssba_core.Params.Legacy } in
  let lres, lreport = F.Oracle.run legacy in
  let by_oracle name =
    List.filter (fun f -> f.F.Oracle.oracle = name) lreport.F.Oracle.failures
  in
  check_int "legacy gate: two agreement failures (nodes 2 and 3)" 2
    (List.length (by_oracle "agreement"));
  check_int "legacy gate: one validity failure" 1
    (List.length (by_oracle "validity"));
  check_int "legacy gate: aborts carry no decision timestamp" 0
    (List.length (by_oracle "timeliness-1a"));
  check_int "legacy gate: nothing else fired" 3
    (List.length lreport.F.Oracle.failures);
  let laborted id =
    List.exists
      (fun (r : Ssba_core.Types.return_info) ->
        r.Ssba_core.Types.node = id
        && r.Ssba_core.Types.g = 0
        && r.Ssba_core.Types.tau_g > 1.0
        && r.Ssba_core.Types.outcome = Ssba_core.Types.Aborted)
      lres.Ssba_harness.Runner.returns
  in
  check_bool "legacy gate: node 2 aborted" true (laborted 2);
  check_bool "legacy gate: node 3 aborted" true (laborted 3)

(* The pre-fix corpora are frozen: the legacy gate plus the pre-edge
   generator streams must keep reproducing the exact digests PR 7 pinned.
   This is what makes `--r-slack legacy --edge-delays off` a faithful
   time machine (and what proves the new default's digest movement comes
   from the gate and the sampler, not an accidental stream change). *)
let test_legacy_corpora_unchanged () =
  let legacy gen =
    { gen with F.Gen.r_slack = Ssba_core.Params.Legacy; F.Gen.edge_delays = false }
  in
  let digest gen =
    (F.Campaign.run { smoke_config with F.Campaign.gen = legacy gen })
      .F.Campaign.corpus_digest
  in
  check_str "legacy clean corpus digest unchanged"
    "325df1195a3428bdaf97dbd83eadcb7e"
    (digest F.Gen.default_config);
  check_str "legacy churn corpus digest unchanged"
    "673e388e3b70db55e12440417f9d56d8"
    (digest F.Gen.chaos_config)

(* Weakened-gate sensitivity: a churn campaign run under `--r-slack legacy`
   with the boundary-sampling delay model (the edge atoms plus the gate-edge
   adversary, both on by default) must rediscover the stranded-abort class
   the widen default closes. This keeps the fix honest from the fuzz side
   the same way the mc knife config does from the exhaustive side: the
   oracles still have teeth against the legacy gate, and the edge sampler
   demonstrably reaches the boundary. The decisive knob is then isolated by
   flipping ONLY r_slack on the failing spec — it must pass. *)
let test_legacy_gate_caught_by_edge_sampling () =
  let s =
    F.Campaign.run
      {
        smoke_config with
        F.Campaign.seed = 4;
        gen =
          { F.Gen.chaos_config with F.Gen.r_slack = Ssba_core.Params.Legacy };
      }
  in
  match s.F.Campaign.failed with
  | [] -> Alcotest.fail "legacy gate survived the boundary-sampling campaign"
  | fc :: _ ->
      check_bool "the catch is a stranded-abort agreement violation" true
        (List.exists
           (fun (f : F.Oracle.failure) -> f.F.Oracle.oracle = "agreement")
           fc.F.Campaign.report.F.Oracle.failures);
      let fixed =
        { fc.F.Campaign.spec with F.Spec.r_slack = Ssba_core.Params.default_r_slack }
      in
      let _, r = F.Oracle.run fixed in
      check_bool "the same spec under the default gate passes every oracle"
        false (F.Oracle.failed r)

(* The shrinker offers (exactly) one gate reduction: a non-default r_slack
   proposes the default, the default proposes nothing. On a gate-caused
   failure the candidate is tried and rejected (the failure vanishes), so
   minimized gate repros keep their legacy marker. *)
let test_shrink_offers_r_slack_reduction () =
  let spec =
    F.Campaign.spec_of_iteration ~seed:42 ~gen:F.Gen.default_config 0
  in
  let legacy = { spec with F.Spec.r_slack = Ssba_core.Params.Legacy } in
  check_bool "legacy spec offers a reduction to the default gate" true
    (List.exists
       (fun (c : F.Spec.t) ->
         c.F.Spec.r_slack = Ssba_core.Params.default_r_slack
         && { c with F.Spec.r_slack = legacy.F.Spec.r_slack } = legacy)
       (F.Shrink.candidates legacy));
  check_bool "default spec offers no r_slack candidate" true
    (List.for_all
       (fun (c : F.Spec.t) ->
         c.F.Spec.r_slack = Ssba_core.Params.default_r_slack)
       (F.Shrink.candidates spec))

(* The overload tier: 50 recurrent-service scenarios under open-loop arrival
   pressure over a lossy transport. Beyond "no failures", the corpus must
   actually have exercised the admission machinery — a tier whose scenarios
   all idle below the watermark would pass the shed/drain oracles
   vacuously. *)
let test_overload_campaign () =
  let s =
    F.Campaign.run { smoke_config with F.Campaign.gen = F.Gen.overload_config }
  in
  check_int "all 50 overload scenarios executed" 50 s.F.Campaign.executed;
  List.iter
    (fun (fc : F.Campaign.failure_case) ->
      List.iter
        (fun f ->
          Fmt.epr "iteration %d: %a@." fc.F.Campaign.index F.Oracle.pp_failure f)
        fc.F.Campaign.report.F.Oracle.failures)
    s.F.Campaign.failed;
  check_int "no oracle failures over the overload corpus" 0
    (List.length s.F.Campaign.failed);
  check_str "overload corpus digest pinned" "053d3772010522e3c6d76414574f9698"
    s.F.Campaign.corpus_digest;
  (* re-judge a sample: every spec admits traffic, and across the sample the
     controller demonstrably shed under pressure at least once *)
  let shed_total = ref 0 in
  List.iter
    (fun i ->
      let spec =
        F.Campaign.spec_of_iteration ~seed:42 ~gen:F.Gen.overload_config i
      in
      let res, report = F.Oracle.run spec in
      check_bool "sampled overload spec passes" true (not (F.Oracle.failed report));
      let counter name =
        Option.value ~default:0
          (Ssba_sim.Metrics.find_counter res.Ssba_harness.Runner.metrics name)
      in
      check_bool "sampled overload spec admitted sessions" true
        (counter "service.admitted" > 0);
      shed_total := !shed_total + counter "service.shed")
    [ 0; 1; 2; 3; 4 ];
  check_bool "the sample exercised load shedding" true (!shed_total > 0)

(* The shrinker's service reductions, pinned in both directions: a service
   spec offers dropping the workload outright and flattening bursty arrivals
   to Poisson; a service-free spec offers no service candidate at all. *)
let test_shrink_offers_service_reductions () =
  let module W = Ssba_service.Workload in
  let svc_spec =
    (* overload iterations are all service specs by construction *)
    F.Campaign.spec_of_iteration ~seed:42 ~gen:F.Gen.overload_config 5
  in
  (match svc_spec.F.Spec.service with
  | None -> Alcotest.fail "overload iteration 5 lost its workload"
  | Some w ->
      check_bool "service spec offers the drop-service reduction" true
        (List.exists
           (fun (c : F.Spec.t) -> c.F.Spec.service = None)
           (F.Shrink.candidates svc_spec));
      (match w.W.arrivals with
      | W.Bursty _ ->
          check_bool "bursty workload offers the flatten-to-Poisson reduction"
            true
            (List.exists
               (fun (c : F.Spec.t) ->
                 match c.F.Spec.service with
                 | Some w' -> (
                     match w'.W.arrivals with W.Poisson _ -> true | _ -> false)
                 | None -> false)
               (F.Shrink.candidates svc_spec))
      | W.Poisson _ -> ());
      (* a service spec must not offer the bare transport strip: workload
         times are drawn at the transport-inflated d, and the candidate's
         per-d bookkeeping under the old horizon explodes *)
      check_bool "service spec keeps its transport" true
        (List.for_all
           (fun (c : F.Spec.t) ->
             c.F.Spec.service = None || c.F.Spec.transport <> None)
           (F.Shrink.candidates svc_spec)));
  let plain =
    F.Campaign.spec_of_iteration ~seed:42 ~gen:F.Gen.default_config 0
  in
  check_bool "service-free spec offers no service candidate" true
    (List.for_all
       (fun (c : F.Spec.t) -> c.F.Spec.service = None)
       (F.Shrink.candidates plain))

(* Drain-monitor sensitivity: the no-drain oracle must actually be able to
   fire. Starve the watermarks (degrade on the second concurrent session,
   recover only at zero), run once to observe a real degrade-entry edge,
   then truncate a second run one [d] past that edge: exits need a >= 4d
   session-GC drain, so the episode is provably still open at the new
   horizon and the oracle must flag it — on both the trace walk and the
   driver's own episode bookkeeping. *)
let test_service_drain_sensitivity () =
  let module W = Ssba_service.Workload in
  let module Tr = Ssba_sim.Trace in
  let spec =
    F.Campaign.spec_of_iteration ~seed:42 ~gen:F.Gen.overload_config 0
  in
  match spec.F.Spec.service with
  | None -> Alcotest.fail "overload iteration 0 lost its workload"
  | Some w ->
      let starve w = { w with W.high_watermark = 0.02; low_watermark = 0.01 } in
      let starved0 = { spec with F.Spec.service = Some (starve w) } in
      let res0, _ = F.Oracle.run starved0 in
      let t_edge =
        List.fold_left
          (fun acc (e : Tr.entry) ->
            match e.Tr.event with
            | Tr.Service_mode { degraded = true; _ } -> Float.max acc e.Tr.time
            | _ -> acc)
          0.0
          (Tr.to_list res0.Ssba_harness.Runner.trace)
      in
      check_bool "starved watermarks do trigger degraded mode" true
        (t_edge > 0.0);
      let cut = t_edge +. (F.Spec.params spec).Ssba_core.Params.d in
      let starved =
        {
          starved0 with
          F.Spec.horizon = cut;
          service = Some { (starve w) with W.stop_at = Float.min w.W.stop_at cut };
        }
      in
      (match F.Spec.validate starved with
      | Ok () -> ()
      | Error e -> Alcotest.failf "starved spec invalid: %s" e);
      let _, report = F.Oracle.run starved in
      check_bool "starved service spec fails" true (F.Oracle.failed report);
      check_bool "and the drain oracle is what fires" true
        (List.exists
           (fun (f : F.Oracle.failure) ->
             String.equal f.F.Oracle.oracle "service-drain")
           report.F.Oracle.failures)

let test_campaign_deterministic () =
  let s1 = F.Campaign.run { smoke_config with F.Campaign.runs = 15 } in
  let s2 = F.Campaign.run { smoke_config with F.Campaign.runs = 15 } in
  check_str "identical campaigns share a corpus digest"
    s1.F.Campaign.corpus_digest s2.F.Campaign.corpus_digest

(* --- the fuzzer catches and minimizes a real violation --- *)

(* Weaken the Timeliness-1a deadline to 2% of the paper's 3d bound: every
   multi-node decision now "violates" it, which proves the
   generate -> judge -> shrink pipeline end to end. The shrunk scenario must
   be small: the acceptance bar is <= 6 nodes and <= 3 events. *)
let test_injected_violation_caught_and_shrunk () =
  let config =
    {
      F.Campaign.default_config with
      F.Campaign.seed = 4242;
      runs = 25;
      oracle =
        { F.Oracle.default_config with F.Oracle.skew_deadline_scale = 0.02 };
      shrink = true;
    }
  in
  let s = F.Campaign.run config in
  match s.F.Campaign.failed with
  | [] -> Alcotest.fail "weakened deadline oracle caught nothing"
  | fc :: _ -> (
      check_bool "failure is the injected deadline" true
        (List.exists
           (fun (f : F.Oracle.failure) -> f.F.Oracle.oracle = "timeliness-1a")
           fc.F.Campaign.report.F.Oracle.failures);
      (* the failing spec replays from its file byte-for-byte *)
      let path = Filename.temp_file "ssba-fuzz-fail" ".json" in
      F.Spec.save path fc.F.Campaign.spec;
      (match F.Spec.load path with
      | Error e -> Alcotest.failf "reload failed: %s" e
      | Ok spec' ->
          let _, r = F.Oracle.run ~config:config.F.Campaign.oracle spec' in
          check_str "saved failing scenario reproduces its digest"
            fc.F.Campaign.report.F.Oracle.digest r.F.Oracle.digest;
          check_bool "saved failing scenario still fails" true (F.Oracle.failed r));
      Sys.remove path;
      match fc.F.Campaign.shrunk with
      | None -> Alcotest.fail "no shrink result"
      | Some (spec, report, stats) ->
          check_bool "shrunk scenario still fails" true (F.Oracle.failed report);
          check_bool
            (Printf.sprintf "shrunk to <= 6 nodes (got %d)" spec.F.Spec.n)
            true (spec.F.Spec.n <= 6);
          check_bool
            (Printf.sprintf "shrunk to <= 3 events (got %d)"
               (List.length spec.F.Spec.events))
            true
            (List.length spec.F.Spec.events <= 3);
          check_bool "shrinker did some work" true (stats.F.Shrink.attempts > 0))

let suite =
  [
    qcheck prop_specs_validate;
    qcheck prop_cast_respects_resilience;
    qcheck prop_events_sorted_in_horizon;
    qcheck prop_json_roundtrip;
    qcheck prop_event_roundtrip;
    qcheck prop_strategy_simplifies_to_silent;
    case "catalog names match behaviours" test_catalog_names;
    case "replay file round-trips and reproduces the digest" test_replay_file_roundtrip;
    case "run digest is deterministic" test_run_digest_deterministic;
    slow_case "smoke campaign: 50 scenarios, seed 42, no failures" test_smoke_campaign;
    slow_case "churn campaign: 50 chaos scenarios, recovery measured and bounded"
      test_churn_campaign;
    case "campaign corpus digest is deterministic" test_campaign_deterministic;
    case "IA-4 gap fixed: the 2027/133 repro passes" test_known_ia4_gap_fixed;
    case "block-R knife-edge fixed: the 7404/173 repro passes" test_knife_edge_fixed;
    slow_case "legacy corpora unchanged under --r-slack legacy"
      test_legacy_corpora_unchanged;
    slow_case "legacy gate caught by the edge-sampling churn tier"
      test_legacy_gate_caught_by_edge_sampling;
    case "shrinker offers the r_slack-to-default reduction"
      test_shrink_offers_r_slack_reduction;
    slow_case "injected deadline violation is caught and shrunk"
      test_injected_violation_caught_and_shrunk;
    slow_case "overload campaign: 50 service scenarios, shed/drain proven"
      test_overload_campaign;
    case "shrinker offers the service reductions"
      test_shrink_offers_service_reductions;
    slow_case "drain oracle fires on a starved service spec"
      test_service_drain_sensitivity;
  ]
