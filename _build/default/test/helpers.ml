(* Shared test utilities.

   [Fake] provides a synthetic execution context for unit-testing the
   protocol state machines in isolation: a controllable local clock, a log of
   sent messages, and a timer queue fired by [advance]. [Cluster] builds a
   complete small simulation for integration tests. *)

open Ssba_core

module Fake = struct
  type t = {
    mutable now : float;
    mutable sent : (float * Types.message) list;  (* newest first *)
    mutable timers : (float * (unit -> unit)) list;
    mutable traced : Ssba_sim.Trace.event list;  (* newest first *)
    params : Params.t;
  }

  let make ?(self = 0) ?(now = 100.0) params =
    let t = { now; sent = []; timers = []; traced = []; params } in
    let ctx =
      {
        Types.params;
        self;
        local_time = (fun () -> t.now);
        send_all = (fun m -> t.sent <- (t.now, m) :: t.sent);
        after_local =
          (fun dl f ->
            if dl < 0.0 then invalid_arg "fake after_local: negative";
            t.timers <- (t.now +. dl, f) :: t.timers);
        trace = (fun ev -> t.traced <- ev :: t.traced);
      }
    in
    (t, ctx)

  (* Advance local time by [dl], firing due timers in order. *)
  let advance t dl =
    let target = t.now +. dl in
    let rec loop () =
      let due =
        List.filter (fun (at, _) -> at <= target) t.timers
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      match due with
      | [] -> ()
      | (at, f) :: _ ->
          t.timers <- List.filter (fun (at', f') -> not (at' == at && f' == f)) t.timers;
          t.now <- at;
          f ();
          loop ()
    in
    loop ();
    t.now <- target

  let sent_kinds t = List.rev_map (fun (_, m) -> Types.kind_of_message m) t.sent
  let clear_sent t = t.sent <- []

  let count_kind t kind =
    List.length (List.filter (fun k -> String.equal k kind) (sent_kinds t))
end

module Cluster = struct
  type t = {
    params : Params.t;
    engine : Ssba_sim.Engine.t;
    net : Types.message Ssba_net.Network.t;
    nodes : Node.t option array;  (* [None] for skipped (non-correct) slots *)
    clocks : Ssba_sim.Clock.t array;
    returns : Types.return_info list ref;
  }

  (* [make ~n ()] builds n correct nodes over a uniform-delay network.
     [skip] ids get no node (their slots stay silent or are taken over by
     adversaries installed afterwards). *)
  let make ?(seed = 42) ?(skip = []) ?(delay = `Uniform) ?(clock = `Drifting) ~n ()
      =
    let params = Params.default n in
    let engine = Ssba_sim.Engine.create () in
    let rng = Ssba_sim.Rng.create seed in
    let delay =
      match delay with
      | `Uniform ->
          Ssba_net.Delay.uniform ~lo:(0.05 *. params.Params.delta)
            ~hi:params.Params.delta
      | `Fixed x -> Ssba_net.Delay.fixed x
    in
    let net =
      Ssba_net.Network.create ~engine ~n ~delay ~rng:(Ssba_sim.Rng.split rng)
        ~kind_of:Types.kind_of_message ()
    in
    let clocks =
      Array.init n (fun _ ->
          match clock with
          | `Perfect -> Ssba_sim.Clock.perfect
          | `Drifting ->
              Ssba_sim.Clock.random (Ssba_sim.Rng.split rng)
                ~rho:params.Params.rho ~max_offset:0.2)
    in
    let returns = ref [] in
    let nodes =
      Array.init n (fun id ->
          if List.mem id skip then None
          else begin
            let node =
              Node.create ~id ~params ~clock:clocks.(id) ~engine ~net ()
            in
            Node.subscribe node (fun r -> returns := r :: !returns);
            Some node
          end)
    in
    { params; engine; net; nodes; clocks; returns }

  let node t id =
    match t.nodes.(id) with
    | Some n -> n
    | None -> Alcotest.failf "cluster: node %d was skipped" id

  let run ?(until = 2.0) t = ignore (Ssba_sim.Engine.run ~until t.engine)

  let returns t =
    List.sort
      (fun (a : Types.return_info) b -> compare a.Types.rt_ret b.Types.rt_ret)
      !(t.returns)

  let decided_values t =
    List.filter_map
      (fun (r : Types.return_info) ->
        match r.Types.outcome with Types.Decided v -> Some v | Types.Aborted -> None)
      (returns t)
end

(* Alcotest shorthands. *)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9f, got %.9f" msg expected actual

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* Deterministic qcheck wrapper: a fixed RNG per property so `dune runtest`
   is reproducible run to run (qcheck otherwise self-seeds). *)
let qcheck t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xBA5E; 42 |]) t
