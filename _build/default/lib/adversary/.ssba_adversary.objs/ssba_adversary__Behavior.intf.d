lib/adversary/behavior.mli: Ssba_core Ssba_net Ssba_sim
