test/test_ss_byz_agree.ml: Alcotest Cluster Fake Float Helpers Initiator_accept List Msgd_broadcast Node Params Ss_byz_agree Ssba_core Ssba_net Ssba_sim String Types
