(* Soak tests: long runs under sustained load and attack, asserting the
   bounded-memory discipline (decay rules) and sustained correctness the
   "production" claim rests on. *)

open Helpers
open Ssba_core
module H = Ssba_harness
module Engine = Ssba_sim.Engine

let test_long_haul_recurrent_agreements () =
  (* dozens of recurrent agreements by rotating Generals under a permanent
     spammer, with a mid-run scramble; at the end: every completed agreement
     consistent, instance tables bounded, all instances quiescent *)
  let n = 7 in
  let params = Params.default n in
  let d = params.Params.d in
  let spacing = 2.0 *. params.Params.delta_0 in
  let rounds = 40 in
  let t_scramble = 0.05 +. (float_of_int (rounds / 2) *. spacing) in
  let proposals =
    List.init rounds (fun i ->
        {
          H.Scenario.g = i mod (n - 1);
          v = Printf.sprintf "epoch-%d" i;
          at = 0.05 +. (float_of_int i *. spacing);
        })
  in
  let horizon =
    0.05 +. (float_of_int rounds *. spacing) +. params.Params.delta_stb
  in
  let sc =
    H.Scenario.default ~name:"soak" ~seed:71
      ~roles:
        [
          ( n - 1,
            H.Scenario.Byzantine
              (Ssba_adversary.Strategies.spam ~period:(10.0 *. d)
                 ~values:[ "junk1"; "junk2" ]) );
        ]
      ~events:
        [ H.Scenario.Scramble { at = t_scramble; values = [ "x"; "epoch-3" ]; net_garbage = 100 } ]
      ~proposals ~horizon params
  in
  let res = H.Runner.run sc in
  (* agreement after the post-scramble stabilization point, derived from the
     event schedule rather than hand-computed *)
  check_bool "no violation after re-stabilization" true
    (H.Checks.pairwise_agreement ~after:(H.Checks.stabilized_after sc) res = []);
  (* most epochs decided unanimously (those colliding with the scramble
     window may legitimately fail) *)
  let unanimous =
    List.length
      (List.filter
         (fun (e : H.Metrics.episode) ->
           match H.Checks.agreement ~correct:res.H.Runner.correct e with
           | H.Checks.Unanimous _ -> true
           | _ -> false)
         (H.Metrics.episodes res))
  in
  check_bool
    (Printf.sprintf "most epochs decided (%d/%d)" unanimous rounds)
    true
    (unanimous >= rounds - 5);
  (* bounded memory: the per-node instance table never exceeds n *)
  List.iter
    (fun (_, node) ->
      check_bool "instance table bounded by n" true (Node.instance_count node <= n))
    res.H.Runner.nodes

let test_large_cluster_integration () =
  (* one agreement at n = 31 (f = 10) with the full fault budget split
     between crashed and spamming nodes *)
  let n = 31 in
  let params = Params.default n in
  let d = params.Params.d in
  let module S = Ssba_adversary.Strategies in
  let roles =
    List.init 5 (fun i -> (n - 1 - i, H.Scenario.Byzantine S.silent))
    @ List.init 5 (fun i ->
          ( n - 6 - i,
            H.Scenario.Byzantine (S.spam ~period:(10.0 *. d) ~values:[ "z" ]) ))
  in
  let sc =
    H.Scenario.default ~name:"large" ~seed:72 ~roles
      ~proposals:[ { H.Scenario.g = 0; v = "big"; at = 0.05 } ]
      ~horizon:(0.05 +. (3.0 *. params.Params.delta_agr))
      params
  in
  let res = H.Runner.run sc in
  let deciders =
    List.filter
      (fun (r : Types.return_info) -> r.Types.outcome = Types.Decided "big")
      res.H.Runner.returns
  in
  check_int "all 21 correct nodes decide at n=31" 21 (List.length deciders);
  check_bool "agreement holds" true (H.Checks.pairwise_agreement res = [])

let test_minimal_cluster () =
  (* the smallest Byzantine-tolerant system: n = 4, f = 1 *)
  let c = Cluster.make ~n:4 ~skip:[ 3 ] () in
  Engine.schedule c.Cluster.engine ~at:0.05 (fun () ->
      ignore (Node.propose (Cluster.node c 0) "v"));
  Cluster.run c;
  check_int "3 of 4 decide with 1 crashed" 3
    (List.length (Cluster.decided_values c))

(* SSBA_SOAK_RUNS / SSBA_SOAK_JOBS scale the two batches below without a
   recompile: e.g. `SSBA_SOAK=1 SSBA_SOAK_RUNS=10000 SSBA_SOAK_JOBS=4 dune
   runtest` runs the 10k-scenario churn soak one engine per core. The
   campaign summary is byte-identical at every job count, so the jobs knob
   buys wall-clock only. *)
let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> default)
  | None -> default

let soak_jobs () = env_int "SSBA_SOAK_JOBS" 1

(* A deep fuzzing batch: 500 scenarios with a larger cast/disruption budget
   than the tier-1 smoke run. Gated behind SSBA_SOAK=1 so `dune runtest`
   stays fast; run it with `SSBA_SOAK=1 dune runtest` (or via the ssba-fuzz
   CLI directly for ad-hoc campaigns). *)
let test_fuzz_batch () =
  match Sys.getenv_opt "SSBA_SOAK" with
  | Some "1" ->
      let module F = Ssba_fuzz in
      let runs = env_int "SSBA_SOAK_RUNS" 500 in
      let config =
        {
          F.Campaign.default_config with
          F.Campaign.seed = 2026;
          runs;
          gen =
            {
              F.Gen.default_config with
              F.Gen.max_n = 13;
              max_cast = 4;
              max_disruptions = 3;
            };
        }
      in
      let s = F.Campaign.run ~jobs:(soak_jobs ()) config in
      check_int "all soak scenarios executed" runs s.F.Campaign.executed;
      List.iter
        (fun (fc : F.Campaign.failure_case) ->
          List.iter
            (fun f ->
              Fmt.epr "soak iteration %d: %a@." fc.F.Campaign.index
                F.Oracle.pp_failure f)
            fc.F.Campaign.report.F.Oracle.failures)
        s.F.Campaign.failed;
      check_int "no oracle failures over the soak corpus" 0
        (List.length s.F.Campaign.failed)
  | _ -> Fmt.epr "fuzz batch skipped (set SSBA_SOAK=1 to enable)@."

(* The churn counterpart: 200 continuous-churn scenarios through the
   per-interval recovery oracle, same SSBA_SOAK=1 gate. Seed 2027 — the
   batch that used to hit the initiator-accept uniqueness gap under a
   fast-equivocating flip-flop General. The session-keyed core closed it
   (see the 2027/133 pin in test_fuzz.ml), so the once-poisoned batch now
   doubles as the regression gate for the fix. *)
let test_churn_batch () =
  match Sys.getenv_opt "SSBA_SOAK" with
  | Some "1" ->
      let module F = Ssba_fuzz in
      let runs = env_int "SSBA_SOAK_RUNS" 200 in
      let config =
        {
          F.Campaign.default_config with
          F.Campaign.seed = 2027;
          runs;
          gen = { F.Gen.chaos_config with F.Gen.max_cast = 2 };
        }
      in
      let s = F.Campaign.run ~jobs:(soak_jobs ()) config in
      check_int "all churn scenarios executed" runs s.F.Campaign.executed;
      List.iter
        (fun (fc : F.Campaign.failure_case) ->
          List.iter
            (fun f ->
              Fmt.epr "churn iteration %d: %a@." fc.F.Campaign.index
                F.Oracle.pp_failure f)
            fc.F.Campaign.report.F.Oracle.failures)
        s.F.Campaign.failed;
      check_int "no oracle failures over the churn corpus" 0
        (List.length s.F.Campaign.failed)
  | _ -> Fmt.epr "churn batch skipped (set SSBA_SOAK=1 to enable)@."

let suite =
  [
    slow_case "long-haul recurrent agreements" test_long_haul_recurrent_agreements;
    slow_case "large cluster (n=31)" test_large_cluster_integration;
    case "minimal cluster (n=4, f=1)" test_minimal_cluster;
    slow_case "fuzzer batch (SSBA_SOAK=1)" test_fuzz_batch;
    slow_case "churn batch (SSBA_SOAK=1)" test_churn_batch;
  ]
