(* Bounded-delay authenticated point-to-point network (paper §2, Def. 2).

   Delivery is realized by scheduling closures on the engine. While the
   network is *correct* every send is delivered within the configured delay
   policy and the sender identity is authentic. Scenario code can make the
   network *faulty* (the incoherent period preceding stabilization) by
   setting a drop probability, partitioning links, or injecting forged
   garbage; experiments then lift the faults and measure convergence. *)

module Rng = Ssba_sim.Rng
module Engine = Ssba_sim.Engine

type 'a handler = 'a Msg.t -> unit

type 'a t = {
  engine : Engine.t;
  n : int;
  rng : Rng.t;
  mutable delay : Delay.t;
  mutable handlers : 'a handler option array;
  mutable drop_prob : float;  (* applied only while the network is faulty-capable *)
  mutable blocked : (src:int -> dst:int -> bool) option;  (* partition predicate *)
  muted : (int, unit) Hashtbl.t;  (* crashed senders: sends silently dropped *)
  mutable delay_override : ('a Msg.t -> float option) option;
      (* adversary-chosen delivery delay for selected messages; the paper's
         model lets a faulty sender's messages be arbitrarily late (masked as
         part of the f faults) *)
  kind_of : ('a -> string) option;  (* classifier for per-kind statistics *)
  sent_by_kind : (string, int) Hashtbl.t;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
}

let create ?(drop_prob = 0.0) ?kind_of ~engine ~n ~delay ~rng () =
  if n <= 0 then invalid_arg "Network.create: n must be positive";
  {
    engine;
    n;
    rng;
    delay;
    handlers = Array.make n None;
    drop_prob;
    blocked = None;
    muted = Hashtbl.create 4;
    delay_override = None;
    kind_of;
    sent_by_kind = Hashtbl.create 16;
    sent = 0;
    delivered = 0;
    dropped = 0;
  }

let size t = t.n
let set_handler t node h = t.handlers.(node) <- Some h
let clear_handler t node = t.handlers.(node) <- None
let set_delay t delay = t.delay <- delay
let set_drop_prob t p = t.drop_prob <- p
let set_partition t pred = t.blocked <- pred

let set_muted t node muted =
  if muted then Hashtbl.replace t.muted node () else Hashtbl.remove t.muted node

let is_muted t node = Hashtbl.mem t.muted node
let set_delay_override t f = t.delay_override <- f

let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped

let sent_by_kind t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sent_by_kind []
  |> List.sort compare

let reset_counters t =
  t.sent <- 0;
  t.delivered <- 0;
  t.dropped <- 0;
  Hashtbl.reset t.sent_by_kind

let count_kind t payload =
  match t.kind_of with
  | None -> ()
  | Some f ->
      let k = f payload in
      Hashtbl.replace t.sent_by_kind k (1 + Option.value ~default:0 (Hashtbl.find_opt t.sent_by_kind k))

let deliver t (m : 'a Msg.t) =
  match t.handlers.(m.Msg.dst) with
  | None -> ()
  | Some h ->
      t.delivered <- t.delivered + 1;
      h m

let schedule_delivery t (m : 'a Msg.t) ~delay =
  Engine.schedule_after t.engine ~delay (fun () -> deliver t m)

let send t ~src ~dst payload =
  if dst < 0 || dst >= t.n then invalid_arg "Network.send: bad destination";
  t.sent <- t.sent + 1;
  count_kind t payload;
  let blocked =
    Hashtbl.mem t.muted src
    || (match t.blocked with None -> false | Some pred -> pred ~src ~dst)
  in
  let dropped = blocked || (t.drop_prob > 0.0 && Rng.float t.rng 1.0 < t.drop_prob) in
  if dropped then t.dropped <- t.dropped + 1
  else begin
    let now = Engine.now t.engine in
    let m = Msg.make ~src ~dst ~sent_at:now payload in
    let delay =
      match t.delay_override with
      | Some f -> (
          match f m with
          | Some delay -> delay
          | None -> Delay.draw t.delay ~rng:t.rng ~src ~dst ~now)
      | None -> Delay.draw t.delay ~rng:t.rng ~src ~dst ~now
    in
    schedule_delivery t m ~delay
  end

let broadcast t ~src payload =
  for dst = 0 to t.n - 1 do
    send t ~src ~dst payload
  done

(* Incoherent-period garbage: deliver a message claiming to come from
   [claimed_src] after [delay]. Used by the transient-fault injector only. *)
let inject_forged t ~claimed_src ~dst ~delay payload =
  let now = Engine.now t.engine in
  let m = Msg.forge ~claimed_src ~dst ~sent_at:now payload in
  schedule_delivery t m ~delay
