lib/harness/metrics.ml: Array Float Hashtbl List Option Runner Scenario Ssba_core Ssba_sim
