(* ssba-mc: bounded exhaustive checking of the protocol core on tiny worlds.

     ssba-mc --config smoke --depth 24              # explore, print report
     ssba-mc --config split --blackout off --export ce.json
                                                    # hunt the IA-4 split and
                                                    # pin it as a replay file
     ssba-mc --smoke                                # the CI gate: smoke config
                                                    # under both POR modes,
                                                    # zero violations, POR
                                                    # factor > 1, equal sets
     ssba-mc --config knife --r-slack legacy        # rediscover the 7404/173
                                                    # stranded abort
     ssba-mc --config knife --smoke                 # the knife gate: clean
                                                    # under the default gate,
                                                    # >= 1 violation under
                                                    # legacy, POR-equivalent
                                                    # verdicts throughout

   Exit status 0 means the explored space met the config's expectation
   (smoke/split-blackout-on/knife-default: no violations and no splits; split
   with the blackout off and knife under --r-slack legacy: the violation IS
   found — absence is the failure). *)

open Cmdliner
module Mc = Ssba_mc.Mc
module Config = Ssba_mc.Config
module P = Ssba_core.Params

let key_of (s, _) = s

let apply_r_slack cfg r_slack =
  { cfg with Config.params = P.with_r_slack cfg.Config.params r_slack }

let explore_and_report cfg ~por ~depth ~max_runs ~jobs =
  let r = Mc.explore ~max_runs ~jobs cfg ~por ~depth in
  Fmt.pr "%a" Mc.pp_report r;
  r

let export_counterexample cfg (r : Mc.report) path =
  match r.Mc.counterexample with
  | None -> Fmt.pr "no counterexample to export@."
  | Some run ->
      let spec = Mc.spec_of_run cfg run ~name:(Filename.basename path) in
      Ssba_fuzz.Spec.save path spec;
      Fmt.pr "counterexample (prefix %a) saved to %s@." Mc.pp_prefix
        run.Mc.prefix path;
      Fmt.pr "replay with: ssba_fuzz --replay %s@." path

(* Verdicts per config. [smoke] must be clean outright. [split] is a
   sensitivity check on *split decisions* only: the capacity-2 scarcity it
   runs under strands correct sessions through eviction with or without the
   blackout, so relay/coverage oracle noise is expected either way — what the
   knob controls is whether the IA-4 split itself is reachable. *)
let run_one config blackout r_slack por depth max_runs jobs export =
  let cfg, kind =
    match config with
    | "smoke" -> (Config.smoke (), `Clean)
    | "split" -> (Config.split ~blackout (), `Split)
    | "knife" -> (Config.knife (), `Knife)
    | other -> Fmt.failwith "unknown config %S (smoke|split|knife)" other
  in
  let cfg = apply_r_slack cfg r_slack in
  let r = explore_and_report cfg ~por ~depth ~max_runs ~jobs in
  (match export with None -> () | Some path -> export_counterexample cfg r path);
  if r.Mc.truncated then begin
    Fmt.pr "exploration truncated by --max-runs: no verdict@.";
    2
  end
  else if kind = `Knife then
    (* The knife verdict inverts with the gate variant: the legacy gate must
       rediscover the 7404/173-class stranded abort somewhere in the space;
       either fixed variant must exhaust it clean. *)
    if r_slack = P.Legacy then
      if r.Mc.violations <> [] then begin
        Fmt.pr "verdict: stranded abort rediscovered under the legacy gate \
                (as expected)@.";
        0
      end
      else begin
        Fmt.pr "verdict: FAILED to rediscover the stranded abort under the \
                legacy gate@.";
        1
      end
    else if r.Mc.violations = [] && r.Mc.splits = [] then begin
      Fmt.pr "verdict: knife space exhausts clean under the %s gate@."
        (P.r_slack_to_string r_slack);
      0
    end
    else begin
      Fmt.pr "verdict: VIOLATIONS under the %s gate@."
        (P.r_slack_to_string r_slack);
      1
    end
  else if kind = `Split then
    if blackout then
      if r.Mc.splits = [] then begin
        Fmt.pr "verdict: no split decision reachable with the blackout on@.";
        0
      end
      else begin
        Fmt.pr "verdict: SPLIT DECISION despite the blackout@.";
        1
      end
    else if r.Mc.splits <> [] then begin
      Fmt.pr "verdict: split decision found (as expected with the blackout \
              off)@.";
      0
    end
    else begin
      Fmt.pr "verdict: FAILED to find the expected split decision@.";
      1
    end
  else if r.Mc.violations = [] && r.Mc.splits = [] then begin
    Fmt.pr "verdict: no oracle violations over the explored space@.";
    0
  end
  else begin
    Fmt.pr "verdict: VIOLATIONS in a configuration expected clean@.";
    1
  end

(* The CI gate: exhaust the smoke config under both POR modes. Passing means
   zero violations either way, the same verdict set (POR soundness
   cross-check), and a reduction factor strictly above 1. *)
let run_smoke depth max_runs jobs =
  let on = explore_and_report (Config.smoke ()) ~por:true ~depth ~max_runs ~jobs in
  let off =
    explore_and_report (Config.smoke ()) ~por:false ~depth ~max_runs ~jobs
  in
  let factor = float_of_int off.Mc.explored /. float_of_int on.Mc.explored in
  Fmt.pr "POR reduction factor: %.2fx (%d -> %d runs)@." factor
    off.Mc.explored on.Mc.explored;
  let problems = ref [] in
  let check cond msg = if not cond then problems := msg :: !problems in
  check (not on.Mc.truncated && not off.Mc.truncated) "exploration truncated";
  check (on.Mc.violations = []) "violations under POR";
  check (off.Mc.violations = []) "violations under full exploration";
  check (on.Mc.splits = []) "split decisions under POR";
  check (off.Mc.splits = []) "split decisions under full exploration";
  check
    (List.map key_of on.Mc.violations = List.map key_of off.Mc.violations
    && List.map key_of on.Mc.splits = List.map key_of off.Mc.splits)
    "POR and full exploration disagree on the verdict set";
  check (factor > 1.0) "POR reduction factor not > 1";
  match !problems with
  | [] ->
      Fmt.pr "smoke gate passed@.";
      0
  | ps ->
      List.iter (fun p -> Fmt.pr "smoke gate FAILED: %s@." p) ps;
      1

(* The knife gate (ISSUE 8): the same config explored under the shipped
   default gate and under --r-slack legacy, each in both POR modes. Passing
   means the default exhausts clean, the legacy gate rediscovers at least one
   stranded-abort violation, and POR never changes a verdict set. *)
let run_knife depth max_runs jobs =
  let half label r_slack ~expect_violation =
    let cfg = apply_r_slack (Config.knife ()) r_slack in
    Fmt.pr "--- knife under the %s gate ---@." label;
    let on = explore_and_report cfg ~por:true ~depth ~max_runs ~jobs in
    let off = explore_and_report cfg ~por:false ~depth ~max_runs ~jobs in
    let problems = ref [] in
    let check cond msg =
      if not cond then problems := Fmt.str "%s: %s" label msg :: !problems
    in
    check (not on.Mc.truncated && not off.Mc.truncated) "exploration truncated";
    check
      (List.map key_of on.Mc.violations = List.map key_of off.Mc.violations
      && List.map key_of on.Mc.splits = List.map key_of off.Mc.splits)
      "POR and full exploration disagree on the verdict set";
    if expect_violation then
      check (on.Mc.violations <> [])
        "expected >= 1 stranded-abort violation, found none"
    else begin
      check (on.Mc.violations = []) "violations in a space expected clean";
      check (on.Mc.splits = []) "split decisions in a space expected clean"
    end;
    !problems
  in
  let problems =
    half (P.r_slack_to_string P.default_r_slack) P.default_r_slack
      ~expect_violation:false
    @ half "legacy" P.Legacy ~expect_violation:true
  in
  match problems with
  | [] ->
      Fmt.pr "knife gate passed@.";
      0
  | ps ->
      List.iter (fun p -> Fmt.pr "knife gate FAILED: %s@." p) ps;
      1

let main config blackout r_slack por depth max_runs jobs export smoke =
  if smoke then
    if config = "knife" then run_knife depth max_runs jobs
    else run_smoke depth max_runs jobs
  else run_one config blackout r_slack por depth max_runs jobs export

let config_t =
  Arg.(value & opt string "smoke" & info [ "config" ] ~docv:"NAME"
         ~doc:"Configuration to explore: smoke, split or knife.")

let r_slack_t =
  let rs_conv =
    Arg.conv
      ( (fun s ->
          match P.r_slack_of_string s with
          | Some r -> Ok r
          | None -> Error (`Msg (Fmt.str "expected legacy|widen|general, got %S" s))),
        fun ppf r -> Fmt.string ppf (P.r_slack_to_string r) )
  in
  Arg.(value & opt rs_conv P.default_r_slack
       & info [ "r-slack" ] ~docv:"legacy|widen|general"
           ~doc:"Block-R gate variant to run the protocol core under.")

let on_off name ~default ~doc =
  let on_off_conv =
    Arg.conv
      ( (function
        | "on" -> Ok true
        | "off" -> Ok false
        | s -> Error (`Msg (Fmt.str "expected on|off, got %S" s))),
        fun ppf b -> Fmt.string ppf (if b then "on" else "off") )
  in
  Arg.(value & opt on_off_conv default & info [ name ] ~docv:"on|off" ~doc)

let blackout_t =
  on_off "blackout" ~default:true
    ~doc:"Re-initiation blackout knob for the split config."

let por_t = on_off "por" ~default:true ~doc:"Partial-order reduction."

let depth_t =
  Arg.(value & opt int 24 & info [ "depth" ] ~docv:"N"
         ~doc:"Maximum choice-vector length to expand.")

let max_runs_t =
  Arg.(value & opt int 200_000 & info [ "max-runs" ] ~docv:"N"
         ~doc:"Safety valve on executed runs.")

let jobs_t =
  Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N"
         ~doc:"Shard exploration at the root choice point onto $(docv) \
               domains. Verdict sets and witnesses are identical to --jobs 1 \
               under exhaustion; raw state counts can differ (per-shard \
               visited sets forfeit cross-subtree pruning).")

let export_t =
  Arg.(value & opt (some string) None & info [ "export" ] ~docv:"PATH"
         ~doc:"Save the minimal split counterexample as a fuzz replay spec.")

let smoke_t =
  Arg.(value & flag & info [ "smoke" ]
         ~doc:"CI gate: exhaust the smoke config under both POR modes.")

let cmd =
  let doc = "bounded exhaustive checker for the ss-Byz-Agree core" in
  Cmd.v
    (Cmd.info "ssba-mc" ~doc)
    Term.(
      const main $ config_t $ blackout_t $ r_slack_t $ por_t $ depth_t
      $ max_runs_t $ jobs_t $ export_t $ smoke_t)

let () = exit (Cmd.eval' cmd)
