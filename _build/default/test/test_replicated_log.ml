(* Tests for the replicated log (SMR atop recurrent agreement). *)

open Helpers
module Rlog = Ssba_apps.Replicated_log

let mk ?(n = 7) ?(seed = 61) ?(byz = []) () =
  let c = Cluster.make ~n ~seed ~skip:byz () in
  let replicas =
    List.init n (fun id -> id)
    |> List.filter_map (fun id ->
           if List.mem id byz then None
           else
             Some
               ( id,
                 Rlog.create
                   ~node:(Cluster.node c id)
                   ~cycle_len:(1.2 *. Rlog.min_cycle c.Cluster.params)
                   () ))
  in
  (c, replicas)

let test_value_encoding () =
  (* round-trip through the wire encoding, including ':' in commands *)
  let h = mk ~n:4 () in
  ignore h;
  check_str "noop" "noop" Rlog.noop

let test_empty_log_fills_with_noops () =
  let c, replicas = mk () in
  List.iter (fun (_, r) -> Rlog.start r) replicas;
  Cluster.run ~until:2.0 c;
  List.iter
    (fun (_, r) ->
      check_bool "slots progress" true (Rlog.next_slot r >= 3);
      check_bool "all noops" true (Rlog.commands r = []))
    replicas

let test_commands_in_identical_order () =
  let c, replicas = mk () in
  (* several nodes submit commands before the log starts *)
  List.iter
    (fun (id, r) ->
      if id mod 2 = 0 then Rlog.submit r (Printf.sprintf "cmd-from-%d" id))
    replicas;
  List.iter (fun (_, r) -> Rlog.start r) replicas;
  Cluster.run ~until:4.0 c;
  let sequences = List.map (fun (_, r) -> Rlog.commands r) replicas in
  (match sequences with
  | [] -> Alcotest.fail "no replicas"
  | ref_seq :: rest ->
      check_bool "some commands committed" true (ref_seq <> []);
      List.iter
        (fun s -> check_bool "identical command sequence" true (s = ref_seq))
        rest);
  (* each submitted command appears exactly once *)
  let all = List.hd sequences in
  List.iter
    (fun (id, _) ->
      if id mod 2 = 0 then
        check_int
          (Printf.sprintf "cmd-from-%d committed once" id)
          1
          (List.length
             (List.filter (String.equal (Printf.sprintf "cmd-from-%d" id)) all)))
    replicas

let test_identical_entries_not_just_commands () =
  let c, replicas = mk ~seed:62 () in
  List.iter (fun (id, r) -> Rlog.submit r (Printf.sprintf "c%d" id)) replicas;
  List.iter (fun (_, r) -> Rlog.start r) replicas;
  Cluster.run ~until:3.0 c;
  let views =
    List.map
      (fun (_, r) ->
        List.map (fun (e : Rlog.entry) -> (e.Rlog.slot, e.Rlog.proposer, e.Rlog.cmd)) (Rlog.log r))
      replicas
  in
  let shortest =
    List.fold_left (fun acc v -> min acc (List.length v)) max_int views
  in
  check_bool "several slots committed" true (shortest >= 3);
  let prefix v = List.filteri (fun i _ -> i < shortest) v in
  match views with
  | [] -> Alcotest.fail "no replicas"
  | v0 :: rest ->
      List.iter
        (fun v -> check_bool "identical (slot, proposer, cmd) prefix" true
            (prefix v = prefix v0))
        rest

let test_byzantine_owner_skipped () =
  (* node 1 is silent: its slots are taken over by the ladder and the log
     keeps growing *)
  let c, replicas = mk ~byz:[ 1 ] ~seed:63 () in
  List.iter (fun (_, r) -> Rlog.submit r "x") replicas;
  List.iter (fun (_, r) -> Rlog.start r) replicas;
  Cluster.run ~until:4.0 c;
  List.iter
    (fun (_, r) ->
      check_bool "progressed past the Byzantine slot" true (Rlog.next_slot r > 1))
    replicas;
  (* slot 1 was committed by a takeover proposer, not node 1 *)
  let slot1 =
    List.filter_map
      (fun (_, r) ->
        List.find_opt (fun (e : Rlog.entry) -> e.Rlog.slot = 1) (Rlog.log r))
      replicas
  in
  check_bool "slot 1 resolved everywhere" true
    (List.length slot1 = List.length replicas);
  List.iter
    (fun (e : Rlog.entry) ->
      check_bool "not proposed by the silent owner" true (e.Rlog.proposer <> 1))
    slot1

let test_submission_queue_drains () =
  let c, replicas = mk ~seed:64 () in
  let _, r0 = List.hd replicas in
  Rlog.submit r0 "a";
  Rlog.submit r0 "b";
  check_int "two pending" 2 (Rlog.pending r0);
  List.iter (fun (_, r) -> Rlog.start r) replicas;
  Cluster.run ~until:6.0 c;
  check_int "queue drained" 0 (Rlog.pending r0);
  let cmds = Rlog.commands r0 in
  check_bool "a before b" true
    (match (List.find_index (String.equal "a") cmds,
            List.find_index (String.equal "b") cmds) with
     | Some ia, Some ib -> ia < ib
     | _ -> false)

let test_min_cycle_enforced () =
  let c = Cluster.make ~n:4 () in
  match
    Rlog.create ~node:(Cluster.node c 0)
      ~cycle_len:(0.5 *. Rlog.min_cycle c.Cluster.params)
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undersized cycle accepted"

let test_on_commit_callback () =
  let c, replicas = mk ~seed:65 () in
  let commits = ref 0 in
  List.iter (fun (_, r) -> Rlog.set_on_commit r (fun _ -> incr commits)) replicas;
  List.iter (fun (_, r) -> Rlog.start r) replicas;
  Cluster.run ~until:1.5 c;
  check_bool "commit callbacks fired" true (!commits > 0)

let suite =
  [
    case "value encoding" test_value_encoding;
    case "noop slots" test_empty_log_fills_with_noops;
    case "identical command order" test_commands_in_identical_order;
    case "identical entries" test_identical_entries_not_just_commands;
    case "Byzantine owner skipped" test_byzantine_owner_skipped;
    case "submission queue drains" test_submission_queue_drains;
    case "min cycle enforced" test_min_cycle_enforced;
    case "on_commit callback" test_on_commit_callback;
  ]
