(* Tests for the EIG oral-messages baseline. *)

open Helpers
open Ssba_core
module Eig = Ssba_baseline.Eig_agree
module Engine = Ssba_sim.Engine
module Net = Ssba_net.Network

let mk ?(n = 7) ?(g = 0) ?(delay = 0.0001) ?(seed = 1) () =
  let params = Params.default n in
  let engine = Engine.create () in
  let net =
    Net.create ~engine ~n ~delay:(Ssba_net.Delay.fixed delay)
      ~rng:(Ssba_sim.Rng.create seed) ()
  in
  let t_start = 0.1 in
  let decisions = ref [] in
  let nodes =
    Array.init n (fun id ->
        let e =
          Eig.create ~id ~params ~clock:Ssba_sim.Clock.perfect ~engine ~net ~g
            ~t_start
        in
        Eig.set_on_decide e (fun v ~tau -> decisions := (id, v, tau) :: !decisions);
        e)
  in
  (params, engine, net, nodes, decisions, t_start)

let test_validity () =
  let params, engine, _, nodes, decisions, t_start = mk () in
  Engine.schedule engine ~at:t_start (fun () -> Eig.propose nodes.(0) "v");
  ignore (Engine.run ~until:2.0 engine);
  check_int "all decide" 7 (List.length !decisions);
  List.iter
    (fun (_, v, tau) ->
      check_str "the General's value" "v" v;
      (* decision exactly at boundary f+1 *)
      check_float ~eps:1e-9 "at (f+1) Phi"
        (t_start +. (float_of_int (params.Params.f + 1) *. params.Params.phi))
        tau)
    !decisions

let test_latency_time_driven () =
  let lat delay =
    let _, engine, _, nodes, decisions, t_start = mk ~delay () in
    Engine.schedule engine ~at:t_start (fun () -> Eig.propose nodes.(0) "v");
    ignore (Engine.run ~until:2.0 engine);
    List.fold_left (fun acc (_, _, tau) -> Float.max acc (tau -. t_start)) 0.0 !decisions
  in
  check_float ~eps:1e-9 "latency pinned to (f+1) Phi regardless of delay"
    (lat 0.00001) (lat 0.0009)

let test_silent_general_defaults () =
  let _, engine, _, _, decisions, _ = mk () in
  ignore (Engine.run ~until:2.0 engine);
  check_int "all decide" 7 (List.length !decisions);
  List.iter
    (fun (_, v, _) -> check_str "default value" Eig.default_value v)
    !decisions

let test_crashed_participants () =
  let _, engine, net, nodes, decisions, t_start = mk () in
  Net.set_muted net 5 true;
  Net.set_muted net 6 true;
  Engine.schedule engine ~at:t_start (fun () -> Eig.propose nodes.(0) "v");
  ignore (Engine.run ~until:2.0 engine);
  let correct = List.filter (fun (id, _, _) -> id < 5) !decisions in
  check_int "five live nodes decide" 5 (List.length correct);
  List.iter (fun (_, v, _) -> check_str "General's value" "v" v) correct

let test_two_faced_general_agrees () =
  (* The General raw-sends different Values to the two halves and then
     relays equivocating level-1 batches; EIG's majority resolution must
     still produce identical decisions at all correct nodes (f = 2 budget,
     one actual fault). Node 0's own decision is excluded — it is faulty. *)
  let _, engine, net, _, decisions, t_start = mk () in
  Engine.schedule engine ~at:t_start (fun () ->
      for dst = 0 to 6 do
        Net.send net ~src:0 ~dst (Eig.Value (if dst mod 2 = 0 then "a" else "b"))
      done);
  ignore (Engine.run ~until:2.0 engine);
  let correct = List.filter (fun (id, _, _) -> id <> 0) !decisions in
  check_int "six correct decisions" 6 (List.length correct);
  let values = List.sort_uniq compare (List.map (fun (_, v, _) -> v) correct) in
  check_int "identical decisions despite equivocation" 1 (List.length values)

let test_relay_path_discipline () =
  (* forged relays: wrong root, sender inside the path, duplicated ids and
     over-long paths must all be rejected (tree stays minimal) *)
  let _, engine, net, nodes, _, t_start = mk () in
  Engine.schedule engine ~at:t_start (fun () -> Eig.propose nodes.(0) "v");
  Engine.schedule engine ~at:(t_start +. 0.001) (fun () ->
      Net.broadcast net ~src:6
        (Eig.Relay
           [
             ([ 1 ], "wrong-root");
             ([ 0; 6 ], "sender-in-path");
             ([ 0; 0 ], "dup-ids");
             ([ 0; 1; 2; 3 ], "too-long");
           ]));
  ignore (Engine.run ~until:2.0 engine);
  (* tree sizes: 1 (root) + 6 (depth 2) + 30 (depth 3) per node at n=7, f=2;
     none of the forged paths may appear *)
  Array.iter
    (fun e -> check_bool "tree bounded" true (Eig.tree_size e <= 1 + 6 + 30))
    nodes;
  (* and correctness is unaffected *)
  Array.iter
    (fun e -> check_bool "still decides v" true (Eig.decided e = Some "v"))
    nodes

let test_propose_requires_general () =
  let _, _, _, nodes, _, _ = mk () in
  match Eig.propose nodes.(3) "v" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "non-General propose accepted"

let test_always_slower_than_tps () =
  (* comparison sanity for E3b: EIG decides at (f+1) Phi > TPS's 2 Phi *)
  let params, engine, _, nodes, decisions, t_start = mk () in
  Engine.schedule engine ~at:t_start (fun () -> Eig.propose nodes.(0) "v");
  ignore (Engine.run ~until:2.0 engine);
  List.iter
    (fun (_, _, tau) ->
      check_bool "decision after TPS's phase-2 boundary" true
        (tau -. t_start > 2.0 *. params.Params.phi))
    !decisions

let suite =
  [
    case "validity at (f+1) Phi" test_validity;
    case "latency pinned to phases" test_latency_time_driven;
    case "silent General defaults consistently" test_silent_general_defaults;
    case "crashed participants tolerated" test_crashed_participants;
    case "two-faced General: agreement" test_two_faced_general_agrees;
    case "relay path discipline" test_relay_path_discipline;
    case "propose requires the General" test_propose_requires_general;
    case "slower than TPS (E3b sanity)" test_always_slower_than_tps;
  ]
