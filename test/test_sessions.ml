(* The session table (transport-ring discipline applied to protocol
   sessions): fixed capacity, deterministic least-recently-active eviction,
   predicate GC with the creation blind-spot grace, and scramble-safety —
   a transient fault corrupts values, never the capacity or occupancy. *)

open Helpers
module St = Ssba_core.Session_table
module Rng = Ssba_sim.Rng

let test_capacity_validated () =
  (match St.create ~capacity:0 with
  | exception Invalid_argument _ -> ()
  | (_ : int St.t) -> Alcotest.fail "capacity 0 accepted");
  check_int "capacity stored" 4 (St.capacity (St.create ~capacity:4))

let test_insert_find_rekey () =
  let t : string St.t = St.create ~capacity:4 in
  St.insert t ~g:3 ~now:1.0 "alpha";
  check_bool "found" true (St.find t 3 = Some "alpha");
  check_bool "starts unanchored" true (St.anchor t 3 = None);
  St.set_anchor t 3 1.25;
  check_bool "re-keyed in place" true (St.anchor t 3 = Some 1.25);
  check_bool "payload survives re-keying" true (St.find t 3 = Some "alpha");
  (* replacing the session for the same General resets the anchor *)
  St.insert t ~g:3 ~now:2.0 "beta";
  check_bool "replaced" true (St.find t 3 = Some "beta");
  check_bool "fresh key" true (St.anchor t 3 = None);
  check_int "replacement is not growth" 1 (St.live t)

let test_eviction_least_recently_active () =
  let t : int St.t = St.create ~capacity:3 in
  St.insert t ~g:1 ~now:1.0 10;
  St.insert t ~g:2 ~now:2.0 20;
  St.insert t ~g:3 ~now:3.0 30;
  (* full: g=1 is least recently active *)
  St.insert t ~g:4 ~now:4.0 40;
  check_bool "g=1 evicted" true (St.find t 1 = None);
  check_bool "g=2 kept" true (St.find t 2 = Some 20);
  (* touching g=2 makes g=3 the victim *)
  St.touch t 2 ~now:5.0;
  St.insert t ~g:5 ~now:6.0 50;
  check_bool "g=3 evicted after g=2 touch" true (St.find t 3 = None);
  check_bool "g=2 survived" true (St.find t 2 = Some 20);
  let s = St.stats t in
  check_int "two evictions counted" 2 s.St.evicted;
  check_int "live stays at capacity" 3 s.St.live;
  check_int "peak is the capacity" 3 s.St.peak_live

let test_eviction_tie_breaks_by_creation () =
  let t : int St.t = St.create ~capacity:2 in
  St.insert t ~g:1 ~now:1.0 10;
  St.insert t ~g:2 ~now:1.0 20;
  (* equal activity times: the older creation loses *)
  St.insert t ~g:3 ~now:2.0 30;
  check_bool "older creation evicted" true (St.find t 1 = None);
  check_bool "younger kept" true (St.find t 2 = Some 20)

let test_touch_is_monotone () =
  let t : int St.t = St.create ~capacity:2 in
  St.insert t ~g:1 ~now:5.0 10;
  St.insert t ~g:2 ~now:1.0 20;
  (* a backwards touch (scrambled clock) must not demote g=1 *)
  St.touch t 1 ~now:0.5;
  St.insert t ~g:3 ~now:6.0 30;
  check_bool "backwards touch ignored" true (St.find t 1 = Some 10);
  check_bool "g=2 was still the victim" true (St.find t 2 = None)

(* Thousands of sequential sessions through a small table: the GC keeps live
   proportional to actual concurrency, the counters account for every
   insertion, and the capacity is never exceeded. *)
let test_gc_bound_under_sequential_sessions () =
  let capacity = 8 in
  let t : int ref St.t = St.create ~capacity in
  let grace = 4.0 in
  let rounds = 5000 in
  for i = 1 to rounds do
    let now = float_of_int i in
    (* a fresh session per round, cycling over many Generals *)
    St.insert t ~g:(i mod 64) ~now (ref 1);
    (* the session quiesces two rounds later *)
    St.iter t (fun ~g:_ ~anchor:_ p ->
        if !p >= 0 then incr p;
        if !p > 2 then p := -1);
    St.gc t ~dead:(fun ~active p -> now -. active > grace && !p < 0);
    check_bool
      (Printf.sprintf "live bounded at round %d" i)
      true
      (St.live t <= capacity)
  done;
  let s = St.stats t in
  check_bool "peak never exceeded capacity" true (s.St.peak_live <= capacity);
  check_bool "GC did the work, in the thousands" true (s.St.gced > rounds / 2);
  check_int "every insertion accounted for" rounds
    (s.St.live + s.St.evicted + s.St.gced)

let test_gc_grace_spares_newborns () =
  let t : int St.t = St.create ~capacity:4 in
  St.insert t ~g:1 ~now:10.0 0;
  (* a newborn session is indistinguishable from a dead one; the activity
     time is what lets callers grace it *)
  St.gc t ~dead:(fun ~active p -> 10.1 -. active > 1.0 && p = 0);
  check_bool "newborn spared" true (St.find t 1 = Some 0);
  St.gc t ~dead:(fun ~active p -> 20.0 -. active > 1.0 && p = 0);
  check_bool "collected once past the grace" true (St.find t 1 = None);
  check_int "counted as gced" 1 (St.stats t).St.gced

let test_scramble_corrupts_values_never_structure () =
  let t : int ref St.t = St.create ~capacity:8 in
  for g = 0 to 5 do
    St.insert t ~g ~now:(float_of_int g) (ref g)
  done;
  List.iter (fun g -> St.set_anchor t g (0.5 +. float_of_int g)) [ 0; 2; 4 ];
  let rng = Rng.create 7 in
  let corrupted = ref 0 in
  St.scramble rng
    ~rtime:(fun () -> Rng.float rng 100.0)
    ~corrupt:(fun p ->
      incr corrupted;
      p := -1)
    t;
  check_int "capacity untouched" 8 (St.capacity t);
  check_int "occupancy untouched" 6 (St.live t);
  check_int "every payload visited" 6 !corrupted;
  for g = 0 to 5 do
    match St.find t g with
    | Some p -> check_int (Printf.sprintf "g=%d payload corrupted" g) (-1) !p
    | None -> Alcotest.fail "scramble dropped a session"
  done;
  (* the table still functions: eviction and GC survive arbitrary anchors
     and activity times *)
  for g = 6 to 9 do
    St.insert t ~g ~now:200.0 (ref g)
  done;
  check_int "still at capacity" 8 (St.live t);
  St.gc t ~dead:(fun ~active:_ p -> !p = -1);
  check_bool "scrambled sessions collectable" true (St.live t <= 4)

let suite =
  [
    case "capacity validated" test_capacity_validated;
    case "insert, find, re-key" test_insert_find_rekey;
    case "evicts least recently active" test_eviction_least_recently_active;
    case "eviction tie-break by creation" test_eviction_tie_breaks_by_creation;
    case "touch is monotone" test_touch_is_monotone;
    case "GC bound over 5000 sequential sessions" test_gc_bound_under_sequential_sessions;
    case "GC grace spares newborns" test_gc_grace_spares_newborns;
    case "scramble corrupts values, never structure" test_scramble_corrupts_values_never_structure;
  ]
