(* E16 — the flattened scale curve and the multi-core campaign engine.

   Two tables. The first is the E11 sweep at its extended default range
   (n = 7 … 101): fan-out batching plus the pooled delivery arena are what
   keep the events/sec curve flat enough for n >= 101 rows to be routine
   rather than an overnight job. The second runs one fixed churn campaign at
   increasing --jobs counts and reports wall-clock speedup — with the corpus
   digest asserted byte-identical at every job count, which is the whole
   point: parallelism buys throughput and changes no observable result.

   Wall-clock honesty: the speedup column measures THIS host. On a 1-core
   container the curve sits at ~1.0x (domains time-share; the parallel runs
   pay only domain-spawn overhead), and that is the expected, correct
   reading — the determinism claim is what the table pins; the throughput
   claim needs real cores. *)

let run ?(runs = 60) ?(jobs_list = [ 1; 2; 4 ]) () =
  Fmt.pr "E16 — Scale curve and multi-core campaign engine@.@.";
  Ssba_harness.Experiments.e11_scale ();
  Fmt.pr
    "@.Campaign speedup: %d-scenario churn batch (seed 2027, shrink off), \
     host offers %d core(s)@."
    runs
    (Domain.recommended_domain_count ());
  let config =
    {
      Campaign.default_config with
      Campaign.seed = 2027;
      runs;
      gen = Gen.chaos_config;
      shrink = false;
    }
  in
  let serial_wall = ref 0.0 in
  let serial_digest = ref "" in
  Fmt.pr "%-6s %9s %9s  %s@." "jobs" "wall(s)" "speedup" "corpus digest";
  List.iter
    (fun jobs ->
      let t0 = Unix.gettimeofday () in
      let s = Campaign.run ~jobs config in
      let wall = Unix.gettimeofday () -. t0 in
      if s.Campaign.executed <> runs then
        Fmt.failwith "E16: --jobs %d executed %d/%d scenarios" jobs
          s.Campaign.executed runs;
      if jobs = 1 then begin
        serial_wall := wall;
        serial_digest := s.Campaign.corpus_digest
      end
      else if not (String.equal s.Campaign.corpus_digest !serial_digest) then
        Fmt.failwith "E16: corpus digest diverged at --jobs %d" jobs;
      Fmt.pr "%-6d %9.2f %8.2fx  %s@." jobs wall (!serial_wall /. wall)
        s.Campaign.corpus_digest)
    jobs_list;
  Fmt.pr
    "corpus digest byte-identical at every job count (asserted above);@.";
  Fmt.pr
    "speedup saturates at the host's core count — a flat ~1.00x column \
     means a single-core host, not a determinism failure.@."
