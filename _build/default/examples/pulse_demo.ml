(* Synchronized pulses atop recurrent agreement.

   The paper points out (via its companion work [6]) that ss-Byz-Agree can
   drive a self-stabilizing pulse synchronization layer, which in turn makes
   arbitrary Byzantine algorithms self-stabilizing. The Ssba_pulse library
   implements that layer: rotating Generals propose cycle-numbered values,
   nodes fire a pulse whenever a cycle value is decided, and a timeout
   ladder skips Byzantine Generals.

   This demo runs 7 nodes, one of which is Byzantine-silent — its General
   turns are skipped by the ladder — and prints per-cycle pulse skews, which
   stay within the 3d decision skew the protocol guarantees.

     dune exec examples/pulse_demo.exe *)

module Sim = Ssba_sim
module Net = Ssba_net
module Core = Ssba_core
module Pulse = Ssba_pulse.Pulse_sync

let () =
  let n = 7 in
  let params = Core.Params.default n in
  let d = params.Core.Params.d in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create 5150 in
  let delay =
    Net.Delay.uniform ~lo:(0.1 *. params.Core.Params.delta)
      ~hi:params.Core.Params.delta
  in
  let net = Net.Network.create ~engine ~n ~delay ~rng:(Sim.Rng.split rng) () in
  let byzantine = 3 in
  Net.Network.set_handler net byzantine (fun _ -> ());
  (* a silent slot *)
  let layers =
    List.init n (fun id -> id)
    |> List.filter_map (fun id ->
           if id = byzantine then None
           else begin
             let clock =
               Sim.Clock.random (Sim.Rng.split rng) ~rho:params.Core.Params.rho
                 ~max_offset:0.02
             in
             let node = Core.Node.create ~id ~params ~clock ~engine ~net () in
             Some (Pulse.create ~node ~cycle_len:(1.3 *. Pulse.min_cycle params) ())
           end)
  in
  List.iter Pulse.start layers;
  let _ = Sim.Engine.run ~until:3.0 engine in
  let cycles =
    List.fold_left
      (fun acc layer ->
        List.fold_left (fun acc (p : Pulse.pulse) -> max acc p.Pulse.cycle) acc
          (Pulse.pulses layer))
      (-1) layers
  in
  Fmt.pr "node %d is Byzantine (silent); its General turns are skipped@.@." byzantine;
  for c = 0 to cycles do
    let rts =
      List.filter_map
        (fun layer ->
          List.find_opt (fun (p : Pulse.pulse) -> p.Pulse.cycle = c) (Pulse.pulses layer)
          |> Option.map (fun (p : Pulse.pulse) -> p.Pulse.rt))
        layers
    in
    match rts with
    | [] -> ()
    | first :: _ ->
        let span =
          List.fold_left Float.max first rts -. List.fold_left Float.min first rts
        in
        Fmt.pr "pulse %2d: fired at %d/%d nodes, skew %.2f d (bound 3d), General was node %d@."
          c (List.length rts) (n - 1) (span /. d)
          (c mod n)
  done
