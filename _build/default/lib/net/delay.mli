(** Message-delay policies for the bounded-delay network (paper §2).

    Once the network is correct every message between correct nodes arrives
    within [delta]; within that bound the adversary schedules delays. *)

type t

(** Every message takes exactly the given delay. *)
val fixed : float -> t

(** Per-message delay uniform in [\[lo, hi\]]. *)
val uniform : lo:float -> hi:float -> t

(** Each message is [fast] with probability [1 - slow_prob], else [slow]. *)
val bimodal : fast:float -> slow:float -> slow_prob:float -> t

(** Deterministic per-link delay. *)
val per_link : (src:int -> dst:int -> float) -> t

(** Fully custom schedule. *)
val custom : (rng:Ssba_sim.Rng.t -> src:int -> dst:int -> now:float -> float) -> t

(** Draw the delay for one message. *)
val draw : t -> rng:Ssba_sim.Rng.t -> src:int -> dst:int -> now:float -> float
