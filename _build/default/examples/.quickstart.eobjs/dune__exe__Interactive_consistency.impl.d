examples/interactive_consistency.ml: Array Fmt List Printf Ssba_adversary Ssba_core Ssba_net Ssba_sim String
