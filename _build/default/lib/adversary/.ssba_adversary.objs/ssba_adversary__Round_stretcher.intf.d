lib/adversary/round_stretcher.mli: Ssba_core Ssba_net Ssba_sim
