(* Enumerable strategy catalog.

   A data mirror of Strategies: each constructor carries exactly the
   parameters of the closure it instantiates, with durations in units of d so
   an entry is meaningful under any Params.t. The fuzzer draws entries with
   [generate], persists them through Ssba_fuzz.Spec's JSON codec, and walks
   [simplify] when minimizing a failing scenario. *)

open Ssba_core.Types
module Rng = Ssba_sim.Rng

type t =
  | Silent
  | Spam of { period_d : float; values : value list }
  | Mimic of { delay_d : float }
  | Two_faced_general of { v1 : value; v2 : value; at : float }
  | Stagger_general of { v : value; at : float; gap_d : float }
  | Partial_general of { v : value; at : float; targets : node_id list }
  | Equivocator of { v1 : value; v2 : value }
  | Flip_flop of { period_d : float; values : value list }
  | Gate_edge of { v : value; at : float }
      (* boundary-timing General: paces the IA stages so I-accepts land
         exactly on block R's gate boundary, then re-initiates at the
         2 Delta_rmv + 9d separation-decay boundary. Drawn by [generate]
         only when the caller opts into [~edges:true]. *)
  | Scripted of { steps : (float * node_id option * message) list }
      (* absolute-time send transcript; the model checker's counterexample
         export. Never drawn by [generate] — only written by ssba_mc. *)

let name = function
  | Silent -> "silent"
  | Spam _ -> "spam"
  | Mimic _ -> "mimic"
  | Two_faced_general _ -> "two-faced-general"
  | Stagger_general _ -> "stagger-general"
  | Partial_general _ -> "partial-general"
  | Equivocator _ -> "equivocator"
  | Flip_flop _ -> "flip-flop"
  | Gate_edge _ -> "gate-edge"
  | Scripted _ -> "scripted"

let to_behavior ~d = function
  | Silent -> Strategies.silent
  | Spam { period_d; values } -> Strategies.spam ~period:(period_d *. d) ~values
  | Mimic { delay_d } -> Strategies.mimic ~delay:(delay_d *. d)
  | Two_faced_general { v1; v2; at } -> Strategies.two_faced_general ~v1 ~v2 ~at
  | Stagger_general { v; at; gap_d } ->
      Strategies.stagger_general ~v ~at ~gap:(gap_d *. d)
  | Partial_general { v; at; targets } -> Strategies.partial_general ~v ~at ~targets
  | Equivocator { v1; v2 } -> Strategies.equivocator ~v1 ~v2
  | Flip_flop { period_d; values } ->
      Strategies.flip_flop ~period:(period_d *. d) ~values
  | Gate_edge { v; at } -> Strategies.gate_edge ~v ~at
  | Scripted { steps } -> Strategies.scripted ~steps

let activity_times = function
  | Two_faced_general { at; _ } | Stagger_general { at; _ }
  | Partial_general { at; _ } | Gate_edge { at; _ } ->
      [ at ]
  | Scripted { steps } -> List.map (fun (at, _, _) -> at) steps
  | Silent | Spam _ | Mimic _ | Equivocator _ | Flip_flop _ -> []

(* Toward Silent: periodic attackers lose their payload diversity first, then
   everything collapses to a crash fault. General-role attacks degrade to a
   partial General (one target), then Silent. *)
let simplify = function
  | Silent -> []
  | Spam { values; period_d } when List.length values > 1 ->
      [ Spam { period_d; values = [ List.hd values ] }; Silent ]
  | Spam _ | Mimic _ | Equivocator _ -> [ Silent ]
  | Flip_flop { period_d; values } -> [ Spam { period_d; values }; Silent ]
  | Two_faced_general { v1; at; _ } ->
      [ Partial_general { v = v1; at; targets = [ 0 ] }; Silent ]
  | Stagger_general { v; at; _ } ->
      [ Partial_general { v; at; targets = [ 0 ] }; Silent ]
  | Gate_edge { v; at } ->
      [ Partial_general { v; at; targets = [ 0 ] }; Silent ]
  | Partial_general { targets; v; at } when List.length targets > 1 ->
      [ Partial_general { v; at; targets = [ List.hd targets ] }; Silent ]
  | Partial_general _ -> [ Silent ]
  (* A scripted transcript shrinks one step at a time, from the end — later
     steps usually depend on the reactions to earlier ones. *)
  | Scripted { steps = [] } -> [ Silent ]
  | Scripted { steps } ->
      [
        Scripted
          { steps = List.filteri (fun i _ -> i < List.length steps - 1) steps };
        Silent;
      ]

let generate ?(edges = false) rng ~values ~at_lo ~at_hi ~n =
  let v () = Rng.pick_list rng values in
  let at () = Rng.float_in_range rng ~lo:at_lo ~hi:at_hi in
  (* With [edges] the menu grows a 9th entry; without it the draw sequence is
     bit-identical to the historical 8-way dispatch, which the legacy corpus
     digests depend on. *)
  match (if edges then Rng.int rng 9 else Rng.int rng 8) with
  | 0 -> Silent
  | 1 -> Spam { period_d = Rng.float_in_range rng ~lo:4.0 ~hi:16.0; values }
  | 2 -> Mimic { delay_d = Rng.float_in_range rng ~lo:0.5 ~hi:4.0 }
  | 3 -> Two_faced_general { v1 = v (); v2 = v () ^ "'"; at = at () }
  | 4 ->
      Stagger_general
        { v = v (); at = at (); gap_d = Rng.float_in_range rng ~lo:0.5 ~hi:4.0 }
  | 5 ->
      let k = 1 + Rng.int rng (max 1 (n - 1)) in
      let targets = Array.to_list (Rng.subset rng ~k (Array.init n Fun.id)) in
      Partial_general { v = v (); at = at (); targets = List.sort compare targets }
  | 6 -> Equivocator { v1 = v (); v2 = v () ^ "'" }
  | 7 -> Flip_flop { period_d = Rng.float_in_range rng ~lo:8.0 ~hi:24.0; values }
  | _ -> Gate_edge { v = v (); at = at () }

let pp ppf t =
  match t with
  | Silent -> Fmt.string ppf "silent"
  | Spam { period_d; values } ->
      Fmt.pf ppf "spam(period=%gd, %d values)" period_d (List.length values)
  | Mimic { delay_d } -> Fmt.pf ppf "mimic(delay=%gd)" delay_d
  | Two_faced_general { v1; v2; at } ->
      Fmt.pf ppf "two-faced(%S/%S at %g)" v1 v2 at
  | Stagger_general { v; at; gap_d } ->
      Fmt.pf ppf "stagger(%S at %g, gap=%gd)" v at gap_d
  | Partial_general { v; at; targets } ->
      Fmt.pf ppf "partial(%S at %g -> %a)" v at
        Fmt.(list ~sep:comma int)
        targets
  | Equivocator { v1; v2 } -> Fmt.pf ppf "equivocator(%S/%S)" v1 v2
  | Flip_flop { period_d; values } ->
      Fmt.pf ppf "flip-flop(period=%gd, %d values)" period_d (List.length values)
  | Gate_edge { v; at } -> Fmt.pf ppf "gate-edge(%S at %g)" v at
  | Scripted { steps } -> Fmt.pf ppf "scripted(%d steps)" (List.length steps)

let equal (a : t) (b : t) = a = b
