lib/core/types.ml: Fmt Params Ssba_sim String
