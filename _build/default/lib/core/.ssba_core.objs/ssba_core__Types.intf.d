lib/core/types.mli: Format Params Ssba_sim
