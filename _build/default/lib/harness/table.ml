(* Aligned plain-text tables for experiment output. *)

type t = { header : string list; mutable rows : string list list }

let create header = { header; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let addf t fmt = Printf.ksprintf (fun s -> add_row t (String.split_on_char '|' s)) fmt

let widths t =
  let rows = t.header :: List.rev t.rows in
  let ncols = List.fold_left (fun acc r -> max acc (List.length r)) 0 rows in
  let w = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> w.(i) <- max w.(i) (String.length cell)) row)
    rows;
  w

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let render t =
  let w = widths t in
  let line row =
    row
    |> List.mapi (fun i cell -> pad w.(i) cell)
    |> String.concat "  "
    |> fun s -> String.trim (" " ^ s) |> fun s -> s
  in
  let sep =
    Array.to_list w |> List.map (fun n -> String.make n '-') |> String.concat "  "
  in
  let body = List.rev_map line t.rows in
  String.concat "\n" ((line t.header :: sep :: List.rev body) @ [ "" ])

let print t = print_string (render t)

(* Numeric cell helpers. *)
let f3 x = Printf.sprintf "%.3f" x
let f6 x = Printf.sprintf "%.6f" x
let ms x = Printf.sprintf "%.3f" (1000.0 *. x)
let in_d ~d x = Printf.sprintf "%.2fd" (x /. d)
let yn b = if b then "yes" else "NO"
