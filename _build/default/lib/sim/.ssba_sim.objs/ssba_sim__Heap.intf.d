lib/sim/heap.mli:
