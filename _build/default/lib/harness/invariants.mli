(** Primitive-level invariant monitor: validates the paper's §4/§5 property
    statements event-by-event from a run's recorded observations
    (enable [record_observations] in the scenario).

    Monitored: [IA-1] (A–D, given the correct General's initiation time),
    [IA-3] (relay: one I-accept drags all correct nodes along within 2d,
    anchors within 6d), [IA-4] (uniqueness/separation of anchors), [TPS-2]
    (unforgeability of accepted broadcasts), [TPS-3] (accept relay within two
    phases) and [TPS-4] (broadcaster detection). All real-time comparisons
    convert local anchors through the run's clocks, like the paper's rt(.)
    notation. *)

open Ssba_core.Types

(** Check [IA-1A]–[IA-1D] for one General known to have initiated (correctly)
    at real time [t0]. Returns violation descriptions; empty means the
    properties hold. *)
val check_ia_1 : Runner.result -> g:general -> t0:float -> string list

(** Check [IA-3] and [IA-4] across every observed General. *)
val check_ia_3_4 : Runner.result -> string list

(** Check [TPS-2], [TPS-3] and [TPS-4]. *)
val check_tps : Runner.result -> string list

(** {!check_ia_3_4} plus {!check_tps} ([IA-1] needs the initiation time and
    is checked separately). *)
val check : Runner.result -> string list
