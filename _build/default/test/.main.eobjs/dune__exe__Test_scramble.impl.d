test/test_scramble.ml: Array Cluster Helpers List Node Params Ss_byz_agree Ssba_core Ssba_harness Ssba_sim Types
