(** Monomorphic (at, seq)-keyed event queue, the engine's hot path.

    A binary min-heap over parallel arrays: a flat float array of times, an
    int array of sequence numbers and the scheduled closures. Compared to the
    generic {!Heap}, all comparisons are raw float/int operations on unboxed
    keys and no per-event or per-query allocation happens.

    Ordering is (at, seq) lexicographic: events at equal [at] pop in
    ascending [seq] order, which is what run determinism hangs on — the
    engine assigns [seq] monotonically, so ties resolve in scheduling
    order. *)

type t

(** [create ?capacity ()] builds an empty queue. The backing arrays grow by
    doubling and are retained across {!clear}. *)
val create : ?capacity:int -> unit -> t

val size : t -> int
val is_empty : t -> bool

(** Length of the backing arrays (grows with the queue). *)
val capacity : t -> int

(** [push t ~at ~seq run] schedules [run] under key (at, seq). *)
val push : t -> at:float -> seq:int -> (unit -> unit) -> unit

(** Time key of the minimum event. Raises [Invalid_argument] when empty. *)
val min_at : t -> float

(** Remove the minimum event and return its closure (without running it).
    Raises [Invalid_argument] when empty. *)
val pop_run : t -> unit -> unit

(** Drop all events (closure slots are released); capacity is retained. *)
val clear : t -> unit
