(** Measurements over run results. The paper's bounds are phrased over
    rt(tau); local anchors and return times are converted back to simulator
    real time through the run's clocks before skews are computed. *)

open Ssba_core.Types

type episode = { g : general; returns : return_info list }
(** One agreement episode: the correct nodes' returns for one General,
    clustered in time (recurrent agreements split when consecutive returns
    are further apart than [Delta_agr]). *)

(** All episodes of a run, in time order. *)
val episodes : Runner.result -> episode list

(** The episode's decided returns, paired with their values. *)
val decided : episode -> (return_info * value) list

(** The episode's aborted returns. *)
val aborted : episode -> return_info list

(** Real time at which node [id]'s clock read [tau]. *)
val rt_of : Runner.result -> id:node_id -> float -> float

(** Max minus min of a float list (0 for empty lists). *)
val span : float list -> float

(** Max pairwise |rt(tau_q) - rt(tau_q')| over the episode's return times
    (Timeliness 1a's measured quantity). *)
val decision_skew : Runner.result -> episode -> float

(** Max pairwise anchor skew |rt(tau_g_q) - rt(tau_g_q')| (Timeliness 1b). *)
val anchor_skew : Runner.result -> episode -> float

(** Worst per-node local running time tau_ret - tau_g (Timeliness 1d/3). *)
val max_running_time : episode -> float

(** Worst rt_ret - proposed_at over the episode (Timeliness 2's window). *)
val latency : proposed_at:float -> episode -> float

(** Earliest / latest real return time of the episode. *)
val first_return : episode -> float

val last_return : episode -> float

(** Statistics helpers for sweeps ([nan] on empty input). *)
val mean : float list -> float

val maximum : float list -> float
val minimum : float list -> float

(** [percentile p l] for [p] in [0, 1] (nearest-rank). *)
val percentile : float -> float list -> float
