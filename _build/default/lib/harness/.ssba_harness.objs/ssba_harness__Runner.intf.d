lib/harness/runner.mli: Scenario Ssba_core Ssba_sim
