lib/apps/replicated_log.ml: List Printf Ssba_core Ssba_pulse Ssba_sim String
