test/test_msgd_broadcast.ml: Fake Helpers List Msgd_broadcast Params Ssba_core Types
