test/test_node.ml: Alcotest Cluster Helpers List Node Params Ssba_core Ssba_net Ssba_sim Types
