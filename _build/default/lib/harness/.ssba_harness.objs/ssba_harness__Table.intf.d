lib/harness/table.mli:
