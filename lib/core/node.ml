(* Node glue: wires the protocol state machines to the engine, clock and
   network, multiplexes per-General agreement instances, and implements the
   General-side Sending Validity Criteria [IG1]–[IG3] of §3/§4.

   Everything protocol-visible runs in local time; this module owns the
   conversion (timers are local durations turned into real delays through the
   node's drift rate). *)

open Types
module Engine = Ssba_sim.Engine
module Clock = Ssba_sim.Clock
module Trace = Ssba_sim.Trace
module Metrics = Ssba_sim.Metrics

type net = message Ssba_net.Network.t
type link = message Ssba_net.Link.t

type t = {
  id : node_id;
  params : Params.t;
  clock : Clock.t;
  engine : Engine.t;
  link : link;
      (* the sending surface: the raw network, or a reliable transport
         session when the scenario runs over a persistently faulty link *)
  channels : int;
      (* concurrent-invocation support (paper footnote 9): logical General
         ids range over [0, n * channels); logical g maps to physical node
         g mod n, and the Sending Validity Criteria are enforced per logical
         General, which is exactly how the paper says the rate limits can be
         circumvented safely *)
  instances : Ss_byz_agree.t Session_table.t;
      (* the session table: one live (logical G, anchor) session per slot,
         fixed capacity, deterministic eviction, quiescence GC *)
  guards : (general, Separation.t) Hashtbl.t;
      (* the per-General separation guards; they outlive their sessions and
         are only dropped once fully decayed (and no session holds them) *)
  blackout : bool;
      (* the Initiator-Accept re-initiation blackout knob; false only in the
         model checker's weakened-oracle sensitivity runs *)
  admission : bool;
      (* when set, the General's own proposals never evict: a full session
         table refuses the proposal ([At_capacity], counted by the table as
         [rejected_at_capacity]) instead of dropping a live session. Message
         receipt keeps the evicting path — admission guards new local work,
         not the protocol's reaction to the network. *)
  mutable returns : return_info list;  (* newest first *)
  mutable subscribers : (return_info -> unit) list;
  mutable observers : (general -> Ss_byz_agree.observation -> unit) list;
  (* General-side state for the Sending Validity Criteria, per logical id: *)
  last_init_at : (general, float) Hashtbl.t;  (* IG1 *)
  last_value_init_at : (general * value, float) Hashtbl.t;  (* IG2 *)
  blocked_until : (general, float) Hashtbl.t;  (* IG3 *)
  mutable cleanup_running : bool;
  (* per-node protocol counters in the engine's shared registry *)
  c_proposals : Metrics.counter;
  c_decided : Metrics.counter;
  c_aborted : Metrics.counter;
}

let id t = t.id
let params t = t.params
let clock t = t.clock
let engine t = t.engine
let local_time t = Clock.read t.clock ~now:(Engine.now t.engine)
let instance_count t = Session_table.live t.instances
let session_stats t = Session_table.stats t.instances
let returns t = List.rev t.returns
let subscribe t f = t.subscribers <- f :: t.subscribers
let subscribe_observations t f = t.observers <- f :: t.observers

let ctx_of t =
  {
    params = t.params;
    self = t.id;
    local_time = (fun () -> local_time t);
    send_all = (fun msg -> Ssba_net.Link.broadcast t.link ~src:t.id msg);
    after_local =
      (fun dl f ->
        Engine.schedule_after t.engine ~delay:(Clock.real_of_local_duration t.clock dl) f);
    trace = (fun event -> Engine.record t.engine ~node:t.id event);
  }

let guard_of t g =
  match Hashtbl.find_opt t.guards g with
  | Some s -> s
  | None ->
      let s = Separation.create () in
      Hashtbl.replace t.guards g s;
      s

(* A fresh session joins the table as (g, None) and is re-keyed to
   (g, Some tau_g) when its I-accept anchors it; the separation guard is
   found-or-created independently so a session recreated after eviction/GC
   still sees last(G), last(G,m) and the blackout. *)
let make_instance t g =
  let inst =
    Ss_byz_agree.create ~blackout:t.blackout ~guard:(guard_of t g)
      ~ctx:(ctx_of t) ~g ()
  in
  Ss_byz_agree.set_on_return inst (fun outcome ~tau_g ~tau_ret ->
      let r =
        {
          node = t.id;
          g;
          outcome;
          tau_g;
          tau_ret;
          rt_ret = Engine.now t.engine;
        }
      in
      t.returns <- r :: t.returns;
      (match outcome with
      | Decided _ -> Metrics.incr t.c_decided
      | Aborted -> Metrics.incr t.c_aborted);
      List.iter (fun f -> f r) t.subscribers);
  Ss_byz_agree.set_observer inst (fun obs ->
      (match obs with
      | Ss_byz_agree.Obs_iaccept { tau_g; _ } ->
          Session_table.set_anchor t.instances g tau_g
      | Ss_byz_agree.Obs_mb_accept _ | Ss_byz_agree.Obs_broadcast _
      | Ss_byz_agree.Obs_broadcaster _ -> ());
      List.iter (fun f -> f g obs) t.observers);
  inst

let instance t g =
  match Session_table.find t.instances g with
  | Some inst ->
      Session_table.touch t.instances g ~now:(local_time t);
      inst
  | None ->
      let inst = make_instance t g in
      (match Session_table.insert_reporting t.instances ~g ~now:(local_time t) inst with
      | Some victim ->
          Engine.record t.engine ~node:t.id (Trace.Session_evict { g = victim })
      | None -> ());
      inst

(* Admission-controlled session lookup for the General's own proposals:
   never evicts — [None] means the table is full and the proposal must be
   refused (the table counts it in [rejected_at_capacity]). *)
let instance_admit t g =
  match Session_table.find t.instances g with
  | Some inst ->
      Session_table.touch t.instances g ~now:(local_time t);
      Some inst
  | None ->
      let inst = make_instance t g in
      if Session_table.try_insert t.instances ~g ~now:(local_time t) inst then
        Some inst
      else None

(* The physical node behind a logical General id. *)
let physical t g = g mod t.params.Params.n

let handle_envelope t (env : message Ssba_net.Msg.t) =
  let sender = env.Ssba_net.Msg.src in
  let msg = env.Ssba_net.Msg.payload in
  let g =
    match msg with
    | Initiator { g; _ } -> g
    | Ia { g; _ } -> g
    | Mb { g; _ } -> g
  in
  (* Out-of-range (logical) General ids can only be garbage. Initiator
     authentication is against the physical node behind the logical id. *)
  if g >= 0 && g < t.params.Params.n * t.channels then
    match msg with
    | Initiator _ when sender <> physical t g -> ()
    | Initiator _ | Ia _ | Mb _ ->
        Ss_byz_agree.handle_message (instance t g) ~sender msg

(* Periodic cleanup at granularity d (local), per Figures 1–3, plus the
   session-table lifecycle: instances whose protocol state has fully decayed
   are collected (their guards persist), and guards that have themselves
   decayed to nothing — and are not referenced by a live session — are
   dropped. Between them the node's memory is bounded by the table capacity
   plus n * channels guards, regardless of how many agreements ever ran. *)
let start_cleanup t =
  if not t.cleanup_running then begin
    t.cleanup_running <- true;
    let d = t.params.Params.d in
    let rec tick () =
      Session_table.iter t.instances (fun ~g:_ ~anchor:_ inst ->
          Ss_byz_agree.cleanup inst);
      let tau = local_time t in
      (* The grace period covers the blind spot between a session's creation
         and its first protocol message (a fresh session is quiescent): a
         General's own proposal must not be collected while its self-addressed
         Initiator is still in flight. *)
      Session_table.gc t.instances ~dead:(fun ~active inst ->
          tau -. active > 4.0 *. d && Ss_byz_agree.quiescent inst);
      let doomed =
        Hashtbl.fold
          (fun g sep acc ->
            Separation.cleanup sep ~params:t.params ~now:tau;
            if Separation.is_idle sep && Session_table.find t.instances g = None
            then g :: acc
            else acc)
          t.guards []
      in
      List.iter (Hashtbl.remove t.guards) doomed;
      Engine.schedule_after t.engine
        ~delay:(Clock.real_of_local_duration t.clock d)
        tick
    in
    tick ()
  end

let create_on ?(channels = 1) ?session_capacity ?(blackout = true)
    ?(admission = false) ~id ~params ~clock ~engine ~link () =
  if channels < 1 then invalid_arg "Node.create: channels must be >= 1";
  let capacity =
    (* Every logical General can be live at once, so that is the natural
       floor; a smaller table would evict under normal operation. *)
    match session_capacity with
    | Some c -> c
    | None -> max 8 (params.Params.n * channels)
  in
  let t =
    {
      id;
      params;
      clock;
      engine;
      link;
      channels;
      blackout;
      admission;
      instances = Session_table.create ~capacity;
      guards = Hashtbl.create 4;
      returns = [];
      subscribers = [];
      observers = [];
      last_init_at = Hashtbl.create 4;
      last_value_init_at = Hashtbl.create 4;
      blocked_until = Hashtbl.create 4;
      cleanup_running = false;
      c_proposals =
        Metrics.counter (Engine.metrics engine)
          (Printf.sprintf "node%d.proposals" id);
      c_decided =
        Metrics.counter (Engine.metrics engine)
          (Printf.sprintf "node%d.returns.decided" id);
      c_aborted =
        Metrics.counter (Engine.metrics engine)
          (Printf.sprintf "node%d.returns.aborted" id);
    }
  in
  Ssba_net.Link.set_handler link id (fun env -> handle_envelope t env);
  start_cleanup t;
  t

let create ?channels ?session_capacity ?blackout ?admission ~id ~params ~clock
    ~engine ~net () =
  create_on ?channels ?session_capacity ?blackout ?admission ~id ~params
    ~clock ~engine ~link:(Ssba_net.Network.link net) ()

(* ----- the General role ------------------------------------------------ *)

type propose_error =
  | Too_soon  (* IG1: within Delta_0 of the previous initiation *)
  | Value_too_soon  (* IG2: within Delta_v of initiating the same value *)
  | Blocked  (* IG3: within Delta_reset of a noticed failure *)
  | Busy  (* own agreement instance still running *)
  | At_capacity  (* admission mode: session table full, no eviction *)

let string_of_propose_error = function
  | Too_soon -> "IG1: within Delta_0 of the previous initiation"
  | Value_too_soon -> "IG2: within Delta_v of initiating the same value"
  | Blocked -> "IG3: quiet period after a noticed failure"
  | Busy -> "previous agreement instance still active"
  | At_capacity -> "session table at capacity (admission refused)"

(* IG3 watchdog: §4 declares an invocation failed when the General's own
   L4 / M4 / N4 did not complete within 2d / 3d / 4d of its invocation. We
   check 7d (local) after the proposal — enough for the self-addressed
   Initiator message plus the 4d N4 deadline — and impose the Delta_reset
   quiet period on failure. *)
let watch_own_invocation t ~logical =
  let d = t.params.Params.d in
  (ctx_of t).after_local (7.0 *. d) (fun () ->
      (* Resolve the session at fire time, not at proposal time: the report
         lives in the separation guard, which survives the session being
         collected and recreated in between. *)
      let ia = Ss_byz_agree.initiator_accept (instance t logical) in
      let rep = Initiator_accept.invocation_report ia in
      let within bound = function
        | Some at -> (
            match rep.Initiator_accept.invoked_at with
            | Some inv -> at -. inv <= bound *. d
            | None -> false)
        | None -> false
      in
      let ok =
        rep.Initiator_accept.invoked_at <> None
        && within 2.0 rep.Initiator_accept.l4_at
        && within 3.0 rep.Initiator_accept.m4_at
        && within 4.0 rep.Initiator_accept.n4_at
      in
      if not ok then begin
        let tau = local_time t in
        Hashtbl.replace t.blocked_until logical (tau +. t.params.Params.delta_reset);
        Engine.record t.engine ~node:t.id (Trace.Ig3_failure { g = logical })
      end)

let propose ?(channel = 0) t v =
  if channel < 0 || channel >= t.channels then
    invalid_arg "Node.propose: channel out of range";
  let logical = (channel * t.params.Params.n) + t.id in
  let tau = local_time t in
  let ig1_violation =
    match Hashtbl.find_opt t.last_init_at logical with
    | Some s -> tau -. s < t.params.Params.delta_0
    | None -> false
  in
  let ig2_violation =
    match Hashtbl.find_opt t.last_value_init_at (logical, v) with
    | Some s -> tau -. s < t.params.Params.delta_v
    | None -> false
  in
  let blocked =
    match Hashtbl.find_opt t.blocked_until logical with
    | Some until -> tau < until
    | None -> false
  in
  if blocked then Error Blocked
  else if ig1_violation then Error Too_soon
  else if ig2_violation then Error Value_too_soon
  else
    match
      if t.admission then instance_admit t logical
      else Some (instance t logical)
    with
  | None -> Error At_capacity
  | Some inst when Ss_byz_agree.state inst <> Ss_byz_agree.Idle -> Error Busy
  | Some _ -> begin
    (* Before initiating, the General removes all previously received
       messages associated with previous invocations with him as General. *)
    Initiator_accept.forget_messages
      (Ss_byz_agree.initiator_accept (instance t logical));
    Hashtbl.replace t.last_init_at logical tau;
    Hashtbl.replace t.last_value_init_at (logical, v) tau;
    Metrics.incr t.c_proposals;
    Engine.record t.engine ~node:t.id (Trace.Propose { g = logical; v });
    (* Block Q0: send (Initiator, G, m) to all — the General invokes via its
       own self-addressed copy, like every other node. *)
    Ssba_net.Link.broadcast t.link ~src:t.id (Initiator { g = logical; v });
    watch_own_invocation t ~logical;
    Ok ()
  end

(* Canonical whole-node state fingerprint for the model checker's visited
   set: sessions (with the lifecycle bookkeeping that drives eviction),
   separation guards, General-side rate-limiting state and the return
   history, every table in sorted key order. The local clock reading is not
   included — the checker runs perfect clocks and appends the engine time
   itself. *)
let fingerprint buf t =
  Printf.bprintf buf "n%d{" t.id;
  let sessions = ref [] in
  Session_table.iter_detail t.instances
    (fun ~g ~anchor ~active ~stamp inst ->
      sessions := (g, anchor, active, stamp, inst) :: !sessions);
  List.iter
    (fun (g, anchor, active, stamp, inst) ->
      Printf.bprintf buf "sess%d[%s;%h;%d]=" g
        (match anchor with None -> "-" | Some a -> Printf.sprintf "%h" a)
        active stamp;
      Ss_byz_agree.fingerprint buf inst;
      Buffer.add_char buf ';')
    (List.sort (fun (a, _, _, _, _) (b, _, _, _, _) -> compare a b) !sessions);
  let sorted tbl =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  List.iter
    (fun (g, sep) ->
      Printf.bprintf buf "guard%d=" g;
      Separation.fingerprint buf sep;
      Buffer.add_char buf ';')
    (sorted t.guards);
  List.iter
    (fun (g, s) -> Printf.bprintf buf "ig1:%d=%h;" g s)
    (sorted t.last_init_at);
  List.iter
    (fun ((g, v), s) -> Printf.bprintf buf "ig2:%d/%s=%h;" g v s)
    (sorted t.last_value_init_at);
  List.iter
    (fun (g, s) -> Printf.bprintf buf "ig3:%d=%h;" g s)
    (sorted t.blocked_until);
  List.iter
    (fun (r : return_info) ->
      Printf.bprintf buf "ret:%d/%s@%h;" r.g
        (match r.outcome with Decided v -> v | Aborted -> "!")
        r.rt_ret)
    t.returns;
  Buffer.add_char buf '}'

(* ----- fault injection -------------------------------------------------- *)

(* Corrupt every existing instance, and conjure instances for [extra]
   additional random Generals so that pre-existing garbage about agreements
   nobody started is also represented. *)
let scramble rng ~values ?(extra = 2) t =
  let n = t.params.Params.n in
  for _ = 1 to extra do
    ignore (instance t (Ssba_sim.Rng.int rng (n * t.channels)))
  done;
  (* Corrupt the sessions *and* the table's own keys/activity times; the
     table's capacity and occupancy are structural and survive. *)
  let tau = local_time t in
  let span = 2.0 *. t.params.Params.delta_rmv in
  Session_table.scramble rng
    ~rtime:(fun () ->
      tau +. Ssba_sim.Rng.float_in_range rng ~lo:(-.span) ~hi:t.params.Params.delta_agr)
    ~corrupt:(fun inst -> Ss_byz_agree.scramble rng ~values inst)
    t.instances;
  (* The General-side bookkeeping is state like any other. *)
  if Ssba_sim.Rng.bool rng then
    Hashtbl.replace t.last_init_at
      (Ssba_sim.Rng.int rng (n * t.channels))
      (tau
      +. Ssba_sim.Rng.float_in_range rng ~lo:(-2.0 *. t.params.Params.delta_v)
           ~hi:t.params.Params.delta_0);
  if Ssba_sim.Rng.bool rng then
    Hashtbl.replace t.blocked_until
      (Ssba_sim.Rng.int rng (n * t.channels))
      (tau +. Ssba_sim.Rng.float_in_range rng ~lo:(-1.0) ~hi:t.params.Params.delta_reset)

(* A reformed node: a previously Byzantine node that starts running the
   correct protocol mid-run — the classic self-stabilizing rejoin. [create_on]
   takes over the link handler and starts the cleanup task; the scramble then
   installs arbitrary protocol and General-side state (§6's convergence
   argument assumes nothing better), so the paper only owes coherence-scoped
   guarantees [Delta_stb] after the reform point. *)
let reform ?channels ?session_capacity ?admission ~rng ~values ~id ~params
    ~clock ~engine ~link () =
  let t =
    create_on ?channels ?session_capacity ?admission ~id ~params ~clock
      ~engine ~link ()
  in
  scramble rng ~values t;
  t
