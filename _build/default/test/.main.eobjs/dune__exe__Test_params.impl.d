test/test_params.ml: Alcotest Fmt Helpers QCheck Ssba_core
