(* E17 — recurrent-agreement service soak.

   Three runs of the long-lived service loop (DESIGN.md §12):

   1. The soak: ~70 s of open-loop Poisson arrivals at 75 jobs/s over 8
      channels with the pulse layer cycling — >= 5,000 admitted sessions and
      >= 1,000 pulses in one execution, every decided episode unanimous,
      no timeouts and no exhausted retry budgets. The latency percentiles,
      throughput and pulse skew land in the table.

   2. The overload probe: the same cluster with bursty arrivals and starved
      watermarks, so shedding and degraded-mode episodes actually occur —
      every closed episode must recover within Delta_stb, and none may
      still be open at the horizon (the drain guarantee, non-vacuously).

   3. The tight-table probe: session capacity forced down to 8 with
      admission control on, so the [At_capacity] backstop fires and the
      [rejected_at_capacity] counter is exercised behind the service's own
      watermark shedding.

   Every assertion here is also fuzzed continuously by the --overload tier;
   the experiment pins one deterministic, human-readable instance. *)

module P = Ssba_core.Params
module Sc = Ssba_harness.Scenario
module H = Ssba_harness
module W = Workload

let check name ok = if not ok then Fmt.failwith "E17: %s" name

let episodes_ok (res : H.Runner.result) =
  List.for_all
    (fun (e : H.Metrics.episode) ->
      match H.Checks.agreement ~correct:res.H.Runner.correct e with
      | H.Checks.Violated _ -> false
      | H.Checks.Unanimous _ | H.Checks.All_aborted | H.Checks.All_silent ->
          true)
    (H.Metrics.episodes res)

(* Under retry pressure the per-General episode clustering merges distinct
   jobs (retry spacing < Delta_agr), so judge by value instead — service
   values are unique per attempt. Every value some correct node decided must
   have been decided by at least [min_nodes] correct nodes; any smaller
   count means a session stalled partway through the accept cascade. *)
let coverage_ok ~min_nodes (res : H.Runner.result) =
  let by_value : (string, int list) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (r : Ssba_core.Types.return_info) ->
      match r.Ssba_core.Types.outcome with
      | Ssba_core.Types.Decided v when Service.is_service_value v ->
          let nodes =
            Option.value ~default:[] (Hashtbl.find_opt by_value v)
          in
          if not (List.mem r.Ssba_core.Types.node nodes) then
            Hashtbl.replace by_value v (r.Ssba_core.Types.node :: nodes)
      | _ -> ())
    res.H.Runner.returns;
  Hashtbl.fold
    (fun _ nodes ok -> ok && List.length nodes >= min_nodes)
    by_value true

let scenario ?session_capacity ~seed ~params (w : W.t) =
  Sc.default ~name:"e17" ~seed
    ~horizon:(w.W.stop_at +. (1.5 *. params.P.delta_stb))
    ~channels:w.W.channels ~admission:true ?session_capacity params

let run ?(n = 4) ?(seed = 17) () =
  Fmt.pr "E17 — Recurrent-agreement service soak@.@.";
  let params = P.default n in
  let d = params.P.d in
  (* --- 1: the calm soak, sized for >= 5,000 sessions and >= 1,000 pulses *)
  let soak_w =
    {
      W.default with
      W.arrivals = W.Poisson { rate = 75.0 };
      start_at = 0.05;
      stop_at = 70.0;
      channels = 8;
      retry_base = 4.0 *. d;
      pulse_cycles = 1000;
    }
  in
  let res, r = Service.run ~seed soak_w (scenario ~seed ~params soak_w) in
  let window = soak_w.W.stop_at -. soak_w.W.start_at in
  Fmt.pr "soak: n=%d, %g jobs/s over %g s, 8 channels, pulse layer on@." n
    (W.rate soak_w.W.arrivals) window;
  Fmt.pr "  admitted %d  decided %d  timed-out %d  gave-up %d  shed %d@."
    r.Service.admitted r.Service.decided r.Service.timed_out r.Service.gave_up
    r.Service.shed;
  Fmt.pr "  latency p50 %.2fd  p99 %.2fd  max %.2fd  throughput %.1f/s@."
    (r.Service.p50_latency /. d)
    (r.Service.p99_latency /. d)
    (r.Service.max_latency /. d)
    r.Service.throughput;
  Fmt.pr "  pulses %d  pulse skew %.2fd (bound 3d)@." r.Service.pulses
    (r.Service.pulse_skew /. d);
  check "soak admitted >= 5000" (r.Service.admitted >= 5000);
  check "soak pulses >= 1000" (r.Service.pulses >= 1000);
  check "soak: no timeouts" (r.Service.timed_out = 0);
  check "soak: no exhausted retry budgets" (r.Service.gave_up = 0);
  check "soak: every episode agreed" (episodes_ok res);
  check "soak: pulse skew within 3d" (r.Service.pulse_skew <= 3.0 *. d);
  (* --- 2: overload, so degraded-mode recovery is bounded non-vacuously *)
  let over_w =
    {
      W.default with
      W.arrivals = W.Bursty { rate = 50.0; burst = 40; every = 0.5 };
      start_at = 0.05;
      stop_at = 10.0;
      channels = 8;
      queue_cap = 8;
      high_watermark = 0.4;
      low_watermark = 0.2;
      retry_base = 4.0 *. d;
    }
  in
  let res, r = Service.run ~seed over_w (scenario ~seed ~params over_w) in
  let closed =
    List.filter_map (fun (en, ex) -> Option.map (fun x -> x -. en) ex)
      r.Service.degraded_episodes
  in
  let max_span = List.fold_left Float.max 0.0 closed in
  Fmt.pr
    "@.overload: bursts of 40 every 0.5 s, watermarks 0.4/0.2, queue cap 8@.";
  Fmt.pr "  arrivals %d  admitted %d  shed %d (degraded %d, watermark %d, \
          queue-full %d)@."
    r.Service.arrivals r.Service.admitted r.Service.shed
    r.Service.shed_degraded r.Service.shed_watermark r.Service.shed_queue_full;
  Fmt.pr "  degraded episodes %d  max recovery %.1fd  (Delta_stb = %.1fd)@."
    (List.length r.Service.degraded_episodes)
    (max_span /. d)
    (params.P.delta_stb /. d);
  check "overload: shedding occurred" (r.Service.shed > 0);
  check "overload: degraded mode engaged"
    (r.Service.degraded_episodes <> []);
  check "overload: every degraded episode closed"
    (r.Service.unresolved_degraded = 0);
  check "overload: recovery within Delta_stb"
    (max_span <= params.P.delta_stb);
  check "overload: every decided job decided cluster-wide"
    (coverage_ok ~min_nodes:(List.length res.H.Runner.correct) res);
  (* --- 3: tight tables, so the At_capacity backstop itself is exercised.
     The service's own watermark fires strictly before a table fills (the
     worst live/capacity fraction reaches 1.0 exactly when a node is full),
     so the backstop behind it needs a direct admission-controlled proposal
     flood: 16 sessions per node against capacity 8. *)
  let channels = 16 and capacity = 8 in
  let k = n * channels in
  let t0 = 0.05 in
  let flood =
    List.init k (fun i ->
        {
          Sc.g = i;
          v = Printf.sprintf "flood-%d" i;
          at = t0 +. (float_of_int i /. float_of_int k *. d);
        })
  in
  let sc =
    Sc.default ~name:"e17-tight" ~seed ~proposals:flood ~channels
      ~session_capacity:capacity ~admission:true
      ~horizon:(t0 +. (3.0 *. params.P.delta_agr))
      params
  in
  let res = H.Runner.run sc in
  let rejected =
    List.fold_left
      (fun acc (_, nd) ->
        acc
        + (Ssba_core.Node.session_stats nd)
            .Ssba_core.Session_table.rejected_at_capacity)
      0 res.H.Runner.nodes
  in
  let refused =
    List.length
      (List.filter
         (fun (_, o) ->
           match o with
           | H.Runner.Refused Ssba_core.Node.At_capacity -> true
           | _ -> false)
         res.H.Runner.proposal_results)
  in
  Fmt.pr
    "@.tight tables: %d sessions/node proposed against capacity %d, \
     admission on@."
    channels capacity;
  Fmt.pr "  proposals %d  refused At_capacity %d  rejected-at-capacity %d@." k
    refused rejected;
  check "tight: At_capacity rejections occurred" (rejected > 0);
  check "tight: refusals surfaced to the proposers" (refused > 0);
  Fmt.pr "@.all E17 checks passed@."
