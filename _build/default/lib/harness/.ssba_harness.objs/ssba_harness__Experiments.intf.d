lib/harness/experiments.mli:
