(* Integration tests for the full ss-Byz-Agree protocol (paper Figure 1),
   run on the real simulator via the Cluster helper. *)

open Helpers
open Ssba_core
module Engine = Ssba_sim.Engine
module Net = Ssba_net.Network

let propose (c : Cluster.t) ~g ~v ~at =
  Engine.schedule c.Cluster.engine ~at (fun () ->
      match Node.propose (Cluster.node c g) v with
      | Ok () -> ()
      | Error e -> Alcotest.failf "propose refused: %s" (Node.string_of_propose_error e))

let test_validity () =
  let c = Cluster.make ~n:7 () in
  propose c ~g:0 ~v:"v" ~at:0.05;
  Cluster.run c;
  let rets = Cluster.returns c in
  check_int "all 7 nodes return" 7 (List.length rets);
  List.iter
    (fun (r : Types.return_info) ->
      check_bool "decided the General's value" true
        (r.Types.outcome = Types.Decided "v"))
    rets

let test_validity_under_crashes () =
  (* f = 2 crashed from the start: the remaining n - f = 5 still decide *)
  let c = Cluster.make ~n:7 ~skip:[ 5; 6 ] () in
  propose c ~g:0 ~v:"v" ~at:0.05;
  Cluster.run c;
  check_int "5 correct nodes decide" 5 (List.length (Cluster.decided_values c))

let test_no_progress_beyond_f_crashes () =
  (* with f + 1 = 3 crashes the support quorum n - f = 5 is unreachable:
     nobody can decide (and nobody returns at all) *)
  let c = Cluster.make ~n:7 ~skip:[ 4; 5; 6 ] () in
  propose c ~g:0 ~v:"v" ~at:0.05;
  Cluster.run c;
  check_int "no returns" 0 (List.length (Cluster.returns c))

let test_fast_path_round_zero () =
  (* fixed tiny delay: everyone decides via block R, within ~4 hops *)
  let c = Cluster.make ~n:7 ~delay:(`Fixed 0.0001) ~clock:`Perfect () in
  propose c ~g:0 ~v:"v" ~at:0.05;
  Cluster.run c;
  List.iter
    (fun (r : Types.return_info) ->
      check_bool "decision well inside 4d of the anchor" true
        (r.Types.tau_ret -. r.Types.tau_g <= 4.0 *. c.Cluster.params.Params.d))
    (Cluster.returns c);
  check_int "all decide" 7 (List.length (Cluster.decided_values c))

let test_decision_skew_bound () =
  let c = Cluster.make ~n:10 ~seed:5 () in
  propose c ~g:3 ~v:"v" ~at:0.05;
  Cluster.run c;
  let rts = List.map (fun (r : Types.return_info) -> r.Types.rt_ret) (Cluster.returns c) in
  let span = List.fold_left Float.max (List.hd rts) rts -. List.fold_left Float.min (List.hd rts) rts in
  check_bool "decision skew <= 3d (Timeliness 1a)" true
    (span <= 3.0 *. c.Cluster.params.Params.d +. 1e-9)

let test_anchor_before_return () =
  let c = Cluster.make ~n:7 ~seed:9 () in
  propose c ~g:1 ~v:"v" ~at:0.05;
  Cluster.run c;
  List.iter
    (fun (r : Types.return_info) ->
      check_bool "tau_g <= tau_ret (Timeliness 1d)" true (r.Types.tau_g <= r.Types.tau_ret);
      check_bool "running time <= Dagr" true
        (r.Types.tau_ret -. r.Types.tau_g <= c.Cluster.params.Params.delta_agr))
    (Cluster.returns c)

let test_instance_resets_after_agreement () =
  let c = Cluster.make ~n:7 () in
  propose c ~g:0 ~v:"first" ~at:0.05;
  (* beyond Delta_0 so IG1 allows, and instance must be Idle again *)
  propose c ~g:0 ~v:"second" ~at:(0.05 +. (2.0 *. c.Cluster.params.Params.delta_0));
  Cluster.run c;
  let decided = Cluster.decided_values c in
  check_int "both agreements decided by all" 14 (List.length decided);
  check_int "7 decided first" 7
    (List.length (List.filter (String.equal "first") decided));
  check_int "7 decided second" 7
    (List.length (List.filter (String.equal "second") decided))

let test_concurrent_generals () =
  (* two different Generals initiate close together: separate instances,
     both decide *)
  let c = Cluster.make ~n:10 () in
  propose c ~g:0 ~v:"a" ~at:0.05;
  propose c ~g:1 ~v:"b" ~at:0.0505;
  Cluster.run c;
  let by_value v =
    List.length (List.filter (String.equal v) (Cluster.decided_values c))
  in
  check_int "all decide G=0's value" 10 (by_value "a");
  check_int "all decide G=1's value" 10 (by_value "b")

let test_matching_block_s () =
  (* Direct unit test of the round-matching used by block S: a Byzantine
     broadcaster appearing in two rounds must not satisfy r = 2 alone, but a
     system of distinct representatives must. Exercised via the primitive's
     accept callback plumbing on a fake context. *)
  let params = Params.default 7 in
  let fake, ctx = Fake.make params in
  ignore fake;
  let agree = Ss_byz_agree.create ~ctx ~g:6 () in
  (* drive the instance by hand: anchor via the Initiator-Accept of value m *)
  let ia = Ss_byz_agree.initiator_accept agree in
  List.iter
    (fun s -> Initiator_accept.handle_message ia ~kind:Types.Support ~sender:s ~v:"m")
    [ 0; 1; 2; 3; 4 ];
  Fake.advance fake (5.0 *. params.Params.d);
  List.iter
    (fun s -> Initiator_accept.handle_message ia ~kind:Types.Approve ~sender:s ~v:"m")
    [ 0; 1; 2; 3; 4 ];
  Fake.advance fake (0.2 *. params.Params.d);
  List.iter
    (fun s -> Initiator_accept.handle_message ia ~kind:Types.Ready ~sender:s ~v:"m")
    [ 0; 1; 2; 3; 4 ];
  (* the anchor is ~7d in the past now, so block R (<= 4d) must NOT fire *)
  check_bool "still running (R missed)" true
    (Ss_byz_agree.state agree = Ss_byz_agree.Running);
  let mb = Ss_byz_agree.msgd_broadcast agree in
  let accept_round ~p ~k =
    (* block Z is untimed, so echo' quorums make (p, m, k) accepted even
       past its X deadline *)
    List.iter
      (fun s -> Msgd_broadcast.handle_message mb ~sender:s ~kind:Types.Echo2 ~p ~v:"m" ~k)
      [ 0; 1; 2; 3; 4 ]
  in
  (* move past S(1)'s deadline (tau_g + 3 Phi) so a round-1 accept alone can
     no longer decide; the anchor is ~2d before the supports *)
  Fake.advance fake (3.2 *. params.Params.phi);
  accept_round ~p:3 ~k:1;
  check_bool "round-1 accept past its deadline does not decide" true
    (Ss_byz_agree.state agree = Ss_byz_agree.Running);
  (* Byzantine node 3 also shows up in round 2: rounds {1,2} cannot be
     matched to distinct broadcasters *)
  accept_round ~p:3 ~k:2;
  check_bool "single node in two rounds does not satisfy r=2" true
    (Ss_byz_agree.state agree = Ss_byz_agree.Running);
  (* a distinct node for round 2 completes the system of representatives *)
  accept_round ~p:4 ~k:2;
  (match Ss_byz_agree.state agree with
  | Ss_byz_agree.Returned (Types.Decided v, _) -> check_str "decided m" "m" v
  | _ -> Alcotest.fail "expected a decision through block S")

(* --- block R gate boundary pins ----------------------------------------- *)

(* Drive a hand-fed instance to its I-accept with an exact [tau - tau_g].
   Power-of-two parameters (d = 0.125, rho = 0) make every timestamp and
   every gate multiple exact in floating point, so "exactly 4d" means
   exactly, not within an ulp. The anchor comes from L1's recording rule:
   five simultaneous supports give tau_g = support time - 2d, so delivering
   the ready quorum at support time + (gap - 2)d lands the accept at
   tau_g + gap*d on the nose. *)
let gate_params r_slack =
  Params.with_r_slack (Params.default ~delta:0.125 ~pi:0.0 ~rho:0.0 7) r_slack

let drive_accept ~params ~gap_in_d =
  let fake, ctx = Fake.make params in
  let agree = Ss_byz_agree.create ~ctx ~g:6 () in
  let ia = Ss_byz_agree.initiator_accept agree in
  let d = params.Params.d in
  let quorum kind =
    List.iter
      (fun s -> Initiator_accept.handle_message ia ~kind ~sender:s ~v:"m")
      [ 0; 1; 2; 3; 4 ]
  in
  quorum Types.Support;
  Fake.advance fake d;
  quorum Types.Approve;
  Fake.advance fake ((gap_in_d -. 3.0) *. d);
  quorum Types.Ready;
  (fake, agree)

let decided agree =
  match Ss_byz_agree.state agree with
  | Ss_byz_agree.Returned (Types.Decided v, _) -> Some v
  | Ss_byz_agree.Idle | Ss_byz_agree.Running
  | Ss_byz_agree.Returned (Types.Aborted, _) ->
      None

(* The gate comparison is <=, not <: an accept exactly ON the boundary takes
   the fast path; one ulp past it does not. Pinned for both the legacy 4d
   gate and the widen 5d default — if either flips to strict-less-than, the
   knife-edge slack argument (EXPERIMENTS E15) no longer matches the code. *)
let test_block_r_gate_boundaries () =
  let case ~r_slack ~gap_in_d expect =
    let _, agree = drive_accept ~params:(gate_params r_slack) ~gap_in_d in
    check_bool
      (Printf.sprintf "%s gate at gap %gd"
         (Params.r_slack_to_string r_slack)
         gap_in_d)
      expect
      (decided agree = Some "m")
  in
  (* legacy: <= 4d decides in round 0; anything past it does not *)
  case ~r_slack:Params.Legacy ~gap_in_d:4.0 true;
  case ~r_slack:Params.Legacy ~gap_in_d:4.125 false;
  case ~r_slack:Params.Legacy ~gap_in_d:5.0 false;
  (* widen (the default): the gate moved to <= 5d, covered by [IA-1D] *)
  case ~r_slack:Params.Widen ~gap_in_d:4.0 true;
  case ~r_slack:Params.Widen ~gap_in_d:5.0 true;
  case ~r_slack:Params.Widen ~gap_in_d:5.125 false;
  (* general keeps the 4d gate itself (its relaxation lives in block S) *)
  case ~r_slack:Params.Count_general ~gap_in_d:4.0 true;
  case ~r_slack:Params.Count_general ~gap_in_d:4.125 false

(* The Count_general variant's block-S relaxation: a node that missed block
   R but I-accepted m counts the General's own round-1 broadcast as the
   r = 1 proof and decides in round 1. The same broadcast stays excluded
   when the value differs from the node's own I-accept, and under the other
   two variants entirely. *)
let test_count_general_block_s () =
  let general_broadcast agree ~v =
    let mb = Ss_byz_agree.msgd_broadcast agree in
    List.iter
      (fun s ->
        Msgd_broadcast.handle_message mb ~sender:s ~kind:Types.Echo2 ~p:6 ~v
          ~k:1)
      [ 0; 1; 2; 3; 4 ]
  in
  (* missed the 4d gate by a full d: stranded in Running *)
  let _, agree =
    drive_accept ~params:(gate_params Params.Count_general) ~gap_in_d:5.0
  in
  check_bool "stranded past the 4d gate" true
    (Ss_byz_agree.state agree = Ss_byz_agree.Running);
  (* a General broadcast of a DIFFERENT value is still no proof *)
  general_broadcast agree ~v:"x";
  check_bool "General's broadcast of another value does not count" true
    (Ss_byz_agree.state agree = Ss_byz_agree.Running);
  (* ...but his round-1 broadcast of the I-accepted value decides round 1 *)
  general_broadcast agree ~v:"m";
  check_bool "General's own broadcast completes r = 1" true
    (decided agree = Some "m");
  (* under the widen default the General stays excluded from block S: the
     same stranding (one ulp past 5d) is not rescued by his broadcast *)
  let _, agree =
    drive_accept ~params:(gate_params Params.Widen) ~gap_in_d:5.125
  in
  general_broadcast agree ~v:"m";
  check_bool "widen still excludes the General from block S" true
    (Ss_byz_agree.state agree = Ss_byz_agree.Running)

let test_termination_u_block () =
  (* anchor with no broadcasts at all: block T or U must abort within
     Delta_agr *)
  let params = Params.default 7 in
  let fake, ctx = Fake.make params in
  let agree = Ss_byz_agree.create ~ctx ~g:6 () in
  let returned = ref None in
  Ss_byz_agree.set_on_return agree (fun outcome ~tau_g:_ ~tau_ret ->
      returned := Some (outcome, tau_ret));
  let ia = Ss_byz_agree.initiator_accept agree in
  List.iter
    (fun s -> Initiator_accept.handle_message ia ~kind:Types.Support ~sender:s ~v:"m")
    [ 0; 1; 2; 3; 4 ];
  Fake.advance fake (5.0 *. params.Params.d);
  List.iter
    (fun s -> Initiator_accept.handle_message ia ~kind:Types.Approve ~sender:s ~v:"m")
    [ 0; 1; 2; 3; 4 ];
  List.iter
    (fun s -> Initiator_accept.handle_message ia ~kind:Types.Ready ~sender:s ~v:"m")
    [ 0; 1; 2; 3; 4 ];
  check_bool "running" true (Ss_byz_agree.state agree = Ss_byz_agree.Running);
  let anchored_at = fake.Fake.now in
  Fake.advance fake params.Params.delta_agr;
  (match !returned with
  | Some (Types.Aborted, tau_ret) ->
      check_bool "aborted within Dagr of the anchor" true
        (tau_ret -. anchored_at <= params.Params.delta_agr)
  | Some (Types.Decided _, _) -> Alcotest.fail "decided out of nowhere"
  | None -> Alcotest.fail "T/U blocks did not abort");
  (* and 3d later the instance has reset to Idle, ready for reuse *)
  check_bool "instance reset after the return" true
    (Ss_byz_agree.state agree = Ss_byz_agree.Idle)

let test_cleanup_repairs_corrupt_running_state () =
  let params = Params.default 7 in
  let fake, ctx = Fake.make params in
  let agree = Ss_byz_agree.create ~ctx ~g:3 () in
  let rng = Ssba_sim.Rng.create 17 in
  Ss_byz_agree.scramble rng ~values:[ "x"; "y" ] agree;
  (* periodic cleanup over a stabilization period must drive the instance
     back to Idle, whatever the scramble produced *)
  for _ = 1 to int_of_float (params.Params.delta_stb /. params.Params.d) do
    Fake.advance fake params.Params.d;
    Ss_byz_agree.cleanup agree
  done;
  check_bool "instance repaired to Idle" true (Ss_byz_agree.state agree = Ss_byz_agree.Idle)

let suite =
  [
    case "validity" test_validity;
    case "validity under f crashes" test_validity_under_crashes;
    case "no progress beyond f crashes" test_no_progress_beyond_f_crashes;
    case "fast path (block R)" test_fast_path_round_zero;
    case "decision skew" test_decision_skew_bound;
    case "anchor/running-time bounds" test_anchor_before_return;
    case "instance resets (recurrent)" test_instance_resets_after_agreement;
    case "concurrent Generals" test_concurrent_generals;
    case "block S round matching" test_matching_block_s;
    case "block R gate boundaries (4d/5d, <= not <)" test_block_r_gate_boundaries;
    case "Count_general: General's broadcast is the r=1 proof"
      test_count_general_block_s;
    case "block U aborts" test_termination_u_block;
    case "cleanup repairs scrambled state" test_cleanup_repairs_corrupt_running_state;
  ]
