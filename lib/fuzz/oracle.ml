(* Property oracles over one fuzzed run.

   Soundness is the whole game: a fuzzer whose oracle cries wolf under legal
   schedules is useless, so each check is gated on the scenario class it is
   actually promised for. Agreement (pairwise, anchored) holds from the
   re-stabilization point after arbitrary transient faults; the primitive
   invariants and the timeliness deadlines additionally assume the network
   stayed coherent, so they only run on event-free specs. Byzantine casts up
   to f never gate anything — that is the permanent fault budget.

   The transport moves the line: persistent link faults (Loss/Duplicate/
   Reorder) under a transport-carrying spec are *not* disruptions — the
   transport's contract is to re-establish the bounded-delay channel at
   delta_eff, so Validity/Termination/Timeliness are checked as if the links
   were clean. Without a transport those same faults leave the paper's model
   permanently: nothing beyond conservation can soundly be demanded, so the
   other oracles are skipped — unless [assume_coherent] forces them back on,
   which is how the regression suite demonstrates that the un-transported
   protocol really does lose Termination over lossy links. *)

module H = Ssba_harness
module P = Ssba_core.Params
module S = H.Scenario

type failure = { oracle : string; detail : string }
type report = { digest : string; failures : failure list }

type config = {
  check_invariants : bool;
  check_timeliness : bool;
  skew_deadline_scale : float;
  assume_coherent : bool;
  recovery_stb_scale : float;
}

let default_config =
  {
    check_invariants = true;
    check_timeliness = true;
    skew_deadline_scale = 1.0;
    assume_coherent = false;
    recovery_stb_scale = 1.0;
  }

let failed r = r.failures <> []
let pp_failure ppf f = Fmt.pf ppf "[%s] %s" f.oracle f.detail

(* The real time from which the paper's guarantees apply again: Delta_stb
   after the last disruptive event. Heal only restores service, and
   transport-masked link faults never suspend the guarantees at all (see
   Spec.disruptive). *)
let stabilized_after spec =
  let params = Spec.params spec in
  let disruptive =
    List.filter_map
      (fun e ->
        if Spec.disruptive spec e then Some (Spec.event_time e) else None)
      spec.Spec.events
  in
  match disruptive with
  | [] -> 0.0
  | ts -> List.fold_left max 0.0 ts +. params.P.delta_stb

(* Match an accepted proposal to its episode: same General, first return
   within the termination window of the initiation. *)
let episode_for episodes (p : S.proposal) ~params =
  let lo = p.S.at -. params.P.d in
  let hi = p.S.at +. params.P.delta_agr +. (8.0 *. params.P.d) in
  List.find_opt
    (fun (e : H.Metrics.episode) ->
      e.H.Metrics.g = p.S.g
      &&
      let t = H.Metrics.first_return e in
      t >= lo && t <= hi)
    episodes

let run ?(config = default_config) spec =
  let params = Spec.params spec in
  let d = params.P.d in
  let sc = Spec.to_scenario spec in
  let res = H.Runner.run sc in
  let failures = ref [] in
  let add oracle fmt =
    Printf.ksprintf (fun detail -> failures := { oracle; detail } :: !failures) fmt
  in
  (* Conservation: exact accounting identity, scenario class irrelevant. *)
  let conservation = H.Checks.network_conservation res in
  if not conservation.H.Checks.ok then
    add "conservation" "attempts=%d but delivered+dropped+in_flight=%.0f"
      (res.H.Runner.messages_sent + res.H.Runner.messages_duplicated)
      conservation.H.Checks.measured;
  (* Agreement, per coherent interval: the paper owes it inside every
     maximal coherent interval from Delta_stb after the interval opens (from
     its start when nothing preceded it). This subsumes the old single
     "after the last disruption" check — incoherent tails (unrecovered
     crashes, unmasked persistent link faults) simply contribute no interval
     — and additionally catches violations in early coherent windows that a
     last-disruption-only cutoff would skate past. *)
  let stb = params.P.delta_stb *. config.recovery_stb_scale in
  let reports =
    if config.assume_coherent then [] else H.Checks.recovery_report ~stb res
  in
  if config.assume_coherent then
    List.iter
      (fun v -> add "agreement" "%s" v)
      (H.Checks.pairwise_agreement ~after:(stabilized_after spec) res)
  else
    List.iteri
      (fun idx (r : H.Checks.episode_report) ->
        List.iter
          (fun v ->
            add "agreement" "interval %d [%g, %g): %s" idx
              r.H.Checks.interval.H.Coherence.t_start
              r.H.Checks.interval.H.Coherence.t_end v)
          r.H.Checks.violations;
        match r.H.Checks.recovery_time with
        | Some rt when rt > params.P.delta_stb *. (1.0 +. 1e-9) ->
            add "recovery-time"
              "interval %d: measured stabilization %.3fs exceeds Delta_stb %.3fs"
              idx rt params.P.delta_stb
        | Some _ | None -> ())
      reports;
  (* "Reliable" specs — nothing ever invalidated the channel abstraction:
     calm, or every event is a transport-masked link fault. Validity,
     Termination and the decision-skew deadline are promised over the whole
     run there. Under disruptions, the same per-proposal checks apply to
     proposals whose full termination window fits inside the checked part of
     one coherent interval — that is exactly where §6.1 re-entitles them. *)
  let reliable =
    config.assume_coherent
    || not (List.exists (Spec.disruptive spec) spec.Spec.events)
  in
  let window = params.P.delta_agr +. (8.0 *. d) in
  (* The correct set a proposal's checks should use: the interval's cast
     (pre-Reform windows must not demand returns from a node that only
     rejoined later). [None] when the proposal is not entitled. *)
  let entitlement (p : S.proposal) =
    if p.S.at +. window > spec.Spec.horizon then None
    else if reliable then Some res.H.Runner.correct
    else
      List.find_map
        (fun (r : H.Checks.episode_report) ->
          let iv = r.H.Checks.interval in
          if
            p.S.at >= r.H.Checks.checked_from
            && p.S.at +. window <= iv.H.Coherence.t_end
          then Some iv.H.Coherence.correct
          else None)
        reports
  in
  (* Invariant monitors stay calm-only: they watch per-message causality at
     a granularity where even masked link faults (residual loss, late
     retransmits) are observable without being protocol violations. *)
  if spec.Spec.events = [] && config.check_invariants then
    List.iter (fun v -> add "invariants" "%s" v) (H.Invariants.check res);
  if config.check_timeliness then begin
    let episodes = H.Metrics.episodes res in
    List.iter
      (fun ((p : S.proposal), outcome) ->
        match outcome with
        | H.Runner.Refused _ | H.Runner.No_general -> ()
        | H.Runner.Accepted -> (
            match entitlement p with
            | None -> ()
            | Some correct -> (
                match episode_for episodes p ~params with
                | None ->
                    add "termination"
                      "G=%d accepted %S at %g but no correct node returned" p.S.g
                      p.S.v p.S.at
                | Some e ->
                    if not (H.Checks.validity ~correct ~v:p.S.v e) then
                      add "validity"
                        "G=%d proposed %S at %g: not every correct node decided it"
                        p.S.g p.S.v p.S.at;
                    let skew = H.Metrics.decision_skew res e in
                    let bound = 3.0 *. d *. config.skew_deadline_scale in
                    if skew > bound +. 1e-12 then
                      add "timeliness-1a"
                        "G=%d decision skew %.3fd exceeds deadline %.3fd" p.S.g
                        (skew /. d) (bound /. d))))
      res.H.Runner.proposal_results
  end;
  (res, { digest = H.Checks.result_digest res; failures = List.rev !failures })
