(* Small-model configurations for the bounded checker.

   A configuration fixes everything about a tiny world except the choices the
   checker branches over: the Byzantine script menus and the delivery-delay
   lattice. The choice space is explicit and finite by construction — the
   checker is exhaustive over *this* space up to its depth bound, which is the
   honest statement a bounded model checker can make (DESIGN.md §10).

   Delays branch per *class*, not per send: [branch] maps a send to a group
   key, and every send in the same group shares one lattice choice within a
   run. Grouping is what keeps the space enumerable (branching every delivery
   independently is 2^hundreds); the key function is part of the
   configuration, i.e. part of the claim. *)

open Ssba_core.Types
module Params = Ssba_core.Params
module Scenario = Ssba_harness.Scenario

type script_step = {
  step_at : float;  (* absolute engine real time *)
  step_label : string;
  options : (node_id option * message) list list;
      (* menu of send batches; the checker branches over the index (option 0
         is the default path), then performs every send of the chosen batch.
         A [None] destination broadcasts. A single-option step never
         branches: it is the deterministic part of the script. *)
}

type byz = { byz_id : node_id; steps : script_step list }

type t = {
  name : string;
  params : Params.t;
  byz : byz list;
  proposals : Scenario.proposal list;
  session_capacity : int option;
  blackout : bool;
  horizon : float;
  default_delay : float;
  lattice : float array;
      (* delay options for branched deliveries; index 0 is explored first *)
  lattices : (string * float array) list;
      (* per-class lattice overrides, keyed by the [branch] key; classes not
         listed here fall back to [lattice]. Lets one config straddle a
         comparison boundary on exactly the deliveries that feed it while
         keeping every other class binary. *)
  branch : src:node_id -> dst:node_id -> message -> string option;
      (* [Some key]: the send's delay is a lattice choice shared by every
         send mapping to [key] within the run; [None]: [default_delay].
         Deliveries to Byzantine nodes are additionally filtered out when
         partial-order reduction is on (the scripts are input-oblivious, so
         those deliveries commute with everything). *)
}

let lattice_for t key =
  match List.assoc_opt key t.lattices with
  | Some l -> l
  | None -> t.lattice

let byz_ids t = List.map (fun b -> b.byz_id) t.byz
let is_byz t id = List.exists (fun b -> b.byz_id = id) t.byz

let correct_ids t =
  List.filter (fun id -> not (is_byz t id)) (List.init t.params.Params.n Fun.id)

(* ----- smoke: n=4/f=1, natural capacity, a correct proposal plus a meddling
   Byzantine General. The paper's theorems say no oracle can fire anywhere in
   this space; the CI gate holds the checker to that. *)
let smoke () =
  let params = Params.default ~f:1 4 in
  let d = params.Params.d in
  let dd x = x *. d in
  let ia kind v = Ia { kind; g = 3; v } in
  {
    name = "smoke";
    params;
    byz =
      [
        {
          byz_id = 3;
          steps =
            [
              {
                step_at = dd 1.0;
                step_label = "g3";
                options =
                  [
                    [];
                    (* a partial initiation: engaged nodes must all abort *)
                    [
                      (Some 0, Initiator { g = 3; v = "x" });
                      (Some 1, Initiator { g = 3; v = "x" });
                    ];
                    (* unbacked support: must decay without a quorum *)
                    [ (None, ia Support "x") ];
                  ];
              };
            ];
        };
      ];
    proposals = [ { Scenario.g = 0; v = "a"; at = dd 0.5 } ];
    session_capacity = None;
    blackout = true;
    horizon = dd 34.0;
    default_delay = dd 0.4;
    lattice = [| dd 0.4; dd 1.1 |];
    lattices = [];
    branch =
      (fun ~src:_ ~dst msg ->
        match msg with
        | Ia { kind = Support; g; v; _ } -> Some (Fmt.str "S%d>%d:%s" g dst v)
        | Ia { kind = Ready; g; v; _ } -> Some (Fmt.str "R%d>%d:%s" g dst v)
        | _ -> None);
  }

(* ----- split: the IA-4 split-decision hunt (ISSUE 7 / ROADMAP item 3).

   Capacity 2 puts the session table under pressure; two interleaved correct
   proposals (g=0, g=2) force per-node LRU divergence, steered by the delay
   choices on Ready deliveries and on g=2's Initiator deliveries. The
   Byzantine General g=3 drives value v1 to a decision at node 1 while nodes
   0 and 2 lose their g=3 session to eviction *before* accepting, then
   re-initiates v2 towards exactly those nodes. With the re-initiation
   blackout on, the Separation guard (which survives eviction) blocks the
   second engagement; with the knob off, the checker must find the run where
   node 1 decides v1 and nodes 0/2 decide v2 with anchors within 4d — the
   split PR-6 closed.

   Eviction under scarcity also strands the correct proposals mid-flight at
   some nodes, so relay ("decided but peer never returned") violations are
   reachable in this config regardless of the knob — the sensitivity verdict
   therefore counts *split decisions*, not raw violations. *)
let split ~blackout () =
  let params = Params.default ~f:1 4 in
  let d = params.Params.d in
  let dd x = x *. d in
  let ia kind v = Ia { kind; g = 3; v } in
  let to_01 m = [ (Some 0, m); (Some 1, m) ] in
  let to_02 m = [ (Some 0, m); (Some 2, m) ] in
  {
    name = (if blackout then "split-blackout-on" else "split-blackout-off");
    params;
    byz =
      [
        {
          byz_id = 3;
          steps =
            [
              (* the v1 wave: initiate towards 0 and 1 only, and feed the
                 support/approve quorums so exactly node 1 can accept (node 2
                 sees two supports — enough for L1's anchor recording and the
                 session-value note, not enough to approve). *)
              {
                step_at = dd 0.05;
                step_label = "init1";
                options = [ to_01 (Initiator { g = 3; v = "v1" }) ];
              };
              { step_at = dd 0.6; step_label = "sup1"; options = [ to_01 (ia Support "v1") ] };
              { step_at = dd 1.0; step_label = "app1"; options = [ to_01 (ia Approve "v1") ] };
              (* third Ready for node 1's accept quorum *)
              { step_at = dd 1.5; step_label = "rdy1"; options = [ [ (Some 1, ia Ready "v1") ] ] };
              (* the re-initiation menu: stay silent, push a fresh value at
                 the evicted nodes, or retry v1 (which the per-value
                 freshness guard last_gm blocks even without the blackout) *)
              {
                step_at = dd 3.2;
                step_label = "reinit";
                options =
                  [
                    [];
                    to_02 (Initiator { g = 3; v = "v2" });
                    to_02 (Initiator { g = 3; v = "v1" });
                  ];
              };
              { step_at = dd 3.7; step_label = "sup2"; options = [ to_02 (ia Support "v2") ] };
              { step_at = dd 4.0; step_label = "app2"; options = [ to_02 (ia Approve "v2") ] };
              { step_at = dd 4.3; step_label = "rdy2"; options = [ to_02 (ia Ready "v2") ] };
            ];
        };
      ];
    proposals =
      [
        { Scenario.g = 0; v = "p0"; at = dd 0.9 };
        { Scenario.g = 2; v = "p2"; at = dd 1.0 };
      ];
    session_capacity = Some 2;
    blackout;
    horizon = dd 40.0;
    default_delay = dd 0.4;
    lattice = [| dd 0.4; dd 1.2 |];
    lattices = [];
    branch =
      (fun ~src:_ ~dst msg ->
        match msg with
        | Ia { kind = Ready; g = 3; v; _ } -> Some (Fmt.str "R>%d:%s" dst v)
        | Initiator { g = 2; _ } -> Some (Fmt.str "I2>%d" dst)
        | _ -> None);
  }

(* ----- commute probe: two menu options that perform the *same two sends in
   opposite order*, then a second menu step while both messages are still in
   flight. Under partial-order reduction the state fingerprints at the second
   step must coincide (canonical in-flight encoding) and the checker prunes
   one branch; without it the raw insertion order keeps them apart. The
   canonicalization unit tests drive this config directly. *)
let commute_probe () =
  let params = Params.default ~f:1 4 in
  let d = params.Params.d in
  let dd x = x *. d in
  let m0 = Initiator { g = 3; v = "x" } in
  let m1 = Ia { kind = Support; g = 3; v = "x" } in
  {
    name = "commute-probe";
    params;
    byz =
      [
        {
          byz_id = 3;
          steps =
            [
              {
                step_at = dd 1.0;
                step_label = "order";
                options =
                  [ [ (Some 0, m0); (Some 1, m1) ]; [ (Some 1, m1); (Some 0, m0) ] ];
              };
              {
                step_at = dd 1.1;
                step_label = "probe";
                options = [ []; [ (Some 2, m1) ] ];
              };
            ];
        };
      ];
    proposals = [];
    session_capacity = None;
    blackout = true;
    horizon = dd 20.0;
    default_delay = dd 0.4;
    lattice = [| dd 0.4 |];
    lattices = [];
    branch = (fun ~src:_ ~dst:_ _ -> None);
  }

(* ----- knife: the block-R gate boundary, exhaustively (ISSUE 8 / E15).

   No Byzantine sender at all — node 3 is simply silent, so n-f = 3 and the
   three correct nodes 0..2 are exactly the quorum. Node 0 proposes once;
   every delivery class that feeds the I-accept time of a correct node gets
   its own lattice, built so the resulting block-R slack [tau_q - tau_g]
   lands on {3.99d, 4d, 4.01d, 4.55d, 4.95d} at nodes 1 and 2 while node 0
   stays at <= 3.7d and always decides round 0.

   The slack arithmetic (per-class delay sharing makes all arrival times
   common across correct nodes; t0 = the proposal time):
     inv_j    = t0 + I_j            Initiator arrival (class I>j)
     tau_g_j  = inv_j - d           block K2's i_value; L1's refresh
                                    (2nd support arrival - 2d) stays below
     s3       = t0 + 0.9d + DS0     third Support arrival (node 0's, S0)
     a3       = s3 + DA0            third Approve arrival (node 0's, A0)
     tau_q_j  = a3 + DR_j           Ready wave lands, N3/N4 accepts (R>j)
     slack_j  = 0.9d + DS0 + DA0 + DR_j + d - I_j
   At DS0 = DA0 = 0.9d, I_j = 0.05d the R>j lattice maps slack onto the
   probe points above: 0.34d/0.35d/0.36d straddle the 4d gate (the 0.35d
   point lands on the boundary up to one float ulp — either side is a sound
   outcome, and the exact <=-semantics are pinned by unit tests), 1.3d
   probes the 5d gate from 4.95d with a safe margin (exactly 5d would make
   the Widen verdict hang on an ulp).

   Under [Legacy], runs where *both* nodes 1 and 2 exceed 4d strand: block S
   never fires because the only broadcaster is node 0 — the General, whom
   block S excludes — so both abort at the block-U boundary while node 0
   decides alone: the 7404/173 stranded-abort, rediscovered exhaustively.
   Under [Widen] every slack is < 5d and the space must exhaust clean; under
   [Count_general] the stranded nodes count the General's own round-1
   broadcast and decide in round 1 instead. The CLI's knife verdict asserts
   exactly this split. *)
let knife () =
  let params = Params.default ~f:1 4 in
  let d = params.Params.d in
  let dd x = x *. d in
  let edge = [| dd 0.1; dd 0.34; dd 0.35; dd 0.36; dd 0.9; dd 1.3 |] in
  {
    name = "knife";
    params;
    byz = [ { byz_id = 3; steps = [] } ];
    proposals = [ { Scenario.g = 0; v = "a"; at = dd 0.5 } ];
    session_capacity = None;
    blackout = true;
    horizon = dd 32.0;
    default_delay = dd 0.1;
    lattice = [| dd 0.9 |];
    lattices =
      [
        ("I>1", [| dd 0.05; dd 0.9 |]);
        ("I>2", [| dd 0.05; dd 0.9 |]);
        ("S0", [| dd 0.05; dd 0.9 |]);
        ("A0", [| dd 0.1; dd 0.9 |]);
        ("R>0", [| dd 0.1; dd 0.9 |]);
        ("R>1", edge);
        ("R>2", edge);
      ];
    branch =
      (fun ~src ~dst msg ->
        match msg with
        | Initiator { g = 0; _ } -> Some (Fmt.str "I>%d" dst)
        | Ia { kind = Support; g = 0; _ } when src = 0 -> Some "S0"
        | Ia { kind = Approve; g = 0; _ } when src = 0 -> Some "A0"
        | Ia { kind = Ready; g = 0; _ } -> Some (Fmt.str "R>%d" dst)
        | _ -> None);
  }
