(* Bounded-delay authenticated point-to-point network (paper §2, Def. 2).

   Delivery is realized by scheduling closures on the engine. While the
   network is *correct* every send is delivered within the configured delay
   policy and the sender identity is authentic. Scenario code can make the
   network *faulty* (the incoherent period preceding stabilization, or a
   persistently lossy deployment link) by setting a drop probability,
   duplication probability, reordering, partitioning links, or injecting
   forged garbage; experiments then lift the faults and measure convergence.

   Accounting invariant, enforced by the harness on every run:

     attempts = delivered + dropped + in_flight
     where attempts = sent + duplicated

   Every message that enters the network — including forged injections and
   fault-injected duplicate copies — is counted exactly once as sent or
   duplicated, and leaves the in-flight set as exactly one of delivered (a
   handler ran) or dropped (mute/partition/random loss at send time, or no
   handler at delivery time). Counters live in the engine's metrics registry
   so exports see them under the net.* names.

   Determinism: each fault concern (loss, delay, duplication, reordering)
   owns a dedicated RNG stream split off the creation RNG, and [send] draws
   from every stream unconditionally, once per send. Toggling one fault knob
   mid-run therefore never shifts the samples another concern sees, and two
   scenarios that differ only in a fault schedule stay sample-for-sample
   comparable. *)

module Rng = Ssba_sim.Rng
module Engine = Ssba_sim.Engine
module Event_queue = Ssba_sim.Event_queue
module Trace = Ssba_sim.Trace
module Metrics = Ssba_sim.Metrics

type 'a handler = 'a Msg.t -> unit

type reorder = { prob : float; extra : float }

(* A pooled fan-out: one engine batch entry (the sub-event keys live in
   [fan_batch]) plus the arena of envelope records it delivers, one per
   scheduled delivery, parallel to the batch's key slots. Descriptors and
   their envelope slots are recycled through a free stack once the last
   sub-event has fired, so steady-state delivery allocates no new slots
   beyond the peak number of concurrently in-flight broadcasts. *)
type 'a fanout = {
  fan_batch : Event_queue.batch;
  mutable fan_msgs : 'a Msg.t array;
}

type 'a t = {
  engine : Engine.t;
  n : int;
  loss_rng : Rng.t;
  delay_rng : Rng.t;
  dup_rng : Rng.t;
  reorder_rng : Rng.t;
  mutable pool_rng : Rng.t;
      (* drives [scramble_pool] garbage; its own stream so scrambling the
         arena never shifts the samples any fault concern sees *)
  mutable pool : 'a fanout array;  (* free stack of recycled descriptors *)
  mutable pool_top : int;
  c_pool_fanouts : Metrics.counter;  (* descriptors ever allocated *)
  c_pool_slots : Metrics.counter;  (* envelope slots ever allocated *)
  g_pool_in_use : Metrics.gauge;  (* descriptors currently armed *)
  mutable delay : Delay.t;
  mutable handlers : 'a handler option array;
  mutable drop_prob : float;  (* applied only while the network is faulty-capable *)
  mutable dup_prob : float;  (* probability a successful send gets a second copy *)
  mutable reorder : reorder option;
      (* with [prob], stretch a delivery by up to [extra] beyond its drawn
         delay, letting later sends overtake it *)
  mutable blocked : (src:int -> dst:int -> bool) option;  (* partition predicate *)
  muted : (int, unit) Hashtbl.t;  (* crashed senders: sends silently dropped *)
  mutable delay_override : ('a Msg.t -> float option) option;
      (* adversary-chosen delivery delay for selected messages; the paper's
         model lets a faulty sender's messages be arbitrarily late (masked as
         part of the f faults) *)
  kind_of : ('a -> string) option;  (* classifier for per-kind statistics *)
  kind_counters : (string, Metrics.counter) Hashtbl.t;
  mutable last_kind : string;  (* 1-entry cache: kind_of returns literals *)
  mutable last_kind_counter : Metrics.counter;
  c_sent : Metrics.counter;
  c_delivered : Metrics.counter;
  c_dropped : Metrics.counter;
  c_duplicated : Metrics.counter;
  c_reordered : Metrics.counter;
  g_in_flight : Metrics.gauge;
  mutable in_flight : int;
}

let create ?(drop_prob = 0.0) ?(dup_prob = 0.0) ?reorder ?kind_of ~engine ~n
    ~delay ~rng () =
  if n <= 0 then invalid_arg "Network.create: n must be positive";
  let metrics = Engine.metrics engine in
  let t = {
    engine;
    n;
    (* The four fault streams split inside the record literal, exactly as
       they always have: their split order is pinned by every corpus digest.
       [pool_rng] is initialised to the parent and re-split strictly after
       the record is built, so adding the arena stream moved no existing
       stream. *)
    loss_rng = Rng.split rng;
    delay_rng = Rng.split rng;
    dup_rng = Rng.split rng;
    reorder_rng = Rng.split rng;
    pool_rng = rng;
    pool = [||];
    pool_top = 0;
    c_pool_fanouts = Metrics.counter metrics "net.pool.fanouts";
    c_pool_slots = Metrics.counter metrics "net.pool.slots";
    g_pool_in_use = Metrics.gauge metrics "net.pool.in_use";
    delay;
    handlers = Array.make n None;
    drop_prob;
    dup_prob;
    reorder;
    blocked = None;
    muted = Hashtbl.create 4;
    delay_override = None;
    kind_of;
    kind_counters = Hashtbl.create 16;
    (* A runtime-built string: never physically equal to a classifier kind. *)
    last_kind = String.concat "-" [ "no"; "kind" ];
    last_kind_counter = Metrics.counter metrics "net.sent";
    c_sent = Metrics.counter metrics "net.sent";
    c_delivered = Metrics.counter metrics "net.delivered";
    c_dropped = Metrics.counter metrics "net.dropped";
    c_duplicated = Metrics.counter metrics "net.duplicated";
    c_reordered = Metrics.counter metrics "net.reordered";
    g_in_flight = Metrics.gauge metrics "net.in_flight";
    in_flight = 0;
  }
  in
  t.pool_rng <- Rng.split rng;
  t

let size t = t.n
let set_handler t node h = t.handlers.(node) <- Some h
let clear_handler t node = t.handlers.(node) <- None
let set_delay t delay = t.delay <- delay
let set_drop_prob t p = t.drop_prob <- p
let drop_prob t = t.drop_prob
let set_dup_prob t p = t.dup_prob <- p
let dup_prob t = t.dup_prob
let set_reorder t r = t.reorder <- r
let set_partition t pred = t.blocked <- pred

let set_muted t node muted =
  if muted then Hashtbl.replace t.muted node () else Hashtbl.remove t.muted node

let is_muted t node = Hashtbl.mem t.muted node
let set_delay_override t f = t.delay_override <- f

let messages_sent t = Metrics.value t.c_sent
let messages_delivered t = Metrics.value t.c_delivered
let messages_dropped t = Metrics.value t.c_dropped
let messages_duplicated t = Metrics.value t.c_duplicated
let messages_reordered t = Metrics.value t.c_reordered
let messages_attempted t = messages_sent t + messages_duplicated t
let messages_in_flight t = t.in_flight

(* Derived from the per-kind metrics counters (same increments as the old
   dedicated table); zero-count kinds are omitted so counter registrations
   surviving a [reset_counters] don't show up as phantom entries. *)
let sent_by_kind t =
  Hashtbl.fold
    (fun k c acc ->
      let v = Metrics.value c in
      if v > 0 then (k, v) :: acc else acc)
    t.kind_counters []
  |> List.sort compare

let reset_counters t =
  (* Counters are monotonic within a run; resetting between scenario reuses
     also discounts whatever is still in flight so the conservation invariant
     restarts clean. Only the network's own metrics are zeroed — the registry
     is shared with the engine and nodes. *)
  Metrics.reset_counter t.c_sent;
  Metrics.reset_counter t.c_delivered;
  Metrics.reset_counter t.c_dropped;
  Metrics.reset_counter t.c_duplicated;
  Metrics.reset_counter t.c_reordered;
  Metrics.reset_gauge t.g_in_flight;
  Hashtbl.iter (fun _ c -> Metrics.reset_counter c) t.kind_counters;
  t.in_flight <- 0

let kind_of_payload t payload =
  match t.kind_of with None -> None | Some f -> Some (f payload)

(* One hash lookup per kind *change*, not per send: classifiers return
   string literals, so consecutive sends of the same kind hit the physical-
   equality cache (a miss merely falls back to the table — correctness never
   depends on sharing). *)
let count_kind t kind =
  let c =
    if kind == t.last_kind then t.last_kind_counter
    else begin
      let c =
        match Hashtbl.find_opt t.kind_counters kind with
        | Some c -> c
        | None ->
            let c =
              Metrics.counter (Engine.metrics t.engine) ("net.sent." ^ kind)
            in
            Hashtbl.replace t.kind_counters kind c;
            c
      in
      t.last_kind <- kind;
      t.last_kind_counter <- c;
      c
    end
  in
  Metrics.incr c

let count_sent t payload =
  Metrics.incr t.c_sent;
  match t.kind_of with None -> () | Some f -> count_kind t (f payload)

let trace_msg t payload =
  (* Only rendered when a trace record is actually built (enabled traces). *)
  match kind_of_payload t payload with None -> "?" | Some k -> k

let count_dropped t ~src ~dst ~reason payload =
  Metrics.incr t.c_dropped;
  let tr = Engine.trace t.engine in
  if Trace.is_enabled tr then
    Engine.record t.engine ~node:(-1)
      (Trace.Drop { src; dst; msg = trace_msg t payload; reason })

let deliver t (m : 'a Msg.t) =
  t.in_flight <- t.in_flight - 1;
  Metrics.add t.g_in_flight (-1.0);
  match t.handlers.(m.Msg.dst) with
  | None ->
      (* A destination without a handler (a skipped slot, a slot whose handler
         was cleared) consumes the message: it must leave the in-flight set as
         a drop or the conservation invariant cannot be stated. *)
      count_dropped t ~src:m.Msg.src ~dst:m.Msg.dst ~reason:"no-handler"
        m.Msg.payload
  | Some h ->
      Metrics.incr t.c_delivered;
      let tr = Engine.trace t.engine in
      if Trace.is_enabled tr then
        Engine.record t.engine ~node:m.Msg.dst
          (Trace.Deliver
             { src = m.Msg.src; dst = m.Msg.dst; msg = trace_msg t m.Msg.payload });
      h m

(* ---- the fan-out pool (delivery arena) ---------------------------------- *)

let release_fanout t fo =
  let b = fo.fan_batch in
  b.Event_queue.b_count <- 0;
  b.Event_queue.b_next <- 0;
  if t.pool_top = Array.length t.pool then begin
    let cap = max 8 (2 * Array.length t.pool) in
    (* [fo] as filler: slots beyond [pool_top] are never read before being
       overwritten by a later release. *)
    let fresh = Array.make cap fo in
    Array.blit t.pool 0 fresh 0 t.pool_top;
    t.pool <- fresh
  end;
  t.pool.(t.pool_top) <- fo;
  t.pool_top <- t.pool_top + 1;
  Metrics.add t.g_pool_in_use (-1.0)

(* Sub-event [j] of a batch pops: deliver its envelope, and recycle the
   descriptor once the last sub-event has fired. Release happens after the
   handler returns, so the envelope stays valid for the duration of the
   call; re-entrant sends from inside the handler acquire other
   descriptors. *)
let fire_fanout t fo j =
  let b = fo.fan_batch in
  deliver t fo.fan_msgs.(j);
  if b.Event_queue.b_next >= b.Event_queue.b_count then release_fanout t fo

let new_fanout t =
  Metrics.incr t.c_pool_fanouts;
  let fo =
    {
      fan_batch = Event_queue.make_batch ~capacity:(2 * t.n) ();
      fan_msgs = [||];
    }
  in
  fo.fan_batch.Event_queue.b_fire <- (fun j -> fire_fanout t fo j);
  fo

let acquire_fanout t =
  Metrics.add t.g_pool_in_use 1.0;
  if t.pool_top > 0 then begin
    t.pool_top <- t.pool_top - 1;
    t.pool.(t.pool_top)
  end
  else new_fanout t

(* Fill envelope slot [i], growing the key arrays and the envelope arena in
   lockstep. New arena slots are distinct records allocated once and counted
   in [net.pool.slots]; after warm-up this is pure mutation. *)
let slot_msg t fo i ~src ~dst ~sent_at ~forged payload =
  let b = fo.fan_batch in
  Event_queue.ensure_batch_capacity b (i + 1);
  let cap = Event_queue.batch_capacity b in
  let olen = Array.length fo.fan_msgs in
  if olen < cap then begin
    Metrics.incr ~by:(cap - olen) t.c_pool_slots;
    fo.fan_msgs <-
      Array.init cap (fun k ->
          if k < olen then fo.fan_msgs.(k)
          else Msg.make ~src ~dst ~sent_at payload)
  end;
  let m = fo.fan_msgs.(i) in
  Msg.set m ~src ~dst ~sent_at ~forged payload;
  m

(* Arm slot [i]: record its delivery time and reserve its tie-break seq — in
   the very order the per-entry scheme called [Engine.schedule], which is
   what keeps batched runs bit-identical to the old per-send scheme. *)
let arm_slot t fo i ~at =
  let b = fo.fan_batch in
  b.Event_queue.b_ats.(i) <- at;
  b.Event_queue.b_seqs.(i) <- Engine.next_seq t.engine;
  t.in_flight <- t.in_flight + 1;
  Metrics.add t.g_in_flight 1.0

(* Sort the armed prefix by (at, seq) and hand the descriptor to the engine
   as ONE heap entry. Slots were armed in ascending seq order, so this is a
   stable insertion sort on the delivery times — counts are small (<= 2n)
   and the arrays are the descriptor's own, so nothing allocates. *)
let finish_fanout t fo count =
  if count = 0 then release_fanout t fo
  else begin
    let b = fo.fan_batch in
    let ats = b.Event_queue.b_ats
    and seqs = b.Event_queue.b_seqs
    and msgs = fo.fan_msgs in
    for i = 1 to count - 1 do
      let at = ats.(i) and seq = seqs.(i) and m = msgs.(i) in
      let j = ref i in
      while
        !j > 0
        && (ats.(!j - 1) > at || (ats.(!j - 1) = at && seqs.(!j - 1) > seq))
      do
        ats.(!j) <- ats.(!j - 1);
        seqs.(!j) <- seqs.(!j - 1);
        msgs.(!j) <- msgs.(!j - 1);
        decr j
      done;
      ats.(!j) <- at;
      seqs.(!j) <- seq;
      msgs.(!j) <- m
    done;
    b.Event_queue.b_count <- count;
    b.Event_queue.b_next <- 0;
    Engine.schedule_batch t.engine b
  end

(* ---- sending ------------------------------------------------------------ *)

(* One send per destination in [first, last], batched into a single pooled
   fan-out descriptor. The per-destination draw schedule, fault gauntlet,
   counter updates and seq reservations replicate the per-entry scheme
   sample-for-sample: one sample per concern per send, from that concern's
   own stream, whether or not the fault is active — including the delay
   sample, which is drawn even for messages that end up muted, partitioned
   or lost. Toggling any one fault therefore never shifts the samples
   another concern (or a surviving message) observes. *)
let send_range t ~src ~first ~last payload =
  let fo = acquire_fanout t in
  let tr = Engine.trace t.engine in
  let now = Engine.now t.engine in
  let count = ref 0 in
  for dst = first to last do
    count_sent t payload;
    if Trace.is_enabled tr then
      Engine.record t.engine ~node:src
        (Trace.Send { src; dst; msg = trace_msg t payload });
    let loss_roll = Rng.float t.loss_rng 1.0 in
    let dup_roll = Rng.float t.dup_rng 1.0 in
    let reorder_roll = Rng.float t.reorder_rng 1.0 in
    let reorder_frac = Rng.float t.reorder_rng 1.0 in
    let drawn_delay = Delay.draw t.delay ~rng:t.delay_rng ~src ~dst ~now in
    let muted = Hashtbl.mem t.muted src in
    let blocked =
      (not muted)
      && (match t.blocked with None -> false | Some pred -> pred ~src ~dst)
    in
    let lost = (not muted) && (not blocked) && loss_roll < t.drop_prob in
    if muted then count_dropped t ~src ~dst ~reason:"muted" payload
    else if blocked then count_dropped t ~src ~dst ~reason:"partition" payload
    else if lost then count_dropped t ~src ~dst ~reason:"loss" payload
    else begin
      let m = slot_msg t fo !count ~src ~dst ~sent_at:now ~forged:false payload in
      let extra =
        match t.reorder with
        | Some { prob; extra } when reorder_roll < prob && extra > 0.0 ->
            Metrics.incr t.c_reordered;
            reorder_frac *. extra
        | _ -> 0.0
      in
      let delay =
        match t.delay_override with
        | Some f -> ( match f m with Some delay -> delay | None -> drawn_delay)
        | None -> drawn_delay
      in
      let d = delay +. extra in
      if d < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
      arm_slot t fo !count ~at:(now +. d);
      incr count;
      if dup_roll < t.dup_prob then begin
        (* A duplicated copy enters the accounting as [duplicated] (not sent)
           and then flows through delivery/drop like any message, so the
           generalized conservation identity keeps holding. Its delay is
           drawn from the dup stream: duplication must not consume delay
           samples. The copy gets its own arena slot carrying the same
           envelope fields. *)
        Metrics.incr t.c_duplicated;
        if Trace.is_enabled tr then
          Engine.record t.engine ~node:src
            (Trace.Duplicate { src; dst; msg = trace_msg t payload });
        let dup_delay = Delay.draw t.delay ~rng:t.dup_rng ~src ~dst ~now in
        let d2 = dup_delay +. extra in
        if d2 < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
        ignore
          (slot_msg t fo !count ~src ~dst ~sent_at:now ~forged:false payload);
        arm_slot t fo !count ~at:(now +. d2);
        incr count
      end
    end
  done;
  finish_fanout t fo !count

let send t ~src ~dst payload =
  if dst < 0 || dst >= t.n then invalid_arg "Network.send: bad destination";
  send_range t ~src ~first:dst ~last:dst payload

let broadcast t ~src payload = send_range t ~src ~first:0 ~last:(t.n - 1) payload

(* Incoherent-period garbage: deliver a message claiming to come from
   [claimed_src] after [delay]. Used by the transient-fault injector only.
   Forged messages enter the accounting like any other send, so the
   conservation invariant keeps holding during scrambles. The forged path
   draws no fault samples: injection is itself adversary-scheduled. *)
let inject_forged t ~claimed_src ~dst ~delay payload =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  count_sent t payload;
  let now = Engine.now t.engine in
  let fo = acquire_fanout t in
  ignore (slot_msg t fo 0 ~src:claimed_src ~dst ~sent_at:now ~forged:true payload);
  arm_slot t fo 0 ~at:(now +. delay);
  finish_fanout t fo 1

(* ---- arena scrambling (transient-fault injection) ----------------------- *)

(* Corrupt the payloads (and headers) of every FREE descriptor's envelope
   slots — the Session_table safety pattern: a transient fault may trash
   values, never the pool's capacity or occupancy. Free slots are fully
   overwritten on acquire, so this is semantically invisible to subsequent
   deliveries; the test suite pins both properties. Draws come from the
   arena's own stream, so scrambling never shifts a fault-concern sample. *)
let scramble_pool t ~payload =
  let rng = t.pool_rng in
  for k = 0 to t.pool_top - 1 do
    let fo = t.pool.(k) in
    for i = 0 to Array.length fo.fan_msgs - 1 do
      Msg.set fo.fan_msgs.(i)
        ~src:(Rng.int rng (max 1 t.n))
        ~dst:(Rng.int rng (max 1 t.n))
        ~sent_at:(Rng.float rng 1.0e9)
        ~forged:(Rng.bool rng) (payload rng)
    done
  done

let pool_fanouts_allocated t = Metrics.value t.c_pool_fanouts
let pool_slots_allocated t = Metrics.value t.c_pool_slots
let pool_free t = t.pool_top

let link t =
  {
    Link.n = t.n;
    send = (fun ~src ~dst payload -> send t ~src ~dst payload);
    broadcast = (fun ~src payload -> broadcast t ~src payload);
    set_handler = (fun node h -> set_handler t node h);
    clear_handler = (fun node -> clear_handler t node);
  }
