(* The round-stretcher attack (experiment E6): force Theta(f') termination.

   The paper claims agreement is reached within O(f') communication rounds,
   where f' <= f is the number of *actual* concurrent faults. This module
   realizes the matching adversary: with f' colluders (the General plus
   f' - 1 helpers) it delays termination to ~ (2 f' + 5) Phi, capped by block
   U's Delta_agr deadline. The attack has two stages, both derived from the
   quorum arithmetic of Figures 1-3 (n - f strong and n - 2f weak
   thresholds):

   1. IA-stretch — block the R fast path at every correct node by making the
      I-accept land more than 4d after the anchor:
      - the General invites only n - f - f' correct nodes, so the support
        quorum (n - f within a 2d window) completes only when the colluders'
        supports arrive, which they delay by almost 2d and send only to a
        subset F1 of n - f - f' correct nodes;
      - only F1 can pass L3, so the approve quorum (n - f within 3d) in turn
        completes only with the colluders' approves, delayed by almost 3d and
        sent only to F2 (|F2| = n - f - f');
      - the ready stage cannot be starved (block N's untimed n - 2f
        amplification is designed to defeat exactly that), so the I-accept
        happens everywhere ~ t0 + 5d with anchors >= t0 - 2d: the R-window
        tau - tau_g <= 4d fails at every correct node.

   2. Broadcaster drip — with R blocked, correct nodes sit in blocks S/T.
      Block T aborts at boundary (2r+1) Phi unless r - 1 broadcasters are
      known. The colluders stage exactly one new broadcaster per round —
      *without* ever letting a broadcast be accepted (an accepted round-1
      broadcast would let S decide immediately):
      - colluder b_j sends (init, b_j, v, j) to only n - 2f - f' correct
        nodes (group A);
      - every colluder tops up A's echoes towards a group F3 of exactly
        n - 2f correct nodes; F3 reaches the n - 2f echo threshold and sends
        init', every correct node then sees n - 2f init' and records b_j as a
        broadcaster (block Y1);
      - but the n - f thresholds for X-accept (echoes) and echo' (init') are
        out of reach: n - 2f + f' < n - f for f' < f, and for f' = f the
        colluders simply send no init'. No (p, v, k) is ever accepted, so S
        never fires.
      The first T boundary with more than f' - 1 required broadcasters is
      r = f' + 2, so every correct node aborts at
      tau_g + (2 f' + 5) Phi — linear in f', capped by U at (2f + 1) Phi.

   The choreography is expressed in absolute simulator time, so the scenario
   must use (near-)perfect clocks and a fixed small network delay; the E6
   runner sets both up. *)

open Ssba_core.Types
module Params = Ssba_core.Params
module Network = Ssba_net.Network
module Engine = Ssba_sim.Engine

type t = {
  engine : Engine.t;
  net : message Network.t;
  params : Params.t;
  colluders : node_id list;  (* head acts as the General *)
  correct : node_id list;
  v : value;
  t0 : float;
  eps : float;  (* the scenario's fixed network delay *)
  complete_round : bool;
      (* decide variant: the last colluder also performs an honest round-1
         broadcast (init to all, in time for the X accept), so block S
         decides the Byzantine value at round 1 instead of T/U aborting —
         still unanimously, which the tests assert *)
}

let make ?(complete_round = false) ~engine ~net ~params ~colluders ~v ~t0 ~eps () =
  (match colluders with
  | [] -> invalid_arg "Round_stretcher.make: need at least the faulty General"
  | _ -> ());
  if List.length colluders > params.Params.f then
    invalid_arg "Round_stretcher.make: more colluders than the fault budget";
  let correct =
    List.filter
      (fun i -> not (List.mem i colluders))
      (List.init params.Params.n (fun i -> i))
  in
  { engine; net; params; colluders; correct; v; t0; eps; complete_round }

let take k l =
  let rec go acc k = function
    | [] -> List.rev acc
    | _ when k = 0 -> List.rev acc
    | x :: tl -> go (x :: acc) (k - 1) tl
  in
  if k < 0 then [] else go [] k l

let send t ~src ~dst payload = Network.send t.net ~src ~dst payload

let send_group t ~src ~dsts payload =
  List.iter (fun dst -> send t ~src ~dst payload) dsts

let at t time f = Engine.schedule t.engine ~at:time f

(* Expected number of T-boundary rounds the drip survives, and the local-time
   abort bound, for assertions in tests and experiment tables. *)
let expected_abort_phase t =
  min ((2 * List.length t.colluders) + 5) ((2 * t.params.Params.f) + 1)

(* In the decide variant block S fires at round 1, within deadline 3 Phi. *)
let expected_decide_phase _t = 3

let launch t =
  let p = t.params in
  let d = p.Params.d in
  let phi = p.Params.phi in
  let fprime = List.length t.colluders in
  let g = List.hd t.colluders in
  let n_inv = (p.Params.n - p.Params.f) - fprime in
  let invited = take n_inv t.correct in
  let f1 = invited and f2 = invited in
  let f3 = take (Params.weak_quorum p) t.correct in
  let group_a = take (Params.weak_quorum p - fprime) t.correct in
  (* Stage 1: IA-stretch. *)
  at t t.t0 (fun () ->
      send_group t ~src:g ~dsts:invited (Initiator { g; v = t.v }));
  let t_sup = t.t0 +. (2.0 *. d) -. (4.0 *. t.eps) in
  at t t_sup (fun () ->
      List.iter
        (fun c -> send_group t ~src:c ~dsts:f1 (Ia { kind = Support; g; v = t.v }))
        t.colluders);
  (* F1's approves go out once the colluder supports land, ~ t_sup + eps. *)
  let t_app = t_sup +. t.eps +. (3.0 *. d) -. (4.0 *. t.eps) in
  at t t_app (fun () ->
      List.iter
        (fun c -> send_group t ~src:c ~dsts:f2 (Ia { kind = Approve; g; v = t.v }))
        t.colluders);
  (* Stage 2: broadcaster drip, one colluder per round j = 1..f'. Anchors sit
     in [t0 - 2d, t0 - d + eps]; scheduling against the earliest keeps every
     arrival inside all correct nodes' W/X/Y deadlines. *)
  let anchor_est = t.t0 -. (2.0 *. d) in
  List.iteri
    (fun idx b ->
      let j = idx + 1 in
      let t_init = anchor_est +. (float_of_int (2 * j) *. phi) -. (2.0 *. d) in
      at t t_init (fun () ->
          send_group t ~src:b ~dsts:group_a (Mb { kind = Init; p = b; g; v = t.v; k = j }));
      at t (t_init +. t.eps) (fun () ->
          List.iter
            (fun c ->
              send_group t ~src:c ~dsts:f3 (Mb { kind = Echo; p = b; g; v = t.v; k = j }))
            t.colluders))
    t.colluders;
  (* Decide variant: an honest round-1 broadcast by the last colluder,
     delivered to everyone well before the W deadline (anchor + 2 Phi), so
     every correct node echoes, the echo quorum completes an X accept within
     the S(1) deadline and block S decides the Byzantine value at round 1. *)
  if t.complete_round then begin
    let b = List.nth t.colluders (List.length t.colluders - 1) in
    let t_init = anchor_est +. (2.0 *. phi) -. (6.0 *. d) in
    at t t_init (fun () ->
        Network.broadcast t.net ~src:b (Mb { kind = Init; p = b; g; v = t.v; k = 1 }))
  end
