(* Tests for the node glue: General-side Sending Validity Criteria
   (IG1/IG2/IG3), message dispatch, returns plumbing. *)

open Helpers
open Ssba_core
module Engine = Ssba_sim.Engine

let test_propose_ok () =
  let c = Cluster.make ~n:7 () in
  Engine.schedule c.Cluster.engine ~at:0.05 (fun () ->
      check_bool "first proposal accepted" true
        (Node.propose (Cluster.node c 0) "v" = Ok ()));
  Cluster.run c

let test_ig1_spacing () =
  let c = Cluster.make ~n:7 () in
  let params = c.Cluster.params in
  Engine.schedule c.Cluster.engine ~at:0.05 (fun () ->
      ignore (Node.propose (Cluster.node c 0) "v1"));
  (* a second initiation within Delta_0 must be refused (any value);
     [Busy] may fire first if the previous instance is still live *)
  Engine.schedule c.Cluster.engine
    ~at:(0.05 +. (0.5 *. params.Params.delta_0))
    (fun () ->
      match Node.propose (Cluster.node c 0) "v2" with
      | Error (Node.Too_soon | Node.Busy) -> ()
      | Error e -> Alcotest.failf "unexpected: %s" (Node.string_of_propose_error e)
      | Ok () -> Alcotest.fail "IG1 violated: proposal accepted too soon");
  (* but beyond Delta_0 a different value is fine *)
  Engine.schedule c.Cluster.engine
    ~at:(0.05 +. (2.0 *. params.Params.delta_0))
    (fun () ->
      check_bool "after Delta_0 a new value is accepted" true
        (Node.propose (Cluster.node c 0) "v2" = Ok ()));
  Cluster.run c

let test_ig2_same_value_spacing () =
  let c = Cluster.make ~n:7 () in
  let params = c.Cluster.params in
  Engine.schedule c.Cluster.engine ~at:0.05 (fun () ->
      ignore (Node.propose (Cluster.node c 0) "v"));
  (* same value beyond Delta_0 but within Delta_v: refused with IG2 *)
  Engine.schedule c.Cluster.engine
    ~at:(0.05 +. (2.0 *. params.Params.delta_0))
    (fun () ->
      match Node.propose (Cluster.node c 0) "v" with
      | Error Node.Value_too_soon -> ()
      | Error e -> Alcotest.failf "unexpected: %s" (Node.string_of_propose_error e)
      | Ok () -> Alcotest.fail "IG2 violated");
  (* beyond Delta_v the same value is fine again *)
  Engine.schedule c.Cluster.engine
    ~at:(0.05 +. params.Params.delta_v +. params.Params.delta_0)
    (fun () ->
      check_bool "after Delta_v same value accepted" true
        (Node.propose (Cluster.node c 0) "v" = Ok ()));
  Cluster.run ~until:3.0 c

let test_ig3_failure_blocks () =
  (* crash everyone else: the General's own invocation cannot complete
     L4/M4/N4, so the IG3 watchdog must impose the Delta_reset quiet time *)
  let c = Cluster.make ~n:7 ~skip:[ 1; 2; 3; 4; 5; 6 ] () in
  let params = c.Cluster.params in
  Engine.schedule c.Cluster.engine ~at:0.05 (fun () ->
      ignore (Node.propose (Cluster.node c 0) "v"));
  Engine.schedule c.Cluster.engine
    ~at:(0.05 +. (2.0 *. params.Params.delta_0))
    (fun () ->
      match Node.propose (Cluster.node c 0) "v2" with
      | Error Node.Blocked -> ()
      | Error e -> Alcotest.failf "unexpected: %s" (Node.string_of_propose_error e)
      | Ok () -> Alcotest.fail "IG3 violated: proposal accepted after a failed invocation");
  Cluster.run c

let test_ig3_success_does_not_block () =
  let c = Cluster.make ~n:7 () in
  let params = c.Cluster.params in
  Engine.schedule c.Cluster.engine ~at:0.05 (fun () ->
      ignore (Node.propose (Cluster.node c 0) "v"));
  Engine.schedule c.Cluster.engine
    ~at:(0.05 +. (2.0 *. params.Params.delta_0))
    (fun () ->
      check_bool "healthy General not blocked" true
        (Node.propose (Cluster.node c 0) "v2" = Ok ()));
  Cluster.run c

let test_returns_and_subscribe () =
  let c = Cluster.make ~n:7 () in
  let seen = ref 0 in
  Node.subscribe (Cluster.node c 3) (fun _ -> incr seen);
  Engine.schedule c.Cluster.engine ~at:0.05 (fun () ->
      ignore (Node.propose (Cluster.node c 0) "v"));
  Cluster.run c;
  check_int "subscriber fired once" 1 !seen;
  check_int "returns recorded" 1 (List.length (Node.returns (Cluster.node c 3)))

let test_out_of_range_general_ignored () =
  let c = Cluster.make ~n:4 () in
  (* inject garbage claiming a General outside [0, n): must be dropped *)
  Ssba_net.Network.inject_forged c.Cluster.net ~claimed_src:0 ~dst:1 ~delay:0.01
    (Types.Initiator { g = 99; v = "x" });
  Ssba_net.Network.inject_forged c.Cluster.net ~claimed_src:0 ~dst:1 ~delay:0.01
    (Types.Ia { kind = Types.Support; g = -1; v = "x" });
  Cluster.run c;
  check_int "no returns from garbage" 0 (List.length (Cluster.returns c))

let test_initiator_requires_authentic_general () =
  let c = Cluster.make ~n:7 ~skip:[ 6 ] () in
  (* node 6 (Byzantine) claims to be General 2: the Initiator payload says
     g = 2 but the network stamps src = 6, so nodes must not invoke *)
  Engine.schedule c.Cluster.engine ~at:0.05 (fun () ->
      Ssba_net.Network.broadcast c.Cluster.net ~src:6
        (Types.Initiator { g = 2; v = "forged" }));
  Cluster.run c;
  check_int "forged initiation ignored" 0 (List.length (Cluster.returns c))

let test_local_time_follows_clock () =
  let c = Cluster.make ~n:4 ~clock:`Perfect () in
  Engine.schedule c.Cluster.engine ~at:0.25 (fun () ->
      check_float "local = real for perfect clocks" 0.25
        (Node.local_time (Cluster.node c 0)));
  Cluster.run c

let suite =
  [
    case "propose ok" test_propose_ok;
    case "IG1 spacing" test_ig1_spacing;
    case "IG2 same-value spacing" test_ig2_same_value_spacing;
    case "IG3 failure blocks" test_ig3_failure_blocks;
    case "IG3 success does not block" test_ig3_success_does_not_block;
    case "returns + subscribe" test_returns_and_subscribe;
    case "out-of-range General ignored" test_out_of_range_general_ignored;
    case "Initiator authenticated" test_initiator_requires_authentic_general;
    case "local time follows clock" test_local_time_follows_clock;
  ]

let test_busy_while_running () =
  (* while the General's own instance is mid-agreement a second proposal is
     refused with Busy, even on a slow network where Delta_0 has not passed *)
  let c = Cluster.make ~n:7 ~delay:(`Fixed 0.00099) () in
  Engine.schedule c.Cluster.engine ~at:0.05 (fun () ->
      ignore (Node.propose (Cluster.node c 0) "v"));
  (* 1 ms in: the agreement is still in flight (decision needs ~4 ms) *)
  Engine.schedule c.Cluster.engine ~at:0.051 (fun () ->
      match Node.propose (Cluster.node c 0) "w" with
      | Error (Node.Busy | Node.Too_soon) -> ()
      | Error e -> Alcotest.failf "unexpected: %s" (Node.string_of_propose_error e)
      | Ok () -> Alcotest.fail "proposal accepted while running")
  ;
  Cluster.run c

let suite = suite @ [ case "Busy while running" test_busy_while_running ]
