(* Shared protocol types.

   A [message] is everything a node may put on the wire. The three layers of
   the protocol each have their own constructors:
   - [Initiator]: the General's initiation (ss-Byz-Agree block Q0);
   - [Ia]: the support/approve/ready messages of Initiator-Accept (Fig. 2);
   - [Mb]: the init/echo/init'/echo' messages of msgd-broadcast (Fig. 3),
     carrying the broadcaster [p], the agreement instance [g] they belong to,
     the broadcast value and the round tag [k].

   The sender identity is carried by the network envelope (authenticated),
   never inside the payload. *)

type node_id = int
type general = node_id
type value = string

type ia_kind = Support | Approve | Ready

type mb_kind = Init | Echo | Init2 | Echo2
(* Init2/Echo2 are the paper's primed init'/echo'. *)

type message =
  | Initiator of { g : general; v : value }
  | Ia of { kind : ia_kind; g : general; v : value }
  | Mb of { kind : mb_kind; p : node_id; g : general; v : value; k : int }

type outcome = Decided of value | Aborted

(* What a node reports when an agreement instance stops (Definition 7):
   it decides (returns a value) or aborts (returns bot). [tau_g] and
   [tau_ret] are local-clock readings; [rt_ret] is the simulator real time of
   the return, recorded for the harness's rt(tau)-based property checks. *)
type return_info = {
  node : node_id;
  g : general;
  outcome : outcome;
  tau_g : float;
  tau_ret : float;
  rt_ret : float;
}

let string_of_ia_kind = function
  | Support -> "support"
  | Approve -> "approve"
  | Ready -> "ready"

let string_of_mb_kind = function
  | Init -> "init"
  | Echo -> "echo"
  | Init2 -> "init'"
  | Echo2 -> "echo'"

(* Coarse classifier for per-kind network statistics. *)
let kind_of_message = function
  | Initiator _ -> "initiator"
  | Ia { kind; _ } -> string_of_ia_kind kind
  | Mb { kind; _ } -> string_of_mb_kind kind

let pp_message ppf = function
  | Initiator { g; v } -> Fmt.pf ppf "(initiator G=%d %S)" g v
  | Ia { kind; g; v } -> Fmt.pf ppf "(%s G=%d %S)" (string_of_ia_kind kind) g v
  | Mb { kind; p; g; v; k } ->
      Fmt.pf ppf "(%s p=%d G=%d %S k=%d)" (string_of_mb_kind kind) p g v k

let pp_outcome ppf = function
  | Decided v -> Fmt.pf ppf "decided %S" v
  | Aborted -> Fmt.pf ppf "aborted"

let pp_return ppf r =
  Fmt.pf ppf "node=%d G=%d %a tauG=%.6f tau=%.6f rt=%.6f" r.node r.g pp_outcome
    r.outcome r.tau_g r.tau_ret r.rt_ret

let equal_outcome a b =
  match (a, b) with
  | Decided x, Decided y -> String.equal x y
  | Aborted, Aborted -> true
  | Decided _, Aborted | Aborted, Decided _ -> false

(* Execution context handed to the protocol state machines by the node glue.
   Keeping I/O behind these four callbacks makes every layer unit-testable
   with a fake context. Times are local-clock readings; [after_local]
   schedules a wake-up a local-time duration ahead. [trace] takes a typed
   event; implementations must not render it unless tracing is enabled. *)
type ctx = {
  params : Params.t;
  self : node_id;
  local_time : unit -> float;
  send_all : message -> unit;
  after_local : float -> (unit -> unit) -> unit;
  trace : Ssba_sim.Trace.event -> unit;
}
