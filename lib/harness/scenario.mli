(** Declarative scenario descriptions.

    A scenario is a recipe for one simulation: protocol constants, clock and
    delay models, the Byzantine cast, the proposals correct Generals make and
    a schedule of environment events. {!Runner.run} interprets it
    deterministically from the seed. *)

open Ssba_core.Types

type role = Correct | Byzantine of Ssba_adversary.Behavior.t

type event =
  | Crash of { node : node_id; at : float }
      (** mute the node's sends from real time [at] *)
  | Recover of { node : node_id; at : float }
  | Scramble of { at : float; values : value list; net_garbage : int }
      (** transient fault: corrupt all correct-node protocol state (and the
          transport's state when one runs) and put [net_garbage] forged
          messages in flight, drawn over [values] *)
  | Drop_prob of { at : float; p : float }
      (** transient loss (incoherent period); lifted by [Heal]/[Heal_drop] *)
  | Partition of { at : float; blocked : node_id list * node_id list }
      (** block messages between the two groups *)
  | Heal of { at : float }
      (** heal-all (back-compat): lift the partition {e and} the transient
          drop. Persistent faults ([Loss]/[Duplicate]/[Reorder]) are
          unaffected. *)
  | Heal_partition of { at : float }  (** lift only the partition *)
  | Heal_drop of { at : float }  (** lift only the transient drop *)
  | Loss of { at : float; p : float }
      (** persistent link loss; composes with [Drop_prob]
          (effective p = [1 - (1-transient)(1-persistent)]), survives [Heal],
          and only another [Loss] event changes it *)
  | Duplicate of { at : float; p : float }  (** persistent duplication *)
  | Reorder of { at : float; prob : float; extra : float }
      (** persistent reordering: with [prob], stretch a delivery by a uniform
          extra delay in [\[0, extra\]] *)
  | Delay_surge of { at : float; factor : float }
      (** scale every delivery delay by [factor]; factor > 1 pushes
          deliveries beyond [delta], violating the bounded-delay model of
          §2 Def. 2 until [Delay_restore] *)
  | Delay_restore of { at : float }
      (** reinstall the scenario's base delay policy *)
  | Reform of { node : node_id; at : float }
      (** a Byzantine node starts running the correct protocol from
          arbitrary state — the classic self-stabilizing rejoin. A no-op on
          nodes that are already correct (or already reformed); the node
          counts as correct for guarantees anchored [Delta_stb] after [at] *)

type proposal = { g : node_id; v : value; at : float }
(** A correct General [g] proposes [v] at real time [at]. *)

type clocks =
  | Perfect  (** all clocks read real time *)
  | Drifting of { rho : float; max_offset : float }
      (** per-node random rate in [1 ± rho] and offset in [± max_offset] *)

type t = {
  name : string;
  params : Ssba_core.Params.t;
  seed : int;
  delay : Ssba_net.Delay.t;
  clocks : clocks;
  roles : (node_id * role) list;  (** unlisted ids default to [Correct] *)
  proposals : proposal list;
  events : event list;
  horizon : float;  (** stop the engine at this real time *)
  channels : int;
      (** concurrent-invocation channels per General (paper footnote 9):
          logical General ids range over [0, n * channels); the node hosting
          logical id [g] is [g mod n] *)
  record_trace : bool;
  record_observations : bool;
      (** collect fine-grained protocol events for {!Invariants} *)
  transport : Ssba_transport.Transport.config option;
      (** run all protocol traffic (correct nodes and behaviours) through the
          reliable transport; build [params] at {!Ssba_core.Params.delta_eff}
          for the worst persistent loss the event schedule installs *)
  session_capacity : int option;
      (** override the nodes' session-table capacity ([None] keeps the
          {!Ssba_core.Node} default, [max 8 (n * channels)]); tiny values
          force eviction under session floods *)
  blackout : bool;
      (** the {!Ssba_core.Initiator_accept} re-initiation blackout knob
          (default [true]); [false] only in weakened-checker sensitivity
          runs *)
  admission : bool;
      (** admission-controlled proposals (default [false]): a full session
          table refuses a General's own proposal ([At_capacity]) instead of
          evicting the least-recently-active session *)
}

val role_of : t -> node_id -> role

(** Ids running the correct protocol, ascending. *)
val correct_ids : t -> node_id list

(** Ids running a Byzantine behaviour, ascending. *)
val byzantine_ids : t -> node_id list

(** The real time at which an event fires. *)
val event_time : event -> float

(** Whether an event invalidates the paper's guarantees until [Delta_stb]
    later. Heals and [Delay_restore] never do; persistent link faults
    ([Loss]/[Duplicate]/[Reorder]) do exactly when [masked_link_faults] is
    false — masking them is the reliable transport's contract. *)
val disruptive_event : masked_link_faults:bool -> event -> bool

(** [disruptive_event] with the masking derived from the scenario itself
    (link faults are masked iff it runs a transport). *)
val disruptive : t -> event -> bool

(** Byzantine ids with a [Reform] event: they run the correct protocol from
    their reform time on, ascending. *)
val reformed_ids : t -> node_id list

(** Build a scenario with sensible defaults: random delays within the bound,
    small drift, no faults, 5 s horizon, nothing recorded. *)
val default :
  ?name:string ->
  ?seed:int ->
  ?horizon:float ->
  ?record_trace:bool ->
  ?record_observations:bool ->
  ?delay:Ssba_net.Delay.t ->
  ?clocks:clocks ->
  ?roles:(node_id * role) list ->
  ?proposals:proposal list ->
  ?events:event list ->
  ?transport:Ssba_transport.Transport.config ->
  ?channels:int ->
  ?session_capacity:int ->
  ?blackout:bool ->
  ?admission:bool ->
  Ssba_core.Params.t ->
  t
