lib/core/ss_byz_agree.ml: Float Hashtbl Initiator_accept List Msgd_broadcast Option Params Ssba_sim String Types
