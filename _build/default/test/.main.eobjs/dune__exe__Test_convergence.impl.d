test/test_convergence.ml: Helpers List Params QCheck Ssba_adversary Ssba_core Ssba_harness Types
