(* Tests for the bounded-delay authenticated network. *)

open Helpers
module Engine = Ssba_sim.Engine
module Rng = Ssba_sim.Rng
module Net = Ssba_net.Network
module Delay = Ssba_net.Delay
module Msg = Ssba_net.Msg

let mk ?(n = 3) ?(delay = Delay.fixed 0.1) () =
  let engine = Engine.create () in
  let net = Net.create ~engine ~n ~delay ~rng:(Rng.create 1) () in
  (engine, net)

let test_delivery_timing () =
  let engine, net = mk () in
  let arrived = ref None in
  Net.set_handler net 1 (fun m ->
      arrived := Some (Engine.now engine, m.Msg.src, m.Msg.payload));
  Engine.schedule engine ~at:1.0 (fun () -> Net.send net ~src:0 ~dst:1 "hi");
  ignore (Engine.run engine);
  match !arrived with
  | Some (t, src, payload) ->
      check_float "delivered after the fixed delay" 1.1 t;
      check_int "authentic src" 0 src;
      check_str "payload" "hi" payload
  | None -> Alcotest.fail "message not delivered"

(* Regression: a message reaching a handler-less destination used to vanish
   from the accounting (neither delivered nor dropped). It must count as a
   drop so conservation holds. *)
let test_no_handler_counts_as_drop () =
  let engine, net = mk () in
  Net.send net ~src:0 ~dst:2 "x";
  check_int "in flight until delivery" 1 (Net.messages_in_flight net);
  ignore (Engine.run engine);
  check_int "sent counted" 1 (Net.messages_sent net);
  check_int "nothing delivered" 0 (Net.messages_delivered net);
  check_int "counted as dropped" 1 (Net.messages_dropped net);
  check_int "nothing left in flight" 0 (Net.messages_in_flight net)

let test_broadcast_includes_self () =
  let engine, net = mk () in
  let got = ref [] in
  for i = 0 to 2 do
    Net.set_handler net i (fun m -> got := (i, m.Msg.payload) :: !got)
  done;
  Net.broadcast net ~src:1 "b";
  ignore (Engine.run engine);
  check_int "all three nodes got it (self included)" 3 (List.length !got)

let test_uniform_delay_within_bounds () =
  let engine, net = mk ~delay:(Delay.uniform ~lo:0.01 ~hi:0.05) () in
  let times = ref [] in
  Net.set_handler net 1 (fun _ -> times := Engine.now engine :: !times);
  for _ = 1 to 100 do
    Net.send net ~src:0 ~dst:1 "m"
  done;
  ignore (Engine.run engine);
  List.iter
    (fun t -> check_bool "within [lo, hi]" true (t >= 0.01 && t <= 0.05))
    !times;
  check_int "all delivered" 100 (List.length !times)

let test_mute () =
  let engine, net = mk () in
  let got = ref 0 in
  Net.set_handler net 1 (fun _ -> incr got);
  Net.set_muted net 0 true;
  Net.send net ~src:0 ~dst:1 "dropped";
  Net.send net ~src:2 ~dst:1 "passes";
  ignore (Engine.run engine);
  check_int "muted sender dropped" 1 !got;
  check_bool "is_muted" true (Net.is_muted net 0);
  Net.set_muted net 0 false;
  Net.send net ~src:0 ~dst:1 "back";
  ignore (Engine.run engine);
  check_int "unmuted delivers" 2 !got;
  check_int "drops counted" 1 (Net.messages_dropped net)

let test_partition () =
  let engine, net = mk () in
  let got = ref [] in
  for i = 0 to 2 do
    Net.set_handler net i (fun m -> got := (m.Msg.src, i) :: !got)
  done;
  Net.set_partition net
    (Some (fun ~src ~dst -> (src = 0 && dst = 1) || (src = 1 && dst = 0)));
  Net.send net ~src:0 ~dst:1 "blocked";
  Net.send net ~src:0 ~dst:2 "ok";
  ignore (Engine.run engine);
  check_bool "0->1 blocked, 0->2 passes" true (!got = [ (0, 2) ]);
  Net.set_partition net None;
  Net.send net ~src:0 ~dst:1 "healed";
  ignore (Engine.run engine);
  check_int "healed" 2 (List.length !got)

let test_drop_prob () =
  let engine, net = mk () in
  let got = ref 0 in
  Net.set_handler net 1 (fun _ -> incr got);
  Net.set_drop_prob net 1.0;
  for _ = 1 to 20 do
    Net.send net ~src:0 ~dst:1 "x"
  done;
  ignore (Engine.run engine);
  check_int "all dropped at p=1" 0 !got;
  Net.set_drop_prob net 0.0;
  Net.send net ~src:0 ~dst:1 "y";
  ignore (Engine.run engine);
  check_int "delivered at p=0" 1 !got

let test_forged () =
  let engine, net = mk () in
  let seen = ref None in
  Net.set_handler net 1 (fun m -> seen := Some m);
  Net.inject_forged net ~claimed_src:2 ~dst:1 ~delay:0.5 "fake";
  (* Regression: forged injections used to be delivered without ever being
     counted as sent, leaving delivered > sent. *)
  check_int "forged counts as sent" 1 (Net.messages_sent net);
  check_int "forged is in flight" 1 (Net.messages_in_flight net);
  ignore (Engine.run engine);
  check_int "forged delivered" 1 (Net.messages_delivered net);
  check_int "nothing left in flight" 0 (Net.messages_in_flight net);
  match !seen with
  | Some m ->
      check_int "claimed src" 2 m.Msg.src;
      check_bool "marked forged" true m.Msg.forged
  | None -> Alcotest.fail "forged message not delivered"

let test_sends_never_forged () =
  let engine, net = mk () in
  let seen = ref None in
  Net.set_handler net 1 (fun m -> seen := Some m);
  Net.send net ~src:0 ~dst:1 "real";
  ignore (Engine.run engine);
  match !seen with
  | Some m -> check_bool "regular sends are not forged" false m.Msg.forged
  | None -> Alcotest.fail "not delivered"

let test_delay_override () =
  let engine, net = mk () in
  let at = ref 0.0 in
  Net.set_handler net 1 (fun _ -> at := Engine.now engine);
  Net.set_delay_override net
    (Some (fun m -> if m.Msg.src = 0 then Some 0.7 else None));
  Net.send net ~src:0 ~dst:1 "slow";
  ignore (Engine.run engine);
  check_float "override applied" 0.7 !at;
  Net.send net ~src:2 ~dst:1 "normal";
  ignore (Engine.run engine);
  check_float "non-matching messages keep the policy delay" 0.8 !at

let test_kind_stats () =
  let engine = Engine.create () in
  let net =
    Net.create ~engine ~n:2 ~delay:(Delay.fixed 0.01) ~rng:(Rng.create 1)
      ~kind_of:(fun s -> s) ()
  in
  Net.send net ~src:0 ~dst:1 "a";
  Net.send net ~src:0 ~dst:1 "a";
  Net.send net ~src:0 ~dst:1 "b";
  check_bool "per-kind counts" true (Net.sent_by_kind net = [ ("a", 2); ("b", 1) ]);
  Net.reset_counters net;
  check_int "counters reset" 0 (Net.messages_sent net);
  check_bool "kind table reset" true (Net.sent_by_kind net = [])

let test_bad_destination () =
  let _, net = mk () in
  Alcotest.check_raises "destination out of range"
    (Invalid_argument "Network.send: bad destination") (fun () ->
      Net.send net ~src:0 ~dst:7 "x")

(* The network feeds the engine's shared metrics registry. *)
let test_metrics_registry_feed () =
  let engine = Engine.create () in
  let net =
    Net.create ~engine ~n:2 ~delay:(Delay.fixed 0.01) ~rng:(Rng.create 1)
      ~kind_of:(fun s -> s) ()
  in
  Net.set_handler net 1 (fun _ -> ());
  Net.send net ~src:0 ~dst:1 "echo";
  let m = Engine.metrics engine in
  let module M = Ssba_sim.Metrics in
  check_bool "net.sent" true (M.find_counter m "net.sent" = Some 1);
  check_bool "net.sent.echo" true (M.find_counter m "net.sent.echo" = Some 1);
  check_bool "net.in_flight up" true (M.find_gauge m "net.in_flight" = Some 1.0);
  ignore (Engine.run engine);
  check_bool "net.delivered" true (M.find_counter m "net.delivered" = Some 1);
  check_bool "net.in_flight down" true (M.find_gauge m "net.in_flight" = Some 0.0)

(* With tracing enabled, every send/deliver/drop leaves a typed event. *)
let test_trace_events () =
  let tr = Ssba_sim.Trace.create ~enabled:true () in
  let engine = Engine.create ~trace:tr () in
  let net =
    Net.create ~engine ~n:2 ~delay:(Delay.fixed 0.01) ~rng:(Rng.create 1)
      ~kind_of:(fun s -> s) ()
  in
  Net.set_handler net 1 (fun _ -> ());
  Net.send net ~src:0 ~dst:1 "echo";
  Net.send net ~src:1 ~dst:0 "init";  (* no handler on 0: dropped on arrival *)
  ignore (Engine.run engine);
  check_int "send events" 2 (List.length (Ssba_sim.Trace.filter ~kind:"send" tr));
  check_int "deliver events" 1
    (List.length (Ssba_sim.Trace.filter ~kind:"deliver" tr));
  check_int "drop events" 1 (List.length (Ssba_sim.Trace.filter ~kind:"drop" tr))

let test_duplicate () =
  let engine, net = mk () in
  let got = ref 0 in
  Net.set_handler net 1 (fun _ -> incr got);
  Net.set_dup_prob net 1.0;
  for _ = 1 to 10 do
    Net.send net ~src:0 ~dst:1 "x"
  done;
  ignore (Engine.run engine);
  check_int "every message delivered twice at dup=1" 20 !got;
  check_int "duplicates counted" 10 (Net.messages_duplicated net);
  check_int "conservation: attempts all accounted"
    (Net.messages_sent net + Net.messages_duplicated net)
    (Net.messages_delivered net + Net.messages_dropped net
   + Net.messages_in_flight net)

let test_reorder () =
  let engine, net = mk () in
  (* fixed 0.1 delay; reordering stretches a delivery by up to 0.5 more *)
  let times = ref [] in
  Net.set_handler net 1 (fun _ -> times := Engine.now engine :: !times);
  Net.set_reorder net (Some { Net.prob = 1.0; extra = 0.5 });
  for _ = 1 to 20 do
    Net.send net ~src:0 ~dst:1 "x"
  done;
  ignore (Engine.run engine);
  check_int "all delivered" 20 (List.length !times);
  check_int "all stretched" 20 (Net.messages_reordered net);
  List.iter
    (fun t -> check_bool "within [0.1, 0.6]" true (t >= 0.1 && t <= 0.6 +. 1e-9))
    !times;
  check_bool "some delivery actually stretched" true
    (List.exists (fun t -> t > 0.1 +. 1e-9) !times)

(* Satellite regression: each fault concern draws from its own RNG stream,
   and every send draws from all of them unconditionally — so toggling one
   fault must not shift another concern's samples. *)
let test_rng_streams_independent () =
  let deliveries ~drop ~dup =
    let engine, net = mk ~n:2 ~delay:(Delay.uniform ~lo:0.01 ~hi:0.09) () in
    if drop then Net.set_drop_prob net 0.5;
    if dup then Net.set_dup_prob net 0.5;
    let times = ref [] in
    Net.set_handler net 1 (fun m ->
        times := (m.Msg.payload, Engine.now engine) :: !times);
    for i = 1 to 50 do
      Net.send net ~src:0 ~dst:1 (string_of_int i)
    done;
    ignore (Engine.run engine);
    !times
  in
  let plain = deliveries ~drop:false ~dup:false in
  (* Loss removes deliveries but must not shift the delays of survivors. *)
  let lossy = deliveries ~drop:true ~dup:false in
  check_bool "loss thinned the deliveries" true
    (List.length lossy < List.length plain);
  List.iter
    (fun (p, t) ->
      check_bool
        (Printf.sprintf "survivor %s keeps its delay" p)
        true
        (List.exists (fun (p', t') -> p = p' && Float.abs (t -. t') < 1e-12) plain))
    lossy;
  (* Duplication adds copies but every primary keeps its original delay. *)
  let duped = deliveries ~drop:false ~dup:true in
  List.iter
    (fun (p, t) ->
      check_bool
        (Printf.sprintf "primary %s still arrives on time" p)
        true
        (List.exists (fun (p', t') -> p = p' && Float.abs (t -. t') < 1e-12) duped))
    plain

(* Conservation property: under an arbitrary mix of sends, broadcasts,
   forged injections, mutes, partitions, loss, duplication and reordering,
   and at ANY point of the drain (including mid-flight),
   attempts = sent + duplicated = delivered + dropped + in_flight. *)
let prop_conservation =
  let invariant net =
    Net.messages_sent net + Net.messages_duplicated net
    = Net.messages_delivered net + Net.messages_dropped net
      + Net.messages_in_flight net
  in
  QCheck.Test.make ~name:"sent = delivered + dropped + in_flight" ~count:100
    QCheck.(pair small_int (small_list int))
    (fun (seed, ops) ->
      let n = 4 in
      let engine = Engine.create () in
      let net =
        Net.create ~engine ~n
          ~delay:(Delay.uniform ~lo:0.01 ~hi:0.09)
          ~rng:(Rng.create (1 + abs seed))
          ()
      in
      (* node 3 keeps no handler, so some deliveries become drops *)
      for i = 0 to 2 do
        Net.set_handler net i (fun _ -> ())
      done;
      List.iteri
        (fun i op ->
          let op = abs op in
          match op mod 8 with
          | 0 -> Net.send net ~src:(i mod n) ~dst:(op mod n) "m"
          | 1 ->
              Net.inject_forged net ~claimed_src:(op mod n) ~dst:(i mod n)
                ~delay:0.05 "forged"
          | 2 -> Net.set_muted net (op mod n) (op land 1 = 0)
          | 3 -> Net.set_drop_prob net (if op land 1 = 0 then 0.5 else 0.0)
          | 4 ->
              Net.set_partition net
                (if op land 1 = 0 then
                   Some (fun ~src ~dst -> src = 0 && dst = 1)
                 else None)
          | 5 -> Net.set_dup_prob net (if op land 1 = 0 then 0.5 else 0.0)
          | 6 ->
              Net.set_reorder net
                (if op land 1 = 0 then Some { Net.prob = 0.5; extra = 0.2 }
                 else None)
          | _ -> Net.broadcast net ~src:(i mod n) "b")
        ops;
      let mid = invariant net in
      ignore (Engine.run ~until:0.04 engine);
      let partial = invariant net in
      ignore (Engine.run engine);
      mid && partial && invariant net && Net.messages_in_flight net = 0)

let suite =
  [
    case "delivery timing + authentication" test_delivery_timing;
    case "no handler counts as drop" test_no_handler_counts_as_drop;
    case "broadcast includes self" test_broadcast_includes_self;
    case "uniform delay bounds" test_uniform_delay_within_bounds;
    case "mute (crash)" test_mute;
    case "partition" test_partition;
    case "drop probability" test_drop_prob;
    case "forged injection" test_forged;
    case "sends never forged" test_sends_never_forged;
    case "delay override" test_delay_override;
    case "per-kind statistics" test_kind_stats;
    case "bad destination" test_bad_destination;
    case "metrics registry feed" test_metrics_registry_feed;
    case "trace events" test_trace_events;
    case "duplicate injection" test_duplicate;
    case "reorder injection" test_reorder;
    case "per-concern rng streams" test_rng_streams_independent;
    Helpers.qcheck prop_conservation;
  ]
