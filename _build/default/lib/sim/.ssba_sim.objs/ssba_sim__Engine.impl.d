lib/sim/engine.ml: Heap Metrics Trace Unix
