lib/baseline/tps_agree.mli: Ssba_core Ssba_net Ssba_sim
