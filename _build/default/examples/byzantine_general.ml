(* A Byzantine General tries to split the correct nodes.

   Three attacks from the adversary library, run back to back on 10 nodes
   (f = 3 tolerated):

   - two-faced: the General sends value "attack" to half the nodes and
     "retreat" to the other half, then pushes support/approve/ready for both.
     The Uniqueness property [IA-4] of Initiator-Accept guarantees correct
     nodes never I-accept different values for anchors this close — here
     neither value reaches the n - f support quorum, so nobody agrees to
     anything (a legal outcome for a faulty General).

   - partial: the General initiates towards only n - f nodes. The Relay
     property [IA-3] drags every other correct node to the same value — all
     correct nodes decide, including the ones that never saw the initiation.

   - staggered: the General spreads its initiation over many d. The block-K
     freshness guards stop late nodes from supporting, so the support burst
     stays tight or nothing happens at all.

     dune exec examples/byzantine_general.exe *)

module H = Ssba_harness
module Core = Ssba_core
module S = Ssba_adversary.Strategies

let show title (res : H.Runner.result) =
  Fmt.pr "@.== %s ==@." title;
  let episodes = H.Metrics.episodes res in
  if episodes = [] then
    Fmt.pr "  no correct node returned anything (no agreement was initiated)@.";
  List.iter
    (fun (e : H.Metrics.episode) ->
      match H.Checks.agreement ~correct:res.H.Runner.correct e with
      | H.Checks.Unanimous v ->
          Fmt.pr "  all %d correct nodes decided %S@."
            (List.length e.H.Metrics.returns) v
      | H.Checks.All_aborted ->
          Fmt.pr "  %d correct node(s) aborted (returned bot)@."
            (List.length e.H.Metrics.returns)
      | H.Checks.All_silent -> ()
      | H.Checks.Violated why -> Fmt.pr "  AGREEMENT VIOLATED: %s@." why)
    episodes;
  match H.Checks.pairwise_agreement res with
  | [] -> Fmt.pr "  pairwise agreement: holds@."
  | vs -> List.iter (fun v -> Fmt.pr "  VIOLATION: %s@." v) vs

let () =
  let n = 10 in
  let params = Core.Params.default n in
  let f = params.Core.Params.f in
  let run name roles =
    let sc =
      H.Scenario.default ~name ~seed:7 ~roles
        ~horizon:(4.0 *. params.Core.Params.delta_agr)
        params
    in
    show name (H.Runner.run sc)
  in
  run "two-faced General"
    [ (0, H.Scenario.Byzantine (S.two_faced_general ~v1:"attack" ~v2:"retreat" ~at:0.02)) ];
  run "partial General (initiates towards n - f nodes only)"
    [
      ( 0,
        H.Scenario.Byzantine
          (S.partial_general ~v:"attack" ~at:0.02
             ~targets:(List.init (n - f) (fun i -> i + 1))) );
    ];
  run "staggered General (spreads initiation over 3d steps)"
    [
      ( 0,
        H.Scenario.Byzantine
          (S.stagger_general ~v:"attack" ~at:0.02 ~gap:(3.0 *. params.Core.Params.d)) );
    ]
