test/test_engine.ml: Alcotest Helpers List Ssba_sim Unix
