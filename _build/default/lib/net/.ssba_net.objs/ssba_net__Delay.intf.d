lib/net/delay.mli: Ssba_sim
