test/test_separation.ml: Alcotest Fake Helpers Initiator_accept List Params Ssba_core Types
