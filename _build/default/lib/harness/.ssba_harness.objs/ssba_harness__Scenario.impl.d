lib/harness/scenario.ml: List Ssba_adversary Ssba_core Ssba_net
