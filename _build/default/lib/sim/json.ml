(* Minimal JSON encoder/decoder.

   Just enough JSON for the observability layer: trace/metrics JSONL export
   and its round-trip tests. Kept dependency-free on purpose (the container
   pins the package set); numbers are all floats, strings are escaped per RFC
   8259 (with non-ASCII bytes passed through verbatim, which is valid when the
   input is UTF-8 — ours is). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* %.17g is lossless for doubles; trim to %g-style when exact. *)
let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x ->
      if not (Float.is_finite x) then
        (* NaN/inf are not JSON; encode as null like most exporters do *)
        Buffer.add_string buf "null"
      else Buffer.add_string buf (number_to_string x)
  | Str s -> escape_to buf s
  | Arr l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  to_buffer buf v;
  Buffer.contents buf

(* ----- parsing ---------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let error c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))
let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.src
    && match c.src.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | _ -> error c (Printf.sprintf "expected %c" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else error c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.src then error c "unterminated string";
    let ch = c.src.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' ->
        (if c.pos >= String.length c.src then error c "truncated escape";
         let e = c.src.[c.pos] in
         c.pos <- c.pos + 1;
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
             if c.pos + 4 > String.length c.src then error c "truncated \\u";
             let code = int_of_string ("0x" ^ String.sub c.src c.pos 4) in
             c.pos <- c.pos + 4;
             (* we only emit \u00xx for control chars; decode the BMP point
                as UTF-8 so round-trips are exact for what we produce *)
             if code < 0x80 then Buffer.add_char buf (Char.chr code)
             else if code < 0x800 then begin
               Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
             else begin
               Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
               Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
               Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
             end
         | _ -> error c "bad escape");
        go ()
    | ch -> Buffer.add_char buf ch; go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while c.pos < String.length c.src && is_num_char c.src.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then error c "expected number";
  match float_of_string_opt (String.sub c.src start (c.pos - start)) with
  | Some x -> x
  | None -> error c "bad number"

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some '[' ->
      expect c '[';
      skip_ws c;
      if peek c = Some ']' then begin c.pos <- c.pos + 1; Arr [] end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; items (v :: acc)
          | Some ']' -> c.pos <- c.pos + 1; Arr (List.rev (v :: acc))
          | _ -> error c "expected , or ]"
        in
        items []
      end
  | Some '{' ->
      expect c '{';
      skip_ws c;
      if peek c = Some '}' then begin c.pos <- c.pos + 1; Obj [] end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' -> c.pos <- c.pos + 1; fields ((k, v) :: acc)
          | Some '}' -> c.pos <- c.pos + 1; Obj (List.rev ((k, v) :: acc))
          | _ -> error c "expected , or }"
        in
        fields []
      end
  | Some _ -> Num (parse_number c)

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then error c "trailing garbage";
  v

(* Object-field accessors used by the trace importer. *)
let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

let to_float_opt = function Num x -> Some x | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_int_opt = function Num x when Float.is_integer x -> Some (int_of_float x) | _ -> None
