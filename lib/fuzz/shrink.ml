(* Greedy shrinking.

   Classic delta-debugging specialized to the spec shape. "Preserving the
   failure" means: the candidate's oracle report contains a failure whose
   oracle name appeared in the original report — the detail string may
   change (times and node ids move as the scenario shrinks), the property
   class may not. *)

module S = Ssba_harness.Scenario
module C = Ssba_adversary.Catalog
module P = Ssba_core.Params
module W = Ssba_service.Workload

type stats = { attempts : int; accepted : int }

let drop_nth l i = List.filteri (fun j _ -> j <> i) l

(* Candidate simplifications, cheapest-win first: structural deletions, then
   substitutions, then model flattening, then horizon tightening. *)
let candidates spec =
  let open Spec in
  let events =
    List.mapi (fun i _ -> { spec with events = drop_nth spec.events i }) spec.events
  in
  let proposals =
    List.mapi
      (fun i _ -> { spec with proposals = drop_nth spec.proposals i })
      spec.proposals
  in
  let cast_drops =
    List.mapi (fun i _ -> { spec with cast = drop_nth spec.cast i }) spec.cast
  in
  let cast_simpler =
    List.concat
      (List.mapi
         (fun i (id, c) ->
           List.map
             (fun c' ->
               {
                 spec with
                 cast = List.mapi (fun j e -> if j = i then (id, c') else e) spec.cast;
               })
             (C.simplify c))
         spec.cast)
  in
  (* Retarget proposals at the smallest correct id, freeing high node ids for
     the node-count reduction below. *)
  let byz = List.map fst spec.cast in
  let smallest_correct =
    List.find_opt (fun id -> not (List.mem id byz)) (List.init spec.n Fun.id)
  in
  let retargets =
    match smallest_correct with
    | None -> []
    | Some lo ->
        List.concat
          (List.mapi
             (fun i (p : S.proposal) ->
               if
                 p.S.g <> lo
                 && not
                      (List.exists
                         (fun (q : S.proposal) -> q.S.g = lo)
                         spec.proposals)
               then
                 [
                   {
                     spec with
                     proposals =
                       List.mapi
                         (fun j q -> if j = i then { p with S.g = lo } else q)
                         spec.proposals;
                   };
                 ]
               else [])
             spec.proposals)
  in
  (* Node-count reduction: drop the top node when nothing references it,
     both one at a time and straight to the n=4 floor. *)
  let shrink_to n' =
    if n' >= 4 && n' < spec.n && Spec.max_referenced_id spec < n' then
      [ { spec with n = n'; f = min spec.f (P.max_faults n') } ]
    else []
  in
  let nodes = shrink_to 4 @ shrink_to (spec.n - 1) in
  let delay =
    match spec.delay with
    | Fixed _ -> []
    | Uniform { lo; hi } | Bimodal { fast = lo; slow = hi; _ } ->
        [ { spec with delay = Fixed (0.5 *. (lo +. hi)) } ]
    (* boundary atoms flatten to the largest one — the boundary-dividing
       delay is usually the one doing the damage *)
    | Edge { atoms } ->
        [ { spec with delay = Fixed (List.fold_left Float.max 0.0 atoms) } ]
    (* a scripted schedule collapses to its default delay *)
    | Scripted { default; _ } -> [ { spec with delay = Fixed default } ]
  in
  let clocks =
    match spec.clocks with
    | S.Perfect -> []
    | S.Drifting _ -> [ { spec with clocks = S.Perfect } ]
  in
  (* Strip the transport: only survives when the failure wasn't about the
     lossy-link machinery (the oracle reclassifies the spec), but when it
     does survive, the repro is much simpler. *)
  let transport =
    match spec.transport with
    | None -> []
    (* Service workload times are drawn at the transport-inflated d: dropping
       the transport alone deflates d by orders of magnitude under the same
       multi-thousand-d workload windows, and the candidate run (per-d ticks
       over the old horizon) explodes. Drop the service first; the transport
       becomes strippable on the next fixpoint round. *)
    | Some _ when spec.service <> None -> []
    | Some _ -> [ { spec with transport = None } ]
  in
  (* Reset a non-default gate variant: survives exactly when the failure
     isn't about the legacy/experimental gate, so minimized counterexamples
     don't carry a gratuitous [r_slack] override. *)
  let r_slack =
    if spec.r_slack = P.default_r_slack then []
    else [ { spec with r_slack = P.default_r_slack } ]
  in
  (* Service-spec reductions, cheapest-win first: drop the whole workload
     (survives exactly when the failure isn't about the service machinery),
     flatten bursty arrivals to the plain Poisson base, strip the pulse
     layer, and halve the arrival window. *)
  let service =
    match spec.service with
    | None -> []
    | Some w ->
        [ { spec with service = None } ]
        @ (match w.W.arrivals with
          | W.Bursty { rate; _ } ->
              [
                {
                  spec with
                  service = Some { w with W.arrivals = W.Poisson { rate } };
                };
              ]
          | W.Poisson _ -> [])
        @ (if w.W.pulse_cycles > 0 then
             [ { spec with service = Some { w with W.pulse_cycles = 0 } } ]
           else [])
        @
        let half = w.W.start_at +. (0.5 *. (w.W.stop_at -. w.W.start_at)) in
        if half < w.W.stop_at *. 0.99 then
          [ { spec with service = Some { w with W.stop_at = half } } ]
        else []
  in
  let horizon =
    let h = Gen.min_horizon spec in
    if h < spec.horizon *. 0.99 then [ { spec with horizon = h } ] else []
  in
  events @ proposals @ cast_drops @ cast_simpler @ retargets @ nodes @ delay
  @ clocks @ transport @ r_slack @ service @ horizon

let minimize ?config ?(max_attempts = 400) spec (report : Oracle.report) =
  let original_oracles =
    List.sort_uniq compare
      (List.map (fun (f : Oracle.failure) -> f.Oracle.oracle) report.Oracle.failures)
  in
  let preserves (r : Oracle.report) =
    List.exists
      (fun (f : Oracle.failure) -> List.mem f.Oracle.oracle original_oracles)
      r.Oracle.failures
  in
  let attempts = ref 0 and accepted = ref 0 in
  let rec fixpoint spec report =
    let step =
      List.find_map
        (fun cand ->
          if !attempts >= max_attempts then None
          else begin
            incr attempts;
            match Spec.validate cand with
            | Error _ -> None
            | Ok () ->
                let _, r = Oracle.run ?config cand in
                if preserves r then Some (cand, r) else None
          end)
        (candidates spec)
    in
    match step with
    | Some (cand, r) when !attempts < max_attempts ->
        incr accepted;
        fixpoint cand r
    | Some (cand, r) ->
        incr accepted;
        (cand, r)
    | None -> (spec, report)
  in
  let spec, report = fixpoint spec report in
  (spec, report, { attempts = !attempts; accepted = !accepted })
