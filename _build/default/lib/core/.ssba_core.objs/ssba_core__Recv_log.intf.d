lib/core/recv_log.mli:
