(** Greedy minimization of a failing spec.

    Candidate simplifications — dropping events and proposals, demoting or
    simplifying Byzantine cast members, retargeting proposals at low node
    ids, removing the top node, flattening delay/clock models, tightening
    the horizon — are tried in order; a candidate is kept when its run still
    fails with at least one failure from the same oracle as the original.
    Repeats to a fixpoint (or the attempt budget), so the result is locally
    minimal: no single remaining simplification preserves the failure. *)

type stats = {
  attempts : int;  (** oracle runs spent *)
  accepted : int;  (** simplification steps kept *)
}

(** One round of candidate simplifications for [spec], in the order
    {!minimize} tries them. Exposed so tests can pin the candidate set
    (e.g. that a non-default [r_slack] offers a reduction to the default
    gate) without running the oracle. *)
val candidates : Spec.t -> Spec.t list

(** [minimize ?config ?max_attempts spec report] requires [report] to be the
    (failing) {!Oracle.run} report for [spec]; returns the minimized spec,
    its report, and shrink statistics. *)
val minimize :
  ?config:Oracle.config ->
  ?max_attempts:int ->
  Spec.t ->
  Oracle.report ->
  Spec.t * Oracle.report * stats
