(* Tests for the binary min-heap. *)

open Helpers
module Heap = Ssba_sim.Heap

let mk () = Heap.create compare

let test_empty () =
  let h = mk () in
  check_bool "is_empty" true (Heap.is_empty h);
  check_int "size" 0 (Heap.size h);
  check_bool "peek none" true (Heap.peek h = None);
  check_bool "pop none" true (Heap.pop h = None)

let test_push_pop_sorted () =
  let h = mk () in
  List.iter (Heap.push h) [ 5; 1; 4; 1; 3; 9; 2 ];
  let rec drain acc =
    match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc)
  in
  check_bool "ascending order" true
    (drain [] = List.sort compare [ 5; 1; 4; 1; 3; 9; 2 ])

let test_peek_stable () =
  let h = mk () in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  check_bool "peek = min" true (Heap.peek h = Some 1);
  check_int "peek does not remove" 3 (Heap.size h)

let test_interleaved () =
  let h = mk () in
  Heap.push h 10;
  Heap.push h 5;
  check_bool "pop 5" true (Heap.pop h = Some 5);
  Heap.push h 1;
  Heap.push h 7;
  check_bool "pop 1" true (Heap.pop h = Some 1);
  check_bool "pop 7" true (Heap.pop h = Some 7);
  check_bool "pop 10" true (Heap.pop h = Some 10);
  check_bool "empty again" true (Heap.is_empty h)

let test_growth () =
  let h = Heap.create ~capacity:2 compare in
  for i = 1000 downto 1 do
    Heap.push h i
  done;
  check_int "size after growth" 1000 (Heap.size h);
  check_bool "min correct" true (Heap.peek h = Some 1)

let test_clear () =
  let h = mk () in
  List.iter (Heap.push h) [ 1; 2; 3 ];
  Heap.clear h;
  check_bool "cleared" true (Heap.is_empty h);
  Heap.push h 42;
  check_bool "usable after clear" true (Heap.pop h = Some 42)

(* Regression: [clear] used to discard the backing array along with its
   grown size, so a reused heap re-grew from the tiny creation capacity. The
   capacity hint must survive push -> clear -> push. *)
let test_capacity_survives_clear () =
  let h = Heap.create ~capacity:2 compare in
  for i = 1 to 500 do
    Heap.push h i
  done;
  let grown = Heap.capacity h in
  check_bool "grew past the hint" true (grown >= 500);
  Heap.clear h;
  check_int "capacity kept across clear" grown (Heap.capacity h);
  Heap.push h 1;
  check_int "next push seeds the kept capacity" grown (Heap.capacity h)

let test_capacity_survives_drain () =
  let h = Heap.create ~capacity:2 compare in
  for i = 1 to 500 do
    Heap.push h i
  done;
  let grown = Heap.capacity h in
  while not (Heap.is_empty h) do
    ignore (Heap.pop h)
  done;
  check_int "capacity kept across drain-to-empty" grown (Heap.capacity h)

let test_to_list () =
  let h = mk () in
  List.iter (Heap.push h) [ 4; 2; 8; 6 ];
  check_bool "to_list ascending" true (Heap.to_list h = [ 2; 4; 6; 8 ]);
  check_int "heap unchanged" 4 (Heap.size h);
  check_bool "still pops min" true (Heap.pop h = Some 2)

let test_custom_order () =
  let h = Heap.create (fun a b -> compare b a) in
  List.iter (Heap.push h) [ 1; 3; 2 ];
  check_bool "max-heap via flipped compare" true (Heap.pop h = Some 3)

let test_float_elements () =
  (* floats have flat arrays in OCaml; the heap must not manufacture dummy
     values for them *)
  let h = Heap.create compare in
  List.iter (Heap.push h) [ 3.5; 1.25; 2.0; -4.0 ];
  check_bool "float min" true (Heap.pop h = Some (-4.0));
  check_bool "float order" true (Heap.to_list h = [ 1.25; 2.0; 3.5 ]);
  Heap.clear h;
  Heap.push h 9.0;
  check_bool "usable after clear" true (Heap.pop h = Some 9.0)

let test_tie_break_with_seq () =
  (* The engine relies on (time, seq) elements giving FIFO for equal times. *)
  let h = Heap.create compare in
  List.iter (Heap.push h) [ (1.0, 0); (1.0, 1); (0.5, 2); (1.0, 3) ];
  check_bool "order" true
    (Heap.to_list h = [ (0.5, 2); (1.0, 0); (1.0, 1); (1.0, 3) ])

(* qcheck: heap-sort of an arbitrary list equals List.sort. *)
let prop_heapsort =
  QCheck.Test.make ~name:"heap sort matches List.sort" ~count:300
    QCheck.(list int)
    (fun l ->
      let h = Heap.create compare in
      List.iter (Heap.push h) l;
      Heap.to_list h = List.sort compare l)

let prop_size =
  QCheck.Test.make ~name:"heap size tracks pushes" ~count:300
    QCheck.(list small_int)
    (fun l ->
      let h = Heap.create compare in
      List.iter (Heap.push h) l;
      Heap.size h = List.length l)

(* Model test: random push/pop/clear vs a sorted-list reference, over
   (at, seq) elements as the engine used to store them — a small time grid
   forces equal-[at] collisions, and the reference's List.merge is stable, so
   seq-order for equal times is part of what gets checked. *)
type op = Push of float | Pop | Clear

let gen_ops =
  QCheck.Gen.(
    list
      (frequency
         [
           (5, map (fun i -> Push (float_of_int i /. 4.0)) (int_bound 8));
           (3, return Pop);
           (1, return Clear);
         ]))

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Push at -> Printf.sprintf "push %.2f" at
         | Pop -> "pop"
         | Clear -> "clear")
       ops)

let prop_model_ops =
  QCheck.Test.make
    ~name:"heap matches sorted-list model (stable for equal keys)" ~count:500
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops ->
      let h = Heap.create ~capacity:1 compare in
      let seq = ref 0 in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Push at ->
              let s = !seq in
              incr seq;
              Heap.push h (at, s);
              model := List.merge compare [ (at, s) ] !model;
              true
          | Pop -> (
              match !model with
              | [] -> Heap.pop h = None
              | x :: rest ->
                  model := rest;
                  Heap.pop h = Some x)
          | Clear ->
              Heap.clear h;
              model := [];
              true)
        ops
      && Heap.to_list h = !model)

let suite =
  [
    case "empty" test_empty;
    case "push/pop sorted" test_push_pop_sorted;
    case "peek" test_peek_stable;
    case "interleaved" test_interleaved;
    case "growth" test_growth;
    case "clear" test_clear;
    case "capacity survives clear" test_capacity_survives_clear;
    case "capacity survives drain" test_capacity_survives_drain;
    case "to_list" test_to_list;
    case "custom order" test_custom_order;
    case "float elements" test_float_elements;
    case "tie-break with seq" test_tie_break_with_seq;
    Helpers.qcheck prop_heapsort;
    Helpers.qcheck prop_size;
    Helpers.qcheck prop_model_ops;
  ]
