(* Timestamped per-sender receive log.

   Each Initiator-Accept / msgd-broadcast message class keeps one log per
   (General, value[, round]) key. The primitives only ever ask questions of
   the form "did >= k distinct senders deliver this message within the local
   window [tau - alpha, tau]?", so it suffices to remember, per sender, the
   most recent arrival time: re-sends refresh the entry, and older arrivals
   can never enlarge a suffix window's sender count.

   Window queries run on every arrival, so they are the broadcast hot path.
   Alongside the sender -> latest-arrival table the log incrementally
   maintains a sorted array of (time, sender) pairs — parallel flat
   float/int arrays, ascending by (time, sender) — so every query is a
   binary search: O(log m), monomorphic comparisons, no allocation. Updates
   (a refresh moves one entry towards the end; decay cuts a prefix, sanitize
   a suffix) are a binary search plus one [Array.blit] over at most m <= n
   entries, which is far cheaper than the former fold + sort + nth on every
   query.

   The log also implements the paper's decay rules: entries older than a
   horizon are removed, and entries with "clearly wrong" (future) timestamps
   — which only a transient fault can produce — are dropped by [sanitize]. *)

type t = {
  arrivals : (int, float) Hashtbl.t;  (* sender -> latest arrival *)
  mutable times : float array;  (* ascending by (time, sender); size live *)
  mutable who : int array;
  mutable size : int;
}

let create () =
  {
    arrivals = Hashtbl.create 8;
    times = Array.make 8 0.0;
    who = Array.make 8 0;
    size = 0;
  }

(* First index whose (time, sender) is >= (at, sender) lexicographically. *)
let lower_bound t ~at ~sender =
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let mt = Array.unsafe_get t.times mid in
    if mt < at || (mt = at && Array.unsafe_get t.who mid < sender) then
      lo := mid + 1
    else hi := mid
  done;
  !lo

(* First index with time >= x. *)
let lower_bound_time t x =
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get t.times mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index with time > x. *)
let upper_bound_time t x =
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get t.times mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let remove_entry t ~at ~sender =
  let i = lower_bound t ~at ~sender in
  (* the entry exists by construction: arrivals and the array stay in sync *)
  assert (i < t.size && t.times.(i) = at && t.who.(i) = sender);
  Array.blit t.times (i + 1) t.times i (t.size - i - 1);
  Array.blit t.who (i + 1) t.who i (t.size - i - 1);
  t.size <- t.size - 1

let insert_entry t ~at ~sender =
  if t.size = Array.length t.times then begin
    let cap = 2 * t.size in
    let times = Array.make cap 0.0 and who = Array.make cap 0 in
    Array.blit t.times 0 times 0 t.size;
    Array.blit t.who 0 who 0 t.size;
    t.times <- times;
    t.who <- who
  end;
  let i = lower_bound t ~at ~sender in
  Array.blit t.times i t.times (i + 1) (t.size - i);
  Array.blit t.who i t.who (i + 1) (t.size - i);
  t.times.(i) <- at;
  t.who.(i) <- sender;
  t.size <- t.size + 1

let replace t ~sender ~at =
  (match Hashtbl.find_opt t.arrivals sender with
  | Some prev -> remove_entry t ~at:prev ~sender
  | None -> ());
  insert_entry t ~at ~sender;
  Hashtbl.replace t.arrivals sender at

let note t ~sender ~at =
  match Hashtbl.find_opt t.arrivals sender with
  | Some prev when prev >= at -> ()
  | Some prev ->
      remove_entry t ~at:prev ~sender;
      insert_entry t ~at ~sender;
      Hashtbl.replace t.arrivals sender at
  | None ->
      insert_entry t ~at ~sender;
      Hashtbl.replace t.arrivals sender at

let count t = t.size

let mem t ~sender = Hashtbl.mem t.arrivals sender

let senders t =
  let rec collect i acc =
    if i < 0 then acc else collect (i - 1) (t.who.(i) :: acc)
  in
  List.sort_uniq Int.compare (collect (t.size - 1) [])

(* Senders whose latest arrival lies in [now - width, now]. *)
let count_in_window t ~now ~width =
  let hi = upper_bound_time t now in
  let lo = lower_bound_time t (now -. width) in
  if hi > lo then hi - lo else 0

(* Smallest alpha such that >= count distinct senders arrived in
   [now - alpha, now]; [None] if fewer than [count] arrivals exist at all. *)
let shortest_window t ~now ~count =
  if count <= 0 then Some 0.0
  else begin
    let hi = upper_bound_time t now in
    if hi < count then None else Some (now -. t.times.(hi - count))
  end

let latest t = if t.size = 0 then None else Some t.times.(t.size - 1)

(* Drop entries that arrived before [horizon] — an ascending-order prefix. *)
let decay t ~horizon =
  let cut = lower_bound_time t horizon in
  if cut > 0 then begin
    for i = 0 to cut - 1 do
      Hashtbl.remove t.arrivals t.who.(i)
    done;
    Array.blit t.times cut t.times 0 (t.size - cut);
    Array.blit t.who cut t.who 0 (t.size - cut);
    t.size <- t.size - cut
  end

(* Drop entries with impossible (future) timestamps — transient-fault
   residue, a suffix of the sorted array. *)
let sanitize t ~now =
  let keep = upper_bound_time t now in
  if keep < t.size then begin
    for i = keep to t.size - 1 do
      Hashtbl.remove t.arrivals t.who.(i)
    done;
    t.size <- keep
  end

(* Iterate live entries in ascending (time, sender) order — a canonical
   order independent of arrival interleaving; the model checker's state
   fingerprints rely on it. *)
let iter_entries t f =
  for i = 0 to t.size - 1 do
    f ~sender:t.who.(i) ~at:t.times.(i)
  done

let clear t =
  Hashtbl.reset t.arrivals;
  t.size <- 0

let is_empty t = t.size = 0

(* Fault injection: plant an arbitrary entry, bypassing the monotonicity of
   [note]. Used only by the transient-fault scrambler. *)
let corrupt t ~sender ~at = replace t ~sender ~at
