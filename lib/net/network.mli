(** Bounded-delay authenticated point-to-point network (paper §2, Def. 2).

    While correct, every send is delivered within the configured delay policy
    and sender identity is authentic. Faults — drops, duplicates, reordering,
    partitions, forged garbage — are driven by scenario code, either as
    transient incoherence or as a persistently faulty deployment link that
    the reliable transport ([Ssba_transport]) masks.

    Determinism: each fault concern (loss, delay, duplication, reordering)
    owns a dedicated RNG stream split off the creation RNG, and every send
    draws from every stream unconditionally — toggling one fault knob mid-run
    never shifts the samples another concern sees. *)

type 'a t
type 'a handler = 'a Msg.t -> unit

(** Reordering fault: with probability [prob], a delivery is stretched by a
    uniform extra delay in [\[0, extra\]], letting later sends overtake it. *)
type reorder = { prob : float; extra : float }

val create :
  ?drop_prob:float ->
  ?dup_prob:float ->
  ?reorder:reorder ->
  ?kind_of:('a -> string) ->
  engine:Ssba_sim.Engine.t ->
  n:int ->
  delay:Delay.t ->
  rng:Ssba_sim.Rng.t ->
  unit ->
  'a t

(** Number of nodes. *)
val size : 'a t -> int

val set_handler : 'a t -> int -> 'a handler -> unit
val clear_handler : 'a t -> int -> unit
val set_delay : 'a t -> Delay.t -> unit

(** Probability that a send is silently lost — transient incoherence, or a
    persistent lossy link when the transport is in the loop. *)
val set_drop_prob : 'a t -> float -> unit

val drop_prob : 'a t -> float

(** Probability that a successful send is delivered twice (the second copy
    with an independently drawn delay). *)
val set_dup_prob : 'a t -> float -> unit

val dup_prob : 'a t -> float

(** Enable/disable the reordering fault ([None] disables). *)
val set_reorder : 'a t -> reorder option -> unit

(** Block links for which the predicate holds ([None] lifts the partition). *)
val set_partition : 'a t -> (src:int -> dst:int -> bool) option -> unit

(** Mute (crash) or unmute a sender: all its sends are silently dropped. *)
val set_muted : 'a t -> int -> bool -> unit

val is_muted : 'a t -> int -> bool

(** Per-message adversarial delivery delay: when the callback returns
    [Some d], it replaces the policy-drawn delay. The paper's model allows a
    {e faulty} sender's messages to be arbitrarily late (masked as part of
    the [f] faults); scenario code must only target faulty senders once the
    system is meant to be coherent. *)
val set_delay_override : 'a t -> ('a Msg.t -> float option) option -> unit

(** [send t ~src ~dst payload] delivers [payload] to [dst] after a
    policy-drawn delay, with authentic [src]. *)
val send : 'a t -> src:int -> dst:int -> 'a -> unit

(** Send to every node, including [src] itself. *)
val broadcast : 'a t -> src:int -> 'a -> unit

(** Deliver a message with a forged sender identity after [delay]
    (transient-fault injection only). *)
val inject_forged : 'a t -> claimed_src:int -> dst:int -> delay:float -> 'a -> unit

(** The network as a first-class sending surface for protocol code. *)
val link : 'a t -> 'a Link.t

(** Accounting. Every message entering the network — including forged
    injections and fault-injected duplicate copies — counts exactly once as
    sent or duplicated, and is eventually counted as exactly one of delivered
    (a handler ran) or dropped (mute, partition, random loss, or no handler
    at the destination). On any quiescent network
    [attempts = delivered + dropped + in_flight] holds, with
    [attempts = sent + duplicated]; the harness checks it after every run.
    Counters also appear in the engine's metrics registry under [net.sent],
    [net.delivered], [net.dropped], [net.duplicated], [net.reordered],
    [net.in_flight] and [net.sent.<kind>]. *)
val messages_sent : 'a t -> int

val messages_delivered : 'a t -> int
val messages_dropped : 'a t -> int

(** Fault-injected second copies ([net.duplicated]). *)
val messages_duplicated : 'a t -> int

(** Deliveries stretched by the reordering fault (no conservation impact). *)
val messages_reordered : 'a t -> int

(** [messages_sent + messages_duplicated] — the left side of conservation. *)
val messages_attempted : 'a t -> int

(** Messages scheduled but not yet delivered or dropped. *)
val messages_in_flight : 'a t -> int

(** Per-kind send counts (requires [kind_of] at creation), sorted by kind. *)
val sent_by_kind : 'a t -> (string * int) list

val reset_counters : 'a t -> unit

(** {2 Delivery arena}

    Broadcasts (and unicast sends) are batched: each send call arms ONE
    engine heap entry — a fan-out descriptor expanding to its per-receiver
    deliveries in the exact (at, seq) order the per-entry scheme produced —
    and the envelope records for in-flight messages live in a pooled arena,
    recycled when the descriptor's last sub-event fires. Steady-state
    delivery therefore allocates no descriptors or envelope slots beyond the
    peak concurrent need; the registry tracks [net.pool.fanouts] /
    [net.pool.slots] (monotonic allocation counters, not reset by
    {!reset_counters} — the arena persists across scenario reuse) and
    [net.pool.in_use]. *)

(** Fan-out descriptors ever allocated ([net.pool.fanouts]). *)
val pool_fanouts_allocated : 'a t -> int

(** Envelope slots ever allocated ([net.pool.slots]). *)
val pool_slots_allocated : 'a t -> int

(** Descriptors currently sitting in the free stack. *)
val pool_free : 'a t -> int

(** [scramble_pool t ~payload] overwrites every free descriptor's envelope
    slots with garbage drawn from the arena's own RNG stream ([payload]
    builds a garbage payload from it) — transient-fault injection for the
    arena, on the [Session_table] safety pattern: values may be trashed,
    capacity and occupancy never. Free slots are fully overwritten on
    acquire, so results are unaffected; armed (in-flight) descriptors are
    not touched. *)
val scramble_pool : 'a t -> payload:(Ssba_sim.Rng.t -> 'a) -> unit
