(** Time-driven baseline: Toueg–Perry–Srikanth Fast Distributed Agreement
    (the paper's [14]), with lock-step phases of length [Phi] anchored at a
    common, pre-synchronized start time. Send/accept rules fire only at phase
    boundaries, so latency is quantized to whole phases regardless of actual
    network speed — the comparator for the message-driven claim (E3). *)

open Ssba_core.Types

type t

(** [create ~id ~params ~clock ~engine ~net ~g ~t_start] builds one baseline
    node for the agreement led by General [g], with phase 0 at common local
    time [t_start], and registers it as the network handler for [id]. *)
val create :
  id:node_id ->
  params:Ssba_core.Params.t ->
  clock:Ssba_sim.Clock.t ->
  engine:Ssba_sim.Engine.t ->
  net:message Ssba_net.Network.t ->
  g:general ->
  t_start:float ->
  t

(** The General broadcasts its value at phase 0. Raises if [id <> g]. *)
val propose : t -> value -> unit

(** The return, once the node stopped: outcome and local return time. *)
val returned : t -> (outcome * float) option

val set_on_return : t -> (outcome -> tau_ret:float -> unit) -> unit

(** Current local-clock reading. *)
val local_time : t -> float
