(** Scenario interpreter: build the simulation, apply the event schedule, run
    to the horizon, and package everything the metrics and property layers
    need. A run is a pure function of its scenario (including the seed). *)

open Ssba_core.Types

type observation = {
  obs_node : node_id;
  obs_g : general;  (** the (logical) General whose instance fired the event *)
  obs : Ssba_core.Ss_byz_agree.observation;
  obs_rt : float;  (** engine real time at which the event fired *)
}

(** What became of a scheduled proposal, evaluated at its [at] time.
    [No_general] means the target General is Byzantine or has no correct
    node, so no protocol code ran at all. *)
type proposal_outcome =
  | Accepted
  | Refused of Ssba_core.Node.propose_error
  | No_general

type result = {
  scenario : Scenario.t;
  returns : return_info list;  (** correct-node returns, in rt order *)
  observations : observation list;
      (** chronological; empty unless [record_observations] was set *)
  correct : node_id list;
      (** ids running the correct protocol by the end of the run — the
          scenario's correct cast plus every node a [Reform] event rejoined *)
  clocks : Ssba_sim.Clock.t array;  (** per node id, Byzantine slots included *)
  nodes : (node_id * Ssba_core.Node.t) list;
      (** the correct protocol nodes, reformed rejoiners last *)
  proposal_results : (Scenario.proposal * proposal_outcome) list;
      (** in chronological ([at]) order *)
  engine_stats : Ssba_sim.Engine.stats;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  messages_duplicated : int;  (** fault-injected second copies *)
  messages_in_flight : int;  (** scheduled but undelivered at the horizon *)
  messages_by_kind : (string * int) list;
      (** frame kinds when the scenario runs a transport (acks included) *)
  transport_retransmits : int;  (** 0 when no transport runs *)
  transport_dup_suppressed : int;
  transport_expired : int;
  transport_retries_exhausted : int;
      (** frames the transport abandoned at the retry cap — previously a
          silent give-up *)
  metrics : Ssba_sim.Metrics.t;
      (** the engine's registry: [net.*], [engine.*], [node<i>.*] *)
  trace : Ssba_sim.Trace.t;
}

(** Hook handed to a scenario driver (e.g. the {!Ssba_service} loop) before
    the engine runs: generate proposals at runtime (recorded in
    [proposal_results] like scheduled ones, [at] = engine time of the call)
    and observe every correct-node return, reformed rejoiners included. *)
type driver = {
  drv_engine : Ssba_sim.Engine.t;
  drv_params : Ssba_core.Params.t;
  drv_propose : g:int -> v:value -> proposal_outcome;
      (** [g] is a logical General id: node [g mod n], channel [g / n] *)
  drv_live : unit -> (node_id * Ssba_core.Node.t) list;
  drv_on_return : (return_info -> unit) -> unit;
}

(** Run a scenario to its horizon. [on_driver], if given, receives the
    {!driver} hook after setup and before the engine runs. *)
val run : ?on_driver:(driver -> unit) -> Scenario.t -> result

(** Same run, paced against the wall clock at [speed] virtual seconds per
    wall second (live-demo mode); results are identical to {!run}. *)
val run_paced : ?speed:float -> Scenario.t -> result
