lib/harness/metrics.mli: Runner Ssba_core
