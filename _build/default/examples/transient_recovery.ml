(* Self-stabilization: recover from an arbitrary corrupted state.

   At time 0 every node's protocol memory is overwritten with garbage —
   fake received messages with past and future timestamps, bogus candidate
   values and anchors, half-finished agreement instances — and 200 forged
   messages are put in flight. This models the aftermath of a transient
   fault that violated every assumption (more than f faulty nodes, forged
   senders, lost synchrony).

   From time 0 the network behaves correctly again. The paper (Corollary 5)
   proves the system is stable after Delta_stb = 2 * Delta_reset: garbage
   decays, rate-limiting variables expire, and any agreement initiated after
   that point works. The example proposes the same value at increasing
   delays after the fault and reports when agreement starts succeeding.

     dune exec examples/transient_recovery.exe *)

module H = Ssba_harness
module Core = Ssba_core

let () =
  let n = 7 in
  let params = Core.Params.default n in
  let dstb = params.Core.Params.delta_stb in
  Fmt.pr "Delta_stb (proven stabilization time) = %.3f s@." dstb;
  List.iter
    (fun frac ->
      let t_p = frac *. dstb in
      let ok = ref 0 in
      let runs = 10 in
      for seed = 1 to runs do
        let sc =
          H.Scenario.default ~name:"recovery" ~seed:(seed * 37)
            ~events:
              [
                H.Scenario.Scramble
                  { at = 0.0; values = [ "x"; "y"; "go" ]; net_garbage = 200 };
              ]
            ~proposals:[ { g = seed mod n; v = "go"; at = t_p } ]
            ~horizon:(t_p +. (4.0 *. params.Core.Params.delta_agr))
            params
        in
        let res = H.Runner.run sc in
        let recovered =
          List.exists
            (fun (e : H.Metrics.episode) ->
              H.Metrics.first_return e >= t_p
              && H.Checks.validity ~correct:res.H.Runner.correct ~v:"go" e)
            (H.Metrics.episodes res)
        in
        if recovered then incr ok
      done;
      Fmt.pr "propose at %.2f x Delta_stb: %2d/%d runs reach unanimous agreement@."
        frac !ok runs)
    [ 0.1; 0.25; 0.5; 0.75; 1.0; 1.25 ]
