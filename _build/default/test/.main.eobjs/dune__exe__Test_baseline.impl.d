test/test_baseline.ml: Alcotest Array Cluster Float Helpers List Node Params Ssba_baseline Ssba_core Ssba_net Ssba_sim Types
