test/test_delay.ml: Alcotest Fmt Helpers Ssba_net Ssba_sim String
