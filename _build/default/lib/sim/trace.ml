(* Structured run traces.

   Components record (real-time, node, kind, detail) entries; tests and the
   CLI filter and pretty-print them. Recording can be disabled wholesale for
   large benchmark runs, where the trace would dominate memory. *)

type entry = {
  time : float;  (* simulator real time *)
  node : int;  (* -1 for system/network events *)
  kind : string;
  detail : string;
}

type t = { mutable entries : entry list; mutable enabled : bool; mutable count : int }

let create ?(enabled = true) () = { entries = []; enabled; count = 0 }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled

let record t ~time ~node ~kind ~detail =
  if t.enabled then begin
    t.entries <- { time; node; kind; detail } :: t.entries;
    t.count <- t.count + 1
  end

let clear t =
  t.entries <- [];
  t.count <- 0

let count t = t.count

(* Entries in chronological order. *)
let to_list t = List.rev t.entries

let filter ?node ?kind t =
  let keep e =
    (match node with None -> true | Some n -> e.node = n)
    && match kind with None -> true | Some k -> e.kind = k
  in
  List.filter keep (to_list t)

let pp_entry ppf e =
  if e.node < 0 then Fmt.pf ppf "[%10.6f]  <sys>  %-12s %s" e.time e.kind e.detail
  else Fmt.pf ppf "[%10.6f]  n%-4d  %-12s %s" e.time e.node e.kind e.detail

let pp ppf t =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) (to_list t)
