test/test_trace.ml: Alcotest Fmt Helpers List Printf Ssba_sim String
