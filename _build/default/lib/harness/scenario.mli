(** Declarative scenario descriptions.

    A scenario is a recipe for one simulation: protocol constants, clock and
    delay models, the Byzantine cast, the proposals correct Generals make and
    a schedule of environment events. {!Runner.run} interprets it
    deterministically from the seed. *)

open Ssba_core.Types

type role = Correct | Byzantine of Ssba_adversary.Behavior.t

type event =
  | Crash of { node : node_id; at : float }
      (** mute the node's sends from real time [at] *)
  | Recover of { node : node_id; at : float }
  | Scramble of { at : float; values : value list; net_garbage : int }
      (** transient fault: corrupt all correct-node protocol state and put
          [net_garbage] forged messages in flight, drawn over [values] *)
  | Drop_prob of { at : float; p : float }
      (** make the network lossy (incoherent period) *)
  | Partition of { at : float; blocked : node_id list * node_id list }
      (** block messages between the two groups *)
  | Heal of { at : float }  (** lift partition and drops *)

type proposal = { g : node_id; v : value; at : float }
(** A correct General [g] proposes [v] at real time [at]. *)

type clocks =
  | Perfect  (** all clocks read real time *)
  | Drifting of { rho : float; max_offset : float }
      (** per-node random rate in [1 ± rho] and offset in [± max_offset] *)

type t = {
  name : string;
  params : Ssba_core.Params.t;
  seed : int;
  delay : Ssba_net.Delay.t;
  clocks : clocks;
  roles : (node_id * role) list;  (** unlisted ids default to [Correct] *)
  proposals : proposal list;
  events : event list;
  horizon : float;  (** stop the engine at this real time *)
  record_trace : bool;
  record_observations : bool;
      (** collect fine-grained protocol events for {!Invariants} *)
}

val role_of : t -> node_id -> role

(** Ids running the correct protocol, ascending. *)
val correct_ids : t -> node_id list

(** Ids running a Byzantine behaviour, ascending. *)
val byzantine_ids : t -> node_id list

(** Build a scenario with sensible defaults: random delays within the bound,
    small drift, no faults, 5 s horizon, nothing recorded. *)
val default :
  ?name:string ->
  ?seed:int ->
  ?horizon:float ->
  ?record_trace:bool ->
  ?record_observations:bool ->
  ?delay:Ssba_net.Delay.t ->
  ?clocks:clocks ->
  ?roles:(node_id * role) list ->
  ?proposals:proposal list ->
  ?events:event list ->
  Ssba_core.Params.t ->
  t
