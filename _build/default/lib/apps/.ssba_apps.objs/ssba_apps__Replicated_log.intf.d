lib/apps/replicated_log.mli: Ssba_core
