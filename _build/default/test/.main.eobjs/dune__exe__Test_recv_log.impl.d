test/test_recv_log.ml: Alcotest Gen Helpers List QCheck Ssba_core
