test/test_eig.ml: Alcotest Array Float Helpers List Params Ssba_baseline Ssba_core Ssba_net Ssba_sim
