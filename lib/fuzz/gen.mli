(** Seeded random scenario generation.

    Every draw comes from one {!Ssba_sim.Rng.t}, so a generated spec is a
    pure function of the generator's seed and the config. Generated specs
    always satisfy {!Spec.validate}: casts respect [f < n/3], events are
    sorted and in-horizon, and every disruption (crash, loss, partition) is
    paired with a recovery so the run re-enters the paper's coherent model
    before the horizon — the self-stabilization claim under test. *)

type config = {
  min_n : int;
  max_n : int;
  max_cast : int;  (** cap on Byzantine count (further capped by [f]) *)
  max_proposals : int;
  max_disruptions : int;  (** crash/drop/partition/scramble groups *)
  values : Ssba_core.Types.value list;  (** payload vocabulary *)
  disruptions : bool;  (** allow transient environment events at all *)
  transport : Ssba_transport.Transport.config option;
      (** run every generated spec over the reliable transport *)
  max_link_faults : int;
      (** cap on persistent [Loss]/[Duplicate]/[Reorder] events; only
          generated when [transport] is set (they never heal, so without the
          transport the run would leave the paper's model permanently) *)
  chaos : bool;
      (** churn tier: replace the random proposal/event draws with a
          {!Ssba_harness.Chaos} schedule (random pattern, fixed episode
          count), so every spec is a continuous-churn run whose recovery
          times the per-interval oracle measures and bounds *)
  r_slack : Ssba_core.Params.r_slack;
      (** block R gate variant stamped on every generated spec *)
  edge_delays : bool;
      (** boundary sampling: admit the {!Spec.Edge} delay model (atoms that
          divide the 3d/4d/5d comparison boundaries exactly) and the
          {!Ssba_adversary.Catalog.Gate_edge} entry into the draw menus.
          [false] reproduces the historical RNG draw sequence bit-for-bit —
          the legacy corpus digests. *)
  service : bool;
      (** overload tier: stamp every spec with a generated
          {!Ssba_service.Workload} (open-loop arrivals with bursts,
          watermarks, bounded retry queue). Off adds no draws, so the other
          tiers' corpus digests are untouched. *)
}

val default_config : config

(** [default_config] plus a transport and persistent link faults (loss up to
    p = 0.3, duplication, reordering), transient disruptions off — every
    spec stays in the oracle's strictest class, so Validity/Termination are
    checked under permanently degraded links. *)
val lossy_config : config

(** The churn tier: [chaos] on, clusters capped at n = 7 so the repeated
    [Delta_stb]-long episodes stay cheap. *)
val chaos_config : config

(** The overload tier: [service] on — open-loop arrival bursts against the
    admission-controlled service — over a transport with persistent link
    faults, plus at most one transient churn group; no scheduled
    proposals. *)
val overload_config : config

(** Draw one spec. *)
val spec : Ssba_sim.Rng.t -> config -> Spec.t

(** The smallest horizon under which {!Oracle} verdicts for this spec are
    sound: last activity, plus the stabilization allowance when the spec has
    events, plus the termination window. Generation and horizon-shrinking
    both use this. *)
val min_horizon : Spec.t -> float
