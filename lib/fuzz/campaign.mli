(** Fuzzing campaigns: generate–run–judge loops with deterministic
    addressing and a corpus digest.

    Scenario [i] of a campaign with seed [s] is
    [Gen.spec (rng_of_iteration ~seed:s i) gen], independent of every other
    iteration — any failure reproduces from [(seed, i)] alone, or from the
    saved replay file. Without a time budget, a campaign is a pure function
    of its config: two runs produce the same [corpus_digest]. *)

type config = {
  seed : int;
  runs : int;
  time_budget : float option;  (** wall-clock seconds; [None] = unlimited *)
  gen : Gen.config;
  oracle : Oracle.config;
  shrink : bool;  (** minimize failures before reporting *)
  max_shrink_attempts : int;
}

val default_config : config

type failure_case = {
  index : int;  (** iteration number within the campaign *)
  spec : Spec.t;
  report : Oracle.report;
  shrunk : (Spec.t * Oracle.report * Shrink.stats) option;
}

type summary = {
  executed : int;  (** scenarios actually run (time budget may cut short) *)
  failed : failure_case list;  (** chronological *)
  corpus_digest : string;
      (** hex digest over every executed run's result digest *)
}

(** The RNG that generates iteration [i]. *)
val rng_of_iteration : seed:int -> int -> Ssba_sim.Rng.t

(** Rebuild scenario [i] of campaign [seed] (the replay-from-coordinates
    path). *)
val spec_of_iteration : seed:int -> gen:Gen.config -> int -> Spec.t

(** Run a campaign. [progress] is called after every scenario. *)
val run :
  ?progress:(int -> Spec.t -> Oracle.report -> unit) -> config -> summary
