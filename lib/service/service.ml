(* Recurrent-agreement service loop.

   The driver turns one Runner execution into a long-lived service: an
   open-loop generator submits jobs against rotating logical Generals, an
   admission controller in front of the session tables sheds load near
   capacity, refused or timed-out jobs retry with capped exponential backoff
   from a bounded queue, and an overload detector flips the whole service
   into a degraded (admit-nothing-new) mode until the cluster drains below
   the low watermark.

   Everything here is client-side policy: the protocol core underneath is
   untouched, and the hard backstop remains Node's admission mode (a full
   session table refuses the General's own proposal with [At_capacity]
   instead of evicting). Observability goes through [service.*] metrics and
   the typed [Service_*] trace events; neither is part of the result digest,
   so attaching the service to a scenario changes no pinned digests. *)

module E = Ssba_sim.Engine
module Rng = Ssba_sim.Rng
module Tr = Ssba_sim.Trace
module M = Ssba_sim.Metrics
module P = Ssba_core.Params
module Node = Ssba_core.Node
module St = Ssba_core.Session_table
module R = Ssba_harness.Runner
module Ps = Ssba_pulse.Pulse_sync
module W = Workload
open Ssba_core.Types

type report = {
  arrivals : int;
  admitted : int;
  decided : int;
  timed_out : int;
  shed : int;
  shed_degraded : int;
  shed_watermark : int;
  shed_queue_full : int;
  retries : int;
  gave_up : int;
  no_general : int;
  p50_latency : float;
  p99_latency : float;
  max_latency : float;
  throughput : float;  (* decided jobs per second of arrival window *)
  peak_queue : int;
  peak_live_frac : float;
  degraded_episodes : (float * float option) list;  (* chronological *)
  max_degraded_span : float;  (* longest closed enter->exit span *)
  unresolved_degraded : int;  (* episodes still open at the horizon *)
  pulses : int;  (* cycles fired by every pulse layer *)
  pulse_skew : float;  (* worst same-cycle real-time spread *)
}

(* One client job. [g] rotates to the next logical General on every retry so
   a Byzantine or crashed General cannot blackhole a job forever. *)
type job = {
  id : int;
  mutable g : int;
  mutable attempts : int;  (* proposals actually submitted *)
  mutable submitted : float;  (* engine time of the latest accepted attempt *)
}

type t = {
  drv : R.driver;
  w : W.t;
  eng : E.t;
  params : P.t;
  rng : Rng.t;
  g_lo : int;  (* service rotation floor: past channel 0 when pulses run *)
  n_logical : int;
  window : float;  (* per-attempt decision timeout *)
  outstanding : (string, job) Hashtbl.t;  (* accepted value -> job *)
  pulse_layers : (node_id * Ps.t) list;
  mutable next_job : int;
  mutable next_g : int;
  mutable queue_depth : int;
  mutable degraded : bool;
  mutable episodes : (float * float option) list;  (* newest first *)
  mutable latencies : float list;  (* newest first *)
  mutable peak_queue : int;
  mutable peak_live_frac : float;
  mutable arrivals : int;
  mutable admitted : int;
  mutable decided : int;
  mutable timed_out : int;
  mutable shed_degraded : int;
  mutable shed_watermark : int;
  mutable shed_queue_full : int;
  mutable retries : int;
  mutable gave_up : int;
  mutable no_general : int;
  c_admitted : M.counter;
  c_shed : M.counter;
  c_queued : M.counter;
}

let value_of_attempt job = Printf.sprintf "svc-%d-a%d" job.id job.attempts

let is_service_value v =
  String.length v >= 4 && String.sub v 0 4 = "svc-"

(* Worst per-node live/capacity fraction, and the matching live count — the
   overload signal. The max (not the mean) is what matters: one saturated
   table refuses its Generals' proposals no matter how idle the rest are. *)
let load t =
  List.fold_left
    (fun (frac, live) (_, node) ->
      let s = Node.session_stats node in
      let f = float_of_int s.St.live /. float_of_int s.St.capacity in
      (Float.max frac f, max live s.St.live))
    (0.0, 0) (t.drv.R.drv_live ())

let record t ev = E.record t.eng ~node:(-1) ev

let note_load t =
  let frac, live = load t in
  if frac > t.peak_live_frac then t.peak_live_frac <- frac;
  (frac, live)

let enter_degraded t live =
  t.degraded <- true;
  t.episodes <- (E.now t.eng, None) :: t.episodes;
  record t (Tr.Service_mode { degraded = true; live })

let exit_degraded t live =
  t.degraded <- false;
  (match t.episodes with
  | (at, None) :: rest -> t.episodes <- (at, Some (E.now t.eng)) :: rest
  | _ -> ());
  record t (Tr.Service_mode { degraded = false; live })

let shed t ~g ~reason =
  (match reason with
  | "degraded" -> t.shed_degraded <- t.shed_degraded + 1
  | "watermark" -> t.shed_watermark <- t.shed_watermark + 1
  | _ -> t.shed_queue_full <- t.shed_queue_full + 1);
  M.incr t.c_shed;
  record t (Tr.Service_shed { g; reason })

(* Capped exponential backoff with deterministic jitter, floored above
   [Delta_0] so a retry against the same logical General is never refused on
   IG1 spacing alone. *)
let backoff t job =
  let base = t.w.W.retry_base *. (2.0 ** float_of_int (min 6 (job.attempts - 1))) in
  let jittered = base +. Rng.float t.rng (0.5 *. base) in
  Float.max jittered (1.05 *. t.params.P.delta_0)

let rec submit t job =
  job.attempts <- job.attempts + 1;
  if job.attempts > 1 then begin
    t.retries <- t.retries + 1;
    (* rotate away from the General that just failed us *)
    job.g <- t.g_lo + ((job.g - t.g_lo + 1) mod (t.n_logical - t.g_lo))
  end;
  let v = value_of_attempt job in
  match t.drv.R.drv_propose ~g:job.g ~v with
  | R.Accepted ->
      t.admitted <- t.admitted + 1;
      M.incr t.c_admitted;
      job.submitted <- E.now t.eng;
      let _, live = note_load t in
      record t (Tr.Service_admit { g = job.g; live });
      Hashtbl.replace t.outstanding v job;
      E.schedule_after t.eng ~delay:t.window (fun () ->
          if Hashtbl.mem t.outstanding v then begin
            Hashtbl.remove t.outstanding v;
            t.timed_out <- t.timed_out + 1;
            attempt_failed t job
          end)
  | R.No_general ->
      t.no_general <- t.no_general + 1;
      attempt_failed t job
  | R.Refused _ -> attempt_failed t job

(* A failed attempt parks in the bounded retry queue (or is dropped when the
   budget or the queue is exhausted). Parked jobs hold their queue slot for
   the whole backoff; a retry firing in degraded mode stays parked and polls
   again — degraded mode admits nothing new, including retries. *)
and attempt_failed t job =
  if job.attempts >= t.w.W.retry_max then t.gave_up <- t.gave_up + 1
  else if t.queue_depth >= t.w.W.queue_cap then shed t ~g:job.g ~reason:"queue-full"
  else begin
    t.queue_depth <- t.queue_depth + 1;
    if t.queue_depth > t.peak_queue then t.peak_queue <- t.queue_depth;
    M.incr t.c_queued;
    record t (Tr.Service_queue { g = job.g; depth = t.queue_depth });
    arm_retry t job (backoff t job)
  end

and arm_retry t job delay =
  E.schedule_after t.eng ~delay (fun () ->
      if t.degraded then arm_retry t job (Float.max t.w.W.retry_base t.params.P.d)
      else begin
        t.queue_depth <- t.queue_depth - 1;
        record t (Tr.Service_queue { g = job.g; depth = t.queue_depth });
        submit t job
      end)

let arrival t =
  t.arrivals <- t.arrivals + 1;
  let g = t.next_g in
  t.next_g <- t.g_lo + ((t.next_g - t.g_lo + 1) mod (t.n_logical - t.g_lo));
  if t.degraded then shed t ~g ~reason:"degraded"
  else
    let frac, live = note_load t in
    if frac >= t.w.W.high_watermark then begin
      enter_degraded t live;
      shed t ~g ~reason:"watermark"
    end
    else begin
      let job = { id = t.next_job; g; attempts = 0; submitted = 0.0 } in
      t.next_job <- t.next_job + 1;
      submit t job
    end

let exp_gap t rate = -.log (1.0 -. Rng.float t.rng 1.0) /. rate

let rec arm_arrival t at =
  if at <= t.w.W.stop_at then
    E.schedule t.eng ~at (fun () ->
        arrival t;
        arm_arrival t (E.now t.eng +. exp_gap t (W.rate t.w.W.arrivals)))

let arm_bursts t =
  match t.w.W.arrivals with
  | W.Poisson _ -> ()
  | W.Bursty { burst; every; _ } ->
      let rec arm at =
        if at <= t.w.W.stop_at then
          E.schedule t.eng ~at (fun () ->
              for _ = 1 to burst do
                arrival t
              done;
              arm (E.now t.eng +. every))
      in
      arm (t.w.W.start_at +. every)

(* The overload detector's recovery edge: poll every [d] (the same cadence
   as the nodes' cleanup ticks, which are what actually free table slots). *)
let rec arm_tick t =
  E.schedule_after t.eng ~delay:t.params.P.d (fun () ->
      let frac, live = note_load t in
      if t.degraded && frac <= t.w.W.low_watermark then exit_degraded t live;
      arm_tick t)

let on_return t (r : return_info) =
  match r.outcome with
  | Decided v when is_service_value v -> (
      match Hashtbl.find_opt t.outstanding v with
      | None -> ()
      | Some job ->
          Hashtbl.remove t.outstanding v;
          t.decided <- t.decided + 1;
          t.latencies <- (r.rt_ret -. job.submitted) :: t.latencies)
  | Decided _ | Aborted -> ()

let attach ~seed (w : W.t) (drv : R.driver) =
  (match W.validate w with
  | Ok () -> ()
  | Error e -> invalid_arg ("Service.attach: " ^ e));
  let params = drv.R.drv_params in
  let eng = drv.R.drv_engine in
  let n_logical = params.P.n * w.W.channels in
  let g_lo =
    (* with a pulse layer running, keep service traffic off channel 0 so
       job retries never collide with pulse proposals on IG1 spacing *)
    if w.W.pulse_cycles > 0 && w.W.channels > 1 then params.P.n else 0
  in
  let metrics = E.metrics eng in
  let pulse_layers =
    if w.W.pulse_cycles > 0 then
      List.map
        (fun (id, node) ->
          let cycle_len = 1.25 *. Ps.min_cycle params in
          let p = Ps.create ~node ~cycle_len () in
          Ps.start p;
          (id, p))
        (drv.R.drv_live ())
    else []
  in
  let t =
    {
      drv;
      w;
      eng;
      params;
      rng = Rng.create (seed lxor 0x53525643);
      g_lo;
      n_logical;
      window = params.P.delta_agr +. (10.0 *. params.P.d);
      outstanding = Hashtbl.create 64;
      pulse_layers;
      next_job = 0;
      next_g = g_lo;
      queue_depth = 0;
      degraded = false;
      episodes = [];
      latencies = [];
      peak_queue = 0;
      peak_live_frac = 0.0;
      arrivals = 0;
      admitted = 0;
      decided = 0;
      timed_out = 0;
      shed_degraded = 0;
      shed_watermark = 0;
      shed_queue_full = 0;
      retries = 0;
      gave_up = 0;
      no_general = 0;
      c_admitted = M.counter metrics "service.admitted";
      c_shed = M.counter metrics "service.shed";
      c_queued = M.counter metrics "service.queued";
    }
  in
  drv.R.drv_on_return (on_return t);
  arm_arrival t w.W.start_at;
  arm_bursts t;
  arm_tick t;
  t

let percentile sorted q =
  match Array.length sorted with
  | 0 -> 0.0
  | len -> sorted.(int_of_float (Float.ceil (q *. float_of_int (len - 1))))

let report (t : t) : report =
  let lats = Array.of_list t.latencies in
  Array.sort compare lats;
  let episodes = List.rev t.episodes in
  let max_span =
    List.fold_left
      (fun acc -> function
        | at, Some until -> Float.max acc (until -. at)
        | _, None -> acc)
      0.0 episodes
  in
  let pulses, pulse_skew =
    match t.pulse_layers with
    | [] -> (0, 0.0)
    | layers ->
        let per_cycle : (int, float * float * int) Hashtbl.t = Hashtbl.create 256 in
        List.iter
          (fun (_, p) ->
            List.iter
              (fun (pl : Ps.pulse) ->
                let lo, hi, k =
                  Option.value
                    (Hashtbl.find_opt per_cycle pl.Ps.cycle)
                    ~default:(pl.Ps.rt, pl.Ps.rt, 0)
                in
                Hashtbl.replace per_cycle pl.Ps.cycle
                  (Float.min lo pl.Ps.rt, Float.max hi pl.Ps.rt, k + 1))
              (Ps.pulses p))
          layers;
        let fired =
          List.fold_left
            (fun acc (_, p) -> min acc (List.length (Ps.pulses p)))
            max_int layers
        in
        let skew =
          Hashtbl.fold
            (fun _ (lo, hi, k) acc ->
              if k >= 2 then Float.max acc (hi -. lo) else acc)
            per_cycle 0.0
        in
        (fired, skew)
  in
  {
    arrivals = t.arrivals;
    admitted = t.admitted;
    decided = t.decided;
    timed_out = t.timed_out;
    shed = t.shed_degraded + t.shed_watermark + t.shed_queue_full;
    shed_degraded = t.shed_degraded;
    shed_watermark = t.shed_watermark;
    shed_queue_full = t.shed_queue_full;
    retries = t.retries;
    gave_up = t.gave_up;
    no_general = t.no_general;
    p50_latency = percentile lats 0.5;
    p99_latency = percentile lats 0.99;
    max_latency = percentile lats 1.0;
    throughput = float_of_int t.decided /. (t.w.W.stop_at -. t.w.W.start_at);
    peak_queue = t.peak_queue;
    peak_live_frac = t.peak_live_frac;
    degraded_episodes = episodes;
    max_degraded_span = max_span;
    unresolved_degraded =
      List.length (List.filter (fun (_, e) -> e = None) episodes);
    pulses;
    pulse_skew;
  }

let run ?seed (w : W.t) (sc : Ssba_harness.Scenario.t) =
  let seed = match seed with Some s -> s | None -> sc.Ssba_harness.Scenario.seed in
  let svc = ref None in
  let res = R.run ~on_driver:(fun drv -> svc := Some (attach ~seed w drv)) sc in
  match !svc with
  | Some t -> (res, report t)
  | None -> invalid_arg "Service.run: runner never invoked the driver"

let pp_report ppf (r : report) =
  Fmt.pf ppf
    "@[<v>arrivals %d  admitted %d  decided %d  timed-out %d@ shed %d \
     (degraded %d, watermark %d, queue-full %d)  retries %d  gave-up %d  \
     no-general %d@ latency p50 %.4fs  p99 %.4fs  max %.4fs  throughput \
     %.1f/s@ peak queue %d  peak live %.0f%%  degraded episodes %d \
     (unresolved %d, max span %.3fs)@ pulses %d  pulse skew %.5fs@]"
    r.arrivals r.admitted r.decided r.timed_out r.shed r.shed_degraded
    r.shed_watermark r.shed_queue_full r.retries r.gave_up r.no_general
    r.p50_latency r.p99_latency r.max_latency r.throughput r.peak_queue
    (100.0 *. r.peak_live_frac)
    (List.length r.degraded_episodes)
    r.unresolved_degraded r.max_degraded_span r.pulses r.pulse_skew
