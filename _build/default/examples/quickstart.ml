(* Quickstart: one self-stabilizing Byzantine agreement among 7 nodes.

   Build a deterministic simulation (engine + bounded-delay network +
   drifting clocks), create 7 protocol nodes, have node 0 act as the General
   and propose a value, run, and print what every node decided.

     dune exec examples/quickstart.exe *)

module Sim = Ssba_sim
module Net = Ssba_net
module Core = Ssba_core

let () =
  let n = 7 in
  (* All protocol constants derive from n, f and the delay/drift bounds;
     [default] picks f = floor((n-1)/3) = 2 and millisecond-scale delays. *)
  let params = Core.Params.default n in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create 2024 in
  (* Messages take between 5% and 100% of the delay bound delta. *)
  let delay =
    Net.Delay.uniform ~lo:(0.05 *. params.Core.Params.delta)
      ~hi:params.Core.Params.delta
  in
  let net = Net.Network.create ~engine ~n ~delay ~rng:(Sim.Rng.split rng) () in
  (* Each node gets its own hardware clock: rate within 1 +- rho, arbitrary
     offset — the protocol only ever measures local intervals. *)
  let nodes =
    Array.init n (fun id ->
        let clock =
          Sim.Clock.random (Sim.Rng.split rng) ~rho:params.Core.Params.rho
            ~max_offset:1.0
        in
        Core.Node.create ~id ~params ~clock ~engine ~net ())
  in
  (* Node 0 is the General: broadcast (Initiator, 0, "launch"). *)
  (match Core.Node.propose nodes.(0) "launch" with
  | Ok () -> print_endline "node 0 proposes \"launch\""
  | Error e -> failwith (Core.Node.string_of_propose_error e));
  let _ = Sim.Engine.run ~until:1.0 engine in
  (* Every correct node returns (decides or aborts) within Delta_agr. *)
  Array.iter
    (fun node ->
      List.iter
        (fun (r : Core.Types.return_info) ->
          Fmt.pr "node %d: %a (at real time %.3f ms)@." r.Core.Types.node
            Core.Types.pp_outcome r.Core.Types.outcome
            (1000.0 *. r.Core.Types.rt_ret))
        (Core.Node.returns node))
    nodes
