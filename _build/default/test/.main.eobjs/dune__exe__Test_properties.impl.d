test/test_properties.ml: Array Gen Helpers List Params QCheck Ssba_adversary Ssba_core Ssba_harness Ssba_net Types
