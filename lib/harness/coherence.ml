(* Coherence timeline.

   Derives, from a scenario's event schedule and cast alone, the maximal
   intervals of real time during which §2's coherence assumptions hold. The
   walk maintains the incoherence state the events install — crashed
   correct/reformed nodes, transient drop, partition, delay surge, unmasked
   persistent link faults — and opens/closes intervals on every transition.
   Scramble and an effective Reform are point disruptions: the system is
   coherent before and after, but all state is suspect, so the current
   interval closes and a fresh one (with [after_disruption] set) opens at the
   same instant. *)

open Ssba_core.Types

type interval = {
  t_start : float;
  t_end : float;
  after_disruption : bool;
  correct : node_id list;
}

let pp_interval ppf i =
  Fmt.pf ppf "[%.3f, %.3f)%s correct={%s}" i.t_start i.t_end
    (if i.after_disruption then " after-disruption" else "")
    (String.concat "," (List.map string_of_int i.correct))

let intervals (sc : Scenario.t) =
  let masked = sc.Scenario.transport <> None in
  let base_correct = Scenario.correct_ids sc in
  let events =
    List.stable_sort
      (fun a b -> compare (Scenario.event_time a) (Scenario.event_time b))
      sc.Scenario.events
  in
  (* Mutable incoherence state, updated event by event. *)
  let crashed = Hashtbl.create 8 in
  let reformed = Hashtbl.create 8 in
  let tdrop = ref 0.0 in
  let partitioned = ref false in
  let surge = ref 1.0 in
  let loss = ref 0.0 in
  let dup = ref 0.0 in
  let reorder = ref 0.0 in
  let is_correct id = List.mem id base_correct || Hashtbl.mem reformed id in
  let coherent () =
    (not (Hashtbl.fold (fun id () acc -> acc || is_correct id) crashed false))
    && !tdrop = 0.0 && (not !partitioned) && !surge <= 1.0
    && (masked || (!loss = 0.0 && !dup = 0.0 && !reorder = 0.0))
  in
  let correct_now () =
    List.sort_uniq compare
      (base_correct @ Hashtbl.fold (fun id () acc -> id :: acc) reformed [])
  in
  (* [apply] returns true when the event is a point disruption: state was and
     stays coherent, but the interval must split anyway. *)
  let apply = function
    | Scenario.Crash { node; _ } ->
        Hashtbl.replace crashed node ();
        false
    | Scenario.Recover { node; _ } ->
        Hashtbl.remove crashed node;
        false
    | Scenario.Scramble _ -> true
    | Scenario.Reform { node; _ } ->
        let effective =
          (match Scenario.role_of sc node with
          | Scenario.Correct -> false
          | Scenario.Byzantine _ -> true)
          && not (Hashtbl.mem reformed node)
        in
        if effective then Hashtbl.replace reformed node ();
        effective
    | Scenario.Drop_prob { p; _ } ->
        tdrop := p;
        false
    | Scenario.Partition _ ->
        partitioned := true;
        false
    | Scenario.Heal _ ->
        tdrop := 0.0;
        partitioned := false;
        false
    | Scenario.Heal_partition _ ->
        partitioned := false;
        false
    | Scenario.Heal_drop _ ->
        tdrop := 0.0;
        false
    | Scenario.Delay_surge { factor; _ } ->
        surge := factor;
        false
    | Scenario.Delay_restore _ ->
        surge := 1.0;
        false
    | Scenario.Loss { p; _ } ->
        loss := p;
        false
    | Scenario.Duplicate { p; _ } ->
        dup := p;
        false
    | Scenario.Reorder { prob; _ } ->
        reorder := prob;
        false
  in
  let out = ref [] in
  (* Some (start, after_disruption) while coherent. *)
  let cur = ref (Some (0.0, false)) in
  let close ~correct t =
    match !cur with
    | Some (start, after) when t > start ->
        out :=
          { t_start = start; t_end = t; after_disruption = after; correct }
          :: !out;
        cur := None
    | Some _ -> cur := None (* zero-length: drop *)
    | None -> ()
  in
  List.iter
    (fun e ->
      let t = Scenario.event_time e in
      let pre = coherent () in
      (* The interval that closes here ran under the correct set in force
         before the event — a Reform grows the set only from its own time. *)
      let correct = correct_now () in
      let point = apply e in
      let post = coherent () in
      match (pre, post) with
      | true, true ->
          if point then begin
            close ~correct t;
            cur := Some (t, true)
          end
      | true, false -> close ~correct t
      | false, true -> cur := Some (t, true)
      | false, false -> ())
    events;
  close ~correct:(correct_now ()) sc.Scenario.horizon;
  List.rev !out

let interval_at ivs t =
  List.find_opt (fun i -> i.t_start <= t && t < i.t_end) ivs
