(** First-class, enumerable descriptions of the {!Strategies} zoo.

    {!Behavior.t} values are opaque closures; scenario generators and replay
    files need data instead. A catalog entry is a plain constructor tree that
    can be drawn at random, serialized, compared and shrunk, and turned into
    the corresponding behaviour once the protocol constants are known. All
    durations are expressed in multiples of [d] so one entry scales with any
    parameter set. *)

open Ssba_core.Types

type t =
  | Silent
  | Spam of { period_d : float; values : value list }
  | Mimic of { delay_d : float }
  | Two_faced_general of { v1 : value; v2 : value; at : float }
  | Stagger_general of { v : value; at : float; gap_d : float }
  | Partial_general of { v : value; at : float; targets : node_id list }
  | Equivocator of { v1 : value; v2 : value }
  | Flip_flop of { period_d : float; values : value list }
  | Gate_edge of { v : value; at : float }
      (** boundary-timing General ({!Strategies.gate_edge}): paces the IA
          stages so I-accepts land exactly on block R's gate boundary.
          {!generate} draws it only under [~edges:true]. *)
  | Scripted of { steps : (float * node_id option * message) list }
      (** a fixed absolute-time send transcript ([None] dst = broadcast):
          the model checker's counterexample export. {!generate} never
          draws it. *)

(** The strategy's name, matching {!Behavior.name} of its instantiation. *)
val name : t -> string

(** Instantiate against the run's [d = (delta + pi)(1 + rho)]. *)
val to_behavior : d:float -> t -> Behavior.t

(** Real times at which the entry acts on its own schedule ([at] fields);
    empty for purely reactive/periodic strategies. Generators use this to
    keep casts inside the active window. *)
val activity_times : t -> float list

(** Strictly simpler variants, in decreasing aggressiveness, ending at
    {!Silent}; [simplify Silent = []]. Shrinkers walk this. *)
val simplify : t -> t list

(** Draw a random entry over [values]; General-role attacks ([Two_faced],
    [Stagger], [Partial], [Gate_edge]) place their initiation time uniformly
    in [\[at_lo, at_hi\]] and their targets within [\[0, n)]. Without
    [~edges:true] the menu (and hence the RNG draw sequence) is the
    historical 8-way dispatch, bit-identical for corpus reproduction;
    with it, [Gate_edge] joins as a 9th equally-likely entry. *)
val generate :
  ?edges:bool -> Ssba_sim.Rng.t -> values:value list -> at_lo:float ->
  at_hi:float -> n:int -> t

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
