(* Service-mode workload descriptions.

   A workload is the fully-data recipe for one recurrent-agreement service
   run: the open-loop arrival process, the admission-control knobs (queue
   bound, load watermarks), the client retry policy, and the optional pulse
   layer riding on the same cluster. Like Spec, it is plain data with a
   hand-rolled JSON codec over Ssba_sim.Json, so a service spec round-trips
   losslessly and replays byte-for-byte. *)

module J = Ssba_sim.Json

type arrivals =
  | Poisson of { rate : float }  (* open-loop, exponential gaps *)
  | Bursty of { rate : float; burst : int; every : float }
      (* Poisson base load plus a burst of [burst] simultaneous arrivals
         every [every] seconds — the overload trigger *)

type t = {
  arrivals : arrivals;
  start_at : float;  (* first arrival no earlier than this *)
  stop_at : float;  (* arrivals cease; the run then drains to the horizon *)
  channels : int;  (* concurrent-invocation channels (footnote 9) *)
  queue_cap : int;  (* bounded retry queue; 0 disables parking entirely *)
  high_watermark : float;  (* live/capacity fraction entering degraded mode *)
  low_watermark : float;  (* live/capacity fraction leaving degraded mode *)
  retry_max : int;  (* attempts per job (first try included) *)
  retry_base : float;  (* backoff base, seconds; floored at Delta_0 at runtime *)
  pulse_cycles : int;  (* >0 runs a pulse layer sized for that many cycles *)
}

let default =
  {
    arrivals = Poisson { rate = 40.0 };
    start_at = 0.1;
    stop_at = 3.0;
    channels = 8;
    queue_cap = 64;
    high_watermark = 0.75;
    low_watermark = 0.5;
    retry_max = 6;
    retry_base = 0.02;
    pulse_cycles = 0;
  }

let rate = function Poisson { rate } | Bursty { rate; _ } -> rate

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if rate t.arrivals <= 0.0 then err "arrival rate must be positive"
  else if
    match t.arrivals with
    | Bursty { burst; every; _ } -> burst < 1 || every <= 0.0
    | Poisson _ -> false
  then err "bursty arrivals need burst >= 1 and every > 0"
  else if t.start_at < 0.0 || t.stop_at <= t.start_at then
    err "need 0 <= start_at < stop_at"
  else if t.channels < 1 then err "channels must be >= 1"
  else if t.queue_cap < 0 then err "queue_cap must be >= 0"
  else if
    t.low_watermark <= 0.0
    || t.low_watermark > t.high_watermark
    || t.high_watermark > 1.0
  then err "need 0 < low_watermark <= high_watermark <= 1"
  else if t.retry_max < 1 then err "retry_max must be >= 1"
  else if t.retry_base <= 0.0 then err "retry_base must be positive"
  else if t.pulse_cycles < 0 then err "pulse_cycles must be >= 0"
  else Ok ()

(* ---------- JSON codec (same conventions as Spec's) ---------- *)

exception Decode of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode s)) fmt
let num x = J.Num x
let int x = J.Num (float_of_int x)

let get_field name j =
  match J.member name j with Some v -> v | None -> fail "missing field %S" name

let get_float name j =
  match J.to_float_opt (get_field name j) with
  | Some x -> x
  | None -> fail "field %S: expected number" name

let get_int name j =
  match J.to_int_opt (get_field name j) with
  | Some x -> x
  | None -> fail "field %S: expected integer" name

let arrivals_to_json = function
  | Poisson { rate } -> J.Obj [ ("model", J.Str "poisson"); ("rate", num rate) ]
  | Bursty { rate; burst; every } ->
      J.Obj
        [
          ("model", J.Str "bursty");
          ("rate", num rate);
          ("burst", int burst);
          ("every", num every);
        ]

let arrivals_of_json j =
  match J.to_string_opt (get_field "model" j) with
  | Some "poisson" -> Poisson { rate = get_float "rate" j }
  | Some "bursty" ->
      Bursty
        {
          rate = get_float "rate" j;
          burst = get_int "burst" j;
          every = get_float "every" j;
        }
  | Some m -> fail "unknown arrival model %S" m
  | None -> fail "field \"model\": expected string"

let to_json t =
  J.Obj
    [
      ("arrivals", arrivals_to_json t.arrivals);
      ("start_at", num t.start_at);
      ("stop_at", num t.stop_at);
      ("channels", int t.channels);
      ("queue_cap", int t.queue_cap);
      ("high_watermark", num t.high_watermark);
      ("low_watermark", num t.low_watermark);
      ("retry_max", int t.retry_max);
      ("retry_base", num t.retry_base);
      ("pulse_cycles", int t.pulse_cycles);
    ]

let of_json j =
  try
    Ok
      {
        arrivals = arrivals_of_json (get_field "arrivals" j);
        start_at = get_float "start_at" j;
        stop_at = get_float "stop_at" j;
        channels = get_int "channels" j;
        queue_cap = get_int "queue_cap" j;
        high_watermark = get_float "high_watermark" j;
        low_watermark = get_float "low_watermark" j;
        retry_max = get_int "retry_max" j;
        retry_base = get_float "retry_base" j;
        pulse_cycles = get_int "pulse_cycles" j;
      }
  with Decode msg -> Error msg

let pp ppf t =
  Fmt.pf ppf "%s(rate=%g) [%g,%g) ch=%d q<=%d wm=%g/%g retry=%dx%g pulses=%d"
    (match t.arrivals with Poisson _ -> "poisson" | Bursty _ -> "bursty")
    (rate t.arrivals) t.start_at t.stop_at t.channels t.queue_cap
    t.high_watermark t.low_watermark t.retry_max t.retry_base t.pulse_cycles
