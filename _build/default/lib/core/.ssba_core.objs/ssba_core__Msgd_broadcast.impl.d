lib/core/msgd_broadcast.ml: Hashtbl List Params Recv_log Ssba_sim Types
