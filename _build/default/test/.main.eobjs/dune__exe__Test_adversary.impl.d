test/test_adversary.ml: Alcotest Float Helpers List Node Params Ssba_adversary Ssba_core Ssba_harness Ssba_net Ssba_sim Types
