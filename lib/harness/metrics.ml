(* Measurements over run results.

   The paper's bounds are phrased over rt(tau) — the real time at which a
   node's clock read tau. The runner exposes every node's clock, so local
   anchors and return times are converted back to simulator real time
   before skews are computed. *)

open Ssba_core.Types
module Clock = Ssba_sim.Clock

(* One agreement episode: the returns of the correct nodes for one General,
   clustered in time (recurrent agreements by the same General are split when
   consecutive returns are further apart than Delta_agr). *)
type episode = { g : general; returns : return_info list }

let episodes (res : Runner.result) =
  let params = (res.Runner.scenario).Scenario.params in
  let by_g = Hashtbl.create 8 in
  List.iter
    (fun (r : return_info) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_g r.g) in
      Hashtbl.replace by_g r.g (r :: cur))
    res.Runner.returns;
  Hashtbl.fold
    (fun g rs acc ->
      let rs = List.sort (fun a b -> compare a.rt_ret b.rt_ret) rs in
      let gap = params.Ssba_core.Params.delta_agr in
      let rec cluster cur acc = function
        | [] -> List.rev (List.rev cur :: acc)
        | r :: tl -> (
            match cur with
            | [] -> cluster [ r ] acc tl
            | prev :: _ when r.rt_ret -. prev.rt_ret > gap ->
                cluster [ r ] (List.rev cur :: acc) tl
            | _ -> cluster (r :: cur) acc tl)
      in
      match rs with
      | [] -> acc
      | _ ->
          List.map (fun returns -> { g; returns }) (cluster [] [] rs) @ acc)
    by_g []
  |> List.sort (fun a b ->
         compare
           (List.map (fun r -> r.rt_ret) a.returns)
           (List.map (fun r -> r.rt_ret) b.returns))

let decided e =
  List.filter_map
    (fun r -> match r.outcome with Decided v -> Some (r, v) | Aborted -> None)
    e.returns

let aborted e =
  List.filter (fun r -> r.outcome = Aborted) e.returns

(* Real time at which node [id]'s clock read [tau]. *)
let rt_of (res : Runner.result) ~id tau =
  Clock.real_time_of_reading res.Runner.clocks.(id) tau

let span = function
  | [] -> 0.0
  | x :: tl ->
      let lo = List.fold_left Float.min x tl in
      let hi = List.fold_left Float.max x tl in
      hi -. lo

(* Max pairwise |rt(tau_q) - rt(tau_q')| over the episode's *decision*
   times. [Timeliness-1a] bounds the skew between decision events only; an
   abort is not a decision, so mixed decide/abort episodes (e.g. the block-R
   knife-edge, seed 7404/173) contribute no decide-vs-abort spans. *)
let decision_skew (_res : Runner.result) e =
  span (List.map (fun (r, _) -> r.rt_ret) (decided e))

(* Max pairwise anchor skew |rt(tau_g_q) - rt(tau_g_q')|. *)
let anchor_skew (res : Runner.result) e =
  span (List.map (fun r -> rt_of res ~id:r.node r.tau_g) e.returns)

(* Worst per-node local running time tau_ret - tau_g. *)
let max_running_time e =
  List.fold_left (fun acc r -> Float.max acc (r.tau_ret -. r.tau_g)) 0.0 e.returns

(* Latency of the episode relative to a proposal real time. *)
let latency ~proposed_at e =
  List.fold_left (fun acc r -> Float.max acc (r.rt_ret -. proposed_at)) 0.0 e.returns

let first_return e =
  List.fold_left (fun acc r -> Float.min acc r.rt_ret) infinity e.returns

let last_return e =
  List.fold_left (fun acc r -> Float.max acc r.rt_ret) neg_infinity e.returns

(* Simple statistics helpers for sweeps. *)
let mean = function
  | [] -> nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let maximum = function [] -> nan | x :: tl -> List.fold_left Float.max x tl
let minimum = function [] -> nan | x :: tl -> List.fold_left Float.min x tl

let percentile p l =
  match List.sort compare l with
  | [] -> nan
  | sorted ->
      let m = List.length sorted in
      let idx =
        int_of_float (Float.round (p *. float_of_int (m - 1)))
        |> max 0 |> min (m - 1)
      in
      List.nth sorted idx
