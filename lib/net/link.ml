(* A first-class sending surface.

   Protocol code (Node, adversary behaviours) talks to "the network" through
   this record so the same code runs over the raw bounded-delay network or
   over a reliable-transport session layered on top of it. The record is a
   plain closure bundle — no functors, no first-class modules — because the
   call sites are few and hot paths go through one indirection either way. *)

type 'a t = {
  n : int;  (* number of addressable nodes *)
  send : src:int -> dst:int -> 'a -> unit;
  broadcast : src:int -> 'a -> unit;
  set_handler : int -> ('a Msg.t -> unit) -> unit;
  clear_handler : int -> unit;
}

let size t = t.n
let send t ~src ~dst payload = t.send ~src ~dst payload
let broadcast t ~src payload = t.broadcast ~src payload
let set_handler t node h = t.set_handler node h
let clear_handler t node = t.clear_handler node
