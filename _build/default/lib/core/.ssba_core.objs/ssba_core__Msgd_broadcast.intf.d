lib/core/msgd_broadcast.mli: Ssba_sim Types
