(** Fuzzing campaigns: generate–run–judge loops with deterministic
    addressing and a corpus digest.

    Scenario [i] of a campaign with seed [s] is
    [Gen.spec (rng_of_iteration ~seed:s i) gen], independent of every other
    iteration — any failure reproduces from [(seed, i)] alone, or from the
    saved replay file. Without a time budget, a campaign is a pure function
    of its config: two runs produce the same [corpus_digest]. *)

type config = {
  seed : int;
  runs : int;
  time_budget : float option;  (** wall-clock seconds; [None] = unlimited *)
  gen : Gen.config;
  oracle : Oracle.config;
  shrink : bool;  (** minimize failures before reporting *)
  max_shrink_attempts : int;
}

val default_config : config

type failure_case = {
  index : int;  (** iteration number within the campaign *)
  spec : Spec.t;
  report : Oracle.report;
  shrunk : (Spec.t * Oracle.report * Shrink.stats) option;
}

type summary = {
  executed : int;  (** scenarios actually run (time budget may cut short) *)
  failed : failure_case list;  (** chronological *)
  corpus_digest : string;
      (** hex digest over every executed run's result digest *)
}

(** The RNG that generates iteration [i]. *)
val rng_of_iteration : seed:int -> int -> Ssba_sim.Rng.t

(** Rebuild scenario [i] of campaign [seed] (the replay-from-coordinates
    path). *)
val spec_of_iteration : seed:int -> gen:Gen.config -> int -> Spec.t

(** The campaign digest: MD5 over the per-run result digests folded in
    iteration order ([digest ^ "\n"] each). The fold is deliberately
    order-DEPENDENT — it is the observable that pins a parallel campaign to
    its serial schedule; an order-independent fold would hide a scheduler
    that permuted iterations. Exposed so tests can probe exactly that
    sensitivity. *)
val digest_of_digests : string array -> string

(** Run a campaign. [progress] is called after every scenario (under a
    mutex when [jobs > 1]). [jobs] > 1 runs scenarios on that many domains
    — one deterministic engine per domain, scenarios pulled from a shared
    counter; every iteration is a pure function of [(seed, i)], and the
    digest folds per-iteration results in index order, so the summary
    (digest, executed count, failure set, shrunk reproductions) is
    byte-identical to [jobs = 1]. With a [time_budget] the parallel digest
    covers only the completed prefix of iterations. *)
val run :
  ?progress:(int -> Spec.t -> Oracle.report -> unit) ->
  ?jobs:int ->
  config ->
  summary
