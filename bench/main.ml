(* Benchmark harness.

   Part 1 — Bechamel micro/meso benchmarks: one Test.make per experiment
   (E1..E8, DESIGN.md §4), each timing one representative simulation of that
   experiment's workload, plus substrate micro-benchmarks (engine, receive
   log, PRNG). Reported as nanoseconds per run via OLS on the monotonic
   clock.

   Part 2 — the full experiment tables (the paper's reproduced
   tables/figures), exactly what bin/ssba_experiments.exe prints, so one
   `dune exec bench/main.exe` regenerates both the timings and the results
   recorded in EXPERIMENTS.md. *)

open Bechamel
open Toolkit
module Core = Ssba_core
module H = Ssba_harness
module Params = Ssba_core.Params

(* ----- representative workloads, one per experiment --------------------- *)

let run_correct_general ~n ~seed () =
  let params = Params.default n in
  let sc =
    H.Scenario.default ~name:"bench" ~seed
      ~proposals:[ { H.Scenario.g = 0; v = "m"; at = 0.05 } ]
      ~horizon:(0.05 +. (2.0 *. params.Params.delta_agr))
      params
  in
  let res = H.Runner.run sc in
  assert (List.length res.H.Runner.returns = n)

let e1 () = run_correct_general ~n:7 ~seed:1 ()

let e2 () =
  let params = Params.default 7 in
  let sc =
    H.Scenario.default ~name:"bench" ~seed:2
      ~roles:
        [
          ( 0,
            H.Scenario.Byzantine
              (Ssba_adversary.Strategies.two_faced_general ~v1:"a" ~v2:"b" ~at:0.05) );
        ]
      ~horizon:(0.05 +. (2.0 *. params.Params.delta_agr))
      params
  in
  ignore (H.Runner.run sc)

let e3_msgdriven () =
  let params = Params.default 7 in
  let sc =
    H.Scenario.default ~name:"bench" ~seed:3 ~clocks:H.Scenario.Perfect
      ~delay:(Ssba_net.Delay.fixed (0.05 *. params.Params.delta))
      ~proposals:[ { H.Scenario.g = 0; v = "m"; at = 0.05 } ]
      ~horizon:(0.05 +. (2.0 *. params.Params.delta_agr))
      params
  in
  ignore (H.Runner.run sc)

let e3_tps_baseline () =
  let n = 7 in
  let params = Params.default n in
  let engine = Ssba_sim.Engine.create () in
  let net =
    Ssba_net.Network.create ~engine ~n
      ~delay:(Ssba_net.Delay.fixed (0.05 *. params.Params.delta))
      ~rng:(Ssba_sim.Rng.create 3) ()
  in
  let nodes =
    List.init n (fun id ->
        Ssba_baseline.Tps_agree.create ~id ~params ~clock:Ssba_sim.Clock.perfect
          ~engine ~net ~g:0 ~t_start:0.05)
  in
  Ssba_sim.Engine.schedule engine ~at:0.05 (fun () ->
      Ssba_baseline.Tps_agree.propose (List.hd nodes) "m");
  ignore (Ssba_sim.Engine.run ~until:1.0 engine)

let e4 () =
  let params = Params.default 7 in
  let t_p = params.Params.delta_stb in
  let sc =
    H.Scenario.default ~name:"bench" ~seed:4
      ~events:[ H.Scenario.Scramble { at = 0.0; values = [ "x"; "y" ]; net_garbage = 150 } ]
      ~proposals:[ { H.Scenario.g = 0; v = "m"; at = t_p } ]
      ~horizon:(t_p +. (2.0 *. params.Params.delta_agr))
      params
  in
  ignore (H.Runner.run sc)

let e5 () = run_correct_general ~n:13 ~seed:5 ()

let e6 () =
  let n = 10 in
  let params = Params.default n in
  let eps = 0.1 *. params.Params.d in
  let engine = Ssba_sim.Engine.create () in
  let net =
    Ssba_net.Network.create ~engine ~n ~delay:(Ssba_net.Delay.fixed eps)
      ~rng:(Ssba_sim.Rng.create 6) ()
  in
  let colluders = [ 0; 1 ] in
  List.init n (fun i -> i)
  |> List.iter (fun id ->
         if not (List.mem id colluders) then
           ignore
             (Core.Node.create ~id ~params ~clock:Ssba_sim.Clock.perfect ~engine
                ~net ()));
  let st =
    Ssba_adversary.Round_stretcher.make ~engine ~net ~params ~colluders ~v:"evil"
      ~t0:0.05 ~eps ()
  in
  Ssba_adversary.Round_stretcher.launch st;
  ignore (Ssba_sim.Engine.run ~until:(0.05 +. (2.0 *. params.Params.delta_agr)) engine)

let e7 () = run_correct_general ~n:16 ~seed:7 ()

(* ----- transport workloads ---------------------------------------------- *)

(* One framed agreement over a link with persistent loss p; with transport,
   params are rebuilt at delta_eff exactly as Spec.params does. *)
let lossy_scenario ~n ~seed ~p ~transport () =
  let base = Params.default n in
  let tcfg =
    Ssba_transport.Transport.config ~rto:(3.0 *. base.Params.delta) ()
  in
  let params =
    if transport && p > 0.0 then
      Params.default
        ~delta:
          (Params.delta_eff ~delta:base.Params.delta ~p
             ~rto:tcfg.Ssba_transport.Transport.rto
             ~retries:tcfg.Ssba_transport.Transport.retries)
        n
    else base
  in
  let events = if p > 0.0 then [ H.Scenario.Loss { at = 0.0; p } ] else [] in
  H.Scenario.default ~name:"bench-transport" ~seed ~events
    ?transport:(if transport then Some tcfg else None)
    ~proposals:[ { H.Scenario.g = 0; v = "m"; at = 0.05 } ]
    ~horizon:(0.05 +. (2.0 *. params.Params.delta_agr))
    params

let transport_clean () =
  ignore (H.Runner.run (lossy_scenario ~n:7 ~seed:9 ~p:0.0 ~transport:true ()))

let transport_lossy () =
  ignore (H.Runner.run (lossy_scenario ~n:7 ~seed:9 ~p:0.3 ~transport:true ()))

let e8 () =
  let n = 7 in
  let params = Params.default n in
  let engine = Ssba_sim.Engine.create () in
  let rng = Ssba_sim.Rng.create 8 in
  let net =
    Ssba_net.Network.create ~engine ~n
      ~delay:(Ssba_net.Delay.uniform ~lo:(0.1 *. params.Params.delta) ~hi:params.Params.delta)
      ~rng:(Ssba_sim.Rng.split rng) ()
  in
  let layers =
    List.init n (fun id ->
        let node =
          Core.Node.create ~id ~params ~clock:Ssba_sim.Clock.perfect ~engine ~net ()
        in
        Ssba_pulse.Pulse_sync.create ~node
          ~cycle_len:(1.2 *. Ssba_pulse.Pulse_sync.min_cycle params)
          ())
  in
  List.iter Ssba_pulse.Pulse_sync.start layers;
  ignore (Ssba_sim.Engine.run ~until:0.6 engine)

(* E12 workload: one crash-wave churn schedule (2 episodes) plus the
   coherence-timeline derivation and per-episode recovery report — the full
   cost of judging a churn run, not just simulating it. *)
let e12 () =
  let n = 7 in
  let params = Params.default n in
  let correct = List.init n Fun.id in
  let sched =
    H.Chaos.schedule ~episodes:2 H.Chaos.Crash_wave ~params ~correct
      ~byzantine:[]
  in
  let sc =
    H.Scenario.default ~name:"bench-churn" ~seed:12 ~events:sched.H.Chaos.events
      ~proposals:sched.H.Chaos.proposals ~horizon:sched.H.Chaos.horizon params
  in
  let res = H.Runner.run sc in
  ignore (H.Checks.recovery_report res)

(* 210 overlapping sessions per node over footnote-9 channels — the session
   table under real load, with its memory bound asserted per node. *)
let e13 () =
  let n = 7 in
  let k = 210 in
  let params = Params.default n in
  let t0 = 0.05 in
  let sc =
    H.Scenario.default ~name:"bench-sessions" ~seed:13
      ~proposals:
        (List.init k (fun i ->
             {
               H.Scenario.g = i;
               v = Printf.sprintf "m%d" i;
               at = t0 +. (float_of_int i /. float_of_int k *. params.Params.d);
             }))
      ~channels:((k + n - 1) / n)
      ~horizon:(t0 +. (2.0 *. params.Params.delta_agr))
      params
  in
  let res = H.Runner.run sc in
  List.iter
    (fun (_, nd) ->
      let s = Core.Node.session_stats nd in
      assert (s.Core.Session_table.peak_live <= s.Core.Session_table.capacity))
    res.H.Runner.nodes

(* ----- substrate micro-benchmarks --------------------------------------- *)

let engine_throughput () =
  let e = Ssba_sim.Engine.create () in
  for i = 0 to 999 do
    Ssba_sim.Engine.schedule e ~at:(float_of_int i *. 1e-6) (fun () -> ())
  done;
  ignore (Ssba_sim.Engine.run e)

let recv_log_queries () =
  let l = Core.Recv_log.create () in
  for s = 0 to 30 do
    Core.Recv_log.note l ~sender:s ~at:(float_of_int s *. 0.001)
  done;
  for _ = 0 to 99 do
    ignore (Core.Recv_log.count_in_window l ~now:0.031 ~width:0.002);
    ignore (Core.Recv_log.shortest_window l ~now:0.031 ~count:11)
  done

let rng_stream () =
  let r = Ssba_sim.Rng.create 1 in
  for _ = 0 to 9999 do
    ignore (Ssba_sim.Rng.float r 1.0)
  done

(* Typed trace events carry unformatted data, so a disabled trace should cost
   a branch and nothing else — compare these two rows to verify rendering is
   deferred (the ratio collapses if someone reintroduces eager sprintf). *)
let trace_record ~enabled () =
  let tr = Ssba_sim.Trace.create ~enabled () in
  for i = 0 to 9999 do
    Ssba_sim.Trace.record tr ~time:(float_of_int i *. 1e-6) ~node:(i land 7)
      (Ssba_sim.Trace.Send { src = i land 7; dst = (i + 1) land 7; msg = "echo" })
  done

let trace_disabled = trace_record ~enabled:false
let trace_enabled = trace_record ~enabled:true

let metrics_updates () =
  let m = Ssba_sim.Metrics.create () in
  let c = Ssba_sim.Metrics.counter m "bench.counter" in
  let g = Ssba_sim.Metrics.gauge m "bench.gauge" in
  for _ = 0 to 9999 do
    Ssba_sim.Metrics.incr c;
    Ssba_sim.Metrics.add g 1.0
  done

let tests =
  Test.make_grouped ~name:"ssba"
    [
      Test.make ~name:"e1_validity (n=7 agreement)" (Staged.stage e1);
      Test.make ~name:"e2_agreement (two-faced general)" (Staged.stage e2);
      Test.make ~name:"e3_msgdriven (fast network)" (Staged.stage e3_msgdriven);
      Test.make ~name:"e3_tps_baseline (time-driven)" (Staged.stage e3_tps_baseline);
      Test.make ~name:"e4_convergence (scramble+recover)" (Staged.stage e4);
      Test.make ~name:"e5_timeliness (n=13 agreement)" (Staged.stage e5);
      Test.make ~name:"e6_early_stop (round stretcher)" (Staged.stage e6);
      Test.make ~name:"e7_msg_complexity (n=16 agreement)" (Staged.stage e7);
      Test.make ~name:"e8_pulse (3 cycles)" (Staged.stage e8);
      Test.make ~name:"e12_churn (crash wave + recovery report)" (Staged.stage e12);
      Test.make ~name:"e13_sessions (210 concurrent per node)" (Staged.stage e13);
      Test.make ~name:"transport clean (n=7 framed)" (Staged.stage transport_clean);
      Test.make ~name:"transport lossy p=0.3 (n=7)" (Staged.stage transport_lossy);
      Test.make ~name:"engine 1k events" (Staged.stage engine_throughput);
      Test.make ~name:"recv_log 200 window queries" (Staged.stage recv_log_queries);
      Test.make ~name:"rng 10k floats" (Staged.stage rng_stream);
      Test.make ~name:"trace 10k records (disabled)" (Staged.stage trace_disabled);
      Test.make ~name:"trace 10k records (enabled)" (Staged.stage trace_enabled);
      Test.make ~name:"metrics 10k counter+gauge" (Staged.stage metrics_updates);
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 1.0) ~kde:None ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let tbl = H.Table.create [ "benchmark"; "time/run" ] in
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) results []
  |> List.sort compare
  |> List.iter (fun (name, result) ->
         let cell =
           match Analyze.OLS.estimates result with
           | Some [ est ] ->
               if est > 1e6 then Printf.sprintf "%8.3f ms" (est /. 1e6)
               else Printf.sprintf "%8.3f us" (est /. 1e3)
           | _ -> "n/a"
         in
         H.Table.add_row tbl [ name; cell ]);
  H.Table.print tbl

(* Machine-readable transport benchmark: one framed agreement per loss rate
   (and an unframed p=0 baseline), with full message accounting, written to
   BENCH_transport.json for CI trend tracking. *)
let bench_transport_json path =
  let module J = Ssba_sim.Json in
  let row ~p ~transport =
    let t0 = Sys.time () in
    let res = H.Runner.run (lossy_scenario ~n:7 ~seed:9 ~p ~transport ()) in
    let cpu_ms = (Sys.time () -. t0) *. 1e3 in
    let decided =
      List.length
        (List.filter
           (fun (r : Core.Types.return_info) ->
             match r.Core.Types.outcome with
             | Core.Types.Decided _ -> true
             | Core.Types.Aborted -> false)
           res.H.Runner.returns)
    in
    J.Obj
      [
        ("n", J.Num 7.0);
        ("loss_p", J.Num p);
        ("transport", J.Bool transport);
        ("decided", J.Num (float_of_int decided));
        ("sent", J.Num (float_of_int res.H.Runner.messages_sent));
        ("delivered", J.Num (float_of_int res.H.Runner.messages_delivered));
        ("dropped", J.Num (float_of_int res.H.Runner.messages_dropped));
        ("retransmits", J.Num (float_of_int res.H.Runner.transport_retransmits));
        ( "dup_suppressed",
          J.Num (float_of_int res.H.Runner.transport_dup_suppressed) );
        ("expired", J.Num (float_of_int res.H.Runner.transport_expired));
        ("cpu_ms", J.Num cpu_ms);
      ]
  in
  let rows =
    row ~p:0.0 ~transport:false
    :: List.concat_map
         (fun p -> [ row ~p ~transport:true ])
         [ 0.0; 0.1; 0.3 ]
  in
  let oc = open_out path in
  output_string oc (J.to_string (J.Obj [ ("transport_bench", J.Arr rows) ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "transport benchmark written to %s\n%!" path

(* Machine-readable service benchmark: the recurrent-agreement service loop
   (DESIGN.md §12) under a calm open-loop workload and under arrival bursts,
   with the latency percentiles, throughput and shed accounting, written to
   BENCH_service.json for CI trend tracking. *)
let bench_service_json path =
  let module J = Ssba_sim.Json in
  let module W = Ssba_service.Workload in
  let module Svc = Ssba_service.Service in
  let n = 4 and seed = 23 in
  let params = Core.Params.default n in
  let row ~label ~(arrivals : W.arrivals) =
    let w =
      {
        W.default with
        W.arrivals;
        start_at = 0.05;
        stop_at = 10.0;
        channels = 8;
      }
    in
    let sc =
      H.Scenario.default ~name:"bench-service" ~seed
        ~horizon:(w.W.stop_at +. (1.5 *. params.Core.Params.delta_stb))
        ~channels:w.W.channels ~admission:true params
    in
    let t0 = Sys.time () in
    let _, r = Svc.run ~seed w sc in
    let cpu_ms = (Sys.time () -. t0) *. 1e3 in
    J.Obj
      [
        ("workload", J.Str label);
        ("n", J.Num (float_of_int n));
        ("arrivals", J.Num (float_of_int r.Svc.arrivals));
        ("admitted", J.Num (float_of_int r.Svc.admitted));
        ("decided", J.Num (float_of_int r.Svc.decided));
        ("timed_out", J.Num (float_of_int r.Svc.timed_out));
        ("shed", J.Num (float_of_int r.Svc.shed));
        ("retries", J.Num (float_of_int r.Svc.retries));
        ("p50_latency_s", J.Num r.Svc.p50_latency);
        ("p99_latency_s", J.Num r.Svc.p99_latency);
        ("max_latency_s", J.Num r.Svc.max_latency);
        ("throughput_per_s", J.Num r.Svc.throughput);
        ("peak_queue", J.Num (float_of_int r.Svc.peak_queue));
        ( "degraded_episodes",
          J.Num (float_of_int (List.length r.Svc.degraded_episodes)) );
        ("max_degraded_span_s", J.Num r.Svc.max_degraded_span);
        ("cpu_ms", J.Num cpu_ms);
      ]
  in
  let rows =
    [
      row ~label:"poisson-75" ~arrivals:(W.Poisson { rate = 75.0 });
      row ~label:"bursty-40x0.5s"
        ~arrivals:(W.Bursty { rate = 50.0; burst = 40; every = 0.5 });
    ]
  in
  let oc = open_out path in
  output_string oc (J.to_string (J.Obj [ ("service_bench", J.Arr rows) ]));
  output_char oc '\n';
  close_out oc;
  Printf.printf "service benchmark written to %s\n%!" path

(* Machine-readable engine throughput: the E11 scale sweep (one
   correct-General agreement per n, best-of-repeats wall time) written to
   BENCH_engine.json. [pre_pr_baseline] records the n=25 throughput measured
   on this machine before the hot-path overhaul, and [pre_batching_baseline]
   the n=61 throughput before broadcast fan-out batching and the pooled
   delivery arena, so the file documents both speedups it gates. *)
let engine_rows_json rows =
  let module J = Ssba_sim.Json in
  let row (r : H.Experiments.scale_row) =
    J.Obj
      [
        ("n", J.Num (float_of_int r.H.Experiments.sr_n));
        ("events", J.Num (float_of_int r.H.Experiments.sr_events));
        ("wall_ms", J.Num r.H.Experiments.sr_wall_ms);
        ("events_per_sec", J.Num r.H.Experiments.sr_events_per_sec);
        ("wall_ms_per_sim_s", J.Num r.H.Experiments.sr_wall_ms_per_sim_s);
        ("decided", J.Bool r.H.Experiments.sr_decided);
      ]
  in
  J.Obj
    [
      ( "engine_bench",
        J.Obj
          [
            ( "workload",
              J.Str
                "correct-General agreement, seed 111, horizon t0 + 2*delta_agr"
            );
            ( "pre_pr_baseline",
              J.Obj [ ("n", J.Num 25.0); ("events_per_sec", J.Num 308924.0) ] );
            ( "pre_batching_baseline",
              J.Obj [ ("n", J.Num 61.0); ("events_per_sec", J.Num 344144.0) ] );
            ("rows", J.Arr (List.map row rows));
          ] );
    ]

let write_engine_json path rows =
  let module J = Ssba_sim.Json in
  let oc = open_out path in
  output_string oc (J.to_string (engine_rows_json rows));
  output_char oc '\n';
  close_out oc;
  Printf.printf "engine benchmark written to %s\n%!" path

(* The committed baseline and the pre-PR measurement were both taken as
   best-of-many in one process (warm heap) under `--profile release`; match
   that methodology here so the file's speedup ratio compares like with
   like. Dune's dev profile passes `-opaque`, which strips cross-module
   Clambda approximations and with them all cross-module inlining — float
   returns box on every call and throughput drops ~25%. Regenerate with
     dune exec --profile release bench/main.exe -- --engine-json
   never from a dev build. *)
let bench_engine_json path =
  write_engine_json path (H.Experiments.e11_scale_rows ~repeats:25 ())

(* Baseline rows as (n, events_per_sec), from a committed BENCH_engine.json. *)
let read_engine_baseline path =
  let module J = Ssba_sim.Json in
  let ( let* ) = Option.bind in
  let* raw =
    try
      let ic = open_in path in
      let len = in_channel_length ic in
      let raw = really_input_string ic len in
      close_in ic;
      Some raw
    with Sys_error _ -> None
  in
  let* root = try Some (J.of_string raw) with J.Parse_error _ -> None in
  let* bench = J.member "engine_bench" root in
  let* rows = J.member "rows" bench in
  match rows with
  | J.Arr rs ->
      Some
        (List.filter_map
           (fun r ->
             let* n = Option.bind (J.member "n" r) J.to_int_opt in
             let* eps =
               Option.bind (J.member "events_per_sec" r) J.to_float_opt
             in
             Some (n, eps))
           rs)
  | _ -> None

(* CI smoke mode: a reduced sweep, gated against the committed baseline.
   Fails (exit 1) only on a >3x events/sec regression at some shared n —
   loose enough to absorb shared-runner noise, tight enough to catch a
   hot-path falling back to a quadratic or allocating implementation. The
   sweep tops out at n=101 so a scale regression that only bites past the
   historical n=61 ceiling (fan-out batching is what made n=101 routine)
   still trips the gate. Best-of-5 wall-ms per row: single-shot timings on
   shared runners swing far more than any real regression. *)
let engine_smoke ?baseline () =
  let ns = [ 7; 13; 25; 61; 101 ] in
  let rows = H.Experiments.e11_scale_rows ~ns ~repeats:5 () in
  let tbl = H.Table.create [ "n"; "events"; "wall(ms)"; "events/sec"; "vs baseline" ] in
  let failed = ref false in
  let base =
    match baseline with
    | None -> []
    | Some path -> (
        match read_engine_baseline path with
        | Some b -> b
        | None ->
            Printf.printf "engine-smoke: cannot read baseline %s\n%!" path;
            failed := true;
            [])
  in
  List.iter
    (fun (r : H.Experiments.scale_row) ->
      let n = r.H.Experiments.sr_n in
      let eps = r.H.Experiments.sr_events_per_sec in
      let verdict =
        match List.assoc_opt n base with
        | None -> "-"
        | Some b when eps *. 3.0 < b ->
            failed := true;
            Printf.sprintf "%.2fx SLOWER (fail)" (b /. eps)
        | Some b -> Printf.sprintf "%.2fx" (eps /. b)
      in
      H.Table.add_row tbl
        [
          string_of_int n;
          string_of_int r.H.Experiments.sr_events;
          Printf.sprintf "%.1f" r.H.Experiments.sr_wall_ms;
          Printf.sprintf "%.0f" eps;
          verdict;
        ])
    rows;
  H.Table.print tbl;
  write_engine_json "BENCH_engine.json" rows;
  if !failed then begin
    print_endline "engine-smoke: FAILED";
    exit 1
  end
  else print_endline "engine-smoke: ok"

let () =
  match Array.to_list Sys.argv with
  | _ :: "--engine-smoke" :: rest ->
      let baseline =
        match rest with [ "--baseline"; path ] -> Some path | _ -> None
      in
      engine_smoke ?baseline ()
  | [ _; "--engine-json" ] ->
      (* Regenerate just BENCH_engine.json (full sweep, no bechamel). *)
      bench_engine_json "BENCH_engine.json"
  | [ _; "--service-json" ] ->
      (* Regenerate just BENCH_service.json (no bechamel). *)
      bench_service_json "BENCH_service.json"
  | _ ->
      print_endline "## Bechamel benchmarks (one per experiment + substrates)";
      print_endline "";
      benchmark ();
      print_endline "";
      bench_transport_json "BENCH_transport.json";
      bench_service_json "BENCH_service.json";
      bench_engine_json "BENCH_engine.json";
      print_endline "";
      print_endline "## Experiment tables (paper reproduction, see EXPERIMENTS.md)";
      Ssba_harness.Experiments.run_all ()
