lib/core/msgd_broadcast.ml: Hashtbl List Params Printf Recv_log Ssba_sim Types
