(* Serial-vs-parallel determinism suite.

   The multi-core campaign driver and the sharded model-checker explorer
   both promise that parallelism is unobservable: `--jobs N` must produce
   byte-identical campaign summaries (corpus digest, executed count, failure
   set) and identical checker verdict sets/witnesses. These tests hold each
   `--jobs 4` surface to its `--jobs 1` twin across all three fuzz tiers and
   the mc smoke/knife configurations — on any host, including single-core
   ones, where the domains simply time-share.

   The weakened-fold test is the suite's own sensitivity check: the corpus
   digest fold is deliberately order-DEPENDENT, because that is exactly what
   detects a parallel scheduler completing iterations out of slot order. An
   order-independent fold (the tempting "just XOR the digests" refactor)
   would accept a permuted corpus — the test proves the real fold catches
   the permutation the weakened one waves through. *)

open Helpers
module F = Ssba_fuzz
module Mc = Ssba_mc.Mc
module Mc_config = Ssba_mc.Config
module P = Ssba_core.Params

(* ----- fuzz campaigns: three tiers, jobs 1 vs 4 ------------------------- *)

let tier_config gen =
  {
    F.Campaign.default_config with
    F.Campaign.seed = 42;
    runs = 20;
    gen;
    shrink = false;
  }

let failure_indices (s : F.Campaign.summary) =
  List.map (fun (fc : F.Campaign.failure_case) -> fc.F.Campaign.index)
    s.F.Campaign.failed

let check_campaign_identical name config =
  let serial = F.Campaign.run ~jobs:1 config in
  let parallel = F.Campaign.run ~jobs:4 config in
  check_int (name ^ ": executed equal") serial.F.Campaign.executed
    parallel.F.Campaign.executed;
  check_str (name ^ ": corpus digest byte-identical")
    serial.F.Campaign.corpus_digest parallel.F.Campaign.corpus_digest;
  check_bool (name ^ ": failure sets equal") true
    (failure_indices serial = failure_indices parallel)

let test_fuzz_tiers () =
  check_campaign_identical "clean" (tier_config F.Gen.default_config);
  check_campaign_identical "lossy" (tier_config F.Gen.lossy_config);
  check_campaign_identical "churn" (tier_config F.Gen.chaos_config)

(* Shrinking is deferred to a serial pass in parallel mode; a failing
   campaign must still report byte-identical minimized reproductions. The
   2%-weakened Timeliness-1a deadline is the suite's standard failure
   injector — every multi-node decision trips it. *)
let test_parallel_shrink_identical () =
  let config =
    {
      F.Campaign.default_config with
      F.Campaign.seed = 4242;
      runs = 12;
      oracle =
        { F.Oracle.default_config with F.Oracle.skew_deadline_scale = 0.02 };
      shrink = true;
      max_shrink_attempts = 60;
    }
  in
  let serial = F.Campaign.run ~jobs:1 config in
  let parallel = F.Campaign.run ~jobs:4 config in
  check_str "digest equal on a failing corpus" serial.F.Campaign.corpus_digest
    parallel.F.Campaign.corpus_digest;
  check_bool "failure indices equal" true
    (failure_indices serial = failure_indices parallel);
  let shrunk_reprs (s : F.Campaign.summary) =
    List.map
      (fun (fc : F.Campaign.failure_case) ->
        match fc.F.Campaign.shrunk with
        | None -> (fc.F.Campaign.index, None)
        | Some (spec, report, _) ->
            ( fc.F.Campaign.index,
              Some (F.Spec.to_json spec, report.F.Oracle.digest) ))
      s.F.Campaign.failed
  in
  check_bool "campaign found failures to shrink" true
    (serial.F.Campaign.failed <> []);
  check_bool "shrunk reproductions byte-identical" true
    (shrunk_reprs serial = shrunk_reprs parallel)

(* ----- the checker: smoke and knife, jobs 1 vs 4 ------------------------ *)

let verdicts (r : Mc.report) =
  ( List.map (fun (v, w) -> (v, Array.to_list w)) r.Mc.violations,
    List.map (fun (v, w) -> (v, Array.to_list w)) r.Mc.splits )

let test_mc_smoke_parallel () =
  let serial = Mc.explore ~jobs:1 (Mc_config.smoke ()) ~por:true ~depth:10 in
  let parallel = Mc.explore ~jobs:4 (Mc_config.smoke ()) ~por:true ~depth:10 in
  check_bool "smoke verdict sets equal" true
    (verdicts serial = verdicts parallel);
  check_int "smoke judged equal" serial.Mc.judged parallel.Mc.judged;
  check_bool "smoke clean under both" true
    (serial.Mc.violations = [] && serial.Mc.splits = [])

let test_mc_knife_parallel () =
  let cfg base =
    { base with Mc_config.params = P.with_r_slack base.Mc_config.params P.Legacy }
  in
  let serial = Mc.explore ~jobs:1 (cfg (Mc_config.knife ())) ~por:true ~depth:7 in
  let parallel =
    Mc.explore ~jobs:4 (cfg (Mc_config.knife ())) ~por:true ~depth:7
  in
  (* a config with real violations: sets AND minimal witnesses must agree *)
  check_bool "knife-legacy found the stranded abort" true
    (serial.Mc.violations <> []);
  check_bool "knife-legacy verdict sets and witnesses equal" true
    (verdicts serial = verdicts parallel)

(* ----- fold sensitivity ------------------------------------------------- *)

(* The order-independent fold a careless refactor might introduce. *)
let weakened_fold arr =
  let acc = Bytes.make 16 '\000' in
  Array.iter
    (fun d ->
      let h = Digest.string d in
      for i = 0 to 15 do
        Bytes.set acc i
          (Char.chr (Char.code (Bytes.get acc i) lxor Char.code h.[i]))
      done)
    arr;
  Digest.to_hex (Bytes.to_string acc)

let test_fold_order_sensitivity () =
  let in_order = [| "run-a"; "run-b"; "run-c" |] in
  let permuted = [| "run-b"; "run-a"; "run-c" |] in
  (* the real fold: any out-of-slot-order completion moves the digest *)
  check_bool "campaign fold detects a permuted schedule" true
    (not
       (String.equal
          (F.Campaign.digest_of_digests in_order)
          (F.Campaign.digest_of_digests permuted)));
  (* the weakened fold: blind to exactly that permutation — pinning why the
     campaign digest must stay order-dependent *)
  check_str "an order-independent fold waves the permutation through"
    (weakened_fold in_order) (weakened_fold permuted);
  (* and the fold matches the serial Buffer-based digest byte for byte *)
  let buf = Buffer.create 64 in
  Array.iter
    (fun d ->
      Buffer.add_string buf d;
      Buffer.add_char buf '\n')
    in_order;
  check_str "fold byte-compatible with the historical serial digest"
    (Digest.to_hex (Digest.string (Buffer.contents buf)))
    (F.Campaign.digest_of_digests in_order)

let suite =
  [
    case "fuzz tiers: --jobs 4 is byte-identical" test_fuzz_tiers;
    case "parallel shrinking is byte-identical" test_parallel_shrink_identical;
    case "mc smoke: sharded explore matches serial" test_mc_smoke_parallel;
    case "mc knife: verdicts and witnesses match" test_mc_knife_parallel;
    case "corpus fold is order-sensitive" test_fold_order_sensitivity;
  ]
