(* Tests for the coherence timeline, the per-disruption recovery oracle, and
   the chaos schedules that exercise them. *)

open Helpers
open Ssba_core
module H = Ssba_harness
module Adv = Ssba_adversary.Strategies

let params7 = Params.default 7
let values = [ "x"; "y"; "z" ]

let sc ?(roles = []) ?(events = []) ?(proposals = []) ?(horizon = 1.0) ?transport
    () =
  H.Scenario.default ~name:"coh" ~seed:5 ~roles ~events ~proposals ~horizon
    ?transport params7

let intervals ?roles ?events ?horizon ?transport () =
  H.Coherence.intervals (sc ?roles ?events ?horizon ?transport ())

let bounds (i : H.Coherence.interval) =
  (i.H.Coherence.t_start, i.H.Coherence.t_end, i.H.Coherence.after_disruption)

let test_calm_is_one_interval () =
  match intervals () with
  | [ i ] ->
      check_bool "spans the whole run" true (bounds i = (0.0, 1.0, false));
      check_bool "everyone correct" true
        (i.H.Coherence.correct = List.init 7 Fun.id)
  | ivs -> Alcotest.failf "expected 1 interval, got %d" (List.length ivs)

let test_crash_recover_splits () =
  let events =
    [
      H.Scenario.Crash { node = 2; at = 0.2 };
      H.Scenario.Recover { node = 2; at = 0.5 };
    ]
  in
  match intervals ~events () with
  | [ a; b ] ->
      check_bool "pre-crash" true (bounds a = (0.0, 0.2, false));
      check_bool "post-recover, flagged" true (bounds b = (0.5, 1.0, true))
  | ivs -> Alcotest.failf "expected 2 intervals, got %d" (List.length ivs)

let test_byzantine_crash_is_not_incoherence () =
  (* muting a node the adversary already owns takes nothing away *)
  let roles = [ (6, H.Scenario.Byzantine Adv.silent) ] in
  let events =
    [
      H.Scenario.Crash { node = 6; at = 0.2 };
      H.Scenario.Recover { node = 6; at = 0.5 };
    ]
  in
  (* Recover of a non-crashed-correct node changes nothing either: one
     unbroken interval. *)
  match intervals ~roles ~events () with
  | [ i ] -> check_bool "unbroken" true (bounds i = (0.0, 1.0, false))
  | ivs -> Alcotest.failf "expected 1 interval, got %d" (List.length ivs)

let test_scramble_is_a_point_disruption () =
  let events = [ H.Scenario.Scramble { at = 0.3; values; net_garbage = 10 } ] in
  match intervals ~events () with
  | [ a; b ] ->
      check_bool "before" true (bounds a = (0.0, 0.3, false));
      check_bool "after, flagged" true (bounds b = (0.3, 1.0, true))
  | ivs -> Alcotest.failf "expected 2 intervals, got %d" (List.length ivs)

let test_surge_and_restore () =
  let events =
    [
      H.Scenario.Delay_surge { at = 0.2; factor = 3.0 };
      H.Scenario.Delay_restore { at = 0.6 };
    ]
  in
  match intervals ~events () with
  | [ a; b ] ->
      check_bool "pre-surge" true (bounds a = (0.0, 0.2, false));
      check_bool "post-restore" true (bounds b = (0.6, 1.0, true))
  | ivs -> Alcotest.failf "expected 2 intervals, got %d" (List.length ivs)

let test_reform_grows_the_correct_set () =
  let roles = [ (6, H.Scenario.Byzantine Adv.silent) ] in
  let events = [ H.Scenario.Reform { node = 6; at = 0.4 } ] in
  match intervals ~roles ~events () with
  | [ a; b ] ->
      check_bool "pre-reform cast excludes 6" true
        (a.H.Coherence.correct = [ 0; 1; 2; 3; 4; 5 ]);
      check_bool "post-reform cast includes 6" true
        (b.H.Coherence.correct = [ 0; 1; 2; 3; 4; 5; 6 ]);
      check_bool "split flagged" true (bounds b = (0.4, 1.0, true))
  | ivs -> Alcotest.failf "expected 2 intervals, got %d" (List.length ivs)

let test_reform_of_correct_node_is_noop () =
  let events = [ H.Scenario.Reform { node = 2; at = 0.4 } ] in
  match intervals ~events () with
  | [ i ] -> check_bool "unbroken" true (bounds i = (0.0, 1.0, false))
  | ivs -> Alcotest.failf "expected 1 interval, got %d" (List.length ivs)

let test_unmasked_loss_ends_coherence () =
  let events = [ H.Scenario.Loss { at = 0.3; p = 0.2 } ] in
  (match intervals ~events () with
  | [ i ] -> check_bool "only the prefix" true (bounds i = (0.0, 0.3, false))
  | ivs -> Alcotest.failf "expected 1 interval, got %d" (List.length ivs));
  (* the transport's contract is to mask exactly this *)
  let transport = Ssba_transport.Transport.config ~rto:(3.0 *. params7.Params.delta) () in
  match intervals ~events ~transport () with
  | [ i ] -> check_bool "masked: unbroken" true (bounds i = (0.0, 1.0, false))
  | ivs -> Alcotest.failf "expected 1 interval, got %d" (List.length ivs)

let test_interval_at () =
  let events = [ H.Scenario.Scramble { at = 0.3; values; net_garbage = 0 } ] in
  let ivs = intervals ~events () in
  (match H.Coherence.interval_at ivs 0.1 with
  | Some i -> check_bool "first" true (bounds i = (0.0, 0.3, false))
  | None -> Alcotest.fail "no interval at 0.1");
  (match H.Coherence.interval_at ivs 0.3 with
  | Some i -> check_bool "boundary belongs to the opener" true
      (bounds i = (0.3, 1.0, true))
  | None -> Alcotest.fail "no interval at 0.3");
  check_bool "past the horizon" true (H.Coherence.interval_at ivs 1.5 = None)

let test_stabilized_after_derivation () =
  let stb = params7.Params.delta_stb in
  check_float "calm scenario: 0" 0.0 (H.Checks.stabilized_after (sc ()));
  let events =
    [
      H.Scenario.Scramble { at = 0.1; values; net_garbage = 0 };
      H.Scenario.Drop_prob { at = 0.2; p = 0.3 };
      H.Scenario.Heal { at = 0.4 } (* heals never count *);
    ]
  in
  check_float "last disruptive + Delta_stb" (0.2 +. stb)
    (H.Checks.stabilized_after (sc ~events ~horizon:2.0 ()))

(* ----- the per-disruption recovery oracle over real runs ---------------- *)

let run_chaos ?(roles = []) ?(seed = 11) pattern =
  let correct =
    List.filter (fun i -> not (List.mem_assoc i roles)) (List.init 7 Fun.id)
  in
  let byzantine = List.map fst roles in
  let sched =
    H.Chaos.schedule ~episodes:2 pattern ~params:params7 ~correct ~byzantine
  in
  let scenario =
    H.Scenario.default ~name:"chaos" ~seed ~roles ~events:sched.H.Chaos.events
      ~proposals:sched.H.Chaos.proposals ~horizon:sched.H.Chaos.horizon params7
  in
  H.Runner.run scenario

let check_report res =
  let reports = H.Checks.recovery_report res in
  let stb = params7.Params.delta_stb in
  List.iter
    (fun (r : H.Checks.episode_report) ->
      check_bool "interval clean" true (r.H.Checks.violations = []);
      if r.H.Checks.interval.H.Coherence.after_disruption then begin
        match r.H.Checks.recovery_time with
        | Some rt ->
            check_bool "recovered within Delta_stb" true (rt <= stb);
            check_bool "recovery takes some time" true (rt > 0.0)
        | None -> Alcotest.fail "recovery unmeasured despite in-window probe"
      end)
    reports;
  reports

let test_periodic_scramble_recovers () =
  let res = run_chaos H.Chaos.Periodic_scramble in
  let reports = check_report res in
  check_int "three intervals (calm prefix + 2 episodes)" 3 (List.length reports);
  (* the measured stabilization times landed in the metrics registry *)
  List.iteri
    (fun idx (r : H.Checks.episode_report) ->
      match r.H.Checks.recovery_time with
      | Some rt ->
          check_float
            (Printf.sprintf "gauge recovery.time.%d" idx)
            rt
            (Option.get
               (Ssba_sim.Metrics.find_gauge res.H.Runner.metrics
                  (Printf.sprintf "recovery.time.%d" idx)))
      | None -> ())
    reports

let test_crash_wave_recovers () = ignore (check_report (run_chaos H.Chaos.Crash_wave))
let test_surge_cycle_recovers () = ignore (check_report (run_chaos H.Chaos.Surge_cycle))

let test_rejoin_recovers () =
  let roles = [ (6, H.Scenario.Byzantine Adv.silent) ] in
  let res = run_chaos ~roles H.Chaos.Rejoin in
  let reports = check_report res in
  check_bool "run ends with 6 in the correct set" true
    (res.H.Runner.correct = List.init 7 Fun.id);
  let last = List.nth reports (List.length reports - 1) in
  check_bool "last interval's cast includes the rejoiner" true
    (List.mem 6 last.H.Checks.interval.H.Coherence.correct);
  (* the reformed node really runs the protocol: it returns for the probes
     proposed after its reform *)
  check_bool "reformed node produced returns" true
    (List.exists (fun (r : Types.return_info) -> r.Types.node = 6)
       res.H.Runner.returns)

(* The point of per-interval checking: divergent returns inside an early
   coherent window that the old "after the last disruption" cutoff never
   looked at. A scramble's garbage can forge local quorums and briefly
   diverge; checking the interval from its start (stb = 0, the deliberately
   weakened knob) must catch that on some seed, while the whole-run check
   anchored after the *last* disruption stays green — the exact blind spot
   this PR removes. *)
let test_weakened_stb_catches_early_divergence () =
  let stb = params7.Params.delta_stb in
  let d = params7.Params.d in
  let s1 = 0.05 in
  let s2 = s1 +. (0.5 *. stb) in
  (* proposals landing in the scramble's garbage epoch, where forged local
     quorums produce genuinely divergent decisions *)
  let early_div_scenario seed =
    H.Scenario.default ~name:"early-div" ~seed
      ~events:
        [
          H.Scenario.Scramble { at = s1; values; net_garbage = 300 };
          H.Scenario.Scramble { at = s2; values; net_garbage = 300 };
        ]
      ~proposals:
        [
          { H.Scenario.g = 0; v = "e0"; at = s1 +. (2.0 *. d) };
          { H.Scenario.g = 1; v = "e1"; at = s1 +. (4.0 *. d) };
          { H.Scenario.g = 2; v = "e2"; at = s1 +. (6.0 *. d) };
        ]
      ~horizon:(s2 +. stb +. (3.0 *. params7.Params.delta_agr))
      params7
  in
  let caught = ref None in
  List.iter
    (fun seed ->
      if !caught = None then begin
        let scenario = early_div_scenario seed in
        let res = H.Runner.run scenario in
        let old_check =
          H.Checks.pairwise_agreement
            ~after:(H.Checks.stabilized_after scenario)
            res
        in
        let weakened = H.Checks.recovery_report ~stb:0.0 res in
        let early_fails =
          match weakened with
          | _ :: (second : H.Checks.episode_report) :: _ ->
              second.H.Checks.interval.H.Coherence.t_start = s1
              && second.H.Checks.violations <> []
          | _ -> false
        in
        if old_check = [] && early_fails then caught := Some seed
      end)
    [ 201; 202; 203; 204; 205; 206; 207; 208 ];
  (match !caught with
  | Some _ -> ()
  | None ->
      Alcotest.fail "no seed diverges early, invisibly to the old check");
  (* and at the paper's actual Delta_stb that interval is too short for its
     check window to open, so the sound report stays green on the exact
     scenario the weakened knob flagged *)
  let res = H.Runner.run (early_div_scenario (Option.get !caught)) in
  List.iter
    (fun (r : H.Checks.episode_report) ->
      check_bool "sound report is green" true (r.H.Checks.violations = []))
    (H.Checks.recovery_report res)

(* Fault composition (regression pin): crash during a surged period, then
   Recover and Scramble at the same instant. The timeline must read: coherent
   prefix, one long incoherent span (surge, then crash outliving the
   restore), and a post-disruption interval opening at the shared
   recover/scramble instant. And the run must keep exact message
   conservation through the composed faults. *)
let test_fault_composition_timeline_and_conservation () =
  let events =
    [
      H.Scenario.Delay_surge { at = 0.02; factor = 2.5 };
      H.Scenario.Crash { node = 1; at = 0.04 };
      H.Scenario.Delay_restore { at = 0.06 };
      H.Scenario.Recover { node = 1; at = 0.08 };
      H.Scenario.Scramble { at = 0.08; values; net_garbage = 50 };
    ]
  in
  let horizon = 0.08 +. params7.Params.delta_stb +. (3.0 *. params7.Params.delta_agr) in
  let proposals =
    [
      { H.Scenario.g = 0; v = "mid-surge"; at = 0.03 };
      { H.Scenario.g = 2; v = "after"; at = 0.08 +. params7.Params.delta_stb };
    ]
  in
  let scenario =
    H.Scenario.default ~name:"composed" ~seed:17 ~events ~proposals ~horizon
      params7
  in
  (match H.Coherence.intervals scenario with
  | [ a; b ] ->
      check_bool "coherent prefix" true (bounds a = (0.0, 0.02, false));
      check_bool "reopens at the shared recover+scramble instant" true
        (bounds b = (0.08, horizon, true))
  | ivs -> Alcotest.failf "expected 2 intervals, got %d" (List.length ivs));
  let res = H.Runner.run scenario in
  check_bool "conservation through composed faults" true
    (H.Checks.network_conservation res).H.Checks.ok;
  List.iter
    (fun (r : H.Checks.episode_report) ->
      check_bool "composed run judged clean" true (r.H.Checks.violations = []))
    (H.Checks.recovery_report res)

let suite =
  [
    case "calm run is one interval" test_calm_is_one_interval;
    case "crash/recover splits" test_crash_recover_splits;
    case "Byzantine crash is not incoherence" test_byzantine_crash_is_not_incoherence;
    case "scramble is a point disruption" test_scramble_is_a_point_disruption;
    case "surge/restore" test_surge_and_restore;
    case "reform grows the correct set" test_reform_grows_the_correct_set;
    case "reform of a correct node is a no-op" test_reform_of_correct_node_is_noop;
    case "unmasked loss ends coherence" test_unmasked_loss_ends_coherence;
    case "interval_at" test_interval_at;
    case "stabilized_after derivation" test_stabilized_after_derivation;
    case "periodic scramble recovers" test_periodic_scramble_recovers;
    case "crash wave recovers" test_crash_wave_recovers;
    case "surge cycle recovers" test_surge_cycle_recovers;
    case "rejoin recovers" test_rejoin_recovers;
    case "weakened stb catches early divergence"
      test_weakened_stb_catches_early_divergence;
    case "fault composition: timeline + conservation"
      test_fault_composition_timeline_and_conservation;
  ]
