test/test_net.ml: Alcotest Helpers List QCheck Ssba_net Ssba_sim
