(* Discrete-event simulation engine.

   The engine owns virtual real time and a priority queue of thunks. Every
   other substrate (network delivery, node timers, fault injection schedules)
   is expressed as a scheduled closure, which keeps the engine agnostic of
   message and protocol types. Events at equal times run in scheduling order
   (a monotone sequence number breaks ties), so runs are fully deterministic.

   The queue is the monomorphic [Event_queue] rather than the generic
   {!Heap}: the innermost loop does raw float/int comparisons and allocates
   nothing per event. *)

type stats = {
  events_processed : int;
  end_time : float;
  queue_exhausted : bool;  (* false when stopped by [until], [max_events] or [stop] *)
}

type t = {
  now_cell : float array;  (* 1 slot: raw float stores, no per-event boxing *)
  queue : Event_queue.t;
  mutable seq : int;
  trace : Trace.t;
  metrics : Metrics.t;
  c_scheduled : Metrics.counter;
  c_processed : Metrics.counter;
  mutable stopped : bool;
}

let create ?trace ?metrics () =
  let trace = match trace with Some tr -> tr | None -> Trace.create ~enabled:false () in
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  {
    now_cell = [| 0.0 |];
    queue = Event_queue.create ();
    seq = 0;
    trace;
    metrics;
    c_scheduled = Metrics.counter metrics "engine.scheduled";
    c_processed = Metrics.counter metrics "engine.events";
    stopped = false;
  }

let now t = Array.unsafe_get t.now_cell 0
let trace t = t.trace
let metrics t = t.metrics
let pending t = Event_queue.size t.queue

let schedule t ~at run =
  (* Scheduling in the past would break causality; clamp to the present so a
     zero-delay event still runs after the current one. *)
  let here = Array.unsafe_get t.now_cell 0 in
  let at = if at < here then here else at in
  Event_queue.push t.queue ~at ~seq:t.seq run;
  t.seq <- t.seq + 1;
  Metrics.incr t.c_scheduled

let schedule_after t ~delay run =
  if delay < 0.0 then invalid_arg "Engine.schedule_after: negative delay";
  schedule t ~at:(Array.unsafe_get t.now_cell 0 +. delay) run

(* Fan-out batches: the caller (network broadcast) reserves one sequence
   number per sub-event via [next_seq] — in the exact order the per-entry
   scheme would have called [schedule] — then arms the filled descriptor.
   Each reservation counts as one scheduled event so metrics are identical
   to n separate [schedule] calls. *)
let next_seq t =
  let s = t.seq in
  t.seq <- t.seq + 1;
  Metrics.incr t.c_scheduled;
  s

let schedule_batch t b = Event_queue.push_batch t.queue b

let stop t = t.stopped <- true

let record t ~node event = Trace.record t.trace ~time:(now t) ~node event

(* Real-time pacing: process events exactly like [run], but sleep until each
   event's virtual time, mapped onto the wall clock at [speed] virtual
   seconds per wall second. Turns any deterministic scenario into a live
   demo; determinism of the *results* is unaffected because only the pacing,
   never the order, depends on the wall clock. *)
let run_realtime ?(speed = 1.0) ?(until = infinity) ?(max_events = max_int) t =
  if speed <= 0.0 then invalid_arg "Engine.run_realtime: speed must be positive";
  let epoch_wall = Unix.gettimeofday () in
  let epoch_virtual = now t in
  t.stopped <- false;
  let processed = ref 0 in
  let exhausted = ref false in
  let continue = ref true in
  while !continue do
    if t.stopped || !processed >= max_events then continue := false
    else if Event_queue.is_empty t.queue then begin
      exhausted := true;
      continue := false
    end
    else begin
      let at = Event_queue.min_at t.queue in
      if at > until then begin
        Array.unsafe_set t.now_cell 0 until;
        continue := false
      end
      else begin
        let wall_target = epoch_wall +. ((at -. epoch_virtual) /. speed) in
        let lag = wall_target -. Unix.gettimeofday () in
        if lag > 0.0 then Unix.sleepf lag;
        Array.unsafe_set t.now_cell 0 at;
        incr processed;
        Metrics.incr t.c_processed;
        Event_queue.pop_invoke t.queue
      end
    end
  done;
  { events_processed = !processed; end_time = now t; queue_exhausted = !exhausted }

let run ?(until = infinity) ?(max_events = max_int) t =
  t.stopped <- false;
  let processed = ref 0 in
  let exhausted = ref false in
  let continue = ref true in
  while !continue do
    if t.stopped || !processed >= max_events then continue := false
    else if Event_queue.is_empty t.queue then begin
      exhausted := true;
      continue := false
    end
    else begin
      let at = Event_queue.min_at t.queue in
      if at > until then begin
        (* Leave future events queued; advance time to the horizon. *)
        Array.unsafe_set t.now_cell 0 until;
        continue := false
      end
      else begin
        Array.unsafe_set t.now_cell 0 at;
        incr processed;
        Metrics.incr t.c_processed;
        (* Pop-and-run without materialising a closure for batch
           sub-events: the engine's steady state allocates nothing. *)
        Event_queue.pop_invoke t.queue
      end
    end
  done;
  { events_processed = !processed; end_time = now t; queue_exhausted = !exhausted }
