test/test_net.ml: Alcotest Helpers List Ssba_net Ssba_sim
