(* Concrete Byzantine strategies.

   Each strategy exercises an attack class the paper's proofs have to defeat:

   - [silent]             crash/omission faults: contributes nothing.
   - [spam]               floods random protocol messages; tests decay,
                          memory bounds and that garbage cannot forge quorums.
   - [mimic]              re-sends whatever it hears under its own identity
                          after a delay; tests replay resistance (old
                          messages must not re-trigger agreements).
   - [two_faced_general]  tries to drive two different values through
                          Initiator-Accept by splitting the node set;
                          Uniqueness [IA-4] must prevent divergent accepts.
   - [stagger_general]    spreads the Initiator message over a long window
                          so correct nodes invoke at very different times;
                          the freshness guards of block K must keep anchors
                          within bounds or produce no accept at all.
   - [partial_general]    initiates towards a subset only; the Relay property
                          [IA-3] must either bring everyone to the same value
                          or nobody to any.
   - [gate_edge]          a General pacing Initiator-Accept so I-accepts land
                          exactly on block R's gate boundary and decision
                          skew stretches against the 3d deadline.
   - [equivocator]        participates in Initiator-Accept with different
                          values towards different halves.
   - [flip_flop]          alternates silence and spam in bursts, modelling an
                          intermittently faulty node. *)

open Ssba_core.Types
module B = Behavior

let silent = B.make ~name:"silent" (fun env -> B.on_message env (fun _ -> ()))

let spam ~period ~values =
  B.make ~name:"spam" (fun env ->
      B.on_message env (fun _ -> ());
      B.every env ~period (fun () ->
          B.send_all env (B.random_message env ~values)))

(* Each distinct payload is re-sent at most once: without the cap, two mimics
   (or a mimic and an equivocator) amplify each other's output exponentially. *)
let mimic ~delay =
  B.make ~name:"mimic" (fun env ->
      let seen : (message, unit) Hashtbl.t = Hashtbl.create 64 in
      B.on_message env (fun m ->
          let payload = m.Ssba_net.Msg.payload in
          match payload with
          | Initiator _ -> ()  (* cannot forge another General's identity *)
          | Ia _ | Mb _ ->
              if not (Hashtbl.mem seen payload) then begin
                Hashtbl.replace seen payload ();
                B.after env ~delay (fun () -> B.send_all env payload)
              end))

let halves env =
  let n = env.B.params.Ssba_core.Params.n in
  let rec split acc_even acc_odd i =
    if i < 0 then (acc_even, acc_odd)
    else if i mod 2 = 0 then split (i :: acc_even) acc_odd (i - 1)
    else split acc_even (i :: acc_odd) (i - 1)
  in
  split [] [] (n - 1)

let two_faced_general ~v1 ~v2 ~at =
  B.make ~name:"two-faced-general" (fun env ->
      B.on_message env (fun _ -> ());
      let g = env.B.self in
      let d = env.B.params.Ssba_core.Params.d in
      B.at env ~time:at (fun () ->
          let evens, odds = halves env in
          B.send_to env ~dsts:evens (Initiator { g; v = v1 });
          B.send_to env ~dsts:odds (Initiator { g; v = v2 });
          (* Push both values through the support/approve/ready stages. *)
          B.after env ~delay:(0.5 *. d) (fun () ->
              B.send_to env ~dsts:evens (Ia { kind = Support; g; v = v1 });
              B.send_to env ~dsts:odds (Ia { kind = Support; g; v = v2 }));
          B.after env ~delay:(1.5 *. d) (fun () ->
              B.send_all env (Ia { kind = Approve; g; v = v1 });
              B.send_all env (Ia { kind = Approve; g; v = v2 }));
          B.after env ~delay:(2.5 *. d) (fun () ->
              B.send_all env (Ia { kind = Ready; g; v = v1 });
              B.send_all env (Ia { kind = Ready; g; v = v2 }))))

let stagger_general ~v ~at ~gap =
  B.make ~name:"stagger-general" (fun env ->
      B.on_message env (fun _ -> ());
      let g = env.B.self in
      let n = env.B.params.Ssba_core.Params.n in
      for dst = 0 to n - 1 do
        B.at env ~time:(at +. (float_of_int dst *. gap)) (fun () ->
            B.send env ~dst (Initiator { g; v }))
      done)

let partial_general ~v ~at ~targets =
  B.make ~name:"partial-general" (fun env ->
      B.on_message env (fun _ -> ());
      let g = env.B.self in
      B.at env ~time:at (fun () ->
          B.send_to env ~dsts:targets (Initiator { g; v });
          (* The faulty General still supports its own value towards its
             targets, like a correct participant would. *)
          let d = env.B.params.Ssba_core.Params.d in
          B.after env ~delay:(0.5 *. d) (fun () ->
              B.send_to env ~dsts:targets (Ia { kind = Support; g; v }))))

(* A faulty General that paces the Initiator-Accept stages so correct nodes'
   decisions land exactly on the protocol's comparison boundaries instead of
   safely inside them. One burst: Initiator at [at], Support a d later,
   Approve a d after that — anchoring every correct node early — then the
   Ready wave is withheld and released per destination, staggered from
   [at + 4d] across a 3d window to [at + 7d]. The resulting I-accepts probe
   block R's [tau - tau_g <= 4d] (or 5d) gate from both sides and stretch
   decision skew against the 3d deadline; the burst repeats at
   [at + 2 Delta_rmv + 9d], the same-value separation guard's own decay
   boundary, so the second initiation lands exactly where block K's guard
   flips from rejecting to admitting. *)
let gate_edge ~v ~at =
  B.make ~name:"gate-edge" (fun env ->
      B.on_message env (fun _ -> ());
      let g = env.B.self in
      let p = env.B.params in
      let d = p.Ssba_core.Params.d in
      let n = p.Ssba_core.Params.n in
      let burst start =
        B.at env ~time:start (fun () -> B.send_all env (Initiator { g; v }));
        B.at env ~time:(start +. d) (fun () ->
            B.send_all env (Ia { kind = Support; g; v }));
        B.at env ~time:(start +. (2.0 *. d)) (fun () ->
            B.send_all env (Ia { kind = Approve; g; v }));
        let step = 3.0 *. d /. float_of_int (max 1 (n - 1)) in
        for dst = 0 to n - 1 do
          let off = (4.0 *. d) +. (float_of_int dst *. step) in
          B.at env ~time:(start +. off) (fun () ->
              B.send env ~dst (Ia { kind = Ready; g; v }))
        done
      in
      burst at;
      burst (at +. (2.0 *. p.Ssba_core.Params.delta_rmv) +. (9.0 *. d)))

(* A Byzantine *participant* (not General): echoes support/approve/ready for
   value [v1] to one half and [v2] to the other, for any General it hears
   about — rate-limited to one burst per General per d, so colluding
   equivocators cannot amplify each other without bound. *)
let equivocator ~v1 ~v2 =
  B.make ~name:"equivocator" (fun env ->
      let last_burst : (general, float) Hashtbl.t = Hashtbl.create 8 in
      B.on_message env (fun m ->
          match m.Ssba_net.Msg.payload with
          | Initiator { g; _ } | Ia { g; _ } ->
              let now = Ssba_sim.Engine.now env.B.engine in
              let d = env.B.params.Ssba_core.Params.d in
              let recent =
                match Hashtbl.find_opt last_burst g with
                | Some t -> now -. t < d
                | None -> false
              in
              if not recent then begin
                Hashtbl.replace last_burst g now;
                let evens, odds = halves env in
                B.send_to env ~dsts:evens (Ia { kind = Support; g; v = v1 });
                B.send_to env ~dsts:odds (Ia { kind = Support; g; v = v2 });
                B.send_to env ~dsts:evens (Ia { kind = Approve; g; v = v1 });
                B.send_to env ~dsts:odds (Ia { kind = Approve; g; v = v2 });
                B.send_to env ~dsts:evens (Ia { kind = Ready; g; v = v1 });
                B.send_to env ~dsts:odds (Ia { kind = Ready; g; v = v2 })
              end
          | Mb _ -> ()))

(* A fully scripted adversary: a fixed list of (absolute engine time,
   destination, payload) sends and nothing else. The model checker's
   counterexample export compiles a Byzantine node's chosen menu into this —
   a deterministic, input-oblivious transcript the fuzzer CLI can replay. *)
let scripted ~steps =
  B.make ~name:"scripted" (fun env ->
      B.on_message env (fun _ -> ());
      List.iter
        (fun (time, dst, msg) ->
          B.at env ~time (fun () ->
              match dst with
              | None -> B.send_all env msg
              | Some dst -> B.send env ~dst msg))
        steps)

let flip_flop ~period ~values =
  B.make ~name:"flip-flop" (fun env ->
      B.on_message env (fun _ -> ());
      let noisy = ref false in
      B.every env ~period (fun () -> noisy := not !noisy);
      B.every env
        ~period:(period /. 8.0)
        (fun () ->
          if !noisy then B.send_all env (B.random_message env ~values)))
