(* Continuous-churn chaos schedules.

   Each episode is one disruption plus two probe agreements: the first lands
   inside the [Delta_stb] recovery-measurement window (late enough to clear
   the worst IG3 quiet period a scramble can install — Delta_reset is half of
   Delta_stb — and early enough that its completion still measures the
   episode's stabilization time), the second lands past [Delta_stb], where
   the per-interval oracle demands full Agreement/Validity/Timeliness. The
   generators are pure functions of their arguments — no RNG — so chaos
   corpora digest as stably as the calm ones. *)

module P = Ssba_core.Params

type pattern = Periodic_scramble | Crash_wave | Surge_cycle | Rejoin

let all_patterns = [ Periodic_scramble; Crash_wave; Surge_cycle; Rejoin ]

let pattern_name = function
  | Periodic_scramble -> "periodic-scramble"
  | Crash_wave -> "crash-wave"
  | Surge_cycle -> "surge"
  | Rejoin -> "rejoin"

let pattern_of_name s =
  match
    List.find_opt (fun p -> String.equal (pattern_name p) s) all_patterns
  with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown chaos pattern %S (expected %s)" s
           (String.concat ", " (List.map pattern_name all_patterns)))

type schedule = {
  events : Scenario.event list;
  proposals : Scenario.proposal list;
  horizon : float;
}

let schedule ?(episodes = 3) ?(start = 0.1) pattern ~(params : P.t) ~correct
    ~byzantine =
  if correct = [] then invalid_arg "Chaos.schedule: no correct nodes";
  let nc = List.length correct in
  let nth_correct k = List.nth correct (k mod nc) in
  let stb = params.P.delta_stb in
  let agr = params.P.delta_agr in
  let d = params.P.d in
  let tag = pattern_name pattern in
  let events = ref [] in
  let proposals = ref [] in
  let cursor = ref start in
  for i = 0 to episodes - 1 do
    let t = !cursor in
    let resume =
      match pattern with
      | Periodic_scramble ->
          events :=
            Scenario.Scramble
              { at = t; values = [ Printf.sprintf "noise%d" i ]; net_garbage = 25 }
            :: !events;
          t
      | Crash_wave ->
          let victim = nth_correct i in
          events :=
            Scenario.Recover { node = victim; at = t +. (2.0 *. agr) }
            :: Scenario.Crash { node = victim; at = t }
            :: !events;
          t +. (2.0 *. agr)
      | Surge_cycle ->
          events :=
            Scenario.Delay_restore { at = t +. (2.0 *. agr) }
            :: Scenario.Delay_surge { at = t; factor = 3.0 }
            :: !events;
          t +. (2.0 *. agr)
      | Rejoin -> (
          match List.nth_opt byzantine i with
          | Some node ->
              events := Scenario.Reform { node; at = t } :: !events;
              t
          | None ->
              (* cast exhausted: keep the churn going with scrambles *)
              events :=
                Scenario.Scramble
                  {
                    at = t;
                    values = [ Printf.sprintf "noise%d" i ];
                    net_garbage = 25;
                  }
                :: !events;
              t)
    in
    (* Probe 1: inside the recovery-measurement window (completes around
       0.55 stb + Delta_agr + 8d < stb). Probe 2: past Delta_stb, fully
       entitled. Distinct Generals and values per probe. *)
    proposals :=
      {
        Scenario.g = nth_correct ((2 * i) + 1);
        v = Printf.sprintf "p%d-%s-b" i tag;
        at = resume +. stb +. (10.0 *. d);
      }
      :: {
           Scenario.g = nth_correct (2 * i);
           v = Printf.sprintf "p%d-%s-a" i tag;
           at = resume +. (0.55 *. stb);
         }
      :: !proposals;
    cursor := resume +. stb +. (3.0 *. agr)
  done;
  {
    events = List.rev !events;
    proposals = List.rev !proposals;
    horizon = !cursor;
  }
