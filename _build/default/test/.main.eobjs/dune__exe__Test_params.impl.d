test/test_params.ml: Alcotest Helpers QCheck Ssba_core
