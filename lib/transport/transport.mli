(** Reliable transport over a persistently faulty link.

    Recovers the paper's bounded-delay channel abstraction (§2, Def. 2) on
    top of a link that stays lossy/duplicating/reordering forever:
    per-ordered-pair sequence numbers, ack-driven retransmission with
    exponential backoff and a retry cap, and a bounded receive-side dedup
    ring. All state is fixed-size, so a {!scramble} corrupts values but
    never capacity, and the corruption washes out with real traffic —
    post-[Delta_stb] properties hold with the transport in the loop.

    A payload the transport delivers over an otherwise-coherent link with
    loss rate [p] arrives within [Params.delta_eff ~delta ~p ~rto ~retries];
    it fails to arrive at all with probability
    [Params.residual_loss ~p ~retries]. Instantiate the protocol's timeout
    cascade at [delta_eff] to keep it sound over the lossy link. *)

(** The wire format: payloads ride in [Data] frames; [Ack]s are
    fire-and-forget (lost acks are masked by retransmission). *)
type 'a frame = Data of { seq : int; payload : 'a } | Ack of { seq : int }

(** Frame classifier for [Network.create ~kind_of], given a payload
    classifier; acks are labeled ["ack"]. *)
val kind_of : ('a -> string) -> 'a frame -> string

type config = {
  rto : float;  (** first retransmission timeout; doubles per attempt *)
  retries : int;  (** max retransmissions per frame *)
  window : int;  (** per-ordered-pair in-flight ring capacity *)
  dedup : int;  (** per-ordered-pair receive dedup ring capacity *)
}

(** [config ~rto ()] with defaults [retries = 12], [window = 64],
    [dedup = 256]. Raises [Invalid_argument] on nonsensical inputs. *)
val config : ?retries:int -> ?window:int -> ?dedup:int -> rto:float -> unit -> config

type 'a t

(** [create ~engine ~net ~config ()] installs the transport's frame handler
    on every node of [net] (the transport owns the network's handler slots;
    protocol code installs payload handlers through {!link}). [kind_of]
    labels Retransmit trace events. *)
val create :
  ?kind_of:('a -> string) ->
  engine:Ssba_sim.Engine.t ->
  net:'a frame Ssba_net.Network.t ->
  config:config ->
  unit ->
  'a t

(** The transport as a sending surface for protocol code. The envelope a
    payload handler sees preserves the underlying frame's src/dst/sent_at
    and forged flag. *)
val link : 'a t -> 'a Ssba_net.Link.t

(** Corrupt every piece of transport state within its type (next-seq
    counters, dedup rings, pending windows) — the transient-fault model of
    Corollary 5. Deterministic in [rng]. *)
val scramble : 'a t -> rng:Ssba_sim.Rng.t -> unit

val config_of : 'a t -> config

(** Counters, also exported via the engine metrics registry under
    [transport.retransmits], [transport.dup_suppressed], [transport.expired],
    [transport.evicted], [transport.acks]. *)
val retransmits : 'a t -> int

(** Frames dropped by the receive dedup ring. *)
val dup_suppressed : 'a t -> int

(** Frames whose retry budget ran out unacked. *)
val expired : 'a t -> int

(** Pending entries evicted by window overrun before being acked. *)
val evicted : 'a t -> int

(** Acks sent (one per data frame received, duplicates included). *)
val acks : 'a t -> int

(** Frames abandoned because the retry cap ran out unacked. Tracks
    {!expired} but is observability-only (never part of a result digest),
    and each exhaustion also emits a typed [Retries_exhausted] trace event —
    previously the transport gave up silently. *)
val retries_exhausted : 'a t -> int
