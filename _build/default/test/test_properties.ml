(* Property-based test suites: the paper's theorems quantified over random
   scenarios (sizes, seeds, delay profiles, Byzantine casts). Each case runs
   a full simulation, so counts are modest but the space covered is wide. *)

let () = () (* no Helpers needed: qcheck-only module *)
open Ssba_core
module H = Ssba_harness
module S = Ssba_adversary.Strategies

let sizes = [| 4; 7; 10; 13 |]

let delay_of_profile params = function
  | 0 -> Ssba_net.Delay.fixed (0.9 *. params.Params.delta)
  | 1 -> Ssba_net.Delay.fixed (0.05 *. params.Params.delta)
  | 2 ->
      Ssba_net.Delay.uniform ~lo:(0.05 *. params.Params.delta)
        ~hi:params.Params.delta
  | _ ->
      Ssba_net.Delay.bimodal ~fast:(0.1 *. params.Params.delta)
        ~slow:params.Params.delta ~slow_prob:0.2

(* Theorem 3 Validity + Timeliness, quantified: any size, any delay profile
   within the bound, any correct General, f crash-faulty nodes. *)
let prop_validity =
  QCheck.Test.make ~name:"validity for all sizes/delays/Generals" ~count:40
    QCheck.(triple (int_range 0 1000) (int_range 0 3) (int_range 0 100))
    (fun (seed, profile, gpick) ->
      let n = sizes.(seed mod Array.length sizes) in
      let params = Params.default n in
      let f = params.Params.f in
      let g = gpick mod (n - f) in
      let roles =
        List.init f (fun i -> (n - 1 - i, H.Scenario.Byzantine S.silent))
      in
      let sc =
        H.Scenario.default ~name:"prop" ~seed ~roles
          ~delay:(delay_of_profile params profile)
          ~proposals:[ { H.Scenario.g; v = "v"; at = 0.05 } ]
          ~horizon:(0.05 +. (3.0 *. params.Params.delta_agr))
          params
      in
      let res = H.Runner.run sc in
      match H.Metrics.episodes res with
      | [ e ] ->
          H.Checks.validity ~correct:res.H.Runner.correct ~v:"v" e
          && (H.Checks.timeliness_1a res e).H.Checks.ok
          && (H.Checks.timeliness_1b res e).H.Checks.ok
          && (H.Checks.timeliness_1d res e).H.Checks.ok
      | _ -> false)

(* Agreement under arbitrary Byzantine casts: up to f adversaries drawn from
   the strategy zoo, with or without a correct proposal in flight. *)
let strategy_of params i =
  let d = params.Params.d in
  match i mod 6 with
  | 0 -> S.silent
  | 1 -> S.spam ~period:(5.0 *. d) ~values:[ "a"; "b" ]
  | 2 -> S.mimic ~delay:(2.0 *. d)
  | 3 -> S.equivocator ~v1:"a" ~v2:"b"
  | 4 -> S.two_faced_general ~v1:"a" ~v2:"b" ~at:0.05
  | _ -> S.flip_flop ~period:(20.0 *. d) ~values:[ "a" ]

let prop_agreement_under_byzantine =
  QCheck.Test.make ~name:"pairwise agreement under random Byzantine casts"
    ~count:40
    QCheck.(quad (int_range 0 1000) (int_range 0 100) (list_of_size Gen.(int_range 0 3) (int_range 0 5)) bool)
    (fun (seed, gpick, casts, with_proposal) ->
      let n = sizes.(seed mod Array.length sizes) in
      let params = Params.default n in
      let f = params.Params.f in
      let casts = List.filteri (fun i _ -> i < f) casts in
      let roles =
        List.mapi
          (fun i c -> (n - 1 - i, H.Scenario.Byzantine (strategy_of params c)))
          casts
      in
      let byz_ids = List.map fst roles in
      let proposals =
        if with_proposal then
          let g = gpick mod n in
          if List.mem g byz_ids then [] else [ { H.Scenario.g; v = "v"; at = 0.05 } ]
        else []
      in
      let sc =
        H.Scenario.default ~name:"prop" ~seed ~roles ~proposals
          ~horizon:(0.05 +. (4.0 *. params.Params.delta_agr))
          params
      in
      let res = H.Runner.run sc in
      H.Checks.pairwise_agreement res = [])

(* Termination: every return happens within Delta_agr of its anchor, for any
   scenario in the space above. *)
let prop_termination =
  QCheck.Test.make ~name:"running time <= Delta_agr for every return" ~count:30
    QCheck.(pair (int_range 0 1000) (int_range 0 5))
    (fun (seed, cast) ->
      let n = sizes.(seed mod Array.length sizes) in
      let params = Params.default n in
      let roles =
        if params.Params.f > 0 then
          [ (n - 1, H.Scenario.Byzantine (strategy_of params cast)) ]
        else []
      in
      let sc =
        H.Scenario.default ~name:"prop" ~seed ~roles
          ~proposals:[ { H.Scenario.g = 0; v = "v"; at = 0.05 } ]
          ~horizon:(0.05 +. (4.0 *. params.Params.delta_agr))
          params
      in
      let res = H.Runner.run sc in
      List.for_all
        (fun (r : Types.return_info) ->
          r.Types.tau_ret -. r.Types.tau_g
          <= params.Params.delta_agr +. params.Params.d)
        res.H.Runner.returns)

(* Determinism of the whole stack: a scenario is a pure function of its
   description. *)
let prop_determinism =
  QCheck.Test.make ~name:"runs are pure functions of the scenario" ~count:10
    QCheck.(int_range 0 1000)
    (fun seed ->
      let params = Params.default 7 in
      let mk () =
        let sc =
          H.Scenario.default ~name:"prop" ~seed
            ~proposals:[ { H.Scenario.g = seed mod 7; v = "v"; at = 0.05 } ]
            ~horizon:0.5 params
        in
        let res = H.Runner.run sc in
        ( List.map
            (fun (r : Types.return_info) ->
              (r.Types.node, r.Types.outcome, r.Types.rt_ret, r.Types.tau_g))
            res.H.Runner.returns,
          res.H.Runner.messages_sent )
      in
      mk () = mk ())

(* Unforgeability at the system level: without any initiation (correct or
   Byzantine-General), no value is ever decided. *)
let prop_unforgeability =
  QCheck.Test.make ~name:"no initiation, no decision" ~count:20
    QCheck.(pair (int_range 0 1000) (int_range 0 2))
    (fun (seed, cast) ->
      let n = sizes.(seed mod Array.length sizes) in
      let params = Params.default n in
      (* adversaries that never send an Initiator under their own id *)
      let strategy =
        match cast with
        | 0 -> S.silent
        | 1 -> S.equivocator ~v1:"a" ~v2:"b"
        | _ -> S.mimic ~delay:params.Params.d
      in
      let roles =
        if params.Params.f > 0 then [ (n - 1, H.Scenario.Byzantine strategy) ]
        else []
      in
      let sc =
        H.Scenario.default ~name:"prop" ~seed ~roles ~proposals:[]
          ~horizon:(2.0 *. params.Params.delta_agr)
          params
      in
      let res = H.Runner.run sc in
      H.Checks.no_decision res)

let suite =
  [
    Helpers.qcheck prop_validity;
    Helpers.qcheck prop_agreement_under_byzantine;
    Helpers.qcheck prop_termination;
    Helpers.qcheck prop_determinism;
    Helpers.qcheck prop_unforgeability;
  ]
