(** Message-delay policies for the bounded-delay network (paper §2).

    Once the network is correct every message between correct nodes arrives
    within [delta]; within that bound the adversary schedules delays. *)

type t

(** Every message takes exactly the given delay. *)
val fixed : float -> t

(** Per-message delay uniform in [\[lo, hi\]]. *)
val uniform : lo:float -> hi:float -> t

(** Each message is [fast] with probability [1 - slow_prob], else [slow]. *)
val bimodal : fast:float -> slow:float -> slow_prob:float -> t

(** Deterministic per-link delay. *)
val per_link : (src:int -> dst:int -> float) -> t

(** Fully custom schedule. *)
val custom : (rng:Ssba_sim.Rng.t -> src:int -> dst:int -> now:float -> float) -> t

(** [scaled factor base]: every draw of [base] multiplied by [factor] — a
    delay surge (factor > 1 pushes deliveries beyond the [delta] the base
    policy respected, violating the bounded-delay model of §2 until the
    original policy is restored). Draws consume exactly the RNG values
    [base] would, so installing and removing the surge mid-run never shifts
    the random stream. Raises [Invalid_argument] on a non-positive factor. *)
val scaled : float -> t -> t

(** Draw the delay for one message. *)
val draw : t -> rng:Ssba_sim.Rng.t -> src:int -> dst:int -> now:float -> float
