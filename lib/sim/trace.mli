(** Structured run traces: timestamped, per-node, {e typed} events.

    Events carry their data unformatted; rendering to text happens only in
    {!pp} and {!to_jsonl}, so a disabled trace performs zero detail-string
    allocations on the hot path. The {!Ext} case is the generic extension
    point: a kind tag plus a deferred renderer. *)

type event =
  | Send of { src : int; dst : int; msg : string }
  | Deliver of { src : int; dst : int; msg : string }
  | Drop of { src : int; dst : int; msg : string; reason : string }
  | Propose of { g : int; v : string }
  | Ia_invoke of { g : int; v : string }
  | Ia_reject of { g : int; v : string }  (** block K1 freshness rejection *)
  | Ia_skip of { g : int; reason : string }  (** block N4 refused to anchor *)
  | I_accept of { g : int; v : string; tau_g : float }
  | Anchor_set of { g : int; tau_g : float }  (** msgd-broadcast anchored *)
  | Mb_accept of { g : int; p : int; v : string; k : int }
  | Mb_broadcaster of { g : int; p : int; total : int }
  | Agree_return of { g : int; decided : string option; tau_g : float }
      (** [decided = None] is an abort *)
  | Ig3_failure of { g : int }
  | Scramble of { garbage : int }
  | Reform of { node : int }
      (** a Byzantine node rejoined the correct protocol from arbitrary
          state *)
  | Delay_surge of { factor : float }
      (** delivery delays scaled by [factor]; [0.0] marks the restore *)
  | Duplicate of { src : int; dst : int; msg : string }
      (** network-level duplication fault: a second copy of a sent message *)
  | Retransmit of { src : int; dst : int; msg : string; attempt : int }
      (** transport resending an unacked frame; [attempt] is 1-based *)
  | Dup_suppress of { src : int; dst : int; seq : int }
      (** transport receive-side dedup dropped an already-seen frame *)
  | Retries_exhausted of { src : int; dst : int; msg : string; seq : int }
      (** transport gave up on an unacked frame after the retry cap *)
  | Service_admit of { g : int; live : int }
      (** service admission controller let a proposal through *)
  | Service_shed of { g : int; reason : string }
      (** service admission controller turned a proposal away *)
  | Service_queue of { g : int; depth : int }
      (** proposal parked in the bounded pending queue; [depth] after *)
  | Service_mode of { degraded : bool; live : int }
  | Session_evict of { g : int }
      (** overload detector flipped the service mode *)
  | Ext of { kind : string; render : unit -> string }
      (** generic extension: [render] runs only when the event is printed or
          exported *)

(** The stable kind tag an event is filtered and exported under. *)
val kind_of_event : event -> string

(** Render an event's detail text (calls [Ext.render]). *)
val detail_of_event : event -> string

(** Structural equality; [Ext] compares by kind and rendered detail. *)
val equal_event : event -> event -> bool

type entry = {
  time : float;  (** simulator real time *)
  node : int;  (** -1 for system/network events *)
  event : event;
}

val entry_kind : entry -> string
val entry_detail : entry -> string
val equal_entry : entry -> entry -> bool

type t

(** [create ?enabled ()] builds a trace; disabled traces drop all records. *)
val create : ?enabled:bool -> unit -> t

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool
val record : t -> time:float -> node:int -> event -> unit
val clear : t -> unit

(** Number of entries recorded since the last [clear]. *)
val count : t -> int

(** Entries in chronological order. *)
val to_list : t -> entry list

(** Chronological entries matching the given node and/or kind. *)
val filter : ?node:int -> ?kind:string -> t -> entry list

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

(** One JSON object per line ({i time}, {i node}, {i kind}, plus the event's
    fields), chronological. *)
val to_jsonl : t -> string

exception Import_error of string

(** Parse {!to_jsonl} output back into entries (unknown kinds become {!Ext});
    raises {!Import_error} on malformed input. *)
val entries_of_jsonl : string -> entry list
