(** Service-mode workload descriptions — the fully-data recipe for one
    recurrent-agreement service run.

    A workload describes the open-loop arrival process, the admission-control
    knobs (retry-queue bound, load watermarks), the client retry policy and
    the optional pulse layer. {!Service.attach} interprets it inside a
    {!Ssba_harness.Runner} run; the JSON codec is lossless (every float
    through [Json.Num]), so a service-carrying fuzz spec replays
    byte-for-byte. *)

type arrivals =
  | Poisson of { rate : float }  (** open-loop, exponential gaps *)
  | Bursty of { rate : float; burst : int; every : float }
      (** Poisson base load plus [burst] simultaneous arrivals every [every]
          seconds — the overload trigger *)

type t = {
  arrivals : arrivals;
  start_at : float;  (** first arrival no earlier than this *)
  stop_at : float;
      (** arrivals cease here; the run then drains to the horizon — leave
          the oracle enough slack to prove the drain *)
  channels : int;
      (** concurrent-invocation channels (paper footnote 9): jobs rotate
          over [n * channels] logical Generals *)
  queue_cap : int;  (** bounded retry queue; 0 disables parking entirely *)
  high_watermark : float;
      (** worst per-node live/capacity session fraction at which the
          overload detector flips to degraded (admit-nothing-new) mode *)
  low_watermark : float;  (** fraction at which degraded mode exits *)
  retry_max : int;  (** attempts per job, first try included *)
  retry_base : float;
      (** exponential-backoff base in seconds; the effective delay is
          jittered deterministically and floored at [Delta_0] so retries
          respect the General-side initiation spacing *)
  pulse_cycles : int;
      (** [> 0] additionally runs a {!Ssba_pulse.Pulse_sync} layer on every
          initially-correct node (the value documents the intended cycle
          count; cycling continues to the horizon) *)
}

val default : t

(** The base arrival rate of either model. *)
val rate : arrivals -> float

(** Structural sanity: positive rates, [start_at < stop_at], watermarks in
    (0, 1] with [low <= high], at least one attempt per job. *)
val validate : t -> (unit, string) result

val to_json : t -> Ssba_sim.Json.t
val of_json : Ssba_sim.Json.t -> (t, string) result
val pp : Format.formatter -> t -> unit
