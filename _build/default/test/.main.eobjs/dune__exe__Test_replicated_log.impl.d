test/test_replicated_log.ml: Alcotest Cluster Helpers List Printf Ssba_apps String
