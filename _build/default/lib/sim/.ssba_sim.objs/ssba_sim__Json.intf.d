lib/sim/json.mli: Buffer
