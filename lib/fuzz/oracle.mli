(** The fuzzer's verdict on one spec: run it and check every property the
    paper entitles us to under that spec's fault mix.

    Always checked: message conservation. The pairwise Agreement oracle runs
    after the run's re-stabilization point (last disruptive event plus
    [Delta_stb]; from the start if nothing disrupts) — skipped only when
    persistent link faults run without a transport, since such a run never
    returns to the paper's model. On "reliable" specs — no disruptive events
    at all, which includes transport-masked [Loss]/[Duplicate]/[Reorder] —
    additionally, per accepted proposal: Validity, Termination and the
    Timeliness-1a decision-skew deadline. On calm specs (no events of any
    kind) the {!Ssba_harness.Invariants} IA/TPS monitor runs too. *)

type failure = { oracle : string; detail : string }

type report = {
  digest : string;  (** {!Ssba_harness.Checks.result_digest} of the run *)
  failures : failure list;  (** empty means every applicable oracle passed *)
}

type config = {
  check_invariants : bool;
  check_timeliness : bool;
  skew_deadline_scale : float;
      (** scales the Timeliness-1a 3d decision-skew deadline; 1.0 is the
          paper's bound, smaller values deliberately weaken the oracle's
          tolerance (used to prove the fuzzer catches violations) *)
  assume_coherent : bool;
      (** pretend every link fault is masked even without a transport: run
          the full reliable-class oracles regardless of the event schedule.
          Unsound by design — it exists so the regression suite can show the
          bare protocol losing Termination over persistently lossy links
          that the transport would have masked *)
}

val default_config : config

(** Compile, run, and judge one spec. *)
val run : ?config:config -> Spec.t -> Ssba_harness.Runner.result * report

val failed : report -> bool
val pp_failure : Format.formatter -> failure -> unit
