(** The fuzzer's verdict on one spec: run it and check every property the
    paper entitles us to under that spec's fault mix.

    Always checked: message conservation. Agreement is checked per
    {!Ssba_harness.Coherence} interval via
    {!Ssba_harness.Checks.recovery_report}: inside {e every} maximal
    coherent interval, from [Delta_stb] after the interval opens — so
    incoherent tails (unrecovered crashes, unmasked persistent link faults)
    contribute nothing, while violations in early coherent windows that a
    last-disruption-only cutoff would miss are caught. Each measured
    per-episode stabilization time must stay within [Delta_stb]
    (["recovery-time"] failures otherwise). Per accepted proposal, Validity,
    Termination and the Timeliness-1a decision-skew deadline run on
    "reliable" specs — no disruptive events at all, which includes
    transport-masked [Loss]/[Duplicate]/[Reorder] — and, under disruptions,
    on proposals whose full termination window fits inside the checked part
    of one coherent interval (§6.1 re-entitles exactly those). On calm specs
    (no events of any kind) the {!Ssba_harness.Invariants} IA/TPS monitor
    runs too. *)

type failure = { oracle : string; detail : string }

type report = {
  digest : string;  (** {!Ssba_harness.Checks.result_digest} of the run *)
  failures : failure list;  (** empty means every applicable oracle passed *)
}

type config = {
  check_invariants : bool;
  check_timeliness : bool;
  skew_deadline_scale : float;
      (** scales the Timeliness-1a 3d decision-skew deadline; 1.0 is the
          paper's bound, smaller values deliberately weaken the oracle's
          tolerance (used to prove the fuzzer catches violations) *)
  assume_coherent : bool;
      (** pretend every link fault is masked even without a transport: run
          the full reliable-class oracles regardless of the event schedule
          (and the pre-coherence-timeline whole-run Agreement check).
          Unsound by design — it exists so the regression suite can show the
          bare protocol losing Termination over persistently lossy links
          that the transport would have masked *)
  recovery_stb_scale : float;
      (** scales the [Delta_stb] offset at which each coherent interval's
          Agreement check begins; 1.0 is the paper's bound, smaller values
          deliberately check before stabilization is owed (used to prove the
          per-interval oracle catches pre-stabilization divergence that the
          old last-disruption-only check never saw) *)
}

val default_config : config

(** Compile, run, and judge one spec. *)
val run : ?config:config -> Spec.t -> Ssba_harness.Runner.result * report

val failed : report -> bool
val pp_failure : Format.formatter -> failure -> unit
