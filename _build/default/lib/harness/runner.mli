(** Scenario interpreter: build the simulation, apply the event schedule, run
    to the horizon, and package everything the metrics and property layers
    need. A run is a pure function of its scenario (including the seed). *)

open Ssba_core.Types

type observation = {
  obs_node : node_id;
  obs_g : general;  (** the (logical) General whose instance fired the event *)
  obs : Ssba_core.Ss_byz_agree.observation;
  obs_rt : float;  (** engine real time at which the event fired *)
}

type result = {
  scenario : Scenario.t;
  returns : return_info list;  (** correct-node returns, in rt order *)
  observations : observation list;
      (** chronological; empty unless [record_observations] was set *)
  correct : node_id list;
  clocks : Ssba_sim.Clock.t array;  (** per node id, Byzantine slots included *)
  nodes : (node_id * Ssba_core.Node.t) list;  (** the correct protocol nodes *)
  proposal_results :
    (Scenario.proposal * (unit, Ssba_core.Node.propose_error) Stdlib.result) list;
  engine_stats : Ssba_sim.Engine.stats;
  messages_sent : int;
  messages_by_kind : (string * int) list;
  trace : Ssba_sim.Trace.t;
}

(** Run a scenario to its horizon. *)
val run : Scenario.t -> result

(** Same run, paced against the wall clock at [speed] virtual seconds per
    wall second (live-demo mode); results are identical to {!run}. *)
val run_paced : ?speed:float -> Scenario.t -> result
