(** The experiment suite (DESIGN.md §4 / EXPERIMENTS.md): one function per
    reproduced table or figure. Each prints its table to stdout; all runs are
    deterministic in their (default) seeds. *)

(** E1 — Validity under a correct General (Thm 3, Timeliness 2): sweep [ns]
    with [f] crash-silent slots; report unanimity, latency, skew and the
    paper's 4d window. *)
val e1_validity : ?ns:int list -> ?seeds:int list -> unit -> unit

(** E2 — Agreement under Byzantine Generals/participants: six attack casts,
    checked with the pairwise oracle. *)
val e2_agreement : ?ns:int list -> ?seeds:int list -> unit -> unit

(** E3 — Message-driven vs time-driven latency across actual-delay ratios,
    against the TPS'87 and EIG baselines. *)
val e3_msgdriven : ?ratios:float list -> ?n:int -> ?seeds:int list -> unit -> unit

(** E4 — Convergence from scrambled states: success rate of proposals at
    fractions of [Delta_stb] (Corollary 5). *)
val e4_convergence : ?n:int -> ?runs:int -> ?fractions:float list -> unit -> unit

(** E5 — Timeliness: measured maxima vs the paper bounds. *)
val e5_timeliness : ?ns:int list -> ?seeds:int list -> unit -> unit

(** E6 — Termination vs actual faults f' under the round-stretcher
    adversary: linear (2f'+5) Phi, capped by block U. *)
val e6_early_stop : ?n:int -> ?fprimes:int list option -> unit -> unit

(** E7 — Message complexity per agreement (Theta(n^2) per broadcast, n
    broadcasts in the fast path). *)
val e7_msg_complexity : ?ns:int list -> unit -> unit

(** E8 — Pulse synchronization atop recurrent agreement: per-cycle skews. *)
val e8_pulse : ?n:int -> ?cycles:int -> ?byzantine:int -> unit -> unit

(** E9 — Primitive-level IA/TPS properties audited from observed events. *)
val e9_invariants : ?ns:int list -> ?seeds:int list -> unit -> unit

(** E10 — Lossy links: agreement success, latency and retransmission cost
    across persistent loss rates [ps], with and without the reliable
    transport. *)
val e10_lossy_links : ?n:int -> ?ps:float list -> ?seeds:int list -> unit -> unit

(** E11 — Engine scale sweep: one correct-General agreement at each [n],
    timed against the wall clock (best of [repeats]). The virtual-time
    columns (events, decided) are deterministic in [seed]. *)
type scale_row = {
  sr_n : int;
  sr_events : int;
  sr_wall_ms : float;
  sr_events_per_sec : float;
  sr_wall_ms_per_sim_s : float;
  sr_decided : bool;
}

(** The raw sweep, for the bench harness's JSON export. *)
val e11_scale_rows :
  ?ns:int list -> ?seed:int -> ?repeats:int -> unit -> scale_row list

val e11_scale : ?ns:int list -> ?seed:int -> ?repeats:int -> unit -> unit

(** E12 — Recovery under continuous churn: run each {!Chaos} pattern's
    episodic disruption schedule and measure, per coherent interval, the
    time from return-to-coherence to the first unanimous probe agreement;
    every measured recovery must be within [Delta_stb] (§6.1). *)
val e12_churn : ?ns:int list -> ?seeds:int list -> ?episodes:int -> unit -> unit

(** E13 — Concurrent overlapping sessions per node (paper footnote 9): for
    each count [k] in [sessions], spread [k] logical Generals over the nodes
    via invocation channels and fire them all within one [d]. Asserts the
    session-table memory bound (peak live <= capacity) on every node. *)
val e13_sessions : ?n:int -> ?sessions:int list -> ?seed:int -> unit -> unit

(** Run E1 through E13 in order. *)
val run_all : unit -> unit
