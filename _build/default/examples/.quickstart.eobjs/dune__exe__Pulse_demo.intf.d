examples/pulse_demo.mli:
