(** Bounded exhaustive checker over the real protocol core.

    Runs the production {!Ssba_core.Node} / {!Ssba_sim.Engine} /
    {!Ssba_net.Network} stack with every source of nondeterminism — delivery
    delays (discretized to the config's lattice, grouped into choice classes)
    and Byzantine script menus — resolved by an explicit choice vector, then
    enumerates choice-vector prefixes breadth-first. States are fingerprinted
    for a visited set; partial-order reduction merges commuting delivery
    orders and never branches deliveries bound for (input-oblivious)
    Byzantine nodes. Runs are judged by the existing oracles. See DESIGN.md
    §10 for the soundness statement and its caveats. *)

open Ssba_core.Types

type choice = {
  c_label : string;  (** what was being decided *)
  c_options : int;
  c_picked : int;
}

type run = {
  prefix : int array;  (** the choice vector that produced this run *)
  choices : choice list;  (** fresh choice points, in execution order *)
  fingerprints : string list;  (** world fingerprint at each fresh choice *)
  next : (string * int * string) option;
      (** fingerprint, option count and label of the first choice point
          beyond the prefix; [None] when the run branched nowhere new *)
  pruned : bool;  (** aborted: the first free choice's state was visited *)
  violations : string list;  (** pairwise-agreement oracle + invariants *)
  splits : string list;  (** split decisions (see {!explore}) *)
  returns : return_info list;
  sends : ((node_id * node_id) * float) list;
      (** every send's chosen delay, in send order *)
  transcript : (node_id * (float * node_id option * message) list) list;
      (** what each Byzantine node actually sent ([None] dst = broadcast) *)
  events : int;  (** engine events processed *)
}

(** Execute one run under a fixed choice vector (choices beyond the vector
    default to option 0) and judge it. Deterministic: same config, [por] and
    vector give the same run. *)
val run_vector : Config.t -> por:bool -> int array -> run

type report = {
  config_name : string;
  por : bool;
  depth : int;
  explored : int;  (** runs executed (internal prefixes, leaves, pruned) *)
  judged : int;  (** complete choice assignments judged by the oracles *)
  pruned : int;  (** subtrees cut by the visited set *)
  frontier : int;  (** choice points left unexpanded by the depth bound *)
  deepest : int;  (** longest prefix reached *)
  violations : (string * int array) list;
      (** distinct oracle violations with a minimal-depth witness prefix *)
  splits : (string * int array) list;
      (** distinct split decisions — two correct nodes deciding different
          values for the same General with anchors within 4d (the IA-4a
          violation the re-initiation blackout prevents) *)
  counterexample : run option;
      (** first judged run with a split decision; breadth-first order makes
          it minimal in branching depth *)
  truncated : bool;  (** stopped by [max_runs], not by exhaustion *)
}

(** Breadth-first exhaustive exploration of the choice tree to [depth]
    branching points, with visited-state pruning. [max_runs] (default
    200_000) is a safety valve; [truncated] reports if it fired.

    [jobs] > 1 shards exploration at the root choice point: one BFS per root
    option, each on its own domain with its own visited set, then a
    deterministic merge — verdict-set union with per-verdict minimal
    witnesses (shortest prefix, then lexicographic — exactly the order
    serial BFS discovers witnesses in), counterexample minimal under the
    same order, counts summed in root-option order. The merged verdict sets
    equal the serial ones under exhaustion; the raw counts ([explored],
    [pruned], [frontier]) can be higher because per-shard visited sets
    forfeit cross-subtree pruning, and [max_runs] bounds each shard
    separately. *)
val explore :
  ?max_runs:int -> ?jobs:int -> Config.t -> por:bool -> depth:int -> report

val pp_prefix : Format.formatter -> int array -> unit
val pp_report : Format.formatter -> report -> unit

(** Pin an explored run as a replayable fuzz spec: the Byzantine transcript
    becomes a {!Ssba_adversary.Catalog.Scripted} cast and the delivery
    schedule a [Spec.Scripted] delay, so [ssba_fuzz --replay] re-executes
    the same world and reproduces the violation. *)
val spec_of_run : Config.t -> run -> name:string -> Ssba_fuzz.Spec.t

(** E14: states explored, POR reduction factor, smoke/split verdicts. *)
val e14 : ?depth:int -> unit -> unit
