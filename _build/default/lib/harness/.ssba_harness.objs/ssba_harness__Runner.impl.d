lib/harness/runner.ml: Array List Scenario Ssba_adversary Ssba_core Ssba_net Ssba_sim
