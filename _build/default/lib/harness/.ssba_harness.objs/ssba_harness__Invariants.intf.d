lib/harness/invariants.mli: Runner Ssba_core
