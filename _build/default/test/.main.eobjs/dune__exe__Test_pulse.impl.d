test/test_pulse.ml: Alcotest Array Cluster Float Helpers List Node Option Params Printf Ssba_core Ssba_pulse Ssba_sim
