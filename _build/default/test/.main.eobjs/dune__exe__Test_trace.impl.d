test/test_trace.ml: Fmt Helpers List Ssba_sim String
