lib/core/initiator_accept.mli: Ssba_sim Types
