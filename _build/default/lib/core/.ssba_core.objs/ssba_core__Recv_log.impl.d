lib/core/recv_log.ml: Hashtbl List
