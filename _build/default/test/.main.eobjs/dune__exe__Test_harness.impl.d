test/test_harness.ml: Alcotest Float Helpers List Params Ssba_core Ssba_harness String Types
