lib/harness/runner.ml: Array List Printf Scenario Ssba_adversary Ssba_core Ssba_net Ssba_sim Stdlib
