(** Message envelopes with authenticated sender identity (paper §2, Def. 2).

    [src] is stamped by the network itself; protocol code and Byzantine nodes
    cannot forge it. The [forged] flag exists only for the incoherent-period
    garbage the transient-fault injector delivers.

    Fields are mutable solely for the network's envelope pool (records are
    recycled between deliveries). Handlers receive an envelope as a read-only
    snapshot valid for the duration of the call: copy fields out, never
    retain the record or write to it. *)

type 'a t = {
  mutable src : int;
  mutable dst : int;
  mutable sent_at : float;  (** real time at which the send was issued *)
  mutable forged : bool;  (** true only for incoherent-period garbage *)
  mutable payload : 'a;
}

(** An authentic envelope. *)
val make : src:int -> dst:int -> sent_at:float -> 'a -> 'a t

(** A forged envelope (fault injection only). *)
val forge : claimed_src:int -> dst:int -> sent_at:float -> 'a -> 'a t

(** Same envelope (src, dst, timestamps, forged flag), new payload. Lets a
    transport layer unwrap a frame without laundering the forged flag. *)
val with_payload : 'a t -> 'b -> 'b t

(** Overwrite every field in place (network pool recycling only). *)
val set :
  'a t -> src:int -> dst:int -> sent_at:float -> forged:bool -> 'a -> unit

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
