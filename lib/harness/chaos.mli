(** Continuous-churn chaos schedules.

    Deterministic generators for the event/proposal schedules the recovery
    oracle needs: a run is carved into episodes, each opening with one
    disruption and closing with two probe agreements — one {e before} the
    [Delta_stb] deadline (measuring the actual stabilization time) and one
    after it (where §6.1 entitles full Agreement/Validity/Timeliness). The
    schedules contain no randomness: given the same arguments they are the
    same lists, so replay files and corpus digests stay byte-stable. *)

open Ssba_core.Types

type pattern =
  | Periodic_scramble  (** a transient-fault scramble every episode *)
  | Crash_wave
      (** crash one correct node (rotating) per episode, recover it
          [2 Delta_agr] later *)
  | Surge_cycle
      (** scale delays to 3x [delta] (violating §2 Def. 2) per episode,
          restore [2 Delta_agr] later *)
  | Rejoin
      (** reform one Byzantine node per episode (falling back to scrambles
          once the Byzantine cast is exhausted) *)

val all_patterns : pattern list
val pattern_name : pattern -> string

(** Inverse of {!pattern_name} ([Error] lists the valid names). *)
val pattern_of_name : string -> (pattern, string) result

type schedule = {
  events : Scenario.event list;  (** time-sorted *)
  proposals : Scenario.proposal list;
  horizon : float;
}

(** [schedule pattern ~params ~correct ~byzantine] builds [episodes]
    (default 3) churn episodes starting at [start] (default [0.1]). Each
    episode fires its disruption, then probes at [resume + 0.55 Delta_stb]
    (past the worst [Delta_reset] quiet period a scramble can install, and
    completing within the [Delta_stb] recovery-measurement window) and
    [resume + Delta_stb + 10d] (inside the entitled region of the coherent
    interval), where [resume] is when coherence re-establishes (the
    disruption time, or the recover/restore time for crash waves and
    surges). Probe Generals rotate over [correct]; probe values are distinct
    throughout, keeping [IG2] happy. *)
val schedule :
  ?episodes:int ->
  ?start:float ->
  pattern ->
  params:Ssba_core.Params.t ->
  correct:node_id list ->
  byzantine:node_id list ->
  schedule
