(* Primitive-level invariant monitor.

   The agreement-level oracles in Checks validate what the user sees; this
   module validates the *primitives'* contracts directly from the
   fine-grained observations a run can record (Scenario.record_observations):

   [IA-1] (Correctness, correct General known to have initiated at t0):
     1A  every correct node I-accepts within 4d of t0;
     1B  the I-accepts are within 2d of each other;
     1C  the anchors rt(tau_g) are within d of each other;
     1D  t0 - d <= rt(tau_g) <= rt(tau_accept) <= t0 + 4d per node.
   [IA-3] (Relay): if any correct node I-accepts (with a live anchor), every
     correct node I-accepts within 2d, with anchors within 6d.
   [IA-4] (Uniqueness): two I-accepts for the same General satisfy
     (4a) different values  => anchors > 4d apart;
     (4b) same value        => anchors <= 6d apart or > 2*Delta_rmv - 3d.
   [TPS-2] (Unforgeability): an accepted (p, v, k) with correct p implies p
     actually broadcast (v, k).
   [TPS-3] (Relay): an accept of (p, v, k) at local phase r implies every
     correct node accepts it by local phase r + 2.
   [TPS-4] (Detection): an accept of (p, v, k) implies every correct node
     holds p as a broadcaster by phase 2k + 2; and p in a correct node's
     broadcasters with correct p implies p broadcast something.

   Violations are returned as strings; an empty list means all monitored
   invariants hold. All real-time comparisons convert local anchors through
   the run's clocks, exactly like the paper's rt(.) notation. *)

open Ssba_core.Types
module A = Ssba_core.Ss_byz_agree

type iaccept = { node : node_id; v : value; rt_anchor : float; rt_accept : float }

let tol = 1e-9

let rt_of (res : Runner.result) ~id tau =
  Ssba_sim.Clock.real_time_of_reading res.Runner.clocks.(id) tau

let iaccepts (res : Runner.result) ~g =
  List.filter_map
    (fun (o : Runner.observation) ->
      if o.Runner.obs_g <> g then None
      else
        match o.Runner.obs with
        | A.Obs_iaccept { v; tau_g; tau = _ } ->
            Some
              {
                node = o.Runner.obs_node;
                v;
                rt_anchor = rt_of res ~id:o.Runner.obs_node tau_g;
                rt_accept = o.Runner.obs_rt;
              }
        | A.Obs_mb_accept _ | A.Obs_broadcast _ | A.Obs_broadcaster _ -> None)
    res.Runner.observations

let generals (res : Runner.result) =
  List.sort_uniq compare
    (List.map (fun (o : Runner.observation) -> o.Runner.obs_g) res.Runner.observations)

(* Cluster I-accepts for one General into (G, tau_g) sessions: a session is
   keyed by its root anchor — the earliest rt(tau_g) — and an accept belongs
   to it iff its own anchor is within 6d of that root ([IA-3]'s anchor-skew
   bound). The membership test is deliberately *non-transitive*: chaining
   consecutive accepts (a <= 6d from its predecessor) would let a long smear
   of anchors weld genuinely distinct sessions into one cluster, and a
   monitor that conflates sessions both misattributes [IA-3A] coverage and
   waters down the [IA-4] uniqueness judgement. Each session is judged
   independently against the session key, exactly like the protocol core
   keys its state. *)
let cluster_iaccepts ~d accepts =
  let sorted = List.sort (fun a b -> compare a.rt_anchor b.rt_anchor) accepts in
  let rec go root cur acc = function
    | [] -> List.rev (match cur with [] -> acc | _ -> List.rev cur :: acc)
    | a :: tl -> (
        match cur with
        | [] -> go a.rt_anchor [ a ] acc tl
        | _ when a.rt_anchor -. root <= (6.0 *. d) +. tol -> go root (a :: cur) acc tl
        | _ -> go a.rt_anchor [ a ] (List.rev cur :: acc) tl)
  in
  go nan [] [] sorted

let check_ia_1 (res : Runner.result) ~g ~t0 =
  let params = (res.Runner.scenario).Scenario.params in
  let d = params.Ssba_core.Params.d in
  let violations = ref [] in
  let complain fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let accs =
    List.filter
      (fun a -> a.rt_accept >= t0 -. tol && a.rt_accept <= t0 +. (8.0 *. d))
      (iaccepts res ~g)
  in
  let correct = res.Runner.correct in
  if List.length accs < List.length correct then
    complain "IA-1A: only %d/%d correct nodes I-accepted within 4d of t0"
      (List.length accs) (List.length correct);
  List.iter
    (fun a ->
      if a.rt_accept -. t0 > (4.0 *. d) +. tol then
        complain "IA-1A: node %d I-accepted %.2fd after t0" a.node
          ((a.rt_accept -. t0) /. d);
      (* 1D *)
      if a.rt_anchor < t0 -. d -. tol then
        complain "IA-1D: node %d anchored %.2fd before t0" a.node
          ((t0 -. a.rt_anchor) /. d);
      if a.rt_anchor > a.rt_accept +. tol then
        complain "IA-1D: node %d anchor after accept" a.node)
    accs;
  (match accs with
  | [] -> ()
  | _ ->
      let ts = List.map (fun a -> a.rt_accept) accs in
      let span = Metrics.maximum ts -. Metrics.minimum ts in
      if span > (2.0 *. d) +. tol then
        complain "IA-1B: accepts %.2fd apart (bound 2d)" (span /. d);
      let anchors = List.map (fun a -> a.rt_anchor) accs in
      let aspan = Metrics.maximum anchors -. Metrics.minimum anchors in
      if aspan > d +. tol then
        complain "IA-1C: anchors %.2fd apart (bound 1d)" (aspan /. d));
  List.rev !violations

let check_ia_3_4 (res : Runner.result) =
  let params = (res.Runner.scenario).Scenario.params in
  let d = params.Ssba_core.Params.d in
  let drmv = params.Ssba_core.Params.delta_rmv in
  let violations = ref [] in
  let complain fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let settle = params.Ssba_core.Params.delta_agr in
  let cutoff = (res.Runner.scenario).Scenario.horizon -. settle in
  List.iter
    (fun g ->
      let accs = iaccepts res ~g in
      (* IA-3: every execution cluster must cover all correct nodes, with
         accepts within 2d. Skip clusters too close to the horizon. *)
      List.iter
        (fun cluster ->
          let latest = Metrics.maximum (List.map (fun a -> a.rt_accept) cluster) in
          if latest <= cutoff then begin
            let nodes = List.sort_uniq compare (List.map (fun a -> a.node) cluster) in
            if List.length nodes < List.length res.Runner.correct then
              complain
                "IA-3A: G=%d execution at rt=%.4f reached only %d/%d correct nodes"
                g latest (List.length nodes)
                (List.length res.Runner.correct);
            let ts = List.map (fun a -> a.rt_accept) cluster in
            if Metrics.maximum ts -. Metrics.minimum ts > (2.0 *. d) +. tol then
              complain "IA-3A: G=%d accepts %.2fd apart (bound 2d)" g
                ((Metrics.maximum ts -. Metrics.minimum ts) /. d);
            (* within one execution all values must agree (IA-4 collapse) *)
            match List.sort_uniq compare (List.map (fun a -> a.v) cluster) with
            | [] | [ _ ] -> ()
            | vs ->
                complain "IA-4: G=%d one execution accepted several values: %s" g
                  (String.concat ", " vs)
          end)
        (cluster_iaccepts ~d accs);
      (* IA-4 across executions: pairwise anchor separations *)
      List.iter
        (fun a1 ->
          List.iter
            (fun a2 ->
              if a1.node < a2.node || (a1.node = a2.node && a1.rt_anchor < a2.rt_anchor)
              then begin
                let gap = Float.abs (a1.rt_anchor -. a2.rt_anchor) in
                if (not (String.equal a1.v a2.v)) && gap <= (4.0 *. d) +. tol then
                  complain
                    "IA-4a: G=%d values %S/%S anchored %.2fd apart (need > 4d)" g
                    a1.v a2.v (gap /. d);
                if
                  String.equal a1.v a2.v
                  && gap > (6.0 *. d) +. tol
                  && gap <= (2.0 *. drmv) -. (3.0 *. d) +. tol
                then
                  complain
                    "IA-4b: G=%d value %S anchored %.2fd apart (forbidden zone)" g
                    a1.v (gap /. d)
              end)
            accs)
        accs)
    (generals res);
  List.rev !violations

let check_tps (res : Runner.result) =
  let params = (res.Runner.scenario).Scenario.params in
  let d = params.Ssba_core.Params.d in
  let phi = params.Ssba_core.Params.phi in
  let violations = ref [] in
  let complain fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let settle = params.Ssba_core.Params.delta_agr in
  let cutoff = (res.Runner.scenario).Scenario.horizon -. settle in
  (* The TPS relay/detection obligations bind nodes still running the
     primitive. A node that already returned from G's instance (e.g. through
     block R's fast path) before the execution's traffic reached it has
     terminated that invocation and owes nothing — demanding its accept is
     exactly the kind of over-strict oracle a fuzzer flushes out. *)
  let returned_before ~g ~node ~by =
    List.exists
      (fun (r : return_info) ->
        r.node = node && r.g = g && r.rt_ret <= by +. tol
        && by -. r.rt_ret <= params.Ssba_core.Params.delta_agr)
      res.Runner.returns
  in
  let unexcused ~g ~by present =
    List.filter
      (fun q -> not (List.mem q present) && not (returned_before ~g ~node:q ~by))
      res.Runner.correct
  in
  (* own broadcasts per (node, g): (v, k) list *)
  let broadcasts = Hashtbl.create 16 in
  List.iter
    (fun (o : Runner.observation) ->
      match o.Runner.obs with
      | A.Obs_broadcast { v; k; _ } ->
          let key = (o.Runner.obs_node, o.Runner.obs_g) in
          Hashtbl.replace broadcasts key
            ((v, k) :: Option.value ~default:[] (Hashtbl.find_opt broadcasts key))
      | A.Obs_iaccept _ | A.Obs_mb_accept _ | A.Obs_broadcaster _ -> ())
    res.Runner.observations;
  (* accepts and broadcaster detections grouped by (g, p, v, k) / (g, p);
     accepts carry the contemporaneous anchor for phase arithmetic *)
  let accepts = Hashtbl.create 16 in
  let detections = Hashtbl.create 16 in
  List.iter
    (fun (o : Runner.observation) ->
      match o.Runner.obs with
      | A.Obs_mb_accept { p; v; k; tau; tau_g } ->
          let key = (o.Runner.obs_g, p, v, k) in
          Hashtbl.replace accepts key
            ((o.Runner.obs_node, tau, tau_g, o.Runner.obs_rt)
            :: Option.value ~default:[] (Hashtbl.find_opt accepts key))
      | A.Obs_broadcaster { p; tau = _ } ->
          let key = (o.Runner.obs_g, p) in
          Hashtbl.replace detections key
            ((o.Runner.obs_node, o.Runner.obs_rt)
            :: Option.value ~default:[] (Hashtbl.find_opt detections key))
      | A.Obs_iaccept _ | A.Obs_broadcast _ -> ())
    res.Runner.observations;
  (* TPS-2: accepted (p, v, k) with correct p => p broadcast (v, k) *)
  Hashtbl.iter
    (fun (g, p, v, k) _ ->
      if List.mem p res.Runner.correct then
        let own = Option.value ~default:[] (Hashtbl.find_opt broadcasts (p, g)) in
        if not (List.mem (v, k) own) then
          complain "TPS-2: G=%d accepted (%d, %S, %d) but correct %d never broadcast it"
            g p v k p)
    accepts;
  (* A Byzantine General may drive recurrent executions; accepts for the same
     triplet then recur. Cluster them into executions by real-time proximity
     (executions are Delta_v or Delta_0-expiry apart, far beyond Dagr). *)
  let clusters accs =
    let sorted =
      List.sort (fun (_, _, _, a) (_, _, _, b) -> compare a b) accs
    in
    let gap = params.Ssba_core.Params.delta_agr in
    let rec go cur acc = function
      | [] -> List.rev (match cur with [] -> acc | _ -> List.rev cur :: acc)
      | x :: tl -> (
          match cur with
          | [] -> go [ x ] acc tl
          | (_, _, _, prev) :: _ ->
              let _, _, _, rt = x in
              if rt -. prev > gap then go [ x ] (List.rev cur :: acc) tl
              else go (x :: cur) acc tl)
    in
    go [] [] sorted
  in
  (* TPS-3: within one execution, every correct node accepts, within two
     phases of each other (phases measured against each node's own anchor). *)
  Hashtbl.iter
    (fun (g, p, v, k) accs ->
      List.iter
        (fun cluster ->
          let rts = List.map (fun (_, _, _, rt) -> rt) cluster in
          if Metrics.maximum rts <= cutoff then begin
            let nodes =
              List.sort_uniq compare (List.map (fun (nd, _, _, _) -> nd) cluster)
            in
            (match unexcused ~g ~by:(Metrics.minimum rts) nodes with
            | [] -> ()
            | missing ->
                complain
                  "TPS-3: G=%d (%d, %S, %d) accepted at %d/%d correct nodes \
                   (missing, not returned: %s)"
                  g p v k (List.length nodes)
                  (List.length res.Runner.correct)
                  (String.concat "," (List.map string_of_int missing)));
            let phases =
              List.filter_map
                (fun (_, tau, tg, _) ->
                  if Float.is_nan tg then None else Some ((tau -. tg) /. phi))
                cluster
            in
            match phases with
            | [] -> ()
            | _ ->
                if Metrics.maximum phases -. Metrics.minimum phases > 2.0 +. 1e-6
                then
                  complain "TPS-3: G=%d (%d, %S, %d) accepted %0.2f phases apart" g
                    p v k
                    (Metrics.maximum phases -. Metrics.minimum phases)
          end)
        (clusters accs))
    accepts;
  (* TPS-4 second part: a correct node in broadcasters must have broadcast *)
  Hashtbl.iter
    (fun (g, p) _ ->
      if List.mem p res.Runner.correct then
        let own = Option.value ~default:[] (Hashtbl.find_opt broadcasts (p, g)) in
        if own = [] then
          complain "TPS-4: G=%d correct node %d detected as broadcaster without broadcasting"
            g p)
    detections;
  (* TPS-4 first part: per execution, an accepted (p, v, k) implies p is
     detected as a broadcaster at every correct node within ~Dagr. *)
  Hashtbl.iter
    (fun (g, p, v, k) accs ->
      ignore v;
      ignore k;
      List.iter
        (fun cluster ->
          let rts = List.map (fun (_, _, _, rt) -> rt) cluster in
          let hi = Metrics.maximum rts and lo = Metrics.minimum rts in
          if hi <= cutoff then begin
            let window_lo = lo -. params.Ssba_core.Params.delta_agr in
            let window_hi = hi +. params.Ssba_core.Params.delta_agr in
            let det =
              Option.value ~default:[] (Hashtbl.find_opt detections (g, p))
              |> List.filter (fun (_, rt) -> rt >= window_lo && rt <= window_hi)
              |> List.map fst |> List.sort_uniq compare
            in
            match unexcused ~g ~by:hi det with
            | [] -> ()
            | missing ->
                complain
                  "TPS-4: G=%d broadcaster %d detected at only %d/%d correct \
                   nodes (missing, not returned: %s)"
                  g p (List.length det)
                  (List.length res.Runner.correct)
                  (String.concat "," (List.map string_of_int missing))
          end)
        (clusters accs))
    accepts;
  ignore d;
  List.rev !violations

(* All monitored invariants at once (IA-1 needs the initiation time, so it is
   separate: {!check_ia_1}). *)
let check (res : Runner.result) = check_ia_3_4 res @ check_tps res
