(* Pulse synchronization atop recurrent ss-Byz-Agree.

   The paper notes ([6], §1) that synchronized pulses can be produced
   efficiently *on top of* ss-Byz-Agree, and that such pulses in turn make
   any Byzantine algorithm self-stabilizing. This module implements that
   application in its natural simplified form, exercising the protocol's
   recurrent-agreement / rotating-General mode:

   - cycles are numbered; the General for cycle i is node (i mod n);
   - a node fires pulse i when it decides on the agreement for value
     "pulse-<i>" (whoever the General was). By Timeliness 1(a), decisions at
     correct nodes are within 3d of each other, so pulses inherit that skew;
   - after firing pulse i, the scheduled General for cycle i+1 proposes
     "pulse-<i+1>" one [cycle] later on its own clock; every other node arms
     a timeout ladder: if pulse i+1 has not fired within
     cycle + (j+1) * patience, the node whose id matches (i+1+j) mod n
     proposes it instead, skipping silent or Byzantine Generals;
   - a decided cycle index always fast-forwards laggards (a node hearing
     pulse j > its own counter adopts j), which is what re-synchronizes
     nodes after transient faults.

   The cycle length must dominate the agreement and separation constants;
   [min_cycle] gives the safe floor (Delta_v would only bind if the same
   value were reused — values here are unique per cycle, so Delta_0 plus the
   agreement bound suffices, with patience covering Byzantine skips). *)

open Ssba_core.Types
module Node = Ssba_core.Node
module Params = Ssba_core.Params

type pulse = {
  cycle : int;
  tau : float;  (* local time of the pulse *)
  rt : float;  (* simulator real time (for skew measurement) *)
}

type t = {
  node : Node.t;
  cycle_len : float;
  patience : float;  (* per-candidate takeover timeout *)
  mutable next_cycle : int;  (* the pulse we are waiting for *)
  mutable pulses : pulse list;  (* newest first *)
  mutable on_pulse : pulse -> unit;
  mutable epoch : int;  (* invalidates stale timeout ladders *)
}

let value_of_cycle i = Printf.sprintf "pulse-%d" i

let cycle_of_value v =
  match String.index_opt v '-' with
  | Some idx when String.sub v 0 idx = "pulse" -> (
      match int_of_string_opt (String.sub v (idx + 1) (String.length v - idx - 1)) with
      | Some i when i >= 0 -> Some i
      | Some _ | None -> None)
  | Some _ | None -> None

let general_of_cycle t i = i mod (Node.params t.node).Params.n

let pulses t = List.rev t.pulses
let set_on_pulse t f = t.on_pulse <- f
let next_cycle t = t.next_cycle

let min_cycle params =
  params.Params.delta_0 +. params.Params.delta_agr +. (10.0 *. params.Params.d)

let propose_cycle t i =
  if general_of_cycle t i = Node.id t.node then
    match Node.propose t.node (value_of_cycle i) with
    | Ok () -> ()
    | Error _ -> ()  (* rate-limited or blocked; the ladder will retry later *)

(* Arm the timeout ladder for cycle [i]: candidate j (node (i + j) mod n)
   takes over after cycle_len + j * patience on its own clock if the pulse
   has not fired by then. j = 0 is the scheduled General's regular slot. *)
let arm_ladder t i =
  let epoch = t.epoch in
  let n = (Node.params t.node).Params.n in
  let after_local dl f =
    Ssba_sim.Engine.schedule_after (Node.engine t.node)
      ~delay:(Ssba_sim.Clock.real_of_local_duration (Node.clock t.node) dl)
      f
  in
  for j = 0 to n - 1 do
    let candidate = (i + j) mod n in
    if candidate = Node.id t.node then
      after_local
        (t.cycle_len +. (float_of_int j *. t.patience))
        (fun () ->
          if t.epoch = epoch && t.next_cycle <= i then
            match Node.propose t.node (value_of_cycle i) with
            | Ok () -> ()
            | Error _ -> ())
  done

let fire t ~cycle ~tau ~rt =
  let p = { cycle; tau; rt } in
  t.pulses <- p :: t.pulses;
  t.next_cycle <- cycle + 1;
  t.epoch <- t.epoch + 1;
  t.on_pulse p;
  arm_ladder t (cycle + 1)

let handle_return t (r : return_info) =
  match r.outcome with
  | Aborted -> ()
  | Decided v -> (
      match cycle_of_value v with
      | Some i when i >= t.next_cycle -> fire t ~cycle:i ~tau:r.tau_ret ~rt:r.rt_ret
      | Some _ | None -> ())

let create ~node ~cycle_len ?patience () =
  let params = Node.params node in
  if cycle_len < min_cycle params then
    invalid_arg "Pulse_sync.create: cycle_len below the safe floor";
  let patience =
    match patience with
    | Some p -> p
    | None -> params.Params.delta_agr +. (20.0 *. params.Params.d)
  in
  let t =
    { node; cycle_len; patience; next_cycle = 0; pulses = []; on_pulse = (fun _ -> ()); epoch = 0 }
  in
  Node.subscribe node (fun r -> handle_return t r);
  t

(* Bootstrap: start the ladder for cycle 0 (General = node 0). *)
let start t =
  propose_cycle t 0;
  arm_ladder t 0
