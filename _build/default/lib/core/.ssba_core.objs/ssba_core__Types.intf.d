lib/core/types.mli: Format Params
