lib/net/network.ml: Array Delay Hashtbl List Msg Option Ssba_sim
