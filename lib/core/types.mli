(** Shared protocol types: everything a node may put on the wire, the
    returns it reports, and the execution context the state machines run
    against. The sender identity is always carried by the network envelope
    (authenticated), never inside a payload. *)

type node_id = int

type general = node_id
(** A General id. With the footnote-9 channels extension this may be a
    {e logical} id in [0, n * channels); the physical node behind it is
    [g mod n]. *)

type value = string

(** Initiator-Accept message kinds (Figure 2). *)
type ia_kind = Support | Approve | Ready

(** msgd-broadcast message kinds (Figure 3); [Init2]/[Echo2] are the paper's
    primed init'/echo'. *)
type mb_kind = Init | Echo | Init2 | Echo2

type message =
  | Initiator of { g : general; v : value }
      (** the General's initiation (block Q0) *)
  | Ia of { kind : ia_kind; g : general; v : value }
  | Mb of { kind : mb_kind; p : node_id; g : general; v : value; k : int }
      (** broadcast traffic: broadcaster [p], agreement instance [g], round
          tag [k] *)

(** What an agreement instance returns (Definition 7). *)
type outcome = Decided of value | Aborted

type return_info = {
  node : node_id;
  g : general;
  outcome : outcome;
  tau_g : float;  (** the local anchor rt(tau_g) is measured against *)
  tau_ret : float;  (** local return time *)
  rt_ret : float;  (** simulator real time of the return *)
}

val string_of_ia_kind : ia_kind -> string
val string_of_mb_kind : mb_kind -> string

(** Coarse classifier for per-kind network statistics. *)
val kind_of_message : message -> string

val pp_message : Format.formatter -> message -> unit
val pp_outcome : Format.formatter -> outcome -> unit
val pp_return : Format.formatter -> return_info -> unit
val equal_outcome : outcome -> outcome -> bool

type ctx = {
  params : Params.t;
  self : node_id;
  local_time : unit -> float;  (** current local-clock reading *)
  send_all : message -> unit;  (** broadcast to all nodes, self included *)
  after_local : float -> (unit -> unit) -> unit;
      (** arm a timer a local-time duration ahead *)
  trace : Ssba_sim.Trace.event -> unit;
      (** record a typed event; rendered only when tracing is enabled *)
}
(** Execution context handed to the protocol state machines by the node
    glue; every layer is unit-testable against a fake one. *)
