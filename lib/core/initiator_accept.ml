(* The Initiator-Accept primitive (paper Figure 2, §4).

   One instance runs per (node, General). The primitive makes all correct
   nodes associate a bounded-skew local-time anchor tau^G with the General's
   initiation and converge on a single candidate value, even from an
   arbitrary (transiently corrupted) initial state.

   Block structure, transcribed from the figure:
     K  — invocation: on receiving (Initiator, G, m), check the freshness
          guards and send (support, G, m); record i_values[G,m] := tau - d.
     L  — on >= n-2f supports within a window of width <= 4d, refresh the
          recording time (L1/L2); on >= n-f supports within 2d, send approve
          (L3/L4).
     M  — on >= n-2f approves within 5d, raise ready_{G,m} (M1/M2); on
          >= n-f approves within 3d, send ready (M3/M4).
     N  — untimed amplification: with ready_{G,m} set, >= n-2f ready
          messages trigger our own ready (N1/N2) and >= n-f trigger the
          I-accept with tau^G := i_values[G,m] (N3/N4).
     cleanup — decay of messages/values older than Delta_rmv, and expiry of
          the rate-limiting variables last(G) and last(G,m).

   State kept per instance (names follow the paper):
     i_values[m]   — candidate recording times;
     ready_flag[m] — the ready_{G,m} variable with its set-time (decays);
     guard         — the {!Separation} guard holding the persistent
                     per-General rate limiters: last(G) (set at N4, expires
                     after Delta_0 - 6d), last(G,m) (the set of recent
                     set-times, because block K needs to know whether the
                     variable was defined d time units in the past —
                     Definition 8's freshness query), the per-kind send
                     times (duplicate suppression plus K1's "no
                     (support, G, *) sent within [tau-d, tau]" test), the
                     re-initiation blackout, and the IG3 report stamps.
                     The guard is shared by reference with the node so that
                     these variables outlive session reset/eviction/GC. *)

open Types

type invocation_report = {
  invoked_at : float option;  (* block K execution (this node invoked) *)
  l4_at : float option;  (* first approve send after invocation *)
  m4_at : float option;  (* first ready send after invocation *)
  n4_at : float option;  (* I-accept after invocation *)
}

type t = {
  g : general;
  ctx : ctx;
  support : (value, Recv_log.t) Hashtbl.t;
  approve : (value, Recv_log.t) Hashtbl.t;
  ready : (value, Recv_log.t) Hashtbl.t;
  i_values : (value, float) Hashtbl.t;
  ready_flag : (value, float) Hashtbl.t;  (* value -> set-time of ready_{G,m} *)
  guard : Separation.t;  (* persistent per-General separation state *)
  ignore_until : (value, float) Hashtbl.t;  (* N4's 3d ignore window *)
  blackout : bool;  (* false disables the re-initiation blackout (checker knob) *)
  mutable accepted : (value * float * float) option;  (* (m, tau_g, tau_accept) *)
  mutable on_accept : value -> tau_g:float -> unit;
}

let create ?(blackout = true) ?guard ~ctx ~g () =
  {
    g;
    ctx;
    support = Hashtbl.create 4;
    approve = Hashtbl.create 4;
    ready = Hashtbl.create 4;
    i_values = Hashtbl.create 4;
    ready_flag = Hashtbl.create 4;
    guard = (match guard with Some s -> s | None -> Separation.create ());
    ignore_until = Hashtbl.create 4;
    blackout;
    accepted = None;
    on_accept = (fun _ ~tau_g:_ -> ());
  }

let guard t = t.guard

let set_on_accept t f = t.on_accept <- f

let log_of tbl v =
  match Hashtbl.find_opt tbl v with
  | Some l -> l
  | None ->
      let l = Recv_log.create () in
      Hashtbl.replace tbl v l;
      l

let now t = t.ctx.local_time ()
let p t = t.ctx.params

(* The rate-limiting variables live in the separation guard (see the module
   comment); these are thin wrappers binding in our clock and parameters. *)
let set_last_gm t v = Separation.set_last_gm t.guard v ~at:(now t)

(* Was last(G,m) defined at local time [at]? It was iff some set happened at
   [s <= at] and had not yet expired: [at - s <= expiry]. *)
let last_gm_defined_at t v ~at =
  Separation.last_gm_defined_at t.guard ~params:(p t) v ~at

let last_g_defined t = Separation.last_g_defined t.guard ~params:(p t) ~now:(now t)

(* Current (unexpired, non-future) recording time for value [v]. *)
let i_value t v =
  let tau = now t in
  match Hashtbl.find_opt t.i_values v with
  | Some r when r <= tau && tau -. r <= (p t).Params.delta_rmv -> Some r
  | Some _ | None -> None

let ready_flag_fresh t v =
  let tau = now t in
  match Hashtbl.find_opt t.ready_flag v with
  | Some s -> s <= tau && tau -. s <= (p t).Params.delta_rmv
  | None -> false

let accepted t = t.accepted

let invocation_report t =
  {
    invoked_at = t.guard.Separation.invoked_at;
    l4_at = t.guard.Separation.l4_at;
    m4_at = t.guard.Separation.m4_at;
    n4_at = t.guard.Separation.n4_at;
  }

let ignoring t v =
  match Hashtbl.find_opt t.ignore_until v with
  | Some until -> now t < until
  | None -> false

(* Send with duplicate suppression: at most one (kind, v) per d. The paper
   allows arbitrary re-sending ("we ignore possible optimizations"); bounding
   it keeps message complexity at the O(n^2)-per-agreement the round
   structure implies, and every proof only needs each send to happen once per
   condition epoch. *)
let sent_tbl t = function
  | Support -> t.guard.Separation.sent_support
  | Approve -> t.guard.Separation.sent_approve
  | Ready -> t.guard.Separation.sent_ready

let send t kind v =
  let tau = now t in
  let tbl = sent_tbl t kind in
  let recently =
    match Hashtbl.find_opt tbl v with
    | Some s -> s <= tau && tau -. s < (p t).Params.d
    | None -> false
  in
  if not recently then begin
    Hashtbl.replace tbl v tau;
    t.ctx.send_all (Ia { kind; g = t.g; v });
    (* IG3 self-monitoring timestamps: first execution after invocation. *)
    let sep = t.guard in
    (match (kind, sep.Separation.invoked_at) with
    | Approve, Some inv ->
        if sep.Separation.l4_at = None || sep.Separation.l4_at < Some inv then
          sep.Separation.l4_at <- Some tau
    | Ready, Some inv ->
        if sep.Separation.m4_at = None || sep.Separation.m4_at < Some inv then
          sep.Separation.m4_at <- Some tau
    | (Support | Approve | Ready), _ -> ())
  end

let support_sent_recently t =
  let tau = now t in
  let d = (p t).Params.d in
  Hashtbl.fold
    (fun _ s acc -> acc || (s <= tau && tau -. s >= 0.0 && tau -. s <= d))
    t.guard.Separation.sent_support false

(* Block N4: the I-accept. *)
let do_accept t v =
  let tau = now t in
  match i_value t v with
  | None ->
      (* A corrupted state can reach N3 with no live recording time; the
         paper's sanitization discards clearly-wrong entries, so we refuse to
         accept rather than anchor on garbage. Only reachable before
         stabilization. *)
      t.ctx.trace
        (Ssba_sim.Trace.Ia_skip { g = t.g; reason = "no live recording time" })
  | Some tau_g ->
      let sep = t.guard in
      (match sep.Separation.invoked_at with
      | Some inv when sep.Separation.n4_at = None || sep.Separation.n4_at < Some inv ->
          sep.Separation.n4_at <- Some tau
      | Some _ | None -> ());
      Hashtbl.reset t.i_values;
      Hashtbl.remove t.support v;
      Hashtbl.remove t.approve v;
      Hashtbl.remove t.ready v;
      Hashtbl.replace t.ignore_until v (tau +. (3.0 *. (p t).Params.d));
      t.accepted <- Some (v, tau_g, tau);
      set_last_gm t v;
      sep.Separation.last_g <- Some tau;
      (* The blackout's job ends where last(G)'s begins. *)
      Separation.clear_session_value sep;
      t.ctx.trace (Ssba_sim.Trace.I_accept { g = t.g; v; tau_g });
      t.on_accept v ~tau_g

(* Evaluate blocks L, M, N for value [v]; called after every arrival. *)
let eval t v =
  let tau = now t in
  let prm = p t in
  let d = prm.Params.d in
  let n_f = Params.quorum prm in
  let n_2f = Params.weak_quorum prm in
  let support = log_of t.support v in
  let approve = log_of t.approve v in
  let ready = log_of t.ready v in
  (* L1/L2 *)
  (match Recv_log.shortest_window support ~now:tau ~count:n_2f with
  | Some alpha when alpha <= 4.0 *. d ->
      let recording = tau -. alpha -. (2.0 *. d) in
      let updated =
        match Hashtbl.find_opt t.i_values v with
        | Some cur -> Float.max cur recording
        | None -> recording
      in
      Hashtbl.replace t.i_values v updated;
      Separation.note_session_value t.guard ~params:prm ~now:tau v;
      set_last_gm t v
  | Some _ | None -> ());
  (* L3/L4 *)
  if Recv_log.count_in_window support ~now:tau ~width:(2.0 *. d) >= n_f then begin
    send t Approve v;
    set_last_gm t v
  end;
  (* M1/M2 *)
  if Recv_log.count_in_window approve ~now:tau ~width:(5.0 *. d) >= n_2f then begin
    Hashtbl.replace t.ready_flag v tau;
    set_last_gm t v
  end;
  (* M3/M4 *)
  if Recv_log.count_in_window approve ~now:tau ~width:(3.0 *. d) >= n_f then begin
    send t Ready v;
    set_last_gm t v
  end;
  (* N1/N2 *)
  if ready_flag_fresh t v && Recv_log.count ready >= n_2f then begin
    send t Ready v;
    set_last_gm t v
  end;
  (* N3/N4 — at most once per execution of the primitive. *)
  if t.accepted = None && ready_flag_fresh t v && Recv_log.count ready >= n_f then
    do_accept t v

(* Block K: invocation, on receiving (Initiator, G, m). *)
let handle_initiator t v =
  let tau = now t in
  if not (ignoring t v) then begin
    let other_i_value_defined =
      Hashtbl.fold
        (fun v' _ acc -> acc || ((not (String.equal v' v)) && i_value t v' <> None))
        t.i_values false
    in
    let fresh =
      (not other_i_value_defined)
      && (not (last_g_defined t))
      && (not (support_sent_recently t))
      && (not (last_gm_defined_at t v ~at:(tau -. (p t).Params.d)))
      (* Re-initiation blackout: the same test as other_i_value_defined, but
         against the guard's persistent mirror, so a second initiation
         cannot slip through after the session holding i_values was reset,
         evicted or collected. The [blackout] knob exists so the model
         checker can demonstrate the split this guard prevents. *)
      && not
           (t.blackout
           && Separation.blackout_blocks t.guard ~params:(p t) ~now:tau v)
    in
    if fresh then begin
      (* K2 *)
      Hashtbl.replace t.i_values v (tau -. (p t).Params.d);
      Separation.note_session_value t.guard ~params:(p t) ~now:tau v;
      let sep = t.guard in
      sep.Separation.invoked_at <- Some tau;
      sep.Separation.l4_at <- None;
      sep.Separation.m4_at <- None;
      sep.Separation.n4_at <- None;
      send t Support v;
      set_last_gm t v;
      t.ctx.trace (Ssba_sim.Trace.Ia_invoke { g = t.g; v });
      eval t v
    end
    else t.ctx.trace (Ssba_sim.Trace.Ia_reject { g = t.g; v })
  end

(* Arrival of a support/approve/ready message. *)
let handle_message t ~kind ~sender ~v =
  if not (ignoring t v) then begin
    let tau = now t in
    let log =
      match kind with
      | Support -> log_of t.support v
      | Approve -> log_of t.approve v
      | Ready -> log_of t.ready v
    in
    Recv_log.note log ~sender ~at:tau;
    eval t v
  end

(* Figure 2's cleanup block, run periodically (every d) by the node. *)
let cleanup t =
  let tau = now t in
  let prm = p t in
  let horizon = tau -. prm.Params.delta_rmv in
  let sweep tbl =
    Hashtbl.iter
      (fun _ log ->
        Recv_log.sanitize log ~now:tau;
        Recv_log.decay log ~horizon)
      tbl;
    let empty = Hashtbl.fold (fun v l acc -> if Recv_log.is_empty l then v :: acc else acc) tbl [] in
    List.iter (Hashtbl.remove tbl) empty
  in
  sweep t.support;
  sweep t.approve;
  sweep t.ready;
  let prune tbl keep =
    let doomed = Hashtbl.fold (fun v x acc -> if keep x then acc else v :: acc) tbl [] in
    List.iter (Hashtbl.remove tbl) doomed
  in
  prune t.i_values (fun r -> r <= tau && tau -. r <= prm.Params.delta_rmv);
  prune t.ready_flag (fun s -> s <= tau && tau -. s <= prm.Params.delta_rmv);
  prune t.ignore_until (fun until ->
      until > tau && until <= tau +. (4.0 *. prm.Params.d));
  (* The persistent variables decay in the guard; its cleanup is idempotent,
     so running it here *and* in the node's guard sweep is harmless. *)
  Separation.cleanup t.guard ~params:prm ~now:tau;
  (* Self-stabilization safety net: an accepted tuple can only be corrupt if
     its timestamps are impossible or it outlived the whole agreement. *)
  match t.accepted with
  | Some (_, tau_g, ta)
    when ta > tau || tau_g > ta || tau -. ta > prm.Params.delta_rmv ->
      t.accepted <- None
  | Some _ | None -> ()

(* Q0 side-condition: the General, before initiating, removes all previously
   received messages associated with earlier invocations with him as General.
   Only messages are dropped; the rate-limiting variables survive. *)
let forget_messages t =
  Hashtbl.reset t.support;
  Hashtbl.reset t.approve;
  Hashtbl.reset t.ready

(* Reset driven by ss-Byz-Agree's cleanup, 3d after the agreement returns:
   logs, candidate values and the accept are cleared. Everything in the
   separation guard — last(G), last(G,m), send times, the blackout, the
   [IG3] invocation report (read by the General up to 7d after proposing,
   possibly after this reset) — persists by construction: it lives in the
   guard, not here. *)
let reset t =
  Hashtbl.reset t.support;
  Hashtbl.reset t.approve;
  Hashtbl.reset t.ready;
  Hashtbl.reset t.i_values;
  Hashtbl.reset t.ready_flag;
  Hashtbl.reset t.ignore_until;
  t.accepted <- None

(* Indistinguishable (to the protocol) from a freshly created session: every
   session-local table empty and no live accept. The guard is *not*
   consulted — it survives collection by design. *)
let quiescent t =
  Hashtbl.length t.support = 0
  && Hashtbl.length t.approve = 0
  && Hashtbl.length t.ready = 0
  && Hashtbl.length t.i_values = 0
  && Hashtbl.length t.ready_flag = 0
  && Hashtbl.length t.ignore_until = 0
  && t.accepted = None

(* Canonical state fingerprint for the model checker's visited set. Covers
   every field that influences future behaviour except the guard (the node
   fingerprints guards separately — they are shared by reference and would
   otherwise be written twice) and the static [blackout] knob. Hashtables
   are iterated in sorted key order; receive logs are already canonical
   (ascending (time, sender)); floats are printed exactly (%h). *)
let fingerprint buf t =
  let sorted tbl =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  let logs tag tbl =
    List.iter
      (fun (v, log) ->
        Printf.bprintf buf "%s:%s=" tag v;
        Recv_log.iter_entries log (fun ~sender ~at ->
            Printf.bprintf buf "%d@%h," sender at);
        Buffer.add_char buf ';')
      (sorted tbl)
  in
  let times tag tbl =
    List.iter
      (fun (v, x) -> Printf.bprintf buf "%s:%s=%h;" tag v x)
      (sorted tbl)
  in
  Printf.bprintf buf "ia{g=%d;" t.g;
  logs "s" t.support;
  logs "a" t.approve;
  logs "r" t.ready;
  times "iv" t.i_values;
  times "rf" t.ready_flag;
  times "ig" t.ignore_until;
  (match t.accepted with
  | None -> Buffer.add_string buf "acc=-}"
  | Some (v, tau_g, ta) -> Printf.bprintf buf "acc=%s@%h/%h}" v tau_g ta)

(* Transient-fault injection: fill every variable with plausible garbage.
   Times are drawn around the current local time, both past and future, so
   the cleanup/sanitization paths are all exercised. *)
let scramble rng ~values t =
  let tau = now t in
  let prm = p t in
  let span = 3.0 *. prm.Params.delta_rmv in
  let rtime () = tau +. Ssba_sim.Rng.float_in_range rng ~lo:(-.span) ~hi:prm.Params.delta_rmv in
  let n = prm.Params.n in
  let each_value f = List.iter f values in
  each_value (fun v ->
      if Ssba_sim.Rng.bool rng then begin
        let log = log_of t.support v in
        let k = Ssba_sim.Rng.int rng (n + 1) in
        for _ = 1 to k do
          Recv_log.corrupt log ~sender:(Ssba_sim.Rng.int rng n) ~at:(rtime ())
        done
      end;
      if Ssba_sim.Rng.bool rng then begin
        let log = log_of t.approve v in
        for _ = 1 to Ssba_sim.Rng.int rng (n + 1) do
          Recv_log.corrupt log ~sender:(Ssba_sim.Rng.int rng n) ~at:(rtime ())
        done
      end;
      if Ssba_sim.Rng.bool rng then begin
        let log = log_of t.ready v in
        for _ = 1 to Ssba_sim.Rng.int rng (n + 1) do
          Recv_log.corrupt log ~sender:(Ssba_sim.Rng.int rng n) ~at:(rtime ())
        done
      end;
      if Ssba_sim.Rng.bool rng then Hashtbl.replace t.i_values v (rtime ());
      if Ssba_sim.Rng.bool rng then Hashtbl.replace t.ready_flag v (rtime ());
      if Ssba_sim.Rng.bool rng then begin
        let sets = Time_set.create () in
        Time_set.add sets (rtime ());
        Time_set.add sets (rtime ());
        Hashtbl.replace t.guard.Separation.last_gm v sets
      end;
      if Ssba_sim.Rng.bool rng then
        Hashtbl.replace
          (sent_tbl t (Ssba_sim.Rng.pick rng [| Support; Approve; Ready |]))
          v (rtime ());
      if Ssba_sim.Rng.bool rng then Hashtbl.replace t.ignore_until v (rtime ()));
  if Ssba_sim.Rng.bool rng then t.guard.Separation.last_g <- Some (rtime ());
  if Ssba_sim.Rng.bool rng then t.guard.Separation.invoked_at <- Some (rtime ());
  if Ssba_sim.Rng.bool rng then
    t.guard.Separation.session_value <-
      Some (Ssba_sim.Rng.pick_list rng values, rtime ());
  if Ssba_sim.Rng.bool rng then
    t.accepted <-
      Some (Ssba_sim.Rng.pick_list rng values, rtime (), rtime ())
