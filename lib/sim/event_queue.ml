(* Monomorphic event queue: the engine's innermost data structure.

   A binary min-heap over (at, seq) keys held in parallel arrays: a flat
   [float array] for times, an [int array] for sequence numbers, a closure
   array for the scheduled thunks and a batch array for fan-out descriptors.
   Keeping the keys out of a record means the hot loop does raw float/int
   comparisons on unboxed values — no closure indirection, no polymorphic
   [compare] (a C call per comparison), and no per-event allocation: [push]
   stores four fields and [pop_invoke] runs the closure that already existed.

   Ordering is (at, seq) lexicographic, so events at equal times pop in
   scheduling order — the engine's determinism contract. Both sifts move a
   "hole" instead of swapping, storing each displaced slot once.

   Fan-out batches (broadcast deliveries): a [batch] is ONE heap entry
   carrying [b_count] sub-events whose (at, seq) keys are pre-sorted
   ascending. The entry sits in the heap keyed at its next unfired sub-event;
   popping a non-final sub-event re-keys the root to the following sub-key
   and sifts it down in place — one sift instead of a pop + push — so the
   heap holds one entry per broadcast instead of one per receiver while the
   global pop order stays exactly what n separate entries would produce
   (each sub-event keeps the key the per-entry scheme would have given it,
   and keys are unique because seqs are).

   Vacated closure/batch slots are overwritten with [nop]/[null_batch] so
   drained events are not retained; the float/int arrays need no such
   care. *)

let nop () = ()

type batch = {
  mutable b_ats : float array;  (* sub-event keys, sorted by (at, seq) *)
  mutable b_seqs : int array;
  mutable b_count : int;        (* sub-events armed in this cycle *)
  mutable b_next : int;         (* next sub-event to fire *)
  mutable b_fire : int -> unit; (* receives the sub-event index *)
}

let null_batch =
  { b_ats = [||]; b_seqs = [||]; b_count = 0; b_next = 0; b_fire = ignore }

let make_batch ?(capacity = 8) () =
  let capacity = max capacity 1 in
  {
    b_ats = Array.make capacity 0.0;
    b_seqs = Array.make capacity 0;
    b_count = 0;
    b_next = 0;
    b_fire = ignore;
  }

let batch_capacity b = Array.length b.b_ats

let ensure_batch_capacity b want =
  let cap = Array.length b.b_ats in
  if want > cap then begin
    let cap' = max want (2 * max cap 1) in
    let ats = Array.make cap' 0.0 in
    let seqs = Array.make cap' 0 in
    Array.blit b.b_ats 0 ats 0 cap;
    Array.blit b.b_seqs 0 seqs 0 cap;
    b.b_ats <- ats;
    b.b_seqs <- seqs
  end

type t = {
  mutable ats : float array;  (* flat float array: unboxed time keys *)
  mutable seqs : int array;
  mutable runs : (unit -> unit) array;
  mutable bats : batch array; (* null_batch for plain entries *)
  mutable n : int;            (* heap entries *)
  mutable live : int;         (* pending sub-events (>= n) *)
}

let create ?(capacity = 64) () =
  let capacity = max capacity 1 in
  {
    ats = Array.make capacity 0.0;
    seqs = Array.make capacity 0;
    runs = Array.make capacity nop;
    bats = Array.make capacity null_batch;
    n = 0;
    live = 0;
  }

let size t = t.live
let entries t = t.n
let is_empty t = t.live = 0
let capacity t = Array.length t.ats

let grow t =
  let cap = 2 * Array.length t.ats in
  let ats = Array.make cap 0.0 in
  let seqs = Array.make cap 0 in
  let runs = Array.make cap nop in
  let bats = Array.make cap null_batch in
  Array.blit t.ats 0 ats 0 t.n;
  Array.blit t.seqs 0 seqs 0 t.n;
  Array.blit t.runs 0 runs 0 t.n;
  Array.blit t.bats 0 bats 0 t.n;
  t.ats <- ats;
  t.seqs <- seqs;
  t.runs <- runs;
  t.bats <- bats

(* All unsafe accesses below are at indices < t.n <= Array.length t.ats,
   with the four arrays always of equal length. *)

let sift_up t ~at ~seq run batch =
  if t.n = Array.length t.ats then grow t;
  let i = ref t.n in
  t.n <- t.n + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    let pat = Array.unsafe_get t.ats parent in
    if pat > at || (pat = at && Array.unsafe_get t.seqs parent > seq) then begin
      Array.unsafe_set t.ats !i pat;
      Array.unsafe_set t.seqs !i (Array.unsafe_get t.seqs parent);
      Array.unsafe_set t.runs !i (Array.unsafe_get t.runs parent);
      Array.unsafe_set t.bats !i (Array.unsafe_get t.bats parent);
      i := parent
    end
    else continue := false
  done;
  Array.unsafe_set t.ats !i at;
  Array.unsafe_set t.seqs !i seq;
  Array.unsafe_set t.runs !i run;
  Array.unsafe_set t.bats !i batch

let push t ~at ~seq run =
  sift_up t ~at ~seq run null_batch;
  t.live <- t.live + 1

let push_batch t b =
  if b.b_count < 1 then invalid_arg "Event_queue.push_batch: empty batch";
  if b.b_next <> 0 then invalid_arg "Event_queue.push_batch: batch in flight";
  if b.b_count > Array.length b.b_ats || b.b_count > Array.length b.b_seqs
  then invalid_arg "Event_queue.push_batch: count exceeds key arrays";
  for i = 0 to b.b_count - 2 do
    let a0 = b.b_ats.(i) and a1 = b.b_ats.(i + 1) in
    if a0 > a1 || (a0 = a1 && b.b_seqs.(i) >= b.b_seqs.(i + 1)) then
      invalid_arg "Event_queue.push_batch: sub-events not sorted by (at, seq)"
  done;
  sift_up t ~at:b.b_ats.(0) ~seq:b.b_seqs.(0) nop b;
  t.live <- t.live + b.b_count

let min_at t =
  if t.n = 0 then invalid_arg "Event_queue.min_at: empty";
  t.ats.(0)

(* Place (at, seq, run, batch) into the hole at the root and sift it down
   within heap prefix [0, bound). *)
let sift_down t ~bound ~at ~seq run batch =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= bound then continue := false
    else begin
      let r = l + 1 in
      let c =
        if r < bound then begin
          let lat = Array.unsafe_get t.ats l and rat = Array.unsafe_get t.ats r in
          if
            rat < lat
            || (rat = lat && Array.unsafe_get t.seqs r < Array.unsafe_get t.seqs l)
          then r
          else l
        end
        else l
      in
      let cat = Array.unsafe_get t.ats c in
      if cat < at || (cat = at && Array.unsafe_get t.seqs c < seq) then begin
        Array.unsafe_set t.ats !i cat;
        Array.unsafe_set t.seqs !i (Array.unsafe_get t.seqs c);
        Array.unsafe_set t.runs !i (Array.unsafe_get t.runs c);
        Array.unsafe_set t.bats !i (Array.unsafe_get t.bats c);
        i := c
      end
      else continue := false
    end
  done;
  Array.unsafe_set t.ats !i at;
  Array.unsafe_set t.seqs !i seq;
  Array.unsafe_set t.runs !i run;
  Array.unsafe_set t.bats !i batch

(* Remove the root entry outright (plain event, or batch on its last
   sub-event): the classic last-element-through-the-root-hole sift. *)
let remove_root t =
  let last = t.n - 1 in
  t.n <- last;
  if last = 0 then begin
    t.runs.(0) <- nop;
    t.bats.(0) <- null_batch
  end
  else begin
    let at = Array.unsafe_get t.ats last in
    let seq = Array.unsafe_get t.seqs last in
    let run = Array.unsafe_get t.runs last in
    let batch = Array.unsafe_get t.bats last in
    Array.unsafe_set t.runs last nop;
    Array.unsafe_set t.bats last null_batch;
    sift_down t ~bound:last ~at ~seq run batch
  end

(* Advance the root past its next sub-event: a batch with remaining subs is
   re-keyed to the following sub-key and sifted down in place (the new key is
   >= the old one, so it only moves toward the leaves — one sift instead of a
   pop + push); a plain event or exhausted batch is removed outright. *)
let advance_batch t b j =
  if j + 1 < b.b_count then
    sift_down t ~bound:t.n ~at:b.b_ats.(j + 1) ~seq:b.b_seqs.(j + 1) nop b
  else remove_root t

let pop_invoke t =
  if t.n = 0 then invalid_arg "Event_queue.pop_invoke: empty";
  t.live <- t.live - 1;
  let b = Array.unsafe_get t.bats 0 in
  if b == null_batch then begin
    let run = t.runs.(0) in
    remove_root t;
    run ()
  end
  else begin
    let j = b.b_next in
    b.b_next <- j + 1;
    advance_batch t b j;
    b.b_fire j
  end

let pop_run t =
  if t.n = 0 then invalid_arg "Event_queue.pop_run: empty";
  t.live <- t.live - 1;
  let b = Array.unsafe_get t.bats 0 in
  if b == null_batch then begin
    let run = t.runs.(0) in
    remove_root t;
    run
  end
  else begin
    let j = b.b_next in
    b.b_next <- j + 1;
    advance_batch t b j;
    fun () -> b.b_fire j
  end

let clear t =
  Array.fill t.runs 0 t.n nop;
  Array.fill t.bats 0 t.n null_batch;
  t.n <- 0;
  t.live <- 0
