(* Time-driven baseline: Toueg, Perry & Srikanth's Fast Distributed Agreement
   ([14] in the paper), reconstructed on the same simulator.

   This is the protocol ss-Byz-Agree is modeled on, with the two structural
   properties the paper contrasts itself against:

   - it assumes *initial synchronization*: all nodes share a common round
     structure anchored at a known start time (here [t_start]), and the
     General's value enters through the broadcast primitive rather than
     through the self-stabilizing Initiator-Accept;
   - it is *time-driven*: every send/accept rule is evaluated only at phase
     boundaries (lock-step phases of length Phi), so latency is quantized to
     whole phases regardless of how fast messages actually travel. The
     message-driven protocol's headline advantage (experiment E3) is measured
     against exactly this behaviour.

   Structure per broadcast triplet (p, m, k), phases counted from t_start
   (the General broadcasts (G, m, 0) at phase 0):

     phase 2k     broadcaster sends (init, p, m, k);
     phase 2k+1   init received during the previous phase => send echo;
     phase 2k+2   >= n-2f echoes => send init'; >= n-f echoes => accept;
     phase 2k+3   >= n-2f init' => p joins broadcasters; >= n-f => echo';
     any phase    >= n-2f echo' => relay echo'; >= n-f echo' => accept.

   Agreement, evaluated at each boundary b:
     decide m at round r (deadline b <= 2r+2) if (G, m, 0) was accepted and
     r distinct non-General broadcasters' (p_i, m, i), i = 1..r, were
     accepted; on deciding, broadcast (self, m, r+1);
     abort at boundary 2r+3 if fewer than r broadcasters are known;
     abort at boundary 2f+3 unconditionally.

   The message type is shared with the core protocol (the [Mb] constructors,
   with k = 0 allowed here for the General's own broadcast); baseline
   simulations run their own nodes, so there is no interference. *)

open Ssba_core.Types
module Params = Ssba_core.Params
module Engine = Ssba_sim.Engine
module Clock = Ssba_sim.Clock
module Network = Ssba_net.Network

type trip = {
  mutable init_from_p : float option;
  echo : Ssba_core.Recv_log.t;
  init2 : Ssba_core.Recv_log.t;
  echo2 : Ssba_core.Recv_log.t;
  mutable sent_echo : bool;
  mutable sent_init2 : bool;
  mutable sent_echo2 : bool;
  mutable accepted_at_phase : int option;
}

type t = {
  id : node_id;
  params : Params.t;
  engine : Engine.t;
  clock : Clock.t;
  net : message Network.t;
  g : general;
  t_start : float;  (* local time of phase 0 — common by assumption *)
  trips : (node_id * value * int, trip) Hashtbl.t;
  broadcasters : (node_id, unit) Hashtbl.t;
  mutable phase : int;
  mutable returned : (outcome * float) option;  (* outcome, local time *)
  mutable on_return : outcome -> tau_ret:float -> unit;
}

let local_time t = Clock.read t.clock ~now:(Engine.now t.engine)

let trip_of t key =
  match Hashtbl.find_opt t.trips key with
  | Some tr -> tr
  | None ->
      let tr =
        {
          init_from_p = None;
          echo = Ssba_core.Recv_log.create ();
          init2 = Ssba_core.Recv_log.create ();
          echo2 = Ssba_core.Recv_log.create ();
          sent_echo = false;
          sent_init2 = false;
          sent_echo2 = false;
          accepted_at_phase = None;
        }
      in
      Hashtbl.replace t.trips key tr;
      tr

let send t kind ~p ~v ~k =
  Network.broadcast t.net ~src:t.id (Mb { kind; p; g = t.g; v; k })

let returned t = t.returned
let set_on_return t f = t.on_return <- f

let do_return t outcome =
  if t.returned = None then begin
    let tau = local_time t in
    t.returned <- Some (outcome, tau);
    let phase = t.phase in
    Engine.record t.engine ~node:t.id
      (Ssba_sim.Trace.Ext
         {
           kind = "tps-return";
           render = (fun () -> Fmt.str "%a at phase %d" pp_outcome outcome phase);
         });
    t.on_return outcome ~tau_ret:tau
  end

(* Matching of rounds 1..r to distinct accepted broadcasters of value [v]
   (same augmenting-path construction as the core protocol). *)
let matches_rounds t ~v ~r =
  let candidates i =
    Hashtbl.fold
      (fun (p, v', k) tr acc ->
        if k = i && p <> t.g && String.equal v v' && tr.accepted_at_phase <> None
        then p :: acc
        else acc)
      t.trips []
  in
  let matched = Hashtbl.create 8 in
  let rec augment i visited =
    List.exists
      (fun p ->
        if List.mem p !visited then false
        else begin
          visited := p :: !visited;
          match Hashtbl.find_opt matched p with
          | None ->
              Hashtbl.replace matched p i;
              true
          | Some j ->
              if augment j visited then begin
                Hashtbl.replace matched p i;
                true
              end
              else false
        end)
      (candidates i)
  in
  let ok = ref true in
  for i = 1 to r do
    if !ok then ok := augment i (ref [])
  done;
  !ok

let accepted_general_value t =
  Hashtbl.fold
    (fun (p, v, k) tr acc ->
      if p = t.g && k = 0 && tr.accepted_at_phase <> None then Some v else acc)
    t.trips None

(* Evaluate one triplet's rules at boundary [b]. *)
let eval_trip t b (p, v, k) tr =
  let n_f = Params.quorum t.params in
  let n_2f = Params.weak_quorum t.params in
  if b = (2 * k) + 1 && tr.init_from_p <> None && not tr.sent_echo then begin
    tr.sent_echo <- true;
    send t Echo ~p ~v ~k
  end;
  if b = (2 * k) + 2 then begin
    if Ssba_core.Recv_log.count tr.echo >= n_2f && not tr.sent_init2 then begin
      tr.sent_init2 <- true;
      send t Init2 ~p ~v ~k
    end;
    if Ssba_core.Recv_log.count tr.echo >= n_f && tr.accepted_at_phase = None
    then tr.accepted_at_phase <- Some b
  end;
  if b = (2 * k) + 3 then begin
    if Ssba_core.Recv_log.count tr.init2 >= n_2f then
      Hashtbl.replace t.broadcasters p ();
    if Ssba_core.Recv_log.count tr.init2 >= n_f && not tr.sent_echo2 then begin
      tr.sent_echo2 <- true;
      send t Echo2 ~p ~v ~k
    end
  end;
  if b >= (2 * k) + 3 then begin
    if Ssba_core.Recv_log.count tr.echo2 >= n_2f && not tr.sent_echo2 then begin
      tr.sent_echo2 <- true;
      send t Echo2 ~p ~v ~k
    end;
    if Ssba_core.Recv_log.count tr.echo2 >= n_f && tr.accepted_at_phase = None
    then tr.accepted_at_phase <- Some b
  end

(* The agreement rules at boundary [b]. *)
let eval_agreement t b =
  if t.returned = None then begin
    let f = t.params.Params.f in
    (match accepted_general_value t with
    | Some v ->
        let rec try_r r =
          if r > f then ()
          else if b > (2 * r) + 2 then try_r (r + 1)
          else if matches_rounds t ~v ~r then begin
            if r < f then send t Init ~p:t.id ~v ~k:(r + 1);
            do_return t (Decided v)
          end
          else try_r (r + 1)
        in
        try_r 0
    | None -> ());
    if t.returned = None then begin
      let r = (b - 3) / 2 in
      if b >= 3 && b = (2 * r) + 3 && Hashtbl.length t.broadcasters < r then
        do_return t Aborted
    end;
    if t.returned = None && b >= (2 * f) + 3 then do_return t Aborted
  end

let boundary t b =
  t.phase <- b;
  Hashtbl.iter (fun key tr -> eval_trip t b key tr) t.trips;
  eval_agreement t b

let create ~id ~params ~clock ~engine ~net ~g ~t_start =
  let t =
    {
      id;
      params;
      engine;
      clock;
      net;
      g;
      t_start;
      trips = Hashtbl.create 8;
      broadcasters = Hashtbl.create 8;
      phase = 0;
      returned = None;
      on_return = (fun _ ~tau_ret:_ -> ());
    }
  in
  Network.set_handler net id (fun env ->
      let sender = env.Ssba_net.Msg.src in
      match env.Ssba_net.Msg.payload with
      | Mb { kind; p; v; k; g } when g = t.g && k >= 0 && k <= params.Params.f + 1
        ->
          let tau = local_time t in
          let tr = trip_of t (p, v, k) in
          (match kind with
          | Init -> if sender = p && tr.init_from_p = None then tr.init_from_p <- Some tau
          | Echo -> Ssba_core.Recv_log.note tr.echo ~sender ~at:tau
          | Init2 -> Ssba_core.Recv_log.note tr.init2 ~sender ~at:tau
          | Echo2 -> Ssba_core.Recv_log.note tr.echo2 ~sender ~at:tau)
      | Mb _ | Initiator _ | Ia _ -> ());
  (* Schedule every phase boundary up front (the protocol is time-driven). *)
  let phi = params.Params.phi in
  let tau_now = local_time t in
  for b = 1 to (2 * params.Params.f) + 4 do
    let target = t_start +. (float_of_int b *. phi) in
    if target > tau_now then
      Engine.schedule_after engine
        ~delay:(Clock.real_of_local_duration clock (target -. tau_now))
        (fun () -> boundary t b)
  done;
  t

(* The General's initiation: broadcast (G, v, 0) at phase 0. *)
let propose t v =
  if t.id <> t.g then invalid_arg "Tps_agree.propose: not the General";
  send t Init ~p:t.id ~v ~k:0
