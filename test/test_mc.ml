(* Tests for the bounded exhaustive checker: state-hash canonicalization
   under partial-order reduction, POR-vs-full verdict equivalence, and the
   weakened-checker sensitivity run that rediscovers the IA-4 split and
   exports it as a replayable fuzz spec. *)

open Helpers
module Mc = Ssba_mc.Mc
module Config = Ssba_mc.Config
module F = Ssba_fuzz

let keys l = List.map fst l

(* --- determinism: the run is a pure function of (config, por, vector) --- *)

let test_run_vector_deterministic () =
  let run () =
    let r = Mc.run_vector (Config.smoke ()) ~por:true [| 1; 0; 1 |] in
    (r.Mc.choices, r.Mc.fingerprints, r.Mc.violations, r.Mc.events)
  in
  check_bool "identical runs" true (run () = run ())

(* --- canonicalization: commuting deliveries hash equal under POR ---

   The commute probe's first menu step performs the same two sends in
   opposite order; the second step is reached while both are still in
   flight. The world fingerprint taken there must coincide under POR
   (canonically sorted in-flight set) and differ without it (raw insertion
   order). *)

let probe_fingerprint ~por vector =
  let r = Mc.run_vector (Config.commute_probe ()) ~por vector in
  match r.Mc.fingerprints with
  | [ at_order; at_probe ] -> (at_order, at_probe)
  | l -> Alcotest.failf "expected 2 choice points, saw %d" (List.length l)

let test_commuting_sends_hash_equal_under_por () =
  let o0, p0 = probe_fingerprint ~por:true [| 0; 0 |] in
  let o1, p1 = probe_fingerprint ~por:true [| 1; 0 |] in
  check_str "pre-choice state is one state" o0 o1;
  check_str "commuted in-flight sets canonicalize to one hash" p0 p1;
  let _, q0 = probe_fingerprint ~por:false [| 0; 0 |] in
  let _, q1 = probe_fingerprint ~por:false [| 1; 0 |] in
  check_bool "raw insertion order keeps them apart" true (q0 <> q1)

let test_por_prunes_commuted_branch () =
  let on = Mc.explore (Config.commute_probe ()) ~por:true ~depth:8 in
  let off = Mc.explore (Config.commute_probe ()) ~por:false ~depth:8 in
  check_bool "POR prunes the commuted subtree" true (on.Mc.pruned >= 1);
  check_int "full exploration prunes nothing here" 0 off.Mc.pruned;
  check_bool "POR explores strictly less" true (on.Mc.explored < off.Mc.explored);
  check_bool "same (empty) verdict either way" true
    (keys on.Mc.violations = keys off.Mc.violations
    && keys on.Mc.splits = keys off.Mc.splits)

(* --- POR soundness cross-check: same verdict set as full exploration ---

   Both modes exhaust the smoke config's whole choice space (frontier 0), so
   any divergence in the violation sets would falsify the reduction. *)
let test_por_full_equivalence_smoke () =
  let on = Mc.explore (Config.smoke ()) ~por:true ~depth:24 in
  let off = Mc.explore (Config.smoke ()) ~por:false ~depth:24 in
  check_bool "both exhaust the space" true
    (on.Mc.frontier = 0 && off.Mc.frontier = 0 && (not on.Mc.truncated)
   && not off.Mc.truncated);
  check_bool "verdict sets coincide" true
    (keys on.Mc.violations = keys off.Mc.violations
    && keys on.Mc.splits = keys off.Mc.splits);
  check_int "smoke space is clean" 0 (List.length on.Mc.violations);
  check_bool "POR reduction factor > 1" true (off.Mc.explored > on.Mc.explored)

(* --- sensitivity: the checker finds the split the blackout prevents ---

   With the re-initiation blackout disabled the exhaustive run must
   rediscover the IA-4 split decision (PR-6's counterexample class); with
   the guard on, the same space must contain none. The minimal
   counterexample exports as a fuzz spec whose replay reproduces the IA-4a
   violation through the completely independent Runner + Oracle path. *)
let test_split_sensitivity_and_replay () =
  let guarded = Mc.explore (Config.split ~blackout:true ()) ~por:true ~depth:24 in
  check_bool "blackout on: exhausted" true
    (guarded.Mc.frontier = 0 && not guarded.Mc.truncated);
  check_int "blackout on: no split decision reachable" 0
    (List.length guarded.Mc.splits);
  let cfg = Config.split ~blackout:false () in
  let open_run = Mc.explore cfg ~por:true ~depth:24 in
  check_bool "blackout off: exhausted" true
    (open_run.Mc.frontier = 0 && not open_run.Mc.truncated);
  check_bool "blackout off: the split is found" true (open_run.Mc.splits <> []);
  match open_run.Mc.counterexample with
  | None -> Alcotest.fail "no counterexample run recorded"
  | Some run -> (
      let spec = Mc.spec_of_run cfg run ~name:"mc-split-ce" in
      (match F.Spec.validate spec with
      | Ok () -> ()
      | Error e -> Alcotest.failf "exported spec invalid: %s" e);
      (match F.Spec.of_json (F.Spec.to_json spec) with
      | Ok spec' -> check_bool "spec round-trips through JSON" true (spec' = spec)
      | Error e -> Alcotest.failf "spec does not round-trip: %s" e);
      let _, report = F.Oracle.run spec in
      let is_ia4a (f : F.Oracle.failure) =
        f.F.Oracle.oracle = "invariants"
        && String.length f.F.Oracle.detail >= 6
        && String.sub f.F.Oracle.detail 0 6 = "IA-4a:"
      in
      check_bool "replay reproduces the IA-4a split" true
        (List.exists is_ia4a report.F.Oracle.failures))

let suite =
  [
    case "run vector is deterministic" test_run_vector_deterministic;
    case "commuting sends hash equal under POR"
      test_commuting_sends_hash_equal_under_por;
    case "POR prunes the commuted branch" test_por_prunes_commuted_branch;
    slow_case "POR and full exploration agree on the smoke space"
      test_por_full_equivalence_smoke;
    slow_case "blackout sensitivity: split found iff guard off, replayable"
      test_split_sensitivity_and_replay;
  ]
