lib/net/msg.ml: Fmt
