(* Array-backed binary min-heap.

   The engine's event queue is the hot path of every simulation, so the heap
   is imperative: a growable array with sift-up/sift-down. Ordering is given
   by a comparison function fixed at creation.

   The backing array stays empty until the first push and is then seeded with
   that element (vacated slots are overwritten with a live element rather
   than a dummy), so no unsafe placeholder values are ever manufactured —
   this matters because ['a] could be [float], whose arrays are flat. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable capacity : int;  (* seed size of the next backing array *)
  mutable data : 'a array;
  mutable size : int;
}

let create ?(capacity = 64) cmp =
  { cmp; capacity = max capacity 1; data = [||]; size = 0 }

let capacity t = max t.capacity (Array.length t.data)

(* Emptying the heap must drop the backing array (keeping it would retain
   stale element references, and ['a] may be float whose arrays are flat so
   no dummy can be manufactured) — but the grown capacity is remembered as
   the seed of the next first push, so reuse does not re-grow from scratch. *)
let forget_data t =
  t.capacity <- capacity t;
  t.data <- [||]

let size t = t.size
let is_empty t = t.size = 0

let grow t =
  let data = Array.make (2 * Array.length t.data) t.data.(0) in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp t.data.(i) t.data.(parent) < 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.cmp t.data.(l) t.data.(!smallest) < 0 then smallest := l;
  if r < t.size && t.cmp t.data.(r) t.data.(!smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t x =
  if Array.length t.data = 0 then t.data <- Array.make t.capacity x
  else if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else Some t.data.(0)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* overwrite the vacated slot with a live element so stale references
         are not retained *)
      t.data.(t.size) <- t.data.(0);
      sift_down t 0
    end
    else forget_data t;
    Some top
  end

let clear t =
  forget_data t;
  t.size <- 0

(* Drain a copy so [t] is unchanged; result is in ascending order. *)
let to_list t =
  let copy = { cmp = t.cmp; capacity = t.capacity; data = Array.copy t.data; size = t.size } in
  let rec loop acc =
    match pop copy with None -> List.rev acc | Some x -> loop (x :: acc)
  in
  loop []
