(** Protocol constants (paper §2 and §3).

    All durations derive from [d = (delta + pi)(1 + rho)], the bound on the
    local-time lapse from a correct send to every correct node having
    processed the message. *)

(** Variant of block R's fast-path gate (Figure 1). [Legacy] is the figure
    verbatim (4d gate, block S excludes the General); [Widen] raises the gate
    to the 5d slack [IA-1D] actually guarantees; [Count_general] keeps the 4d
    gate but lets a node that already I-accepted [m] count the General's own
    msgd-broadcast as the [r = 1] proof in block S. *)
type r_slack = Legacy | Widen | Count_general

(** The shipped default: [Widen], certified exhaustively by the [ssba_mc]
    [knife] config (experiment E15). *)
val default_r_slack : r_slack

val r_slack_to_string : r_slack -> string

(** Inverse of {!r_slack_to_string}; accepts ["legacy"], ["widen"],
    ["general"]. *)
val r_slack_of_string : string -> r_slack option

type t = {
  n : int;  (** number of nodes *)
  f : int;  (** bound on concurrent permanent Byzantine faults; [n > 3f] *)
  delta : float;  (** max message delay while the network is correct *)
  pi : float;  (** max processing time *)
  rho : float;  (** clock drift bound *)
  d : float;  (** [(delta + pi)(1 + rho)] *)
  tau_skew : float;  (** [6d] — bound between correct nodes' tau^G anchors *)
  phi : float;  (** [tau_skew + 2d] — duration of one phase *)
  delta_agr : float;  (** [(2f+1) Phi] — bound on running the agreement *)
  delta_0 : float;  (** [13d] — min initiation spacing, any value *)
  delta_rmv : float;  (** [Delta_agr + Delta_0] — decay horizon *)
  delta_v : float;  (** [15d + 2 Delta_rmv] — min spacing, same value *)
  delta_node : float;  (** [Delta_v + Delta_agr] — non-faulty -> correct *)
  delta_reset : float;  (** [20d + 4 Delta_rmv] — General quiet period *)
  delta_stb : float;  (** [2 Delta_reset] — stabilization time *)
  r_slack : r_slack;  (** block R gate variant *)
}

(** Build the full constant cascade from the base quantities, with
    [r_slack = default_r_slack]. Raises [Invalid_argument] on nonsensical
    inputs. *)
val make : n:int -> f:int -> delta:float -> pi:float -> rho:float -> t

(** Same cascade, different block-R gate variant. *)
val with_r_slack : t -> r_slack -> t

(** Largest [f] with [n > 3f]. *)
val max_faults : int -> int

(** [default n] uses [f = max_faults n], millisecond-scale delays and a small
    drift, overridable per argument. *)
val default :
  ?f:int -> ?delta:float -> ?pi:float -> ?rho:float -> ?r_slack:r_slack -> int -> t

(** Block R's fast-path deadline: the round-0 decide fires when
    [tau - tau_g <= r_gate t]. [5d] under [Widen], [4d] otherwise
    ([Count_general] recovers the slack in block S instead). *)
val r_gate : t -> float

(** [delta_eff ~delta ~p ~rto ~retries] is the effective message-delay bound
    over a link that loses each frame with probability [p], masked by the
    reliable transport's retransmission (timeout [rto], exponential backoff,
    at most [retries] retransmissions):
    [delta + rto * (2^retries - 1)] when [p > 0], else [delta].
    Instantiate the cascade (via {!make} or {!default}) at this bound to keep
    the paper's timeouts sound over a persistently lossy link. *)
val delta_eff : delta:float -> p:float -> rto:float -> retries:int -> float

(** [residual_loss ~p ~retries = p^(retries+1)] — the probability the
    transport exhausts its retry budget and the payload is never delivered. *)
val residual_loss : p:float -> retries:int -> float

(** Check the [n > 3f] resilience condition. *)
val validate : t -> (unit, string) result

(** [n - f]: the strong threshold used by the primitives. *)
val quorum : t -> int

(** [n - 2f]: the weak threshold (guarantees at least one correct sender). *)
val weak_quorum : t -> int

val pp : Format.formatter -> t -> unit
