(* Tests for the discrete-event engine. *)

open Helpers
module Engine = Ssba_sim.Engine

let test_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:3.0 (fun () -> log := 3 :: !log);
  Engine.schedule e ~at:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule e ~at:2.0 (fun () -> log := 2 :: !log);
  let stats = Engine.run e in
  check_bool "events in time order" true (List.rev !log = [ 1; 2; 3 ]);
  check_int "all processed" 3 stats.Engine.events_processed;
  check_bool "queue exhausted" true stats.Engine.queue_exhausted;
  check_float "end time" 3.0 stats.Engine.end_time

let test_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule e ~at:1.0 (fun () -> log := i :: !log)
  done;
  ignore (Engine.run e);
  check_bool "equal times run in scheduling order" true
    (List.rev !log = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ])

let test_now_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule e ~at:0.5 (fun () -> seen := Engine.now e :: !seen);
  Engine.schedule e ~at:1.5 (fun () -> seen := Engine.now e :: !seen);
  ignore (Engine.run e);
  check_bool "now reflects event times" true (List.rev !seen = [ 0.5; 1.5 ])

let test_schedule_during_run () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:1.0 (fun () ->
      log := "a" :: !log;
      Engine.schedule e ~at:1.0 (fun () -> log := "nested" :: !log));
  Engine.schedule e ~at:2.0 (fun () -> log := "b" :: !log);
  ignore (Engine.run e);
  check_bool "nested same-time event runs before later ones" true
    (List.rev !log = [ "a"; "nested"; "b" ])

let test_past_clamped () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~at:2.0 (fun () ->
      (* scheduling in the past clamps to the present *)
      Engine.schedule e ~at:1.0 (fun () -> log := Engine.now e :: !log));
  ignore (Engine.run e);
  check_bool "past event clamped to now" true (!log = [ 2.0 ])

let test_until () =
  let e = Engine.create () in
  let ran = ref 0 in
  Engine.schedule e ~at:1.0 (fun () -> incr ran);
  Engine.schedule e ~at:5.0 (fun () -> incr ran);
  let stats = Engine.run ~until:2.0 e in
  check_int "only events before the horizon" 1 !ran;
  check_bool "not exhausted" false stats.Engine.queue_exhausted;
  check_float "time parked at horizon" 2.0 (Engine.now e);
  check_int "future event still queued" 1 (Engine.pending e);
  (* a second run picks up the rest *)
  ignore (Engine.run e);
  check_int "second run completes" 2 !ran

let test_max_events () =
  let e = Engine.create () in
  for i = 0 to 9 do
    Engine.schedule e ~at:(float_of_int i) (fun () -> ())
  done;
  let stats = Engine.run ~max_events:4 e in
  check_int "bounded" 4 stats.Engine.events_processed;
  check_int "rest queued" 6 (Engine.pending e)

let test_stop () =
  let e = Engine.create () in
  let ran = ref 0 in
  Engine.schedule e ~at:1.0 (fun () ->
      incr ran;
      Engine.stop e);
  Engine.schedule e ~at:2.0 (fun () -> incr ran);
  ignore (Engine.run e);
  check_int "stopped after first" 1 !ran

let test_schedule_after () =
  let e = Engine.create () in
  let at = ref 0.0 in
  Engine.schedule e ~at:1.0 (fun () ->
      Engine.schedule_after e ~delay:0.5 (fun () -> at := Engine.now e));
  ignore (Engine.run e);
  check_float "after = now + delay" 1.5 !at;
  Alcotest.check_raises "negative delay rejected"
    (Invalid_argument "Engine.schedule_after: negative delay") (fun () ->
      Engine.schedule_after e ~delay:(-1.0) (fun () -> ()))

let test_trace_recording () =
  let tr = Ssba_sim.Trace.create ~enabled:true () in
  let e = Engine.create ~trace:tr () in
  Engine.schedule e ~at:1.0 (fun () ->
      Engine.record e ~node:3 (Ssba_sim.Trace.Ig3_failure { g = 5 }));
  ignore (Engine.run e);
  match Ssba_sim.Trace.to_list tr with
  | [ entry ] ->
      check_float "entry time" 1.0 entry.Ssba_sim.Trace.time;
      check_int "entry node" 3 entry.Ssba_sim.Trace.node;
      check_str "entry kind" "ig3-failure" (Ssba_sim.Trace.entry_kind entry)
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

let test_deterministic_replay () =
  let run () =
    let e = Engine.create () in
    let log = ref [] in
    let rng = Ssba_sim.Rng.create 4 in
    for _ = 1 to 50 do
      let t = Ssba_sim.Rng.float rng 10.0 in
      Engine.schedule e ~at:t (fun () -> log := t :: !log)
    done;
    ignore (Engine.run e);
    !log
  in
  check_bool "identical runs" true (run () = run ())

let test_realtime_same_results () =
  (* run_realtime must produce exactly the same event order as run *)
  let mk () =
    let e = Engine.create () in
    let log = ref [] in
    let rng = Ssba_sim.Rng.create 6 in
    for i = 0 to 30 do
      let t = Ssba_sim.Rng.float rng 0.002 in
      Engine.schedule e ~at:t (fun () -> log := (i, t) :: !log)
    done;
    (e, log)
  in
  let e1, log1 = mk () in
  ignore (Engine.run e1);
  let e2, log2 = mk () in
  (* 100x speed: ~20 microseconds of wall time *)
  ignore (Engine.run_realtime ~speed:100.0 e2);
  check_bool "identical order and results" true (!log1 = !log2)

let test_realtime_paces () =
  let e = Engine.create () in
  Engine.schedule e ~at:0.2 (fun () -> ());
  let wall0 = Unix.gettimeofday () in
  ignore (Engine.run_realtime ~speed:10.0 e);
  let elapsed = Unix.gettimeofday () -. wall0 in
  (* 0.2 virtual seconds at 10x => ~20ms wall; allow generous slack *)
  check_bool "slept roughly the scaled delay" true (elapsed >= 0.015 && elapsed < 1.0)

let test_realtime_bad_speed () =
  let e = Engine.create () in
  Alcotest.check_raises "zero speed rejected"
    (Invalid_argument "Engine.run_realtime: speed must be positive") (fun () ->
      ignore (Engine.run_realtime ~speed:0.0 e))

let suite =
  [
    case "time order" test_time_order;
    case "FIFO ties" test_fifo_ties;
    case "now advances" test_now_advances;
    case "schedule during run" test_schedule_during_run;
    case "past clamped" test_past_clamped;
    case "until horizon" test_until;
    case "max events" test_max_events;
    case "stop" test_stop;
    case "schedule_after" test_schedule_after;
    case "trace recording" test_trace_recording;
    case "deterministic replay" test_deterministic_replay;
    case "realtime: same results" test_realtime_same_results;
    case "realtime: paces" test_realtime_paces;
    case "realtime: bad speed" test_realtime_bad_speed;
  ]
