(* Reliable transport over a persistently faulty link.

   The paper's channel model (§2, Def. 2) gives every message between correct
   nodes a delivery bound delta once the network is coherent. This layer
   recovers that abstraction on top of a link that stays lossy (and
   duplicating, and reordering) forever, in the style of the self-stabilizing
   reliable-broadcast constructions of Duvignau, Raynal & Schiller
   (arXiv:2201.12880): per-ordered-pair sequence numbers, ack-driven
   retransmission with exponential backoff and a retry cap, and a bounded
   receive-side dedup cache.

   Every piece of state is a fixed-size array — next-seq counters, in-flight
   window rings, dedup rings — so a state scramble (the incoherent-period
   fault model) corrupts values but never capacity, and the corruption washes
   out as real traffic overwrites the rings:

   - a corrupted next_seq just starts a fresh seq range; the receiver's dedup
     check is seq-exact, so unseen seqs flow through;
   - a corrupted dedup slot wrongly suppresses at most the one future frame
     whose seq lands on that value before traffic overwrites the slot — the
     same effect as one lost message during the incoherent period, which the
     protocol already masks;
   - a corrupted pending slot retransmits garbage seqs for at most
     [retries] backoff steps and then expires.

   Accounting: all transport traffic (data, retransmissions, acks) goes
   through [Network.send], so the network's conservation identity
   [attempts = delivered + dropped + in_flight] keeps holding verbatim.
   The transport adds its own counters: [transport.retransmits],
   [transport.dup_suppressed], [transport.expired], [transport.evicted],
   [transport.acks]. *)

module Rng = Ssba_sim.Rng
module Engine = Ssba_sim.Engine
module Trace = Ssba_sim.Trace
module Metrics = Ssba_sim.Metrics
module Msg = Ssba_net.Msg
module Link = Ssba_net.Link
module Network = Ssba_net.Network

type 'a frame = Data of { seq : int; payload : 'a } | Ack of { seq : int }

let kind_of payload_kind = function
  | Data { payload; _ } -> payload_kind payload
  | Ack _ -> "ack"

type config = {
  rto : float;  (* first retransmission timeout; doubles each attempt *)
  retries : int;  (* max retransmissions per frame before giving up *)
  window : int;  (* per-ordered-pair in-flight entries (ring capacity) *)
  dedup : int;  (* per-ordered-pair receive dedup ring capacity *)
}

let config ?(retries = 12) ?(window = 64) ?(dedup = 256) ~rto () =
  if rto <= 0.0 then invalid_arg "Transport.config: rto must be positive";
  if retries < 0 then invalid_arg "Transport.config: retries must be >= 0";
  if window <= 0 then invalid_arg "Transport.config: window must be positive";
  if dedup <= 0 then invalid_arg "Transport.config: dedup must be positive";
  { rto; retries; window; dedup }

type 'a entry = { seq : int; payload : 'a; mutable attempt : int }

type 'a t = {
  engine : Engine.t;
  net : 'a frame Network.t;
  cfg : config;
  n : int;
  payload_kind : ('a -> string) option;  (* trace labels for Retransmit *)
  next_seq : int array array;  (* [src].[dst] *)
  pending : 'a entry option array array array;  (* [src].[dst].[seq mod window] *)
  seen : int array array array;  (* [dst].[src].[seq mod dedup]; -1 = empty *)
  handlers : ('a Msg.t -> unit) option array;  (* payload handlers, per node *)
  c_retransmits : Metrics.counter;
  c_dup_suppressed : Metrics.counter;
  c_expired : Metrics.counter;
  c_evicted : Metrics.counter;
  c_acks : Metrics.counter;
  c_retries_exhausted : Metrics.counter;
}

let retransmits t = Metrics.value t.c_retransmits
let dup_suppressed t = Metrics.value t.c_dup_suppressed
let expired t = Metrics.value t.c_expired
let evicted t = Metrics.value t.c_evicted
let acks t = Metrics.value t.c_acks
let retries_exhausted t = Metrics.value t.c_retries_exhausted
let config_of t = t.cfg

let payload_trace_msg t payload =
  match t.payload_kind with None -> "?" | Some f -> f payload

let retransmit_deadline cfg attempt =
  (* attempt = 0 is the original send; retransmission k fires at
     rto * 2^k past attempt k's send, i.e. backoff doubles per retry. *)
  cfg.rto *. ldexp 1.0 attempt

(* Retransmission timer for [e] on pair (src, dst). The slot is checked by
   physical equality: if the entry was acked, evicted, or replaced since the
   timer was armed, the timer is a no-op. *)
let rec arm_timer t ~src ~dst (e : 'a entry) ~delay =
  Engine.schedule_after t.engine ~delay (fun () ->
      let slot = (e.seq land max_int) mod t.cfg.window in
      match t.pending.(src).(dst).(slot) with
      | Some e' when e' == e ->
          if e.attempt >= t.cfg.retries then begin
            t.pending.(src).(dst).(slot) <- None;
            Metrics.incr t.c_expired;
            (* retry-cap exhaustion was previously silent: the frame's
               reliability is abandoned here, so say so. [c_expired] keeps
               its digest-visible meaning; this counter and the trace event
               are observability-only. *)
            Metrics.incr t.c_retries_exhausted;
            let tr = Engine.trace t.engine in
            if Trace.is_enabled tr then
              Engine.record t.engine ~node:src
                (Trace.Retries_exhausted
                   {
                     src;
                     dst;
                     msg = payload_trace_msg t e.payload;
                     seq = e.seq;
                   })
          end
          else begin
            e.attempt <- e.attempt + 1;
            Metrics.incr t.c_retransmits;
            let tr = Engine.trace t.engine in
            if Trace.is_enabled tr then
              Engine.record t.engine ~node:src
                (Trace.Retransmit
                   {
                     src;
                     dst;
                     msg = payload_trace_msg t e.payload;
                     attempt = e.attempt;
                   });
            Network.send t.net ~src ~dst (Data { seq = e.seq; payload = e.payload });
            arm_timer t ~src ~dst e ~delay:(retransmit_deadline t.cfg e.attempt)
          end
      | _ -> ())

let send t ~src ~dst payload =
  let seq = t.next_seq.(src).(dst) in
  t.next_seq.(src).(dst) <- seq + 1;
  let slot = (seq land max_int) mod t.cfg.window in
  (match t.pending.(src).(dst).(slot) with
  | Some _ ->
      (* window overrun: the ring slot is reclaimed and the old frame's
         reliability is abandoned (it may still be in flight) *)
      Metrics.incr t.c_evicted
  | None -> ());
  let e = { seq; payload; attempt = 0 } in
  t.pending.(src).(dst).(slot) <- Some e;
  Network.send t.net ~src ~dst (Data { seq; payload });
  arm_timer t ~src ~dst e ~delay:t.cfg.rto

let broadcast t ~src payload =
  for dst = 0 to t.n - 1 do
    send t ~src ~dst payload
  done

(* Frame arrival at [node] (installed once per node on the underlying
   network). Acks clear the matching pending entry; data frames are acked
   unconditionally — even suppressed duplicates, because the duplicate means
   the previous ack was lost — then deduped and handed to the payload
   handler with the envelope (and its forged flag) preserved. *)
let on_frame t node (m : 'a frame Msg.t) =
  let peer = m.Msg.src in
  match m.Msg.payload with
  | Ack { seq } ->
      let slot = (seq land max_int) mod t.cfg.window in
      (match t.pending.(node).(peer).(slot) with
      | Some e when e.seq = seq -> t.pending.(node).(peer).(slot) <- None
      | _ -> ())
  | Data { seq; payload } ->
      Metrics.incr t.c_acks;
      Network.send t.net ~src:node ~dst:peer (Ack { seq });
      let ring = t.seen.(node).(peer) in
      let slot = (seq land max_int) mod t.cfg.dedup in
      if ring.(slot) = seq then begin
        Metrics.incr t.c_dup_suppressed;
        let tr = Engine.trace t.engine in
        if Trace.is_enabled tr then
          Engine.record t.engine ~node
            (Trace.Dup_suppress { src = peer; dst = node; seq })
      end
      else begin
        ring.(slot) <- seq;
        match t.handlers.(node) with
        | Some h -> h (Msg.with_payload m payload)
        | None -> ()
      end

let create ?kind_of:payload_kind ~engine ~net ~config:cfg () =
  let n = Network.size net in
  let metrics = Engine.metrics engine in
  let t =
    {
      engine;
      net;
      cfg;
      n;
      payload_kind;
      next_seq = Array.make_matrix n n 0;
      pending = Array.init n (fun _ -> Array.init n (fun _ -> Array.make cfg.window None));
      seen = Array.init n (fun _ -> Array.init n (fun _ -> Array.make cfg.dedup (-1)));
      handlers = Array.make n None;
      c_retransmits = Metrics.counter metrics "transport.retransmits";
      c_dup_suppressed = Metrics.counter metrics "transport.dup_suppressed";
      c_expired = Metrics.counter metrics "transport.expired";
      c_evicted = Metrics.counter metrics "transport.evicted";
      c_acks = Metrics.counter metrics "transport.acks";
      c_retries_exhausted = Metrics.counter metrics "transport.retries_exhausted";
    }
  in
  for node = 0 to n - 1 do
    Network.set_handler net node (fun m -> on_frame t node m)
  done;
  t

let link t =
  {
    Link.n = t.n;
    send = (fun ~src ~dst payload -> send t ~src ~dst payload);
    broadcast = (fun ~src payload -> broadcast t ~src payload);
    set_handler = (fun node h -> t.handlers.(node) <- Some h);
    clear_handler = (fun node -> t.handlers.(node) <- None);
  }

(* Arbitrary-state corruption of the transport's own state (the transient
   fault model of Corollary 5): every counter, ring slot and pending entry
   may be overwritten with garbage *within its type* — capacities are part
   of the code, not the state, so they are not scrambled. Deterministic in
   [rng]. *)
let scramble t ~rng =
  let garbage_seq () = Rng.int rng 1_000_000 in
  for src = 0 to t.n - 1 do
    for dst = 0 to t.n - 1 do
      t.next_seq.(src).(dst) <- garbage_seq ();
      let ring = t.seen.(dst).(src) in
      for k = 0 to Array.length ring - 1 do
        if Rng.bool rng then ring.(k) <- garbage_seq ()
      done;
      let slots = t.pending.(src).(dst) in
      for k = 0 to Array.length slots - 1 do
        match slots.(k) with
        | None -> ()
        | Some e ->
            if Rng.bool rng then slots.(k) <- None
            else begin
              (* corrupt the retry budget; the seq is immutable in the entry,
                 but re-slotting it under a new timer chain is equivalent to a
                 corrupted in-flight record *)
              e.attempt <- Rng.int rng (t.cfg.retries + 1)
            end
      done
    done
  done
