(** Fixed-capacity session table keyed by (General, [tau_g] anchor).

    The bounded-memory discipline of the transport rings applied to protocol
    sessions: capacity is fixed at creation, overflow evicts the
    least-recently-active session deterministically (counted, never
    allocated around), quiescent sessions are garbage-collected by
    predicate, and a Scramble can corrupt every value in the table but
    never its capacity or occupancy structure.

    A session enters as [(G, None)] and is re-keyed in place to
    [(G, Some tau_g)] when its anchor is established; at most one session
    per General is live at a time (per-General executions are serialized by
    the protocol — concurrency comes from distinct (channelled) Generals). *)

type stats = {
  capacity : int;
  live : int;
  peak_live : int;  (** high-water mark of [live] *)
  evicted : int;  (** sessions dropped to make room *)
  gced : int;  (** quiescent sessions collected *)
  rejected_at_capacity : int;
      (** non-evicting inserts refused because the table was full *)
}

type 'a t

(** Raises [Invalid_argument] unless [capacity >= 1]. *)
val create : capacity:int -> 'a t

val capacity : 'a t -> int
val live : 'a t -> int
val stats : 'a t -> stats

(** The live session for [g], if any. *)
val find : 'a t -> Types.general -> 'a option

(** The anchor component of [g]'s session key. *)
val anchor : 'a t -> Types.general -> float option

(** Insert a fresh [(g, None)] session. Replaces any existing session for
    [g]; evicts the least-recently-active session when full. *)
val insert : 'a t -> g:Types.general -> now:float -> 'a -> unit

(** Like {!insert}, but reports the General whose live session was evicted to
    make room (if any) so the caller can attribute the sacrifice. *)
val insert_reporting :
  'a t -> g:Types.general -> now:float -> 'a -> Types.general option

(** Like {!insert}, but never evicts: when the table is full and [g] holds no
    slot to replace, the insert is refused ([false]) and counted in
    [rejected_at_capacity]. The admission-controlled entry point. *)
val try_insert : 'a t -> g:Types.general -> now:float -> 'a -> bool

(** Refresh the session's activity time (monotone). *)
val touch : 'a t -> Types.general -> now:float -> unit

(** Re-key the session to [(g, Some anchor)]. *)
val set_anchor : 'a t -> Types.general -> float -> unit

val remove : 'a t -> Types.general -> unit
val iter : 'a t -> (g:Types.general -> anchor:float option -> 'a -> unit) -> unit

(** Like {!iter}, but also exposing each session's last-activity time and
    creation stamp — the bookkeeping that determines eviction order, which
    state fingerprints must cover. *)
val iter_detail :
  'a t ->
  (g:Types.general ->
  anchor:float option ->
  active:float ->
  stamp:int ->
  'a ->
  unit) ->
  unit

(** Collect every session the predicate declares dead. The predicate also
    sees the session's last-activity time: callers must grace-period
    recently-active sessions, because a session is momentarily
    indistinguishable from a dead one between its creation and its first
    protocol message (e.g. a General's own proposal racing its self-addressed
    Initiator). *)
val gc : 'a t -> dead:(active:float -> 'a -> bool) -> unit

(** Corrupt anchors, activity times and payloads (via [corrupt]); capacity
    and occupancy are structural and survive. *)
val scramble :
  Ssba_sim.Rng.t -> rtime:(unit -> float) -> corrupt:('a -> unit) -> 'a t -> unit
