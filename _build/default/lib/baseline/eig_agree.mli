(** Second baseline: Exponential Information Gathering Byzantine agreement
    with oral messages (Pease–Shostak–Lamport lineage, the paper's [13]):
    synchronous, time-driven, always [f+1] rounds of length [Phi], with a
    [Theta(n^f)]-entry information tree relayed every round. Runs over its
    own payload type on a private network instance. *)

open Ssba_core.Types

(** Wire format, exposed so tests and adversaries can craft raw messages. *)
type payload =
  | Value of value  (** the General's round-0 value *)
  | Relay of (node_id list * value) list  (** (path, stored value) batch *)

type t

(** [create ~id ~params ~clock ~engine ~net ~g ~t_start] builds one EIG node
    for the agreement led by General [g], with round boundaries at common
    local times [t_start + b * Phi], and registers it as the network handler
    for [id]. *)
val create :
  id:node_id ->
  params:Ssba_core.Params.t ->
  clock:Ssba_sim.Clock.t ->
  engine:Ssba_sim.Engine.t ->
  net:payload Ssba_net.Network.t ->
  g:general ->
  t_start:float ->
  t

(** The General sends its value (round 0). Raises if [id <> g]. *)
val propose : t -> value -> unit

(** The decided value, once boundary [f+1] has resolved the tree. A missing
    or equivocating General resolves to the default value {!default_value}
    (consistently at all correct nodes). *)
val decided : t -> value option

val set_on_decide : t -> (value -> tau:float -> unit) -> unit

(** The default ("bottom") value used on majority ties and absences. *)
val default_value : value

(** Number of stored tree entries (for the message/memory comparison). *)
val tree_size : t -> int

(** Current local-clock reading. *)
val local_time : t -> float
