(* Tests for the concurrent-invocation extension (paper footnote 9):
   invocations by the same General differentiated by an index. Logical
   General ids are channel * n + physical; the Sending Validity Criteria
   (IG1/IG2/IG3) are per logical General. *)

open Helpers
open Ssba_core
module Engine = Ssba_sim.Engine

let mk ?(n = 7) ?(channels = 3) ?(seed = 51) () =
  let params = Params.default n in
  let engine = Engine.create () in
  let rng = Ssba_sim.Rng.create seed in
  let delay =
    Ssba_net.Delay.uniform ~lo:(0.05 *. params.Params.delta) ~hi:params.Params.delta
  in
  let net =
    Ssba_net.Network.create ~engine ~n ~delay ~rng:(Ssba_sim.Rng.split rng) ()
  in
  let returns = ref [] in
  let nodes =
    Array.init n (fun id ->
        let clock =
          Ssba_sim.Clock.random (Ssba_sim.Rng.split rng) ~rho:params.Params.rho
            ~max_offset:0.1
        in
        let node = Node.create ~channels ~id ~params ~clock ~engine ~net () in
        Node.subscribe node (fun r -> returns := r :: !returns);
        node)
  in
  (params, engine, nodes, returns)

let decided returns v =
  List.filter
    (fun (r : Types.return_info) -> r.Types.outcome = Types.Decided v)
    !returns

let test_concurrent_channels_same_general () =
  (* the same General runs three agreements at once, one per channel —
     exactly what IG1 forbids on a single channel *)
  let _, engine, nodes, returns = mk () in
  Engine.schedule engine ~at:0.05 (fun () ->
      check_bool "ch0" true (Node.propose ~channel:0 nodes.(0) "v0" = Ok ());
      check_bool "ch1" true (Node.propose ~channel:1 nodes.(0) "v1" = Ok ());
      check_bool "ch2" true (Node.propose ~channel:2 nodes.(0) "v2" = Ok ()));
  ignore (Engine.run ~until:1.0 engine);
  check_int "all decide v0" 7 (List.length (decided returns "v0"));
  check_int "all decide v1" 7 (List.length (decided returns "v1"));
  check_int "all decide v2" 7 (List.length (decided returns "v2"));
  (* logical General ids are distinct *)
  let gs =
    List.sort_uniq compare
      (List.map (fun (r : Types.return_info) -> r.Types.g) !returns)
  in
  check_bool "three distinct logical Generals" true (gs = [ 0; 7; 14 ])

let test_ig1_still_per_channel () =
  let params, engine, nodes, _ = mk () in
  Engine.schedule engine ~at:0.05 (fun () ->
      ignore (Node.propose ~channel:1 nodes.(2) "a"));
  Engine.schedule engine
    ~at:(0.05 +. (0.3 *. params.Params.delta_0))
    (fun () ->
      (* same channel too soon: refused *)
      (match Node.propose ~channel:1 nodes.(2) "b" with
      | Error (Node.Too_soon | Node.Busy) -> ()
      | Error e -> Alcotest.failf "unexpected %s" (Node.string_of_propose_error e)
      | Ok () -> Alcotest.fail "IG1 must apply within a channel");
      (* another channel right now: fine *)
      check_bool "other channel unaffected" true
        (Node.propose ~channel:2 nodes.(2) "b" = Ok ()));
  ignore (Engine.run ~until:1.0 engine)

let test_channel_out_of_range () =
  let _, _, nodes, _ = mk ~channels:2 () in
  (match Node.propose ~channel:2 nodes.(0) "v" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range channel accepted");
  match Node.propose ~channel:(-1) nodes.(0) "v" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative channel accepted"

let test_forged_logical_initiator () =
  let params = Params.default 7 in
  let engine = Engine.create () in
  let rng = Ssba_sim.Rng.create 3 in
  let net =
    Ssba_net.Network.create ~engine ~n:7
      ~delay:(Ssba_net.Delay.fixed 0.0001)
      ~rng ()
  in
  let returns = ref [] in
  for id = 0 to 6 do
    let node =
      Node.create ~channels:2 ~id ~params ~clock:Ssba_sim.Clock.perfect ~engine
        ~net ()
    in
    Node.subscribe node (fun r -> returns := r :: !returns)
  done;
  (* node 3 sends an Initiator for logical G = 9 (owned by node 2) *)
  Engine.schedule engine ~at:0.05 (fun () ->
      Ssba_net.Network.broadcast net ~src:3 (Types.Initiator { g = 9; v = "forged" }));
  (* and an Initiator beyond the logical range *)
  Engine.schedule engine ~at:0.05 (fun () ->
      Ssba_net.Network.broadcast net ~src:3 (Types.Initiator { g = 14; v = "oob" }));
  ignore (Engine.run ~until:0.5 engine);
  check_int "forged/oob logical initiations ignored" 0 (List.length !returns)

let test_default_single_channel_unchanged () =
  (* channels default to 1: the logical id equals the physical id *)
  let c = Cluster.make ~n:7 () in
  Engine.schedule c.Cluster.engine ~at:0.05 (fun () ->
      ignore (Node.propose (Cluster.node c 0) "v"));
  Cluster.run c;
  List.iter
    (fun (r : Types.return_info) -> check_int "logical = physical" 0 r.Types.g)
    (Cluster.returns c)

let test_cross_channel_isolation () =
  (* a running agreement on channel 0 does not disturb channel 1's values or
     vice versa: different logical ids, different Initiator-Accept state *)
  let _, engine, nodes, returns = mk ~channels:2 () in
  Engine.schedule engine ~at:0.05 (fun () ->
      ignore (Node.propose ~channel:0 nodes.(1) "left");
      ignore (Node.propose ~channel:1 nodes.(1) "right"));
  ignore (Engine.run ~until:1.0 engine);
  check_int "left decided by all" 7 (List.length (decided returns "left"));
  check_int "right decided by all" 7 (List.length (decided returns "right"));
  List.iter
    (fun (r : Types.return_info) ->
      match r.Types.outcome with
      | Types.Decided "left" -> check_int "left on logical 1" 1 r.Types.g
      | Types.Decided "right" -> check_int "right on logical 8" 8 r.Types.g
      | _ -> ())
    !returns

let suite =
  [
    case "concurrent channels, same General" test_concurrent_channels_same_general;
    case "IG1 per channel" test_ig1_still_per_channel;
    case "channel out of range" test_channel_out_of_range;
    case "forged logical Initiator ignored" test_forged_logical_initiator;
    case "default single channel unchanged" test_default_single_channel_unchanged;
    case "cross-channel isolation" test_cross_channel_isolation;
  ]
