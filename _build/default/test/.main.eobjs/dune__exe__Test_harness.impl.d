test/test_harness.ml: Alcotest Float Helpers List Params Ssba_adversary Ssba_core Ssba_harness Ssba_sim String Types
