(* Regenerate the experiment tables of EXPERIMENTS.md (DESIGN.md §4).

   With no arguments, runs every experiment; otherwise runs the named ones
   (e1..e17; e15 is the knife gate on the ssba_mc CLI). *)

let experiments =
  [
    ("e1", "validity under a correct General", fun () -> Ssba_harness.Experiments.e1_validity ());
    ("e2", "agreement under Byzantine attack", fun () -> Ssba_harness.Experiments.e2_agreement ());
    ("e3", "message-driven vs time-driven", fun () -> Ssba_harness.Experiments.e3_msgdriven ());
    ("e4", "convergence from scrambled states", fun () -> Ssba_harness.Experiments.e4_convergence ());
    ("e5", "timeliness bounds", fun () -> Ssba_harness.Experiments.e5_timeliness ());
    ("e6", "O(f') termination", fun () -> Ssba_harness.Experiments.e6_early_stop ());
    ("e7", "message complexity", fun () -> Ssba_harness.Experiments.e7_msg_complexity ());
    ("e8", "pulse synchronization", fun () -> Ssba_harness.Experiments.e8_pulse ());
    ("e9", "primitive-level properties", fun () -> Ssba_harness.Experiments.e9_invariants ());
    ("e10", "lossy links with/without transport", fun () -> Ssba_harness.Experiments.e10_lossy_links ());
    ("e11", "engine scale: events/sec across n", fun () -> Ssba_harness.Experiments.e11_scale ());
    ("e12", "recovery under continuous churn", fun () -> Ssba_harness.Experiments.e12_churn ());
    ("e13", "concurrent sessions vs table bound", fun () -> Ssba_harness.Experiments.e13_sessions ());
    ("e14", "exhaustive small-model checking", fun () -> Ssba_mc.Mc.e14 ());
    ("e16", "scale curve + multi-core campaign speedup", fun () -> Ssba_fuzz.E16.run ());
    ("e17", "recurrent-agreement service soak", fun () -> Ssba_service.E17.run ());
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ -> List.map (fun (name, _, _) -> name) experiments
  in
  let unknown =
    List.filter (fun n -> not (List.exists (fun (m, _, _) -> m = n) experiments)) requested
  in
  if unknown <> [] then begin
    Printf.eprintf "unknown experiment(s): %s\navailable:\n" (String.concat " " unknown);
    List.iter (fun (n, d, _) -> Printf.eprintf "  %s  %s\n" n d) experiments;
    exit 1
  end;
  List.iter
    (fun name ->
      let _, _, run = List.find (fun (m, _, _) -> m = name) experiments in
      run ())
    requested
