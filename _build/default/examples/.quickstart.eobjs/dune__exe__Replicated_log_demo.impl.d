examples/replicated_log_demo.ml: Fmt List Printf Ssba_apps Ssba_core Ssba_net Ssba_sim
