(* Property oracles.

   Each oracle checks one of the paper's stated properties over an episode of
   a run and reports a verdict plus the measured quantity, so the experiment
   tables can print paper-bound vs measured side by side. Bounds are checked
   with a small relative tolerance for float arithmetic. *)

open Ssba_core.Types

type verdict = { ok : bool; measured : float; bound : float; label : string }

let tol = 1.0 +. 1e-9

let make label ~measured ~bound = { ok = measured <= bound *. tol; measured; bound; label }

let pp_verdict ppf v =
  Fmt.pf ppf "%-28s %s measured %.6f vs bound %.6f" v.label
    (if v.ok then "OK  " else "FAIL")
    v.measured v.bound

(* Agreement: if any correct node decides (G, m), every correct node decides
   the same (G, m) — nobody aborts and nobody stays silent. *)
type agreement_result =
  | All_silent  (* nobody returned anything: a non-event, allowed *)
  | All_aborted
  | Unanimous of value
  | Violated of string

let agreement ~(correct : node_id list) (e : Metrics.episode) =
  let decided = Metrics.decided e in
  let aborted = Metrics.aborted e in
  match (decided, aborted) with
  | [], [] -> All_silent
  | [], _ -> All_aborted
  | (_, v0) :: _, _ ->
      let values =
        List.sort_uniq compare (List.map snd decided)
      in
      if List.length values > 1 then
        Violated
          (Printf.sprintf "divergent decisions: %s"
             (String.concat ", " values))
      else if aborted <> [] then
        Violated
          (Printf.sprintf "%d correct node(s) aborted while others decided %S"
             (List.length aborted) v0)
      else begin
        let deciders = List.map (fun (r, _) -> r.node) decided in
        let missing =
          List.filter (fun id -> not (List.mem id deciders)) correct
        in
        if missing = [] then Unanimous v0
        else
          Violated
            (Printf.sprintf "correct node(s) %s never returned while others decided %S"
               (String.concat "," (List.map string_of_int missing))
               v0)
      end

let agreement_holds ~correct e =
  match agreement ~correct e with
  | All_silent | All_aborted | Unanimous _ -> true
  | Violated _ -> false

(* Validity: a correct General's value is decided by every correct node. *)
let validity ~correct ~v e =
  match agreement ~correct e with
  | Unanimous v' -> String.equal v v'
  | All_silent | All_aborted | Violated _ -> false

(* Timeliness 1 (agreement skews), with rt conversion via the run's clocks. *)
let timeliness_1a res e =
  let d = (res.Runner.scenario).Scenario.params.Ssba_core.Params.d in
  make "1a decision skew <= 3d" ~measured:(Metrics.decision_skew res e) ~bound:(3.0 *. d)

let timeliness_1b res e =
  let d = (res.Runner.scenario).Scenario.params.Ssba_core.Params.d in
  make "1b anchor skew <= 6d" ~measured:(Metrics.anchor_skew res e) ~bound:(6.0 *. d)

let timeliness_1d res e =
  let params = (res.Runner.scenario).Scenario.params in
  (* rt(tau_g) <= rt(tau) and tau - tau_g <= Delta_agr, per node. *)
  let anchored_ok =
    List.for_all (fun r -> r.tau_g <= r.tau_ret) e.Metrics.returns
  in
  let v =
    make "1d running time <= Dagr" ~measured:(Metrics.max_running_time e)
      ~bound:params.Ssba_core.Params.delta_agr
  in
  { v with ok = v.ok && anchored_ok }

(* Timeliness 2 (validity window): decisions within [t0 - d, t0 + 4d] of a
   correct General's proposal at t0 — and anchors no earlier than t0 - d. *)
let timeliness_2 res ~proposed_at e =
  let d = (res.Runner.scenario).Scenario.params.Ssba_core.Params.d in
  let latest = Metrics.last_return e -. proposed_at in
  let anchors =
    List.map (fun r -> Metrics.rt_of res ~id:r.node r.tau_g) e.Metrics.returns
  in
  let earliest_anchor = Metrics.minimum anchors -. proposed_at in
  let v = make "2 decision <= t0+4d" ~measured:latest ~bound:(4.0 *. d) in
  { v with ok = v.ok && earliest_anchor >= -.d *. tol }

(* Timeliness 3 (termination): every correct node that anchored terminates
   within Delta_agr (+7d when not invoked explicitly). *)
let timeliness_3 res e =
  let params = (res.Runner.scenario).Scenario.params in
  let d = params.Ssba_core.Params.d in
  make "3 termination <= Dagr+7d" ~measured:(Metrics.max_running_time e)
    ~bound:(params.Ssba_core.Params.delta_agr +. (7.0 *. d))

(* Unforgeability (IA-2 shape): with no correct invocation there must be no
   decided value anywhere. *)
let no_decision (res : Runner.result) =
  List.for_all (fun r -> r.outcome = Aborted) res.Runner.returns

(* Message conservation: everything that entered the network — sends and
   fault-injected duplicate copies alike — is accounted for, exactly once, as
   delivered, dropped, or still in flight. This is an exact integer identity
   — any slack means a counting bug, so no tolerance. *)
let network_conservation (res : Runner.result) =
  let attempts = res.Runner.messages_sent + res.Runner.messages_duplicated in
  let accounted =
    res.Runner.messages_delivered + res.Runner.messages_dropped
    + res.Runner.messages_in_flight
  in
  {
    ok = attempts = accounted;
    measured = float_of_int accounted;
    bound = float_of_int attempts;
    label = "net conservation attempts = delivered+dropped+in_flight";
  }

(* Session-keyed agreement oracle, sound under Byzantine Generals that
   initiate continuously (where time-clustering returns into episodes is
   ambiguous). Returns are grouped into (G, tau_g) sessions — keyed by the
   session's root anchor, membership within 6d of the root ([IA-3]'s anchor
   skew), deliberately non-transitive so that a smear of anchors cannot weld
   distinct sessions together — and every session is judged independently:

   - [IA-4a]: two correct decisions whose anchors rt(tau_g) are within 4d
     must carry the same value (checked pairwise, across session borders
     too, so conflation can never excuse a uniqueness violation);
   - Agreement + [IA-3]: a session in which any correct node decides must
     contain a same-valued return from every correct node.

   Decisions within [settle] of [until] (default: the horizon) are skipped as
   "still in flight" (their counterparts may be truncated by the end of the
   run — or corrupted by whatever disruption closes the interval at [until]),
   and decisions before [after] are skipped entirely — pass the stabilization
   time when the run begins from a scrambled state, since the paper's
   properties only hold once the system is stable (transient garbage can
   forge local quorums and produce briefly divergent returns before it
   decays). [correct] overrides the result's correct set — pass a coherence
   interval's cast when checking a window before a Reform rejoined a node.
   Returns a list of violation descriptions; empty means agreement holds. *)
let pairwise_agreement ?settle ?(after = 0.0) ?until ?correct
    (res : Runner.result) =
  let params = (res.Runner.scenario).Scenario.params in
  let d = params.Ssba_core.Params.d in
  let settle =
    match settle with
    | Some s -> s
    | None -> params.Ssba_core.Params.delta_agr +. (10.0 *. d)
  in
  let until =
    Option.value ~default:(res.Runner.scenario).Scenario.horizon until
  in
  let correct = Option.value ~default:res.Runner.correct correct in
  let cutoff = until -. settle in
  let anchor_rt (r : return_info) = Metrics.rt_of res ~id:r.node r.tau_g in
  let violations = ref [] in
  let complain fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let by_g = Hashtbl.create 8 in
  List.iter
    (fun (r : return_info) ->
      let cur = Option.value ~default:[] (Hashtbl.find_opt by_g r.g) in
      Hashtbl.replace by_g r.g (r :: cur))
    res.Runner.returns;
  Hashtbl.iter
    (fun g (returns : return_info list) ->
      let decided =
        List.filter
          (fun r -> (match r.outcome with Decided _ -> true | Aborted -> false)
                    && r.rt_ret <= cutoff && r.rt_ret >= after)
          returns
      in
      (* IA-4a: close anchors, equal values — pairwise and blind to session
         borders, so no grouping choice can excuse a uniqueness violation. *)
      List.iter
        (fun r1 ->
          List.iter
            (fun r2 ->
              match (r1.outcome, r2.outcome) with
              | Decided v1, Decided v2
                when Float.abs (anchor_rt r1 -. anchor_rt r2) <= 4.0 *. d
                     && not (String.equal v1 v2) ->
                  complain
                    "G=%d: nodes %d/%d decided %S vs %S with anchors %.2fd apart"
                    g r1.node r2.node v1 v2
                    (Float.abs (anchor_rt r1 -. anchor_rt r2) /. d)
              | (Decided _ | Aborted), _ -> ())
            decided)
        decided;
      (* (G, tau_g) sessions over all of G's returns: root anchor keys the
         session, membership is within 6d of the root (non-transitive). *)
      let sessions =
        let sorted =
          List.filter (fun r -> not (Float.is_nan (anchor_rt r))) returns
          |> List.sort (fun a b -> compare (anchor_rt a) (anchor_rt b))
        in
        let rec go root cur acc = function
          | [] -> List.rev (match cur with [] -> acc | _ -> List.rev cur :: acc)
          | r :: tl -> (
              match cur with
              | [] -> go (anchor_rt r) [ r ] acc tl
              | _ when anchor_rt r -. root <= (6.0 *. d) +. 1e-9 ->
                  go root (r :: cur) acc tl
              | _ -> go (anchor_rt r) [ r ] (List.rev cur :: acc) tl)
        in
        go nan [] [] sorted
      in
      (* One agreement wave can legitimately spread its anchors past the 6d
         cluster width under churn: the weak-quorum accept path re-estimates
         the recording time from straggling supports, so recovering nodes
         anchor a few d later than nodes that heard the General directly.
         Its decisions, however, land within the 3d skew deadline, while
         decisions of genuinely distinct sessions of one General are >= 7d
         apart (last(G) retention gates re-initiation).  So adjacent anchor
         clusters whose decided returns are within the skew deadline are one
         session split by the cluster width, not two sessions. *)
      let sessions =
        let decided_rts session =
          List.filter_map
            (fun (r : return_info) ->
              match r.outcome with
              | Decided _ -> Some r.rt_ret
              | Aborted -> None)
            session
        in
        let rec merge = function
          | a :: b :: tl ->
              let ra = decided_rts a and rb = decided_rts b in
              if
                ra <> [] && rb <> []
                && Metrics.minimum rb -. List.fold_left Float.max neg_infinity ra
                   <= (3.0 *. d) +. 1e-9
              then merge ((a @ b) :: tl)
              else a :: merge (b :: tl)
          | l -> l
        in
        merge sessions
      in
      (* Agreement/relay per session: each (G, tau_g) session in which a
         correct node decided (inside the checked window) must contain a
         same-valued return from every correct node. Judged independently
         per session — a matching decision in a *different* session of the
         same General excuses nothing. *)
      List.iter
        (fun session ->
          let root = Metrics.minimum (List.map anchor_rt session) in
          List.iter
            (fun r ->
              match r.outcome with
              | Aborted -> ()
              | Decided v ->
                  List.iter
                    (fun q ->
                      if q <> r.node then
                        let mine =
                          List.filter (fun (r' : return_info) -> r'.node = q) session
                        in
                        match mine with
                        | [] ->
                            complain
                              "G=%d session tau_g=%.4f: node %d decided %S but \
                               correct node %d has no return in the session"
                              g root r.node v q
                        | _ ->
                            if
                              not
                                (List.exists
                                   (fun (r' : return_info) ->
                                     match r'.outcome with
                                     | Decided v' -> String.equal v v'
                                     | Aborted -> false)
                                   mine)
                            then
                              complain
                                "G=%d session tau_g=%.4f: node %d decided %S but \
                                 correct node %d aborted/diverged"
                                g root r.node v q)
                    correct)
            (List.filter (fun r -> List.mem r decided) session))
        sessions)
    by_g;
  List.rev !violations

(* The real time from which the paper's guarantees hold again given the
   event schedule: Delta_stb after the last disruptive event (0 when nothing
   disrupts). This is the one shared derivation every caller should use
   instead of hand-computing "scramble time + Delta_stb". *)
let stabilized_after (sc : Scenario.t) =
  let stb = sc.Scenario.params.Ssba_core.Params.delta_stb in
  List.fold_left
    (fun acc e ->
      if Scenario.disruptive sc e then
        Float.max acc (Scenario.event_time e +. stb)
      else acc)
    0.0 sc.Scenario.events

(* ----- per-disruption recovery oracle ---------------------------------- *)

(* One coherence interval's verdict: agreement checked from [checked_from]
   ([t_start + Delta_stb] when the interval follows a disruption), plus the
   measured stabilization time — completion of the first unanimous agreement
   episode whose first return lands within [Delta_stb] of coherence
   resumption. [None] when the schedule placed no such probe: not a failure,
   just unmeasured. *)
type episode_report = {
  interval : Coherence.interval;
  checked_from : float;
  violations : string list;
  recovery_time : float option;
}

let pp_episode_report ppf (r : episode_report) =
  Fmt.pf ppf "%a checked-from %.3f %s%s" Coherence.pp_interval r.interval
    r.checked_from
    (match r.violations with
    | [] -> "OK"
    | vs -> Printf.sprintf "FAIL (%d violations)" (List.length vs))
    (match r.recovery_time with
    | Some rt -> Printf.sprintf " recovery %.3fs" rt
    | None -> "")

let recovery_report ?settle ?stb (res : Runner.result) =
  let sc = res.Runner.scenario in
  let params = sc.Scenario.params in
  let stb = Option.value ~default:params.Ssba_core.Params.delta_stb stb in
  let episodes = Metrics.episodes res in
  List.mapi
    (fun idx (iv : Coherence.interval) ->
      let checked_from =
        iv.Coherence.t_start
        +. (if iv.Coherence.after_disruption then stb else 0.0)
      in
      let violations =
        pairwise_agreement ?settle ~after:checked_from
          ~until:iv.Coherence.t_end ~correct:iv.Coherence.correct res
      in
      let recovery_time =
        if not iv.Coherence.after_disruption then None
        else
          let window_end =
            iv.Coherence.t_start +. params.Ssba_core.Params.delta_stb
          in
          List.find_map
            (fun (e : Metrics.episode) ->
              let fr = Metrics.first_return e in
              let lr = Metrics.last_return e in
              if
                fr >= iv.Coherence.t_start && fr <= window_end
                && lr <= iv.Coherence.t_end
              then
                match agreement ~correct:iv.Coherence.correct e with
                | Unanimous _ -> Some (lr -. iv.Coherence.t_start)
                | All_silent | All_aborted | Violated _ -> None
              else None)
            episodes
      in
      (* Post-hoc gauge: never part of the result digest, so recording the
         measurement cannot disturb pinned corpus fingerprints. *)
      (match recovery_time with
      | Some rt ->
          Ssba_sim.Metrics.set
            (Ssba_sim.Metrics.gauge res.Runner.metrics
               (Printf.sprintf "recovery.time.%d" idx))
            rt
      | None -> ());
      { interval = iv; checked_from; violations; recovery_time })
    (Coherence.intervals sc)

(* A stable fingerprint of everything observable about a run. Two runs of the
   same scenario must produce the same digest (the simulator is a pure
   function of the scenario), so replay files can assert byte-for-byte
   reproduction and fuzz campaigns can compare whole corpora as one hash.
   Floats are rendered with %.17g, which is lossless for doubles. *)
let result_digest (res : Runner.result) =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (r : return_info) ->
      addf "ret %d %d %s %.17g %.17g %.17g;" r.node r.g
        (match r.outcome with Decided v -> "D:" ^ v | Aborted -> "A")
        r.tau_g r.tau_ret r.rt_ret)
    res.Runner.returns;
  List.iter
    (fun ((p : Scenario.proposal), outcome) ->
      addf "prop %d %s %.17g %s;" p.Scenario.g p.Scenario.v p.Scenario.at
        (match outcome with
        | Runner.Accepted -> "ok"
        | Runner.Refused e -> "refused:" ^ Ssba_core.Node.string_of_propose_error e
        | Runner.No_general -> "nogen"))
    res.Runner.proposal_results;
  addf "net %d %d %d %d;" res.Runner.messages_sent res.Runner.messages_delivered
    res.Runner.messages_dropped res.Runner.messages_in_flight;
  if
    res.Runner.messages_duplicated <> 0
    || res.Runner.transport_retransmits <> 0
    || res.Runner.transport_dup_suppressed <> 0
    || res.Runner.transport_expired <> 0
  then
    (* only stamped when non-trivial, so digests of transport-free runs are
       unchanged from earlier corpus recordings *)
    addf "lossy %d %d %d %d;" res.Runner.messages_duplicated
      res.Runner.transport_retransmits res.Runner.transport_dup_suppressed
      res.Runner.transport_expired;
  List.iter (fun (k, c) -> addf "kind %s %d;" k c) res.Runner.messages_by_kind;
  addf "engine %d %.17g"
    res.Runner.engine_stats.Ssba_sim.Engine.events_processed
    res.Runner.engine_stats.Ssba_sim.Engine.end_time;
  Digest.to_hex (Digest.string (Buffer.contents buf))
