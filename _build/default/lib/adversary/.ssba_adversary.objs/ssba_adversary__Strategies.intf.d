lib/adversary/strategies.mli: Behavior Ssba_core
