(* Tests for the timestamped receive log. *)

open Helpers
module L = Ssba_core.Recv_log

let test_note_and_count () =
  let l = L.create () in
  check_int "empty" 0 (L.count l);
  L.note l ~sender:1 ~at:1.0;
  L.note l ~sender:2 ~at:2.0;
  L.note l ~sender:1 ~at:3.0;
  check_int "distinct senders" 2 (L.count l);
  check_bool "senders sorted" true (L.senders l = [ 1; 2 ])

let test_note_keeps_max () =
  let l = L.create () in
  L.note l ~sender:1 ~at:5.0;
  L.note l ~sender:1 ~at:3.0;
  (* replay of an older message must not rewind *)
  check_bool "latest kept" true (L.latest l = Some 5.0)

let test_window_count () =
  let l = L.create () in
  L.note l ~sender:1 ~at:1.0;
  L.note l ~sender:2 ~at:2.0;
  L.note l ~sender:3 ~at:3.0;
  check_int "full window" 3 (L.count_in_window l ~now:3.0 ~width:2.0);
  check_int "narrow window" 2 (L.count_in_window l ~now:3.0 ~width:1.0);
  check_int "point window" 1 (L.count_in_window l ~now:3.0 ~width:0.0);
  check_int "window in the past excludes later arrivals" 1
    (L.count_in_window l ~now:1.5 ~width:1.0)

let test_window_excludes_future () =
  let l = L.create () in
  L.corrupt l ~sender:1 ~at:10.0;
  (* future garbage *)
  L.note l ~sender:2 ~at:1.0;
  check_int "future arrivals not counted" 1
    (L.count_in_window l ~now:2.0 ~width:5.0)

let test_shortest_window () =
  let l = L.create () in
  L.note l ~sender:1 ~at:1.0;
  L.note l ~sender:2 ~at:2.0;
  L.note l ~sender:3 ~at:4.0;
  (match L.shortest_window l ~now:5.0 ~count:2 with
  | Some alpha -> check_float "2 most recent span" 3.0 alpha
  | None -> Alcotest.fail "expected a window");
  (match L.shortest_window l ~now:5.0 ~count:3 with
  | Some alpha -> check_float "3 most recent span" 4.0 alpha
  | None -> Alcotest.fail "expected a window");
  check_bool "too few senders" true (L.shortest_window l ~now:5.0 ~count:4 = None);
  check_bool "count 0 is trivially 0" true
    (L.shortest_window l ~now:5.0 ~count:0 = Some 0.0)

let test_shortest_window_refresh () =
  (* A re-send refreshes the sender's position in the window. *)
  let l = L.create () in
  L.note l ~sender:1 ~at:1.0;
  L.note l ~sender:2 ~at:1.5;
  L.note l ~sender:1 ~at:9.0;
  match L.shortest_window l ~now:9.0 ~count:2 with
  | Some alpha -> check_float "old arrival governs" 7.5 alpha
  | None -> Alcotest.fail "expected a window"

let test_decay () =
  let l = L.create () in
  L.note l ~sender:1 ~at:1.0;
  L.note l ~sender:2 ~at:5.0;
  L.decay l ~horizon:2.0;
  check_int "old removed" 1 (L.count l);
  check_bool "survivor" true (L.senders l = [ 2 ])

let test_sanitize () =
  let l = L.create () in
  L.note l ~sender:1 ~at:1.0;
  L.corrupt l ~sender:2 ~at:99.0;
  L.sanitize l ~now:5.0;
  check_int "future dropped" 1 (L.count l);
  check_bool "real one kept" true (L.senders l = [ 1 ])

let test_clear () =
  let l = L.create () in
  L.note l ~sender:1 ~at:1.0;
  L.clear l;
  check_bool "empty" true (L.is_empty l)

(* qcheck: count_in_window is monotone in width, and shortest_window is
   consistent with count_in_window. *)
let arrivals_gen =
  QCheck.(list_of_size Gen.(int_range 0 20) (pair (int_range 0 9) (float_range 0.0 100.0)))

let prop_window_monotone =
  QCheck.Test.make ~name:"window count monotone in width" ~count:300
    QCheck.(pair arrivals_gen (pair (float_range 0.0 100.0) (float_range 0.0 50.0)))
    (fun (arrivals, (now, w)) ->
      let l = L.create () in
      List.iter (fun (s, at) -> L.note l ~sender:s ~at) arrivals;
      L.count_in_window l ~now ~width:w
      <= L.count_in_window l ~now ~width:(w +. 10.0))

let prop_shortest_window_consistent =
  QCheck.Test.make ~name:"shortest window contains exactly >= count senders"
    ~count:300
    QCheck.(pair arrivals_gen (int_range 1 5))
    (fun (arrivals, count) ->
      let l = L.create () in
      List.iter (fun (s, at) -> L.note l ~sender:s ~at) arrivals;
      let now = 100.0 in
      match L.shortest_window l ~now ~count with
      | None -> L.count_in_window l ~now ~width:now < count
      | Some alpha ->
          (* pad by an ulp-scale epsilon: [now - (now - at)] need not round
             back to exactly [at] *)
          L.count_in_window l ~now ~width:(alpha +. 1e-9) >= count)

(* --- model test: the sorted-array log vs the naive pre-overhaul one --- *)

(* The original hashtable-only implementation, kept verbatim as a reference
   oracle: every query recomputed its answer with a fold (and
   [shortest_window] with a sort). The optimized log must be observationally
   identical under any operation sequence. *)
module Naive = struct
  type t = (int, float) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let note t ~sender ~at =
    match Hashtbl.find_opt t sender with
    | Some prev when prev >= at -> ()
    | _ -> Hashtbl.replace t sender at

  let corrupt t ~sender ~at = Hashtbl.replace t sender at
  let count t = Hashtbl.length t
  let mem t ~sender = Hashtbl.mem t sender
  let senders t = Hashtbl.fold (fun s _ acc -> s :: acc) t [] |> List.sort compare

  let count_in_window t ~now ~width =
    Hashtbl.fold
      (fun _ at acc -> if at <= now && at >= now -. width then acc + 1 else acc)
      t 0

  let shortest_window t ~now ~count =
    if count <= 0 then Some 0.0
    else begin
      let times =
        Hashtbl.fold (fun _ at acc -> if at <= now then at :: acc else acc) t []
        |> List.sort (fun a b -> compare b a)
      in
      match List.nth_opt times (count - 1) with
      | None -> None
      | Some kth -> Some (now -. kth)
    end

  let latest t =
    Hashtbl.fold
      (fun _ at acc -> match acc with Some m when m >= at -> acc | _ -> Some at)
      t None

  let remove_if t pred =
    let doomed =
      Hashtbl.fold (fun s at acc -> if pred at then s :: acc else acc) t []
    in
    List.iter (Hashtbl.remove t) doomed

  let decay t ~horizon = remove_if t (fun at -> at < horizon)
  let sanitize t ~now = remove_if t (fun at -> at > now)
  let clear t = Hashtbl.reset t
end

type op =
  | Note of int * float
  | Corrupt of int * float
  | Decay of float
  | Sanitize of float
  | Clear

let gen_ops =
  QCheck.Gen.(
    let time = map (fun i -> float_of_int i /. 4.0) (int_bound 16) in
    let sender = int_bound 5 in
    list
      (frequency
         [
           (6, map2 (fun s at -> Note (s, at)) sender time);
           (2, map2 (fun s at -> Corrupt (s, at)) sender time);
           (2, map (fun h -> Decay h) time);
           (2, map (fun n -> Sanitize n) time);
           (1, return Clear);
         ]))

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Note (s, at) -> Printf.sprintf "note %d@%.2f" s at
         | Corrupt (s, at) -> Printf.sprintf "corrupt %d@%.2f" s at
         | Decay h -> Printf.sprintf "decay %.2f" h
         | Sanitize n -> Printf.sprintf "sanitize %.2f" n
         | Clear -> "clear")
       ops)

let arb_ops = QCheck.make ~print:print_ops gen_ops

let agrees l n =
  let times = List.init 10 (fun i -> float_of_int i /. 2.0) in
  L.count l = Naive.count n
  && L.is_empty l = (Naive.count n = 0)
  && L.senders l = Naive.senders n
  && L.latest l = Naive.latest n
  && List.for_all (fun s -> L.mem l ~sender:s = Naive.mem n ~sender:s)
       [ 0; 1; 2; 3; 4; 5 ]
  && List.for_all
       (fun now ->
         List.for_all
           (fun width ->
             L.count_in_window l ~now ~width
             = Naive.count_in_window n ~now ~width)
           [ 0.0; 0.25; 1.0; 3.0 ]
         && List.for_all
              (fun count ->
                L.shortest_window l ~now ~count
                = Naive.shortest_window n ~now ~count)
              [ 0; 1; 2; 3; 7 ])
       times

let prop_matches_naive =
  QCheck.Test.make
    ~name:"optimized log is observationally identical to the naive oracle"
    ~count:500 arb_ops (fun ops ->
      let l = L.create () in
      let n = Naive.create () in
      List.for_all
        (fun op ->
          (match op with
          | Note (sender, at) ->
              L.note l ~sender ~at;
              Naive.note n ~sender ~at
          | Corrupt (sender, at) ->
              L.corrupt l ~sender ~at;
              Naive.corrupt n ~sender ~at
          | Decay horizon ->
              L.decay l ~horizon;
              Naive.decay n ~horizon
          | Sanitize now ->
              L.sanitize l ~now;
              Naive.sanitize n ~now
          | Clear ->
              L.clear l;
              Naive.clear n);
          agrees l n)
        ops)

let suite =
  [
    case "note and count" test_note_and_count;
    case "note keeps max" test_note_keeps_max;
    case "window count" test_window_count;
    case "window excludes future" test_window_excludes_future;
    case "shortest window" test_shortest_window;
    case "shortest window refresh" test_shortest_window_refresh;
    case "decay" test_decay;
    case "sanitize" test_sanitize;
    case "clear" test_clear;
    Helpers.qcheck prop_window_monotone;
    Helpers.qcheck prop_shortest_window_consistent;
    Helpers.qcheck prop_matches_naive;
  ]
