(* Scenario descriptions.

   A scenario is a declarative recipe for one simulation: the protocol
   constants, clock and delay models, which node ids run the correct protocol
   and which run a Byzantine behaviour, the proposals correct Generals make,
   and a schedule of environment events (crashes, recoveries, transient-fault
   scrambles, network faults). The runner interprets it deterministically
   from the seed. *)

open Ssba_core.Types

type role = Correct | Byzantine of Ssba_adversary.Behavior.t

type event =
  | Crash of { node : node_id; at : float }  (* mute a node's sends *)
  | Recover of { node : node_id; at : float }
  | Scramble of { at : float; values : value list; net_garbage : int }
      (* corrupt all correct-node state (and transport state when a transport
         runs) + inject forged in-flight garbage *)
  | Drop_prob of { at : float; p : float }
      (* transient loss (incoherence); lifted by Heal / Heal_drop *)
  | Partition of { at : float; blocked : node_id list * node_id list }
      (* block messages between the two groups *)
  | Heal of { at : float }
      (* heal-all (back-compat): lift the partition and the transient drop.
         Persistent link faults (Loss/Duplicate/Reorder) are unaffected. *)
  | Heal_partition of { at : float }  (* lift only the partition *)
  | Heal_drop of { at : float }  (* lift only the transient drop *)
  | Loss of { at : float; p : float }
      (* persistent link loss: composes with Drop_prob, survives Heal; only
         another Loss event changes it *)
  | Duplicate of { at : float; p : float }  (* persistent duplication *)
  | Reorder of { at : float; prob : float; extra : float }
      (* persistent reordering: with prob, stretch a delivery by up to extra *)
  | Delay_surge of { at : float; factor : float }
      (* deliveries temporarily exceed delta (factor > 1 violates §2 Def. 2);
         lifted by Delay_restore *)
  | Delay_restore of { at : float }  (* reinstall the scenario's base delay *)
  | Reform of { node : node_id; at : float }
      (* a Byzantine node starts running the correct protocol from arbitrary
         state — the classic self-stabilizing rejoin. No-op on a node that is
         already correct (or already reformed). *)

type proposal = { g : node_id; v : value; at : float }
(* [g] is a *logical* General id: with [channels] > 1 it ranges over
   [0, n * channels) and node [g mod n] initiates on channel [g / n]. *)

type clocks =
  | Perfect
  | Drifting of { rho : float; max_offset : float }

type t = {
  name : string;
  params : Ssba_core.Params.t;
  seed : int;
  delay : Ssba_net.Delay.t;
  clocks : clocks;
  roles : (node_id * role) list;  (* unlisted ids default to Correct *)
  proposals : proposal list;
  events : event list;
  horizon : float;  (* stop the engine at this real time *)
  channels : int;
      (* concurrent-invocation channels per General (paper footnote 9);
         logical General ids range over [0, n * channels) *)
  record_trace : bool;
  record_observations : bool;
      (* collect fine-grained protocol events for the invariant monitor *)
  transport : Ssba_transport.Transport.config option;
      (* run all protocol traffic through the reliable transport; params
         should then be built at Params.delta_eff for the worst persistent
         loss the event schedule installs *)
  session_capacity : int option;
      (* override the nodes' session-table capacity (default: the Node
         default, max 8 (n * channels)); tiny values force eviction under
         session floods — the model checker's split-hunt configuration *)
  blackout : bool;
      (* the Initiator-Accept re-initiation blackout knob (default true);
         false only in weakened-checker sensitivity runs *)
  admission : bool;
      (* admission-controlled proposals (default false): a full session
         table refuses a General's own proposal instead of evicting — the
         service-mode backstop behind the watermark-based shedding *)
}

let role_of t id =
  match List.assoc_opt id t.roles with Some r -> r | None -> Correct

let correct_ids t =
  List.filter
    (fun id -> match role_of t id with Correct -> true | Byzantine _ -> false)
    (List.init t.params.Ssba_core.Params.n (fun i -> i))

let byzantine_ids t =
  List.filter
    (fun id -> match role_of t id with Correct -> false | Byzantine _ -> true)
    (List.init t.params.Ssba_core.Params.n (fun i -> i))

let event_time = function
  | Crash { at; _ } | Recover { at; _ } | Scramble { at; _ }
  | Drop_prob { at; _ } | Partition { at; _ } | Heal { at }
  | Heal_partition { at } | Heal_drop { at } | Loss { at; _ }
  | Duplicate { at; _ } | Reorder { at; _ } | Delay_surge { at; _ }
  | Delay_restore { at } | Reform { at; _ } ->
      at

(* Events after which the paper's guarantees need a fresh Delta_stb before
   they apply again. Heals and Delay_restore only restore service; persistent
   link faults (Loss/Duplicate/Reorder) are disruptive exactly when nothing
   masks them — pass [masked_link_faults] true when the scenario runs the
   reliable transport, whose contract is to re-establish the bounded-delay
   channel under those faults. *)
let disruptive_event ~masked_link_faults = function
  | Heal _ | Heal_partition _ | Heal_drop _ | Delay_restore _ -> false
  | Loss _ | Duplicate _ | Reorder _ -> not masked_link_faults
  | Crash _ | Recover _ | Scramble _ | Drop_prob _ | Partition _
  | Delay_surge _ | Reform _ ->
      true

let disruptive t = disruptive_event ~masked_link_faults:(t.transport <> None)

(* Byzantine ids the event schedule reforms: they run the correct protocol
   (from arbitrary state) from their Reform time on. *)
let reformed_ids t =
  List.sort_uniq compare
    (List.filter_map
       (function
         | Reform { node; _ }
           when (match role_of t node with
                | Correct -> false
                | Byzantine _ -> true) ->
             Some node
         | _ -> None)
       t.events)

(* A sensible default: random delays within the bound, small drift. *)
let default ?(name = "scenario") ?(seed = 1) ?(horizon = 5.0) ?(record_trace = false)
    ?(record_observations = false) ?delay
    ?(clocks = Drifting { rho = 1e-4; max_offset = 0.1 }) ?(roles = [])
    ?(proposals = []) ?(events = []) ?transport ?(channels = 1)
    ?session_capacity ?(blackout = true) ?(admission = false) params =
  let delay =
    match delay with
    | Some d -> d
    | None ->
        Ssba_net.Delay.uniform ~lo:(0.05 *. params.Ssba_core.Params.delta)
          ~hi:params.Ssba_core.Params.delta
  in
  {
    name;
    params;
    seed;
    delay;
    clocks;
    roles;
    proposals;
    events;
    horizon;
    channels;
    record_trace;
    record_observations;
    transport;
    session_capacity;
    blackout;
    admission;
  }
