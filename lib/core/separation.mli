(** The per-General separation guard: the rate-limiting state behind the
    paper's Uniqueness argument ([IA-4]), factored out of the session so it
    survives session reset, eviction and garbage collection.

    One guard lives per (node, General); the live session for that General
    (if any) holds it by reference. The fields are transparent on purpose —
    the guard is shared mutable state between {!Initiator_accept} (which
    reads and writes it on the protocol hot path) and {!Node} (which sweeps
    and drops fully-decayed guards), not an abstraction boundary. *)

open Types

type t = {
  mutable last_g : float option;  (** [last(G)]: set at N4 *)
  last_gm : (value, Time_set.t) Hashtbl.t;  (** [last(G,m)] set-times *)
  sent_support : (value, float) Hashtbl.t;
  sent_approve : (value, float) Hashtbl.t;
  sent_ready : (value, float) Hashtbl.t;
  mutable session_value : (value * float) option;
      (** re-initiation blackout: first value engaged for G, with time *)
  mutable invoked_at : float option;  (** [IG3] report: block K executed *)
  mutable l4_at : float option;
  mutable m4_at : float option;
  mutable n4_at : float option;
}

val create : unit -> t

(** [last(G,m)] expiry horizon: [2 * Delta_rmv + 9d]. *)
val last_gm_expiry : Params.t -> float

(** [last(G)] expiry horizon: [Delta_0 - 6d]. *)
val last_g_expiry : Params.t -> float

(** Blackout horizon, mirroring i_value freshness: [Delta_rmv]. *)
val session_value_expiry : Params.t -> float

val set_last_gm : t -> value -> at:float -> unit

(** Definition 8's freshness query: was [last(G,m)] defined at time [at]? *)
val last_gm_defined_at : t -> params:Params.t -> value -> at:float -> bool

val last_g_defined : t -> params:Params.t -> now:float -> bool

(** Is there a fresh engagement for a {e different} value? While true,
    block K must reject initiations of [v]. Gates block K only — the relay
    blocks must stay value-blind to preserve [IA-3]. *)
val blackout_blocks : t -> params:Params.t -> now:float -> value -> bool

(** Record (or refresh) the engaged value; a fresh engagement for a
    different value is never displaced. *)
val note_session_value : t -> params:Params.t -> now:float -> value -> unit

(** I-accept reached: drop the blackout ([last(G)] takes over). *)
val clear_session_value : t -> unit

(** Figure 2's decay rules for the persistent variables; idempotent. *)
val cleanup : t -> params:Params.t -> now:float -> unit

(** Fully decayed — eligible for dropping by the node's guard sweep. *)
val is_idle : t -> bool

(** Append a canonical state fingerprint (hashtables in sorted key order,
    exact float text) — the model checker's visited-set encoding. *)
val fingerprint : Buffer.t -> t -> unit
