(* Test entry point: one Alcotest run aggregating every module's suite. *)

let () =
  Alcotest.run "ssba"
    [
      ("rng", Test_rng.suite);
      ("heap", Test_heap.suite);
      ("event-queue", Test_event_queue.suite);
      ("event-queue-differential", Test_differential.suite);
      ("time-set", Test_time_set.suite);
      ("clock", Test_clock.suite);
      ("engine", Test_engine.suite);
      ("trace", Test_trace.suite);
      ("json", Test_json.suite);
      ("metrics", Test_metrics.suite);
      ("net", Test_net.suite);
      ("pool", Test_pool.suite);
      ("delay", Test_delay.suite);
      ("recv-log", Test_recv_log.suite);
      ("params", Test_params.suite);
      ("initiator-accept", Test_initiator_accept.suite);
      ("msgd-broadcast", Test_msgd_broadcast.suite);
      ("ss-byz-agree", Test_ss_byz_agree.suite);
      ("node", Test_node.suite);
      ("scramble", Test_scramble.suite);
      ("adversary", Test_adversary.suite);
      ("baseline", Test_baseline.suite);
      ("pulse", Test_pulse.suite);
      ("harness", Test_harness.suite);
      ("coherence", Test_coherence.suite);
      ("properties", Test_properties.suite);
      ("convergence", Test_convergence.suite);
      ("invariants", Test_invariants.suite);
      ("eig", Test_eig.suite);
      ("channels", Test_channels.suite);
      ("sessions", Test_sessions.suite);
      ("separation", Test_separation.suite);
      ("replicated-log", Test_replicated_log.suite);
      ("transport", Test_transport.suite);
      ("service", Test_service.suite);
      ("fuzz", Test_fuzz.suite);
      ("mc", Test_mc.suite);
      ("parallel", Test_parallel.suite);
      ("soak", Test_soak.suite);
    ]
