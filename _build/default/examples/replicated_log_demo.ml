(* State machine replication: a totally-ordered command log atop ss-Byz-Agree.

   Five of seven nodes submit bank-style commands; node 2 is Byzantine
   (silent) and its slots are taken over by the timeout ladder. Every correct
   replica ends with the identical command sequence — the application the
   Byzantine Generals problem was introduced for.

     dune exec examples/replicated_log_demo.exe *)

module Sim = Ssba_sim
module Net = Ssba_net
module Core = Ssba_core
module Rlog = Ssba_apps.Replicated_log

let () =
  let n = 7 in
  let byzantine = 2 in
  let params = Core.Params.default n in
  let engine = Sim.Engine.create () in
  let rng = Sim.Rng.create 77 in
  let delay =
    Net.Delay.uniform ~lo:(0.1 *. params.Core.Params.delta)
      ~hi:params.Core.Params.delta
  in
  let net = Net.Network.create ~engine ~n ~delay ~rng:(Sim.Rng.split rng) () in
  Net.Network.set_handler net byzantine (fun _ -> ());
  let replicas =
    List.init n (fun id -> id)
    |> List.filter_map (fun id ->
           if id = byzantine then None
           else begin
             let clock =
               Sim.Clock.random (Sim.Rng.split rng) ~rho:params.Core.Params.rho
                 ~max_offset:0.05
             in
             let node = Core.Node.create ~id ~params ~clock ~engine ~net () in
             Some
               ( id,
                 Rlog.create ~node ~cycle_len:(1.2 *. Rlog.min_cycle params) ()
               )
           end)
  in
  (* clients submit commands at a few replicas *)
  List.iter
    (fun (id, r) ->
      if id <> byzantine && id < 5 then begin
        Rlog.submit r (Printf.sprintf "credit(acct%d, %d)" id (10 * (id + 1)));
        Rlog.submit r (Printf.sprintf "debit(acct%d, %d)" id (id + 1))
      end)
    replicas;
  List.iter (fun (_, r) -> Rlog.start r) replicas;
  let _ = Sim.Engine.run ~until:8.0 engine in
  Fmt.pr "node %d is Byzantine (silent); the ladder fills its slots@.@." byzantine;
  let reference = ref None in
  List.iter
    (fun (id, r) ->
      let cmds = Rlog.commands r in
      Fmt.pr "replica %d committed %d commands over %d slots@." id
        (List.length cmds) (Rlog.next_slot r);
      match !reference with
      | None ->
          reference := Some cmds;
          List.iteri (fun i c -> Fmt.pr "   %2d. %s@." i c) cmds
      | Some ref_cmds ->
          if cmds <> ref_cmds then Fmt.pr "   !!! ORDER DIVERGES @."
          else Fmt.pr "   (identical order)@.")
    replicas;
  Fmt.pr "@.state machine replication: all correct replicas apply the same sequence.@."
