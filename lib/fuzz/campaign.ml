(* Campaign driver.

   Iteration addressing uses a splitmix-style mix of (seed, i) so scenario i
   can be rebuilt without generating scenarios 0..i-1; the whole campaign
   digest is a hash over the per-run result digests in order, which is what
   the determinism acceptance check compares. *)

module Rng = Ssba_sim.Rng

type config = {
  seed : int;
  runs : int;
  time_budget : float option;
  gen : Gen.config;
  oracle : Oracle.config;
  shrink : bool;
  max_shrink_attempts : int;
}

let default_config =
  {
    seed = 1;
    runs = 100;
    time_budget = None;
    gen = Gen.default_config;
    oracle = Oracle.default_config;
    shrink = true;
    max_shrink_attempts = 400;
  }

type failure_case = {
  index : int;
  spec : Spec.t;
  report : Oracle.report;
  shrunk : (Spec.t * Oracle.report * Shrink.stats) option;
}

type summary = {
  executed : int;
  failed : failure_case list;
  corpus_digest : string;
}

(* splitmix64's golden-gamma mix keeps nearby (seed, i) pairs statistically
   far apart; wrap-around multiplication is deterministic in OCaml. *)
let rng_of_iteration ~seed i =
  Rng.create (seed lxor ((i + 1) * 0x9E3779B97F4A7C1))

let spec_of_iteration ~seed ~gen i = Gen.spec (rng_of_iteration ~seed i) gen

let run ?progress config =
  let deadline =
    Option.map (fun b -> Unix.gettimeofday () +. b) config.time_budget
  in
  let digests = Buffer.create 256 in
  let failed = ref [] in
  let executed = ref 0 in
  (try
     for i = 0 to config.runs - 1 do
       (match deadline with
       | Some t when Unix.gettimeofday () > t -> raise Exit
       | Some _ | None -> ());
       let spec = spec_of_iteration ~seed:config.seed ~gen:config.gen i in
       let _, report = Oracle.run ~config:config.oracle spec in
       incr executed;
       Buffer.add_string digests report.Oracle.digest;
       Buffer.add_char digests '\n';
       (match progress with Some f -> f i spec report | None -> ());
       if Oracle.failed report then
         let shrunk =
           if config.shrink then
             Some
               (Shrink.minimize ~config:config.oracle
                  ~max_attempts:config.max_shrink_attempts spec report)
           else None
         in
         failed := { index = i; spec; report; shrunk } :: !failed
     done
   with Exit -> ());
  {
    executed = !executed;
    failed = List.rev !failed;
    corpus_digest = Digest.to_hex (Digest.string (Buffer.contents digests));
  }
