examples/byzantine_general.ml: Fmt List Ssba_adversary Ssba_core Ssba_harness
