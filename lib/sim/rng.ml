(* Deterministic splittable PRNG.

   The generator is splitmix64 (Steele, Lea & Flood, OOPSLA'14): a 64-bit
   counter advanced by a Weyl constant and finalized with an avalanching mix.
   It is fast, has a guaranteed period of 2^64, and — crucially for the
   simulator — supports cheap *splitting*, so every component (network delays,
   each adversary, the state scrambler) owns an independent stream derived
   from one root seed. Identical seeds therefore yield identical runs. *)

(* The 64-bit counter lives in an 8-byte [Bytes.t] rather than a boxed
   [int64] record field: [Bytes.get_int64_ne]/[set_int64_ne] compile to raw
   unboxed loads/stores, so advancing the state allocates nothing — with a
   [mutable state : int64] field every draw boxed a fresh Int64, and the
   network draws five samples per send on the hot path. The arithmetic is
   bit-for-bit unchanged; every digest pin stays put. *)
type t = { state : Bytes.t }

let golden_gamma = 0x9E3779B97F4A7C15L

let[@inline always] mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let[@inline always] next_int64 t =
  let s = Int64.add (Bytes.get_int64_ne t.state 0) golden_gamma in
  Bytes.set_int64_ne t.state 0 s;
  mix64 s

let of_int64 s =
  let state = Bytes.create 8 in
  Bytes.set_int64_ne state 0 s;
  { state }

let create seed = of_int64 (mix64 (Int64.of_int seed))

let split t = of_int64 (mix64 (next_int64 t))

let copy t = of_int64 (Bytes.get_int64_ne t.state 0)

let[@inline always] bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let[@inline always] int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let[@inline always] float t bound =
  if bound < 0.0 then invalid_arg "Rng.float: bound must be non-negative";
  let u = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (u /. 9007199254740992.0 (* 2^53 *))

let[@inline always] float_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.float_in_range: hi < lo";
  lo +. float t (hi -. lo)

let[@inline always] bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  let a = Array.copy arr in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let subset t ~k arr =
  if k < 0 || k > Array.length arr then invalid_arg "Rng.subset";
  Array.sub (shuffle t arr) 0 k
