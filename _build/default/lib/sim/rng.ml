(* Deterministic splittable PRNG.

   The generator is splitmix64 (Steele, Lea & Flood, OOPSLA'14): a 64-bit
   counter advanced by a Weyl constant and finalized with an avalanching mix.
   It is fast, has a guaranteed period of 2^64, and — crucially for the
   simulator — supports cheap *splitting*, so every component (network delays,
   each adversary, the state scrambler) owns an independent stream derived
   from one root seed. Identical seeds therefore yield identical runs. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let create seed = { state = mix64 (Int64.of_int seed) }

let split t =
  let s = next_int64 t in
  { state = mix64 s }

let copy t = { state = t.state }

let bits t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  bits t mod bound

let int_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  if bound < 0.0 then invalid_arg "Rng.float: bound must be non-negative";
  let u = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bound *. (u /. 9007199254740992.0 (* 2^53 *))

let float_in_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.float_in_range: hi < lo";
  lo +. float t (hi -. lo)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  let a = Array.copy arr in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

let subset t ~k arr =
  if k < 0 || k > Array.length arr then invalid_arg "Rng.subset";
  Array.sub (shuffle t arr) 0 k
