lib/core/ss_byz_agree.mli: Initiator_accept Msgd_broadcast Ssba_sim Types
