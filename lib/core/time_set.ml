(* Sorted set of local-time stamps, kept as a flat float array.

   Backs Initiator-Accept's last(G,m) rate-limiting variable: block K asks
   "was the variable defined at time [at]?" (an existential query over the
   recorded set-times) and the cleanup block trims set-times outside a
   retention range. The naive float list forced an O(len) scan per query and
   a fresh list allocation per cleanup tick; here the stamps live in one
   ascending array, so the definedness query is an allocation-free O(log m)
   binary search and range retention is an in-place trim.

   Exactness notes (the observable semantics must match the float-list
   version bit for bit, because run digests are pinned):
   - all reads are existential, so dropping exact duplicates on insert
     changes no observable answer;
   - "exists s <= at with at - s <= expiry" holds iff it holds for the
     LARGEST s <= at (a bigger witness is a witness whenever a smaller one
     is), which is what the predecessor search checks;
   - retention keeps exactly { s | lo <= s <= hi }: a prefix cut and a
     suffix cut on the sorted array. *)

type t = { mutable ts : float array; mutable size : int }

let create () = { ts = [||]; size = 0 }

let size t = t.size
let is_empty t = t.size = 0
let clear t = t.size <- 0

(* Index of the first element >= x (insertion point), in [0, size]. *)
let lower_bound t x =
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get t.ts mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

(* Index of the first element > x, in [0, size]. *)
let upper_bound t x =
  let lo = ref 0 and hi = ref t.size in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Array.unsafe_get t.ts mid <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let grow t =
  let cap = Array.length t.ts in
  let ncap = if cap = 0 then 8 else 2 * cap in
  let nts = Array.make ncap 0.0 in
  Array.blit t.ts 0 nts 0 t.size;
  t.ts <- nts

let add t x =
  let i = lower_bound t x in
  if not (i < t.size && Array.unsafe_get t.ts i = x) then begin
    if t.size = Array.length t.ts then grow t;
    Array.blit t.ts i t.ts (i + 1) (t.size - i);
    Array.unsafe_set t.ts i x;
    t.size <- t.size + 1
  end

(* Is there a stamp s with [s <= at] and [at - s <= expiry]? Equivalently:
   does the predecessor of [at] lie within [expiry] of it? *)
let defined_at t ~at ~expiry =
  let i = upper_bound t at in
  i > 0 && at -. Array.unsafe_get t.ts (i - 1) <= expiry

(* Keep exactly the stamps in [lo, hi]. *)
let retain_range t ~lo ~hi =
  let first = lower_bound t lo in
  let last = upper_bound t hi in
  let kept = last - first in
  if kept <= 0 then t.size <- 0
  else begin
    if first > 0 then Array.blit t.ts first t.ts 0 kept;
    t.size <- kept
  end

let to_list t = Array.to_list (Array.sub t.ts 0 t.size)
