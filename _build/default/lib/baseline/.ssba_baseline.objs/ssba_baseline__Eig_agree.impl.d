lib/baseline/eig_agree.ml: Hashtbl List Option Ssba_core Ssba_net Ssba_sim
