(** Coherence timeline: when does a scenario actually satisfy §2's coherence
    assumptions?

    ss-Byz-Agree promises nothing while the system is incoherent — nodes
    crashed, messages dropped or delayed beyond [delta], the network
    partitioned — and re-converges within [Delta_stb] of every return to
    coherence (§6.1). This module derives, from a scenario's event schedule
    and cast alone, the maximal intervals of real time during which the
    coherence assumptions hold, so the recovery oracle can check the paper's
    guarantees separately inside {e every} such interval instead of only
    after the last disruption. *)

open Ssba_core.Types

type interval = {
  t_start : float;
  t_end : float;  (** exclusive; the horizon closes the final interval *)
  after_disruption : bool;
      (** [false] only for an initial interval starting at time 0: everything
          else begins at the moment coherence (re-)establishes, so guarantees
          are owed only from [t_start + Delta_stb] *)
  correct : node_id list;
      (** ids running the correct protocol during this interval: the
          scenario's correct cast plus every node reformed at or before
          [t_start], ascending *)
}

val pp_interval : Format.formatter -> interval -> unit

(** The maximal coherent intervals of a scenario, in time order.

    Incoherence sources, applied by walking the event schedule:
    - a crashed node that is correct (or reformed) at that moment — a crash
      of a still-Byzantine node changes nothing the paper cares about;
    - transient drop probability > 0 ([Drop_prob]; lifted by [Heal] /
      [Heal_drop]);
    - an active [Partition] (lifted by [Heal] / [Heal_partition]);
    - a delay surge with factor > 1 ([Delay_surge]; lifted by
      [Delay_restore] or a factor-1 surge);
    - persistent link faults ([Loss] / [Duplicate] / [Reorder]) with
      probability > 0, {e unless} the scenario runs the reliable transport,
      whose contract is to mask exactly those.

    [Scramble] and an effective [Reform] are point disruptions: they close
    the current interval and immediately reopen one with
    [after_disruption = true]. Zero-length intervals are dropped. *)
val intervals : Scenario.t -> interval list

(** The interval containing real time [t], if any. *)
val interval_at : interval list -> float -> interval option
