(** The fuzzer's verdict on one spec: run it and check every property the
    paper entitles us to under that spec's fault mix.

    Always checked: message conservation, and the pairwise Agreement oracle
    evaluated after the run's re-stabilization point (last disruptive event
    plus [Delta_stb]; from the start if the spec has no events). On calm
    specs (no environment events — Byzantine casts are fine), additionally:
    the {!Ssba_harness.Invariants} IA/TPS monitor, and per accepted proposal
    Validity, Termination and the Timeliness-1a decision-skew deadline. *)

type failure = { oracle : string; detail : string }

type report = {
  digest : string;  (** {!Ssba_harness.Checks.result_digest} of the run *)
  failures : failure list;  (** empty means every applicable oracle passed *)
}

type config = {
  check_invariants : bool;
  check_timeliness : bool;
  skew_deadline_scale : float;
      (** scales the Timeliness-1a 3d decision-skew deadline; 1.0 is the
          paper's bound, smaller values deliberately weaken the oracle's
          tolerance (used to prove the fuzzer catches violations) *)
}

val default_config : config

(** Compile, run, and judge one spec. *)
val run : ?config:config -> Spec.t -> Ssba_harness.Runner.result * report

val failed : report -> bool
val pp_failure : Format.formatter -> failure -> unit
