(** Concrete Byzantine strategies, each exercising an attack class the
    paper's proofs defend against. All are rate-limited so colluding
    adversaries cannot amplify each other without bound. *)

open Ssba_core.Types

(** Pure crash/omission: contributes nothing. *)
val silent : Behavior.t

(** Flood random protocol messages over [values] every [period]; tests
    decay, memory bounds and quorum unforgeability. *)
val spam : period:float -> values:value list -> Behavior.t

(** Re-send everything heard under its own identity after [delay], each
    distinct payload once (replay attack). *)
val mimic : delay:float -> Behavior.t

(** A faulty General sending value [v1] to the even nodes and [v2] to the
    odd ones at time [at], then pushing both through support/approve/ready;
    Uniqueness [IA-4] must prevent divergent accepts. *)
val two_faced_general : v1:value -> v2:value -> at:float -> Behavior.t

(** A faulty General spreading its initiation over [gap] per node; the
    block-K freshness guards must keep anchors tight or kill the run. *)
val stagger_general : v:value -> at:float -> gap:float -> Behavior.t

(** A faulty General initiating towards [targets] only; the Relay property
    [IA-3] must bring every correct node to the same outcome. *)
val partial_general : v:value -> at:float -> targets:node_id list -> Behavior.t

(** A faulty General pacing the Initiator-Accept stages so correct nodes'
    I-accepts land exactly on block R's gate boundary: anchor early
    (Initiator at [at], Support/Approve a d apart), then release the Ready
    wave per destination staggered from [at + 4d] across a 3d window. The
    burst repeats at [at + 2 Delta_rmv + 9d], the same-value separation
    guard's decay boundary. *)
val gate_edge : v:value -> at:float -> Behavior.t

(** A Byzantine participant echoing support/approve/ready for [v1] to one
    half and [v2] to the other, for any General it hears about. *)
val equivocator : v1:value -> v2:value -> Behavior.t

(** Alternates silence and spam in bursts of [period]: an intermittently
    faulty node. *)
val flip_flop : period:float -> values:value list -> Behavior.t

(** A fully scripted adversary: each step [(at, dst, msg)] sends [msg] at
    absolute engine time [at] to [dst] ([None] broadcasts); deterministic
    and input-oblivious. The model checker exports counterexamples as
    these. *)
val scripted : steps:(float * node_id option * message) list -> Behavior.t
