(** Serializable scenario descriptions — the fuzzer's unit of work.

    {!Ssba_harness.Scenario.t} embeds closures (delay policies, Byzantine
    behaviours), so it cannot be saved or shrunk. A spec is the fully-data
    mirror: protocol size, an enumerable delay model, a
    {!Ssba_adversary.Catalog} cast, proposals and environment events. It
    compiles to a scenario with {!to_scenario}, round-trips through JSON
    ({!to_json}/{!of_json}, lossless including float bits), and therefore
    replays byte-for-byte: running the same spec twice yields the same
    {!Ssba_harness.Checks.result_digest}. *)

open Ssba_core.Types

(** Enumerable subset of {!Ssba_net.Delay} (the closure-based policies are
    not serializable and are never generated — except [Scripted], which the
    model checker writes to pin an explored delivery schedule). *)
type delay =
  | Fixed of float
  | Uniform of { lo : float; hi : float }
  | Bimodal of { fast : float; slow : float; slow_prob : float }
  | Edge of { atoms : float list }
      (** boundary sampling: every hop picks uniformly among [atoms], chosen
          so short chains of hops land exactly on the protocol's comparison
          boundaries (4d, 5d, the 3d skew deadline); interior models never
          hit a [<=] boundary exactly *)
  | Scripted of {
      default : float;
      links : ((node_id * node_id) * float list) list;
          (** per (src, dst): the delay of that link's k-th send, in send
              order; [default] once exhausted and for unlisted links *)
    }

type t = {
  name : string;
  seed : int;  (** drives every random choice of the compiled scenario *)
  n : int;
  f : int;  (** [Params.default ~f n] supplies the remaining constants *)
  delay : delay;
  clocks : Ssba_harness.Scenario.clocks;
  cast : (node_id * Ssba_adversary.Catalog.t) list;  (** sorted by node id *)
  proposals : Ssba_harness.Scenario.proposal list;
  events : Ssba_harness.Scenario.event list;  (** sorted by time *)
  transport : Ssba_transport.Transport.config option;
      (** when set, the compiled scenario runs the reliable transport and
          {!params} builds the timeout cascade at
          {!Ssba_core.Params.delta_eff} for the worst persistent loss and
          reordering the event schedule installs *)
  horizon : float;
  session_capacity : int option;
      (** override the nodes' session-table capacity ([None] keeps the
          {!Ssba_core.Node} default); serialized only when set *)
  blackout : bool;
      (** the re-initiation blackout knob (default [true]); serialized only
          when [false] — older replay files keep loading unchanged *)
  r_slack : Ssba_core.Params.r_slack;
      (** block R gate variant threaded into {!params}; serialized only when
          it differs from {!Ssba_core.Params.default_r_slack} *)
  service : Ssba_service.Workload.t option;
      (** the overload tier: run the recurrent-agreement service loop. The
          compiled scenario gets the workload's channel fan-out,
          admission-controlled proposals and a trace, and {!Oracle} adds the
          service checks (bounded queue, shed-only-under-pressure, eventual
          drain). Serialized only when set *)
}

(** The protocol constants the compiled scenario runs under:
    [Params.default ~f n], with [delta] replaced by the effective bound when
    the spec carries a transport (see the [transport] field). *)
val params : t -> Ssba_core.Params.t

(** Worst persistent-loss probability the event schedule installs; [0.0] if
    none. *)
val max_loss : t -> float

(** Worst reordering extra delay the event schedule installs; [0.0]. *)
val max_reorder_extra : t -> float

(** Whether an event invalidates the paper's guarantees until [Delta_stb]
    later. Heals never do; persistent link faults ([Loss]/[Duplicate]/
    [Reorder]) do exactly when the spec runs no transport — masking them is
    the transport's contract, and {!Oracle} holds it to that. *)
val disruptive : t -> Ssba_harness.Scenario.event -> bool

(** Compile to a runnable scenario (observations recorded, for the oracle's
    invariant monitor). *)
val to_scenario : t -> Ssba_harness.Scenario.t

(** The real time at which an event fires. *)
val event_time : Ssba_harness.Scenario.event -> float

(** Largest node id the spec mentions anywhere (cast, proposals, events,
    strategy targets); [-1] if none. Node-count shrinking checks this. *)
val max_referenced_id : t -> int

(** Structural sanity: [n > 3f], cast within the fault budget and node
    range, events sorted and inside the horizon, proposals in range. *)
val validate : t -> (unit, string) result

val to_json : t -> Ssba_sim.Json.t
val of_json : Ssba_sim.Json.t -> (t, string) result

(** Save/load one spec as pretty-stable JSON text (the replay file format). *)
val save : string -> t -> unit

val load : string -> (t, string) result

val pp : Format.formatter -> t -> unit
