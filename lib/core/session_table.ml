(* Fixed-capacity session table keyed by (General, tau_g anchor).

   The protocol core multiplexes agreement sessions over a flat slot array —
   the same bounded-memory discipline as the transport rings: capacity is
   fixed at creation, a transient fault may corrupt every *value* in the
   table but can never grow it, and overflow evicts deterministically
   (least-recently-active, creation order as tie-break) with a counter
   instead of allocating.

   Keys. A session starts as (G, None) — created by the first message for G
   — and is re-keyed in place to (G, Some tau_g) when the Initiator-Accept
   anchor is established. At most one session per General is live at a time
   (the protocol serializes executions per General; concurrency comes from
   many Generals via the channels extension), so a side index general->slot
   keeps lookup O(1); the anchor component is what monitors and the run
   report key on.

   Lifecycle. Dead sessions are garbage-collected by a caller-supplied
   quiescence predicate — a session whose state has fully decayed back to
   the freshly-created one is dropped and recreated on demand, which is
   behaviorally invisible (stale epoch-guarded timers no-op) but keeps the
   table's live count proportional to actual concurrency, not to the total
   number of Generals ever heard from. *)

type stats = {
  capacity : int;
  live : int;
  peak_live : int;  (* high-water mark of [live] *)
  evicted : int;  (* sessions dropped to make room *)
  gced : int;  (* quiescent sessions collected *)
  rejected_at_capacity : int;  (* non-evicting inserts refused when full *)
}

type 'a slot = {
  mutable sl_g : Types.general;
  mutable sl_anchor : float option;
  mutable sl_payload : 'a option;  (* None = free slot *)
  mutable sl_active : float;  (* last activity, local time *)
  mutable sl_stamp : int;  (* creation sequence, eviction tie-break *)
}

type 'a t = {
  slots : 'a slot array;
  index : (Types.general, int) Hashtbl.t;
  mutable seq : int;
  mutable live : int;
  mutable peak_live : int;
  mutable evicted : int;
  mutable gced : int;
  mutable rejected_at_capacity : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Session_table.create: capacity must be >= 1";
  {
    slots =
      Array.init capacity (fun _ ->
          { sl_g = -1; sl_anchor = None; sl_payload = None; sl_active = 0.0; sl_stamp = 0 });
    index = Hashtbl.create capacity;
    seq = 0;
    live = 0;
    peak_live = 0;
    evicted = 0;
    gced = 0;
    rejected_at_capacity = 0;
  }

let capacity t = Array.length t.slots
let live t = t.live

let stats t =
  {
    capacity = Array.length t.slots;
    live = t.live;
    peak_live = t.peak_live;
    evicted = t.evicted;
    gced = t.gced;
    rejected_at_capacity = t.rejected_at_capacity;
  }

let find t g =
  match Hashtbl.find_opt t.index g with
  | None -> None
  | Some i -> t.slots.(i).sl_payload

let anchor t g =
  match Hashtbl.find_opt t.index g with
  | None -> None
  | Some i -> t.slots.(i).sl_anchor

let free_slot t =
  let rec scan i = if t.slots.(i).sl_payload = None then i else scan (i + 1) in
  scan 0

(* Deterministic eviction: the occupied slot with the smallest last-activity
   time, creation order breaking ties. *)
let evict t =
  let best = ref (-1) in
  Array.iteri
    (fun i sl ->
      if sl.sl_payload <> None then
        match !best with
        | -1 -> best := i
        | b ->
            let bs = t.slots.(b) in
            if
              sl.sl_active < bs.sl_active
              || (sl.sl_active = bs.sl_active && sl.sl_stamp < bs.sl_stamp)
            then best := i)
    t.slots;
  let i = !best in
  let sl = t.slots.(i) in
  let victim = sl.sl_g in
  Hashtbl.remove t.index victim;
  sl.sl_payload <- None;
  t.live <- t.live - 1;
  t.evicted <- t.evicted + 1;
  (i, victim)

let insert_reporting t ~g ~now payload =
  (match Hashtbl.find_opt t.index g with
  | Some i ->
      (* replacing the session for g in place *)
      let sl = t.slots.(i) in
      sl.sl_payload <- None;
      Hashtbl.remove t.index g;
      t.live <- t.live - 1
  | None -> ());
  let i, victim =
    if t.live >= Array.length t.slots then
      let i, v = evict t in
      (i, Some v)
    else (free_slot t, None)
  in
  let sl = t.slots.(i) in
  t.seq <- t.seq + 1;
  sl.sl_g <- g;
  sl.sl_anchor <- None;
  sl.sl_payload <- Some payload;
  sl.sl_active <- now;
  sl.sl_stamp <- t.seq;
  Hashtbl.replace t.index g i;
  t.live <- t.live + 1;
  if t.live > t.peak_live then t.peak_live <- t.live;
  victim

let insert t ~g ~now payload = ignore (insert_reporting t ~g ~now payload)

(* Admission-controlled insertion: like [insert], but refuses instead of
   evicting when the table is full and [g] holds no slot to replace. The
   refusal is counted separately from eviction so overload reports can tell
   "we turned work away" apart from "we dropped someone else's state". *)
let try_insert t ~g ~now payload =
  match Hashtbl.find_opt t.index g with
  | Some _ ->
      insert t ~g ~now payload;
      true
  | None ->
      if t.live >= Array.length t.slots then begin
        t.rejected_at_capacity <- t.rejected_at_capacity + 1;
        false
      end
      else begin
        insert t ~g ~now payload;
        true
      end

let touch t g ~now =
  match Hashtbl.find_opt t.index g with
  | None -> ()
  | Some i ->
      let sl = t.slots.(i) in
      if now > sl.sl_active then sl.sl_active <- now

let set_anchor t g anchor =
  match Hashtbl.find_opt t.index g with
  | None -> ()
  | Some i -> t.slots.(i).sl_anchor <- Some anchor

let remove t g =
  match Hashtbl.find_opt t.index g with
  | None -> ()
  | Some i ->
      t.slots.(i).sl_payload <- None;
      Hashtbl.remove t.index g;
      t.live <- t.live - 1

let iter t f =
  Array.iter
    (fun sl ->
      match sl.sl_payload with
      | None -> ()
      | Some p -> f ~g:sl.sl_g ~anchor:sl.sl_anchor p)
    t.slots

(* Like [iter], but exposing the lifecycle bookkeeping (last activity,
   creation stamp) that determines eviction order — the model checker's
   fingerprints must cover it, since two tables with the same sessions but
   different activity orders evict differently under pressure. *)
let iter_detail t f =
  Array.iter
    (fun sl ->
      match sl.sl_payload with
      | None -> ()
      | Some p ->
          f ~g:sl.sl_g ~anchor:sl.sl_anchor ~active:sl.sl_active
            ~stamp:sl.sl_stamp p)
    t.slots

let gc t ~dead =
  Array.iter
    (fun sl ->
      match sl.sl_payload with
      | None -> ()
      | Some p ->
          if dead ~active:sl.sl_active p then begin
            Hashtbl.remove t.index sl.sl_g;
            sl.sl_payload <- None;
            t.live <- t.live - 1;
            t.gced <- t.gced + 1
          end)
    t.slots

(* Transient-fault injection: corrupt anchors, activity times and (via the
   callback) the session payloads — but occupancy, the index and above all
   the capacity are structural and survive any scramble, exactly like the
   transport rings. *)
let scramble rng ~rtime ~corrupt t =
  Array.iter
    (fun sl ->
      match sl.sl_payload with
      | None -> ()
      | Some p ->
          if Ssba_sim.Rng.bool rng then
            sl.sl_anchor <- (if Ssba_sim.Rng.bool rng then Some (rtime ()) else None);
          if Ssba_sim.Rng.bool rng then sl.sl_active <- rtime ();
          corrupt p)
    t.slots
