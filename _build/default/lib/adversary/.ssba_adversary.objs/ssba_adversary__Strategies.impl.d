lib/adversary/strategies.ml: Behavior Hashtbl Ssba_core Ssba_net Ssba_sim
