(* Timestamped per-sender receive log.

   Each Initiator-Accept / msgd-broadcast message class keeps one log per
   (General, value[, round]) key. The primitives only ever ask questions of
   the form "did >= k distinct senders deliver this message within the local
   window [tau - alpha, tau]?", so it suffices to remember, per sender, the
   most recent arrival time: re-sends refresh the entry, and older arrivals
   can never enlarge a suffix window's sender count.

   The log also implements the paper's decay rules: entries older than a
   horizon are removed, and entries with "clearly wrong" (future) timestamps
   — which only a transient fault can produce — are dropped by [sanitize]. *)

type t = { arrivals : (int, float) Hashtbl.t }

let create () = { arrivals = Hashtbl.create 8 }

let note t ~sender ~at =
  match Hashtbl.find_opt t.arrivals sender with
  | Some prev when prev >= at -> ()
  | _ -> Hashtbl.replace t.arrivals sender at

let count t = Hashtbl.length t.arrivals

let senders t = Hashtbl.fold (fun s _ acc -> s :: acc) t.arrivals [] |> List.sort compare

(* Senders whose latest arrival lies in [now - width, now]. *)
let count_in_window t ~now ~width =
  Hashtbl.fold
    (fun _ at acc -> if at <= now && at >= now -. width then acc + 1 else acc)
    t.arrivals 0

(* Smallest alpha such that >= count distinct senders arrived in
   [now - alpha, now]; [None] if fewer than [count] arrivals exist at all. *)
let shortest_window t ~now ~count =
  if count <= 0 then Some 0.0
  else begin
    let times =
      Hashtbl.fold (fun _ at acc -> if at <= now then at :: acc else acc) t.arrivals []
      |> List.sort (fun a b -> compare b a) (* descending *)
    in
    match List.nth_opt times (count - 1) with
    | None -> None
    | Some kth -> Some (now -. kth)
  end

let latest t =
  Hashtbl.fold
    (fun _ at acc -> match acc with Some m when m >= at -> acc | _ -> Some at)
    t.arrivals None

let remove_if t pred =
  let doomed = Hashtbl.fold (fun s at acc -> if pred s at then s :: acc else acc) t.arrivals [] in
  List.iter (Hashtbl.remove t.arrivals) doomed

(* Drop entries that arrived before [horizon]. *)
let decay t ~horizon = remove_if t (fun _ at -> at < horizon)

(* Drop entries with impossible (future) timestamps — transient-fault residue. *)
let sanitize t ~now = remove_if t (fun _ at -> at > now)

let clear t = Hashtbl.reset t.arrivals

let is_empty t = Hashtbl.length t.arrivals = 0

(* Fault injection: plant an arbitrary entry, bypassing the monotonicity of
   [note]. Used only by the transient-fault scrambler. *)
let corrupt t ~sender ~at = Hashtbl.replace t.arrivals sender at
