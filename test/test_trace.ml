(* Tests for structured traces: typed events, lazy rendering, JSONL export
   and re-import. *)

open Helpers
module Trace = Ssba_sim.Trace
module Json = Ssba_sim.Json

(* A cheap distinct event per (kind) for the bookkeeping tests. *)
let ev_a = Trace.Propose { g = 0; v = "a" }
let ev_b = Trace.Ig3_failure { g = 1 }

let test_chronological () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~node:0 ev_a;
  Trace.record t ~time:2.0 ~node:1 ev_b;
  let kinds = List.map Trace.entry_kind (Trace.to_list t) in
  check_bool "chronological order" true (kinds = [ "propose"; "ig3-failure" ])

let test_filter_by_node () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~node:0 ev_a;
  Trace.record t ~time:2.0 ~node:1 ev_a;
  Trace.record t ~time:3.0 ~node:0 ev_b;
  check_int "node filter" 2 (List.length (Trace.filter ~node:0 t));
  check_int "kind filter" 2 (List.length (Trace.filter ~kind:"propose" t));
  check_int "combined filter" 1
    (List.length (Trace.filter ~node:0 ~kind:"propose" t))

let test_disabled () =
  let t = Trace.create ~enabled:false () in
  Trace.record t ~time:1.0 ~node:0 ev_a;
  check_int "disabled drops" 0 (Trace.count t);
  Trace.enable t;
  Trace.record t ~time:2.0 ~node:0 ev_b;
  check_int "enabled records" 1 (Trace.count t);
  Trace.disable t;
  Trace.record t ~time:3.0 ~node:0 ev_a;
  check_int "disabled again" 1 (Trace.count t)

let test_clear () =
  let t = Trace.create () in
  Trace.record t ~time:1.0 ~node:0 ev_a;
  Trace.clear t;
  check_int "cleared" 0 (Trace.count t);
  check_bool "empty list" true (Trace.to_list t = [])

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_pp () =
  let t = Trace.create () in
  Trace.record t ~time:1.5 ~node:2
    (Trace.Ext { kind = "boom"; render = (fun () -> "hello") });
  Trace.record t ~time:2.0 ~node:(-1) (Trace.Scramble { garbage = 7 });
  let s = Fmt.str "%a" Trace.pp t in
  check_bool "mentions node" true (contains ~needle:"n2" s);
  check_bool "mentions kind" true (contains ~needle:"boom" s);
  check_bool "renders ext detail" true (contains ~needle:"hello" s);
  check_bool "system entries tagged" true (contains ~needle:"<sys>" s)

(* The zero-allocation contract: a disabled trace must never render event
   details. The Ext renderer counts its invocations, so eager formatting
   anywhere in the record path would show up here. *)
let test_lazy_rendering () =
  let renders = ref 0 in
  let ev =
    Trace.Ext
      {
        kind = "expensive";
        render =
          (fun () ->
            incr renders;
            Printf.sprintf "costly %d" 42);
      }
  in
  let off = Trace.create ~enabled:false () in
  for _ = 1 to 100 do
    Trace.record off ~time:0.0 ~node:0 ev
  done;
  check_int "disabled trace never renders" 0 !renders;
  let on = Trace.create ~enabled:true () in
  Trace.record on ~time:0.0 ~node:0 ev;
  check_int "recording alone does not render" 0 !renders;
  ignore (Trace.to_jsonl on);
  check_bool "export renders" true (!renders > 0)

let sample_events =
  [
    Trace.Send { src = 0; dst = 3; msg = "echo" };
    Trace.Deliver { src = 0; dst = 3; msg = "echo" };
    Trace.Drop { src = 2; dst = 5; msg = "init'"; reason = "partition" };
    Trace.Propose { g = 1; v = "m" };
    Trace.Ia_invoke { g = 1; v = "m" };
    Trace.Ia_reject { g = 1; v = "stale" };
    Trace.Ia_skip { g = 4; reason = "no live recording time" };
    Trace.I_accept { g = 1; v = "m"; tau_g = 0.12345 };
    Trace.Anchor_set { g = 1; tau_g = 0.12345 };
    Trace.Mb_accept { g = 1; p = 2; v = "m"; k = 1 };
    Trace.Mb_broadcaster { g = 1; p = 2; total = 5 };
    Trace.Agree_return { g = 1; decided = Some "m"; tau_g = 0.12345 };
    Trace.Agree_return { g = 2; decided = None; tau_g = 1.5 };
    Trace.Ig3_failure { g = 3 };
    Trace.Scramble { garbage = 150 };
  ]

(* Round trip: typed events -> JSONL -> parse -> structurally equal. *)
let test_jsonl_round_trip () =
  let t = Trace.create () in
  List.iteri
    (fun i ev -> Trace.record t ~time:(0.25 *. float_of_int i) ~node:(i mod 4) ev)
    sample_events;
  Trace.record t ~time:99.0 ~node:(-1)
    (Trace.Ext { kind = "custom-kind"; render = (fun () -> "custom detail") });
  let original = Trace.to_list t in
  let jsonl = Trace.to_jsonl t in
  let parsed = Trace.entries_of_jsonl jsonl in
  check_int "entry count survives" (List.length original) (List.length parsed);
  List.iter2
    (fun a b ->
      if not (Trace.equal_entry a b) then
        Alcotest.failf "round trip mismatch: %a vs %a" Trace.pp_entry a
          Trace.pp_entry b)
    original parsed

let test_jsonl_is_parseable_json () =
  let t = Trace.create () in
  List.iter (fun ev -> Trace.record t ~time:1.0 ~node:0 ev) sample_events;
  let lines =
    String.split_on_char '\n' (Trace.to_jsonl t)
    |> List.filter (fun l -> l <> "")
  in
  check_int "one line per entry" (Trace.count t) (List.length lines);
  List.iter
    (fun line ->
      let j = Json.of_string line in
      check_bool "time field" true (Json.member "time" j <> None);
      check_bool "node field" true (Json.member "node" j <> None);
      check_bool "kind field" true
        (match Json.member "kind" j with
        | Some (Json.Str _) -> true
        | _ -> false))
    lines

let test_import_rejects_garbage () =
  let bad () = ignore (Trace.entries_of_jsonl "{\"not\": \"a trace\"}") in
  (match bad () with
  | () -> Alcotest.fail "expected Import_error"
  | exception Trace.Import_error _ -> ());
  match Trace.entries_of_jsonl "" with
  | [] -> ()
  | _ -> Alcotest.fail "empty input should parse to no entries"

let test_unknown_kind_becomes_ext () =
  let line = {|{"time":1.0,"node":2,"kind":"from-the-future","detail":"payload"}|} in
  match Trace.entries_of_jsonl line with
  | [ e ] ->
      check_str "kind preserved" "from-the-future" (Trace.entry_kind e);
      check_str "detail preserved" "payload" (Trace.entry_detail e)
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

let test_equal_event () =
  check_bool "equal" true
    (Trace.equal_event
       (Trace.Send { src = 0; dst = 1; msg = "echo" })
       (Trace.Send { src = 0; dst = 1; msg = "echo" }));
  check_bool "different payload" false
    (Trace.equal_event
       (Trace.Send { src = 0; dst = 1; msg = "echo" })
       (Trace.Send { src = 0; dst = 2; msg = "echo" }));
  check_bool "different constructors" false
    (Trace.equal_event (Trace.Ig3_failure { g = 0 }) (Trace.Scramble { garbage = 0 }))

let suite =
  [
    case "chronological" test_chronological;
    case "filters" test_filter_by_node;
    case "enable/disable" test_disabled;
    case "clear" test_clear;
    case "pretty printing" test_pp;
    case "lazy rendering" test_lazy_rendering;
    case "jsonl round trip" test_jsonl_round_trip;
    case "jsonl parses as json" test_jsonl_is_parseable_json;
    case "import rejects garbage" test_import_rejects_garbage;
    case "unknown kind becomes ext" test_unknown_kind_becomes_ext;
    case "event equality" test_equal_event;
  ]
