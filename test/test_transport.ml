(* Tests for the reliable transport (lib/transport): unit-level behaviour
   over a persistently faulty network, runner-level self-stabilization with
   the transport in the loop, the Heal split, crash/recover mid-broadcast,
   and the lossy fuzz campaign together with its transport-off
   counterexample. *)

open Helpers
module Engine = Ssba_sim.Engine
module Rng = Ssba_sim.Rng
module Net = Ssba_net.Network
module Delay = Ssba_net.Delay
module Link = Ssba_net.Link
module Msg = Ssba_net.Msg
module T = Ssba_transport.Transport
module Params = Ssba_core.Params
module H = Ssba_harness
module F = Ssba_fuzz

(* A 2-node faulty network with a transport on top; protocol traffic goes
   through [link]. *)
let mk ?drop_prob ?dup_prob ?(seed = 7) ?(rto = 0.05) () =
  let engine = Engine.create () in
  let net =
    Net.create ?drop_prob ?dup_prob ~engine ~n:2 ~delay:(Delay.fixed 0.01)
      ~rng:(Rng.create seed) ()
  in
  let tr = T.create ~engine ~net ~config:(T.config ~rto ()) () in
  (engine, tr, T.link tr)

let collect link dst =
  let got = ref [] in
  Link.set_handler link dst (fun m -> got := m.Msg.payload :: !got);
  got

let payloads k = List.init k (fun i -> Printf.sprintf "m%02d" i)

(* Retransmission masks a persistent 30 % loss: every payload arrives
   exactly once even though both data frames and acks keep being dropped. *)
let test_reliable_under_loss () =
  let engine, tr, link = mk ~drop_prob:0.3 () in
  let got = collect link 1 in
  List.iter (fun p -> Link.send link ~src:0 ~dst:1 p) (payloads 30);
  ignore (Engine.run engine);
  check_bool "all payloads delivered exactly once" true
    (List.sort compare !got = payloads 30);
  check_bool "loss actually forced retransmissions" true (T.retransmits tr > 0);
  check_int "nothing expired" 0 (T.expired tr)

(* The receive dedup ring turns at-least-once into exactly-once under full
   network duplication. *)
let test_dedup_exactly_once () =
  let engine, tr, link = mk ~dup_prob:1.0 () in
  let got = collect link 1 in
  List.iter (fun p -> Link.send link ~src:0 ~dst:1 p) (payloads 20);
  ignore (Engine.run engine);
  check_bool "duplicated frames delivered exactly once" true
    (List.sort compare !got = payloads 20);
  check_bool "duplicates were suppressed" true (T.dup_suppressed tr > 0)

(* A dead link exhausts the retry budget: state is bounded, the run
   terminates, and the frames are accounted as expired. *)
let test_expiry_on_dead_link () =
  let engine, tr, link = mk ~drop_prob:1.0 () in
  let got = collect link 1 in
  Link.send link ~src:0 ~dst:1 "a";
  Link.send link ~src:0 ~dst:1 "b";
  ignore (Engine.run engine);
  check_int "nothing delivered" 0 (List.length !got);
  check_int "both frames expired" 2 (T.expired tr);
  check_int "full retry budget spent per frame"
    (2 * (T.config_of tr).T.retries)
    (T.retransmits tr)

(* A frame abandoned at the retry cap is a silent reliability give-up no
   more: the [transport.retries_exhausted] counter and the typed
   [Retries_exhausted] trace event both account for every one. *)
let test_retries_exhausted_accounted () =
  let trace = Ssba_sim.Trace.create ~enabled:true () in
  let engine = Engine.create ~trace () in
  let net =
    Net.create ~drop_prob:1.0 ~engine ~n:2 ~delay:(Delay.fixed 0.01)
      ~rng:(Rng.create 7) ()
  in
  let tr = T.create ~engine ~net ~config:(T.config ~rto:0.05 ()) () in
  let link = T.link tr in
  Link.send link ~src:0 ~dst:1 "a";
  Link.send link ~src:0 ~dst:1 "b";
  ignore (Engine.run engine);
  check_int "counter matches the two abandoned frames" 2
    (T.retries_exhausted tr);
  let events =
    List.filter
      (fun (e : Ssba_sim.Trace.entry) ->
        match e.Ssba_sim.Trace.event with
        | Ssba_sim.Trace.Retries_exhausted { src = 0; dst = 1; _ } -> true
        | _ -> false)
      (Ssba_sim.Trace.to_list trace)
  in
  check_int "one typed trace event per abandoned frame" 2 (List.length events)

(* Transient-fault model: scramble every piece of transport state, then keep
   sending. Capacities are code, not state, so traffic still flows; a
   corrupted dedup slot may wrongly suppress at most a frame or two (the
   same effect as a lost message during the incoherent period), and the
   corruption is overwritten by real traffic. *)
let test_scramble_washout () =
  let engine, tr, link = mk () in
  let got = collect link 1 in
  List.iter (fun p -> Link.send link ~src:0 ~dst:1 p) (payloads 5);
  ignore (Engine.run engine);
  T.scramble tr ~rng:(Rng.create 99);
  got := [];
  let fresh = List.init 20 (fun i -> Printf.sprintf "s%02d" i) in
  List.iter (fun p -> Link.send link ~src:0 ~dst:1 p) fresh;
  ignore (Engine.run engine);
  let delivered = List.sort_uniq compare !got in
  check_int "no payload delivered twice" (List.length !got)
    (List.length delivered);
  check_bool "post-scramble traffic flows (>= 18/20)" true
    (List.length delivered >= 18)

(* ------------------------------------------------------------------ *)
(* Runner-level: the transport in the protocol loop.                   *)

let decided_unanimously ?v (res : H.Runner.result) =
  List.exists
    (fun e ->
      match H.Checks.agreement ~correct:res.H.Runner.correct e with
      | H.Checks.Unanimous u -> ( match v with None -> true | Some v -> u = v)
      | H.Checks.All_silent | H.Checks.All_aborted | H.Checks.Violated _ ->
          false)
    (H.Metrics.episodes res)

(* Acceptance: transport state survives a Scramble. A full state scramble
   (protocol + transport + in-flight garbage) over a permanently lossy link
   must still reach unanimous agreement once Delta_stb has passed. *)
let test_transport_survives_scramble () =
  let n = 7 and p = 0.2 in
  let base = Params.default n in
  let tcfg = T.config ~rto:(3.0 *. base.Params.delta) () in
  let params =
    Params.default
      ~delta:
        (Params.delta_eff ~delta:base.Params.delta ~p ~rto:tcfg.T.rto
           ~retries:tcfg.T.retries)
      n
  in
  let t0 = params.Params.delta_stb in
  let sc =
    H.Scenario.default ~name:"scramble+transport" ~seed:11 ~transport:tcfg
      ~events:
        [
          H.Scenario.Loss { at = 0.0; p };
          H.Scenario.Scramble
            { at = 0.0; values = [ "x"; "y" ]; net_garbage = 100 };
        ]
      ~proposals:[ { g = 2; v = "go"; at = t0 } ]
      ~horizon:(t0 +. (3.0 *. params.Params.delta_agr))
      params
  in
  let res = H.Runner.run sc in
  check_bool "unanimous decision after stabilization" true
    (decided_unanimously ~v:"go" res);
  check_bool "pairwise agreement holds after Delta_stb" true
    (H.Checks.pairwise_agreement ~after:t0 res = [])

(* Satellite: the Heal split. A total transient drop is lifted by Heal_drop
   and by the back-compat heal-all Heal, but NOT by Heal_partition; and a
   persistent Loss survives even heal-all. *)
let test_heal_split () =
  let params = Params.default 7 in
  let run events =
    H.Runner.run
      (H.Scenario.default ~name:"heal-split" ~seed:5 ~events
         ~proposals:[ { g = 0; v = "v"; at = 0.05 } ]
         ~horizon:(0.05 +. (3.0 *. params.Params.delta_agr))
         params)
  in
  let blackout = H.Scenario.Drop_prob { at = 0.0; p = 1.0 } in
  let res = run [ blackout; H.Scenario.Heal_drop { at = 0.02 } ] in
  check_bool "Heal_drop lifts the transient drop" true
    (decided_unanimously ~v:"v" res);
  let res = run [ blackout; H.Scenario.Heal { at = 0.02 } ] in
  check_bool "heal-all still lifts the transient drop" true
    (decided_unanimously ~v:"v" res);
  let res = run [ blackout; H.Scenario.Heal_partition { at = 0.02 } ] in
  check_bool "Heal_partition leaves the drop in place" true
    (H.Checks.no_decision res);
  let res =
    run [ H.Scenario.Loss { at = 0.0; p = 1.0 }; H.Scenario.Heal { at = 0.02 } ]
  in
  check_bool "persistent Loss survives heal-all" true (H.Checks.no_decision res)

(* Satellite: a participant crashing mid-broadcast and recovering. Crash
   only mutes sends, so the recovered node catches up and the whole cluster
   (quorum n - f = 6 among the other nodes) decides unanimously — plain and
   with the transport over a lossy link. *)
let test_crash_recover_mid_broadcast () =
  let n = 7 in
  let check_case ~name ~p ~transport =
    let base = Params.default n in
    let tcfg = T.config ~rto:(3.0 *. base.Params.delta) () in
    let params =
      if transport && p > 0.0 then
        Params.default
          ~delta:
            (Params.delta_eff ~delta:base.Params.delta ~p ~rto:tcfg.T.rto
               ~retries:tcfg.T.retries)
          n
      else base
    in
    let t0 = 0.05 in
    let events =
      (if p > 0.0 then [ H.Scenario.Loss { at = 0.0; p } ] else [])
      @ [
          H.Scenario.Crash { node = 3; at = t0 +. (0.5 *. params.Params.d) };
          H.Scenario.Recover { node = 3; at = t0 +. (2.0 *. params.Params.d) };
        ]
    in
    let sc =
      H.Scenario.default ~name ~seed:31 ~events
        ?transport:(if transport then Some tcfg else None)
        ~proposals:[ { g = 0; v = "w"; at = t0 } ]
        ~horizon:(t0 +. (3.0 *. params.Params.delta_agr))
        params
    in
    let res = H.Runner.run sc in
    check_bool (name ^ ": all 7 (incl. recovered) decide unanimously") true
      (List.exists
         (fun e ->
           H.Checks.validity ~correct:res.H.Runner.correct ~v:"w" e)
         (H.Metrics.episodes res))
  in
  check_case ~name:"plain" ~p:0.0 ~transport:false;
  check_case ~name:"lossy+transport" ~p:0.2 ~transport:true

(* ------------------------------------------------------------------ *)
(* Fuzz: the lossy campaign and the transport-off counterexample.      *)

(* Acceptance: a 50-scenario campaign with persistent loss up to p = 0.3
   plus duplication and reordering, transport on, passes every oracle in
   the strictest class (Agreement, Validity, Termination). The digest pins
   the corpus byte-for-byte; `ssba-fuzz --seed 42 --runs 50 --lossy`
   reproduces it. *)
let test_lossy_campaign () =
  let summary =
    F.Campaign.run
      {
        F.Campaign.default_config with
        F.Campaign.seed = 42;
        runs = 50;
        gen = F.Gen.lossy_config;
        shrink = false;
      }
  in
  check_int "executed all 50 scenarios" 50 summary.F.Campaign.executed;
  check_int "no oracle failures" 0 (List.length summary.F.Campaign.failed);
  check_str "corpus digest pinned" "7a08e9d2c32ec6be5c67c4da01d5aad5"
    summary.F.Campaign.corpus_digest;
  (* the pre-fix lossy corpus is frozen behind the legacy gate and the
     pre-edge generator streams (`--lossy --r-slack legacy --edge-delays
     off` on the CLI) *)
  let legacy =
    F.Campaign.run
      {
        F.Campaign.default_config with
        F.Campaign.seed = 42;
        runs = 50;
        gen =
          {
            F.Gen.lossy_config with
            F.Gen.r_slack = Ssba_core.Params.Legacy;
            F.Gen.edge_delays = false;
          };
        shrink = false;
      }
  in
  check_int "legacy lossy corpus has no failures" 0
    (List.length legacy.F.Campaign.failed);
  check_str "legacy lossy corpus digest unchanged"
    "414d11485c99614faf7fa25524629b8a" legacy.F.Campaign.corpus_digest

(* Acceptance regression: the SAME lossy corpus, transport stripped, loses
   Termination/Validity. [assume_coherent] keeps the reliable-class oracles
   on even though the bare protocol never re-enters the paper's model; the
   horizon is recomputed for the stripped spec (its un-inflated timeout
   cascade makes the lossy horizon absurdly long in event count). *)
let test_transport_off_loses_termination () =
  let failures = ref 0 and lossy_specs = ref 0 in
  for i = 0 to 11 do
    let spec =
      F.Campaign.spec_of_iteration ~seed:42 ~gen:F.Gen.lossy_config i
    in
    if F.Spec.max_loss spec > 0.0 then begin
      incr lossy_specs;
      let stripped = { spec with F.Spec.transport = None } in
      let stripped =
        { stripped with F.Spec.horizon = F.Gen.min_horizon stripped }
      in
      let _, report =
        F.Oracle.run
          ~config:{ F.Oracle.default_config with assume_coherent = true }
          stripped
      in
      failures := !failures + List.length report.F.Oracle.failures
    end
  done;
  check_bool "corpus prefix contains lossy specs" true (!lossy_specs > 0);
  check_bool "stripping the transport breaks the oracles" true (!failures > 0)

let suite =
  [
    case "reliable delivery under 30% loss" test_reliable_under_loss;
    case "exactly-once under duplication" test_dedup_exactly_once;
    case "retry cap on a dead link" test_expiry_on_dead_link;
    case "retries-exhausted counter and trace event"
      test_retries_exhausted_accounted;
    case "scramble washes out" test_scramble_washout;
    case "transport survives Scramble event" test_transport_survives_scramble;
    case "Heal split (targeted heals)" test_heal_split;
    case "crash/recover mid-broadcast" test_crash_recover_mid_broadcast;
    case "lossy campaign (50 runs, transport on)" test_lossy_campaign;
    case "transport off loses termination" test_transport_off_loses_termination;
  ]
