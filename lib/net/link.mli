(** A first-class sending surface.

    Protocol code depends on this record instead of [Network.t] directly so
    it runs unchanged over the raw bounded-delay network or over a reliable
    transport layered on top ([Ssba_transport.Transport.link]). *)

type 'a t = {
  n : int;
  send : src:int -> dst:int -> 'a -> unit;
  broadcast : src:int -> 'a -> unit;
  set_handler : int -> ('a Msg.t -> unit) -> unit;
  clear_handler : int -> unit;
}

val size : 'a t -> int
val send : 'a t -> src:int -> dst:int -> 'a -> unit
val broadcast : 'a t -> src:int -> 'a -> unit
val set_handler : 'a t -> int -> ('a Msg.t -> unit) -> unit
val clear_handler : 'a t -> int -> unit
