(** Monomorphic (at, seq)-keyed event queue, the engine's hot path.

    A binary min-heap over parallel arrays: a flat float array of times, an
    int array of sequence numbers, the scheduled closures and fan-out batch
    descriptors. Compared to the generic {!Heap}, all comparisons are raw
    float/int operations on unboxed keys and no per-event or per-query
    allocation happens.

    Ordering is (at, seq) lexicographic: events at equal [at] pop in
    ascending [seq] order, which is what run determinism hangs on — the
    engine assigns [seq] monotonically, so ties resolve in scheduling
    order. Fan-out batches preserve that order exactly: each sub-event
    carries the very (at, seq) key the per-entry scheme would have given it,
    and the batch entry always sits in the heap keyed at its next unfired
    sub-event. *)

type t

(** A fan-out descriptor: one heap entry expanding to [b_count] sub-events.

    Contract for {!push_batch}: slots [0 .. b_count-1] of [b_ats]/[b_seqs]
    filled, sorted ascending by (at, seq) (strict — seqs are unique),
    [b_next = 0], and [b_fire] set. The queue calls [b_fire i] once per
    sub-event [i], in sorted order interleaved with the rest of the heap
    exactly as [b_count] separate entries would have been. After the last
    sub-event fires the queue drops its reference ([b_fire] observes
    [b_next = b_count] then), so the owner may recycle the record. *)
type batch = {
  mutable b_ats : float array;
  mutable b_seqs : int array;
  mutable b_count : int;
  mutable b_next : int;
  mutable b_fire : int -> unit;
}

(** Fresh descriptor with [b_count = 0], reusable across {!push_batch}
    cycles. Key arrays start at [capacity] slots (default 8). *)
val make_batch : ?capacity:int -> unit -> batch

(** Current length of the descriptor's key arrays. *)
val batch_capacity : batch -> int

(** [ensure_batch_capacity b n] grows the key arrays to at least [n] slots,
    preserving filled prefixes. *)
val ensure_batch_capacity : batch -> int -> unit

(** [create ?capacity ()] builds an empty queue. The backing arrays grow by
    doubling and are retained across {!clear}. *)
val create : ?capacity:int -> unit -> t

(** Pending sub-events: plain events count 1, an armed batch counts its
    unfired sub-events. *)
val size : t -> int

(** Heap entries (a whole batch counts 1) — the sift depth driver; exposed so
    tests can assert batching actually shrinks the heap. *)
val entries : t -> int

val is_empty : t -> bool

(** Length of the backing arrays (grows with the queue). *)
val capacity : t -> int

(** [push t ~at ~seq run] schedules [run] under key (at, seq). *)
val push : t -> at:float -> seq:int -> (unit -> unit) -> unit

(** [push_batch t b] arms descriptor [b] (see {!type-batch} for the fill
    contract). Raises [Invalid_argument] on an empty, in-flight, overflowing
    or unsorted descriptor. *)
val push_batch : t -> batch -> unit

(** Time key of the minimum pending sub-event. Raises [Invalid_argument]
    when empty. *)
val min_at : t -> float

(** Remove the minimum sub-event and return its closure (without running
    it). For a batch sub-event the structural advance happens now and the
    returned closure merely fires it — allocating one closure; the engine's
    hot loop uses {!pop_invoke} instead. Raises [Invalid_argument] when
    empty. *)
val pop_run : t -> unit -> unit

(** Remove the minimum sub-event and run it, allocation-free. Raises
    [Invalid_argument] when empty. *)
val pop_invoke : t -> unit

(** Drop all events (closure and batch slots are released); capacity is
    retained, including under armed fan-out descriptors. *)
val clear : t -> unit
