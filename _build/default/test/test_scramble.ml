(* Tests for transient-fault injection and recovery (self-stabilization). *)

open Helpers
open Ssba_core
module H = Ssba_harness
module Engine = Ssba_sim.Engine

let values = [ "x"; "y"; "z" ]

let test_scramble_then_quiet_returns_to_idle () =
  (* scrambled nodes, no further input: after Delta_stb every agreement
     instance must be Idle again and no node may be deciding anything *)
  let c = Cluster.make ~n:7 ~seed:21 () in
  let rng = Ssba_sim.Rng.create 99 in
  Array.iter
    (fun node_opt ->
      match node_opt with
      | Some node -> Node.scramble rng ~values node
      | None -> ())
    c.Cluster.nodes;
  Cluster.run ~until:c.Cluster.params.Params.delta_stb c;
  Array.iter
    (fun node_opt ->
      match node_opt with
      | Some node ->
          for g = 0 to 6 do
            check_bool "instance idle after stabilization" true
              (Ss_byz_agree.state (Node.instance node g) = Ss_byz_agree.Idle)
          done
      | None -> ())
    c.Cluster.nodes;
  (* whatever garbage produced, no *decision* may appear without a real
     initiation: scrambles can abort instances but a Decided value would mean
     forged quorums survived *)
  List.iter
    (fun (r : Types.return_info) ->
      check_bool "scramble residue only aborts" true (r.Types.outcome = Types.Aborted))
    (Cluster.returns c)

let test_agreement_after_stabilization () =
  List.iter
    (fun seed ->
      let params = Params.default 7 in
      let sc =
        H.Scenario.default ~name:"scr" ~seed
          ~events:[ H.Scenario.Scramble { at = 0.0; values; net_garbage = 150 } ]
          ~proposals:[ { g = seed mod 7; v = "go"; at = params.Params.delta_stb } ]
          ~horizon:(params.Params.delta_stb +. (3.0 *. params.Params.delta_agr))
          params
      in
      let res = H.Runner.run sc in
      check_bool "pairwise agreement holds after stabilization" true
        (H.Checks.pairwise_agreement ~after:params.Params.delta_stb res = []);
      let post =
        List.filter
          (fun (e : H.Metrics.episode) ->
            H.Metrics.first_return e >= params.Params.delta_stb)
          (H.Metrics.episodes res)
      in
      check_bool "post-stabilization proposal decides unanimously" true
        (List.exists
           (fun e -> H.Checks.validity ~correct:res.H.Runner.correct ~v:"go" e)
           post))
    [ 101; 102; 103; 104; 105 ]

let test_scramble_during_agreement () =
  (* the harshest ordering: scramble in the middle of a running agreement.
     Whatever happens to that agreement, a later one must work, and no
     pairwise violation may appear after stabilization. *)
  let params = Params.default 7 in
  let t_scramble = 0.052 (* mid-flight of the first agreement *) in
  let sc =
    H.Scenario.default ~name:"mid" ~seed:7
      ~events:[ H.Scenario.Scramble { at = t_scramble; values; net_garbage = 100 } ]
      ~proposals:
        [
          { g = 0; v = "early"; at = 0.05 };
          { g = 1; v = "late"; at = t_scramble +. params.Params.delta_stb };
        ]
      ~horizon:(t_scramble +. params.Params.delta_stb +. (3.0 *. params.Params.delta_agr))
      params
  in
  let res = H.Runner.run sc in
  let post =
    List.filter
      (fun (e : H.Metrics.episode) ->
        H.Metrics.first_return e >= t_scramble +. params.Params.delta_stb)
      (H.Metrics.episodes res)
  in
  check_bool "the late agreement decides" true
    (List.exists
       (fun e -> H.Checks.validity ~correct:res.H.Runner.correct ~v:"late" e)
       post)

let test_garbage_alone_never_decides () =
  (* pure network garbage against clean nodes: quorums cannot be forged *)
  List.iter
    (fun seed ->
      let params = Params.default 7 in
      let sc =
        H.Scenario.default ~name:"garbage" ~seed
          ~events:[ H.Scenario.Scramble { at = 0.0; values; net_garbage = 400 } ]
          ~horizon:1.0 params
      in
      (* note: Scramble also corrupts node state; to isolate network garbage
         we accept either, but no *decision* may come out of thin air after
         the stabilization period *)
      let res = H.Runner.run sc in
      List.iter
        (fun (r : Types.return_info) ->
          if r.Types.rt_ret > params.Params.delta_stb then
            check_bool "no decision from garbage" true
              (r.Types.outcome = Types.Aborted))
        res.H.Runner.returns)
    [ 31; 32; 33 ]

let test_node_scramble_is_deterministic () =
  let run () =
    let c = Cluster.make ~n:7 ~seed:5 () in
    let rng = Ssba_sim.Rng.create 1 in
    Array.iter
      (function Some node -> Node.scramble rng ~values node | None -> ())
      c.Cluster.nodes;
    Engine.schedule c.Cluster.engine ~at:(c.Cluster.params.Params.delta_stb +. 0.01)
      (fun () -> ignore (Node.propose (Cluster.node c 0) "v"));
    Cluster.run ~until:(c.Cluster.params.Params.delta_stb +. 1.0) c;
    List.map
      (fun (r : Types.return_info) -> (r.Types.node, r.Types.g, r.Types.outcome, r.Types.rt_ret))
      (Cluster.returns c)
  in
  check_bool "identical scrambled runs" true (run () = run ())

let suite =
  [
    case "scramble then quiet -> idle" test_scramble_then_quiet_returns_to_idle;
    case "agreement after stabilization" test_agreement_after_stabilization;
    case "scramble mid-agreement" test_scramble_during_agreement;
    case "garbage alone never decides" test_garbage_alone_never_decides;
    case "scrambled runs deterministic" test_node_scramble_is_deterministic;
  ]
