examples/interactive_consistency.mli:
