(* Shared test utilities.

   [Fake] provides a synthetic execution context for unit-testing the
   protocol state machines in isolation: a controllable local clock, a log of
   sent messages, and a timer queue fired by [advance]. [Cluster] builds a
   complete small simulation for integration tests. *)

open Ssba_core

module Fake = struct
  type t = {
    mutable now : float;
    mutable sent : (float * Types.message) list;  (* newest first *)
    mutable timers : (float * (unit -> unit)) list;
    mutable traced : Ssba_sim.Trace.event list;  (* newest first *)
    params : Params.t;
  }

  let make ?(self = 0) ?(now = 100.0) params =
    let t = { now; sent = []; timers = []; traced = []; params } in
    let ctx =
      {
        Types.params;
        self;
        local_time = (fun () -> t.now);
        send_all = (fun m -> t.sent <- (t.now, m) :: t.sent);
        after_local =
          (fun dl f ->
            if dl < 0.0 then invalid_arg "fake after_local: negative";
            t.timers <- (t.now +. dl, f) :: t.timers);
        trace = (fun ev -> t.traced <- ev :: t.traced);
      }
    in
    (t, ctx)

  (* Advance local time by [dl], firing due timers in order. *)
  let advance t dl =
    let target = t.now +. dl in
    let rec loop () =
      let due =
        List.filter (fun (at, _) -> at <= target) t.timers
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      match due with
      | [] -> ()
      | (at, f) :: _ ->
          t.timers <- List.filter (fun (at', f') -> not (at' == at && f' == f)) t.timers;
          t.now <- at;
          f ();
          loop ()
    in
    loop ();
    t.now <- target

  let sent_kinds t = List.rev_map (fun (_, m) -> Types.kind_of_message m) t.sent
  let clear_sent t = t.sent <- []

  let count_kind t kind =
    List.length (List.filter (fun k -> String.equal k kind) (sent_kinds t))
end

module Cluster = struct
  type t = {
    params : Params.t;
    engine : Ssba_sim.Engine.t;
    net : Types.message Ssba_net.Network.t;
    nodes : Node.t option array;  (* [None] for skipped (non-correct) slots *)
    clocks : Ssba_sim.Clock.t array;
    returns : Types.return_info list ref;
  }

  (* [make ~n ()] builds n correct nodes over a uniform-delay network.
     [skip] ids get no node (their slots stay silent or are taken over by
     adversaries installed afterwards). *)
  let make ?(seed = 42) ?(skip = []) ?(delay = `Uniform) ?(clock = `Drifting) ~n ()
      =
    let params = Params.default n in
    let engine = Ssba_sim.Engine.create () in
    let rng = Ssba_sim.Rng.create seed in
    let delay =
      match delay with
      | `Uniform ->
          Ssba_net.Delay.uniform ~lo:(0.05 *. params.Params.delta)
            ~hi:params.Params.delta
      | `Fixed x -> Ssba_net.Delay.fixed x
    in
    let net =
      Ssba_net.Network.create ~engine ~n ~delay ~rng:(Ssba_sim.Rng.split rng)
        ~kind_of:Types.kind_of_message ()
    in
    let clocks =
      Array.init n (fun _ ->
          match clock with
          | `Perfect -> Ssba_sim.Clock.perfect
          | `Drifting ->
              Ssba_sim.Clock.random (Ssba_sim.Rng.split rng)
                ~rho:params.Params.rho ~max_offset:0.2)
    in
    let returns = ref [] in
    let nodes =
      Array.init n (fun id ->
          if List.mem id skip then None
          else begin
            let node =
              Node.create ~id ~params ~clock:clocks.(id) ~engine ~net ()
            in
            Node.subscribe node (fun r -> returns := r :: !returns);
            Some node
          end)
    in
    { params; engine; net; nodes; clocks; returns }

  let node t id =
    match t.nodes.(id) with
    | Some n -> n
    | None -> Alcotest.failf "cluster: node %d was skipped" id

  let run ?(until = 2.0) t = ignore (Ssba_sim.Engine.run ~until t.engine)

  let returns t =
    List.sort
      (fun (a : Types.return_info) b -> compare a.Types.rt_ret b.Types.rt_ret)
      !(t.returns)

  let decided_values t =
    List.filter_map
      (fun (r : Types.return_info) ->
        match r.Types.outcome with Types.Decided v -> Some v | Types.Aborted -> None)
      (returns t)
end

(* QCheck generators and shrinkers for the scenario building blocks, used by
   the fuzz property suite. Events shrink toward earlier, milder instances;
   strategies shrink along Catalog.simplify toward Silent. *)
module Q = struct
  module G = QCheck.Gen
  module S = Ssba_harness.Scenario
  module C = Ssba_adversary.Catalog

  let values = [ "alpha"; "beta"; "gamma" ]

  let gen_event ~n ~horizon : S.event G.t =
    let open G in
    let at = float_range 0.0 horizon in
    let node = int_bound (n - 1) in
    oneof
      [
        map2 (fun node at -> S.Crash { node; at }) node at;
        map2 (fun node at -> S.Recover { node; at }) node at;
        map2
          (fun at net_garbage -> S.Scramble { at; values; net_garbage })
          at (int_bound 200);
        map2 (fun at p -> S.Drop_prob { at; p }) at (float_range 0.0 1.0);
        map2
          (fun at k ->
            let ids = List.init n Fun.id in
            let ga = List.filteri (fun i _ -> i <= k) ids in
            let gb = List.filteri (fun i _ -> i > k) ids in
            S.Partition { at; blocked = (ga, gb) })
          at
          (int_bound (n - 2));
        map (fun at -> S.Heal { at }) at;
        map (fun at -> S.Heal_partition { at }) at;
        map (fun at -> S.Heal_drop { at }) at;
        map2 (fun at p -> S.Loss { at; p }) at (float_range 0.0 1.0);
        map2 (fun at p -> S.Duplicate { at; p }) at (float_range 0.0 1.0);
        map3
          (fun at prob extra -> S.Reorder { at; prob; extra })
          at (float_range 0.0 1.0) (float_range 0.0 0.01);
        map2
          (fun at factor -> S.Delay_surge { at; factor })
          at (float_range 1.0 8.0);
        map (fun at -> S.Delay_restore { at }) at;
        map2 (fun node at -> S.Reform { node; at }) node at;
      ]

  (* Simpler variants of one event: pull it to time 0, soften its knob. *)
  let shrink_event (e : S.event) yield =
    match e with
    | S.Crash { node; at } ->
        if at > 0.0 then yield (S.Crash { node; at = 0.0 })
    | S.Recover { node; at } ->
        if at > 0.0 then yield (S.Recover { node; at = 0.0 })
    | S.Scramble { at; values; net_garbage } ->
        if net_garbage > 0 then
          yield (S.Scramble { at; values; net_garbage = net_garbage / 2 });
        if values <> [] then
          yield (S.Scramble { at; values = [ List.hd values ]; net_garbage })
    | S.Drop_prob { at; p } ->
        if p > 0.0 then yield (S.Drop_prob { at; p = p /. 2.0 })
    | S.Partition { at; _ } -> yield (S.Heal { at })
    | S.Loss { at; p } -> if p > 0.0 then yield (S.Loss { at; p = p /. 2.0 })
    | S.Duplicate { at; p } ->
        if p > 0.0 then yield (S.Duplicate { at; p = p /. 2.0 })
    | S.Reorder { at; prob; extra } ->
        if prob > 0.0 then yield (S.Reorder { at; prob = prob /. 2.0; extra });
        if extra > 0.0 then yield (S.Reorder { at; prob; extra = extra /. 2.0 })
    | S.Delay_surge { at; factor } ->
        (* soften toward factor 1 (a surge that changes nothing) *)
        if factor > 1.0 then
          yield (S.Delay_surge { at; factor = 1.0 +. ((factor -. 1.0) /. 2.0) })
    | S.Reform { node; at } ->
        if at > 0.0 then yield (S.Reform { node; at = 0.0 })
    | S.Heal _ | S.Heal_partition _ | S.Heal_drop _ | S.Delay_restore _ -> ()

  let arb_event ~n ~horizon =
    QCheck.make ~shrink:shrink_event
      ~print:(fun e ->
        Ssba_sim.Json.to_string (Ssba_fuzz.Spec.to_json
          {
            Ssba_fuzz.Spec.name = "event";
            seed = 0;
            n;
            f = Ssba_core.Params.max_faults n;
            delay = Ssba_fuzz.Spec.Fixed 0.001;
            clocks = S.Perfect;
            cast = [];
            proposals = [];
            events = [ e ];
            transport = None;
            horizon;
            session_capacity = None;
            blackout = true;
            r_slack = Ssba_core.Params.default_r_slack;
            service = None;
          }))
      (gen_event ~n ~horizon)

  let gen_strategy ~n : C.t G.t =
    G.map
      (fun seed ->
        let rng = Ssba_sim.Rng.create seed in
        C.generate rng ~values ~at_lo:0.0 ~at_hi:1.0 ~n)
      G.(int_bound 0x3FFFFFFF)

  let arb_strategy ~n =
    QCheck.make
      ~shrink:(fun c yield -> List.iter yield (C.simplify c))
      ~print:(Fmt.to_to_string C.pp) (gen_strategy ~n)

  (* Roles wrap strategies in behaviours (closures) and so print/shrink via
     the catalog entry they came from. *)
  let gen_role ~n ~d : S.role G.t =
    G.oneof
      [
        G.return S.Correct;
        G.map (fun c -> S.Byzantine (C.to_behavior ~d c)) (gen_strategy ~n);
      ]

  let gen_clocks ~rho : S.clocks G.t =
    G.oneof
      [
        G.return S.Perfect;
        G.map2
          (fun rho max_offset -> S.Drifting { rho; max_offset })
          (G.float_range 0.0 rho) (G.float_range 0.0 0.2);
      ]

  let gen_delay ~delta : Ssba_fuzz.Spec.delay G.t =
    let open G in
    oneof
      [
        map (fun x -> Ssba_fuzz.Spec.Fixed x) (float_range 0.0 delta);
        map2
          (fun lo w -> Ssba_fuzz.Spec.Uniform { lo; hi = lo +. w })
          (float_range 0.0 delta) (float_range 0.0 delta);
        map3
          (fun fast w slow_prob ->
            Ssba_fuzz.Spec.Bimodal { fast; slow = fast +. w; slow_prob })
          (float_range 0.0 delta) (float_range 0.0 delta) (float_range 0.0 1.0);
      ]

  (* A whole generated spec, addressed by generator seed: the property suite
     checks Gen.spec's output invariants over these. *)
  let gen_spec ?(config = Ssba_fuzz.Gen.default_config) () :
      Ssba_fuzz.Spec.t G.t =
    G.map
      (fun seed -> Ssba_fuzz.Gen.spec (Ssba_sim.Rng.create seed) config)
      G.(int_bound 0x3FFFFFFF)

  let arb_spec ?config () =
    QCheck.make
      ~print:(fun s -> Ssba_sim.Json.to_string (Ssba_fuzz.Spec.to_json s))
      (gen_spec ?config ())
end

(* Alcotest shorthands. *)
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

let check_float ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps then
    Alcotest.failf "%s: expected %.9f, got %.9f" msg expected actual

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

(* Deterministic qcheck wrapper: a fixed RNG per property so `dune runtest`
   is reproducible run to run (qcheck otherwise self-seeds). *)
let qcheck t = QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0xBA5E; 42 |]) t
