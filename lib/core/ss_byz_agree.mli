(** The ss-Byz-Agree protocol (paper Figure 1, §3).

    One instance per (node, General), composing {!Initiator_accept} and
    {!Msgd_broadcast}. Once the system is stable and [n > 3f] it satisfies
    Agreement, Validity, Termination and the Timeliness properties. *)

open Types

type state =
  | Idle
  | Running  (** the anchor [tau_g] is set; blocks R–U are live *)
  | Returned of outcome * float  (** stopped; resets 3d later *)

(** Fine-grained protocol events for external monitors (all times local). *)
type observation =
  | Obs_iaccept of { v : value; tau_g : float; tau : float }
      (** the Initiator-Accept primitive issued an I-accept *)
  | Obs_mb_accept of {
      p : node_id;
      v : value;
      k : int;
      tau : float;
      tau_g : float;  (** this node's anchor at the accept, for phase math *)
    }
      (** msgd-broadcast accepted the triplet [(p, v, k)] *)
  | Obs_broadcast of { v : value; k : int; tau : float }
      (** this node broadcast [(self, v, k)] while deciding (R3/S3) *)
  | Obs_broadcaster of { p : node_id; tau : float }
      (** [p] was first identified as a broadcaster (Y1, [TPS-4]) *)

type t

(** [create ?blackout ?guard ~ctx ~g ()] — [guard] is the persistent
    per-General separation state threaded through to {!Initiator_accept};
    the node supplies one that outlives this session. [?blackout] (default
    [true]) is the {!Initiator_accept} re-initiation blackout knob. *)
val create :
  ?blackout:bool -> ?guard:Separation.t -> ctx:ctx -> g:general -> unit -> t

(** Callback fired when the instance stops (decides or aborts). *)
val set_on_return : t -> (outcome -> tau_g:float -> tau_ret:float -> unit) -> unit

(** Install an observation monitor (purely observational). *)
val set_observer : t -> (observation -> unit) -> unit

(** Block Q1: invoke the protocol upon the General's [(Initiator, G, m)]. *)
val invoke : t -> v:value -> unit

(** Dispatch any protocol message for this General. [Initiator] payloads are
    honoured only when [sender = G] (authenticated channels). *)
val handle_message : t -> sender:node_id -> message -> unit

(** Periodic cleanup (run every [d]): primitive decay plus the
    self-stabilization repairs for states only a transient fault produces. *)
val cleanup : t -> unit

val state : t -> state
val anchor : t -> float option

(** Indistinguishable from a freshly created instance (the separation guard
    is held elsewhere) — eligible for session garbage collection. *)
val quiescent : t -> bool
val general : t -> general
val initiator_accept : t -> Initiator_accept.t
val msgd_broadcast : t -> Msgd_broadcast.t

(** Append a canonical state fingerprint of the instance and both
    primitives (the shared separation guard and the timer-invalidations
    [epoch] counter excluded) — the model checker's visited-set encoding. *)
val fingerprint : Buffer.t -> t -> unit

(** Transient-fault injection: corrupt the instance and both primitives. *)
val scramble : Ssba_sim.Rng.t -> values:value list -> t -> unit
