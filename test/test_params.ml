(* Tests for the protocol-constant cascade (paper §3). *)

open Helpers
module P = Ssba_core.Params

let test_d_formula () =
  let p = P.make ~n:7 ~f:2 ~delta:0.001 ~pi:0.0001 ~rho:0.0001 in
  check_float "d = (delta + pi)(1 + rho)" (0.0011 *. 1.0001) p.P.d

let test_cascade () =
  let p = P.make ~n:10 ~f:3 ~delta:1.0 ~pi:0.0 ~rho:0.0 in
  (* with delta = 1, pi = rho = 0 we get d = 1, so every constant is its
     coefficient *)
  check_float "d" 1.0 p.P.d;
  check_float "tau_skew = 6d" 6.0 p.P.tau_skew;
  check_float "Phi = 8d" 8.0 p.P.phi;
  check_float "Dagr = (2f+1)Phi = 56d" 56.0 p.P.delta_agr;
  check_float "D0 = 13d" 13.0 p.P.delta_0;
  check_float "Drmv = Dagr + D0 = 69d" 69.0 p.P.delta_rmv;
  check_float "Dv = 15d + 2 Drmv = 153d" 153.0 p.P.delta_v;
  check_float "Dnode = Dv + Dagr = 209d" 209.0 p.P.delta_node;
  check_float "Dreset = 20d + 4 Drmv = 296d" 296.0 p.P.delta_reset;
  check_float "Dstb = 2 Dreset = 592d" 592.0 p.P.delta_stb

let test_max_faults () =
  check_int "n=4" 1 (P.max_faults 4);
  check_int "n=6" 1 (P.max_faults 6);
  check_int "n=7" 2 (P.max_faults 7);
  check_int "n=10" 3 (P.max_faults 10);
  check_int "n=31" 10 (P.max_faults 31);
  check_int "n=1" 0 (P.max_faults 1)

let test_quorums () =
  let p = P.default 10 in
  check_int "quorum n - f" 7 (P.quorum p);
  check_int "weak quorum n - 2f" 4 (P.weak_quorum p);
  (* two strong quorums intersect in > f nodes; a weak quorum holds at least
     one correct node — the standard n > 3f facts the proofs rest on *)
  check_bool "quorum overlap > f" true ((2 * P.quorum p) - p.P.n > p.P.f);
  check_bool "weak quorum has a correct node" true (P.weak_quorum p > p.P.f)

let test_validate () =
  check_bool "n > 3f ok" true (P.validate (P.make ~n:7 ~f:2 ~delta:1.0 ~pi:0.0 ~rho:0.0) = Ok ());
  (match P.validate (P.make ~n:6 ~f:2 ~delta:1.0 ~pi:0.0 ~rho:0.0) with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "n = 3f must be rejected");
  match P.validate (P.default 4) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_default_f () =
  let p = P.default 13 in
  check_int "default f = max_faults" 4 p.P.f;
  let p = P.default ~f:1 13 in
  check_int "explicit f respected" 1 p.P.f

let test_bad_inputs () =
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () -> P.make ~n:0 ~f:0 ~delta:1.0 ~pi:0.0 ~rho:0.0);
  expect_invalid (fun () -> P.make ~n:4 ~f:(-1) ~delta:1.0 ~pi:0.0 ~rho:0.0);
  expect_invalid (fun () -> P.make ~n:4 ~f:1 ~delta:0.0 ~pi:0.0 ~rho:0.0);
  expect_invalid (fun () -> P.make ~n:4 ~f:1 ~delta:1.0 ~pi:(-0.1) ~rho:0.0);
  expect_invalid (fun () -> P.make ~n:4 ~f:1 ~delta:1.0 ~pi:0.0 ~rho:1.0)

(* Golden test for the printed cascade. Regression: [pp] used to skip
   delta_node entirely, silently misreporting the parameter cascade. With
   d = 1 every constant is its exact integer coefficient, so the output is
   byte-stable under %g. *)
let test_pp_golden () =
  let p = P.make ~n:10 ~f:3 ~delta:1.0 ~pi:0.0 ~rho:0.0 in
  check_str "pp prints the full cascade"
    "n=10 f=3 delta=1 pi=0 rho=0 d=1 Phi=8 Dagr=56 D0=13 Drmv=69 Dv=153 \
     Dnode=209 Dreset=296 Dstb=592 R=widen"
    (Fmt.str "%a" P.pp p)

(* qcheck: the ordering relations between the constants hold for all valid
   parameters — these orderings are what the proofs' decay arguments use. *)
let prop_orderings =
  QCheck.Test.make ~name:"constant cascade orderings" ~count:300
    QCheck.(triple (int_range 4 100) (float_range 0.0001 10.0) (float_range 0.0 0.5))
    (fun (n, delta, rho) ->
      let p = P.make ~n ~f:(P.max_faults n) ~delta ~pi:(0.1 *. delta) ~rho in
      p.P.d > 0.0
      && p.P.phi = p.P.tau_skew +. (2.0 *. p.P.d)
      && p.P.delta_agr >= p.P.phi
      && p.P.delta_rmv > p.P.delta_agr
      && p.P.delta_v > 2.0 *. p.P.delta_rmv
      && p.P.delta_reset > 4.0 *. p.P.delta_rmv
      && p.P.delta_stb = 2.0 *. p.P.delta_reset
      && p.P.delta_node > p.P.delta_v)

let suite =
  [
    case "d formula" test_d_formula;
    case "constant cascade" test_cascade;
    case "max_faults" test_max_faults;
    case "quorums" test_quorums;
    case "validate" test_validate;
    case "default f" test_default_f;
    case "bad inputs" test_bad_inputs;
    case "pp golden" test_pp_golden;
    Helpers.qcheck prop_orderings;
  ]
