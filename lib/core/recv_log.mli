(** Timestamped per-sender receive log with sliding-window queries.

    Stores the most recent arrival local-time per sender for one message
    class, supporting the primitives' "[>= k] distinct senders within
    [\[tau - alpha, tau\]]" conditions and the paper's decay rules.

    Queries run on every message arrival (the broadcast hot path), so the
    log incrementally maintains a sorted-by-time index alongside the
    per-sender table: {!count}, {!latest} are O(1), {!count_in_window} and
    {!shortest_window} are allocation-free O(log m) binary searches, where
    m <= n is the number of distinct senders logged. *)

type t

val create : unit -> t

(** Record an arrival; keeps the per-sender maximum, so replayed older
    messages never rewind an entry. *)
val note : t -> sender:int -> at:float -> unit

(** Number of distinct senders currently logged. *)
val count : t -> int

(** Has this sender an entry? O(1). *)
val mem : t -> sender:int -> bool

(** Distinct senders, sorted. *)
val senders : t -> int list

(** Senders whose latest arrival lies in [\[now - width, now\]]. *)
val count_in_window : t -> now:float -> width:float -> int

(** Smallest [alpha] such that at least [count] distinct senders arrived in
    [\[now - alpha, now\]], or [None] if there are fewer than [count]
    (non-future) arrivals. *)
val shortest_window : t -> now:float -> count:int -> float option

(** Most recent arrival time, if any. *)
val latest : t -> float option

(** Drop entries that arrived before [horizon]. *)
val decay : t -> horizon:float -> unit

(** Drop entries with future timestamps (transient-fault residue). *)
val sanitize : t -> now:float -> unit

(** Iterate live entries in ascending (time, sender) order — a canonical
    order independent of arrival interleaving. The model checker's state
    fingerprints rely on this canonicity. *)
val iter_entries : t -> (sender:int -> at:float -> unit) -> unit

val clear : t -> unit
val is_empty : t -> bool

(** Fault injection only: plant an arbitrary entry. *)
val corrupt : t -> sender:int -> at:float -> unit
