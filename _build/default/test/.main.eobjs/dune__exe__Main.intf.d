test/main.mli:
