(* The msgd-broadcast primitive (paper Figure 3, §5).

   A message-driven Reliable Broadcast in the style of Toueg, Perry &
   Srikanth's authenticated-broadcast simulation. One instance runs per
   (node, agreement instance); within it, state is kept per broadcast triplet
   (p, m, k) — broadcaster, value, round tag.

   The crucial difference from the original synchronous primitive: round
   deadlines [tau_g + (2k + c) * Phi] are upper bounds only. Conditions are
   re-evaluated on every arrival, so when the network is fast the primitive
   completes in a few d rather than a few Phi (experiment E3 measures this).

   Blocks, transcribed from the figure (executed only once the anchor tau_g
   is defined; messages are logged regardless and re-evaluated when the
   anchor appears):
     V  — the broadcaster p sends (init, p, m, k) to all;
     W  — by tau_g + 2k*Phi: init received from p itself => send echo;
     X  — by tau_g + (2k+1)*Phi: n-2f echoes => send init'; n-f => accept;
     Y  — by tau_g + (2k+2)*Phi: n-2f init' => p joins broadcasters;
          n-f init' => send echo';
     Z  — untimed: n-2f echo' => relay echo'; n-f echo' => accept (once);
     cleanup — decay anything older than (2f+3)*Phi. *)

open Types

type trip = {
  mutable init_from_p : float option;  (* arrival of (init,...) actually from p *)
  echo : Recv_log.t;
  init2 : Recv_log.t;
  echo2 : Recv_log.t;
  mutable sent_echo : bool;
  mutable sent_init2 : bool;
  mutable sent_echo2 : bool;
  mutable accepted_at : float option;
  mutable last_activity : float;
}

type t = {
  g : general;
  ctx : ctx;
  trips : (node_id * value * int, trip) Hashtbl.t;
  broadcasters : Recv_log.t;  (* node -> local time added; same decay rules *)
  mutable tau_g : float option;
  mutable on_accept : p:node_id -> v:value -> k:int -> unit;
  mutable on_broadcaster : node_id -> unit;
  (* One-entry lookup cache: during an agreement almost every message hits
     the same (p, v, k) triplet, so caching the last key dodges the tuple
     allocation and polymorphic hash per arrival. Invalidated wherever trips
     are removed. *)
  mutable cached : ((node_id * value * int) * trip) option;
}

let create ~ctx ~g =
  {
    g;
    ctx;
    trips = Hashtbl.create 8;
    broadcasters = Recv_log.create ();
    tau_g = None;
    on_accept = (fun ~p:_ ~v:_ ~k:_ -> ());
    on_broadcaster = (fun _ -> ());
    cached = None;
  }

let set_on_accept t f = t.on_accept <- f
let set_on_broadcaster t f = t.on_broadcaster <- f

let now t = t.ctx.local_time ()
let prm t = t.ctx.params

let trip_of t key =
  match Hashtbl.find_opt t.trips key with
  | Some tr -> tr
  | None ->
      let tr =
        {
          init_from_p = None;
          echo = Recv_log.create ();
          init2 = Recv_log.create ();
          echo2 = Recv_log.create ();
          sent_echo = false;
          sent_init2 = false;
          sent_echo2 = false;
          accepted_at = None;
          last_activity = now t;
        }
      in
      Hashtbl.replace t.trips key tr;
      tr

(* Cached variant for the arrival path: [p]/[v]/[k] arrive unpacked, so a
   cache hit allocates neither the key tuple nor an option. *)
let trip_of_parts t ~p ~v ~k =
  match t.cached with
  | Some (((cp, cv, ck) as key), tr)
    when cp = p && ck = k && (cv == v || String.equal cv v) ->
      (key, tr)
  | Some _ | None ->
      let key = (p, v, k) in
      let tr = trip_of t key in
      t.cached <- Some (key, tr);
      (key, tr)

let broadcaster_count t = Recv_log.count t.broadcasters
let broadcasters t = Recv_log.senders t.broadcasters

let send t kind ~p ~v ~k = t.ctx.send_all (Mb { kind; p; g = t.g; v; k })

let do_accept t ~tau (p, v, k) tr =
  tr.accepted_at <- Some tau;
  t.ctx.trace (Ssba_sim.Trace.Mb_accept { g = t.g; p; v; k });
  t.on_accept ~p ~v ~k

(* Evaluate blocks W–Z for one triplet; no-op until the anchor is known.
   [tau] is the caller's local time — threaded in so the arrival path reads
   the clock exactly once. *)
let eval t ~tau ((p, v, k) as key) tr =
  match t.tau_g with
  | None -> ()
  | Some tg ->
      let pm = prm t in
      let phi = pm.Params.phi in
      let n_f = Params.quorum pm in
      let n_2f = Params.weak_quorum pm in
      (* Deadlines tau_g + (2k + c) * Phi for c = 0, 1, 2. Each keeps the
         exact arithmetic shape [tg +. (float (2k + c) *. phi)] — the
         comparisons below sit on digest-pinned boundaries. *)
      let k2 = 2 * k in
      let deadline0 = tg +. (float_of_int k2 *. phi) in
      let deadline1 = tg +. (float_of_int (k2 + 1) *. phi) in
      let deadline2 = tg +. (float_of_int (k2 + 2) *. phi) in
      (* W *)
      if tau <= deadline0 && tr.init_from_p <> None && not tr.sent_echo then begin
        tr.sent_echo <- true;
        send t Echo ~p ~v ~k
      end;
      (* X *)
      if tau <= deadline1 then begin
        if Recv_log.count tr.echo >= n_2f && not tr.sent_init2 then begin
          tr.sent_init2 <- true;
          send t Init2 ~p ~v ~k
        end;
        if Recv_log.count tr.echo >= n_f && tr.accepted_at = None then
          do_accept t ~tau key tr
      end;
      (* Y *)
      if tau <= deadline2 then begin
        if Recv_log.count tr.init2 >= n_2f && not (Recv_log.mem t.broadcasters ~sender:p)
        then begin
          Recv_log.note t.broadcasters ~sender:p ~at:tau;
          t.ctx.trace
            (Ssba_sim.Trace.Mb_broadcaster
               { g = t.g; p; total = broadcaster_count t });
          t.on_broadcaster p
        end;
        if Recv_log.count tr.init2 >= n_f && not tr.sent_echo2 then begin
          tr.sent_echo2 <- true;
          send t Echo2 ~p ~v ~k
        end
      end;
      (* Z *)
      if Recv_log.count tr.echo2 >= n_2f && not tr.sent_echo2 then begin
        tr.sent_echo2 <- true;
        send t Echo2 ~p ~v ~k
      end;
      if Recv_log.count tr.echo2 >= n_f && tr.accepted_at = None then
        do_accept t ~tau key tr

(* Block V: this node broadcasts (p = self). *)
let broadcast t ~v ~k = send t Init ~p:t.ctx.self ~v ~k

(* Anchor management: set on I-accept, then replay all logged triplets.

   The anchor is the session key: everything logged before [tau_g - d]
   belongs to an earlier (G, tau_g') session and is purged before the
   replay. Messages of *this* session cannot arrive earlier than the
   fastest accept (>= tau_g + 3d even under maximal anchor skew), while
   stragglers of the previous session — whose tail can outlive the
   3d-post-return reset and repopulate trips while no anchor is defined —
   are at least 2d older than any anchor a fresh initiation can establish
   (block K's last(G) guard separates initiations by 7d; the old session's
   last correct sends happen within ~4d of its accept). Without the purge,
   the untimed block Z counts those stragglers under the new anchor and
   re-accepts the previous session's value: the [IA-4]/agreement split the
   2027/133 churn repro pinned. *)
let set_anchor t tau_g =
  t.tau_g <- Some tau_g;
  let horizon = tau_g -. (prm t).Params.d in
  let doomed = ref [] in
  Hashtbl.iter
    (fun key tr ->
      Recv_log.decay tr.echo ~horizon;
      Recv_log.decay tr.init2 ~horizon;
      Recv_log.decay tr.echo2 ~horizon;
      (match tr.init_from_p with
      | Some at when at < horizon -> tr.init_from_p <- None
      | Some _ | None -> ());
      (match tr.accepted_at with
      | Some at when at < horizon -> tr.accepted_at <- None
      | Some _ | None -> ());
      if
        Recv_log.is_empty tr.echo && Recv_log.is_empty tr.init2
        && Recv_log.is_empty tr.echo2
        && tr.init_from_p = None && tr.accepted_at = None
      then doomed := key :: !doomed)
    t.trips;
  List.iter (Hashtbl.remove t.trips) !doomed;
  t.cached <- None;
  Recv_log.decay t.broadcasters ~horizon;
  t.ctx.trace (Ssba_sim.Trace.Anchor_set { g = t.g; tau_g });
  let tau = now t in
  Hashtbl.iter (fun key tr -> eval t ~tau key tr) t.trips

let anchor t = t.tau_g

let handle_message t ~sender ~kind ~p ~v ~k =
  (* Round tags outside [1, f+1] cannot be used by any correct node (blocks R
     and S only broadcast with k in that range); drop them so Byzantine spam
     cannot inflate memory. *)
  if k >= 1 && k <= (prm t).Params.f + 1 then begin
    let tau = now t in
    let key, tr = trip_of_parts t ~p ~v ~k in
    tr.last_activity <- tau;
    (match kind with
    | Init -> if sender = p && tr.init_from_p = None then tr.init_from_p <- Some tau
    | Echo -> Recv_log.note tr.echo ~sender ~at:tau
    | Init2 -> Recv_log.note tr.init2 ~sender ~at:tau
    | Echo2 -> Recv_log.note tr.echo2 ~sender ~at:tau);
    eval t ~tau key tr
  end

(* Figure 3's cleanup: decay anything older than (2f+3) * Phi. *)
let cleanup t =
  let tau = now t in
  let pm = prm t in
  let horizon = tau -. (float_of_int ((2 * pm.Params.f) + 3) *. pm.Params.phi) in
  let doomed = ref [] in
  Hashtbl.iter
    (fun key tr ->
      Recv_log.sanitize tr.echo ~now:tau;
      Recv_log.sanitize tr.init2 ~now:tau;
      Recv_log.sanitize tr.echo2 ~now:tau;
      Recv_log.decay tr.echo ~horizon;
      Recv_log.decay tr.init2 ~horizon;
      Recv_log.decay tr.echo2 ~horizon;
      (match tr.init_from_p with
      | Some at when at > tau || at < horizon -> tr.init_from_p <- None
      | Some _ | None -> ());
      (match tr.accepted_at with
      | Some at when at > tau -> tr.accepted_at <- None
      | Some _ | None -> ());
      if
        tr.last_activity < horizon || tr.last_activity > tau
      then doomed := key :: !doomed)
    t.trips;
  List.iter (Hashtbl.remove t.trips) !doomed;
  t.cached <- None;
  Recv_log.sanitize t.broadcasters ~now:tau;
  Recv_log.decay t.broadcasters ~horizon;
  match t.tau_g with
  | Some tg when tg > tau -> t.tau_g <- None  (* corrupt future anchor *)
  | Some _ | None -> ()

let reset t =
  Hashtbl.reset t.trips;
  t.cached <- None;
  Recv_log.clear t.broadcasters;
  t.tau_g <- None

(* Indistinguishable from a freshly created instance: eligible for session
   garbage collection. *)
let quiescent t =
  Hashtbl.length t.trips = 0
  && Recv_log.is_empty t.broadcasters
  && t.tau_g = None

(* Canonical state fingerprint for the model checker's visited set: trips in
   sorted key order, receive logs in their canonical entry order, floats
   printed exactly. *)
let fingerprint buf t =
  let fopt buf = function
    | None -> Buffer.add_string buf "-"
    | Some x -> Printf.bprintf buf "%h" x
  in
  let log l =
    Recv_log.iter_entries l (fun ~sender ~at ->
        Printf.bprintf buf "%d@%h," sender at)
  in
  Printf.bprintf buf "mb{g=%d;tg=%a;" t.g fopt t.tau_g;
  Buffer.add_string buf "bc=";
  log t.broadcasters;
  Buffer.add_char buf ';';
  let trips =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.trips [])
  in
  List.iter
    (fun ((p, v, k), tr) ->
      Printf.bprintf buf "t:%d/%s/%d=ip%a|e" p v k fopt tr.init_from_p;
      log tr.echo;
      Buffer.add_string buf "|i2";
      log tr.init2;
      Buffer.add_string buf "|e2";
      log tr.echo2;
      Printf.bprintf buf "|%b%b%b|a%a|la%h;" tr.sent_echo tr.sent_init2
        tr.sent_echo2 fopt tr.accepted_at tr.last_activity)
    trips;
  Buffer.add_char buf '}'

(* Transient-fault injection. *)
let scramble rng ~values t =
  let tau = now t in
  let pm = prm t in
  let n = pm.Params.n in
  let span = 3.0 *. float_of_int ((2 * pm.Params.f) + 3) *. pm.Params.phi in
  let rtime () = tau +. Ssba_sim.Rng.float_in_range rng ~lo:(-.span) ~hi:pm.Params.phi in
  let ntrips = Ssba_sim.Rng.int rng 6 in
  for _ = 1 to ntrips do
    let p = Ssba_sim.Rng.int rng n in
    let v = Ssba_sim.Rng.pick_list rng values in
    let k = 1 + Ssba_sim.Rng.int rng (pm.Params.f + 1) in
    let tr = trip_of t (p, v, k) in
    if Ssba_sim.Rng.bool rng then tr.init_from_p <- Some (rtime ());
    for _ = 1 to Ssba_sim.Rng.int rng (n + 1) do
      Recv_log.corrupt tr.echo ~sender:(Ssba_sim.Rng.int rng n) ~at:(rtime ())
    done;
    for _ = 1 to Ssba_sim.Rng.int rng (n + 1) do
      Recv_log.corrupt tr.init2 ~sender:(Ssba_sim.Rng.int rng n) ~at:(rtime ())
    done;
    for _ = 1 to Ssba_sim.Rng.int rng (n + 1) do
      Recv_log.corrupt tr.echo2 ~sender:(Ssba_sim.Rng.int rng n) ~at:(rtime ())
    done;
    tr.sent_echo <- Ssba_sim.Rng.bool rng;
    tr.sent_init2 <- Ssba_sim.Rng.bool rng;
    tr.sent_echo2 <- Ssba_sim.Rng.bool rng;
    if Ssba_sim.Rng.bool rng then tr.accepted_at <- Some (rtime ())
  done;
  for _ = 1 to Ssba_sim.Rng.int rng (pm.Params.f + 1) do
    Recv_log.corrupt t.broadcasters ~sender:(Ssba_sim.Rng.int rng n) ~at:(rtime ())
  done;
  if Ssba_sim.Rng.bool rng then t.tau_g <- Some (rtime ())
