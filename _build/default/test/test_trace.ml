(* Tests for structured traces. *)

open Helpers
module Trace = Ssba_sim.Trace

let record t ~time ~node ~kind = Trace.record t ~time ~node ~kind ~detail:""

let test_chronological () =
  let t = Trace.create () in
  record t ~time:1.0 ~node:0 ~kind:"a";
  record t ~time:2.0 ~node:1 ~kind:"b";
  let kinds = List.map (fun e -> e.Trace.kind) (Trace.to_list t) in
  check_bool "chronological order" true (kinds = [ "a"; "b" ])

let test_filter_by_node () =
  let t = Trace.create () in
  record t ~time:1.0 ~node:0 ~kind:"a";
  record t ~time:2.0 ~node:1 ~kind:"a";
  record t ~time:3.0 ~node:0 ~kind:"b";
  check_int "node filter" 2 (List.length (Trace.filter ~node:0 t));
  check_int "kind filter" 2 (List.length (Trace.filter ~kind:"a" t));
  check_int "combined filter" 1 (List.length (Trace.filter ~node:0 ~kind:"a" t))

let test_disabled () =
  let t = Trace.create ~enabled:false () in
  record t ~time:1.0 ~node:0 ~kind:"a";
  check_int "disabled drops" 0 (Trace.count t);
  Trace.enable t;
  record t ~time:2.0 ~node:0 ~kind:"b";
  check_int "enabled records" 1 (Trace.count t);
  Trace.disable t;
  record t ~time:3.0 ~node:0 ~kind:"c";
  check_int "disabled again" 1 (Trace.count t)

let test_clear () =
  let t = Trace.create () in
  record t ~time:1.0 ~node:0 ~kind:"a";
  Trace.clear t;
  check_int "cleared" 0 (Trace.count t);
  check_bool "empty list" true (Trace.to_list t = [])

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_pp () =
  let t = Trace.create () in
  Trace.record t ~time:1.5 ~node:2 ~kind:"boom" ~detail:"hello";
  Trace.record t ~time:2.0 ~node:(-1) ~kind:"sysk" ~detail:"x";
  let s = Fmt.str "%a" Trace.pp t in
  check_bool "mentions node" true (contains ~needle:"n2" s);
  check_bool "mentions kind" true (contains ~needle:"boom" s);
  check_bool "system entries tagged" true (contains ~needle:"<sys>" s)

let suite =
  [
    case "chronological" test_chronological;
    case "filters" test_filter_by_node;
    case "enable/disable" test_disabled;
    case "clear" test_clear;
    case "pretty printing" test_pp;
  ]
