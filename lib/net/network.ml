(* Bounded-delay authenticated point-to-point network (paper §2, Def. 2).

   Delivery is realized by scheduling closures on the engine. While the
   network is *correct* every send is delivered within the configured delay
   policy and the sender identity is authentic. Scenario code can make the
   network *faulty* (the incoherent period preceding stabilization, or a
   persistently lossy deployment link) by setting a drop probability,
   duplication probability, reordering, partitioning links, or injecting
   forged garbage; experiments then lift the faults and measure convergence.

   Accounting invariant, enforced by the harness on every run:

     attempts = delivered + dropped + in_flight
     where attempts = sent + duplicated

   Every message that enters the network — including forged injections and
   fault-injected duplicate copies — is counted exactly once as sent or
   duplicated, and leaves the in-flight set as exactly one of delivered (a
   handler ran) or dropped (mute/partition/random loss at send time, or no
   handler at delivery time). Counters live in the engine's metrics registry
   so exports see them under the net.* names.

   Determinism: each fault concern (loss, delay, duplication, reordering)
   owns a dedicated RNG stream split off the creation RNG, and [send] draws
   from every stream unconditionally, once per send. Toggling one fault knob
   mid-run therefore never shifts the samples another concern sees, and two
   scenarios that differ only in a fault schedule stay sample-for-sample
   comparable. *)

module Rng = Ssba_sim.Rng
module Engine = Ssba_sim.Engine
module Trace = Ssba_sim.Trace
module Metrics = Ssba_sim.Metrics

type 'a handler = 'a Msg.t -> unit

type reorder = { prob : float; extra : float }

type 'a t = {
  engine : Engine.t;
  n : int;
  loss_rng : Rng.t;
  delay_rng : Rng.t;
  dup_rng : Rng.t;
  reorder_rng : Rng.t;
  mutable delay : Delay.t;
  mutable handlers : 'a handler option array;
  mutable drop_prob : float;  (* applied only while the network is faulty-capable *)
  mutable dup_prob : float;  (* probability a successful send gets a second copy *)
  mutable reorder : reorder option;
      (* with [prob], stretch a delivery by up to [extra] beyond its drawn
         delay, letting later sends overtake it *)
  mutable blocked : (src:int -> dst:int -> bool) option;  (* partition predicate *)
  muted : (int, unit) Hashtbl.t;  (* crashed senders: sends silently dropped *)
  mutable delay_override : ('a Msg.t -> float option) option;
      (* adversary-chosen delivery delay for selected messages; the paper's
         model lets a faulty sender's messages be arbitrarily late (masked as
         part of the f faults) *)
  kind_of : ('a -> string) option;  (* classifier for per-kind statistics *)
  sent_by_kind : (string, int) Hashtbl.t;
  kind_counters : (string, Metrics.counter) Hashtbl.t;
  c_sent : Metrics.counter;
  c_delivered : Metrics.counter;
  c_dropped : Metrics.counter;
  c_duplicated : Metrics.counter;
  c_reordered : Metrics.counter;
  g_in_flight : Metrics.gauge;
  mutable in_flight : int;
}

let create ?(drop_prob = 0.0) ?(dup_prob = 0.0) ?reorder ?kind_of ~engine ~n
    ~delay ~rng () =
  if n <= 0 then invalid_arg "Network.create: n must be positive";
  let metrics = Engine.metrics engine in
  {
    engine;
    n;
    loss_rng = Rng.split rng;
    delay_rng = Rng.split rng;
    dup_rng = Rng.split rng;
    reorder_rng = Rng.split rng;
    delay;
    handlers = Array.make n None;
    drop_prob;
    dup_prob;
    reorder;
    blocked = None;
    muted = Hashtbl.create 4;
    delay_override = None;
    kind_of;
    sent_by_kind = Hashtbl.create 16;
    kind_counters = Hashtbl.create 16;
    c_sent = Metrics.counter metrics "net.sent";
    c_delivered = Metrics.counter metrics "net.delivered";
    c_dropped = Metrics.counter metrics "net.dropped";
    c_duplicated = Metrics.counter metrics "net.duplicated";
    c_reordered = Metrics.counter metrics "net.reordered";
    g_in_flight = Metrics.gauge metrics "net.in_flight";
    in_flight = 0;
  }

let size t = t.n
let set_handler t node h = t.handlers.(node) <- Some h
let clear_handler t node = t.handlers.(node) <- None
let set_delay t delay = t.delay <- delay
let set_drop_prob t p = t.drop_prob <- p
let drop_prob t = t.drop_prob
let set_dup_prob t p = t.dup_prob <- p
let dup_prob t = t.dup_prob
let set_reorder t r = t.reorder <- r
let set_partition t pred = t.blocked <- pred

let set_muted t node muted =
  if muted then Hashtbl.replace t.muted node () else Hashtbl.remove t.muted node

let is_muted t node = Hashtbl.mem t.muted node
let set_delay_override t f = t.delay_override <- f

let messages_sent t = Metrics.value t.c_sent
let messages_delivered t = Metrics.value t.c_delivered
let messages_dropped t = Metrics.value t.c_dropped
let messages_duplicated t = Metrics.value t.c_duplicated
let messages_reordered t = Metrics.value t.c_reordered
let messages_attempted t = messages_sent t + messages_duplicated t
let messages_in_flight t = t.in_flight

let sent_by_kind t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sent_by_kind []
  |> List.sort compare

let reset_counters t =
  (* Counters are monotonic within a run; resetting between scenario reuses
     also discounts whatever is still in flight so the conservation invariant
     restarts clean. Only the network's own metrics are zeroed — the registry
     is shared with the engine and nodes. *)
  Metrics.reset_counter t.c_sent;
  Metrics.reset_counter t.c_delivered;
  Metrics.reset_counter t.c_dropped;
  Metrics.reset_counter t.c_duplicated;
  Metrics.reset_counter t.c_reordered;
  Metrics.reset_gauge t.g_in_flight;
  Hashtbl.iter (fun _ c -> Metrics.reset_counter c) t.kind_counters;
  t.in_flight <- 0;
  Hashtbl.reset t.sent_by_kind

let kind_of_payload t payload =
  match t.kind_of with None -> None | Some f -> Some (f payload)

let count_kind t kind =
  Hashtbl.replace t.sent_by_kind kind
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.sent_by_kind kind));
  let c =
    match Hashtbl.find_opt t.kind_counters kind with
    | Some c -> c
    | None ->
        let c = Metrics.counter (Engine.metrics t.engine) ("net.sent." ^ kind) in
        Hashtbl.replace t.kind_counters kind c;
        c
  in
  Metrics.incr c

let count_sent t payload =
  Metrics.incr t.c_sent;
  match kind_of_payload t payload with None -> () | Some k -> count_kind t k

let trace_msg t payload =
  (* Only rendered when a trace record is actually built (enabled traces). *)
  match kind_of_payload t payload with None -> "?" | Some k -> k

let count_dropped t ~src ~dst ~reason payload =
  Metrics.incr t.c_dropped;
  let tr = Engine.trace t.engine in
  if Trace.is_enabled tr then
    Engine.record t.engine ~node:(-1)
      (Trace.Drop { src; dst; msg = trace_msg t payload; reason })

let deliver t (m : 'a Msg.t) =
  t.in_flight <- t.in_flight - 1;
  Metrics.add t.g_in_flight (-1.0);
  match t.handlers.(m.Msg.dst) with
  | None ->
      (* A destination without a handler (a skipped slot, a slot whose handler
         was cleared) consumes the message: it must leave the in-flight set as
         a drop or the conservation invariant cannot be stated. *)
      count_dropped t ~src:m.Msg.src ~dst:m.Msg.dst ~reason:"no-handler"
        m.Msg.payload
  | Some h ->
      Metrics.incr t.c_delivered;
      let tr = Engine.trace t.engine in
      if Trace.is_enabled tr then
        Engine.record t.engine ~node:m.Msg.dst
          (Trace.Deliver
             { src = m.Msg.src; dst = m.Msg.dst; msg = trace_msg t m.Msg.payload });
      h m

let schedule_delivery t (m : 'a Msg.t) ~delay =
  t.in_flight <- t.in_flight + 1;
  Metrics.add t.g_in_flight 1.0;
  Engine.schedule_after t.engine ~delay (fun () -> deliver t m)

let send t ~src ~dst payload =
  if dst < 0 || dst >= t.n then invalid_arg "Network.send: bad destination";
  count_sent t payload;
  let tr = Engine.trace t.engine in
  if Trace.is_enabled tr then
    Engine.record t.engine ~node:src
      (Trace.Send { src; dst; msg = trace_msg t payload });
  (* Fixed draw schedule: one sample per concern per send, from that
     concern's own stream, whether or not the fault is active — including
     the delay sample, which is drawn even for messages that end up muted,
     partitioned or lost. Toggling any one fault therefore never shifts the
     samples another concern (or a surviving message) observes. *)
  let loss_roll = Rng.float t.loss_rng 1.0 in
  let dup_roll = Rng.float t.dup_rng 1.0 in
  let reorder_roll = Rng.float t.reorder_rng 1.0 in
  let reorder_frac = Rng.float t.reorder_rng 1.0 in
  let now = Engine.now t.engine in
  let drawn_delay = Delay.draw t.delay ~rng:t.delay_rng ~src ~dst ~now in
  let muted = Hashtbl.mem t.muted src in
  let blocked =
    (not muted)
    && (match t.blocked with None -> false | Some pred -> pred ~src ~dst)
  in
  let lost = (not muted) && (not blocked) && loss_roll < t.drop_prob in
  if muted then count_dropped t ~src ~dst ~reason:"muted" payload
  else if blocked then count_dropped t ~src ~dst ~reason:"partition" payload
  else if lost then count_dropped t ~src ~dst ~reason:"loss" payload
  else begin
    let m = Msg.make ~src ~dst ~sent_at:now payload in
    let extra =
      match t.reorder with
      | Some { prob; extra } when reorder_roll < prob && extra > 0.0 ->
          Metrics.incr t.c_reordered;
          reorder_frac *. extra
      | _ -> 0.0
    in
    let delay =
      match t.delay_override with
      | Some f -> ( match f m with Some delay -> delay | None -> drawn_delay)
      | None -> drawn_delay
    in
    schedule_delivery t m ~delay:(delay +. extra);
    if dup_roll < t.dup_prob then begin
      (* A duplicated copy enters the accounting as [duplicated] (not sent)
         and then flows through delivery/drop like any message, so the
         generalized conservation identity keeps holding. Its delay is drawn
         from the dup stream: duplication must not consume delay samples. *)
      Metrics.incr t.c_duplicated;
      if Trace.is_enabled tr then
        Engine.record t.engine ~node:src
          (Trace.Duplicate { src; dst; msg = trace_msg t payload });
      let dup_delay = Delay.draw t.delay ~rng:t.dup_rng ~src ~dst ~now in
      schedule_delivery t m ~delay:(dup_delay +. extra)
    end
  end

let broadcast t ~src payload =
  for dst = 0 to t.n - 1 do
    send t ~src ~dst payload
  done

(* Incoherent-period garbage: deliver a message claiming to come from
   [claimed_src] after [delay]. Used by the transient-fault injector only.
   Forged messages enter the accounting like any other send, so the
   conservation invariant keeps holding during scrambles. The forged path
   draws no fault samples: injection is itself adversary-scheduled. *)
let inject_forged t ~claimed_src ~dst ~delay payload =
  count_sent t payload;
  let now = Engine.now t.engine in
  let m = Msg.forge ~claimed_src ~dst ~sent_at:now payload in
  schedule_delivery t m ~delay

let link t =
  {
    Link.n = t.n;
    send = (fun ~src ~dst payload -> send t ~src ~dst payload);
    broadcast = (fun ~src payload -> broadcast t ~src payload);
    set_handler = (fun node h -> set_handler t node h);
    clear_handler = (fun node -> clear_handler t node);
  }
