(* The per-General separation guard.

   Initiator-Accept's rate-limiting variables — last(G), last(G,m), the
   per-kind send times — implement the paper's separation argument (the
   Uniqueness proof of [IA-4] and Definition 8's freshness queries). They
   must outlive any single execution of the primitive: sessions are created,
   reset, evicted and garbage-collected, but "I supported an initiation by G
   recently" is a fact about the *General*, not about one session.

   This module owns exactly that persistent state, shared by reference with
   the live session (if any) for the same General. It also holds:

   - [session_value], the re-initiation blackout: the first value this node
     engaged for G (block K or the first L1 recording). It mirrors the
     session's own i_value — same freshness horizon (Delta_rmv), cleared on
     I-accept when last(G) takes over the blocking — but, living here, it
     survives session eviction and GC. While it is fresh, block K refuses
     initiations for any *other* value, so a second initiation by G inside
     the separation window cannot seed a fresh accept even if the first
     session's state is gone — the sender-side half of the [IA-4] fix.
     It gates block K only: the relay blocks (L-N) must stay value-blind or
     a correct node engaged on the losing value of a two-faced General would
     refuse to relay the winning one, trading the [IA-4] violation for an
     [IA-3] one.

   - the [IG3] invocation report timestamps. The General reads them up to 7d
     after proposing, possibly after the session they were stamped in has
     been reset or collected; keeping them here makes the self-watchdog
     immune to session lifecycle.

   All fields are deliberately transparent (see the .mli): the guard is
   shared mutable state between Initiator_accept and Node, not an
   abstraction boundary. *)

open Types

type t = {
  mutable last_g : float option;  (* last(G): set at N4 *)
  last_gm : (value, Time_set.t) Hashtbl.t;  (* last(G,m): sorted set-times *)
  sent_support : (value, float) Hashtbl.t;
  sent_approve : (value, float) Hashtbl.t;
  sent_ready : (value, float) Hashtbl.t;
  mutable session_value : (value * float) option;
      (* (first engaged value, engagement time) — the blackout *)
  mutable invoked_at : float option;
  mutable l4_at : float option;
  mutable m4_at : float option;
  mutable n4_at : float option;
}

let create () =
  {
    last_g = None;
    last_gm = Hashtbl.create 4;
    sent_support = Hashtbl.create 4;
    sent_approve = Hashtbl.create 4;
    sent_ready = Hashtbl.create 4;
    session_value = None;
    invoked_at = None;
    l4_at = None;
    m4_at = None;
    n4_at = None;
  }

(* last(G,m) expiry horizon: 2 * Delta_rmv + 9d (Figure 2, cleanup). *)
let last_gm_expiry (p : Params.t) = (2.0 *. p.Params.delta_rmv) +. (9.0 *. p.Params.d)

(* last(G) expiry horizon: Delta_0 - 6d (Figure 2, cleanup). *)
let last_g_expiry (p : Params.t) = p.Params.delta_0 -. (6.0 *. p.Params.d)

(* Blackout horizon: the i_value freshness window (Definition 8). *)
let session_value_expiry (p : Params.t) = p.Params.delta_rmv

let set_last_gm t v ~at =
  let sets =
    match Hashtbl.find_opt t.last_gm v with
    | Some s -> s
    | None ->
        let s = Time_set.create () in
        Hashtbl.replace t.last_gm v s;
        s
  in
  Time_set.add sets at

let last_gm_defined_at t ~params v ~at =
  match Hashtbl.find_opt t.last_gm v with
  | None -> false
  | Some sets -> Time_set.defined_at sets ~at ~expiry:(last_gm_expiry params)

let last_g_defined t ~params ~now =
  match t.last_g with
  | None -> false
  | Some s -> s <= now && now -. s <= last_g_expiry params

(* The blackout query: is there a fresh engagement for a *different* value? *)
let blackout_blocks t ~params ~now v =
  match t.session_value with
  | Some (v', s) ->
      (not (String.equal v' v))
      && s <= now
      && now -. s <= session_value_expiry params
  | None -> false

(* Record (or refresh) the engagement. First value wins while fresh: a later
   engagement for a different value inside the window is exactly what the
   blackout exists to reject, so it must not displace the original. *)
let note_session_value t ~params ~now v =
  match t.session_value with
  | Some (v', s) when s <= now && now -. s <= session_value_expiry params ->
      if String.equal v' v then t.session_value <- Some (v, now)
  | Some _ | None -> t.session_value <- Some (v, now)

(* I-accept reached: the blackout's job is done, last(G) takes over. Mirrors
   N4 resetting the session's i_values. *)
let clear_session_value t = t.session_value <- None

(* Figure 2's decay rules for the persistent variables; run every d. Safe to
   run both from the session's cleanup and from the node's guard sweep —
   pruning is idempotent. *)
let cleanup t ~params ~now =
  let prune tbl keep =
    let doomed = Hashtbl.fold (fun v x acc -> if keep x then acc else v :: acc) tbl [] in
    List.iter (Hashtbl.remove tbl) doomed
  in
  (match t.last_g with
  | Some s when s > now || now -. s > last_g_expiry params -> t.last_g <- None
  | Some _ | None -> ());
  let gm_horizon = now -. (last_gm_expiry params +. params.Params.d) in
  let gm_doomed = ref [] in
  Hashtbl.iter
    (fun v sets ->
      Time_set.retain_range sets ~lo:gm_horizon ~hi:now;
      if Time_set.is_empty sets then gm_doomed := v :: !gm_doomed)
    t.last_gm;
  List.iter (Hashtbl.remove t.last_gm) !gm_doomed;
  let keep_sent s = s <= now && now -. s <= 2.0 *. params.Params.delta_rmv in
  prune t.sent_support keep_sent;
  prune t.sent_approve keep_sent;
  prune t.sent_ready keep_sent;
  (match t.session_value with
  | Some (_, s) when s > now || now -. s > session_value_expiry params ->
      t.session_value <- None
  | Some _ | None -> ());
  let stale = function
    | Some s when s > now || now -. s > params.Params.delta_rmv -> true
    | Some _ | None -> false
  in
  if stale t.invoked_at then t.invoked_at <- None;
  if stale t.l4_at then t.l4_at <- None;
  if stale t.m4_at then t.m4_at <- None;
  if stale t.n4_at then t.n4_at <- None

(* Canonical state fingerprint for the model checker's visited set: every
   behaviour-relevant field, hashtables in sorted key order, floats printed
   exactly (%h). *)
let fingerprint buf t =
  let fopt buf = function
    | None -> Buffer.add_string buf "-"
    | Some x -> Printf.bprintf buf "%h" x
  in
  let sorted tbl =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  Printf.bprintf buf "sep{lg=%a;" fopt t.last_g;
  List.iter
    (fun (v, sets) ->
      Printf.bprintf buf "gm:%s=" v;
      List.iter (fun at -> Printf.bprintf buf "%h," at) (Time_set.to_list sets);
      Buffer.add_char buf ';')
    (sorted t.last_gm);
  let sent tag tbl =
    List.iter
      (fun (v, s) -> Printf.bprintf buf "%s:%s=%h;" tag v s)
      (sorted tbl)
  in
  sent "ss" t.sent_support;
  sent "sa" t.sent_approve;
  sent "sr" t.sent_ready;
  (match t.session_value with
  | None -> Buffer.add_string buf "sv=-;"
  | Some (v, s) -> Printf.bprintf buf "sv=%s@%h;" v s);
  Printf.bprintf buf "ig3=%a,%a,%a,%a}" fopt t.invoked_at fopt t.l4_at fopt
    t.m4_at fopt t.n4_at

(* Fully decayed: nothing left worth keeping — the node drops such guards. *)
let is_idle t =
  t.last_g = None
  && Hashtbl.length t.last_gm = 0
  && Hashtbl.length t.sent_support = 0
  && Hashtbl.length t.sent_approve = 0
  && Hashtbl.length t.sent_ready = 0
  && t.session_value = None
  && t.invoked_at = None
  && t.l4_at = None
  && t.m4_at = None
  && t.n4_at = None
