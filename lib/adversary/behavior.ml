(* Byzantine behaviour framework.

   A behaviour owns one node id and is installed instead of (or alongside) a
   correct protocol node. It gets raw access to the network — it may send any
   payload at any time, but only under its own authenticated identity
   (paper §2: sender identity cannot be tampered with once the network is
   correct). Installation registers the network handler for the node and may
   schedule autonomous activity on the engine. *)

open Ssba_core.Types

type env = {
  self : node_id;
  params : Ssba_core.Params.t;
  engine : Ssba_sim.Engine.t;
  rng : Ssba_sim.Rng.t;
  link : message Ssba_net.Link.t;
      (* the same sending surface correct nodes use: the raw network, or the
         reliable transport when the scenario runs over a faulty link *)
  clock : Ssba_sim.Clock.t;
}

type t = { name : string; install : env -> unit }

let make ~name install = { name; install }
let name t = t.name
let install t env = t.install env

(* Helpers shared by concrete strategies. *)

let send env ~dst payload = Ssba_net.Link.send env.link ~src:env.self ~dst payload

let send_to env ~dsts payload = List.iter (fun dst -> send env ~dst payload) dsts

let send_all env payload = Ssba_net.Link.broadcast env.link ~src:env.self payload

let at env ~time f = Ssba_sim.Engine.schedule env.engine ~at:time f

let after env ~delay f = Ssba_sim.Engine.schedule_after env.engine ~delay f

let every env ~period f =
  let rec tick () =
    f ();
    Ssba_sim.Engine.schedule_after env.engine ~delay:period tick
  in
  Ssba_sim.Engine.schedule_after env.engine ~delay:period tick

let on_message env f = Ssba_net.Link.set_handler env.link env.self f

let trace env event = Ssba_sim.Engine.record env.engine ~node:env.self event

(* Random plausible protocol message, for fuzzing/spam strategies. *)
let random_message env ~values =
  let rng = env.rng in
  let n = env.params.Ssba_core.Params.n in
  let f = env.params.Ssba_core.Params.f in
  let g = Ssba_sim.Rng.int rng n in
  let v = Ssba_sim.Rng.pick_list rng values in
  match Ssba_sim.Rng.int rng 9 with
  | 0 -> Initiator { g; v }
  | 1 -> Ia { kind = Support; g; v }
  | 2 -> Ia { kind = Approve; g; v }
  | 3 -> Ia { kind = Ready; g; v }
  | c ->
      let kind = match c with 4 -> Init | 5 -> Echo | 6 -> Init2 | _ -> Echo2 in
      let p = Ssba_sim.Rng.int rng n in
      let k = 1 + Ssba_sim.Rng.int rng (max 1 (f + 1)) in
      Mb { kind; p; g; v; k }
