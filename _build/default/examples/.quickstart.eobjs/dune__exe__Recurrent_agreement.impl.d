examples/recurrent_agreement.ml: Array Fmt Hashtbl List Option Printf Ssba_core Ssba_net Ssba_sim
