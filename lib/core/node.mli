(** Node glue: wires the protocol state machines to the engine, clock and
    network, multiplexes per-General agreement instances, and implements the
    General-side Sending Validity Criteria [IG1]–[IG3]. *)

open Types

type t
type net = message Ssba_net.Network.t
type link = message Ssba_net.Link.t

type propose_error =
  | Too_soon  (** [IG1]: within [Delta_0] of the previous initiation *)
  | Value_too_soon  (** [IG2]: within [Delta_v] of initiating the same value *)
  | Blocked  (** [IG3]: within [Delta_reset] of a noticed failure *)
  | Busy  (** own agreement instance still active *)
  | At_capacity
      (** admission mode only: the session table is full and the proposal
          was refused rather than evicting a live session *)

val string_of_propose_error : propose_error -> string

(** Create a node and register it as the network handler for [id]. Starts
    the periodic (every [d]) cleanup tick.

    [channels] (default 1) enables the paper's footnote-9 extension:
    concurrent invocations by one General are differentiated by an index.
    Logical General ids range over [0, n * channels); logical [g] is owned by
    physical node [g mod n], and the Sending Validity Criteria are enforced
    per logical General.

    [session_capacity] (default [max 8 (n * channels)]) fixes the session
    table's slot count: sessions beyond it evict the least-recently-active
    one deterministically. The default admits every logical General at once,
    so eviction only ever fires under adversarial floods.

    [blackout] (default [true]) gates the {!Initiator_accept} re-initiation
    blackout; the model checker disables it in sensitivity runs to exhibit
    the split decision the guard prevents.

    [admission] (default [false]) makes the General's own proposals
    admission-controlled: a full session table refuses them ([At_capacity],
    counted by the table as [rejected_at_capacity]) instead of evicting the
    least-recently-active session. Message receipt keeps the evicting
    path. *)
val create :
  ?channels:int ->
  ?session_capacity:int ->
  ?blackout:bool ->
  ?admission:bool ->
  id:node_id ->
  params:Params.t ->
  clock:Ssba_sim.Clock.t ->
  engine:Ssba_sim.Engine.t ->
  net:net ->
  unit ->
  t

(** Like {!create}, but over an arbitrary sending surface — the raw network
    or a reliable transport session ([Ssba_transport.Transport.link]). *)
val create_on :
  ?channels:int ->
  ?session_capacity:int ->
  ?blackout:bool ->
  ?admission:bool ->
  id:node_id ->
  params:Params.t ->
  clock:Ssba_sim.Clock.t ->
  engine:Ssba_sim.Engine.t ->
  link:link ->
  unit ->
  t

val id : t -> node_id
val params : t -> Params.t
val clock : t -> Ssba_sim.Clock.t
val engine : t -> Ssba_sim.Engine.t

(** Current local-clock reading. *)
val local_time : t -> float

(** Act as the General: initiate agreement on [v] (block Q0), enforcing the
    Sending Validity Criteria and arming the [IG3] self-watchdog. [channel]
    (default 0) selects the concurrent-invocation index; the agreement runs
    under logical General id [channel * n + id]. Raises [Invalid_argument] if
    the channel is out of range. *)
val propose : ?channel:int -> t -> value -> (unit, propose_error) result

(** The per-General agreement session (found in the session table or created
    on demand, keyed (logical G, anchor)); the argument is a logical General
    id. Touches the session's activity time. *)
val instance : t -> general -> Ss_byz_agree.t

(** The physical node behind a logical General id ([g mod n]). *)
val physical : t -> general -> node_id

(** Number of live sessions in the table (bounded by the table capacity,
    default [max 8 (n * channels)] — the memory-bound soak tests rely on
    this; quiescent sessions are garbage-collected by the cleanup tick). *)
val instance_count : t -> int

(** The session table's lifecycle counters: capacity, live, peak live,
    evictions, collections. *)
val session_stats : t -> Session_table.stats

(** All values returned by this node's agreement instances, oldest first. *)
val returns : t -> return_info list

(** Be notified of every future return. *)
val subscribe : t -> (return_info -> unit) -> unit

(** Be notified of fine-grained protocol events (I-accepts, msgd-broadcast
    accepts, own decision broadcasts, broadcaster detections) across all of
    this node's agreement instances, tagged with the General. *)
val subscribe_observations :
  t -> (general -> Ss_byz_agree.observation -> unit) -> unit

(** Append a canonical whole-node state fingerprint: sessions (with the
    lifecycle bookkeeping that drives eviction), separation guards,
    General-side rate-limiting state and the return history — the model
    checker's visited-set encoding. The clock is not included; the checker
    appends the engine time itself. *)
val fingerprint : Buffer.t -> t -> unit

(** Transient-fault injection: corrupt every instance (plus [extra] conjured
    ones) and the General-side bookkeeping. *)
val scramble : Ssba_sim.Rng.t -> values:value list -> ?extra:int -> t -> unit

(** A reformed node: a previously Byzantine node starts running the correct
    protocol mid-run from arbitrary state (the self-stabilizing rejoin).
    [create_on] wired to [link], then immediately {!scramble}d with [values],
    so the node's protocol and General-side state is arbitrary at the reform
    point — the paper owes guarantees only [Delta_stb] later. *)
val reform :
  ?channels:int ->
  ?session_capacity:int ->
  ?admission:bool ->
  rng:Ssba_sim.Rng.t ->
  values:value list ->
  id:node_id ->
  params:Params.t ->
  clock:Ssba_sim.Clock.t ->
  engine:Ssba_sim.Engine.t ->
  link:link ->
  unit ->
  t
