(* ssba-run: run one ss-Byz-Agree scenario from the command line.

     ssba-run --n 7 --general 0 --value hello
     ssba-run --n 10 --attack two-faced --trace
     ssba-run --n 7 --scramble --propose-at 0.6 --general 2
     ssba-run --n 7 --chaos periodic-scramble

   Prints every return, the agreement/validity verdicts and the message
   statistics; --trace dumps the full event trace. Under --chaos (or any
   disruptive schedule) the verdict section also prints the coherence
   timeline with a per-episode recovery report. *)

open Cmdliner
module H = Ssba_harness
module Core = Ssba_core

let attacks =
  [
    ("none", `None);
    ("silent", `Silent);
    ("spam", `Spam);
    ("two-faced", `Two_faced);
    ("stagger", `Stagger);
    ("partial", `Partial);
    ("equivocators", `Equivocators);
    ("mimics", `Mimics);
  ]

let run n seed general value attack scramble chaos sessions propose_at horizon
    trace_flag trace_out metrics_out realtime transport_flag rto loss dup
    reorder service service_rate =
  let chaos =
    match chaos with
    | None -> None
    | Some name -> (
        match H.Chaos.pattern_of_name name with
        | Ok p -> Some p
        | Error e ->
            prerr_endline e;
            exit 1)
  in
  let base = Core.Params.default n in
  let transport =
    if transport_flag then
      Some
        (Ssba_transport.Transport.config
           ~rto:(Option.value rto ~default:(3.0 *. base.Core.Params.delta))
           ())
    else None
  in
  (* With the transport masking a lossy link, the timeout cascade must be
     built at the effective delay bound — same derivation as Spec.params. *)
  let params =
    match transport with
    | Some c when loss > 0.0 ->
        Core.Params.default
          ~delta:
            (Core.Params.delta_eff ~delta:base.Core.Params.delta ~p:loss
               ~rto:c.Ssba_transport.Transport.rto
               ~retries:c.Ssba_transport.Transport.retries)
          n
    | Some _ | None -> base
  in
  (match Core.Params.validate params with
  | Ok () -> ()
  | Error e ->
      prerr_endline e;
      exit 1);
  let d = params.Core.Params.d in
  let module S = Ssba_adversary.Strategies in
  let f = params.Core.Params.f in
  let byz strategy = H.Scenario.Byzantine strategy in
  let roles, proposals =
    match attack with
    | `None -> ([], [ { H.Scenario.g = general; v = value; at = propose_at } ])
    | `Silent -> ([ (general, byz S.silent) ], [])
    | `Spam ->
        ( List.init f (fun i ->
              (n - 1 - i, byz (S.spam ~period:(5.0 *. d) ~values:[ value; "noise" ]))),
          [ { H.Scenario.g = general; v = value; at = propose_at } ] )
    | `Two_faced ->
        ([ (general, byz (S.two_faced_general ~v1:value ~v2:(value ^ "'") ~at:propose_at)) ], [])
    | `Stagger ->
        ([ (general, byz (S.stagger_general ~v:value ~at:propose_at ~gap:(3.0 *. d))) ], [])
    | `Partial ->
        ( [
            ( general,
              byz
                (S.partial_general ~v:value ~at:propose_at
                   ~targets:(List.init (n - f) (fun i -> (general + 1 + i) mod n))) );
          ],
          [] )
    | `Equivocators ->
        ( List.init f (fun i -> (n - 1 - i, byz (S.equivocator ~v1:value ~v2:(value ^ "'")))),
          [ { H.Scenario.g = general; v = value; at = propose_at } ] )
    | `Mimics ->
        ( List.init f (fun i -> (n - 1 - i, byz (S.mimic ~delay:(2.0 *. d)))),
          [ { H.Scenario.g = general; v = value; at = propose_at } ] )
  in
  (* The rejoin preset needs a Byzantine node to reform; give it one if the
     attack didn't already. *)
  let roles =
    match chaos with
    | Some H.Chaos.Rejoin when roles = [] ->
        let node = if general = n - 1 then n - 2 else n - 1 in
        [ (node, byz (S.spam ~period:(5.0 *. d) ~values:[ "noise" ])) ]
    | _ -> roles
  in
  let chaos_schedule =
    match chaos with
    | None -> None
    | Some pattern ->
        let byzantine = List.map fst roles in
        let correct =
          List.filter (fun i -> not (List.mem i byzantine)) (List.init n Fun.id)
        in
        Some (H.Chaos.schedule pattern ~params ~correct ~byzantine)
  in
  let events =
    (if scramble then
       [ H.Scenario.Scramble { at = 0.0; values = [ value; "x"; "y" ]; net_garbage = 100 } ]
     else [])
    @ (if loss > 0.0 then [ H.Scenario.Loss { at = 0.0; p = loss } ] else [])
    @ (if dup > 0.0 then [ H.Scenario.Duplicate { at = 0.0; p = dup } ] else [])
    @
    if reorder > 0.0 then
      [
        H.Scenario.Reorder
          { at = 0.0; prob = reorder; extra = 2.0 *. base.Core.Params.delta };
      ]
    else []
  in
  let events, proposals, chaos_horizon =
    match chaos_schedule with
    | None -> (events, proposals, 0.0)
    | Some s ->
        ( events @ s.H.Chaos.events,
          proposals @ s.H.Chaos.proposals,
          s.H.Chaos.horizon )
  in
  (* Multi-initiator schedule (footnote 9): --sessions K spreads K logical
     Generals over the correct nodes via channels and fires them all inside
     one [d], so every node hosts ~K overlapping sessions at once. *)
  let channels = max 1 ((sessions + n - 1) / n) in
  let proposals =
    if sessions <= 1 then proposals
    else
      let byzantine = List.map fst roles in
      proposals
      @ List.filter_map
          (fun i ->
            if List.mem (i mod n) byzantine then None
            else
              Some
                {
                  H.Scenario.g = i;
                  v = Printf.sprintf "%s-%d" value i;
                  at = propose_at +. (float_of_int i /. float_of_int sessions *. d);
                })
          (List.init sessions Fun.id)
  in
  (* Service mode: all agreement traffic comes from the recurrent-agreement
     driver (open-loop Poisson arrivals over rotating logical Generals), so
     the scheduled one-shot proposal is dropped and the horizon leaves the
     drain slack the degraded-mode recovery needs. *)
  let module W = Ssba_service.Workload in
  let workload =
    match service with
    | None -> None
    | Some dur ->
        Some
          {
            W.default with
            W.arrivals = W.Poisson { rate = service_rate };
            start_at = propose_at;
            stop_at = propose_at +. dur;
          }
  in
  let proposals = if workload = None then proposals else [] in
  let channels =
    match workload with Some w -> w.W.channels | None -> channels
  in
  let horizon =
    match (horizon, workload) with
    | Some h, _ -> h
    | None, Some w ->
        w.W.stop_at +. (1.5 *. params.Core.Params.delta_stb)
    | None, None ->
        Float.max chaos_horizon
          (propose_at +. (4.0 *. params.Core.Params.delta_agr))
  in
  let sc =
    H.Scenario.default ~name:"cli" ~seed ~roles ~proposals ~events ~horizon
      ~record_trace:(trace_flag || trace_out <> None)
      ?transport ~channels
      ~admission:(workload <> None)
      params
  in
  (match realtime with
  | None -> ()
  | Some speed ->
      Fmt.pr "(running in real time at %gx; virtual horizon %.3fs)@." speed horizon);
  let svc = ref None in
  let on_driver drv =
    match workload with
    | Some w -> svc := Some (Ssba_service.Service.attach ~seed w drv)
    | None -> ()
  in
  let res =
    match realtime with
    | None -> H.Runner.run ~on_driver sc
    | Some speed when workload = None -> H.Runner.run_paced ~speed sc
    | Some _ ->
        Fmt.pr "(--realtime is ignored in --service mode)@.";
        H.Runner.run ~on_driver sc
  in
  let elide = sessions > 1 || workload <> None in
  Fmt.pr "@[<v>params: %a@]@." Core.Params.pp params;
  Fmt.pr "returns (%d):@." (List.length res.H.Runner.returns);
  if not elide then
    List.iter
      (fun r -> Fmt.pr "  %a@." Core.Types.pp_return r)
      res.H.Runner.returns
  else Fmt.pr "  (elided: multi-session run)@.";
  (* Judge each episode against the correct set in force at its time — a
     node that reformed later must not be expected in earlier episodes. *)
  let intervals = H.Coherence.intervals sc in
  let correct_at e =
    match H.Coherence.interval_at intervals (H.Metrics.first_return e) with
    | Some iv -> iv.H.Coherence.correct
    | None -> res.H.Runner.correct
  in
  let unanimous = ref 0 and aborted = ref 0 in
  List.iter
    (fun (e : H.Metrics.episode) ->
      match H.Checks.agreement ~correct:(correct_at e) e with
      | H.Checks.Unanimous v ->
          incr unanimous;
          if not elide then
            Fmt.pr "episode G=%d: unanimous %S (skew %.2fd, anchors %.2fd apart)@."
              e.H.Metrics.g v
              (H.Metrics.decision_skew res e /. d)
              (H.Metrics.anchor_skew res e /. d)
      | H.Checks.All_aborted ->
          incr aborted;
          if not elide then Fmt.pr "episode G=%d: all aborted@." e.H.Metrics.g
      | H.Checks.All_silent -> ()
      | H.Checks.Violated why -> Fmt.pr "episode G=%d: VIOLATED: %s@." e.H.Metrics.g why)
    (H.Metrics.episodes res);
  if elide then
    Fmt.pr "episodes over concurrent sessions: %d unanimous, %d aborted@."
      !unanimous !aborted;
  let stabilized = H.Checks.stabilized_after sc in
  (match H.Checks.pairwise_agreement ~after:stabilized res with
  | [] ->
      if stabilized > 0.0 then
        Fmt.pr "pairwise agreement (after stabilization at %.3fs): holds@."
          stabilized
      else Fmt.pr "pairwise agreement: holds@."
  | vs -> List.iter (fun v -> Fmt.pr "pairwise agreement VIOLATION: %s@." v) vs);
  if List.exists (H.Scenario.disruptive sc) sc.H.Scenario.events then begin
    Fmt.pr "@.coherence timeline and recovery (Delta_stb = %.3fs):@."
      params.Core.Params.delta_stb;
    List.iter
      (fun r -> Fmt.pr "  %a@." H.Checks.pp_episode_report r)
      (H.Checks.recovery_report res)
  end;
  Fmt.pr "messages sent: %d (delivered %d, dropped %d, in flight %d)@."
    res.H.Runner.messages_sent res.H.Runner.messages_delivered
    res.H.Runner.messages_dropped res.H.Runner.messages_in_flight;
  if res.H.Runner.messages_duplicated <> 0 || transport <> None then
    Fmt.pr
      "lossy link: duplicated %d; transport: retransmits %d, dup-suppressed \
       %d, expired %d, retries-exhausted %d@."
      res.H.Runner.messages_duplicated res.H.Runner.transport_retransmits
      res.H.Runner.transport_dup_suppressed res.H.Runner.transport_expired
      res.H.Runner.transport_retries_exhausted;
  List.iter
    (fun (k, c) -> Fmt.pr "  %-10s %d@." k c)
    res.H.Runner.messages_by_kind;
  (* Session-table health: the bounded-memory core in one line. [peak live]
     staying under [capacity] is the memory bound; evictions say the bound
     was enforced rather than merely unchallenged. *)
  (match res.H.Runner.nodes with
  | [] -> ()
  | nodes ->
      let stats = List.map (fun (_, nd) -> Core.Node.session_stats nd) nodes in
      let top f = List.fold_left (fun a s -> max a (f s)) 0 stats in
      let sum f = List.fold_left (fun a s -> a + f s) 0 stats in
      Fmt.pr
        "session tables (%d nodes): capacity %d, live %d, peak live %d, \
         evicted %d, gced %d, rejected-at-capacity %d@."
        (List.length nodes)
        (top (fun s -> s.Core.Session_table.capacity))
        (top (fun s -> s.Core.Session_table.live))
        (top (fun s -> s.Core.Session_table.peak_live))
        (sum (fun s -> s.Core.Session_table.evicted))
        (sum (fun s -> s.Core.Session_table.gced))
        (sum (fun s -> s.Core.Session_table.rejected_at_capacity)));
  (match !svc with
  | None -> ()
  | Some s ->
      Fmt.pr "@.service report:@.%a@." Ssba_service.Service.pp_report
        (Ssba_service.Service.report s));
  let conservation = H.Checks.network_conservation res in
  if not conservation.H.Checks.ok then
    Fmt.pr "WARNING: %a@." H.Checks.pp_verdict conservation;
  let write_file path contents =
    let oc = open_out path in
    output_string oc contents;
    close_out oc
  in
  (match trace_out with
  | None -> ()
  | Some path ->
      write_file path (Ssba_sim.Trace.to_jsonl res.H.Runner.trace);
      Fmt.pr "trace written to %s (%d events)@." path
        (Ssba_sim.Trace.count res.H.Runner.trace));
  (match metrics_out with
  | None -> ()
  | Some path ->
      write_file path (Ssba_sim.Metrics.to_jsonl res.H.Runner.metrics);
      Fmt.pr "metrics written to %s@." path);
  if trace_flag then begin
    Fmt.pr "@.trace:@.";
    Fmt.pr "%a@." Ssba_sim.Trace.pp res.H.Runner.trace
  end

let n_arg =
  Arg.(value & opt int 7 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let general_arg =
  Arg.(value & opt int 0 & info [ "general"; "g" ] ~doc:"The General's node id.")

let value_arg =
  Arg.(value & opt string "hello" & info [ "value"; "v" ] ~doc:"The value to agree on.")

let attack_arg =
  Arg.(
    value
    & opt (enum attacks) `None
    & info [ "attack" ] ~doc:"Byzantine attack: $(docv)."
        ~docv:(String.concat "|" (List.map fst attacks)))

let scramble_arg =
  Arg.(
    value & flag
    & info [ "scramble" ]
        ~doc:"Corrupt all node state and inject network garbage at time 0.")

let chaos_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "chaos" ] ~docv:"PRESET"
        ~doc:
          "Run a continuous-churn chaos schedule on top of the scenario: \
           $(docv) is one of periodic-scramble, crash-wave, surge or rejoin. \
           Adds 3 disruption episodes with probe proposals and prints a \
           per-episode recovery report (rejoin adds a Byzantine node to \
           reform if the attack has none).")

let sessions_arg =
  Arg.(
    value & opt int 1
    & info [ "sessions" ] ~docv:"K"
        ~doc:
          "Host $(docv) concurrent overlapping agreement sessions per node: \
           spreads $(docv) logical Generals over the nodes via invocation \
           channels (paper footnote 9) and fires them all within one d of \
           --propose-at. The report condenses to per-session verdict counts \
           plus the session-table stats.")

let propose_at_arg =
  Arg.(
    value & opt float 0.05
    & info [ "propose-at" ] ~doc:"Real time of the General's initiation.")

let horizon_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "horizon" ] ~doc:"Simulation end time (default: propose-at + 4 Dagr).")

let trace_arg = Arg.(value & flag & info [ "trace" ] ~doc:"Dump the event trace.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Write the event trace as JSON Lines to $(docv) (implies trace \
              recording).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the metrics registry (counters and gauges) as JSON Lines \
              to $(docv).")

let realtime_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "realtime" ]
        ~doc:
          "Pace the simulation against the wall clock at $(docv) virtual \
           seconds per wall second (e.g. 0.01 slows a millisecond-scale \
           agreement down to human speed)."
        ~docv:"SPEED")

let transport_arg =
  Arg.(
    value & flag
    & info [ "transport" ]
        ~doc:
          "Run all traffic through the reliable transport (per-link sequence \
           numbers, ack-driven retransmission, dedup); the timeout cascade \
           is rebuilt at delta_eff when --loss is also given.")

let rto_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "rto" ] ~docv:"SEC"
        ~doc:"Transport retransmission timeout (default: 3 delta).")

let loss_arg =
  Arg.(
    value & opt float 0.0
    & info [ "loss" ] ~docv:"P"
        ~doc:"Persistent per-message loss probability, from time 0.")

let dup_arg =
  Arg.(
    value & opt float 0.0
    & info [ "dup" ] ~docv:"P"
        ~doc:"Persistent per-message duplication probability, from time 0.")

let reorder_arg =
  Arg.(
    value & opt float 0.0
    & info [ "reorder" ] ~docv:"P"
        ~doc:
          "Persistent reordering probability (stretches a delivery by up to \
           2 delta), from time 0.")

let service_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "service" ] ~docv:"SEC"
        ~doc:
          "Run the recurrent-agreement service for $(docv) seconds of \
           open-loop arrivals (admission control, watermark load-shedding, \
           capped-backoff retries), then drain; prints the service \
           latency/throughput report. The one-shot --value proposal is \
           replaced by the arrival stream.")

let service_rate_arg =
  Arg.(
    value & opt float 40.0
    & info [ "service-rate" ] ~docv:"R"
        ~doc:"Arrival rate (jobs/second) for --service mode.")

let cmd =
  let doc = "run one self-stabilizing Byzantine agreement scenario" in
  Cmd.v
    (Cmd.info "ssba-run" ~doc)
    Term.(
      const run $ n_arg $ seed_arg $ general_arg $ value_arg $ attack_arg
      $ scramble_arg $ chaos_arg $ sessions_arg $ propose_at_arg $ horizon_arg $ trace_arg
      $ trace_out_arg $ metrics_out_arg $ realtime_arg $ transport_arg
      $ rto_arg $ loss_arg $ dup_arg $ reorder_arg $ service_arg
      $ service_rate_arg)

let () = exit (Cmd.eval cmd)
