(* Property oracles over one fuzzed run.

   Soundness is the whole game: a fuzzer whose oracle cries wolf under legal
   schedules is useless, so each check is gated on the scenario class it is
   actually promised for. Agreement (pairwise, anchored) holds from the
   re-stabilization point after arbitrary transient faults; the primitive
   invariants and the timeliness deadlines additionally assume the network
   stayed coherent, so they only run on event-free specs. Byzantine casts up
   to f never gate anything — that is the permanent fault budget.

   The transport moves the line: persistent link faults (Loss/Duplicate/
   Reorder) under a transport-carrying spec are *not* disruptions — the
   transport's contract is to re-establish the bounded-delay channel at
   delta_eff, so Validity/Termination/Timeliness are checked as if the links
   were clean. Without a transport those same faults leave the paper's model
   permanently: nothing beyond conservation can soundly be demanded, so the
   other oracles are skipped — unless [assume_coherent] forces them back on,
   which is how the regression suite demonstrates that the un-transported
   protocol really does lose Termination over lossy links. *)

module H = Ssba_harness
module P = Ssba_core.Params
module S = H.Scenario
module Svc = Ssba_service.Service
module W = Ssba_service.Workload
module Tr = Ssba_sim.Trace
module Ty = Ssba_core.Types

type failure = { oracle : string; detail : string }
type report = { digest : string; failures : failure list }

type config = {
  check_invariants : bool;
  check_timeliness : bool;
  skew_deadline_scale : float;
  assume_coherent : bool;
  recovery_stb_scale : float;
}

let default_config =
  {
    check_invariants = true;
    check_timeliness = true;
    skew_deadline_scale = 1.0;
    assume_coherent = false;
    recovery_stb_scale = 1.0;
  }

let failed r = r.failures <> []
let pp_failure ppf f = Fmt.pf ppf "[%s] %s" f.oracle f.detail

(* The real time from which the paper's guarantees apply again: Delta_stb
   after the last disruptive event. Heal only restores service, and
   transport-masked link faults never suspend the guarantees at all (see
   Spec.disruptive). *)
let stabilized_after spec =
  let params = Spec.params spec in
  let disruptive =
    List.filter_map
      (fun e ->
        if Spec.disruptive spec e then Some (Spec.event_time e) else None)
      spec.Spec.events
  in
  match disruptive with
  | [] -> 0.0
  | ts -> List.fold_left max 0.0 ts +. params.P.delta_stb

(* Match an accepted proposal to its episode: same General, first return
   within the termination window of the initiation. *)
let episode_for episodes (p : S.proposal) ~params =
  let lo = p.S.at -. params.P.d in
  let hi = p.S.at +. params.P.delta_agr +. (8.0 *. params.P.d) in
  List.find_opt
    (fun (e : H.Metrics.episode) ->
      e.H.Metrics.g = p.S.g
      &&
      let t = H.Metrics.first_return e in
      t >= lo && t <= hi)
    episodes

let run ?(config = default_config) spec =
  let params = Spec.params spec in
  let d = params.P.d in
  let sc = Spec.to_scenario spec in
  (* Service specs run with the driver attached: the workload generates the
     proposals at runtime (they land in [proposal_results] like scheduled
     ones) and the service report feeds the overload checks below. *)
  let svc = ref None in
  let res =
    match spec.Spec.service with
    | None -> H.Runner.run sc
    | Some w ->
        H.Runner.run
          ~on_driver:(fun drv ->
            svc := Some (Svc.attach ~seed:spec.Spec.seed w drv))
          sc
  in
  let failures = ref [] in
  let add oracle fmt =
    Printf.ksprintf (fun detail -> failures := { oracle; detail } :: !failures) fmt
  in
  (* Conservation: exact accounting identity, scenario class irrelevant. *)
  let conservation = H.Checks.network_conservation res in
  if not conservation.H.Checks.ok then
    add "conservation" "attempts=%d but delivered+dropped+in_flight=%.0f"
      (res.H.Runner.messages_sent + res.H.Runner.messages_duplicated)
      conservation.H.Checks.measured;
  (* Agreement, per coherent interval: the paper owes it inside every
     maximal coherent interval from Delta_stb after the interval opens (from
     its start when nothing preceded it). This subsumes the old single
     "after the last disruption" check — incoherent tails (unrecovered
     crashes, unmasked persistent link faults) simply contribute no interval
     — and additionally catches violations in early coherent windows that a
     last-disruption-only cutoff would skate past. *)
  let stb = params.P.delta_stb *. config.recovery_stb_scale in
  let reports =
    if config.assume_coherent then [] else H.Checks.recovery_report ~stb res
  in
  if config.assume_coherent then
    List.iter
      (fun v -> add "agreement" "%s" v)
      (H.Checks.pairwise_agreement ~after:(stabilized_after spec) res)
  else
    List.iteri
      (fun idx (r : H.Checks.episode_report) ->
        List.iter
          (fun v ->
            add "agreement" "interval %d [%g, %g): %s" idx
              r.H.Checks.interval.H.Coherence.t_start
              r.H.Checks.interval.H.Coherence.t_end v)
          r.H.Checks.violations;
        match r.H.Checks.recovery_time with
        | Some rt when rt > params.P.delta_stb *. (1.0 +. 1e-9) ->
            add "recovery-time"
              "interval %d: measured stabilization %.3fs exceeds Delta_stb %.3fs"
              idx rt params.P.delta_stb
        | Some _ | None -> ())
      reports;
  (* "Reliable" specs — nothing ever invalidated the channel abstraction:
     calm, or every event is a transport-masked link fault. Validity,
     Termination and the decision-skew deadline are promised over the whole
     run there. Under disruptions, the same per-proposal checks apply to
     proposals whose full termination window fits inside the checked part of
     one coherent interval — that is exactly where §6.1 re-entitles them. *)
  let reliable =
    config.assume_coherent
    || not (List.exists (Spec.disruptive spec) spec.Spec.events)
  in
  let window = params.P.delta_agr +. (8.0 *. d) in
  (* The correct set a proposal's checks should use: the interval's cast
     (pre-Reform windows must not demand returns from a node that only
     rejoined later). [None] when the proposal is not entitled. *)
  let entitlement (p : S.proposal) =
    if p.S.at +. window > spec.Spec.horizon then None
    else if reliable then Some res.H.Runner.correct
    else
      List.find_map
        (fun (r : H.Checks.episode_report) ->
          let iv = r.H.Checks.interval in
          if
            p.S.at >= r.H.Checks.checked_from
            && p.S.at +. window <= iv.H.Coherence.t_end
          then Some iv.H.Coherence.correct
          else None)
        reports
  in
  (* Invariant monitors stay calm-only: they watch per-message causality at
     a granularity where even masked link faults (residual loss, late
     retransmits) are observable without being protocol violations. *)
  if spec.Spec.events = [] && config.check_invariants then
    List.iter (fun v -> add "invariants" "%s" v) (H.Invariants.check res);
  if config.check_timeliness then begin
    let episodes = H.Metrics.episodes res in
    (* Service jobs carry unique per-attempt values, so their checks match
       returns by value. The episode machinery must NOT be used for them:
       episodes cluster returns per General with gap [Delta_agr], but the
       service re-initiates the same General as fast as [Delta_0]
       (< Delta_agr), so back-to-back jobs merge into one episode and the
       per-episode validity check would cry wolf over the (intentionally)
       divergent job values. *)
    let svc_decisions : (string * int, float) Hashtbl.t = Hashtbl.create 256 in
    List.iter
      (fun (r : Ty.return_info) ->
        match r.Ty.outcome with
        | Ty.Decided v when Svc.is_service_value v ->
            (* returns are in rt order; keep the first per (value, node) *)
            if not (Hashtbl.mem svc_decisions (v, r.Ty.node)) then
              Hashtbl.add svc_decisions (v, r.Ty.node) r.Ty.rt_ret
        | _ -> ())
      res.H.Runner.returns;
    (* Bounded memory's sacrifice: when a full table evicts G's live session
       at some node, that node loses the job — by design, not by bug. The
       termination check excuses exactly those (node, G) pairs, per eviction
       time; agreement and the service-mode invariants still apply. *)
    let svc_evictions : (int * int, float list) Hashtbl.t = Hashtbl.create 64 in
    if spec.Spec.service <> None then
      List.iter
        (fun (e : Tr.entry) ->
          match e.Tr.event with
          | Tr.Session_evict { g } ->
              let key = (e.Tr.node, g) in
              let ts =
                Option.value ~default:[] (Hashtbl.find_opt svc_evictions key)
              in
              Hashtbl.replace svc_evictions key (e.Tr.time :: ts)
          | _ -> ())
        (Tr.to_list res.H.Runner.trace);
    let evicted_in_window ~g ~at node =
      match Hashtbl.find_opt svc_evictions (node, g) with
      | None -> false
      | Some ts ->
          List.exists (fun t -> t >= at -. d && t <= at +. window) ts
    in
    List.iter
      (fun ((p : S.proposal), outcome) ->
        match outcome with
        | H.Runner.Refused _ | H.Runner.No_general -> ()
        | H.Runner.Accepted when Svc.is_service_value p.S.v -> (
            match entitlement p with
            | None -> ()
            | Some correct ->
                let times =
                  List.map
                    (fun node ->
                      (node, Hashtbl.find_opt svc_decisions (p.S.v, node)))
                    correct
                in
                let missing, decided =
                  List.partition (fun (_, t) -> t = None) times
                in
                let excused node = evicted_in_window ~g:p.S.g ~at:p.S.at node in
                let missing =
                  List.filter (fun (node, _) -> not (excused node)) missing
                in
                let late =
                  List.filter
                    (fun (node, t) ->
                      match t with
                      | Some rt ->
                          (rt < p.S.at -. d || rt > p.S.at +. window)
                          && not (excused node)
                      | None -> false)
                    decided
                in
                if missing <> [] || late <> [] then
                  add "service-termination"
                    "G=%d job %S at %g: %d node(s) missing, %d late" p.S.g
                    p.S.v p.S.at (List.length missing) (List.length late)
                else begin
                  (* skew over on-time decisions only: an excused node that
                     decided late (evicted, then recreated by a retransmit)
                     is not held to the deadline either *)
                  let ts =
                    List.filter
                      (fun rt -> rt >= p.S.at -. d && rt <= p.S.at +. window)
                      (List.filter_map snd decided)
                  in
                  let lo = List.fold_left Float.min infinity ts in
                  let hi = List.fold_left Float.max neg_infinity ts in
                  let bound = 3.0 *. d *. config.skew_deadline_scale in
                  if hi -. lo > bound +. 1e-12 then
                    add "timeliness-1a"
                      "G=%d service decision skew %.3fd exceeds deadline %.3fd"
                      p.S.g
                      ((hi -. lo) /. d)
                      (bound /. d)
                end)
        | H.Runner.Accepted -> (
            match entitlement p with
            | None -> ()
            | Some correct -> (
                match episode_for episodes p ~params with
                | None ->
                    add "termination"
                      "G=%d accepted %S at %g but no correct node returned" p.S.g
                      p.S.v p.S.at
                | Some e ->
                    if not (H.Checks.validity ~correct ~v:p.S.v e) then
                      add "validity"
                        "G=%d proposed %S at %g: not every correct node decided it"
                        p.S.g p.S.v p.S.at;
                    let skew = H.Metrics.decision_skew res e in
                    let bound = 3.0 *. d *. config.skew_deadline_scale in
                    if skew > bound +. 1e-12 then
                      add "timeliness-1a"
                        "G=%d decision skew %.3fd exceeds deadline %.3fd" p.S.g
                        (skew /. d) (bound /. d))))
      res.H.Runner.proposal_results
  end;
  (* Service-mode checks, over the typed trace: the queue bound is a hard
     invariant, shedding is legal only under admission pressure, and every
     degraded episode must drain back to normal before the horizon (the
     generator leaves 1.5 Delta_stb of slack after arrivals stop to make
     that provable). *)
  (match spec.Spec.service with
  | None -> ()
  | Some w ->
      let degraded = ref false in
      let depth = ref 0 in
      List.iter
        (fun (e : Tr.entry) ->
          match e.Tr.event with
          | Tr.Service_mode { degraded = dg; _ } -> degraded := dg
          | Tr.Service_queue { depth = q; _ } ->
              depth := q;
              if q > w.W.queue_cap then
                add "service-queue"
                  "retry queue depth %d exceeds cap %d at %g" q w.W.queue_cap
                  e.Tr.time
          | Tr.Service_shed { reason; g } -> (
              match reason with
              | "degraded" | "watermark" ->
                  if not !degraded then
                    add "service-shed"
                      "shed(%s) of G=%d at %g outside degraded mode" reason g
                      e.Tr.time
              | _ ->
                  if !depth < w.W.queue_cap then
                    add "service-shed"
                      "shed(queue-full) of G=%d at %g with queue at %d/%d" g
                      e.Tr.time !depth w.W.queue_cap)
          | _ -> ())
        (Tr.to_list res.H.Runner.trace);
      if !degraded then
        add "service-drain"
          "degraded mode still engaged at the horizon (no drain)";
      (* cross-check the trace walk against the driver's own bookkeeping *)
      match !svc with
      | Some s ->
          let r = Svc.report s in
          if r.Svc.unresolved_degraded > 0 then
            add "service-drain" "%d degraded episode(s) never closed"
              r.Svc.unresolved_degraded
      | None -> ());
  (res, { digest = H.Checks.result_digest res; failures = List.rev !failures })
