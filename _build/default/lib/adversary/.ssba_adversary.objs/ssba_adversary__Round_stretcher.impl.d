lib/adversary/round_stretcher.ml: List Ssba_core Ssba_net Ssba_sim
