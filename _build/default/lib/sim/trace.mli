(** Structured run traces: timestamped, per-node, kind-tagged entries. *)

type entry = {
  time : float;  (** simulator real time *)
  node : int;  (** -1 for system/network events *)
  kind : string;
  detail : string;
}

type t

(** [create ?enabled ()] builds a trace; disabled traces drop all records. *)
val create : ?enabled:bool -> unit -> t

val enable : t -> unit
val disable : t -> unit
val is_enabled : t -> bool
val record : t -> time:float -> node:int -> kind:string -> detail:string -> unit
val clear : t -> unit

(** Number of entries recorded since the last [clear]. *)
val count : t -> int

(** Entries in chronological order. *)
val to_list : t -> entry list

(** Chronological entries matching the given node and/or kind. *)
val filter : ?node:int -> ?kind:string -> t -> entry list

val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
