lib/sim/trace.ml: Buffer Float Fmt Json List Option Printf String
