(* Total-order replicated log (state machine replication) atop recurrent
   ss-Byz-Agree.

   The Byzantine Generals problem was introduced as the core of fault-
   tolerant state machine replication; this module closes the loop by
   building an SMR log from the paper's protocol, exercising its recurrent /
   rotating-General mode like Ssba_pulse does for pulses:

   - the log is a sequence of numbered slots, filled strictly in order;
   - slot i is normally proposed by its owner, node (i mod n), with the
     command at the head of its local submission queue (or a no-op); the
     agreement value encodes slot, proposer and command;
   - a timeout ladder identical to the pulse layer's lets node (i + j) mod n
     take the slot over after cycle + j * patience on its own clock, so
     silent or Byzantine owners cannot stall the log;
   - a node commits slot i when it decides the slot's agreement. Per-slot
     Agreement (Theorem 3) makes the committed value identical at every
     correct node, and the in-order slot discipline turns that into an
     identical command sequence — total-order broadcast.

   Commands are not retried automatically across slots: a submission whose
   slot was taken over by the ladder stays queued and rides the node's next
   owned or taken-over slot. *)

open Ssba_core.Types
module Node = Ssba_core.Node
module Params = Ssba_core.Params

type entry = {
  slot : int;
  proposer : node_id;  (* as encoded in the decided value *)
  cmd : value;
  tau : float;  (* local commit time *)
  rt : float;  (* simulator real time of the commit *)
}

type t = {
  node : Node.t;
  cycle_len : float;
  patience : float;
  mutable next_slot : int;
  mutable log : entry list;  (* newest first *)
  mutable queue : value list;  (* local submissions, oldest first *)
  mutable on_commit : entry -> unit;
  mutable epoch : int;  (* invalidates stale ladders *)
}

let noop = "noop"

let value_of ~slot ~proposer cmd = Printf.sprintf "slot-%d:%d:%s" slot proposer cmd

(* Parse "slot-<i>:<proposer>:<cmd>"; commands may contain ':'. *)
let parse v =
  match String.index_opt v ':' with
  | Some c1 when String.length v > 5 && String.sub v 0 5 = "slot-" -> (
      let slot_s = String.sub v 5 (c1 - 5) in
      match String.index_from_opt v (c1 + 1) ':' with
      | Some c2 -> (
          let prop_s = String.sub v (c1 + 1) (c2 - c1 - 1) in
          let cmd = String.sub v (c2 + 1) (String.length v - c2 - 1) in
          match (int_of_string_opt slot_s, int_of_string_opt prop_s) with
          | Some slot, Some proposer when slot >= 0 && proposer >= 0 ->
              Some (slot, proposer, cmd)
          | _ -> None)
      | None -> None)
  | _ -> None

let log t = List.rev t.log

(* The committed command sequence, no-ops removed. *)
let commands t =
  List.filter_map
    (fun e -> if String.equal e.cmd noop then None else Some e.cmd)
    (log t)

let next_slot t = t.next_slot
let pending t = List.length t.queue
let set_on_commit t f = t.on_commit <- f
let min_cycle = Ssba_pulse.Pulse_sync.min_cycle

let submit t cmd =
  if String.contains cmd '\n' then invalid_arg "Replicated_log.submit: newline";
  t.queue <- t.queue @ [ cmd ]

(* Propose slot [i] with our queue head (committing pops it only on commit,
   so a lost proposal keeps the command queued). *)
let propose_slot t i =
  let cmd = match t.queue with c :: _ -> c | [] -> noop in
  match
    Node.propose t.node (value_of ~slot:i ~proposer:(Node.id t.node) cmd)
  with
  | Ok () -> ()
  | Error _ -> ()  (* rate-limited/busy; the ladder retries *)

(* Takeover ladder for slot [i], exactly like the pulse layer's: candidate j
   (node (i + j) mod n) fires after cycle + j * patience on its own clock. *)
let arm_ladder t i =
  let epoch = t.epoch in
  let n = (Node.params t.node).Params.n in
  let after_local dl f =
    Ssba_sim.Engine.schedule_after (Node.engine t.node)
      ~delay:(Ssba_sim.Clock.real_of_local_duration (Node.clock t.node) dl)
      f
  in
  for j = 0 to n - 1 do
    if (i + j) mod n = Node.id t.node then
      after_local
        (t.cycle_len +. (float_of_int j *. t.patience))
        (fun () -> if t.epoch = epoch && t.next_slot <= i then propose_slot t i)
  done

let commit t ~slot ~proposer ~cmd ~tau ~rt =
  let e = { slot; proposer; cmd; tau; rt } in
  t.log <- e :: t.log;
  t.next_slot <- slot + 1;
  t.epoch <- t.epoch + 1;
  (* our command was committed: release it from the queue *)
  (if proposer = Node.id t.node then
     match t.queue with
     | head :: tl when String.equal head cmd -> t.queue <- tl
     | _ -> ());
  t.on_commit e;
  arm_ladder t (slot + 1)

let handle_return t (r : return_info) =
  match r.outcome with
  | Aborted -> ()
  | Decided v -> (
      match parse v with
      | Some (slot, proposer, cmd) when slot >= t.next_slot ->
          (* slots strictly in order: a decision can only be for the slot
             every correct node is currently waiting on (proposals for later
             slots cannot form before this one commits) *)
          commit t ~slot ~proposer ~cmd ~tau:r.tau_ret ~rt:r.rt_ret
      | Some _ | None -> ())

let create ~node ~cycle_len ?patience () =
  let params = Node.params node in
  if cycle_len < min_cycle params then
    invalid_arg "Replicated_log.create: cycle_len below the safe floor";
  let patience =
    match patience with
    | Some p -> p
    | None -> params.Params.delta_agr +. (20.0 *. params.Params.d)
  in
  let t =
    {
      node;
      cycle_len;
      patience;
      next_slot = 0;
      log = [];
      queue = [];
      on_commit = (fun _ -> ());
      epoch = 0;
    }
  in
  Node.subscribe node (fun r -> handle_return t r);
  t

(* Bootstrap: slot 0's owner proposes right away; ladders cover the rest. *)
let start t =
  if (Node.params t.node).Params.n > 0 && Node.id t.node = 0 then propose_slot t 0;
  arm_ladder t 0
