lib/harness/invariants.ml: Array Float Hashtbl List Metrics Option Printf Runner Scenario Ssba_core Ssba_sim String
