(** Byzantine behaviour framework.

    A behaviour owns one node id and is installed instead of a correct
    protocol node. It gets raw network access — it may send any payload at
    any time, but only under its own authenticated identity (paper §2). *)

open Ssba_core.Types

type env = {
  self : node_id;
  params : Ssba_core.Params.t;
  engine : Ssba_sim.Engine.t;
  rng : Ssba_sim.Rng.t;
  link : message Ssba_net.Link.t;
      (** the same sending surface correct nodes use (network or transport) *)
  clock : Ssba_sim.Clock.t;
}

type t

(** [make ~name install] wraps an installation function, which registers the
    network handler for [env.self] and may schedule autonomous activity. *)
val make : name:string -> (env -> unit) -> t

val name : t -> string
val install : t -> env -> unit

(** {2 Helpers for writing strategies} *)

val send : env -> dst:node_id -> message -> unit
val send_to : env -> dsts:node_id list -> message -> unit

(** Send to every node, including self. *)
val send_all : env -> message -> unit

(** Schedule at an absolute engine time / after a real delay. *)
val at : env -> time:float -> (unit -> unit) -> unit

val after : env -> delay:float -> (unit -> unit) -> unit

(** Repeat forever with the given period (first firing after one period). *)
val every : env -> period:float -> (unit -> unit) -> unit

(** Install the network handler for [env.self]. *)
val on_message : env -> (message Ssba_net.Msg.t -> unit) -> unit

(** Record a typed trace event attributed to [env.self]; custom adversary
    diagnostics go through {!Ssba_sim.Trace.Ext} so rendering stays lazy. *)
val trace : env -> Ssba_sim.Trace.event -> unit

(** A random plausible protocol message drawn over [values] (for fuzzers). *)
val random_message : env -> values:value list -> message
