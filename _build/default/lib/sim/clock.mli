(** Drifting hardware clocks (paper §2, Definition 1).

    A clock maps simulator real time to a node-local reading
    [local(t) = offset + rate * t] with [rate] within [1 ± rho]. Only
    local-time {e intervals} are protocol-meaningful; offsets are arbitrary,
    as after a transient fault. *)

type t

(** [create ~offset ~rate] builds a clock. Raises [Invalid_argument] if
    [rate <= 0]. *)
val create : offset:float -> rate:float -> t

(** Zero offset, unit rate. *)
val perfect : t

(** [random rng ~rho ~max_offset] draws a rate uniform in [1 ± rho] and an
    offset uniform in [± max_offset]. *)
val random : Rng.t -> rho:float -> max_offset:float -> t

(** [read t ~now] is the local reading at real time [now]. *)
val read : t -> now:float -> float

val rate : t -> float
val offset : t -> float

(** Real duration over which [dl] local-time units elapse. *)
val real_of_local_duration : t -> float -> float

(** Local duration that elapses over [dr] real-time units. *)
val local_of_real_duration : t -> float -> float

(** Real time at which the clock reads the given value (inverse of {!read}). *)
val real_time_of_reading : t -> float -> float
