test/test_clock.ml: Alcotest Float Helpers QCheck Ssba_sim
