(* Tests for the harness: runner determinism, episode clustering, metrics,
   the property oracles and table rendering. *)

open Helpers
open Ssba_core
module H = Ssba_harness

let base_scenario ?(seed = 5) ?(proposals = [ { H.Scenario.g = 0; v = "m"; at = 0.05 } ]) () =
  H.Scenario.default ~name:"t" ~seed ~proposals ~horizon:1.0 (Params.default 7)

let test_runner_determinism () =
  let run () =
    let res = H.Runner.run (base_scenario ()) in
    ( List.map
        (fun (r : Types.return_info) -> (r.Types.node, r.Types.outcome, r.Types.rt_ret))
        res.H.Runner.returns,
      res.H.Runner.messages_sent )
  in
  check_bool "same seed, same run" true (run () = run ())

let test_runner_seed_changes_run () =
  let times seed =
    let res = H.Runner.run (base_scenario ~seed ()) in
    List.map (fun (r : Types.return_info) -> r.Types.rt_ret) res.H.Runner.returns
  in
  check_bool "different seeds differ" true (times 1 <> times 2)

let test_proposal_results_recorded () =
  let res = H.Runner.run (base_scenario ()) in
  match res.H.Runner.proposal_results with
  | [ (p, H.Runner.Accepted) ] -> check_str "the proposal" "m" p.H.Scenario.v
  | _ -> Alcotest.fail "expected one successful proposal"

(* Regression: a proposal whose General is Byzantine used to be recorded
   synchronously at build time as [Error Busy] — wrong label, and it jumped
   ahead of chronologically earlier proposals. It must be evaluated at its
   [at] time and keep [proposal_results] in schedule order. *)
let test_proposal_no_general_in_order () =
  let params = Params.default 7 in
  let sc =
    H.Scenario.default ~name:"t" ~seed:5
      ~roles:[ (3, H.Scenario.Byzantine Ssba_adversary.Strategies.silent) ]
      ~proposals:
        [
          { H.Scenario.g = 0; v = "early"; at = 0.05 };
          { H.Scenario.g = 3; v = "byz"; at = 0.10 };
          { H.Scenario.g = 1; v = "late"; at = 0.40 };
        ]
      ~horizon:1.0 params
  in
  let res = H.Runner.run sc in
  match res.H.Runner.proposal_results with
  | [ (p1, o1); (p2, o2); (p3, o3) ] ->
      check_str "chronological first" "early" p1.H.Scenario.v;
      check_str "chronological second" "byz" p2.H.Scenario.v;
      check_str "chronological third" "late" p3.H.Scenario.v;
      check_bool "correct Generals accepted" true
        (o1 = H.Runner.Accepted && o3 = H.Runner.Accepted);
      check_bool "byzantine General labeled No_general" true
        (o2 = H.Runner.No_general)
  | l -> Alcotest.failf "expected 3 proposal results, got %d" (List.length l)

(* Every drained run satisfies the network conservation identity. *)
let test_network_conservation () =
  let res = H.Runner.run (base_scenario ()) in
  let v = H.Checks.network_conservation res in
  check_bool "sent = delivered + dropped + in_flight" true v.H.Checks.ok;
  check_bool "nontrivial run" true (res.H.Runner.messages_sent > 0);
  (* per-node counters landed in the registry *)
  check_bool "node0 proposals counted" true
    (Ssba_sim.Metrics.find_counter res.H.Runner.metrics "node0.proposals"
    = Some 1)

let test_episode_clustering () =
  (* two agreements by the same General, far apart: two episodes *)
  let params = Params.default 7 in
  let sc =
    H.Scenario.default ~name:"t" ~seed:5
      ~proposals:
        [
          { H.Scenario.g = 0; v = "a"; at = 0.05 };
          { H.Scenario.g = 0; v = "b"; at = 0.05 +. (3.0 *. params.Params.delta_agr) };
        ]
      ~horizon:1.0 params
  in
  let res = H.Runner.run sc in
  let eps = H.Metrics.episodes res in
  check_int "two episodes" 2 (List.length eps);
  List.iter
    (fun (e : H.Metrics.episode) -> check_int "seven returns each" 7 (List.length e.H.Metrics.returns))
    eps

let test_metrics_skews () =
  let res = H.Runner.run (base_scenario ()) in
  match H.Metrics.episodes res with
  | [ e ] ->
      let d = (Params.default 7).Params.d in
      check_bool "decision skew positive and bounded" true
        (H.Metrics.decision_skew res e >= 0.0
        && H.Metrics.decision_skew res e <= 3.0 *. d);
      check_bool "anchor skew bounded" true (H.Metrics.anchor_skew res e <= 6.0 *. d);
      check_bool "latency sane" true
        (H.Metrics.latency ~proposed_at:0.05 e > 0.0
        && H.Metrics.latency ~proposed_at:0.05 e < 0.1)
  | _ -> Alcotest.fail "expected one episode"

(* Regression: decision skew is the span of *decision* times only. An abort
   is not a decision (Timeliness-1a bounds decide events), so a mixed
   decide/abort episode — e.g. the block-R knife-edge, fuzz seed 7404
   iteration 173 — must not count the abort's return time. The old metric
   spanned every rt_ret and flagged phantom 19.9d skews. *)
let test_decision_skew_ignores_aborts () =
  let res = H.Runner.run (base_scenario ()) in
  let ret node outcome rt_ret =
    { Types.node; g = 0; outcome; tau_g = 0.0; tau_ret = rt_ret; rt_ret }
  in
  let mixed =
    {
      H.Metrics.g = 0;
      returns =
        [ ret 0 (Types.Decided "v") 0.010; ret 1 Types.Aborted 0.032;
          ret 2 Types.Aborted 0.030 ];
    }
  in
  check_float "single decide, aborts excluded" 0.0
    (H.Metrics.decision_skew res mixed);
  let two_decides =
    {
      H.Metrics.g = 0;
      returns =
        [ ret 0 (Types.Decided "v") 0.010; ret 1 (Types.Decided "v") 0.012;
          ret 2 Types.Aborted 0.030 ];
    }
  in
  check_float "span over decides only" 0.002
    (H.Metrics.decision_skew res two_decides);
  let all_aborted =
    { H.Metrics.g = 0; returns = [ ret 0 Types.Aborted 0.010; ret 1 Types.Aborted 0.030 ] }
  in
  check_float "abort-only episode has no skew" 0.0
    (H.Metrics.decision_skew res all_aborted)

let test_stats_helpers () =
  check_float "mean" 2.0 (H.Metrics.mean [ 1.0; 2.0; 3.0 ]);
  check_float "max" 3.0 (H.Metrics.maximum [ 1.0; 3.0; 2.0 ]);
  check_float "min" 1.0 (H.Metrics.minimum [ 2.0; 1.0; 3.0 ]);
  check_float "median" 2.0 (H.Metrics.percentile 0.5 [ 3.0; 1.0; 2.0 ]);
  check_float "span" 2.0 (H.Metrics.span [ 1.0; 3.0; 2.0 ]);
  check_bool "mean of empty is nan" true (Float.is_nan (H.Metrics.mean []))

let test_checks_agreement_classes () =
  let res = H.Runner.run (base_scenario ()) in
  (match H.Metrics.episodes res with
  | [ e ] -> (
      match H.Checks.agreement ~correct:res.H.Runner.correct e with
      | H.Checks.Unanimous v -> check_str "unanimous m" "m" v
      | _ -> Alcotest.fail "expected unanimity")
  | _ -> Alcotest.fail "expected one episode");
  check_bool "validity" true
    (match H.Metrics.episodes res with
    | [ e ] -> H.Checks.validity ~correct:res.H.Runner.correct ~v:"m" e
    | _ -> false)

let test_checks_detect_divergence () =
  (* hand-craft an episode with divergent decisions and verify the oracle
     flags it *)
  let mk_ret node v =
    {
      Types.node;
      g = 0;
      outcome = Types.Decided v;
      tau_g = 0.0;
      tau_ret = 0.001;
      rt_ret = 0.001;
    }
  in
  let e = { H.Metrics.g = 0; returns = [ mk_ret 1 "a"; mk_ret 2 "b" ] } in
  (match H.Checks.agreement ~correct:[ 1; 2 ] e with
  | H.Checks.Violated _ -> ()
  | _ -> Alcotest.fail "divergence not flagged");
  (* and decided-vs-aborted *)
  let e2 =
    {
      H.Metrics.g = 0;
      returns =
        [
          mk_ret 1 "a";
          { (mk_ret 2 "a") with Types.outcome = Types.Aborted };
        ];
    }
  in
  (match H.Checks.agreement ~correct:[ 1; 2 ] e2 with
  | H.Checks.Violated _ -> ()
  | _ -> Alcotest.fail "decided/aborted mix not flagged");
  (* and a missing correct node *)
  let e3 = { H.Metrics.g = 0; returns = [ mk_ret 1 "a" ] } in
  match H.Checks.agreement ~correct:[ 1; 2 ] e3 with
  | H.Checks.Violated _ -> ()
  | _ -> Alcotest.fail "missing node not flagged"

let test_pairwise_detects_violation () =
  (* run a clean scenario, then splice a conflicting decision into the
     result and check the pairwise oracle trips *)
  let res = H.Runner.run (base_scenario ()) in
  check_bool "clean run passes" true (H.Checks.pairwise_agreement res = []);
  let forged =
    match res.H.Runner.returns with
    | (r : Types.return_info) :: _ ->
        { r with Types.node = (r.Types.node + 1) mod 7; outcome = Types.Decided "other" }
    | [] -> Alcotest.fail "no returns"
  in
  let res' = { res with H.Runner.returns = forged :: res.H.Runner.returns } in
  check_bool "forged divergence detected" true
    (H.Checks.pairwise_agreement res' <> [])

let test_timeliness_verdicts () =
  let res = H.Runner.run (base_scenario ()) in
  match H.Metrics.episodes res with
  | [ e ] ->
      check_bool "1a ok" true (H.Checks.timeliness_1a res e).H.Checks.ok;
      check_bool "1b ok" true (H.Checks.timeliness_1b res e).H.Checks.ok;
      check_bool "1d ok" true (H.Checks.timeliness_1d res e).H.Checks.ok;
      check_bool "3 ok" true (H.Checks.timeliness_3 res e).H.Checks.ok
  | _ -> Alcotest.fail "expected one episode"

let test_table_rendering () =
  let t = H.Table.create [ "col"; "wide column" ] in
  H.Table.add_row t [ "a"; "b" ];
  H.Table.add_row t [ "longer"; "x" ];
  let s = H.Table.render t in
  let lines = String.split_on_char '\n' s in
  check_int "header + separator + 2 rows + trailing" 5 (List.length lines);
  check_bool "separator present" true
    (String.length (List.nth lines 1) > 0 && String.get (List.nth lines 1) 0 = '-')

let test_table_helpers () =
  check_str "f3" "1.500" (H.Table.f3 1.5);
  check_str "ms" "12.000" (H.Table.ms 0.012);
  check_str "in_d" "2.00d" (H.Table.in_d ~d:0.5 1.0);
  check_str "yn" "yes" (H.Table.yn true)

let test_crash_recover_events () =
  let params = Params.default 7 in
  let sc =
    H.Scenario.default ~name:"t" ~seed:5
      ~events:
        [
          H.Scenario.Crash { node = 6; at = 0.01 };
          H.Scenario.Recover { node = 6; at = 0.5 };
        ]
      ~proposals:
        [
          { H.Scenario.g = 0; v = "while-down"; at = 0.05 };
          { H.Scenario.g = 1; v = "after-up"; at = 0.6 };
        ]
      ~horizon:1.0 params
  in
  let res = H.Runner.run sc in
  check_bool "agreement holds across crash/recovery" true
    (H.Checks.pairwise_agreement res = []);
  let decided_by v =
    List.filter
      (fun (r : Types.return_info) -> r.Types.outcome = Types.Decided v)
      res.H.Runner.returns
    |> List.map (fun (r : Types.return_info) -> r.Types.node)
  in
  (* while node 6 is crashed it cannot send, but it still receives; the
     other six surely decide *)
  check_bool "first agreement decided by >= 6" true
    (List.length (decided_by "while-down") >= 6);
  check_bool "second agreement includes node 6" true
    (List.mem 6 (decided_by "after-up"))

let suite =
  [
    case "runner determinism" test_runner_determinism;
    case "seed changes run" test_runner_seed_changes_run;
    case "proposal results" test_proposal_results_recorded;
    case "proposal no-general ordering" test_proposal_no_general_in_order;
    case "network conservation" test_network_conservation;
    case "episode clustering" test_episode_clustering;
    case "metrics skews" test_metrics_skews;
    case "decision skew ignores aborts" test_decision_skew_ignores_aborts;
    case "stats helpers" test_stats_helpers;
    case "agreement classes" test_checks_agreement_classes;
    case "divergence detected" test_checks_detect_divergence;
    case "pairwise oracle detects violations" test_pairwise_detects_violation;
    case "timeliness verdicts" test_timeliness_verdicts;
    case "table rendering" test_table_rendering;
    case "table helpers" test_table_helpers;
    case "crash/recover events" test_crash_recover_events;
  ]
