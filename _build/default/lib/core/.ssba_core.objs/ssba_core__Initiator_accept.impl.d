lib/core/initiator_accept.ml: Float Hashtbl List Option Params Printf Recv_log Ssba_sim String Types
