examples/recurrent_agreement.mli:
