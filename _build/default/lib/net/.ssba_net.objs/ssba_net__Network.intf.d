lib/net/network.mli: Delay Msg Ssba_sim
