(** The [msgd-broadcast] primitive (paper Figure 3, §5): a message-driven
    Reliable Broadcast whose round deadlines, anchored at the local estimate
    [tau_g] of the General's initiation, are upper bounds only — the
    primitive advances at actual network speed. Satisfies [TPS-1]–[TPS-4]
    once the system is stable and [n > 3f]. *)

open Types

type t

val create : ctx:ctx -> g:general -> t

(** Callback fired when a triplet [(p, v, k)] is accepted. *)
val set_on_accept : t -> (p:node_id -> v:value -> k:int -> unit) -> unit

(** Callback fired when a node is first identified as a broadcaster (Y1). *)
val set_on_broadcaster : t -> (node_id -> unit) -> unit

(** Block V: broadcast [(self, v, k)] to all nodes. *)
val broadcast : t -> v:value -> k:int -> unit

(** Define the anchor [tau_g] (on I-accept) and replay logged messages. *)
val set_anchor : t -> float -> unit

val anchor : t -> float option

(** Handle an init/echo/init'/echo' arrival. Messages are logged even before
    the anchor exists; conditions are evaluated once it does. Round tags
    outside [1, f+1] are dropped. *)
val handle_message :
  t -> sender:node_id -> kind:mb_kind -> p:node_id -> v:value -> k:int -> unit

(** Nodes the Y-block identified as broadcasters ([TPS-4]). *)
val broadcaster_count : t -> int

val broadcasters : t -> node_id list

(** Figure 3's cleanup: decay anything older than [(2f+3) * Phi]. *)
val cleanup : t -> unit

(** Full per-agreement reset (3d after the agreement returns). *)
val reset : t -> unit

(** Indistinguishable from a freshly created instance (no trips, no
    broadcasters, no anchor) — eligible for session garbage collection. *)
val quiescent : t -> bool

(** Append a canonical state fingerprint (sorted trip keys, exact float
    text) — the model checker's visited-set encoding. *)
val fingerprint : Buffer.t -> t -> unit

(** Transient-fault injection. *)
val scramble : Ssba_sim.Rng.t -> values:value list -> t -> unit
