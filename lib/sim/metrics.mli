(** Registry of named monotonic counters and float gauges.

    The engine owns one registry per simulation; the network, engine and node
    layers feed it. Handles are find-or-created by name once and then updated
    through their record fields, so a hot-path update is a single store.

    Naming convention: dot-separated components with refining suffixes, e.g.
    [net.sent], [net.sent.echo], [net.in_flight], [engine.events],
    [node3.returns.decided]. *)

type t
type counter
type gauge

val create : unit -> t

(** Find-or-create. Raises [Invalid_argument] if the name is already
    registered as the other metric class. *)
val counter : t -> string -> counter

val gauge : t -> string -> gauge

(** Monotonic increment ([by] defaults to 1, must be >= 0). *)
val incr : ?by:int -> counter -> unit

val value : counter -> int
val counter_name : counter -> string

val set : gauge -> float -> unit
val add : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

val find_counter : t -> string -> int option
val find_gauge : t -> string -> float option

(** Zero every metric, keeping registrations (handles stay valid). *)
val reset : t -> unit

(** Zero a single handle (scoped reset for one substrate's own metrics). *)
val reset_counter : counter -> unit

val reset_gauge : gauge -> unit

(** All metrics as (name, value), in ascending [String.compare] order of
    the name — an explicit, monomorphic ordering (pinned by a test), never
    the registration or hash order. *)
val to_list : t -> (string * float) list

(** One JSON object per line ({i metric}, {i type}, {i value}), in
    registration order so exports of the same scenario can be diffed. *)
val to_jsonl : t -> string

val pp : Format.formatter -> t -> unit
