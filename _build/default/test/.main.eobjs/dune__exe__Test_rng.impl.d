test/test_rng.ml: Alcotest Array Helpers List Printf QCheck Ssba_sim
