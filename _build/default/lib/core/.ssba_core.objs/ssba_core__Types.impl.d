lib/core/types.ml: Fmt Params String
