(* Differential tests for the batched event queue.

   [Ref_queue] below is the pre-batching per-entry event queue, verbatim —
   the implementation every pinned corpus digest was recorded under. The
   model test drives random op sequences (singles, fan-out batches, pops,
   clears) through both queues, arming each batch in the current queue as one
   descriptor while feeding the reference the same (at, seq) pairs as
   individual entries. Pop order must match key for key AND closure for
   closure — in particular across fan-out boundaries, where a batch sub-event
   and a plain entry share an [at] and only the seq tie-break separates
   them. *)

open Helpers
module Q = Ssba_sim.Event_queue

(* ----- the per-entry reference, verbatim from the pre-batching tree ----- *)

module Ref_queue = struct
  let nop () = ()

  type t = {
    mutable ats : float array;
    mutable seqs : int array;
    mutable runs : (unit -> unit) array;
    mutable size : int;
  }

  let create ?(capacity = 64) () =
    let capacity = max capacity 1 in
    {
      ats = Array.make capacity 0.0;
      seqs = Array.make capacity 0;
      runs = Array.make capacity nop;
      size = 0;
    }

  let size t = t.size
  let is_empty t = t.size = 0

  let grow t =
    let cap = 2 * Array.length t.ats in
    let ats = Array.make cap 0.0 in
    let seqs = Array.make cap 0 in
    let runs = Array.make cap nop in
    Array.blit t.ats 0 ats 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.runs 0 runs 0 t.size;
    t.ats <- ats;
    t.seqs <- seqs;
    t.runs <- runs

  let push t ~at ~seq run =
    if t.size = Array.length t.ats then grow t;
    let i = ref t.size in
    t.size <- t.size + 1;
    let continue = ref true in
    while !continue && !i > 0 do
      let parent = (!i - 1) / 2 in
      let pat = Array.unsafe_get t.ats parent in
      if pat > at || (pat = at && Array.unsafe_get t.seqs parent > seq) then begin
        Array.unsafe_set t.ats !i pat;
        Array.unsafe_set t.seqs !i (Array.unsafe_get t.seqs parent);
        Array.unsafe_set t.runs !i (Array.unsafe_get t.runs parent);
        i := parent
      end
      else continue := false
    done;
    Array.unsafe_set t.ats !i at;
    Array.unsafe_set t.seqs !i seq;
    Array.unsafe_set t.runs !i run

  let min_at t =
    if t.size = 0 then invalid_arg "Ref_queue.min_at: empty";
    t.ats.(0)

  let pop_run t =
    if t.size = 0 then invalid_arg "Ref_queue.pop_run: empty";
    let top = t.runs.(0) in
    let last = t.size - 1 in
    t.size <- last;
    if last = 0 then t.runs.(0) <- nop
    else begin
      let at = Array.unsafe_get t.ats last in
      let seq = Array.unsafe_get t.seqs last in
      let run = Array.unsafe_get t.runs last in
      Array.unsafe_set t.runs last nop;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 in
        if l >= last then continue := false
        else begin
          let r = l + 1 in
          let c =
            if r < last then begin
              let lat = Array.unsafe_get t.ats l
              and rat = Array.unsafe_get t.ats r in
              if
                rat < lat
                || rat = lat
                   && Array.unsafe_get t.seqs r < Array.unsafe_get t.seqs l
              then r
              else l
            end
            else l
          in
          let cat = Array.unsafe_get t.ats c in
          if cat < at || (cat = at && Array.unsafe_get t.seqs c < seq) then begin
            Array.unsafe_set t.ats !i cat;
            Array.unsafe_set t.seqs !i (Array.unsafe_get t.seqs c);
            Array.unsafe_set t.runs !i (Array.unsafe_get t.runs c);
            i := c
          end
          else continue := false
        end
      done;
      Array.unsafe_set t.ats !i at;
      Array.unsafe_set t.seqs !i seq;
      Array.unsafe_set t.runs !i run
    end;
    top

  let clear t =
    Array.fill t.runs 0 t.size nop;
    t.size <- 0
end

(* ----- driving both queues in lock-step --------------------------------- *)

(* One world: the current queue, the reference, a shared seq counter and a
   shared execution log (each closure appends its seq when fired). *)
type world = {
  q : Q.t;
  r : Ref_queue.t;
  mutable seq : int;
  mutable ran_q : int list;  (* newest first *)
  mutable ran_r : int list;
}

let make_world () =
  {
    q = Q.create ~capacity:1 ();
    r = Ref_queue.create ~capacity:1 ();
    seq = 0;
    ran_q = [];
    ran_r = [];
  }

let push_single w at =
  let s = w.seq in
  w.seq <- s + 1;
  Q.push w.q ~at ~seq:s (fun () -> w.ran_q <- s :: w.ran_q);
  Ref_queue.push w.r ~at ~seq:s (fun () -> w.ran_r <- s :: w.ran_r)

(* Arm [ats] as ONE descriptor in the current queue (sorted by (at, seq), as
   the network does) and as per-entry pushes in the reference. Seqs are
   assigned in receiver order BEFORE sorting — exactly the per-entry
   scheme's assignment, which the batched network reproduces via
   [Engine.next_seq]. *)
let push_fanout w ats =
  let keyed = List.map (fun at -> let s = w.seq in w.seq <- s + 1; (at, s)) ats in
  List.iter
    (fun (at, s) ->
      Ref_queue.push w.r ~at ~seq:s (fun () -> w.ran_r <- s :: w.ran_r))
    keyed;
  let sorted =
    List.sort
      (fun (a1, s1) (a2, s2) ->
        if a1 < a2 then -1
        else if a1 > a2 then 1
        else Int.compare s1 s2)
      keyed
  in
  let b = Q.make_batch ~capacity:(List.length sorted) () in
  List.iteri
    (fun i (at, s) ->
      b.Q.b_ats.(i) <- at;
      b.Q.b_seqs.(i) <- s)
    sorted;
  let seq_of = Array.of_list (List.map snd sorted) in
  b.Q.b_count <- List.length sorted;
  b.Q.b_next <- 0;
  b.Q.b_fire <- (fun i -> w.ran_q <- seq_of.(i) :: w.ran_q);
  Q.push_batch w.q b

let pop_both w =
  let qe = Q.is_empty w.q and re = Ref_queue.is_empty w.r in
  check_bool "emptiness agrees" re qe;
  if not qe then begin
    check_float "min_at agrees" (Ref_queue.min_at w.r) (Q.min_at w.q);
    (Q.pop_run w.q) ();
    (Ref_queue.pop_run w.r) ()
  end

let drain_both w =
  while not (Q.is_empty w.q) || not (Ref_queue.is_empty w.r) do
    pop_both w
  done

(* ----- the random-op differential model --------------------------------- *)

type op = Single of float | Fanout of float list | Pop | Clear

let gen_ops =
  QCheck.Gen.(
    list
      (frequency
         [
           (* a coarse time grid maximises equal-(at) collisions between
              batch sub-events and plain entries *)
           (4, map (fun i -> Single (float_of_int i /. 4.0)) (int_bound 8));
           ( 4,
             map
               (fun l -> Fanout (List.map (fun i -> float_of_int i /. 4.0) l))
               (list_size (int_range 1 6) (int_bound 8)) );
           (4, return Pop);
           (1, return Clear);
         ]))

let print_ops ops =
  String.concat ";"
    (List.map
       (function
         | Single at -> Printf.sprintf "single %.2f" at
         | Fanout ats ->
             Printf.sprintf "fanout[%s]"
               (String.concat "," (List.map (Printf.sprintf "%.2f") ats))
         | Pop -> "pop"
         | Clear -> "clear")
       ops)

let arb_ops = QCheck.make ~print:print_ops gen_ops

let prop_differential =
  QCheck.Test.make
    ~name:"batched queue pops byte-identically to the per-entry reference"
    ~count:500 arb_ops (fun ops ->
      let w = make_world () in
      List.iter
        (function
          | Single at -> push_single w at
          | Fanout ats -> push_fanout w ats
          | Pop -> pop_both w
          | Clear ->
              Q.clear w.q;
              Ref_queue.clear w.r)
        ops;
      Q.size w.q = Ref_queue.size w.r
      &&
      (drain_both w;
       (* identical execution order, including every equal-key tie *)
       w.ran_q = w.ran_r))

(* ----- equal-key FIFO stability across a fan-out boundary, pinned ------- *)

let test_fifo_across_fanout () =
  let w = make_world () in
  push_single w 1.0;
  (* seq 0 *)
  push_fanout w [ 1.0; 1.0; 0.5 ];
  (* seqs 1 2 3 *)
  push_single w 1.0;
  (* seq 4 *)
  push_fanout w [ 0.5; 1.0 ];
  (* seqs 5 6 *)
  drain_both w;
  check_bool "reference FIFO order" true
    (List.rev w.ran_r = [ 3; 5; 0; 1; 2; 4; 6 ]);
  check_bool "batched queue interleaves identically" true
    (w.ran_q = w.ran_r)

(* ----- capacity retention across clear, under armed descriptors --------- *)

(* Companion to the PR-1 Heap.clear pin: [clear] must release event and batch
   references but keep the grown backing arrays, including when armed
   fan-out descriptors are in the heap — a clear-per-scenario driver
   (campaign reuse) would otherwise re-grow from scratch every run. *)
let test_clear_keeps_capacity_under_fanout () =
  let w = make_world () in
  for _ = 1 to 40 do
    push_fanout w [ 1.0; 2.0; 3.0 ]
  done;
  for i = 0 to 127 do
    push_single w (float_of_int i)
  done;
  let cap = Q.capacity w.q in
  check_bool "queue grew past the initial hint" true (cap > 1);
  let fired = ref false in
  let b = Q.make_batch ~capacity:2 () in
  b.Q.b_ats.(0) <- 1.0;
  b.Q.b_seqs.(0) <- w.seq;
  b.Q.b_count <- 1;
  b.Q.b_next <- 0;
  b.Q.b_fire <- (fun _ -> fired := true);
  Q.push_batch w.q b;
  Q.clear w.q;
  Ref_queue.clear w.r;
  check_bool "cleared" true (Q.is_empty w.q);
  check_int "capacity retained after clear" cap (Q.capacity w.q);
  check_bool "cleared batch closures did not fire" false !fired;
  (* the dropped descriptor is re-armable and the queue works after clear *)
  Q.push_batch w.q b;
  Q.push w.q ~at:7.0 ~seq:(w.seq + 1) (fun () -> ());
  check_int "batch + single pending" 2 (Q.size w.q);
  Q.pop_invoke w.q;
  check_bool "re-armed descriptor fired" true !fired;
  Q.pop_invoke w.q;
  check_bool "drained" true (Q.is_empty w.q)

let suite =
  [
    Helpers.qcheck prop_differential;
    case "equal-key FIFO across fan-out boundaries" test_fifo_across_fanout;
    case "clear keeps capacity under armed fan-outs"
      test_clear_keeps_capacity_under_fanout;
  ]
