(* Tests for the pulse-synchronization layer. *)

open Helpers
open Ssba_core
module Pulse = Ssba_pulse.Pulse_sync

let mk ?(n = 7) ?(seed = 11) ?(byz = []) () =
  let c = Cluster.make ~n ~seed ~skip:byz () in
  let layers =
    List.init n (fun id -> id)
    |> List.filter_map (fun id ->
           if List.mem id byz then None
           else
             Some
               (Pulse.create
                  ~node:(Cluster.node c id)
                  ~cycle_len:(1.2 *. Pulse.min_cycle c.Cluster.params)
                  ()))
  in
  (c, layers)

let pulse_rts layers cycle =
  List.filter_map
    (fun layer ->
      List.find_opt (fun (p : Pulse.pulse) -> p.Pulse.cycle = cycle) (Pulse.pulses layer)
      |> Option.map (fun (p : Pulse.pulse) -> p.Pulse.rt))
    layers

let test_values () =
  check_str "encode" "pulse-7" (Pulse.value_of_cycle 7);
  check_bool "decode" true (Pulse.cycle_of_value "pulse-12" = Some 12);
  check_bool "garbage" true (Pulse.cycle_of_value "nonsense" = None);
  check_bool "negative" true (Pulse.cycle_of_value "pulse--3" = None);
  check_bool "empty" true (Pulse.cycle_of_value "" = None)

let test_min_cycle_enforced () =
  let c = Cluster.make ~n:7 () in
  match
    Pulse.create ~node:(Cluster.node c 0)
      ~cycle_len:(0.5 *. Pulse.min_cycle c.Cluster.params)
      ()
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undersized cycle accepted"

let test_cycles_progress () =
  let c, layers = mk () in
  List.iter Pulse.start layers;
  Cluster.run ~until:2.0 c;
  List.iter
    (fun layer ->
      check_bool "several cycles fired" true (Pulse.next_cycle layer >= 4))
    layers

let test_skew_bound () =
  let c, layers = mk () in
  List.iter Pulse.start layers;
  Cluster.run ~until:2.0 c;
  let d = c.Cluster.params.Params.d in
  let max_cycle =
    List.fold_left (fun acc l -> max acc (Pulse.next_cycle l - 1)) 0 layers
  in
  check_bool "at least 3 full cycles" true (max_cycle >= 3);
  for cyc = 0 to max_cycle - 1 do
    match pulse_rts layers cyc with
    | [] -> ()
    | first :: _ as rts ->
        let span =
          List.fold_left Float.max first rts -. List.fold_left Float.min first rts
        in
        check_bool
          (Printf.sprintf "cycle %d skew <= 3d" cyc)
          true
          (span <= (3.0 *. d) +. 1e-9)
  done

let test_byzantine_general_skipped () =
  (* node 1's turns (cycles 1, 8, ...) are covered by the timeout ladder *)
  let c, layers = mk ~byz:[ 1 ] () in
  List.iter Pulse.start layers;
  Cluster.run ~until:3.0 c;
  List.iter
    (fun layer ->
      check_bool "progressed past the Byzantine turn" true (Pulse.next_cycle layer > 2))
    layers;
  check_int "cycle 1 fired at all live nodes" 6 (List.length (pulse_rts layers 1))

let test_all_nodes_fire_every_cycle () =
  let c, layers = mk () in
  List.iter Pulse.start layers;
  Cluster.run ~until:2.0 c;
  let complete =
    List.fold_left (fun acc l -> min acc (Pulse.next_cycle l - 1)) max_int layers
  in
  for cyc = 0 to complete - 1 do
    check_int (Printf.sprintf "cycle %d at all 7" cyc) 7
      (List.length (pulse_rts layers cyc))
  done

let test_on_pulse_callback () =
  let c, layers = mk () in
  let count = ref 0 in
  List.iter (fun l -> Pulse.set_on_pulse l (fun _ -> incr count)) layers;
  List.iter Pulse.start layers;
  Cluster.run ~until:1.0 c;
  check_bool "callbacks fired" true (!count > 0)

let suite =
  [
    case "value encoding" test_values;
    case "min cycle enforced" test_min_cycle_enforced;
    case "cycles progress" test_cycles_progress;
    case "skew bound 3d" test_skew_bound;
    case "Byzantine General skipped" test_byzantine_general_skipped;
    case "all nodes fire every cycle" test_all_nodes_fire_every_cycle;
    case "on_pulse callback" test_on_pulse_callback;
  ]

let test_pulses_resume_after_scramble () =
  (* transient fault mid-cycling: scramble all node state, then pulses must
     resume within a stabilization period, with the skew bound restored *)
  let c, layers = mk ~seed:17 () in
  List.iter Pulse.start layers;
  let params = c.Cluster.params in
  let t_scramble = 0.8 in
  Ssba_sim.Engine.schedule c.Cluster.engine ~at:t_scramble (fun () ->
      let rng = Ssba_sim.Rng.create 5 in
      Array.iter
        (function
          | Some node -> Node.scramble rng ~values:[ "pulse-3"; "x" ] node
          | None -> ())
        c.Cluster.nodes);
  let horizon = t_scramble +. params.Params.delta_stb +. 2.0 in
  Cluster.run ~until:horizon c;
  (* pulses fired after stabilization *)
  let stable_from = t_scramble +. params.Params.delta_stb in
  let late_pulses =
    List.concat_map
      (fun layer ->
        List.filter (fun (p : Pulse.pulse) -> p.Pulse.rt >= stable_from) (Pulse.pulses layer))
      layers
  in
  check_bool "pulses resumed after stabilization" true (late_pulses <> []);
  (* and the post-stabilization cycles keep the skew bound *)
  let d = params.Params.d in
  let cycles =
    List.sort_uniq compare (List.map (fun (p : Pulse.pulse) -> p.Pulse.cycle) late_pulses)
  in
  List.iter
    (fun cyc ->
      match pulse_rts layers cyc with
      | [] | [ _ ] -> ()
      | first :: _ as rts when List.for_all (fun rt -> rt >= stable_from) rts ->
          let span =
            List.fold_left Float.max first rts -. List.fold_left Float.min first rts
          in
          check_bool
            (Printf.sprintf "post-recovery cycle %d skew <= 3d" cyc)
            true
            (span <= (3.0 *. d) +. 1e-9)
      | _ -> ())
    cycles

let suite = suite @ [ case "pulses resume after scramble" test_pulses_resume_after_scramble ]

(* --- takeover-ladder boundary tests (DESIGN.md §12) --- *)

let test_takeover_at_patience_boundary () =
  (* The ladder must wait the FULL patience before covering a silent
     General — never less. With node 1 silent and perfect clocks, cycle 1
     may fire no earlier than cycle_len + patience after the first
     candidate armed its ladder, and no later than one agreement past that
     slot. A correct General's cycle keeps the plain cadence. *)
  let n = 7 in
  let c = Cluster.make ~n ~seed:11 ~skip:[ 1 ] ~clock:`Perfect () in
  let params = c.Cluster.params in
  let cycle_len = 1.2 *. Pulse.min_cycle params in
  let layers =
    List.init n (fun id -> id)
    |> List.filter_map (fun id ->
           if id = 1 then None
           else Some (Pulse.create ~node:(Cluster.node c id) ~cycle_len ()))
  in
  List.iter Pulse.start layers;
  Cluster.run ~until:1.0 c;
  let patience = params.Params.delta_agr +. (20.0 *. params.Params.d) in
  let lo l = List.fold_left Float.min infinity l
  and hi l = List.fold_left Float.max neg_infinity l in
  let rt0 = pulse_rts layers 0
  and rt1 = pulse_rts layers 1
  and rt2 = pulse_rts layers 2 in
  check_int "cycle 1 fired at all 6 live nodes" 6 (List.length rt1);
  (* lower edge: nobody covers the silent General before its ladder slot *)
  check_bool "takeover no earlier than cycle_len + patience" true
    (lo rt1 >= lo rt0 +. cycle_len +. patience);
  (* upper edge: the first candidate's slot plus one agreement suffices *)
  check_bool "takeover within Delta_agr of the patience slot" true
    (hi rt1 <= hi rt0 +. cycle_len +. patience +. params.Params.delta_agr);
  (* a correct General needs no patience at all *)
  check_bool "correct cycle keeps the plain cadence" true
    (hi rt2 <= hi rt1 +. cycle_len +. params.Params.delta_agr)

let test_laggard_layer_resyncs () =
  (* Re-sync after a transient fault: node 6 is scrambled mid-cycling and
     its pulse layer restarts from scratch (next_cycle = 0). The first
     decided cycle it hears must fast-forward it to the cluster's current
     cycle — no replay of the missed pulses — and once the protocol state
     has stabilized its pulses keep the skew bound. *)
  let n = 7 in
  let c = Cluster.make ~n ~seed:19 () in
  let params = c.Cluster.params in
  let cycle_len = 1.2 *. Pulse.min_cycle params in
  let layers =
    List.init (n - 1) (fun id ->
        Pulse.create ~node:(Cluster.node c id) ~cycle_len ())
  in
  List.iter Pulse.start layers;
  let t_fault = 0.8 in
  let late = ref None in
  Ssba_sim.Engine.schedule c.Cluster.engine ~at:t_fault (fun () ->
      let rng = Ssba_sim.Rng.create 7 in
      Node.scramble rng ~values:[ "x"; "y" ] (Cluster.node c 6);
      late := Some (Pulse.create ~node:(Cluster.node c 6) ~cycle_len ()));
  Cluster.run ~until:(t_fault +. 1.2) c;
  let late =
    match !late with Some l -> l | None -> Alcotest.fail "fault never injected"
  in
  (match Pulse.pulses late with
  | [] -> Alcotest.fail "restarted layer never fired"
  | first :: _ ->
      check_bool "fast-forwarded past the missed cycles" true
        (first.Pulse.cycle > 3));
  let cluster_next =
    List.fold_left (fun acc l -> max acc (Pulse.next_cycle l)) 0 layers
  in
  check_bool "caught up with the cluster" true
    (Pulse.next_cycle late >= cluster_next - 1);
  let d = params.Params.d in
  let stable_from = t_fault +. params.Params.delta_stb in
  List.iter
    (fun (p : Pulse.pulse) ->
      if p.Pulse.rt >= stable_from then
        match pulse_rts layers p.Pulse.cycle with
        | [] -> ()
        | first :: _ as rts ->
            let span =
              List.fold_left Float.max (Float.max first p.Pulse.rt) rts
              -. List.fold_left Float.min (Float.min first p.Pulse.rt) rts
            in
            check_bool
              (Printf.sprintf "rejoined cycle %d skew <= 3d" p.Pulse.cycle)
              true
              (span <= (3.0 *. d) +. 1e-9))
    (Pulse.pulses late)

let test_skew_bound_long_chaos () =
  (* 100+ cycles with drifting clocks, random delays and a Byzantine
     General in the rotation: the 3d skew bound must hold on every single
     complete cycle, including the taken-over ones. *)
  let c, layers = mk ~seed:23 ~byz:[ 1 ] () in
  List.iter Pulse.start layers;
  let params = c.Cluster.params in
  let cycle_len = 1.2 *. Pulse.min_cycle params in
  let patience = params.Params.delta_agr +. (20.0 *. params.Params.d) in
  (* every 7th cycle pays one patience for the silent General's slot *)
  let horizon = (110.0 *. cycle_len) +. (17.0 *. patience) +. 0.5 in
  Cluster.run ~until:horizon c;
  let complete =
    List.fold_left (fun acc l -> min acc (Pulse.next_cycle l - 1)) max_int layers
  in
  check_bool "at least 100 complete cycles" true (complete >= 100);
  let d = params.Params.d in
  for cyc = 0 to complete - 1 do
    let rts = pulse_rts layers cyc in
    check_int (Printf.sprintf "cycle %d fired at all 6 live nodes" cyc) 6
      (List.length rts);
    match rts with
    | [] -> ()
    | first :: _ ->
        let span =
          List.fold_left Float.max first rts -. List.fold_left Float.min first rts
        in
        check_bool
          (Printf.sprintf "cycle %d skew <= 3d" cyc)
          true
          (span <= (3.0 *. d) +. 1e-9)
  done

let suite =
  suite
  @ [
      case "takeover waits the full patience" test_takeover_at_patience_boundary;
      case "restarted laggard layer re-syncs" test_laggard_layer_resyncs;
      slow_case "skew bound over 100 chaotic cycles" test_skew_bound_long_chaos;
    ]
