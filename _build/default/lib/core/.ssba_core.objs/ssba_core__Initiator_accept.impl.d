lib/core/initiator_accept.ml: Float Hashtbl List Option Params Recv_log Ssba_sim String Types
