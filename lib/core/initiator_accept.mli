(** The [Initiator-Accept] primitive (paper Figure 2, §4).

    One instance per (node, General). Makes all correct nodes associate a
    bounded-skew local-time anchor [tau_g] with the General's initiation and
    converge on a single candidate value, from any initial state. Satisfies
    properties [IA-1]–[IA-4] once the system is stable. *)

open Types

type t

(** Timestamps of the current invocation's key steps, used by a General to
    implement the [IG3] sending-validity criterion. *)
type invocation_report = {
  invoked_at : float option;  (** block K executed (this node invoked) *)
  l4_at : float option;  (** first approve sent after invocation *)
  m4_at : float option;  (** first ready sent after invocation *)
  n4_at : float option;  (** I-accept after invocation *)
}

(** [create ?blackout ?guard ~ctx ~g ()] — the optional {!Separation.t} is
    the persistent per-General rate-limiting state ([last(G)], [last(G,m)],
    send times, the re-initiation blackout, the [IG3] report). The node
    supplies one that outlives the session; omitting it (unit tests) makes
    the instance self-contained. [?blackout] (default [true]) gates the
    PR-6 re-initiation blackout conjunct in block K; the model checker
    disables it to exhibit the split decision the guard prevents. *)
val create :
  ?blackout:bool -> ?guard:Separation.t -> ctx:ctx -> g:general -> unit -> t

(** The separation guard this instance reads and writes. *)
val guard : t -> Separation.t

(** Set the I-accept callback [(value, tau_g)]. *)
val set_on_accept : t -> (value -> tau_g:float -> unit) -> unit

(** Block K: handle the General's [(Initiator, G, m)] message. *)
val handle_initiator : t -> value -> unit

(** Handle a support/approve/ready arrival, then evaluate blocks L–N. *)
val handle_message : t -> kind:ia_kind -> sender:node_id -> v:value -> unit

(** Figure 2's cleanup block; the node runs it every [d]. *)
val cleanup : t -> unit

(** Drop all received primitive messages (the General does this before
    initiating); rate-limiting variables survive. *)
val forget_messages : t -> unit

(** Full per-agreement reset (3d after the agreement returns); the
    rate-limiting variables [last(G)], [last(G,m)] and send times survive
    (they live in the guard). *)
val reset : t -> unit

(** Indistinguishable from a freshly created session (the guard, which
    survives collection, is not consulted) — eligible for session GC. *)
val quiescent : t -> bool

(** The I-accept issued in this execution, as [(value, tau_g, tau_accept)]. *)
val accepted : t -> (value * float * float) option

(** Current live recording time for a value, applying freshness. *)
val i_value : t -> value -> float option

(** Whether [ready_{G,m}] is currently set and unexpired. *)
val ready_flag_fresh : t -> value -> bool

val invocation_report : t -> invocation_report

(** Whether (G,m) messages are inside the 3d post-accept ignore window. *)
val ignoring : t -> value -> bool

(** Append a canonical state fingerprint (sorted keys, exact float text).
    The shared separation guard is {e not} included — the node fingerprints
    guards separately. *)
val fingerprint : Buffer.t -> t -> unit

(** Transient-fault injection: overwrite variables with random garbage drawn
    around the current local time (past and future). *)
val scramble : Ssba_sim.Rng.t -> values:value list -> t -> unit
