test/test_soak.ml: Cluster Helpers List Node Params Printf Ssba_adversary Ssba_core Ssba_harness Ssba_sim Types
