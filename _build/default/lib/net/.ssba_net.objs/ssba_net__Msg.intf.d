lib/net/msg.mli: Format
