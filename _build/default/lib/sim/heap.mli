(** Imperative array-backed binary min-heap, used as the engine's event queue.

    The element ordering is fixed at creation time by a comparison function;
    ties are resolved by that function, so callers wanting FIFO behaviour for
    equal keys must include a sequence number in the element. *)

type 'a t

(** [create ?capacity cmp] builds an empty heap ordered by [cmp]. *)
val create : ?capacity:int -> ('a -> 'a -> int) -> 'a t

val size : 'a t -> int
val is_empty : 'a t -> bool

(** Current capacity hint: the size of the backing array the next first push
    will allocate (or the live array's length). Grows with the heap and is
    {e retained} across {!clear} and drain-to-empty, so a reused heap does
    not re-grow from scratch. *)
val capacity : 'a t -> int
val push : 'a t -> 'a -> unit

(** Smallest element, without removing it. *)
val peek : 'a t -> 'a option

(** Remove and return the smallest element. *)
val pop : 'a t -> 'a option

(** Remove all elements, keeping the grown capacity hint for reuse. *)
val clear : 'a t -> unit

(** All elements in ascending order; the heap is unchanged. O(n log n). *)
val to_list : 'a t -> 'a list
