(* Tests for the network's pooled delivery arena.

   The fan-out pool is the tentpole's "steady-state delivery allocates
   nothing" claim made checkable: descriptors and envelope slots are counted
   by monotonic metrics ([net.pool.fanouts] / [net.pool.slots]), so a
   recycling bug shows up as counter growth, not as a profiler session. The
   scramble tests hold the arena to the Session_table safety pattern: a
   transient fault may trash pooled VALUES, never the pool's capacity or
   occupancy — and since free slots are fully overwritten on acquire,
   delivered payloads are unaffected. *)

open Helpers
module Engine = Ssba_sim.Engine
module Metrics = Ssba_sim.Metrics
module Rng = Ssba_sim.Rng
module Net = Ssba_net.Network
module Delay = Ssba_net.Delay

let mk ?(n = 5) ?(delay = Delay.fixed 0.1) () =
  let engine = Engine.create () in
  let net = Net.create ~engine ~n ~delay ~rng:(Rng.create 1) () in
  (engine, net)

(* One broadcast = one descriptor armed; draining returns it to the free
   stack. Repeating the cycle must reuse the same descriptor and slots. *)
let test_slot_reuse_after_pop () =
  let engine, net = mk () in
  Net.broadcast net ~src:0 "warm";
  ignore (Engine.run engine);
  let fanouts = Net.pool_fanouts_allocated net in
  let slots = Net.pool_slots_allocated net in
  let free = Net.pool_free net in
  check_bool "warm-up allocated a descriptor" true (fanouts >= 1);
  check_bool "descriptor back in the free stack" true (free >= 1);
  for i = 1 to 50 do
    Net.broadcast net ~src:(i mod 5) "again";
    ignore (Engine.run engine)
  done;
  check_int "no new descriptors in steady state" fanouts
    (Net.pool_fanouts_allocated net);
  check_int "no new envelope slots in steady state" slots
    (Net.pool_slots_allocated net);
  check_int "free stack back to its resting level" free (Net.pool_free net)

(* The allocation-counter assertion, against the shared metrics registry:
   after the peak concurrent need is reached, the monotonic pool counters
   freeze — delivery allocates zero pool slots beyond peak. *)
let test_zero_alloc_beyond_peak () =
  let engine, net = mk () in
  (* peak: 8 overlapping broadcasts in flight at once *)
  for k = 0 to 7 do
    Engine.schedule engine ~at:(0.01 *. float_of_int k) (fun () ->
        Net.broadcast net ~src:(k mod 5) "peak")
  done;
  ignore (Engine.run engine);
  let m = Engine.metrics engine in
  let peak_fanouts = Metrics.find_counter m "net.pool.fanouts" in
  let peak_slots = Metrics.find_counter m "net.pool.slots" in
  check_bool "counters registered" true
    (peak_fanouts <> None && peak_slots <> None);
  check_float "nothing armed after the drain" 0.0
    (Option.value ~default:(-1.0) (Metrics.find_gauge m "net.pool.in_use"));
  (* steady state: the same pattern, many times over *)
  for round = 1 to 20 do
    for k = 0 to 7 do
      Engine.schedule engine
        ~at:(Engine.now engine +. (0.01 *. float_of_int k))
        (fun () -> Net.broadcast net ~src:((round + k) mod 5) "steady")
    done;
    ignore (Engine.run engine)
  done;
  check_bool "zero descriptors allocated beyond peak" true
    (Metrics.find_counter m "net.pool.fanouts" = peak_fanouts);
  check_bool "zero envelope slots allocated beyond peak" true
    (Metrics.find_counter m "net.pool.slots" = peak_slots)

(* Scrambling the free pool: occupancy and capacity invariant, deliveries
   unaffected (acquire fully overwrites a slot before arming it). *)
let test_scramble_preserves_pool_shape () =
  let engine, net = mk () in
  Net.broadcast net ~src:0 "warm";
  ignore (Engine.run engine);
  let fanouts = Net.pool_fanouts_allocated net in
  let slots = Net.pool_slots_allocated net in
  let free = Net.pool_free net in
  Net.scramble_pool net ~payload:(fun rng ->
      Printf.sprintf "garbage-%d" (Rng.int rng 1000));
  check_int "scramble kept every descriptor" fanouts
    (Net.pool_fanouts_allocated net);
  check_int "scramble kept every slot" slots (Net.pool_slots_allocated net);
  check_int "scramble kept occupancy" free (Net.pool_free net);
  (* recycled slots were trashed, yet the next broadcast delivers clean *)
  let got = ref [] in
  for i = 0 to 4 do
    Net.set_handler net i (fun msg -> got := msg.Ssba_net.Msg.payload :: !got)
  done;
  Net.broadcast net ~src:2 "clean";
  ignore (Engine.run engine);
  check_int "all deliveries arrived" 5 (List.length !got);
  check_bool "no garbage leaked into deliveries" true
    (List.for_all (String.equal "clean") !got);
  check_int "and still no fresh allocation" fanouts
    (Net.pool_fanouts_allocated net)

(* Scrambling must not perturb the delivery schedule either: the arena has
   its own RNG stream, so a run with mid-flight pool scrambles draws the
   same delays as one without. *)
let test_scramble_digest_neutral () =
  let deliveries scramble =
    let engine, net = mk ~delay:(Delay.uniform ~lo:0.01 ~hi:0.2) () in
    let log = ref [] in
    for i = 0 to 4 do
      Net.set_handler net i (fun msg ->
          log := (Engine.now engine, i, msg.Ssba_net.Msg.payload) :: !log)
    done;
    for k = 0 to 9 do
      Engine.schedule engine ~at:(0.05 *. float_of_int k) (fun () ->
          if scramble then
            Net.scramble_pool net ~payload:(fun rng ->
                Printf.sprintf "junk-%d" (Rng.int rng 1000));
          Net.broadcast net ~src:(k mod 5) (Printf.sprintf "m%d" k))
    done;
    ignore (Engine.run engine);
    List.rev !log
  in
  check_bool "scrambled and clean runs deliver identically" true
    (deliveries false = deliveries true)

let suite =
  [
    case "slot reuse after pop" test_slot_reuse_after_pop;
    case "zero pool allocation beyond peak" test_zero_alloc_beyond_peak;
    case "scramble preserves pool shape" test_scramble_preserves_pool_shape;
    case "scramble is digest-neutral" test_scramble_digest_neutral;
  ]
