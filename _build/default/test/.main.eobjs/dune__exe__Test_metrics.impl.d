test/test_metrics.ml: Alcotest Helpers List Ssba_sim String
