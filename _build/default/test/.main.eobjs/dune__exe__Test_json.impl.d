test/test_json.ml: Alcotest Float Helpers List Option Ssba_sim
