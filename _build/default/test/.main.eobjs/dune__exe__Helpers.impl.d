test/helpers.ml: Alcotest Array Float List Node Params QCheck_alcotest Random Ssba_core Ssba_net Ssba_sim String Types
