lib/core/params.ml: Fmt Printf
