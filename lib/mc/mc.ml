(* Bounded exhaustive checker over the real protocol core.

   The checker never simulates an abstraction: every run builds a fresh world
   out of the production pieces — Engine, Network, Node — and replaces only
   the randomness. All delivery delays and Byzantine menu selections are
   *choices*, resolved by a cursor over an explicit choice vector; the
   explorer enumerates choice-vector prefixes breadth-first, so the first
   counterexample it reports is minimal in branching depth.

   Stateless re-execution: a state is never snapshotted. To expand a prefix
   the checker re-runs the world from time 0, consuming the prefix and then
   defaulting every further choice to option 0, which simultaneously
   completes the run to the horizon (so it can be judged) and discovers the
   next choice point (so it can be branched). A full choice assignment is
   judged exactly once — at the shortest prefix that determines it, i.e. the
   prefix with no trailing default choices.

   The visited set holds a canonical fingerprint of the whole world at each
   first-beyond-prefix choice point: every Node's protocol state
   (Node.fingerprint), the engine clock, the undelivered message set and the
   pending decision. Reaching a fingerprinted state again prunes the entire
   subtree — the default continuation from an identical state is identical.

   Partial-order reduction (por): (a) deliveries to Byzantine nodes never
   branch — the scripts are time-triggered and input-oblivious, so those
   deliveries commute with every other event; (b) the in-flight set is
   fingerprinted in canonical sorted order, merging runs that performed
   commuting deliveries in different orders. With por off, Byzantine-bound
   deliveries branch like any other matched send and the in-flight set keeps
   raw insertion order. Soundness caveats are spelled out in DESIGN.md §10. *)

open Ssba_core.Types
module Params = Ssba_core.Params
module Node = Ssba_core.Node
module Engine = Ssba_sim.Engine
module Clock = Ssba_sim.Clock
module Rng = Ssba_sim.Rng
module Delay = Ssba_net.Delay
module Network = Ssba_net.Network
module Link = Ssba_net.Link
module Msg = Ssba_net.Msg
module Scenario = Ssba_harness.Scenario
module Runner = Ssba_harness.Runner
module Checks = Ssba_harness.Checks
module Invariants = Ssba_harness.Invariants
module Spec = Ssba_fuzz.Spec
module Catalog = Ssba_adversary.Catalog
module Strategies = Ssba_adversary.Strategies

type choice = { c_label : string; c_options : int; c_picked : int }

type run = {
  prefix : int array;
  choices : choice list;  (* fresh choice points, in execution order *)
  fingerprints : string list;  (* world fingerprint at each fresh choice *)
  next : (string * int * string) option;
      (* fingerprint, option count and label of the first choice point beyond
         the prefix; [None] when the run branched nowhere new *)
  pruned : bool;  (* aborted: the first free choice's state was visited *)
  violations : string list;  (* pairwise-agreement oracle + invariant monitor *)
  splits : string list;  (* split decisions (see [split_decisions]) *)
  returns : return_info list;
  sends : ((node_id * node_id) * float) list;  (* every send's delay, in order *)
  transcript : (node_id * (float * node_id option * message) list) list;
  events : int;
}

let string_of_message m = Fmt.str "%a" pp_message m

(* ----- one run ---------------------------------------------------------- *)

(* Two correct nodes deciding different values for the same General with
   anchors within 4d: exactly the IA-4a split the re-initiation blackout
   exists to prevent. Kept separate from the oracle verdicts because the
   scarcity configs also strand correct sessions through eviction, which
   trips the relay oracle with or without the blackout. Clocks are perfect in
   checker worlds, so local anchors compare directly as real times. *)
let split_decisions (params : Params.t) returns =
  let d = params.Params.d in
  let decided =
    List.filter_map
      (fun r -> match r.outcome with Decided v -> Some (r, v) | Aborted -> None)
      returns
  in
  let pairs = ref [] in
  List.iteri
    (fun i (a, va) ->
      List.iteri
        (fun j (b, vb) ->
          if
            i < j && a.g = b.g && (not (String.equal va vb))
            && Float.abs (a.tau_g -. b.tau_g) <= 4.0 *. d
          then
            pairs :=
              Fmt.str
                "split G=%d: node %d decided %S (anchor %.2fd) vs node %d \
                 decided %S (anchor %.2fd)"
                a.g a.node va (a.tau_g /. d) b.node vb (b.tau_g /. d)
              :: !pairs)
        decided)
    decided;
  List.rev !pairs

(* [judge = false] skips the oracles (used for runs whose outcome is judged
   at a shorter prefix); everything else is identical. *)
let execute (cfg : Config.t) ~por ~visited ~judge prefix =
  let params = cfg.Config.params in
  let n = params.Params.n in
  let engine = Engine.create () in
  (* The network runs fault-free; its RNG streams are drawn but never decide
     anything (the delay override below bypasses the drawn delay). *)
  let net =
    Network.create ~engine ~n ~delay:(Delay.fixed cfg.Config.default_delay)
      ~rng:(Rng.create 1) ~kind_of:kind_of_message ()
  in
  let nodes : (node_id * Node.t) list ref = ref [] in
  let in_flight : (float * node_id * node_id * message) list ref = ref [] in
  let pos = ref 0 in
  let groups : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let choices = ref [] in
  let fps = ref [] in
  let next = ref None in
  let pruned = ref false in
  let world_fingerprint pending =
    let buf = Buffer.create 2048 in
    Printf.bprintf buf "t=%h;" (Engine.now engine);
    List.iter (fun (_, node) -> Node.fingerprint buf node) !nodes;
    let entries = if por then List.sort compare !in_flight else !in_flight in
    List.iter
      (fun (at, src, dst, m) ->
        Printf.bprintf buf "m[%h,%d>%d,%s]" at src dst (string_of_message m))
      entries;
    Buffer.add_string buf pending;
    Digest.to_hex (Digest.string (Buffer.contents buf))
  in
  let choose ~label ?group n_options =
    if n_options <= 1 then 0
    else
      match
        match group with Some key -> Hashtbl.find_opt groups key | None -> None
      with
      | Some k -> k  (* the class already drew its choice this run *)
      | None ->
          let fp = world_fingerprint (Fmt.str "?%s/%d" label n_options) in
          fps := fp :: !fps;
          let pick =
            if !pos < Array.length prefix then prefix.(!pos)
            else begin
              (if !next = None then begin
                 next := Some (fp, n_options, label);
                 if Hashtbl.mem visited fp then begin
                   (* identical world, identical default continuation: the
                      subtree (and this run's tail) is redundant *)
                   pruned := true;
                   Engine.stop engine
                 end
               end);
              0
            end
          in
          incr pos;
          (match group with Some key -> Hashtbl.add groups key pick | None -> ());
          choices := { c_label = label; c_options = n_options; c_picked = pick } :: !choices;
          pick
  in
  let sends = ref [] in
  Network.set_delay_override net
    (Some
       (fun (m : message Msg.t) ->
         let src = m.Msg.src and dst = m.Msg.dst and payload = m.Msg.payload in
         let delay =
           match
             if por && Config.is_byz cfg dst then None
             else cfg.Config.branch ~src ~dst payload
           with
           | None -> cfg.Config.default_delay
           | Some key ->
               let lattice = Config.lattice_for cfg key in
               let k =
                 choose ~label:("d:" ^ key) ~group:key (Array.length lattice)
               in
               lattice.(k)
         in
         in_flight := !in_flight @ [ (Engine.now engine +. delay, src, dst, payload) ];
         sends := ((src, dst), delay) :: !sends;
         Some delay))
    ;
  (* Deliveries leave the tracked set through a wrapping handler; equality on
     the scheduled time is exact because the engine replays the very float it
     computed at send time. *)
  let base = Network.link net in
  let untrack ~src ~dst =
    let now = Engine.now engine in
    let rec remove = function
      | [] -> []
      | (at, s, d, _) :: rest when s = src && d = dst && at = now -> rest
      | e :: rest -> e :: remove rest
    in
    in_flight := remove !in_flight
  in
  let link =
    {
      base with
      Link.set_handler =
        (fun id h ->
          base.Link.set_handler id (fun m ->
              untrack ~src:m.Msg.src ~dst:m.Msg.dst;
              h m));
    }
  in
  (* World construction mirrors Runner.run_with: correct nodes in id order,
     then the Byzantine schedules, then the proposals — the engine breaks
     time ties by scheduling order, and counterexample replay through the
     Runner depends on reproducing it. *)
  let returns = ref [] in
  let observations = ref [] in
  for id = 0 to n - 1 do
    if not (Config.is_byz cfg id) then begin
      let node =
        Node.create_on ?session_capacity:cfg.Config.session_capacity
          ~blackout:cfg.Config.blackout ~id ~params ~clock:Clock.perfect ~engine
          ~link ()
      in
      Node.subscribe node (fun r -> returns := r :: !returns);
      Node.subscribe_observations node (fun g obs ->
          observations :=
            { Runner.obs_node = id; obs_g = g; obs; obs_rt = Engine.now engine }
            :: !observations);
      nodes := (id, node) :: !nodes
    end
  done;
  nodes := List.rev !nodes;
  let transcript =
    List.map (fun (b : Config.byz) -> (b.Config.byz_id, ref [])) cfg.Config.byz
  in
  List.iter
    (fun (b : Config.byz) ->
      let id = b.Config.byz_id in
      link.Link.set_handler id (fun _ -> ());
      let log = List.assoc id transcript in
      List.iter
        (fun (st : Config.script_step) ->
          if st.Config.options <> [] then
            Engine.schedule engine ~at:st.Config.step_at (fun () ->
                let k =
                  choose
                    ~label:(Fmt.str "byz%d:%s" id st.Config.step_label)
                    (List.length st.Config.options)
                in
                List.iter
                  (fun (dst, m) ->
                    log := (st.Config.step_at, dst, m) :: !log;
                    match dst with
                    | Some dst -> link.Link.send ~src:id ~dst m
                    | None -> link.Link.broadcast ~src:id m)
                  (List.nth st.Config.options k)))
        b.Config.steps)
    cfg.Config.byz;
  let proposal_results = ref [] in
  List.iter
    (fun (p : Scenario.proposal) ->
      Engine.schedule engine ~at:p.Scenario.at (fun () ->
          let outcome =
            match List.assoc_opt p.Scenario.g !nodes with
            | None -> Runner.No_general
            | Some node -> (
                match Node.propose node p.Scenario.v with
                | Ok () -> Runner.Accepted
                | Error e -> Runner.Refused e)
          in
          proposal_results := (p, outcome) :: !proposal_results))
    cfg.Config.proposals;
  let stats = Engine.run ~until:cfg.Config.horizon engine in
  let violations, splits =
    if !pruned || not judge then ([], [])
    else begin
      let scenario =
        {
          Scenario.name = cfg.Config.name;
          params;
          seed = 0;
          delay = Delay.fixed cfg.Config.default_delay;
          clocks = Scenario.Perfect;
          roles =
            List.map
              (fun id -> (id, Scenario.Byzantine Strategies.silent))
              (Config.byz_ids cfg);
          proposals = cfg.Config.proposals;
          events = [];
          horizon = cfg.Config.horizon;
          channels = 1;
          record_trace = false;
          record_observations = true;
          transport = None;
          session_capacity = cfg.Config.session_capacity;
          blackout = cfg.Config.blackout;
          admission = false;
        }
      in
      let result =
        {
          Runner.scenario;
          returns =
            List.sort (fun a b -> compare a.rt_ret b.rt_ret) !returns;
          observations = List.rev !observations;
          correct = Config.correct_ids cfg;
          clocks = Array.init n (fun _ -> Clock.perfect);
          nodes = !nodes;
          proposal_results = List.rev !proposal_results;
          engine_stats = stats;
          messages_sent = Network.messages_sent net;
          messages_delivered = Network.messages_delivered net;
          messages_dropped = Network.messages_dropped net;
          messages_duplicated = Network.messages_duplicated net;
          messages_in_flight = Network.messages_in_flight net;
          messages_by_kind = Network.sent_by_kind net;
          transport_retransmits = 0;
          transport_dup_suppressed = 0;
          transport_expired = 0;
          transport_retries_exhausted = 0;
          metrics = Engine.metrics engine;
          trace = Engine.trace engine;
        }
      in
      ( Checks.pairwise_agreement ~settle:0.0 result @ Invariants.check result,
        split_decisions params !returns )
    end
  in
  {
    prefix;
    choices = List.rev !choices;
    fingerprints = List.rev !fps;
    next = !next;
    pruned = !pruned;
    violations;
    splits;
    returns = List.sort (fun a b -> compare a.rt_ret b.rt_ret) !returns;
    sends = List.rev !sends;
    transcript = List.map (fun (id, log) -> (id, List.rev !log)) transcript;
    events = stats.Engine.events_processed;
  }

let run_vector cfg ~por prefix =
  execute cfg ~por ~visited:(Hashtbl.create 1) ~judge:true prefix

(* ----- exploration ------------------------------------------------------ *)

type report = {
  config_name : string;
  por : bool;
  depth : int;
  explored : int;  (* runs executed (internal prefixes, leaves and pruned) *)
  judged : int;  (* complete choice assignments judged by the oracles *)
  pruned : int;  (* subtrees cut by the visited set *)
  frontier : int;  (* choice points left unexpanded by the depth bound *)
  deepest : int;  (* longest prefix reached *)
  violations : (string * int array) list;
      (* distinct oracle violations with a minimal-depth prefix exhibiting
         each (breadth-first order makes the first witness minimal) *)
  splits : (string * int array) list;
  counterexample : run option;  (* first (minimal) run with a split decision *)
  truncated : bool;  (* stopped by max_runs, not exhaustion *)
}

(* The breadth-first worklist loop, seeded with an arbitrary set of root
   prefixes and an (optionally pre-populated) visited set — the serial
   explorer seeds it with the empty prefix; the parallel explorer runs one
   loop per root-choice subtree. *)
let explore_bfs ~max_runs (cfg : Config.t) ~por ~depth ~visited roots =
  let q = Queue.create () in
  List.iter (fun p -> Queue.add p q) roots;
  let explored = ref 0
  and judged = ref 0
  and pruned = ref 0
  and frontier = ref 0
  and deepest = ref 0 in
  let violations = ref [] and splits = ref [] in
  let counterexample = ref None in
  let truncated = ref false in
  let record store found prefix =
    List.iter
      (fun s -> if not (List.mem_assoc s !store) then store := (s, prefix) :: !store)
      found
  in
  while (not (Queue.is_empty q)) && not !truncated do
    if !explored >= max_runs then truncated := true
    else begin
      let prefix = Queue.pop q in
      let len = Array.length prefix in
      let judge = len = 0 || prefix.(len - 1) <> 0 in
      let r = execute cfg ~por ~visited ~judge prefix in
      incr explored;
      if len > !deepest then deepest := len;
      if r.pruned then incr pruned
      else begin
        if judge then begin
          incr judged;
          record violations r.violations prefix;
          record splits r.splits prefix;
          if !counterexample = None && r.splits <> [] then counterexample := Some r
        end;
        match r.next with
        | None -> ()
        | Some (fp, options, _) ->
            Hashtbl.replace visited fp ();
            if len >= depth then incr frontier
            else
              for i = 0 to options - 1 do
                Queue.add (Array.append prefix [| i |]) q
              done
      end
    end
  done;
  {
    config_name = cfg.Config.name;
    por;
    depth;
    explored = !explored;
    judged = !judged;
    pruned = !pruned;
    frontier = !frontier;
    deepest = !deepest;
    violations = List.rev !violations;
    splits = List.rev !splits;
    counterexample = !counterexample;
    truncated = !truncated;
  }

(* (length, then lexicographic) order on choice prefixes — exactly the order
   breadth-first search discovers them in, so the minimum over any set of
   witnesses for the same verdict is the one serial BFS would report first. *)
let prefix_order a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c else Stdlib.compare a b

(* Fold one shard's (verdict, witness) list into the accumulated one:
   verdict-set union, keeping per verdict the minimal witness under
   [prefix_order]. First-appearance order of verdicts is preserved, and
   shards are folded in root-option order, so the merged report is a pure
   function of the config — independent of domain scheduling. *)
let merge_witnesses base found =
  List.fold_left
    (fun acc (label, p) ->
      match List.assoc_opt label acc with
      | None -> acc @ [ (label, p) ]
      | Some q when prefix_order p q < 0 ->
          List.map (fun (l, w) -> if l = label then (l, p) else (l, w)) acc
      | Some _ -> acc)
    base found

let explore ?(max_runs = 200_000) ?(jobs = 1) (cfg : Config.t) ~por ~depth =
  if jobs <= 1 || depth < 1 then
    explore_bfs ~max_runs cfg ~por ~depth ~visited:(Hashtbl.create 4096)
      [ [||] ]
  else begin
    (* Run the empty prefix once to judge the all-defaults world and discover
       the first branching point; its options become the shards. *)
    let root = execute cfg ~por ~visited:(Hashtbl.create 16) ~judge:true [||] in
    match root.next with
    | None ->
        (* the whole choice space is the single root run *)
        explore_bfs ~max_runs cfg ~por ~depth ~visited:(Hashtbl.create 16)
          [ [||] ]
    | Some (root_fp, options, _) ->
        (* One BFS per root option, each with its own visited set (seeded
           with the root fingerprint, as serial exploration would). Workers
           pull shard indices from an atomic counter and write reports into
           their own slot; the merge below reads slots in index order, so the
           result does not depend on which domain ran which shard. Per-shard
           visited sets forfeit cross-subtree pruning: counts (explored,
           pruned, frontier) can differ from a serial run, but under
           exhaustion the verdict SET cannot — a pruned subtree's default
           continuation is byte-identical to the continuation from the
           already-visited state, so its verdicts are duplicates. *)
        let results : report option array = Array.make options None in
        let next_shard = Atomic.make 0 in
        let worker () =
          let continue = ref true in
          while !continue do
            let s = Atomic.fetch_and_add next_shard 1 in
            if s >= options then continue := false
            else begin
              let visited = Hashtbl.create 4096 in
              Hashtbl.replace visited root_fp ();
              results.(s) <-
                Some
                  (explore_bfs ~max_runs cfg ~por ~depth ~visited [ [| s |] ])
            end
          done
        in
        let helpers =
          List.init (min jobs options - 1) (fun _ -> Domain.spawn worker)
        in
        worker ();
        List.iter Domain.join helpers;
        let shards = Array.to_list results |> List.filter_map Fun.id in
        let sum f = List.fold_left (fun acc r -> acc + f r) 0 shards in
        let violations =
          List.fold_left merge_witnesses
            (List.map (fun v -> (v, [||])) root.violations)
            (List.map (fun r -> r.violations) shards)
        in
        let splits =
          List.fold_left merge_witnesses
            (List.map (fun v -> (v, [||])) root.splits)
            (List.map (fun r -> r.splits) shards)
        in
        let counterexample =
          let candidates =
            (if root.splits <> [] then [ root ] else [])
            @ List.filter_map (fun r -> r.counterexample) shards
          in
          match candidates with
          | [] -> None
          | c :: cs ->
              Some
                (List.fold_left
                   (fun best r ->
                     if prefix_order r.prefix best.prefix < 0 then r else best)
                   c cs)
        in
        {
          config_name = cfg.Config.name;
          por;
          depth;
          explored = 1 + sum (fun r -> r.explored);
          judged = 1 + sum (fun r -> r.judged);
          pruned = sum (fun r -> r.pruned);
          frontier = sum (fun r -> r.frontier);
          deepest =
            List.fold_left (fun acc r -> max acc r.deepest) 0 shards;
          violations;
          splits;
          counterexample;
          truncated = List.exists (fun r -> r.truncated) shards;
        }
  end

let pp_prefix ppf p =
  Fmt.pf ppf "[%a]" Fmt.(array ~sep:(Fmt.any ";") int) p

let pp_report ppf r =
  Fmt.pf ppf
    "%s por=%b depth=%d: explored=%d judged=%d pruned=%d frontier=%d \
     deepest=%d%s@."
    r.config_name r.por r.depth r.explored r.judged r.pruned r.frontier
    r.deepest
    (if r.truncated then " TRUNCATED" else "");
  Fmt.pf ppf "  oracle violations: %d distinct@." (List.length r.violations);
  List.iter
    (fun (v, p) -> Fmt.pf ppf "    %a %s@." pp_prefix p v)
    r.violations;
  Fmt.pf ppf "  split decisions: %d distinct@." (List.length r.splits);
  List.iter (fun (v, p) -> Fmt.pf ppf "    %a %s@." pp_prefix p v) r.splits

(* ----- counterexample export ------------------------------------------- *)

(* Pin an explored run as a fuzz Spec: the Byzantine side becomes a
   [Catalog.Scripted] transcript, the delivery schedule a [Spec.Scripted]
   delay (k-th send on each link gets the delay the checker chose). Replaying
   the spec through the Runner re-executes the same world — the engine breaks
   ties identically, correct-node code is shared, and the scripted strategy
   is input-oblivious — so `ssba_fuzz --replay` reproduces the violation. *)
let spec_of_run (cfg : Config.t) (r : run) ~name =
  let links =
    let tbl = Hashtbl.create 16 in
    let order = ref [] in
    List.iter
      (fun (link, delay) ->
        match Hashtbl.find_opt tbl link with
        | Some ds -> ds := delay :: !ds
        | None ->
            Hashtbl.add tbl link (ref [ delay ]);
            order := link :: !order)
      r.sends;
    List.rev_map (fun link -> (link, List.rev !(Hashtbl.find tbl link))) !order
  in
  {
    Spec.name;
    seed = 0;
    n = cfg.Config.params.Params.n;
    f = cfg.Config.params.Params.f;
    delay = Spec.Scripted { default = cfg.Config.default_delay; links };
    clocks = Scenario.Perfect;
    cast =
      List.map
        (fun (id, steps) -> (id, Catalog.Scripted { steps }))
        r.transcript;
    proposals = cfg.Config.proposals;
    events = [];
    transport = None;
    horizon = cfg.Config.horizon;
    session_capacity = cfg.Config.session_capacity;
    blackout = cfg.Config.blackout;
    r_slack = cfg.Config.params.Params.r_slack;
    service = None;
  }

(* ----- E14: states explored, POR reduction, verdicts -------------------- *)

let e14 ?(depth = 24) () =
  Fmt.pr "E14 — Exhaustive small-model checking (n=4, f=1)@.@.";
  Fmt.pr "%-22s %-5s %9s %8s %8s %9s %6s %7s@." "config" "por" "explored"
    "judged" "pruned" "frontier" "viol" "splits";
  let row cfg ~por ~depth =
    let r = explore cfg ~por ~depth in
    Fmt.pr "%-22s %-5b %9d %8d %8d %9d %6d %7d@." r.config_name por r.explored
      r.judged r.pruned r.frontier
      (List.length r.violations)
      (List.length r.splits);
    r
  in
  let on = row (Config.smoke ()) ~por:true ~depth in
  let off = row (Config.smoke ()) ~por:false ~depth in
  let s_on = row (Config.split ~blackout:true ()) ~por:true ~depth in
  let s_off = row (Config.split ~blackout:false ()) ~por:true ~depth in
  Fmt.pr "@.POR reduction factor (smoke): %.2fx (%d -> %d states)@."
    (float_of_int off.explored /. float_of_int on.explored)
    off.explored on.explored;
  Fmt.pr "smoke verdict: %s@."
    (if on.violations = [] && off.violations = [] then
       "zero oracle violations over the full choice space"
     else "VIOLATIONS FOUND");
  Fmt.pr
    "split sensitivity: blackout on -> %d split decisions; blackout off -> %d \
     (checker rediscovers the IA-4 split the guard prevents)@."
    (List.length s_on.splits)
    (List.length s_off.splits);
  match s_off.counterexample with
  | None -> ()
  | Some r ->
      Fmt.pr "minimal split counterexample at choice prefix %a@." pp_prefix
        r.prefix
