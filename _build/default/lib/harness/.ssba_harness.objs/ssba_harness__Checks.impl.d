lib/harness/checks.ml: Float Fmt Hashtbl List Metrics Option Printf Runner Scenario Ssba_core String
