(* Metrics registry: named monotonic counters and float gauges.

   The engine owns one registry per simulation (like it owns the trace);
   the network, engine and node layers feed it. Counters and gauges are
   find-or-created by name once, then held in record fields by their users,
   so the hot-path cost of an update is a single mutable store — no hashing.

   Naming convention (dots separate components, suffixes refine):
     net.sent / net.delivered / net.dropped      network totals
     net.in_flight                               gauge: scheduled, undelivered
     net.sent.<kind>                             per-message-kind sends
     engine.events                               events processed
     node<i>.proposals / node<i>.returns.*       per-node protocol counters *)

type counter = { c_name : string; mutable c_value : int }
(* The gauge value lives in a 1-slot float array: float stores into a mixed
   record box a fresh float on every update, and the network bumps gauges
   four times per delivery on the hot path; float-array stores are raw. *)
type gauge = { g_name : string; g_cell : float array }

type metric = Counter of counter | Gauge of gauge

type t = {
  by_name : (string, metric) Hashtbl.t;
  mutable order : string list;  (* registration order, newest first *)
}

let create () = { by_name = Hashtbl.create 32; order = [] }

let register t name m =
  Hashtbl.replace t.by_name name m;
  t.order <- name :: t.order

let counter t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Counter c) -> c
  | Some (Gauge _) ->
      invalid_arg (Printf.sprintf "Metrics.counter: %S is a gauge" name)
  | None ->
      let c = { c_name = name; c_value = 0 } in
      register t name (Counter c);
      c

let gauge t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Gauge g) -> g
  | Some (Counter _) ->
      invalid_arg (Printf.sprintf "Metrics.gauge: %S is a counter" name)
  | None ->
      let g = { g_name = name; g_cell = [| 0.0 |] } in
      register t name (Gauge g);
      g

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotonic";
  c.c_value <- c.c_value + by

let value c = c.c_value
let counter_name c = c.c_name

let set g x = Array.unsafe_set g.g_cell 0 x
let add g dx = Array.unsafe_set g.g_cell 0 (Array.unsafe_get g.g_cell 0 +. dx)
let gauge_value g = g.g_cell.(0)
let gauge_name g = g.g_name

let find_counter t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Counter c) -> Some c.c_value
  | Some (Gauge _) | None -> None

let find_gauge t name =
  match Hashtbl.find_opt t.by_name name with
  | Some (Gauge g) -> Some g.g_cell.(0)
  | Some (Counter _) | None -> None

(* Scenario-reuse escape hatch: zero everything but keep registrations (the
   holders' record fields stay valid). Counters are monotonic only within a
   run. *)
let reset t =
  Hashtbl.iter
    (fun _ m ->
      match m with Counter c -> c.c_value <- 0 | Gauge g -> g.g_cell.(0) <- 0.0)
    t.by_name

(* Scoped variants for a substrate that resets only its own handles. *)
let reset_counter c = c.c_value <- 0
let reset_gauge g = g.g_cell.(0) <- 0.0

(* Snapshot in ascending name order (explicitly by [String.compare], not the
   polymorphic [compare] on pairs — names are unique so the key alone
   determines the order, and the ordering is pinned by a test). *)
let to_list t =
  Hashtbl.fold
    (fun name m acc ->
      let v = match m with Counter c -> float_of_int c.c_value | Gauge g -> g.g_cell.(0) in
      (name, v) :: acc)
    t.by_name []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let json_of_metric name m =
  let kind, v =
    match m with
    | Counter c -> ("counter", float_of_int c.c_value)
    | Gauge g -> ("gauge", g.g_cell.(0))
  in
  Json.Obj [ ("metric", Json.Str name); ("type", Json.Str kind); ("value", Json.Num v) ]

(* One JSON object per line, in registration order (stable across runs of the
   same scenario, so exports can be diffed). *)
let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.by_name name with
      | None -> ()
      | Some m ->
          Json.to_buffer buf (json_of_metric name m);
          Buffer.add_char buf '\n')
    (List.rev t.order);
  Buffer.contents buf

let pp ppf t =
  List.iter (fun (name, v) -> Fmt.pf ppf "%-28s %g@." name v) (to_list t)
