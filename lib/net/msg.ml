(* Message envelopes.

   The paper's network (§2, Definition 2) authenticates the sender identity
   and content of every delivered message. The envelope therefore carries a
   [src] stamped by the network itself — protocol code and Byzantine nodes
   alike cannot forge it. The [forged] flag exists only so the transient-fault
   injector can model the *incoherent* period, during which the network may
   deliver arbitrary garbage; property checks never trust forged envelopes.

   Fields are mutable solely so the network can pool envelope records for
   in-flight messages (the delivery arena): only the network writes them, and
   only between deliveries. Handlers must treat envelopes as read-only
   snapshots valid for the duration of the call — copy fields out, never
   retain the record. *)

type 'a t = {
  mutable src : int;
  mutable dst : int;
  mutable sent_at : float;  (* real time at which the send was issued *)
  mutable forged : bool;  (* true only for incoherent-period garbage *)
  mutable payload : 'a;
}

let make ~src ~dst ~sent_at payload =
  { src; dst; sent_at; forged = false; payload }

let forge ~claimed_src ~dst ~sent_at payload =
  { src = claimed_src; dst; sent_at; forged = true; payload }

let with_payload m payload =
  { src = m.src; dst = m.dst; sent_at = m.sent_at; forged = m.forged; payload }

let set m ~src ~dst ~sent_at ~forged payload =
  m.src <- src;
  m.dst <- dst;
  m.sent_at <- sent_at;
  m.forged <- forged;
  m.payload <- payload

let pp pp_payload ppf m =
  Fmt.pf ppf "%d->%d%s %a" m.src m.dst (if m.forged then "(forged)" else "") pp_payload m.payload
