examples/quickstart.ml: Array Fmt List Ssba_core Ssba_net Ssba_sim
