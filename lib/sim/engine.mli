(** Deterministic discrete-event simulation engine.

    The engine owns virtual real time and a queue of scheduled closures.
    Events at equal times run in scheduling order, so a given scenario always
    produces the same run. *)

type t

type stats = {
  events_processed : int;
  end_time : float;
  queue_exhausted : bool;
      (** [true] when the run ended because no events remained; [false] when
          stopped by [until], [max_events] or {!stop}. *)
}

(** [create ?trace ?metrics ()] builds an engine at time 0. Without [trace],
    an internal disabled trace is used; without [metrics], a fresh registry is
    created. The engine feeds [engine.scheduled] and [engine.events]
    counters; other substrates (network, nodes) reach the shared registry
    through {!metrics}. *)
val create : ?trace:Trace.t -> ?metrics:Metrics.t -> unit -> t

(** Current virtual real time. *)
val now : t -> float

val trace : t -> Trace.t

(** The simulation-wide metrics registry. *)
val metrics : t -> Metrics.t

(** Number of queued events. *)
val pending : t -> int

(** [schedule t ~at f] runs [f] at virtual time [at] (clamped to the
    present if in the past). *)
val schedule : t -> at:float -> (unit -> unit) -> unit

(** [schedule_after t ~delay f] runs [f] after [delay] (must be >= 0). *)
val schedule_after : t -> delay:float -> (unit -> unit) -> unit

(** Reserve the next tie-break sequence number for a fan-out sub-event.
    Counts as one scheduled event (metrics-identical to {!schedule}); the
    caller must arm the sub-event under exactly this seq via
    {!schedule_batch}. Reserving in the same order the per-entry scheme
    called {!schedule} is what keeps batched runs bit-identical. *)
val next_seq : t -> int

(** Arm a filled fan-out descriptor (see {!Event_queue.push_batch}): one
    heap entry expanding to its sub-events in exact (at, seq) order. All
    sub-event times must be >= {!now} — the network computes them as
    [now + delay] with validated non-negative delays. *)
val schedule_batch : t -> Event_queue.batch -> unit

(** Abort the current {!run} after the event being processed. *)
val stop : t -> unit

(** Record a typed trace event at the current time. *)
val record : t -> node:int -> Trace.event -> unit

(** [run ?until ?max_events t] processes queued events in time order until
    the queue empties, time would exceed [until], [max_events] events ran, or
    {!stop} is called. *)
val run : ?until:float -> ?max_events:int -> t -> stats

(** Like {!run}, but paced against the wall clock at [speed] virtual seconds
    per wall second (default 1.0): each event waits until its virtual time.
    Event order — and therefore every result — is identical to {!run}; only
    the pacing differs. Useful for live demos of a scenario. *)
val run_realtime : ?speed:float -> ?until:float -> ?max_events:int -> t -> stats
