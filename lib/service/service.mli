(** Recurrent-agreement service mode: a long-lived client loop atop the
    session-keyed core.

    {!attach} installs, inside one {!Ssba_harness.Runner} execution, an
    open-loop proposal generator over rotating logical Generals, an
    admission controller (watermark shedding in front of {!Ssba_core.Node}'s
    [At_capacity] backstop), a retry layer with capped exponential backoff
    and deterministic jitter, and an overload detector that flips the
    service into a degraded (admit-nothing-new) mode until the cluster
    drains below the low watermark. Optionally a {!Ssba_pulse.Pulse_sync}
    layer cycles on the same cluster.

    All service observability lands in [service.*] metrics and the typed
    [Service_*] trace events — neither participates in
    {!Ssba_harness.Checks.result_digest}, so service runs change no pinned
    digests. *)

type t

type report = {
  arrivals : int;
  admitted : int;  (** proposals the protocol accepted *)
  decided : int;  (** jobs some correct node decided *)
  timed_out : int;  (** accepted attempts with no decision in the window *)
  shed : int;  (** sum of the three shed classes *)
  shed_degraded : int;  (** arrivals refused while in degraded mode *)
  shed_watermark : int;  (** arrivals that themselves tripped the watermark *)
  shed_queue_full : int;  (** retry candidates dropped at the queue bound *)
  retries : int;
  gave_up : int;  (** jobs that exhausted their retry budget *)
  no_general : int;  (** attempts that landed on a Byzantine/absent General *)
  p50_latency : float;  (** decision latency percentiles over decided jobs *)
  p99_latency : float;
  max_latency : float;
  throughput : float;  (** decided jobs per second of the arrival window *)
  peak_queue : int;
  peak_live_frac : float;  (** worst observed live/capacity fraction *)
  degraded_episodes : (float * float option) list;
      (** chronological (entered, exited); [None] = still open at horizon *)
  max_degraded_span : float;  (** longest closed episode — the recovery time *)
  unresolved_degraded : int;
  pulses : int;  (** cycles fired by {e every} pulse layer *)
  pulse_skew : float;  (** worst same-cycle real-time spread *)
}

(** Install the service loop on a runner driver hook (call from
    {!Ssba_harness.Runner.run}'s [on_driver]). The scenario must have been
    built with [channels = workload.channels] and [admission = true] —
    {!Ssba_fuzz.Spec.to_scenario} does this for service-carrying specs.
    Raises [Invalid_argument] on an invalid workload. *)
val attach : seed:int -> Workload.t -> Ssba_harness.Runner.driver -> t

(** Collect the report after the run finished (latencies, shed counts,
    degraded episodes, pulse skew). *)
val report : t -> report

(** Convenience: run [scenario] with the service attached ([seed] defaults
    to the scenario's). *)
val run :
  ?seed:int ->
  Workload.t ->
  Ssba_harness.Scenario.t ->
  Ssba_harness.Runner.result * report

(** The ["svc-<job>-a<attempt>"] value-namespace test the oracle uses to
    tell driver proposals from scheduled ones. *)
val is_service_value : string -> bool

val pp_report : Format.formatter -> report -> unit
