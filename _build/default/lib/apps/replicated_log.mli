(** Total-order replicated log (state machine replication) atop recurrent
    ss-Byz-Agree — the application the Byzantine Generals problem was
    introduced for.

    Slots are filled strictly in order: slot [i] is proposed by node
    [i mod n], with a timeout ladder letting the next nodes take over a
    silent or Byzantine owner's slot. Per-slot Agreement makes the committed
    value identical at every correct node; the in-order discipline turns
    that into an identical command sequence at every correct node. *)

open Ssba_core.Types

type entry = {
  slot : int;
  proposer : node_id;  (** as encoded in the decided value *)
  cmd : value;
  tau : float;  (** local commit time *)
  rt : float;  (** simulator real time of the commit *)
}

type t

(** [create ~node ~cycle_len ()] attaches a log replica to a protocol node.
    [cycle_len] is the per-slot local-time budget; raises
    [Invalid_argument] below {!min_cycle}. [patience] is the takeover
    timeout per skipped owner (default [Delta_agr + 20d]). *)
val create : node:Ssba_core.Node.t -> cycle_len:float -> ?patience:float -> unit -> t

(** Safe floor for [cycle_len] given the protocol constants. *)
val min_cycle : Ssba_core.Params.t -> float

(** Begin filling slots (slot 0 is owned by node 0). *)
val start : t -> unit

(** Queue a command for this node's next owned (or taken-over) slot. Raises
    [Invalid_argument] on embedded newlines. *)
val submit : t -> value -> unit

(** Committed entries in slot order. *)
val log : t -> entry list

(** The committed command sequence (no-ops removed) — identical at every
    correct node. *)
val commands : t -> value list

(** The slot this replica is currently waiting on. *)
val next_slot : t -> int

(** Locally queued, not-yet-committed submissions. *)
val pending : t -> int

val set_on_commit : t -> (entry -> unit) -> unit

(** The filler command used for slots whose owner had nothing to propose. *)
val noop : value
