(** Pulse synchronization atop recurrent ss-Byz-Agree (the application the
    paper attributes to its companion work [6]).

    Cycles are numbered; the General for cycle [i] is node [i mod n]; a node
    fires pulse [i] when it decides on value ["pulse-<i>"]. Decisions at
    correct nodes are within [3d] of each other (Timeliness 1a), so pulses
    inherit that skew. A per-node timeout ladder skips silent or Byzantine
    Generals and re-synchronizes laggards after transient faults. *)

type pulse = {
  cycle : int;
  tau : float;  (** local time of the pulse *)
  rt : float;  (** simulator real time, for skew measurement *)
}

type t

(** [create ~node ~cycle_len ()] attaches a pulse layer to a protocol node.
    [cycle_len] is the local-time cycle length; raises [Invalid_argument] if
    below {!min_cycle}. [patience] is the takeover timeout per skipped
    General (default [Delta_agr + 20d]). *)
val create :
  node:Ssba_core.Node.t -> cycle_len:float -> ?patience:float -> unit -> t

(** Safe floor for [cycle_len] given the protocol constants. *)
val min_cycle : Ssba_core.Params.t -> float

(** Begin cycling: node 0 proposes cycle 0; ladders cover Byzantine starts. *)
val start : t -> unit

(** Pulses fired so far, oldest first. *)
val pulses : t -> pulse list

(** The cycle index this node is currently waiting for. *)
val next_cycle : t -> int

val set_on_pulse : t -> (pulse -> unit) -> unit

(** The agreement value encoding cycle [i]. *)
val value_of_cycle : int -> string

(** Parse a cycle index back out of an agreement value. *)
val cycle_of_value : string -> int option
