(* Tests for the TPS'87 time-driven baseline. *)

open Helpers
open Ssba_core
module Tps = Ssba_baseline.Tps_agree
module Engine = Ssba_sim.Engine
module Net = Ssba_net.Network

let mk ?(n = 7) ?(g = 0) ?(delay = 0.0001) ?(seed = 1) () =
  let params = Params.default n in
  let engine = Engine.create () in
  let net =
    Net.create ~engine ~n ~delay:(Ssba_net.Delay.fixed delay)
      ~rng:(Ssba_sim.Rng.create seed) ()
  in
  let t_start = 0.1 in
  let returns = ref [] in
  let nodes =
    Array.init n (fun id ->
        let b =
          Tps.create ~id ~params ~clock:Ssba_sim.Clock.perfect ~engine ~net ~g
            ~t_start
        in
        Tps.set_on_return b (fun outcome ~tau_ret ->
            returns := (id, outcome, tau_ret) :: !returns);
        b)
  in
  (params, engine, net, nodes, returns, t_start)

let test_validity () =
  let params, engine, _, nodes, returns, t_start = mk () in
  Engine.schedule engine ~at:t_start (fun () -> Tps.propose nodes.(0) "v");
  ignore (Engine.run ~until:2.0 engine);
  check_int "all return" 7 (List.length !returns);
  List.iter
    (fun (_, o, tau) ->
      check_bool "decided v" true (o = Types.Decided "v");
      (* time-driven: the decision lands exactly at the phase-2 boundary *)
      check_float ~eps:1e-9 "decision at phase 2" (t_start +. (2.0 *. params.Params.phi)) tau)
    !returns

let test_latency_insensitive_to_delay () =
  (* the defining property of the baseline: latency is pinned to phase
     boundaries whether the network is 100x faster or not *)
  let lat delay =
    let _, engine, _, nodes, returns, t_start = mk ~delay () in
    Engine.schedule engine ~at:t_start (fun () -> Tps.propose nodes.(0) "v");
    ignore (Engine.run ~until:2.0 engine);
    List.fold_left (fun acc (_, _, tau) -> Float.max acc (tau -. t_start)) 0.0 !returns
  in
  check_float ~eps:1e-9 "same latency at delta/100 and delta" (lat 0.00001) (lat 0.001)

let test_silent_general_aborts () =
  let params, engine, _, _, returns, t_start = mk () in
  (* nobody proposes: every node must abort by the final boundary *)
  ignore (Engine.run ~until:2.0 engine);
  check_int "all abort" 7 (List.length !returns);
  List.iter (fun (_, o, _) -> check_bool "aborted" true (o = Types.Aborted)) !returns;
  List.iter
    (fun (_, _, tau) ->
      check_bool "by the 2f+3 boundary" true
        (tau -. t_start
        <= (float_of_int ((2 * params.Params.f) + 3) *. params.Params.phi) +. 1e-9))
    !returns

let test_crashed_minority_ok () =
  let params, engine, net, nodes, returns, t_start = mk ~n:7 () in
  (* crash f = 2 non-General nodes before the run: quorums still reachable *)
  Net.set_muted net 5 true;
  Net.set_muted net 6 true;
  ignore params;
  Engine.schedule engine ~at:t_start (fun () -> Tps.propose nodes.(0) "v");
  ignore (Engine.run ~until:2.0 engine);
  let decided = List.filter (fun (_, o, _) -> o = Types.Decided "v") !returns in
  (* the two muted nodes still *receive*, so they decide too; what matters is
     every live node decides the value *)
  check_bool "at least n - f decide" true (List.length decided >= 5)

let test_crashed_majority_aborts () =
  let _, engine, net, nodes, returns, t_start = mk ~n:7 () in
  for i = 2 to 6 do
    Net.set_muted net i true
  done;
  Engine.schedule engine ~at:t_start (fun () -> Tps.propose nodes.(0) "v");
  ignore (Engine.run ~until:2.0 engine);
  List.iter
    (fun (_, o, _) -> check_bool "no decision without quorums" true (o = Types.Aborted))
    !returns

let test_propose_requires_general () =
  let _, _, _, nodes, _, _ = mk () in
  match Tps.propose nodes.(1) "v" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "non-General propose accepted"

let test_message_driven_beats_time_driven () =
  (* the E3 headline, as a regression test: on a fast network the
     message-driven protocol decides at least 3x sooner *)
  let n = 7 in
  let params = Params.default n in
  let fast = 0.05 *. params.Params.delta in
  (* baseline *)
  let _, engine, _, nodes, returns, t_start = mk ~delay:fast () in
  Engine.schedule engine ~at:t_start (fun () -> Tps.propose nodes.(0) "v");
  ignore (Engine.run ~until:2.0 engine);
  let tps_lat =
    List.fold_left (fun acc (_, _, tau) -> Float.max acc (tau -. t_start)) 0.0 !returns
  in
  (* message-driven *)
  let c = Cluster.make ~n ~delay:(`Fixed fast) ~clock:`Perfect () in
  Ssba_sim.Engine.schedule c.Cluster.engine ~at:0.1 (fun () ->
      ignore (Node.propose (Cluster.node c 0) "v"));
  Cluster.run c;
  let ss_lat =
    List.fold_left
      (fun acc (r : Types.return_info) -> Float.max acc (r.Types.rt_ret -. 0.1))
      0.0 (Cluster.returns c)
  in
  check_bool "message-driven at least 3x faster on a fast network" true
    (tps_lat > 3.0 *. ss_lat)

let suite =
  [
    case "validity at phase 2" test_validity;
    case "latency pinned to phases" test_latency_insensitive_to_delay;
    case "silent General aborts" test_silent_general_aborts;
    case "crashed minority ok" test_crashed_minority_ok;
    case "crashed majority aborts" test_crashed_majority_aborts;
    case "propose requires the General" test_propose_requires_general;
    case "message-driven beats time-driven" test_message_driven_beats_time_driven;
  ]
