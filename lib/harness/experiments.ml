(* The experiment suite (DESIGN.md §4): one function per table/figure.

   The PODC'06 paper is a theory paper; its evaluation is the set of proven
   properties and complexity claims. Each experiment here regenerates the
   measurable content of one claim as a table the EXPERIMENTS.md records
   paper-vs-measured. All runs are deterministic in their seeds. *)

open Ssba_core.Types
module Params = Ssba_core.Params
module Rng = Ssba_sim.Rng
module Engine = Ssba_sim.Engine
module Clock = Ssba_sim.Clock
module Network = Ssba_net.Network
module Delay = Ssba_net.Delay
module Node = Ssba_core.Node

let section title = Printf.printf "\n### %s\n\n" title

(* ----- E1: Validity (Theorem 3, Timeliness 2) --------------------------- *)

(* A correct General's value is decided by every correct node within
   [t0 - d, t0 + 4d]. Sweep n; f Byzantine nodes stay silent (worst crash
   case for quorums). *)
let e1_validity ?(ns = [ 4; 7; 10; 16; 25; 31 ]) ?(seeds = [ 1; 2; 3; 4; 5 ]) () =
  section "E1 — Validity under a correct General (Thm 3, Timeliness 2)";
  let tbl =
    Table.create
      [ "n"; "f"; "runs"; "unanimous"; "latency(max,d)"; "skew(max,d)"; "window<=4d" ]
  in
  List.iter
    (fun n ->
      let params = Params.default n in
      let d = params.Params.d in
      let f = params.Params.f in
      let lat = ref [] and skew = ref [] in
      let ok = ref 0 and windowed = ref 0 in
      List.iter
        (fun seed ->
          let t0 = 0.05 in
          let roles =
            (* the f fault slots are silent (crash) nodes, ids n-f .. n-1 *)
            List.init f (fun i ->
                (n - 1 - i, Scenario.Byzantine Ssba_adversary.Strategies.silent))
          in
          let sc =
            Scenario.default ~name:"e1" ~seed ~roles
              ~proposals:[ { g = 0; v = "alpha"; at = t0 } ]
              ~horizon:(t0 +. (4.0 *. params.Params.delta_agr))
              params
          in
          let res = Runner.run sc in
          match Metrics.episodes res with
          | [ e ] ->
              if Checks.validity ~correct:res.Runner.correct ~v:"alpha" e then begin
                incr ok;
                lat := Metrics.latency ~proposed_at:t0 e :: !lat;
                skew := Metrics.decision_skew res e :: !skew;
                if (Checks.timeliness_2 res ~proposed_at:t0 e).Checks.ok then
                  incr windowed
              end
          | _ -> ())
        seeds;
      Table.add_row tbl
        [
          string_of_int n;
          string_of_int f;
          string_of_int (List.length seeds);
          Printf.sprintf "%d/%d" !ok (List.length seeds);
          Table.in_d ~d (Metrics.maximum !lat);
          Table.in_d ~d (Metrics.maximum !skew);
          Printf.sprintf "%d/%d" !windowed (List.length seeds);
        ])
    ns;
  Table.print tbl

(* ----- E2: Agreement under faulty Generals (Thm 3, IA-2/IA-4) ----------- *)

let e2_strategies params : (string * (node_id * Scenario.role) list) list =
  let module S = Ssba_adversary.Strategies in
  let n = params.Params.n in
  let f = params.Params.f in
  let byz strategy = Scenario.Byzantine strategy in
  let extra_spam =
    (* fill the remaining fault budget with spamming participants *)
    List.init (max 0 (f - 1)) (fun i ->
        ( n - 1 - i,
          byz (S.spam ~period:(5.0 *. params.Params.d) ~values:[ "a"; "b" ]) ))
  in
  [
    ("silent-general", (0, byz S.silent) :: extra_spam);
    ( "two-faced-general",
      (0, byz (S.two_faced_general ~v1:"a" ~v2:"b" ~at:0.05)) :: extra_spam );
    ( "stagger-general",
      (0, byz (S.stagger_general ~v:"a" ~at:0.05 ~gap:(3.0 *. params.Params.d)))
      :: extra_spam );
    ( "partial-general",
      ( 0,
        byz
          (S.partial_general ~v:"a" ~at:0.05
             ~targets:(List.init (n - f) (fun i -> i + 1))) )
      :: extra_spam );
    ( "equivocators",
      (* correct General, f equivocating participants *)
      List.init f (fun i -> (n - 1 - i, byz (S.equivocator ~v1:"a" ~v2:"b"))) );
    ( "mimics",
      List.init f (fun i ->
          (n - 1 - i, byz (S.mimic ~delay:(2.0 *. params.Params.d)))) );
  ]

let e2_agreement ?(ns = [ 7; 10; 16; 25 ]) ?(seeds = [ 11; 12; 13 ]) () =
  section "E2 — Agreement under Byzantine Generals/participants (Thm 3)";
  let tbl = Table.create [ "n"; "attack"; "runs"; "episodes"; "decided"; "aborted"; "agreement" ] in
  List.iter
    (fun n ->
      let params = Params.default n in
      List.iter
        (fun (attack, roles) ->
          let episodes = ref 0 and decided = ref 0 and aborted = ref 0 in
          let violations = ref 0 in
          List.iter
            (fun seed ->
              let proposals =
                (* under participant-only attacks, node 0 is a correct
                   General and must still drive agreement through *)
                if List.mem_assoc 0 roles then []
                else [ { Scenario.g = 0; v = "a"; at = 0.05 } ]
              in
              let sc =
                Scenario.default ~name:attack ~seed ~roles ~proposals
                  ~horizon:(0.05 +. (4.0 *. params.Params.delta_agr))
                  params
              in
              let res = Runner.run sc in
              List.iter
                (fun e ->
                  incr episodes;
                  (match Checks.agreement ~correct:res.Runner.correct e with
                  | Checks.Unanimous _ -> incr decided
                  | Checks.All_aborted -> incr aborted
                  | Checks.All_silent | Checks.Violated _ -> ()))
                (Metrics.episodes res);
              (* episode clustering is ambiguous under continuously-spamming
                 Generals; the sound oracle is the pairwise one *)
              violations := !violations + List.length (Checks.pairwise_agreement res))
            seeds;
          Table.add_row tbl
            [
              string_of_int n;
              attack;
              string_of_int (List.length seeds);
              string_of_int !episodes;
              string_of_int !decided;
              string_of_int !aborted;
              (if !violations = 0 then "holds" else Printf.sprintf "VIOLATED x%d" !violations);
            ])
        (e2_strategies params))
    ns;
  Table.print tbl

(* ----- E3: message-driven vs time-driven (the §1/§5 speed claim) -------- *)

(* One ss-Byz-Agree run at a given actual-delay policy; returns mean decision
   latency from the proposal, or None if not all correct nodes decided. *)
let ssba_latency ~params ~seed ~delay =
  let t0 = 0.05 in
  let sc =
    Scenario.default ~name:"e3" ~seed ~delay
      ~clocks:Scenario.Perfect
      ~proposals:[ { g = 0; v = "m"; at = t0 } ]
      ~horizon:(t0 +. (3.0 *. params.Params.delta_agr))
      params
  in
  let res = Runner.run sc in
  match Metrics.episodes res with
  | [ e ] when Checks.validity ~correct:res.Runner.correct ~v:"m" e ->
      Some (Metrics.latency ~proposed_at:t0 e)
  | _ -> None

(* One TPS'87 baseline run with the same delay policy; latency is measured
   from the synchronized phase-0 start. *)
let tps_latency ~params ~seed ~delay =
  let n = params.Params.n in
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let net = Network.create ~engine ~n ~delay ~rng:(Rng.split rng) () in
  let t_start = 0.05 in
  let returns = ref [] in
  let nodes =
    List.init n (fun id ->
        let b =
          Ssba_baseline.Tps_agree.create ~id ~params ~clock:Clock.perfect ~engine
            ~net ~g:0 ~t_start
        in
        Ssba_baseline.Tps_agree.set_on_return b (fun outcome ~tau_ret ->
            returns := (id, outcome, tau_ret) :: !returns);
        b)
  in
  Engine.schedule engine ~at:t_start (fun () ->
      Ssba_baseline.Tps_agree.propose (List.hd nodes) "m");
  let _ = Engine.run ~until:(t_start +. (4.0 *. params.Params.delta_agr)) engine in
  let decided =
    List.filter_map
      (fun (_, o, tau) -> match o with Decided "m" -> Some (tau -. t_start) | _ -> None)
      !returns
  in
  if List.length decided = n then Some (Metrics.maximum decided) else None

(* One EIG (oral messages, f+1 lock-step rounds) run; latency from the
   synchronized start, or None if not all nodes decided the value. *)
let eig_latency ~params ~seed ~delay =
  let n = params.Params.n in
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let net = Network.create ~engine ~n ~delay ~rng:(Rng.split rng) () in
  let t_start = 0.05 in
  let decisions = ref [] in
  let nodes =
    List.init n (fun id ->
        let e =
          Ssba_baseline.Eig_agree.create ~id ~params ~clock:Clock.perfect ~engine
            ~net ~g:0 ~t_start
        in
        Ssba_baseline.Eig_agree.set_on_decide e (fun v ~tau ->
            decisions := (v, tau -. t_start) :: !decisions);
        e)
  in
  Engine.schedule engine ~at:t_start (fun () ->
      Ssba_baseline.Eig_agree.propose (List.hd nodes) "m");
  let _ = Engine.run ~until:(t_start +. (4.0 *. params.Params.delta_agr)) engine in
  let ok = List.filter (fun (v, _) -> v = "m") !decisions in
  if List.length ok = n then Some (Metrics.maximum (List.map snd ok)) else None

let e3_msgdriven ?(ratios = [ 0.01; 0.05; 0.1; 0.2; 0.5; 1.0 ]) ?(n = 7)
    ?(seeds = [ 21; 22; 23 ]) () =
  section "E3 — Message-driven vs time-driven rounds (latency vs actual delay)";
  let params = Params.default n in
  let d = params.Params.d in
  let tbl =
    Table.create
      [ "delay/delta"; "ss-byz-agree(d)"; "tps-87(d)"; "eig(d)"; "speedup vs tps" ]
  in
  List.iter
    (fun ratio ->
      let delay =
        Delay.uniform
          ~lo:(0.2 *. ratio *. params.Params.delta)
          ~hi:(ratio *. params.Params.delta)
      in
      let ours =
        List.filter_map (fun seed -> ssba_latency ~params ~seed ~delay) seeds
      in
      let theirs =
        List.filter_map (fun seed -> tps_latency ~params ~seed ~delay) seeds
      in
      let eig =
        List.filter_map (fun seed -> eig_latency ~params ~seed ~delay) seeds
      in
      let m_ours = Metrics.mean ours and m_theirs = Metrics.mean theirs in
      Table.add_row tbl
        [
          Printf.sprintf "%.2f" ratio;
          Table.in_d ~d m_ours;
          Table.in_d ~d m_theirs;
          Table.in_d ~d (Metrics.mean eig);
          Printf.sprintf "%.1fx" (m_theirs /. m_ours);
        ])
    ratios;
  Table.print tbl

(* ----- E4: convergence from arbitrary states (Corollary 5) -------------- *)

let e4_convergence ?(n = 7) ?(runs = 30) ?(fractions = [ 0.25; 0.5; 0.75; 1.0; 1.25 ])
    () =
  section "E4 — Convergence from scrambled states (Cor. 5: stable by Delta_stb)";
  let params = Params.default n in
  let tbl =
    Table.create [ "propose at"; "runs"; "unanimous"; "violations"; "silent/abort" ]
  in
  List.iter
    (fun frac ->
      let t_p = frac *. params.Params.delta_stb in
      let ok = ref 0 and viol = ref 0 and other = ref 0 in
      for seed = 1 to runs do
        let sc =
          Scenario.default ~name:"e4" ~seed:(1000 + seed)
            ~events:
              [
                Scenario.Scramble
                  { at = 0.0; values = [ "x"; "y"; "z"; "m" ]; net_garbage = 150 };
              ]
            ~proposals:[ { g = seed mod n; v = "m"; at = t_p } ]
            ~horizon:(t_p +. (4.0 *. params.Params.delta_agr))
            params
        in
        let res = Runner.run sc in
        (* Only the post-proposal episode counts; earlier garbage episodes
           are pre-stabilization noise the theory says nothing about. *)
        let eps =
          List.filter
            (fun (e : Metrics.episode) -> Metrics.first_return e >= t_p)
            (Metrics.episodes res)
        in
        let this_ok =
          List.exists
            (fun e -> Checks.validity ~correct:res.Runner.correct ~v:"m" e)
            eps
        in
        let this_viol =
          List.exists
            (fun e -> not (Checks.agreement_holds ~correct:res.Runner.correct e))
            eps
        in
        if this_viol then incr viol
        else if this_ok then incr ok
        else incr other
      done;
      Table.add_row tbl
        [
          Printf.sprintf "%.2f x Dstb" frac;
          string_of_int runs;
          Printf.sprintf "%d/%d" !ok runs;
          string_of_int !viol;
          string_of_int !other;
        ])
    fractions;
  Table.print tbl

(* ----- E5: Timeliness bounds (Timeliness 1a-1d, 2, 3) ------------------- *)

let e5_timeliness ?(ns = [ 7; 13 ]) ?(seeds = List.init 10 (fun i -> 31 + i)) () =
  section "E5 — Timeliness: measured maxima vs paper bounds";
  let tbl = Table.create [ "n"; "property"; "bound"; "measured(max)"; "verdict" ] in
  List.iter
    (fun n ->
      let params = Params.default n in
      let d = params.Params.d in
      let acc : (string, float * float * bool) Hashtbl.t = Hashtbl.create 8 in
      let note (v : Checks.verdict) =
        let m, b, ok =
          match Hashtbl.find_opt acc v.Checks.label with
          | Some (m, b, ok) -> (m, b, ok)
          | None -> (0.0, v.Checks.bound, true)
        in
        Hashtbl.replace acc v.Checks.label
          (Float.max m v.Checks.measured, b, ok && v.Checks.ok)
      in
      List.iter
        (fun seed ->
          let t0 = 0.05 in
          let sc =
            Scenario.default ~name:"e5" ~seed
              ~proposals:[ { g = seed mod n; v = "m"; at = t0 } ]
              ~horizon:(t0 +. (3.0 *. params.Params.delta_agr))
              params
          in
          let res = Runner.run sc in
          List.iter
            (fun e ->
              note (Checks.timeliness_1a res e);
              note (Checks.timeliness_1b res e);
              note (Checks.timeliness_1d res e);
              note (Checks.timeliness_2 res ~proposed_at:t0 e);
              note (Checks.timeliness_3 res e))
            (Metrics.episodes res))
        seeds;
      Hashtbl.fold (fun label v acc -> (label, v) :: acc) acc []
      |> List.sort compare
      |> List.iter (fun (label, (m, b, ok)) ->
             Table.add_row tbl
               [
                 string_of_int n;
                 label;
                 Table.in_d ~d b;
                 Table.in_d ~d m;
                 (if ok then "OK" else "FAIL");
               ]))
    ns;
  Table.print tbl

(* ----- E6: O(f') termination (round-stretcher adversary) ---------------- *)

let e6_early_stop ?(n = 22) ?(fprimes = None) () =
  section "E6 — Termination vs actual faults f' (round-stretcher adversary)";
  let params = Params.default n in
  let f = params.Params.f in
  let fprimes =
    match fprimes with Some l -> l | None -> List.init (f + 1) (fun i -> i)
  in
  let phi = params.Params.phi in
  let tbl =
    Table.create
      [ "f'"; "colluders"; "outcome"; "termination(Phi)"; "expected(Phi)" ]
  in
  List.iter
    (fun fprime ->
      if fprime = 0 then begin
        (* no faults: correct General, fast-path decision *)
        let sc =
          Scenario.default ~name:"e6" ~seed:61 ~clocks:Scenario.Perfect
            ~delay:(Delay.fixed (0.1 *. params.Params.d))
            ~proposals:[ { g = 0; v = "m"; at = 0.05 } ]
            ~horizon:(0.05 +. (2.0 *. params.Params.delta_agr))
            params
        in
        let res = Runner.run sc in
        match Metrics.episodes res with
        | [ e ] ->
            Table.add_row tbl
              [
                "0";
                "-";
                "decided";
                Printf.sprintf "%.2f" (Metrics.max_running_time e /. phi);
                "< 1";
              ]
        | _ -> Table.add_row tbl [ "0"; "-"; "no episode"; "-"; "-" ]
      end
      else begin
        let eps = 0.1 *. params.Params.d in
        let engine = Engine.create () in
        let rng = Rng.create 62 in
        let net =
          Network.create ~engine ~n ~delay:(Delay.fixed eps) ~rng:(Rng.split rng) ()
        in
        let colluders = List.init fprime (fun i -> i) in
        let returns = ref [] in
        List.init n (fun i -> i)
        |> List.iter (fun id ->
               if not (List.mem id colluders) then begin
                 let node =
                   Node.create ~id ~params ~clock:Clock.perfect ~engine ~net ()
                 in
                 Node.subscribe node (fun r -> returns := r :: !returns)
               end);
        let st =
          Ssba_adversary.Round_stretcher.make ~engine ~net ~params ~colluders
            ~v:"evil" ~t0:0.05 ~eps ()
        in
        Ssba_adversary.Round_stretcher.launch st;
        let _ =
          Engine.run ~until:(0.05 +. (3.0 *. params.Params.delta_agr)) engine
        in
        let phases =
          List.map (fun r -> (r.tau_ret -. r.tau_g) /. phi) !returns
        in
        let decided =
          List.exists (fun r -> r.outcome <> Aborted) !returns
        in
        Table.add_row tbl
          [
            string_of_int fprime;
            String.concat "," (List.map string_of_int colluders);
            (if decided then "DECIDED" else "all abort");
            Printf.sprintf "%.2f" (Metrics.maximum phases);
            string_of_int
              (Ssba_adversary.Round_stretcher.expected_abort_phase st);
          ]
      end)
    fprimes;
  (* the decide variant: the adversary lets round 1 complete honestly, so
     block S decides the Byzantine value past the fast-path window *)
  begin
    let eps = 0.1 *. params.Params.d in
    let engine = Engine.create () in
    let rng = Rng.create 63 in
    let net =
      Network.create ~engine ~n ~delay:(Delay.fixed eps) ~rng:(Rng.split rng) ()
    in
    let colluders = [ 0; 1 ] in
    let returns = ref [] in
    List.init n (fun i -> i)
    |> List.iter (fun id ->
           if not (List.mem id colluders) then begin
             let node = Node.create ~id ~params ~clock:Clock.perfect ~engine ~net () in
             Node.subscribe node (fun r -> returns := r :: !returns)
           end);
    let st =
      Ssba_adversary.Round_stretcher.make ~complete_round:true ~engine ~net
        ~params ~colluders ~v:"evil" ~t0:0.05 ~eps ()
    in
    Ssba_adversary.Round_stretcher.launch st;
    let _ = Engine.run ~until:(0.05 +. (3.0 *. params.Params.delta_agr)) engine in
    let phases = List.map (fun r -> (r.tau_ret -. r.tau_g) /. phi) !returns in
    let unanimous =
      List.for_all (fun r -> r.outcome = Decided "evil") !returns
      && List.length !returns = n - 2
    in
    Table.add_row tbl
      [
        "2*";
        "0,1 (+honest rd 1)";
        (if unanimous then "decided \"evil\"" else "INCONSISTENT");
        Printf.sprintf "%.2f" (Metrics.maximum phases);
        Printf.sprintf "<= %d"
          (Ssba_adversary.Round_stretcher.expected_decide_phase st);
      ]
  end;
  Table.print tbl;
  Printf.printf
    "  (f = %d; linear 2f'+5 until capped by block U at 2f+1 = %d; the 2* row\n\
    \   is the decide variant: the stretch plus one honest round-1 broadcast)\n"
    f ((2 * f) + 1)

(* ----- E7: message complexity ------------------------------------------- *)

(* Each msgd-broadcast costs O(n^2) messages (like TPS'87); in the fast path
   every one of the n deciders broadcasts once (block R3), so a full
   agreement is Theta(n^3) — msgs/n^3 should flatten while msgs/n^2 grows. *)
let e7_msg_complexity ?(ns = [ 4; 7; 10; 16; 25; 31 ]) () =
  section "E7 — Message complexity per agreement (O(n^2) per broadcast, n broadcasts)";
  let tbl = Table.create [ "n"; "messages"; "msgs/n^2"; "msgs/n^3"; "by kind" ] in
  List.iter
    (fun n ->
      let params = Params.default n in
      let t0 = 0.05 in
      let sc =
        Scenario.default ~name:"e7" ~seed:71
          ~proposals:[ { g = 0; v = "m"; at = t0 } ]
          ~horizon:(t0 +. (2.0 *. params.Params.delta_agr))
          params
      in
      let res = Runner.run sc in
      let kinds =
        res.Runner.messages_by_kind
        |> List.map (fun (k, c) -> Printf.sprintf "%s:%d" k c)
        |> String.concat " "
      in
      Table.add_row tbl
        [
          string_of_int n;
          string_of_int res.Runner.messages_sent;
          Printf.sprintf "%.1f" (float_of_int res.Runner.messages_sent /. float_of_int (n * n));
          Printf.sprintf "%.2f" (float_of_int res.Runner.messages_sent /. float_of_int (n * n * n));
          kinds;
        ])
    ns;
  Table.print tbl

(* ----- E8: pulse synchronization atop recurrent agreement --------------- *)

let e8_pulse ?(n = 7) ?(cycles = 8) ?(byzantine = 1) () =
  section "E8 — Pulse synchronization atop recurrent ss-Byz-Agree";
  let params = Params.default n in
  let d = params.Params.d in
  let engine = Engine.create () in
  let rng = Rng.create 81 in
  let delay =
    Delay.uniform ~lo:(0.05 *. params.Params.delta) ~hi:params.Params.delta
  in
  let net = Network.create ~engine ~n ~delay ~rng:(Rng.split rng) () in
  let cycle_len = Ssba_pulse.Pulse_sync.min_cycle params *. 1.2 in
  let byz = List.init byzantine (fun i -> ((i * 2) + 1) mod n) in
  let layers =
    List.init n (fun id -> id)
    |> List.filter_map (fun id ->
           if List.mem id byz then begin
             (* Byzantine slot: a silent node (its General turns are skipped
                by the ladder) *)
             Network.set_handler net id (fun _ -> ());
             None
           end
           else begin
             let clock =
               Clock.random (Rng.split rng) ~rho:params.Params.rho
                 ~max_offset:0.01
             in
             let node = Node.create ~id ~params ~clock ~engine ~net () in
             Some (Ssba_pulse.Pulse_sync.create ~node ~cycle_len ())
           end)
  in
  List.iter Ssba_pulse.Pulse_sync.start layers;
  let horizon = float_of_int (cycles + 2) *. (cycle_len +. (float_of_int n *. params.Params.delta_agr)) in
  let _ = Engine.run ~until:horizon engine in
  let tbl = Table.create [ "cycle"; "nodes pulsed"; "skew(d)"; "skew<=3d" ] in
  for c = 0 to cycles - 1 do
    let rts =
      List.filter_map
        (fun layer ->
          List.find_opt
            (fun (p : Ssba_pulse.Pulse_sync.pulse) -> p.Ssba_pulse.Pulse_sync.cycle = c)
            (Ssba_pulse.Pulse_sync.pulses layer)
          |> Option.map (fun (p : Ssba_pulse.Pulse_sync.pulse) -> p.Ssba_pulse.Pulse_sync.rt))
        layers
    in
    let skew = Metrics.span rts in
    Table.add_row tbl
      [
        string_of_int c;
        Printf.sprintf "%d/%d" (List.length rts) (n - byzantine);
        Table.in_d ~d skew;
        Table.yn (skew <= 3.0 *. d *. 1.001);
      ]
  done;
  Table.print tbl

(* ----- E9: primitive-level property conformance (IA / TPS) -------------- *)

(* Not a table from the paper but a direct mechanical check of its §4/§5
   property statements: record every I-accept, broadcast accept and
   broadcaster detection, and validate IA-1, IA-3, IA-4, TPS-2, TPS-3 and
   TPS-4 event by event. *)
let e9_invariants ?(ns = [ 7; 10; 16 ]) ?(seeds = [ 91; 92; 93 ]) () =
  section "E9 — Primitive-level properties checked from observed events";
  let tbl = Table.create [ "n"; "workload"; "runs"; "observations"; "violations" ] in
  List.iter
    (fun n ->
      let params = Params.default n in
      let d = params.Params.d in
      let module S = Ssba_adversary.Strategies in
      let workloads =
        [
          ("correct-general", [], [ { Scenario.g = 0; v = "m"; at = 0.05 } ]);
          ( "two-faced-general",
            [ (0, Scenario.Byzantine (S.two_faced_general ~v1:"a" ~v2:"b" ~at:0.05)) ],
            [] );
          ( "spam+equivocators",
            [
              (n - 1, Scenario.Byzantine (S.spam ~period:(5.0 *. d) ~values:[ "a"; "b" ]));
              (n - 2, Scenario.Byzantine (S.equivocator ~v1:"a" ~v2:"b"));
            ],
            [ { Scenario.g = 0; v = "m"; at = 0.05 } ] );
          ( "recurrent",
            [],
            [
              { Scenario.g = 0; v = "m1"; at = 0.05 };
              { Scenario.g = 0; v = "m2"; at = 0.05 +. (2.0 *. params.Params.delta_0) };
              { Scenario.g = 1; v = "m3"; at = 0.06 };
            ] );
        ]
      in
      List.iter
        (fun (name, roles, proposals) ->
          let obs_total = ref 0 and violations = ref [] in
          List.iter
            (fun seed ->
              let sc =
                Scenario.default ~name ~seed ~roles ~proposals
                  ~record_observations:true
                  ~horizon:(0.05 +. (4.0 *. params.Params.delta_agr))
                  params
              in
              let res = Runner.run sc in
              obs_total := !obs_total + List.length res.Runner.observations;
              violations := Invariants.check res @ !violations)
            seeds;
          Table.add_row tbl
            [
              string_of_int n;
              name;
              string_of_int (List.length seeds);
              string_of_int !obs_total;
              (match !violations with
              | [] -> "none"
              | vs -> Printf.sprintf "%d (!)" (List.length vs));
            ])
        workloads)
    ns;
  Table.print tbl

(* ----- E10: Lossy links masked by the reliable transport ----------------- *)

(* The paper assumes a bounded-delay channel; a persistently lossy link
   breaks that assumption permanently. The transport rebuilds the channel at
   delta_eff. Sweep loss rate x transport on/off: without the transport
   agreement degrades as p grows; with it, every run agrees and the cost
   shows up as retransmissions and a stretched (virtual-time) latency. *)
let e10_lossy_links ?(n = 7) ?(ps = [ 0.0; 0.1; 0.3 ])
    ?(seeds = [ 101; 102; 103 ]) () =
  section "E10 — Lossy links: agreement vs loss rate, with/without transport";
  let tbl =
    Table.create
      [
        "p";
        "transport";
        "agreed";
        "latency(max)";
        "sent";
        "retransmits";
        "dup-suppr";
        "expired";
      ]
  in
  List.iter
    (fun p ->
      List.iter
        (fun transport ->
          let base = Params.default n in
          let tcfg =
            Ssba_transport.Transport.config ~rto:(3.0 *. base.Params.delta) ()
          in
          let params =
            if transport && p > 0.0 then
              Params.default
                ~delta:
                  (Params.delta_eff ~delta:base.Params.delta ~p
                     ~rto:tcfg.Ssba_transport.Transport.rto
                     ~retries:tcfg.Ssba_transport.Transport.retries)
                n
            else base
          in
          let agreed = ref 0 in
          let latency = ref 0.0 in
          let sent = ref 0 and retr = ref 0 in
          let dup = ref 0 and expired = ref 0 in
          List.iter
            (fun seed ->
              let t0 = 0.05 in
              let sc =
                Scenario.default ~name:"e10" ~seed
                  ~events:
                    (if p > 0.0 then [ Scenario.Loss { at = 0.0; p } ] else [])
                  ?transport:(if transport then Some tcfg else None)
                  ~proposals:[ { g = seed mod n; v = "m"; at = t0 } ]
                  ~horizon:(t0 +. (3.0 *. params.Params.delta_agr))
                  params
              in
              let res = Runner.run sc in
              let episodes = Metrics.episodes res in
              if
                List.exists
                  (fun e ->
                    match Checks.agreement ~correct:res.Runner.correct e with
                    | Checks.Unanimous _ -> true
                    | Checks.All_silent | Checks.All_aborted
                    | Checks.Violated _ ->
                        false)
                  episodes
              then incr agreed;
              List.iter
                (fun e ->
                  latency := Float.max !latency (Metrics.max_running_time e))
                episodes;
              sent := !sent + res.Runner.messages_sent;
              retr := !retr + res.Runner.transport_retransmits;
              dup := !dup + res.Runner.transport_dup_suppressed;
              expired := !expired + res.Runner.transport_expired)
            seeds;
          Table.add_row tbl
            [
              Printf.sprintf "%.2f" p;
              (if transport then "on" else "off");
              Printf.sprintf "%d/%d" !agreed (List.length seeds);
              Printf.sprintf "%.3fs" !latency;
              string_of_int !sent;
              string_of_int !retr;
              string_of_int !dup;
              string_of_int !expired;
            ])
        [ false; true ])
    ps;
  Table.print tbl

(* ----- E11: Engine scale sweep ------------------------------------------ *)

(* The simulation engine's own throughput: one correct-General agreement at
   each n, timed against the wall clock. Virtual-time results (events, the
   decision) are seed-deterministic; only the wall-clock columns vary run to
   run, so each point reports the best of [repeats] to damp scheduler noise.
   The bench harness serializes these rows into BENCH_engine.json, which CI's
   bench-smoke job diffs against the committed baseline. *)

type scale_row = {
  sr_n : int;
  sr_events : int;  (* engine events processed (deterministic) *)
  sr_wall_ms : float;  (* best wall-clock time for the run *)
  sr_events_per_sec : float;
  sr_wall_ms_per_sim_s : float;  (* wall ms per simulated second *)
  sr_decided : bool;
}

let e11_workload ~seed n =
  let params = Params.default n in
  let t0 = 0.05 in
  let horizon = t0 +. (2.0 *. params.Params.delta_agr) in
  ( Scenario.default ~name:"e11" ~seed
      ~proposals:[ { Scenario.g = 0; v = "m"; at = t0 } ]
      ~horizon params,
    horizon )

let e11_scale_rows ?(ns = [ 7; 13; 25; 31; 41; 51; 61; 81; 101 ]) ?(seed = 111)
    ?(repeats = 3) () =
  List.map
    (fun n ->
      let sc, horizon = e11_workload ~seed n in
      let best_ms = ref infinity in
      let events = ref 0 in
      let decided = ref false in
      for _ = 1 to repeats do
        let w0 = Unix.gettimeofday () in
        let res = Runner.run sc in
        let w1 = Unix.gettimeofday () in
        events := res.Runner.engine_stats.Engine.events_processed;
        decided :=
          List.exists
            (fun (r : return_info) ->
              match r.outcome with Decided _ -> true | Aborted -> false)
            res.Runner.returns;
        let ms = (w1 -. w0) *. 1000.0 in
        if ms < !best_ms then best_ms := ms
      done;
      {
        sr_n = n;
        sr_events = !events;
        sr_wall_ms = !best_ms;
        sr_events_per_sec = float_of_int !events /. (!best_ms /. 1000.0);
        sr_wall_ms_per_sim_s = !best_ms /. horizon;
        sr_decided = !decided;
      })
    ns

let e11_scale ?ns ?seed ?repeats () =
  section "E11 — Engine scale: events/sec on an agreement workload across n";
  let tbl =
    Table.create
      [ "n"; "events"; "wall(ms)"; "events/sec"; "wall-ms/sim-s"; "decided" ]
  in
  List.iter
    (fun r ->
      Table.add_row tbl
        [
          string_of_int r.sr_n;
          string_of_int r.sr_events;
          Printf.sprintf "%.1f" r.sr_wall_ms;
          Printf.sprintf "%.0f" r.sr_events_per_sec;
          Printf.sprintf "%.1f" r.sr_wall_ms_per_sim_s;
          Table.yn r.sr_decided;
        ])
    (e11_scale_rows ?ns ?seed ?repeats ());
  Table.print tbl

(* ----- E12: recovery under continuous churn (§6.1, Delta_stb) ----------- *)

(* The self-stabilization claim, measured: run each chaos pattern's episodic
   disruption schedule (scramble waves, crash/recover waves, delay surges,
   Byzantine rejoins) and, for every coherent interval the schedule opens,
   measure the time from return-to-coherence until the first unanimous
   probe agreement. Every measured recovery must come in under Delta_stb. *)
let e12_churn ?(ns = [ 7; 10 ]) ?(seeds = [ 121; 122; 123 ]) ?(episodes = 3) ()
    =
  section "E12 — Recovery under continuous churn (per-episode, vs Delta_stb)";
  let tbl =
    Table.create
      [
        "n";
        "pattern";
        "runs";
        "episodes";
        "measured";
        "recovery(mean)";
        "recovery(max)";
        "Dstb";
        "max<=Dstb";
        "agreement";
      ]
  in
  List.iter
    (fun n ->
      let params = Params.default n in
      let f = params.Params.f in
      let byzantine = List.init f (fun i -> n - 1 - i) in
      let correct =
        List.filter (fun i -> not (List.mem i byzantine)) (List.init n Fun.id)
      in
      let roles =
        List.map
          (fun id ->
            ( id,
              Scenario.Byzantine
                (Ssba_adversary.Strategies.spam ~period:(10.0 *. params.Params.d)
                   ~values:[ "junk" ]) ))
          byzantine
      in
      List.iter
        (fun pattern ->
          let sched =
            Chaos.schedule ~episodes pattern ~params ~correct ~byzantine
          in
          let total = ref 0 and recoveries = ref [] in
          let violations = ref 0 in
          List.iter
            (fun seed ->
              let sc =
                Scenario.default
                  ~name:("e12-" ^ Chaos.pattern_name pattern)
                  ~seed ~roles ~events:sched.Chaos.events
                  ~proposals:sched.Chaos.proposals ~horizon:sched.Chaos.horizon
                  params
              in
              let res = Runner.run sc in
              List.iter
                (fun (r : Checks.episode_report) ->
                  if r.Checks.interval.Coherence.after_disruption then begin
                    incr total;
                    match r.Checks.recovery_time with
                    | Some rt -> recoveries := rt :: !recoveries
                    | None -> ()
                  end;
                  violations := !violations + List.length r.Checks.violations)
                (Checks.recovery_report res))
            seeds;
          let stb = params.Params.delta_stb in
          let max_rt = Metrics.maximum !recoveries in
          Table.add_row tbl
            [
              string_of_int n;
              Chaos.pattern_name pattern;
              string_of_int (List.length seeds);
              string_of_int !total;
              string_of_int (List.length !recoveries);
              Printf.sprintf "%.3fs" (Metrics.mean !recoveries);
              Printf.sprintf "%.3fs" max_rt;
              Printf.sprintf "%.3fs" stb;
              Table.yn (max_rt <= stb);
              (if !violations = 0 then "holds"
               else Printf.sprintf "VIOLATED x%d" !violations);
            ])
        Chaos.all_patterns)
    ns;
  Table.print tbl

(* ----- E13: concurrent sessions vs the session-table bound -------------- *)

(* The footnote-9 extension under load: k logical Generals spread over the
   nodes via invocation channels, all firing within one [d], so every node
   hosts ~k overlapping (G, tau_g) sessions at once. The session table's
   memory bound is asserted, not just reported: peak live sessions must stay
   within the fixed capacity, and by the horizon every quiescent session must
   have been collected. *)
let e13_sessions ?(n = 7) ?(sessions = [ 35; 105; 210 ]) ?(seed = 131) () =
  section
    "E13 — Concurrent overlapping sessions per node (footnote 9), bounded \
     session tables";
  let tbl =
    Table.create
      [
        "n";
        "sessions";
        "unanimous";
        "capacity";
        "peak live";
        "peak<=cap";
        "evicted";
        "gced";
        "rejected";
        "live(end)";
      ]
  in
  List.iter
    (fun k ->
      let params = Params.default n in
      let channels = (k + n - 1) / n in
      let t0 = 0.05 in
      let proposals =
        List.init k (fun i ->
            {
              Scenario.g = i;
              v = Printf.sprintf "m%d" i;
              at = t0 +. (float_of_int i /. float_of_int k *. params.Params.d);
            })
      in
      let sc =
        Scenario.default ~name:"e13" ~seed ~proposals ~channels
          ~horizon:(t0 +. (3.0 *. params.Params.delta_agr))
          params
      in
      let res = Runner.run sc in
      let unanimous =
        List.length
          (List.filter
             (fun (e : Metrics.episode) ->
               match Checks.agreement ~correct:res.Runner.correct e with
               | Checks.Unanimous _ -> true
               | _ -> false)
             (Metrics.episodes res))
      in
      let stats =
        List.map (fun (_, nd) -> Node.session_stats nd) res.Runner.nodes
      in
      let top f = List.fold_left (fun a s -> max a (f s)) 0 stats in
      let sum f = List.fold_left (fun a s -> a + f s) 0 stats in
      let capacity = top (fun s -> s.Ssba_core.Session_table.capacity) in
      let peak = top (fun s -> s.Ssba_core.Session_table.peak_live) in
      (* the memory bound itself — a violation is a bug, not a data point *)
      assert (peak <= capacity);
      Table.add_row tbl
        [
          string_of_int n;
          string_of_int k;
          Printf.sprintf "%d/%d" unanimous k;
          string_of_int capacity;
          string_of_int peak;
          Table.yn (peak <= capacity);
          string_of_int (sum (fun s -> s.Ssba_core.Session_table.evicted));
          string_of_int (sum (fun s -> s.Ssba_core.Session_table.gced));
          string_of_int
            (sum (fun s -> s.Ssba_core.Session_table.rejected_at_capacity));
          string_of_int (top (fun s -> s.Ssba_core.Session_table.live));
        ])
    sessions;
  Table.print tbl

let run_all () =
  e1_validity ();
  e2_agreement ();
  e3_msgdriven ();
  e4_convergence ();
  e5_timeliness ();
  e6_early_stop ();
  e7_msg_complexity ();
  e8_pulse ();
  e9_invariants ();
  e10_lossy_links ();
  e11_scale ();
  e12_churn ();
  e13_sessions ()
