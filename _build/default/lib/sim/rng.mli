(** Deterministic splittable pseudo-random number generator (splitmix64).

    One root seed drives the whole simulation: every component derives its own
    independent stream with {!split}, so runs are reproducible regardless of
    the order in which components consume randomness. *)

type t

(** [create seed] builds a generator from an integer seed. *)
val create : int -> t

(** [split t] returns a fresh generator statistically independent from [t];
    [t] is advanced. *)
val split : t -> t

(** [copy t] snapshots the generator state. *)
val copy : t -> t

(** [bits t] returns 62 fresh pseudo-random bits as a non-negative [int]. *)
val bits : t -> int

(** [int t bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)
val int : t -> int -> int

(** [int_in_range t ~lo ~hi] is uniform in [\[lo, hi\]] (inclusive). *)
val int_in_range : t -> lo:int -> hi:int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [float_in_range t ~lo ~hi] is uniform in [\[lo, hi)]. *)
val float_in_range : t -> lo:float -> hi:float -> float

(** Fair coin. *)
val bool : t -> bool

(** Uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a

(** Uniform element of a non-empty list. *)
val pick_list : t -> 'a list -> 'a

(** Fisher–Yates shuffle (returns a fresh array). *)
val shuffle : t -> 'a array -> 'a array

(** [subset t ~k arr] is a uniform [k]-element subset of [arr]. *)
val subset : t -> k:int -> 'a array -> 'a array
