(* Scenario interpreter: builds the engine, network, correct nodes and
   Byzantine behaviours, applies the event schedule, runs to the horizon and
   packages everything the metrics/checks layers need. *)

open Ssba_core.Types
module Rng = Ssba_sim.Rng
module Engine = Ssba_sim.Engine
module Clock = Ssba_sim.Clock
module Trace = Ssba_sim.Trace
module Metrics = Ssba_sim.Metrics
module Network = Ssba_net.Network
module Node = Ssba_core.Node
module Params = Ssba_core.Params

type observation = {
  obs_node : node_id;
  obs_g : general;
  obs : Ssba_core.Ss_byz_agree.observation;
  obs_rt : float;  (* engine real time at which the event fired *)
}

(* What became of a scheduled proposal, evaluated at its [at] time. A General
   that is Byzantine (or simply has no correct node) is [No_general] — not a
   protocol-level refusal, since no correct code ever ran. *)
type proposal_outcome =
  | Accepted
  | Refused of Node.propose_error
  | No_general

type result = {
  scenario : Scenario.t;
  returns : return_info list;  (* correct-node returns, in rt order *)
  observations : observation list;  (* chronological; empty unless enabled *)
  correct : node_id list;
  clocks : Clock.t array;  (* indexed by node id; Byzantine entries too *)
  nodes : (node_id * Node.t) list;  (* the correct protocol nodes *)
  proposal_results : (Scenario.proposal * proposal_outcome) list;
  engine_stats : Engine.stats;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  messages_in_flight : int;  (* scheduled but undelivered at the horizon *)
  messages_by_kind : (string * int) list;
  metrics : Metrics.t;  (* the engine's registry: net.*, engine.*, node<i>.* *)
  trace : Trace.t;
}

let build_clock rng = function
  | Scenario.Perfect -> Clock.perfect
  | Scenario.Drifting { rho; max_offset } -> Clock.random rng ~rho ~max_offset

(* Forged in-flight garbage for the incoherent period: random protocol
   messages claiming random senders, delivered over the next ~Delta_rmv. *)
let inject_garbage ~rng ~params ~net ~values ~count =
  let n = params.Params.n in
  for _ = 1 to count do
    let claimed_src = Rng.int rng n in
    let dst = Rng.int rng n in
    let g = Rng.int rng n in
    let v = Rng.pick_list rng values in
    let payload =
      match Rng.int rng 8 with
      | 0 -> Initiator { g; v }
      | 1 -> Ia { kind = Support; g; v }
      | 2 -> Ia { kind = Approve; g; v }
      | 3 -> Ia { kind = Ready; g; v }
      | c ->
          let kind = match c with 4 -> Init | 5 -> Echo | 6 -> Init2 | _ -> Echo2 in
          Mb { kind; p = Rng.int rng n; g; v; k = 1 + Rng.int rng (max 1 (params.Params.f + 1)) }
    in
    let delay = Rng.float rng params.Params.delta_rmv in
    Network.inject_forged net ~claimed_src ~dst ~delay payload
  done

let run_with ~execute (sc : Scenario.t) =
  let params = sc.Scenario.params in
  let n = params.Params.n in
  let root = Rng.create sc.Scenario.seed in
  let net_rng = Rng.split root in
  let clock_rng = Rng.split root in
  let adv_rng = Rng.split root in
  let scramble_rng = Rng.split root in
  let trace = Trace.create ~enabled:sc.Scenario.record_trace () in
  let engine = Engine.create ~trace () in
  let net =
    Network.create ~engine ~n ~delay:sc.Scenario.delay ~rng:net_rng
      ~kind_of:kind_of_message ()
  in
  let clocks = Array.init n (fun _ -> build_clock clock_rng sc.Scenario.clocks) in
  (* Correct nodes first, then Byzantine behaviours (which overwrite the
     network handler for their id). *)
  let nodes = ref [] in
  let returns = ref [] in
  let observations = ref [] in
  for id = 0 to n - 1 do
    match Scenario.role_of sc id with
    | Scenario.Correct ->
        let node =
          Node.create ~id ~params ~clock:clocks.(id) ~engine ~net ()
        in
        Node.subscribe node (fun r -> returns := r :: !returns);
        if sc.Scenario.record_observations then
          Node.subscribe_observations node (fun g obs ->
              observations :=
                { obs_node = id; obs_g = g; obs; obs_rt = Engine.now engine }
                :: !observations);
        nodes := (id, node) :: !nodes
    | Scenario.Byzantine _ -> ()
  done;
  let nodes = List.rev !nodes in
  for id = 0 to n - 1 do
    match Scenario.role_of sc id with
    | Scenario.Correct -> ()
    | Scenario.Byzantine b ->
        Ssba_adversary.Behavior.install b
          {
            Ssba_adversary.Behavior.self = id;
            params;
            engine;
            rng = Rng.split adv_rng;
            net;
            clock = clocks.(id);
          }
  done;
  (* Event schedule. *)
  List.iter
    (fun ev ->
      match ev with
      | Scenario.Crash { node; at } ->
          Engine.schedule engine ~at (fun () -> Network.set_muted net node true)
      | Scenario.Recover { node; at } ->
          Engine.schedule engine ~at (fun () -> Network.set_muted net node false)
      | Scenario.Scramble { at; values; net_garbage } ->
          Engine.schedule engine ~at (fun () ->
              List.iter
                (fun (_, node) -> Node.scramble scramble_rng ~values node)
                nodes;
              inject_garbage ~rng:scramble_rng ~params ~net ~values
                ~count:net_garbage;
              Engine.record engine ~node:(-1)
                (Trace.Scramble { garbage = net_garbage }))
      | Scenario.Drop_prob { at; p } ->
          Engine.schedule engine ~at (fun () -> Network.set_drop_prob net p)
      | Scenario.Partition { at; blocked = ga, gb } ->
          Engine.schedule engine ~at (fun () ->
              Network.set_partition net
                (Some
                   (fun ~src ~dst ->
                     (List.mem src ga && List.mem dst gb)
                     || (List.mem src gb && List.mem dst ga))))
      | Scenario.Heal { at } ->
          Engine.schedule engine ~at (fun () ->
              Network.set_partition net None;
              Network.set_drop_prob net 0.0))
    sc.Scenario.events;
  (* Proposals by correct Generals. Every proposal — including one whose
     General is Byzantine or absent — is evaluated at its scheduled [at], so
     [proposal_results] comes out in chronological order (engine ties break
     by scheduling order). *)
  let proposal_results = ref [] in
  List.iter
    (fun (p : Scenario.proposal) ->
      Engine.schedule engine ~at:p.Scenario.at (fun () ->
          let outcome =
            match List.assoc_opt p.Scenario.g nodes with
            | None -> No_general
            | Some node -> (
                match Node.propose node p.Scenario.v with
                | Ok () -> Accepted
                | Error e -> Refused e)
          in
          proposal_results := (p, outcome) :: !proposal_results))
    sc.Scenario.proposals;
  let engine_stats = execute ~until:sc.Scenario.horizon engine in
  {
    scenario = sc;
    returns =
      List.sort (fun a b -> compare a.rt_ret b.rt_ret) !returns;
    observations = List.rev !observations;
    correct = Scenario.correct_ids sc;
    clocks;
    nodes;
    proposal_results = List.rev !proposal_results;
    engine_stats;
    messages_sent = Network.messages_sent net;
    messages_delivered = Network.messages_delivered net;
    messages_dropped = Network.messages_dropped net;
    messages_in_flight = Network.messages_in_flight net;
    messages_by_kind = Network.sent_by_kind net;
    metrics = Engine.metrics engine;
    trace;
  }

let run sc = run_with ~execute:(fun ~until engine -> Engine.run ~until engine) sc

(* Same run, paced against the wall clock (live-demo mode). *)
let run_paced ?(speed = 1.0) sc =
  run_with
    ~execute:(fun ~until engine -> Engine.run_realtime ~speed ~until engine)
    sc
