(** Aligned plain-text tables for experiment output. *)

type t

val create : string list -> t

(** Append a row (printed in insertion order). *)
val add_row : t -> string list -> unit

(** [addf t "%d|%s" ...] appends a row from a ['|']-separated format. *)
val addf : t -> ('a, unit, string, unit) format4 -> 'a

(** Render with auto-sized columns, header separator and trailing newline. *)
val render : t -> string

val print : t -> unit

(** Numeric cell helpers. *)
val f3 : float -> string

val f6 : float -> string

(** Seconds rendered as milliseconds. *)
val ms : float -> string

(** A duration rendered in units of [d], e.g. ["2.00d"]. *)
val in_d : d:float -> float -> string

val yn : bool -> string
