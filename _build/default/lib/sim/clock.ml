(* Drifting hardware clocks (paper §2, Definition 1, Bounded Drift).

   A non-faulty node's physical timer advances at a constant rate within
   [1 - rho, 1 + rho] of real time, from an arbitrary offset:

     local(t) = offset + rate * t

   The offset is arbitrary because transient faults may leave local clocks
   arbitrarily far apart; only *intervals* of local time are meaningful to
   the protocol, matching the paper's use of rt(tau). *)

type t = { offset : float; rate : float }

let create ~offset ~rate =
  if rate <= 0.0 then invalid_arg "Clock.create: rate must be positive";
  { offset; rate }

let perfect = { offset = 0.0; rate = 1.0 }

let random rng ~rho ~max_offset =
  if rho < 0.0 || rho >= 1.0 then invalid_arg "Clock.random: rho out of range";
  let rate = Rng.float_in_range rng ~lo:(1.0 -. rho) ~hi:(1.0 +. rho) in
  let offset = Rng.float_in_range rng ~lo:(-.max_offset) ~hi:max_offset in
  { offset; rate }

let read t ~now = t.offset +. (t.rate *. now)

let rate t = t.rate
let offset t = t.offset

(* A local-time duration [dl] elapses over real duration [dl / rate]. *)
let real_of_local_duration t dl = dl /. t.rate
let local_of_real_duration t dr = dr *. t.rate

(* Real time at which the clock will read [tau]; inverse of [read]. *)
let real_time_of_reading t tau = (tau -. t.offset) /. t.rate
