lib/sim/clock.mli: Rng
