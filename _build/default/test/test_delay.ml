(* Tests for the delay policies and message envelopes. *)

open Helpers
module Delay = Ssba_net.Delay
module Msg = Ssba_net.Msg
module Rng = Ssba_sim.Rng

let draw policy ~src ~dst =
  Delay.draw policy ~rng:(Rng.create 1) ~src ~dst ~now:0.0

let test_fixed () =
  check_float "fixed" 0.25 (draw (Delay.fixed 0.25) ~src:0 ~dst:1);
  match Delay.fixed (-1.0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative fixed delay accepted"

let test_uniform () =
  let policy = Delay.uniform ~lo:0.1 ~hi:0.2 in
  let rng = Rng.create 2 in
  for _ = 1 to 500 do
    let x = Delay.draw policy ~rng ~src:0 ~dst:1 ~now:0.0 in
    check_bool "within range" true (x >= 0.1 && x < 0.2)
  done;
  match Delay.uniform ~lo:0.2 ~hi:0.1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "inverted range accepted"

let test_bimodal () =
  let policy = Delay.bimodal ~fast:0.01 ~slow:0.1 ~slow_prob:0.3 in
  let rng = Rng.create 3 in
  let slow = ref 0 in
  for _ = 1 to 1000 do
    let x = Delay.draw policy ~rng ~src:0 ~dst:1 ~now:0.0 in
    check_bool "one of the two modes" true (x = 0.01 || x = 0.1);
    if x = 0.1 then incr slow
  done;
  check_bool "slow fraction near 30%" true (!slow > 200 && !slow < 400);
  (match Delay.bimodal ~fast:0.2 ~slow:0.1 ~slow_prob:0.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "slow < fast accepted");
  match Delay.bimodal ~fast:0.1 ~slow:0.2 ~slow_prob:1.5 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "probability > 1 accepted"

let test_per_link () =
  let policy =
    Delay.per_link (fun ~src ~dst -> float_of_int ((10 * src) + dst) /. 1000.0)
  in
  check_float "link 2->3" 0.023 (draw policy ~src:2 ~dst:3);
  check_float "link 0->1" 0.001 (draw policy ~src:0 ~dst:1)

let test_custom () =
  (* a custom schedule can depend on the current time *)
  let policy = Delay.custom (fun ~rng:_ ~src:_ ~dst:_ ~now -> if now < 1.0 then 0.5 else 0.01) in
  check_float "early" 0.5 (Delay.draw policy ~rng:(Rng.create 1) ~src:0 ~dst:0 ~now:0.0);
  check_float "late" 0.01 (Delay.draw policy ~rng:(Rng.create 1) ~src:0 ~dst:0 ~now:2.0)

let test_msg_make () =
  let m = Msg.make ~src:1 ~dst:2 ~sent_at:0.5 "payload" in
  check_int "src" 1 m.Msg.src;
  check_int "dst" 2 m.Msg.dst;
  check_float "sent_at" 0.5 m.Msg.sent_at;
  check_bool "not forged" false m.Msg.forged;
  check_str "payload" "payload" m.Msg.payload

let test_msg_forge () =
  let m = Msg.forge ~claimed_src:9 ~dst:2 ~sent_at:0.5 "x" in
  check_int "claimed src" 9 m.Msg.src;
  check_bool "flagged forged" true m.Msg.forged

let test_msg_pp () =
  let m = Msg.forge ~claimed_src:9 ~dst:2 ~sent_at:0.5 "x" in
  let s = Fmt.str "%a" (Msg.pp Fmt.string) m in
  check_bool "mentions forged" true
    (String.length s > 0
    &&
    let rec has i =
      i + 8 <= String.length s && (String.sub s i 8 = "(forged)" || has (i + 1))
    in
    has 0)

let suite =
  [
    case "fixed" test_fixed;
    case "uniform" test_uniform;
    case "bimodal" test_bimodal;
    case "per-link" test_per_link;
    case "custom" test_custom;
    case "msg make" test_msg_make;
    case "msg forge" test_msg_forge;
    case "msg pp" test_msg_pp;
  ]
