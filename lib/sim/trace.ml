(* Structured run traces.

   Components record typed events (real-time, node, event); tests and the CLI
   filter, pretty-print and export them. Recording can be disabled wholesale
   for large benchmark runs, where the trace would dominate memory.

   Events carry their data *unformatted* — ints, floats and the strings that
   already exist (values, message-kind literals). Rendering to text happens
   only in [pp]/[to_jsonl], so a disabled trace performs zero detail-string
   allocations on the hot path; the [Ext] escape hatch defers rendering
   behind a closure for the same reason. *)

type event =
  | Send of { src : int; dst : int; msg : string }
  | Deliver of { src : int; dst : int; msg : string }
  | Drop of { src : int; dst : int; msg : string; reason : string }
  | Propose of { g : int; v : string }
  | Ia_invoke of { g : int; v : string }
  | Ia_reject of { g : int; v : string }
  | Ia_skip of { g : int; reason : string }
  | I_accept of { g : int; v : string; tau_g : float }
  | Anchor_set of { g : int; tau_g : float }
  | Mb_accept of { g : int; p : int; v : string; k : int }
  | Mb_broadcaster of { g : int; p : int; total : int }
  | Agree_return of { g : int; decided : string option; tau_g : float }
  | Ig3_failure of { g : int }
  | Scramble of { garbage : int }
  | Reform of { node : int }
      (* a Byzantine node rejoined the correct protocol from arbitrary state *)
  | Delay_surge of { factor : float }
      (* delivery delays scaled by [factor]; 0.0 marks the restore *)
  | Duplicate of { src : int; dst : int; msg : string }
      (* network-level duplication fault: a second copy of a sent message *)
  | Retransmit of { src : int; dst : int; msg : string; attempt : int }
      (* transport resending an unacked frame; [attempt] is 1-based *)
  | Dup_suppress of { src : int; dst : int; seq : int }
      (* transport receive-side dedup dropped an already-seen frame *)
  | Retries_exhausted of { src : int; dst : int; msg : string; seq : int }
      (* transport gave up on an unacked frame after the retry cap *)
  | Service_admit of { g : int; live : int }
      (* service admission controller let a proposal through *)
  | Service_shed of { g : int; reason : string }
      (* service admission controller turned a proposal away *)
  | Service_queue of { g : int; depth : int }
      (* proposal parked in the bounded pending queue; [depth] after *)
  | Service_mode of { degraded : bool; live : int }
      (* overload detector flipped the service mode *)
  | Session_evict of { g : int }
      (* a full session table dropped G's live session to make room *)
  | Ext of { kind : string; render : unit -> string }
      (* generic extension: layers without a dedicated constructor (baselines,
         adversaries) tag an event and defer its rendering *)

let kind_of_event = function
  | Send _ -> "send"
  | Deliver _ -> "deliver"
  | Drop _ -> "drop"
  | Propose _ -> "propose"
  | Ia_invoke _ -> "ia-invoke"
  | Ia_reject _ -> "ia-k1-reject"
  | Ia_skip _ -> "ia-n4-skip"
  | I_accept _ -> "i-accept"
  | Anchor_set _ -> "anchor-set"
  | Mb_accept _ -> "mb-accept"
  | Mb_broadcaster _ -> "mb-broadcaster"
  | Agree_return _ -> "agree-return"
  | Ig3_failure _ -> "ig3-failure"
  | Scramble _ -> "scramble"
  | Reform _ -> "reform"
  | Delay_surge _ -> "delay-surge"
  | Duplicate _ -> "duplicate"
  | Retransmit _ -> "retransmit"
  | Dup_suppress _ -> "dup-suppress"
  | Retries_exhausted _ -> "retries-exhausted"
  | Service_admit _ -> "service-admit"
  | Service_shed _ -> "service-shed"
  | Service_queue _ -> "service-queue"
  | Service_mode _ -> "service-mode"
  | Session_evict _ -> "session-evict"
  | Ext { kind; _ } -> kind

(* The only place event data is turned into text. *)
let detail_of_event = function
  | Send { src; dst; msg } | Deliver { src; dst; msg } ->
      Printf.sprintf "%s %d->%d" msg src dst
  | Drop { src; dst; msg; reason } ->
      Printf.sprintf "%s %d->%d (%s)" msg src dst reason
  | Propose { g; v } | Ia_invoke { g; v } | Ia_reject { g; v } ->
      Printf.sprintf "G=%d v=%S" g v
  | Ia_skip { g; reason } -> Printf.sprintf "G=%d %s" g reason
  | I_accept { g; v; tau_g } -> Printf.sprintf "G=%d v=%S tauG=%.6f" g v tau_g
  | Anchor_set { g; tau_g } -> Printf.sprintf "G=%d tauG=%.6f" g tau_g
  | Mb_accept { g; p; v; k } -> Printf.sprintf "G=%d p=%d v=%S k=%d" g p v k
  | Mb_broadcaster { g; p; total } ->
      Printf.sprintf "G=%d p=%d (total %d)" g p total
  | Agree_return { g; decided = Some v; tau_g } ->
      Printf.sprintf "G=%d decided %S tauG=%.6f" g v tau_g
  | Agree_return { g; decided = None; tau_g } ->
      Printf.sprintf "G=%d aborted tauG=%.6f" g tau_g
  | Ig3_failure { g } -> Printf.sprintf "logical G=%d quiet for Dreset" g
  | Scramble { garbage } -> Printf.sprintf "%d garbage messages" garbage
  | Reform { node } -> Printf.sprintf "node %d rejoins the correct protocol" node
  | Delay_surge { factor } ->
      if factor = 0.0 then "base delay restored"
      else Printf.sprintf "delays scaled by %g" factor
  | Duplicate { src; dst; msg } -> Printf.sprintf "%s %d->%d (dup)" msg src dst
  | Retransmit { src; dst; msg; attempt } ->
      Printf.sprintf "%s %d->%d (attempt %d)" msg src dst attempt
  | Dup_suppress { src; dst; seq } ->
      Printf.sprintf "%d->%d seq=%d" src dst seq
  | Retries_exhausted { src; dst; msg; seq } ->
      Printf.sprintf "%s %d->%d seq=%d (gave up)" msg src dst seq
  | Service_admit { g; live } -> Printf.sprintf "G=%d live=%d" g live
  | Service_shed { g; reason } -> Printf.sprintf "G=%d (%s)" g reason
  | Service_queue { g; depth } -> Printf.sprintf "G=%d depth=%d" g depth
  | Service_mode { degraded; live } ->
      Printf.sprintf "%s live=%d" (if degraded then "degraded" else "normal") live
  | Session_evict { g } -> Printf.sprintf "G=%d" g
  | Ext { render; _ } -> render ()

(* Structural equality; [Ext] compares by kind and rendered detail (its
   closure has no useful identity). Used by the JSONL round-trip tests. *)
let equal_event a b =
  match (a, b) with
  | Ext { kind = ka; render = ra }, Ext { kind = kb; render = rb } ->
      String.equal ka kb && String.equal (ra ()) (rb ())
  | Ext _, _ | _, Ext _ -> false
  | a, b -> a = b

type entry = { time : float; node : int; event : event }

let entry_kind e = kind_of_event e.event
let entry_detail e = detail_of_event e.event

let equal_entry a b =
  Float.equal a.time b.time && a.node = b.node && equal_event a.event b.event

type t = { mutable entries : entry list; mutable enabled : bool; mutable count : int }

let create ?(enabled = true) () = { entries = []; enabled; count = 0 }

let enable t = t.enabled <- true
let disable t = t.enabled <- false
let is_enabled t = t.enabled

let record t ~time ~node event =
  if t.enabled then begin
    t.entries <- { time; node; event } :: t.entries;
    t.count <- t.count + 1
  end

let clear t =
  t.entries <- [];
  t.count <- 0

let count t = t.count

(* Entries in chronological order. *)
let to_list t = List.rev t.entries

let filter ?node ?kind t =
  let keep e =
    (match node with None -> true | Some n -> e.node = n)
    && match kind with None -> true | Some k -> String.equal (entry_kind e) k
  in
  List.filter keep (to_list t)

let pp_entry ppf e =
  let detail = entry_detail e in
  if e.node < 0 then Fmt.pf ppf "[%10.6f]  <sys>  %-12s %s" e.time (entry_kind e) detail
  else Fmt.pf ppf "[%10.6f]  n%-4d  %-12s %s" e.time e.node (entry_kind e) detail

let pp ppf t =
  List.iter (fun e -> Fmt.pf ppf "%a@." pp_entry e) (to_list t)

(* ----- JSONL export / import ------------------------------------------- *)

let i x = Json.Num (float_of_int x)

let fields_of_event = function
  | Send { src; dst; msg } | Deliver { src; dst; msg } ->
      [ ("src", i src); ("dst", i dst); ("msg", Json.Str msg) ]
  | Drop { src; dst; msg; reason } ->
      [ ("src", i src); ("dst", i dst); ("msg", Json.Str msg); ("reason", Json.Str reason) ]
  | Propose { g; v } | Ia_invoke { g; v } | Ia_reject { g; v } ->
      [ ("g", i g); ("v", Json.Str v) ]
  | Ia_skip { g; reason } -> [ ("g", i g); ("reason", Json.Str reason) ]
  | I_accept { g; v; tau_g } ->
      [ ("g", i g); ("v", Json.Str v); ("tau_g", Json.Num tau_g) ]
  | Anchor_set { g; tau_g } -> [ ("g", i g); ("tau_g", Json.Num tau_g) ]
  | Mb_accept { g; p; v; k } ->
      [ ("g", i g); ("p", i p); ("v", Json.Str v); ("k", i k) ]
  | Mb_broadcaster { g; p; total } -> [ ("g", i g); ("p", i p); ("total", i total) ]
  | Agree_return { g; decided; tau_g } ->
      [
        ("g", i g);
        ("decided", match decided with Some v -> Json.Str v | None -> Json.Null);
        ("tau_g", Json.Num tau_g);
      ]
  | Ig3_failure { g } -> [ ("g", i g) ]
  | Scramble { garbage } -> [ ("garbage", i garbage) ]
  | Reform { node } -> [ ("reformed", i node) ]
  | Delay_surge { factor } -> [ ("factor", Json.Num factor) ]
  | Duplicate { src; dst; msg } ->
      [ ("src", i src); ("dst", i dst); ("msg", Json.Str msg) ]
  | Retransmit { src; dst; msg; attempt } ->
      [ ("src", i src); ("dst", i dst); ("msg", Json.Str msg); ("attempt", i attempt) ]
  | Dup_suppress { src; dst; seq } ->
      [ ("src", i src); ("dst", i dst); ("seq", i seq) ]
  | Retries_exhausted { src; dst; msg; seq } ->
      [ ("src", i src); ("dst", i dst); ("msg", Json.Str msg); ("seq", i seq) ]
  | Service_admit { g; live } -> [ ("g", i g); ("live", i live) ]
  | Service_shed { g; reason } -> [ ("g", i g); ("reason", Json.Str reason) ]
  | Service_queue { g; depth } -> [ ("g", i g); ("depth", i depth) ]
  | Service_mode { degraded; live } ->
      [ ("degraded", Json.Bool degraded); ("live", i live) ]
  | Session_evict { g } -> [ ("g", i g) ]
  | Ext { render; _ } -> [ ("detail", Json.Str (render ())) ]

let json_of_entry e =
  Json.Obj
    (("time", Json.Num e.time)
    :: ("node", i e.node)
    :: ("kind", Json.Str (entry_kind e))
    :: fields_of_event e.event)

exception Import_error of string

let event_of_json ~kind j =
  let get name = Json.member name j in
  let req to_x name =
    match Option.bind (get name) to_x with
    | Some x -> x
    | None -> raise (Import_error (Printf.sprintf "missing/bad field %S for %S" name kind))
  in
  let gi = req Json.to_int_opt in
  let gs = req Json.to_string_opt in
  let gf = req Json.to_float_opt in
  match kind with
  | "send" -> Send { src = gi "src"; dst = gi "dst"; msg = gs "msg" }
  | "deliver" -> Deliver { src = gi "src"; dst = gi "dst"; msg = gs "msg" }
  | "drop" ->
      Drop { src = gi "src"; dst = gi "dst"; msg = gs "msg"; reason = gs "reason" }
  | "propose" -> Propose { g = gi "g"; v = gs "v" }
  | "ia-invoke" -> Ia_invoke { g = gi "g"; v = gs "v" }
  | "ia-k1-reject" -> Ia_reject { g = gi "g"; v = gs "v" }
  | "ia-n4-skip" -> Ia_skip { g = gi "g"; reason = gs "reason" }
  | "i-accept" -> I_accept { g = gi "g"; v = gs "v"; tau_g = gf "tau_g" }
  | "anchor-set" -> Anchor_set { g = gi "g"; tau_g = gf "tau_g" }
  | "mb-accept" -> Mb_accept { g = gi "g"; p = gi "p"; v = gs "v"; k = gi "k" }
  | "mb-broadcaster" ->
      Mb_broadcaster { g = gi "g"; p = gi "p"; total = gi "total" }
  | "agree-return" ->
      Agree_return
        {
          g = gi "g";
          decided =
            (match get "decided" with
            | Some (Json.Str v) -> Some v
            | Some Json.Null | None -> None
            | Some _ -> raise (Import_error "bad decided field"));
          tau_g = gf "tau_g";
        }
  | "ig3-failure" -> Ig3_failure { g = gi "g" }
  | "scramble" -> Scramble { garbage = gi "garbage" }
  | "reform" -> Reform { node = gi "reformed" }
  | "delay-surge" -> Delay_surge { factor = gf "factor" }
  | "duplicate" -> Duplicate { src = gi "src"; dst = gi "dst"; msg = gs "msg" }
  | "retransmit" ->
      Retransmit
        { src = gi "src"; dst = gi "dst"; msg = gs "msg"; attempt = gi "attempt" }
  | "dup-suppress" ->
      Dup_suppress { src = gi "src"; dst = gi "dst"; seq = gi "seq" }
  | "retries-exhausted" ->
      Retries_exhausted
        { src = gi "src"; dst = gi "dst"; msg = gs "msg"; seq = gi "seq" }
  | "service-admit" -> Service_admit { g = gi "g"; live = gi "live" }
  | "service-shed" -> Service_shed { g = gi "g"; reason = gs "reason" }
  | "service-queue" -> Service_queue { g = gi "g"; depth = gi "depth" }
  | "service-mode" ->
      Service_mode
        {
          degraded =
            (match Json.member "degraded" j with
            | Some (Json.Bool b) -> b
            | _ -> raise (Import_error "bad degraded field"));
          live = gi "live";
        }
  | "session-evict" -> Session_evict { g = gi "g" }
  | kind ->
      let detail =
        match Option.bind (get "detail") Json.to_string_opt with
        | Some d -> d
        | None -> ""
      in
      Ext { kind; render = (fun () -> detail) }

let entry_of_json j =
  let req to_x name =
    match Option.bind (Json.member name j) to_x with
    | Some x -> x
    | None -> raise (Import_error (Printf.sprintf "missing/bad entry field %S" name))
  in
  let kind = req Json.to_string_opt "kind" in
  {
    time = req Json.to_float_opt "time";
    node = req Json.to_int_opt "node";
    event = event_of_json ~kind j;
  }

(* One JSON object per line, chronological. *)
let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Json.to_buffer buf (json_of_entry e);
      Buffer.add_char buf '\n')
    (to_list t);
  Buffer.contents buf

let entries_of_jsonl s =
  String.split_on_char '\n' s
  |> List.filter (fun line -> String.trim line <> "")
  |> List.map (fun line ->
         match Json.of_string line with
         | j -> entry_of_json j
         | exception Json.Parse_error msg -> raise (Import_error msg))
