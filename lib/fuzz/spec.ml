(* Serializable scenario descriptions.

   The JSON codec is hand-rolled over Ssba_sim.Json like the trace/metrics
   exporters: every float goes through Json.Num (lossless %.17g rendering),
   so spec -> JSON -> spec is structural identity and a replay file
   reproduces the original run digest exactly. *)

open Ssba_core.Types
module J = Ssba_sim.Json
module S = Ssba_harness.Scenario
module C = Ssba_adversary.Catalog
module P = Ssba_core.Params
module T = Ssba_transport.Transport
module W = Ssba_service.Workload

type delay =
  | Fixed of float
  | Uniform of { lo : float; hi : float }
  | Bimodal of { fast : float; slow : float; slow_prob : float }
  | Edge of { atoms : float list }
      (* boundary sampling: every hop picks uniformly among a small set of
         atoms chosen so that short chains of hops land exactly on the
         protocol's comparison boundaries (4d, 5d, the 3d skew deadline, the
         tau_g - d purge horizon). Interior draws never hit a [<=] boundary
         exactly; this model exists to hammer them. *)
  | Scripted of {
      default : float;
      links : ((node_id * node_id) * float list) list;
          (* per (src, dst): the delay of that link's k-th send, in send
             order; [default] once the list is exhausted (and for unlisted
             links). The model checker's counterexample export — correct
             nodes' send order is deterministic, so indexing by send count
             reproduces the explored schedule exactly. *)
    }

type t = {
  name : string;
  seed : int;
  n : int;
  f : int;
  delay : delay;
  clocks : S.clocks;
  cast : (node_id * C.t) list;
  proposals : S.proposal list;
  events : S.event list;
  transport : T.config option;
  horizon : float;
  session_capacity : int option;
      (* override Node's session-table capacity (None = the Node default) *)
  blackout : bool;  (* the re-initiation blackout knob (default true) *)
  r_slack : P.r_slack;  (* block R gate variant (default [P.default_r_slack]) *)
  service : W.t option;
      (* run the recurrent-agreement service loop (overload tier): the
         compiled scenario gets the workload's channels, admission control
         and a trace, and the oracle adds the service checks *)
}

let max_loss t =
  List.fold_left
    (fun acc -> function S.Loss { p; _ } -> Float.max acc p | _ -> acc)
    0.0 t.events

let max_reorder_extra t =
  List.fold_left
    (fun acc -> function S.Reorder { extra; _ } -> Float.max acc extra | _ -> acc)
    0.0 t.events

(* With a transport in the loop, the paper's timeout cascade must be built at
   the effective delay bound: the base link delta, stretched by the worst
   reordering extra the schedule installs, pushed through delta_eff for the
   worst persistent loss rate. Without transport, the plain cascade. *)
let params t =
  match t.transport with
  | None -> P.default ~f:t.f ~r_slack:t.r_slack t.n
  | Some c ->
      let base = P.default ~f:t.f t.n in
      let delta =
        P.delta_eff
          ~delta:(base.P.delta +. max_reorder_extra t)
          ~p:(max_loss t) ~rto:c.T.rto ~retries:c.T.retries
      in
      P.default ~f:t.f ~delta ~r_slack:t.r_slack t.n

let compile_delay = function
  | Fixed x -> Ssba_net.Delay.fixed x
  | Uniform { lo; hi } -> Ssba_net.Delay.uniform ~lo ~hi
  | Bimodal { fast; slow; slow_prob } -> Ssba_net.Delay.bimodal ~fast ~slow ~slow_prob
  | Edge { atoms } ->
      let arr = Array.of_list atoms in
      Ssba_net.Delay.custom (fun ~rng ~src:_ ~dst:_ ~now:_ ->
          arr.(Ssba_sim.Rng.int rng (Array.length arr)))
  | Scripted { default; links } ->
      (* Stateful per-link send counters: the k-th send on (src, dst) gets
         the k-th scripted delay. Compile once per run — [to_scenario] is
         called per execution, so the counters start fresh each time. *)
      let scripts = Hashtbl.create 16 in
      List.iter (fun (key, ds) -> Hashtbl.replace scripts key (Array.of_list ds)) links;
      let counters = Hashtbl.create 16 in
      Ssba_net.Delay.custom (fun ~rng:_ ~src ~dst ~now:_ ->
          match Hashtbl.find_opt scripts (src, dst) with
          | None -> default
          | Some arr ->
              let k = Option.value ~default:0 (Hashtbl.find_opt counters (src, dst)) in
              Hashtbl.replace counters (src, dst) (k + 1);
              if k < Array.length arr then arr.(k) else default)

let to_scenario t =
  let params = params t in
  let d = params.P.d in
  (* Service specs need the workload's channel fan-out, admission-controlled
     proposals (the At_capacity backstop behind watermark shedding) and a
     trace for the oracle's queue/shed/drain checks. The trace and the
     service metrics are outside the result digest, so a service spec's
     digest is as pin-stable as any other. *)
  let channels = match t.service with None -> 1 | Some w -> w.W.channels in
  S.default ~name:t.name ~seed:t.seed ~horizon:t.horizon
    ~record_observations:true ~record_trace:(t.service <> None)
    ~admission:(t.service <> None) ~channels ~delay:(compile_delay t.delay)
    ~clocks:t.clocks
    ~roles:
      (List.map (fun (id, c) -> (id, S.Byzantine (C.to_behavior ~d c))) t.cast)
    ~proposals:t.proposals ~events:t.events ?transport:t.transport
    ?session_capacity:t.session_capacity ~blackout:t.blackout params

let event_time = S.event_time

let event_nodes = function
  | S.Crash { node; _ } | S.Recover { node; _ } | S.Reform { node; _ } ->
      [ node ]
  | S.Partition { blocked = ga, gb; _ } -> ga @ gb
  | S.Scramble _ | S.Drop_prob _ | S.Heal _ | S.Heal_partition _
  | S.Heal_drop _ | S.Loss _ | S.Duplicate _ | S.Reorder _ | S.Delay_surge _
  | S.Delay_restore _ ->
      []

(* Events after which the paper's guarantees need a fresh [Delta_stb] before
   they apply again — {!Ssba_harness.Scenario.disruptive_event}, with link
   faults masked exactly when the spec carries a transport. *)
let disruptive t e =
  S.disruptive_event ~masked_link_faults:(t.transport <> None) e

let catalog_nodes = function
  | C.Partial_general { targets; _ } -> targets
  | C.Scripted { steps } -> List.filter_map (fun (_, dst, _) -> dst) steps
  | C.Silent | C.Spam _ | C.Mimic _ | C.Two_faced_general _
  | C.Stagger_general _ | C.Equivocator _ | C.Flip_flop _ | C.Gate_edge _ ->
      []

let delay_nodes = function
  | Scripted { links; _ } -> List.concat_map (fun ((s, d), _) -> [ s; d ]) links
  | Fixed _ | Uniform _ | Bimodal _ | Edge _ -> []

let max_referenced_id t =
  let ids =
    List.concat_map (fun (id, c) -> id :: catalog_nodes c) t.cast
    @ List.map (fun (p : S.proposal) -> p.S.g) t.proposals
    @ List.concat_map event_nodes t.events
    @ delay_nodes t.delay
  in
  List.fold_left max (-1) ids

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.n <= 3 * t.f then err "n=%d <= 3f=%d" t.n (3 * t.f)
  else if List.length t.cast > t.f then
    err "cast of %d exceeds fault budget f=%d" (List.length t.cast) t.f
  else if
    List.exists (fun (id, _) -> id < 0 || id >= t.n) t.cast
    || List.length (List.sort_uniq compare (List.map fst t.cast))
       <> List.length t.cast
  then err "cast ids out of range or duplicated"
  else if max_referenced_id t >= t.n then
    err "node id %d referenced but n=%d" (max_referenced_id t) t.n
  else if
    List.exists
      (fun (p : S.proposal) -> p.S.at < 0.0 || p.S.at > t.horizon)
      t.proposals
  then err "proposal outside [0, horizon]"
  else if
    List.exists (fun e -> event_time e < 0.0 || event_time e > t.horizon) t.events
  then err "event outside [0, horizon]"
  else
    let rec sorted = function
      | a :: (b :: _ as tl) -> event_time a <= event_time b && sorted tl
      | [] | [ _ ] -> true
    in
    if not (sorted t.events) then err "events not sorted by time"
    else if t.horizon <= 0.0 then err "non-positive horizon"
    else if
      match t.delay with
      | Edge { atoms } -> atoms = [] || List.exists (fun x -> x < 0.0) atoms
      | Fixed _ | Uniform _ | Bimodal _ | Scripted _ -> false
    then err "edge delay model needs a non-empty list of non-negative atoms"
    else if
      match t.session_capacity with Some c -> c < 1 | None -> false
    then err "session_capacity must be >= 1"
    else if
      List.exists
        (function
          | S.Drop_prob { p; _ } | S.Loss { p; _ } | S.Duplicate { p; _ } ->
              p < 0.0 || p > 1.0
          | S.Reorder { prob; extra; _ } ->
              prob < 0.0 || prob > 1.0 || extra < 0.0
          | S.Delay_surge { factor; _ } -> factor <= 0.0
          | _ -> false)
        t.events
    then err "event probability outside [0, 1] (or bad reorder/surge knob)"
    else
      match t.transport with
      | Some c when c.T.rto <= 0.0 || c.T.retries < 0 || c.T.window <= 0 || c.T.dedup <= 0
        ->
          err "nonsensical transport config"
      | Some _ | None -> (
          match t.service with
          | None -> Ok ()
          | Some w -> (
              match W.validate w with
              | Error e -> err "service: %s" e
              | Ok () ->
                  if w.W.stop_at > t.horizon then
                    err "service stop_at %g beyond horizon %g" w.W.stop_at
                      t.horizon
                  else Ok ()))

(* ---------- JSON codec ---------- *)

exception Decode of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode s)) fmt
let num x = J.Num x
let int x = J.Num (float_of_int x)
let str s = J.Str s

let get_field name j =
  match J.member name j with Some v -> v | None -> fail "missing field %S" name

let get_float name j =
  match J.to_float_opt (get_field name j) with
  | Some x -> x
  | None -> fail "field %S: expected number" name

let get_int name j =
  match J.to_int_opt (get_field name j) with
  | Some x -> x
  | None -> fail "field %S: expected integer" name

let get_str name j =
  match J.to_string_opt (get_field name j) with
  | Some s -> s
  | None -> fail "field %S: expected string" name

let get_list name j =
  match get_field name j with
  | J.Arr l -> l
  | _ -> fail "field %S: expected array" name

let str_list name j =
  List.map
    (fun v ->
      match J.to_string_opt v with
      | Some s -> s
      | None -> fail "field %S: expected strings" name)
    (get_list name j)

let int_list name j =
  List.map
    (fun v ->
      match J.to_int_opt v with
      | Some i -> i
      | None -> fail "field %S: expected integers" name)
    (get_list name j)

let delay_to_json = function
  | Fixed x -> J.Obj [ ("model", str "fixed"); ("delay", num x) ]
  | Uniform { lo; hi } ->
      J.Obj [ ("model", str "uniform"); ("lo", num lo); ("hi", num hi) ]
  | Bimodal { fast; slow; slow_prob } ->
      J.Obj
        [
          ("model", str "bimodal");
          ("fast", num fast);
          ("slow", num slow);
          ("slow_prob", num slow_prob);
        ]
  | Edge { atoms } ->
      J.Obj [ ("model", str "edge"); ("atoms", J.Arr (List.map num atoms)) ]
  | Scripted { default; links } ->
      J.Obj
        [
          ("model", str "scripted");
          ("default", num default);
          ( "links",
            J.Arr
              (List.map
                 (fun ((src, dst), ds) ->
                   J.Obj
                     [
                       ("src", int src);
                       ("dst", int dst);
                       ("delays", J.Arr (List.map num ds));
                     ])
                 links) );
        ]

let float_list name j =
  List.map
    (fun v ->
      match J.to_float_opt v with
      | Some x -> x
      | None -> fail "field %S: expected numbers" name)
    (get_list name j)

let delay_of_json j =
  match get_str "model" j with
  | "fixed" -> Fixed (get_float "delay" j)
  | "uniform" -> Uniform { lo = get_float "lo" j; hi = get_float "hi" j }
  | "bimodal" ->
      Bimodal
        {
          fast = get_float "fast" j;
          slow = get_float "slow" j;
          slow_prob = get_float "slow_prob" j;
        }
  | "edge" -> Edge { atoms = float_list "atoms" j }
  | "scripted" ->
      Scripted
        {
          default = get_float "default" j;
          links =
            List.map
              (fun lj ->
                ((get_int "src" lj, get_int "dst" lj), float_list "delays" lj))
              (get_list "links" j);
        }
  | m -> fail "unknown delay model %S" m

let clocks_to_json = function
  | S.Perfect -> J.Obj [ ("model", str "perfect") ]
  | S.Drifting { rho; max_offset } ->
      J.Obj
        [ ("model", str "drifting"); ("rho", num rho); ("max_offset", num max_offset) ]

let clocks_of_json j =
  match get_str "model" j with
  | "perfect" -> S.Perfect
  | "drifting" ->
      S.Drifting { rho = get_float "rho" j; max_offset = get_float "max_offset" j }
  | m -> fail "unknown clock model %S" m

(* Protocol-message codec, for the Scripted strategy's transcript steps. *)

let ia_kind_to_string = function
  | Support -> "support"
  | Approve -> "approve"
  | Ready -> "ready"

let ia_kind_of_string = function
  | "support" -> Support
  | "approve" -> Approve
  | "ready" -> Ready
  | s -> fail "unknown ia kind %S" s

let mb_kind_to_string = function
  | Init -> "init"
  | Echo -> "echo"
  | Init2 -> "init2"
  | Echo2 -> "echo2"

let mb_kind_of_string = function
  | "init" -> Init
  | "echo" -> Echo
  | "init2" -> Init2
  | "echo2" -> Echo2
  | s -> fail "unknown mb kind %S" s

let message_to_json = function
  | Initiator { g; v } ->
      J.Obj [ ("msg", str "initiator"); ("g", int g); ("v", str v) ]
  | Ia { kind; g; v } ->
      J.Obj
        [
          ("msg", str "ia");
          ("kind", str (ia_kind_to_string kind));
          ("g", int g);
          ("v", str v);
        ]
  | Mb { kind; p; g; v; k } ->
      J.Obj
        [
          ("msg", str "mb");
          ("kind", str (mb_kind_to_string kind));
          ("p", int p);
          ("g", int g);
          ("v", str v);
          ("k", int k);
        ]

let message_of_json j =
  match get_str "msg" j with
  | "initiator" -> Initiator { g = get_int "g" j; v = get_str "v" j }
  | "ia" ->
      Ia
        {
          kind = ia_kind_of_string (get_str "kind" j);
          g = get_int "g" j;
          v = get_str "v" j;
        }
  | "mb" ->
      Mb
        {
          kind = mb_kind_of_string (get_str "kind" j);
          p = get_int "p" j;
          g = get_int "g" j;
          v = get_str "v" j;
          k = get_int "k" j;
        }
  | m -> fail "unknown message class %S" m

let step_to_json (at, dst, msg) =
  J.Obj
    ([ ("at", num at) ]
    @ (match dst with None -> [] | Some d -> [ ("dst", int d) ])
    @ [ ("msg", message_to_json msg) ])

let step_of_json j =
  ( get_float "at" j,
    (match J.member "dst" j with
    | None -> None
    | Some d -> (
        match J.to_int_opt d with
        | Some i -> Some i
        | None -> fail "field \"dst\": expected integer")),
    message_of_json (get_field "msg" j) )

let strategy_to_json = function
  | C.Silent -> J.Obj [ ("strategy", str "silent") ]
  | C.Spam { period_d; values } ->
      J.Obj
        [
          ("strategy", str "spam");
          ("period_d", num period_d);
          ("values", J.Arr (List.map str values));
        ]
  | C.Mimic { delay_d } ->
      J.Obj [ ("strategy", str "mimic"); ("delay_d", num delay_d) ]
  | C.Two_faced_general { v1; v2; at } ->
      J.Obj
        [ ("strategy", str "two-faced"); ("v1", str v1); ("v2", str v2); ("at", num at) ]
  | C.Stagger_general { v; at; gap_d } ->
      J.Obj
        [ ("strategy", str "stagger"); ("v", str v); ("at", num at); ("gap_d", num gap_d) ]
  | C.Partial_general { v; at; targets } ->
      J.Obj
        [
          ("strategy", str "partial");
          ("v", str v);
          ("at", num at);
          ("targets", J.Arr (List.map int targets));
        ]
  | C.Equivocator { v1; v2 } ->
      J.Obj [ ("strategy", str "equivocator"); ("v1", str v1); ("v2", str v2) ]
  | C.Flip_flop { period_d; values } ->
      J.Obj
        [
          ("strategy", str "flip-flop");
          ("period_d", num period_d);
          ("values", J.Arr (List.map str values));
        ]
  | C.Gate_edge { v; at } ->
      J.Obj [ ("strategy", str "gate-edge"); ("v", str v); ("at", num at) ]
  | C.Scripted { steps } ->
      J.Obj
        [ ("strategy", str "scripted"); ("steps", J.Arr (List.map step_to_json steps)) ]

let strategy_of_json j =
  match get_str "strategy" j with
  | "silent" -> C.Silent
  | "spam" ->
      C.Spam { period_d = get_float "period_d" j; values = str_list "values" j }
  | "mimic" -> C.Mimic { delay_d = get_float "delay_d" j }
  | "two-faced" ->
      C.Two_faced_general
        { v1 = get_str "v1" j; v2 = get_str "v2" j; at = get_float "at" j }
  | "stagger" ->
      C.Stagger_general
        { v = get_str "v" j; at = get_float "at" j; gap_d = get_float "gap_d" j }
  | "partial" ->
      C.Partial_general
        { v = get_str "v" j; at = get_float "at" j; targets = int_list "targets" j }
  | "equivocator" -> C.Equivocator { v1 = get_str "v1" j; v2 = get_str "v2" j }
  | "flip-flop" ->
      C.Flip_flop { period_d = get_float "period_d" j; values = str_list "values" j }
  | "gate-edge" -> C.Gate_edge { v = get_str "v" j; at = get_float "at" j }
  | "scripted" -> C.Scripted { steps = List.map step_of_json (get_list "steps" j) }
  | s -> fail "unknown strategy %S" s

let event_to_json = function
  | S.Crash { node; at } ->
      J.Obj [ ("event", str "crash"); ("node", int node); ("at", num at) ]
  | S.Recover { node; at } ->
      J.Obj [ ("event", str "recover"); ("node", int node); ("at", num at) ]
  | S.Scramble { at; values; net_garbage } ->
      J.Obj
        [
          ("event", str "scramble");
          ("at", num at);
          ("values", J.Arr (List.map str values));
          ("net_garbage", int net_garbage);
        ]
  | S.Drop_prob { at; p } ->
      J.Obj [ ("event", str "drop"); ("at", num at); ("p", num p) ]
  | S.Partition { at; blocked = ga, gb } ->
      J.Obj
        [
          ("event", str "partition");
          ("at", num at);
          ("group_a", J.Arr (List.map int ga));
          ("group_b", J.Arr (List.map int gb));
        ]
  | S.Heal { at } -> J.Obj [ ("event", str "heal"); ("at", num at) ]
  | S.Heal_partition { at } ->
      J.Obj [ ("event", str "heal-partition"); ("at", num at) ]
  | S.Heal_drop { at } -> J.Obj [ ("event", str "heal-drop"); ("at", num at) ]
  | S.Loss { at; p } -> J.Obj [ ("event", str "loss"); ("at", num at); ("p", num p) ]
  | S.Duplicate { at; p } ->
      J.Obj [ ("event", str "duplicate"); ("at", num at); ("p", num p) ]
  | S.Reorder { at; prob; extra } ->
      J.Obj
        [
          ("event", str "reorder");
          ("at", num at);
          ("prob", num prob);
          ("extra", num extra);
        ]
  | S.Delay_surge { at; factor } ->
      J.Obj [ ("event", str "delay-surge"); ("at", num at); ("factor", num factor) ]
  | S.Delay_restore { at } ->
      J.Obj [ ("event", str "delay-restore"); ("at", num at) ]
  | S.Reform { node; at } ->
      J.Obj [ ("event", str "reform"); ("node", int node); ("at", num at) ]

let event_of_json j =
  match get_str "event" j with
  | "crash" -> S.Crash { node = get_int "node" j; at = get_float "at" j }
  | "recover" -> S.Recover { node = get_int "node" j; at = get_float "at" j }
  | "scramble" ->
      S.Scramble
        {
          at = get_float "at" j;
          values = str_list "values" j;
          net_garbage = get_int "net_garbage" j;
        }
  | "drop" -> S.Drop_prob { at = get_float "at" j; p = get_float "p" j }
  | "partition" ->
      S.Partition
        {
          at = get_float "at" j;
          blocked = (int_list "group_a" j, int_list "group_b" j);
        }
  | "heal" -> S.Heal { at = get_float "at" j }
  | "heal-partition" -> S.Heal_partition { at = get_float "at" j }
  | "heal-drop" -> S.Heal_drop { at = get_float "at" j }
  | "loss" -> S.Loss { at = get_float "at" j; p = get_float "p" j }
  | "duplicate" -> S.Duplicate { at = get_float "at" j; p = get_float "p" j }
  | "reorder" ->
      S.Reorder
        {
          at = get_float "at" j;
          prob = get_float "prob" j;
          extra = get_float "extra" j;
        }
  | "delay-surge" ->
      S.Delay_surge { at = get_float "at" j; factor = get_float "factor" j }
  | "delay-restore" -> S.Delay_restore { at = get_float "at" j }
  | "reform" -> S.Reform { node = get_int "node" j; at = get_float "at" j }
  | e -> fail "unknown event %S" e

let transport_to_json (c : T.config) =
  J.Obj
    [
      ("rto", num c.T.rto);
      ("retries", int c.T.retries);
      ("window", int c.T.window);
      ("dedup", int c.T.dedup);
    ]

let transport_of_json j =
  {
    T.rto = get_float "rto" j;
    retries = get_int "retries" j;
    window = get_int "window" j;
    dedup = get_int "dedup" j;
  }

let proposal_to_json (p : S.proposal) =
  J.Obj [ ("g", int p.S.g); ("v", str p.S.v); ("at", num p.S.at) ]

let proposal_of_json j =
  { S.g = get_int "g" j; v = get_str "v" j; at = get_float "at" j }

let to_json t =
  J.Obj
    ([
       ("name", str t.name);
      ("seed", int t.seed);
      ("n", int t.n);
      ("f", int t.f);
      ("delay", delay_to_json t.delay);
      ("clocks", clocks_to_json t.clocks);
      ( "cast",
        J.Arr
          (List.map
             (fun (id, c) ->
               match strategy_to_json c with
               | J.Obj fields -> J.Obj (("node", int id) :: fields)
               | _ -> assert false)
             t.cast) );
      ("proposals", J.Arr (List.map proposal_to_json t.proposals));
      ("events", J.Arr (List.map event_to_json t.events));
      ("horizon", num t.horizon);
    ]
    (* optional fields are omitted at their defaults, so older replay files
       keep loading and default-valued specs serialize unchanged (the corpus
       digests depend on this) *)
    @ (match t.transport with
      | None -> []
      | Some c -> [ ("transport", transport_to_json c) ])
    @ (match t.session_capacity with
      | None -> []
      | Some c -> [ ("session_capacity", int c) ])
    @ (match t.blackout with true -> [] | false -> [ ("blackout", J.Bool false) ])
    @ (match t.r_slack = P.default_r_slack with
      | true -> []
      | false -> [ ("r_slack", str (P.r_slack_to_string t.r_slack)) ])
    @
    match t.service with
    | None -> []
    | Some w -> [ ("service", W.to_json w) ])

let of_json j =
  try
    Ok
      {
        name = get_str "name" j;
        seed = get_int "seed" j;
        n = get_int "n" j;
        f = get_int "f" j;
        delay = delay_of_json (get_field "delay" j);
        clocks = clocks_of_json (get_field "clocks" j);
        cast =
          List.map
            (fun cj -> (get_int "node" cj, strategy_of_json cj))
            (get_list "cast" j);
        proposals = List.map proposal_of_json (get_list "proposals" j);
        events = List.map event_of_json (get_list "events" j);
        transport = Option.map transport_of_json (J.member "transport" j);
        horizon = get_float "horizon" j;
        session_capacity =
          (match J.member "session_capacity" j with
          | None -> None
          | Some c -> (
              match J.to_int_opt c with
              | Some i -> Some i
              | None -> fail "field \"session_capacity\": expected integer"));
        blackout =
          (match J.member "blackout" j with
          | None -> true
          | Some (J.Bool b) -> b
          | Some _ -> fail "field \"blackout\": expected boolean");
        r_slack =
          (match J.member "r_slack" j with
          | None -> P.default_r_slack
          | Some s -> (
              match Option.bind (J.to_string_opt s) P.r_slack_of_string with
              | Some r -> r
              | None -> fail "field \"r_slack\": expected legacy|widen|general"));
        service =
          (match J.member "service" j with
          | None -> None
          | Some sj -> (
              match W.of_json sj with
              | Ok w -> Some w
              | Error e -> fail "field \"service\": %s" e));
      }
  with Decode msg -> Error msg

let save path t =
  let oc = open_out path in
  output_string oc (J.to_string (to_json t));
  output_char oc '\n';
  close_out oc

let load path =
  match
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    s
  with
  | exception Sys_error e -> Error e
  | s -> (
      match J.of_string (String.trim s) with
      | exception J.Parse_error e -> Error e
      | j -> of_json j)

let pp ppf t =
  Fmt.pf ppf
    "@[<v>%s: n=%d f=%d seed=%d horizon=%g%s%s@ cast: %a@ %d proposals, %d events@]"
    t.name t.n t.f t.seed t.horizon
    (match t.transport with
    | None -> ""
    | Some c -> Printf.sprintf " transport(rto=%g,retries=%d)" c.T.rto c.T.retries)
    (match t.service with
    | None -> ""
    | Some w -> Fmt.str " service[%a]" W.pp w)
    Fmt.(list ~sep:comma (pair ~sep:(any ":") int C.pp))
    t.cast (List.length t.proposals) (List.length t.events)
