(* The ss-Byz-Agree protocol (paper Figure 1, §3).

   One instance runs per (node, General), composing Initiator-Accept and
   msgd-broadcast. Block structure, transcribed from the figure:

     Q  — the General sends (Initiator, G, m); receivers invoke
          Initiator-Accept.
     R  — on I-accept <G, m', tau_g> with tau - tau_g <= 4d: broadcast
          (self, <G,m'>, 1) and decide m' (the fast path).
     S  — by tau <= tau_g + (2r+1) Phi, having accepted r distinct messages
          (p_i, <G,m''>, i), i = 1..r, with p_i distinct and != G: broadcast
          (self, <G,m''>, r+1) and decide m''.
     T  — past tau_g + (2r+1) Phi with fewer than r-1 known broadcasters:
          abort (return bot).
     U  — past tau_g + (2f+1) Phi: abort.
     cleanup — erase anything older than (2f+1) Phi + 3d; 3d after returning,
          reset Initiator-Accept, tau_g and msgd-broadcast.

   Block S's "r distinct messages" requires a system of distinct
   representatives between rounds 1..r and accepted broadcasters; a correct
   node broadcasts at most once, but a Byzantine node may appear in several
   rounds, so we run a small augmenting-path matching rather than a greedy
   pick.

   Stale-timer safety: every scheduled closure captures the instance epoch
   and is ignored if the instance was reset in between. The periodic cleanup
   additionally repairs states only a transient fault can produce (anchor in
   the future, Running without an anchor, Returned without a pending
   reset). *)

open Types

type state =
  | Idle
  | Running
  | Returned of outcome * float  (* outcome, local return time *)

(* Fine-grained events exposed to external monitors (the harness's invariant
   checker). Purely observational: the protocol never reads them back. *)
type observation =
  | Obs_iaccept of { v : value; tau_g : float; tau : float }
  | Obs_mb_accept of {
      p : node_id;
      v : value;
      k : int;
      tau : float;
      tau_g : float;  (* this node's anchor for the execution, for phase math *)
    }
  | Obs_broadcast of { v : value; k : int; tau : float }
  | Obs_broadcaster of { p : node_id; tau : float }

type t = {
  g : general;
  ctx : ctx;
  ia : Initiator_accept.t;
  mb : Msgd_broadcast.t;
  mutable tau_g : float option;
  mutable own_iaccept : value option;
  accepts : (int, (node_id * value * float) list) Hashtbl.t;
      (* round k -> accepted (p, value, local accept time) *)
  mutable st : state;
  mutable epoch : int;
  mutable on_return : outcome -> tau_g:float -> tau_ret:float -> unit;
  mutable observer : observation -> unit;
}

let now t = t.ctx.local_time ()
let prm t = t.ctx.params
let state t = t.st
let anchor t = t.tau_g
let general t = t.g
let initiator_accept t = t.ia
let msgd_broadcast t = t.mb

let set_on_return t f = t.on_return <- f
let set_observer t f = t.observer <- f

(* ----- block S matching ----------------------------------------------- *)

(* Try to match every round 1..r to a distinct broadcaster of value [v]
   (classic augmenting paths; r <= f, so this is tiny). *)
let matches_rounds t ~v ~r =
  let candidates i =
    match Hashtbl.find_opt t.accepts i with
    | None -> []
    | Some l ->
        List.filter_map
          (fun (p, v', _) -> if String.equal v v' then Some p else None)
          l
  in
  let matched : (node_id, int) Hashtbl.t = Hashtbl.create 8 in
  let rec augment i visited =
    List.exists
      (fun p ->
        if List.mem p !visited then false
        else begin
          visited := p :: !visited;
          match Hashtbl.find_opt matched p with
          | None ->
              Hashtbl.replace matched p i;
              true
          | Some j ->
              if augment j visited then begin
                Hashtbl.replace matched p i;
                true
              end
              else false
        end)
      (candidates i)
  in
  let ok = ref true in
  for i = 1 to r do
    if !ok then ok := augment i (ref [])
  done;
  !ok

let candidate_values t ~r =
  let vs = Hashtbl.create 4 in
  for i = 1 to r do
    match Hashtbl.find_opt t.accepts i with
    | None -> ()
    | Some l -> List.iter (fun (_, v, _) -> Hashtbl.replace vs v ()) l
  done;
  Hashtbl.fold (fun v () acc -> v :: acc) vs [] |> List.sort compare

(* ----- return machinery ------------------------------------------------ *)

let full_reset t =
  Initiator_accept.reset t.ia;
  Msgd_broadcast.reset t.mb;
  Hashtbl.reset t.accepts;
  t.tau_g <- None;
  t.own_iaccept <- None;
  t.st <- Idle;
  t.epoch <- t.epoch + 1

let do_return t outcome =
  match t.tau_g with
  | None -> ()  (* unreachable in correct operation *)
  | Some tau_g ->
      let tau = now t in
      t.st <- Returned (outcome, tau);
      t.ctx.trace
        (Ssba_sim.Trace.Agree_return
           {
             g = t.g;
             decided = (match outcome with Decided v -> Some v | Aborted -> None);
             tau_g;
           });
      t.on_return outcome ~tau_g ~tau_ret:tau;
      (* Cleanup rule: 3d after returning, reset Initiator-Accept, tau_g and
         msgd-broadcast. Until then the node keeps relaying in the
         primitives. *)
      let epoch = t.epoch in
      t.ctx.after_local
        (3.0 *. (prm t).Params.d)
        (fun () -> if t.epoch = epoch then full_reset t)

let decide t v ~round =
  t.observer (Obs_broadcast { v; k = round + 1; tau = now t });
  Msgd_broadcast.broadcast t.mb ~v ~k:(round + 1);
  do_return t (Decided v)

(* ----- blocks R, S, T, U ------------------------------------------------ *)

let try_block_s t =
  match (t.st, t.tau_g) with
  | Running, Some tg ->
      let tau = now t in
      let phi = (prm t).Params.phi in
      let f = (prm t).Params.f in
      let rec try_r r =
        if r > f then ()
        else if tau > tg +. (float_of_int ((2 * r) + 1) *. phi) then try_r (r + 1)
        else begin
          let vs = candidate_values t ~r in
          match List.find_opt (fun v -> matches_rounds t ~v ~r) vs with
          | Some v -> decide t v ~round:r
          | None -> try_r (r + 1)
        end
      in
      try_r 1
  | (Idle | Running | Returned _), _ -> ()

(* Block T boundary check at tau_g + (2r+1) Phi, and block U at r = f. *)
let boundary_check t ~r =
  match (t.st, t.tau_g) with
  | Running, Some _ ->
      if r >= (prm t).Params.f then do_return t Aborted (* U *)
      else if Msgd_broadcast.broadcaster_count t.mb < r - 1 then
        do_return t Aborted (* T *)
  | (Idle | Running | Returned _), _ -> ()

let schedule_boundaries t ~tau_g =
  let epoch = t.epoch in
  let phi = (prm t).Params.phi in
  let tau = now t in
  (* The T/U conditions require tau to be strictly past the boundary; a tiny
     nudge keeps a block-S decision scheduled exactly at the boundary legal. *)
  let eps = 1e-9 *. phi in
  for r = 2 to (prm t).Params.f do
    let target = tau_g +. (float_of_int ((2 * r) + 1) *. phi) +. eps in
    if target > tau then
      t.ctx.after_local (target -. tau) (fun () ->
          if t.epoch = epoch then boundary_check t ~r)
  done;
  (* Block U's unconditional deadline. *)
  let target = tau_g +. (prm t).Params.delta_agr +. eps in
  let delay = Float.max 0.0 (target -. tau) in
  t.ctx.after_local delay (fun () ->
      if t.epoch = epoch then boundary_check t ~r:(prm t).Params.f)

(* On I-accept from the Initiator-Accept primitive: anchor the rounds and run
   block R (or fall through to S/T/U). *)
let handle_iaccept t v ~tau_g =
  match t.st with
  | Returned _ -> ()
  | Idle | Running ->
      let tau = now t in
      t.observer (Obs_iaccept { v; tau_g; tau });
      t.tau_g <- Some tau_g;
      t.own_iaccept <- Some v;
      t.st <- Running;
      Msgd_broadcast.set_anchor t.mb tau_g;
      if tau -. tau_g > (prm t).Params.delta_agr then
        (* Timeliness 1(d): an anchor this old cannot lead to a timely
           decision; abort right away. *)
        do_return t Aborted
      else if tau -. tau_g <= Params.r_gate (prm t) then decide t v ~round:0
        (* block R; the gate is 4d or 5d depending on [Params.r_slack] *)
      else begin
        schedule_boundaries t ~tau_g;
        try_block_s t
      end

let handle_mb_accept t ~p ~v ~k =
  t.observer
    (Obs_mb_accept
       { p; v; k; tau = now t; tau_g = Option.value ~default:Float.nan t.tau_g });
  (* block S excludes the General; [t.g] may be a logical (channelled) id,
     so compare against the physical node behind it *)
  let general = t.g mod (prm t).Params.n in
  let record () =
    let cur = Option.value ~default:[] (Hashtbl.find_opt t.accepts k) in
    if not (List.exists (fun (p', v', _) -> p' = p && String.equal v v') cur)
    then Hashtbl.replace t.accepts k ((p, v, now t) :: cur);
    try_block_s t
  in
  if p <> general then record ()
  else if
    (* [Count_general] relaxation: a node that already I-accepted m may
       count the General's own round-1 broadcast of m as the r = 1 proof —
       the I-accept corroborates the value, so this broadcast is no longer
       the General's unsupported word. Other rounds stay excluded. *)
    (prm t).Params.r_slack = Params.Count_general
    && k = 1
    && (match t.own_iaccept with Some v' -> String.equal v v' | None -> false)
  then record ()

(* Block Q1: a node invokes the protocol upon the General's message. *)
let invoke t ~v =
  match t.st with
  | Returned _ -> ()  (* stopped; participates in primitives only *)
  | Idle | Running -> Initiator_accept.handle_initiator t.ia v

let create ?blackout ?guard ~ctx ~g () =
  let ia = Initiator_accept.create ?blackout ?guard ~ctx ~g () in
  let mb = Msgd_broadcast.create ~ctx ~g in
  let t =
    {
      g;
      ctx;
      ia;
      mb;
      tau_g = None;
      own_iaccept = None;
      accepts = Hashtbl.create 8;
      st = Idle;
      epoch = 0;
      on_return = (fun _ ~tau_g:_ ~tau_ret:_ -> ());
      observer = (fun _ -> ());
    }
  in
  Initiator_accept.set_on_accept ia (fun v ~tau_g -> handle_iaccept t v ~tau_g);
  Msgd_broadcast.set_on_accept mb (fun ~p ~v ~k -> handle_mb_accept t ~p ~v ~k);
  Msgd_broadcast.set_on_broadcaster mb (fun p ->
      t.observer (Obs_broadcaster { p; tau = now t }));
  t

(* Message dispatch from the node glue. [t.g] may be a logical (channelled)
   General id; the Initiator is authenticated against the physical node
   behind it. *)
let handle_message t ~sender (msg : message) =
  match msg with
  | Initiator { v; _ } ->
      if sender = t.g mod (prm t).Params.n then invoke t ~v
  | Ia { kind; v; _ } -> Initiator_accept.handle_message t.ia ~kind ~sender ~v
  | Mb { kind; p; v; k; _ } ->
      Msgd_broadcast.handle_message t.mb ~sender ~kind ~p ~v ~k

(* Periodic cleanup (every d), including the self-stabilization repairs. *)
let cleanup t =
  Initiator_accept.cleanup t.ia;
  Msgd_broadcast.cleanup t.mb;
  let tau = now t in
  let pm = prm t in
  let horizon = tau -. (pm.Params.delta_agr +. (3.0 *. pm.Params.d)) in
  (* Erase accepted broadcasts older than (2f+1) Phi + 3d. Rebuild a list
     only when it actually has doomed entries — on most ticks none do, and
     the filter-copy per round tag per tick was pure allocation churn. *)
  Hashtbl.iter
    (fun k l ->
      if List.exists (fun (_, _, at) -> at > tau || at < horizon) l then
        Hashtbl.replace t.accepts k
          (List.filter (fun (_, _, at) -> at <= tau && at >= horizon) l))
    t.accepts;
  (* Transient-fault repairs; unreachable in correct operation. *)
  (match t.tau_g with
  | Some tg when tg > tau -> full_reset t
  | Some _ | None -> ());
  (match (t.st, t.tau_g) with
  | Running, None -> full_reset t
  | Running, Some tg when tau -. tg > pm.Params.delta_agr +. pm.Params.d ->
      (* The U deadline passed but its timer was lost to a fault. *)
      do_return t Aborted
  | Returned (_, tr), _ when tau -. tr > 4.0 *. pm.Params.d || tr > tau ->
      full_reset t
  | (Idle | Running | Returned _), _ -> ())

(* Indistinguishable from a freshly created instance — nothing running,
   nothing logged in either primitive — and hence eligible for session
   garbage collection (the separation guard persists independently). *)
let quiescent t =
  t.st = Idle
  && t.tau_g = None
  && t.own_iaccept = None
  && Hashtbl.length t.accepts = 0
  && Initiator_accept.quiescent t.ia
  && Msgd_broadcast.quiescent t.mb

(* Canonical state fingerprint for the model checker's visited set: the
   instance's own fields plus both primitives. The [epoch] counter is
   deliberately excluded — it only invalidates already-scheduled timers, and
   the checker's state abstraction treats pending timers as reconstructible
   from protocol state (stale ones no-op by construction). The guard is
   fingerprinted by the node. *)
let fingerprint buf t =
  let fopt buf = function
    | None -> Buffer.add_string buf "-"
    | Some x -> Printf.bprintf buf "%h" x
  in
  Printf.bprintf buf "ag{g=%d;tg=%a;own=%s;" t.g fopt t.tau_g
    (match t.own_iaccept with None -> "-" | Some v -> v);
  (match t.st with
  | Idle -> Buffer.add_string buf "st=I;"
  | Running -> Buffer.add_string buf "st=R;"
  | Returned (Decided v, at) -> Printf.bprintf buf "st=D:%s@%h;" v at
  | Returned (Aborted, at) -> Printf.bprintf buf "st=A@%h;" at);
  let rounds =
    List.sort
      (fun (a, _) (b, _) -> compare a b)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.accepts [])
  in
  List.iter
    (fun (k, l) ->
      Printf.bprintf buf "k%d=" k;
      List.iter
        (fun (p, v, at) -> Printf.bprintf buf "%d/%s@%h," p v at)
        (List.sort compare l);
      Buffer.add_char buf ';')
    rounds;
  Initiator_accept.fingerprint buf t.ia;
  Msgd_broadcast.fingerprint buf t.mb;
  Buffer.add_char buf '}'

(* Transient-fault injection: corrupt this instance and both primitives. *)
let scramble rng ~values t =
  Initiator_accept.scramble rng ~values t.ia;
  Msgd_broadcast.scramble rng ~values t.mb;
  let tau = now t in
  let pm = prm t in
  let span = 2.0 *. pm.Params.delta_rmv in
  let rtime () = tau +. Ssba_sim.Rng.float_in_range rng ~lo:(-.span) ~hi:pm.Params.delta_agr in
  Hashtbl.reset t.accepts;
  for k = 1 to pm.Params.f do
    if Ssba_sim.Rng.bool rng then
      Hashtbl.replace t.accepts k
        [ (Ssba_sim.Rng.int rng pm.Params.n, Ssba_sim.Rng.pick_list rng values, rtime ()) ]
  done;
  (match Ssba_sim.Rng.int rng 3 with
  | 0 -> begin
      t.st <- Idle;
      t.tau_g <- None
    end
  | 1 -> begin
      t.st <- Running;
      t.tau_g <- Some (rtime ());
      t.own_iaccept <- Some (Ssba_sim.Rng.pick_list rng values)
    end
  | _ -> begin
      t.st <-
        Returned
          ((if Ssba_sim.Rng.bool rng then Decided (Ssba_sim.Rng.pick_list rng values)
            else Aborted),
           rtime ());
      t.tau_g <- Some (rtime ())
    end);
  t.epoch <- t.epoch + 1
