(* Tests for the metrics registry (named counters and gauges). *)

open Helpers
module M = Ssba_sim.Metrics
module Json = Ssba_sim.Json

let test_counter_basics () =
  let m = M.create () in
  let c = M.counter m "a.count" in
  check_int "starts at zero" 0 (M.value c);
  M.incr c;
  M.incr c ~by:4;
  check_int "accumulates" 5 (M.value c);
  check_str "name" "a.count" (M.counter_name c)

let test_gauge_basics () =
  let m = M.create () in
  let g = M.gauge m "a.level" in
  check_float "starts at zero" 0.0 (M.gauge_value g);
  M.set g 2.5;
  M.add g (-1.0);
  check_float "set then add" 1.5 (M.gauge_value g);
  check_str "name" "a.level" (M.gauge_name g)

let test_find_or_create () =
  let m = M.create () in
  let c1 = M.counter m "x" in
  M.incr c1;
  let c2 = M.counter m "x" in
  M.incr c2;
  check_int "same handle by name" 2 (M.value c1);
  check_bool "find_counter" true (M.find_counter m "x" = Some 2);
  check_bool "find missing" true (M.find_counter m "nope" = None);
  check_bool "find wrong class" true (M.find_gauge m "x" = None)

let test_class_mismatch_rejected () =
  let m = M.create () in
  ignore (M.counter m "x");
  (match M.gauge m "x" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "gauge over counter name must be rejected");
  ignore (M.gauge m "y");
  match M.counter m "y" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "counter over gauge name must be rejected"

let test_monotonic () =
  let m = M.create () in
  let c = M.counter m "x" in
  match M.incr c ~by:(-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative increment must be rejected"

let test_reset () =
  let m = M.create () in
  let c = M.counter m "c" in
  let g = M.gauge m "g" in
  M.incr c ~by:7;
  M.set g 3.0;
  M.reset m;
  check_int "counter zeroed, handle valid" 0 (M.value c);
  check_float "gauge zeroed, handle valid" 0.0 (M.gauge_value g);
  M.incr c;
  check_int "handle still feeds registry" 1 (M.value c);
  M.incr c ~by:2;
  M.reset_counter c;
  check_int "scoped counter reset" 0 (M.value c);
  M.set g 9.0;
  M.reset_gauge g;
  check_float "scoped gauge reset" 0.0 (M.gauge_value g)

let test_to_list_sorted () =
  let m = M.create () in
  M.incr (M.counter m "b") ~by:2;
  M.set (M.gauge m "a") 1.5;
  check_bool "sorted (name, value) pairs" true
    (M.to_list m = [ ("a", 1.5); ("b", 2.0) ])

(* Pins [to_list]'s ordering: ascending String.compare on the name — neither
   registration order nor hash order, and string order, not numeric (so
   "node10" sorts before "node2"). *)
let test_to_list_order_pinned () =
  let m = M.create () in
  List.iter
    (fun name -> ignore (M.counter m name))
    [ "net.sent"; "engine.events"; "node10.returns"; "node2.returns" ];
  M.set (M.gauge m "net.in_flight") 1.0;
  check_bool "ascending String.compare order" true
    (List.map fst (M.to_list m)
    = [
        "engine.events";
        "net.in_flight";
        "net.sent";
        "node10.returns";
        "node2.returns";
      ])

let test_jsonl_export () =
  let m = M.create () in
  M.incr (M.counter m "net.sent") ~by:3;
  M.set (M.gauge m "net.in_flight") 2.0;
  let lines =
    String.split_on_char '\n' (M.to_jsonl m) |> List.filter (fun l -> l <> "")
  in
  check_int "one line per metric" 2 (List.length lines);
  (* registration order, each line a self-contained JSON object *)
  let parsed = List.map Json.of_string lines in
  let name j =
    match Json.member "metric" j with Some (Json.Str s) -> s | _ -> "?"
  in
  check_bool "registration order" true
    (List.map name parsed = [ "net.sent"; "net.in_flight" ]);
  List.iter
    (fun j ->
      check_bool "type field" true
        (match Json.member "type" j with
        | Some (Json.Str ("counter" | "gauge")) -> true
        | _ -> false);
      check_bool "value field" true
        (match Json.member "value" j with Some (Json.Num _) -> true | _ -> false))
    parsed

let suite =
  [
    case "counter basics" test_counter_basics;
    case "gauge basics" test_gauge_basics;
    case "find or create" test_find_or_create;
    case "class mismatch rejected" test_class_mismatch_rejected;
    case "counters are monotonic" test_monotonic;
    case "reset keeps registrations" test_reset;
    case "to_list sorted" test_to_list_sorted;
    case "to_list order pinned" test_to_list_order_pinned;
    case "jsonl export" test_jsonl_export;
  ]
