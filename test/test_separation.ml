(* Separation behaviours (Timeliness 4 / IA-4 and the decay rules): how far
   apart consecutive accepts for one General must be, driven through the fake
   context so time is fully controlled. n = 7, f = 2. *)

open Helpers
open Ssba_core
module Ia = Initiator_accept

let params = Params.default 7
let d = params.Params.d

type h = {
  fake : Fake.t;
  ctx : Types.ctx;
  ia : Ia.t;
  accepted : (Types.value * float) list ref;
}

let mk () =
  let fake, ctx = Fake.make params in
  let ia = Ia.create ~ctx ~g:0 () in
  let accepted = ref [] in
  Ia.set_on_accept ia (fun v ~tau_g -> accepted := (v, tau_g) :: !accepted);
  { fake; ctx; ia; accepted }

(* A successor session for the same General: the previous one was reset,
   evicted or garbage-collected, but the separation guard survives by
   reference — the exact situation the re-initiation blackout exists for. *)
let succ_session h =
  let ia = Ia.create ~guard:(Ia.guard h.ia) ~ctx:h.ctx ~g:0 () in
  Ia.set_on_accept ia (fun v ~tau_g -> h.accepted := (v, tau_g) :: !(h.accepted));
  { h with ia }

let feed h kind senders v =
  List.iter (fun s -> Ia.handle_message h.ia ~kind ~sender:s ~v) senders

let quorum = [ 1; 2; 3; 4; 5 ]

let drive h v =
  feed h Types.Support quorum v;
  Fake.advance h.fake (0.2 *. d);
  feed h Types.Approve quorum v;
  Fake.advance h.fake (0.2 *. d);
  feed h Types.Ready quorum v

let test_accept_then_other_value_blocked_within_4d () =
  (* IA-4a shape: after accepting "a", messages for "b" cannot produce an
     anchor within 4d — the earliest possible support for "b" is gated by
     last(G)'s Delta_0 - 6d = 7d expiry *)
  let h = mk () in
  Ia.handle_initiator h.ia "a";
  drive h "a";
  check_int "accepted a" 1 (List.length !(h.accepted));
  (* an immediate initiation for "b" is rejected by K1 (last(G) set) *)
  Fake.advance h.fake (4.0 *. d);
  Fake.clear_sent h.fake;
  Ia.handle_initiator h.ia "b";
  check_int "no support for b within last(G) expiry" 0
    (Fake.count_kind h.fake "support")

let test_same_value_reaccept_needs_decay () =
  (* IA-4b shape: a second accept of the same value cannot happen until
     last(G,m) decays (2 Delta_rmv + 9d). The separation is enforced on the
     *sender* side: block K refuses to re-support, and without n - 2f correct
     supports the f Byzantine nodes replaying everything cannot move the
     pipeline (the paper's Uniqueness proof: "past messages cannot be used
     again to reproduce another wave of decisions, unless a new correct node
     sends a new support"). *)
  let h = mk () in
  Ia.handle_initiator h.ia "a";
  drive h "a";
  h.accepted := [];
  Ia.reset h.ia;
  (* past the ignore window but far inside the last(G,m) expiry *)
  Fake.advance h.fake (20.0 *. d);
  Ia.cleanup h.ia;
  Fake.clear_sent h.fake;
  Ia.handle_initiator h.ia "a";
  check_int "K1 still blocked for the same value" 0 (Fake.count_kind h.fake "support");
  (* the f = 2 Byzantine nodes replay the whole pipeline; no weak quorum *)
  let byz = [ 5; 6 ] in
  feed h Types.Support byz "a";
  feed h Types.Approve byz "a";
  feed h Types.Ready byz "a";
  check_bool "f replaying nodes cannot re-accept" true (!(h.accepted) = []);
  check_int "nor trigger any send" 0 (List.length h.fake.Fake.sent)

let test_same_value_reaccept_after_full_decay () =
  let h = mk () in
  Ia.handle_initiator h.ia "a";
  drive h "a";
  h.accepted := [];
  Ia.reset h.ia;
  (* wait out last(G,m) (2 Drmv + 9d) and last(G) with cleanup ticks *)
  let expiry = (2.0 *. params.Params.delta_rmv) +. (10.0 *. d) in
  let steps = int_of_float (expiry /. d) + 2 in
  for _ = 1 to steps do
    Fake.advance h.fake d;
    Ia.cleanup h.ia
  done;
  Fake.clear_sent h.fake;
  Ia.handle_initiator h.ia "a";
  check_int "K1 passes after full decay" 1 (Fake.count_kind h.fake "support");
  drive h "a";
  (match !(h.accepted) with
  | [ ("a", _) ] -> ()
  | _ -> Alcotest.fail "expected exactly one fresh accept")

let test_ready_flag_decays () =
  (* the ready_{G,m} flag must expire after Delta_rmv: stale readiness plus
     fresh ready messages alone must not accept *)
  let h = mk () in
  feed h Types.Approve [ 1; 2; 3 ] "a";
  check_bool "flag set" true (Ia.ready_flag_fresh h.ia "a");
  Fake.advance h.fake (params.Params.delta_rmv +. d);
  Ia.cleanup h.ia;
  check_bool "flag decayed" false (Ia.ready_flag_fresh h.ia "a");
  feed h Types.Ready quorum "a";
  check_bool "no accept on stale readiness" true (!(h.accepted) = [])

let test_i_value_decays () =
  let h = mk () in
  Ia.handle_initiator h.ia "a";
  check_bool "i_value live" true (Ia.i_value h.ia "a" <> None);
  Fake.advance h.fake (params.Params.delta_rmv +. d);
  check_bool "i_value expired (freshness check)" true (Ia.i_value h.ia "a" = None)

(* ---- the re-initiation blackout (sender side of the IA-4 fix) ---------- *)

(* An engagement for "a" whose session is then destroyed (no accept, so no
   last(G)); a re-initiation for "b" through a successor session is judged
   purely by the guard. *)
let blackout_case ~gap_in_d ~blocked () =
  let h = mk () in
  Ia.handle_initiator h.ia "a";
  check_int "engaged a" 1 (Fake.count_kind h.fake "support");
  Fake.advance h.fake (gap_in_d *. d);
  let h = succ_session h in
  Ia.cleanup h.ia;
  Fake.clear_sent h.fake;
  Ia.handle_initiator h.ia "b";
  check_int
    (Printf.sprintf "support for b at gap %.0fd" gap_in_d)
    (if blocked then 0 else 1)
    (Fake.count_kind h.fake "support")

let test_blackout_under_1d = blackout_case ~gap_in_d:0.5 ~blocked:true
let test_blackout_exactly_1d = blackout_case ~gap_in_d:1.0 ~blocked:true

(* Past the per-send rate limit (1d) but inside the blackout window: only the
   guard's [session_value] stands between the 2027/133 shape and a second
   wave of supports. *)
let test_blackout_mid_window = blackout_case ~gap_in_d:2.0 ~blocked:true

let test_blackout_past_separation_window =
  (* session_value expires at Delta_rmv = 37d; beyond it a fresh initiation
     is legitimate again *)
  blackout_case ~gap_in_d:(params.Params.delta_rmv /. d +. 1.0) ~blocked:false

let test_blackout_keeps_relay_value_blind () =
  (* IA-3 must survive the fix: a node engaged on the losing value of a
     two-faced General still relays — and accepts — the winning one. The
     blackout gates block K only. *)
  let h = mk () in
  Ia.handle_initiator h.ia "a";
  Fake.advance h.fake (2.0 *. d);
  let h = succ_session h in
  Fake.clear_sent h.fake;
  drive h "b";
  (match !(h.accepted) with
  | [ ("b", _) ] -> ()
  | _ -> Alcotest.fail "expected the relay path to accept \"b\"")

let suite =
  [
    case "other value blocked within last(G)" test_accept_then_other_value_blocked_within_4d;
    case "same value needs full decay" test_same_value_reaccept_needs_decay;
    case "same value after full decay" test_same_value_reaccept_after_full_decay;
    case "ready flag decays" test_ready_flag_decays;
    case "i_value decays" test_i_value_decays;
    case "blackout: re-initiation < 1d apart" test_blackout_under_1d;
    case "blackout: re-initiation exactly 1d apart" test_blackout_exactly_1d;
    case "blackout: mid-window re-initiation" test_blackout_mid_window;
    case "blackout: expires past the separation window" test_blackout_past_separation_window;
    case "blackout: relay blocks stay value-blind" test_blackout_keeps_relay_value_blind;
  ]
